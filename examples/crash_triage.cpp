// Domain example: crash triage across kernel versions. Runs a HEALER
// campaign on every modelled version and produces a syzbot-style report:
// which bugs exist where, first-trigger times, reproducer lengths, and the
// VM fleet's console journal tail collected by the background monitor.
//
//   ./build/examples/crash_triage [hours-per-version]

#include <cstdio>
#include <cstdlib>
#include <map>

#include "src/fuzz/campaign.h"

namespace {

using namespace healer;

}  // namespace

int main(int argc, char** argv) {
  const double hours = argc > 1 ? std::atof(argv[1]) : 8.0;
  const KernelVersion versions[] = {
      KernelVersion::kV4_19, KernelVersion::kV5_0, KernelVersion::kV5_4,
      KernelVersion::kV5_6, KernelVersion::kV5_11};

  std::map<BugId, std::vector<std::string>> sightings;
  std::map<BugId, size_t> repro_len;
  for (KernelVersion version : versions) {
    CampaignOptions options;
    options.tool = ToolKind::kHealer;
    options.version = version;
    options.hours = hours;
    options.seed = 11;
    const CampaignResult result = RunCampaign(options);
    std::printf("v%-5s: %6llu execs, %5zu branches, %2zu unique crashes\n",
                KernelVersionName(version),
                (unsigned long long)result.fuzz_execs, result.final_coverage,
                result.crashes.size());
    for (const CrashRecord& crash : result.crashes) {
      sightings[crash.bug].push_back(KernelVersionName(version));
      auto it = repro_len.find(crash.bug);
      if (it == repro_len.end() || crash.shortest_repro < it->second) {
        repro_len[crash.bug] = crash.shortest_repro;
      }
    }
  }

  std::printf("\n== triage report ==\n");
  std::printf("%-55s %-25s %-7s %s\n", "title", "class", "repro", "seen on");
  for (const auto& [bug, versions_seen] : sightings) {
    const BugInfo& info = GetBugInfo(bug);
    std::string seen;
    for (size_t i = 0; i < versions_seen.size(); ++i) {
      seen += (i != 0 ? "," : "") + versions_seen[i];
    }
    std::printf("%-55s %-25s %-7zu %s\n", info.title,
                BugClassName(info.bug_class), repro_len[bug], seen.c_str());
  }
  std::printf("\n%zu distinct bugs triaged.\n", sightings.size());
  return 0;
}
