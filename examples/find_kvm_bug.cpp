// Domain example: the paper's motivating KVM vulnerability (Section 3,
// Listing 1). Demonstrates the library's layers directly:
//
//   1. Build the 5-call reproducer chain from the descriptions
//      (openat$kvm -> KVM_CREATE_VM -> KVM_CREATE_VCPU ->
//       KVM_SET_USER_MEMORY_REGION -> KVM_RUN).
//   2. Execute it through the executor and show the crash report.
//   3. Show why relations matter: measure how long a relation-guided
//      campaign vs an unguided one takes to find the same bug.

#include <cstdio>
#include <cstring>

#include "src/exec/executor.h"
#include "src/fuzz/campaign.h"
#include "src/fuzz/templates.h"
#include "src/syzlang/builtin_descs.h"

namespace {

using namespace healer;

std::vector<int> AllIds(const Target& target) {
  std::vector<int> ids;
  for (const auto& call : target.syscalls()) {
    ids.push_back(call->id);
  }
  return ids;
}

void ReproduceByHand() {
  std::printf("== 1. direct reproducer ==\n");
  const Target& target = BuiltinTarget();
  Rng rng(7);
  Prog prog = BuildChain(target, AllIds(target),
                         {"openat$kvm", "ioctl$KVM_CREATE_VM",
                          "ioctl$KVM_CREATE_VCPU",
                          "ioctl$KVM_SET_USER_MEMORY_REGION",
                          "ioctl$KVM_RUN"},
                         &rng);
  // Pin the memslot into the Listing-1 corner case: the only slot lies
  // entirely above the vcpu's fetch gfn, so the binary search's `start`
  // runs off the end of the slot array.
  Arg& region = *prog.calls()[3].args[2]->pointee;
  region.inner[0]->val = 0;         // slot id.
  region.inner[2]->val = 0x400000;  // guest_phys_addr.
  region.inner[3]->val = 0x10000;   // memory_size.
  std::printf("%s", prog.ToString().c_str());

  Executor executor(target, KernelConfig::ForVersion(KernelVersion::kV5_6));
  const ExecResult result = executor.Run(prog, nullptr);
  if (result.Crashed()) {
    std::printf("\n-> KASAN-style report: %s (call #%zu)\n\n",
                result.crash->title.c_str(), result.crash->call_index + 1);
  } else {
    std::printf("\n-> no crash (unexpected)\n\n");
  }
}

double HoursToFind(ToolKind tool, BugId bug, uint64_t seed) {
  CampaignOptions options;
  options.tool = tool;
  options.version = KernelVersion::kV5_6;
  options.seed = seed;
  options.hours = 24.0;
  const CampaignResult result = RunCampaign(options);
  for (const auto& crash : result.crashes) {
    if (crash.bug == bug) {
      return static_cast<double>(crash.first_seen) / SimClock::kHour;
    }
  }
  return -1.0;
}

void CompareDiscoverySpeed() {
  std::printf("== 2. discovery speed: relation-guided vs unguided ==\n");
  const BugId bug = BugId::kKvmGfnToHvaCacheOob;
  for (ToolKind tool : {ToolKind::kHealer, ToolKind::kHealerMinus}) {
    double best = -1.0;
    for (uint64_t seed = 1; seed <= 3; ++seed) {
      const double hours = HoursToFind(tool, bug, seed);
      if (hours >= 0.0 && (best < 0.0 || hours < best)) {
        best = hours;
      }
    }
    if (best >= 0.0) {
      std::printf("  %-10s first trigger after %5.2f simulated hours\n",
                  ToolKindName(tool), best);
    } else {
      std::printf("  %-10s did not trigger the bug in 3x24h\n",
                  ToolKindName(tool));
    }
  }
}

}  // namespace

int main() {
  std::printf("Reproducing the search_memslots out-of-bounds access "
              "(Listing 1 of the paper)\n\n");
  ReproduceByHand();
  CompareDiscoverySpeed();
  return 0;
}
