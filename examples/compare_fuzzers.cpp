// Compare the four tools (HEALER, HEALER-, Syzkaller, Moonshine) on one
// simulated kernel version — a miniature of the paper's Section 6.1
// experiment.
//
//   ./build/examples/compare_fuzzers [hours] [version: 4.19|5.4|5.11]

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "src/fuzz/campaign.h"

namespace {

healer::KernelVersion ParseVersion(const char* text) {
  if (std::strcmp(text, "4.19") == 0) {
    return healer::KernelVersion::kV4_19;
  }
  if (std::strcmp(text, "5.4") == 0) {
    return healer::KernelVersion::kV5_4;
  }
  return healer::KernelVersion::kV5_11;
}

}  // namespace

int main(int argc, char** argv) {
  const double hours = argc > 1 ? std::atof(argv[1]) : 8.0;
  const healer::KernelVersion version =
      ParseVersion(argc > 2 ? argv[2] : "5.11");

  const healer::ToolKind tools[] = {
      healer::ToolKind::kHealer, healer::ToolKind::kHealerMinus,
      healer::ToolKind::kSyzkaller, healer::ToolKind::kMoonshine};

  std::printf("%-10s %10s %10s %8s %10s %8s %10s\n", "tool", "branches",
              "execs", "corpus", "mean-len", "bugs", "relations");
  for (healer::ToolKind tool : tools) {
    healer::CampaignOptions options;
    options.tool = tool;
    options.version = version;
    options.hours = hours;
    options.seed = 7;
    const healer::CampaignResult result = healer::RunCampaign(options);
    std::printf("%-10s %10zu %10llu %8zu %10.2f %8zu %10zu\n",
                healer::ToolKindName(tool), result.final_coverage,
                (unsigned long long)result.fuzz_execs, result.corpus_size,
                result.corpus_mean_len, result.crashes.size(),
                result.relations_total);
  }
  return 0;
}
