// Domain example: description bootstrapping from C headers — the paper's
// Section 8 future-work feature. Converts a sample driver header into
// HealLang, compiles it, and shows the resource flow the fuzzer would get
// for free before any manual semantic refinement.
//
//   ./build/examples/header_convert [path-to-header]   (default: built-in)

#include <cstdio>
#include <fstream>
#include <sstream>

#include "src/fuzz/relation_table.h"
#include "src/syzlang/header_gen.h"
#include "src/syzlang/target.h"

namespace {

constexpr char kSampleHeader[] = R"(
// A hypothetical character-device driver API.
#define FOO_MAGIC 0xf00
#define FOO_MAX_LEN 4096

struct foo_config {
  unsigned int mode;
  long watermark;
};

int foo_open(const char *path);
int foo_configure(int fd, struct foo_config *cfg);
long foo_write(int fd, char *buf, size_t len);
int foo_reset(int fd);
)";

}  // namespace

int main(int argc, char** argv) {
  std::string header = kSampleHeader;
  if (argc > 1) {
    std::ifstream in(argv[1]);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    header = buf.str();
  }

  auto converted = healer::ConvertHeaderToDescriptions(header);
  if (!converted.ok()) {
    std::fprintf(stderr, "conversion failed: %s\n",
                 converted.status().ToString().c_str());
    return 1;
  }
  std::printf("== generated HealLang ==\n%s\n", converted->c_str());

  auto target = healer::Target::CompileSource(*converted, "from-header");
  if (!target.ok()) {
    std::fprintf(stderr, "generated description failed to compile: %s\n",
                 target.status().ToString().c_str());
    return 1;
  }
  std::printf("== compiled: %zu syscalls, %zu resources ==\n",
              target->NumSyscalls(), target->NumResources());

  healer::RelationTable table(target->NumSyscalls());
  healer::StaticRelationLearn(*target, &table);
  std::printf("static relations derivable before any fuzzing: %zu\n",
              table.Count());
  for (const auto& edge : table.EdgesBefore()) {
    std::printf("  %-20s -> %s\n",
                target->syscall(edge.from).name.c_str(),
                target->syscall(edge.to).name.c_str());
  }
  std::printf("\n(refine semantics by hand — flags sets, len[] links, "
              "specializations — as the paper prescribes)\n");
  return 0;
}
