// Domain example: use the library as a *relation mining* tool rather than a
// fuzzer. Runs static learning, then dynamically probes a set of candidate
// call pairs with Algorithm 2 and prints which influence relations hold —
// the kind of interface-dependency map a kernel developer could consult.
//
//   ./build/examples/relation_explorer [subsystem-substring]

#include <cstdio>
#include <cstring>
#include <string>

#include "src/exec/executor.h"
#include "src/fuzz/learner.h"
#include "src/fuzz/templates.h"
#include "src/syzlang/builtin_descs.h"

namespace {

using namespace healer;

std::vector<int> AllIds(const Target& target) {
  std::vector<int> ids;
  for (const auto& call : target.syscalls()) {
    ids.push_back(call->id);
  }
  return ids;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string filter = argc > 1 ? argv[1] : "memfd";
  const Target& target = BuiltinTarget();

  // 1. Static learning over the descriptions.
  RelationTable table(target.NumSyscalls());
  const size_t static_edges = StaticRelationLearn(target, &table);
  std::printf("static learning: %zu relations from resource flows\n\n",
              static_edges);

  // 2. Dynamic probing: run every ground-truth template chain through
  //    Algorithm 2 and collect what static analysis could not see.
  Executor executor(target, KernelConfig::ForVersion(KernelVersion::kV5_11));
  SimClock clock;
  DynamicLearner learner(
      &table, [&](const Prog& p) { return executor.Run(p, nullptr); },
      &clock);
  Rng rng(1234);
  size_t dynamic_edges = 0;
  for (const auto& chain : TemplateChains()) {
    Prog prog = BuildChain(target, AllIds(target), chain, &rng);
    if (!prog.empty()) {
      dynamic_edges += learner.Learn(prog);
    }
  }
  std::printf("dynamic probing of %zu template chains: %zu new relations "
              "(%llu executions)\n\n",
              TemplateChains().size(), dynamic_edges,
              (unsigned long long)learner.execs_used());

  // 3. Print the influence map for calls matching the filter.
  std::printf("influence relations for calls matching '%s':\n",
              filter.c_str());
  for (const auto& call : target.syscalls()) {
    if (call->name.find(filter) == std::string::npos) {
      continue;
    }
    const auto influenced = table.InfluencedBy(call->id);
    if (influenced.empty()) {
      continue;
    }
    std::printf("  %s influences:\n", call->name.c_str());
    for (int to : influenced) {
      std::printf("    -> %s\n", target.syscall(to).name.c_str());
    }
  }
  std::printf("\ntip: try arguments like 'kvm', 'sock', 'pipe', 'tty', "
              "'rdma'.\n");
  return 0;
}
