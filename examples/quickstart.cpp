// Quickstart: run a short HEALER campaign against the simulated v5.11
// kernel and print what the fuzzer learned and found.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart [simulated-hours]

#include <cstdio>
#include <cstdlib>

#include "src/fuzz/campaign.h"

int main(int argc, char** argv) {
  double hours = 2.0;
  if (argc > 1) {
    hours = std::atof(argv[1]);
  }

  healer::CampaignOptions options;
  options.tool = healer::ToolKind::kHealer;
  options.version = healer::KernelVersion::kV5_11;
  options.seed = 42;
  options.hours = hours;

  std::printf("Fuzzing sim-linux %s with %s for %.1f simulated hours...\n",
              healer::KernelVersionName(options.version),
              healer::ToolKindName(options.tool), hours);

  const healer::CampaignResult result = healer::RunCampaign(options);

  std::printf("\n== coverage ==\n");
  std::printf("branches covered : %zu\n", result.final_coverage);
  std::printf("test cases run   : %llu (+%llu analysis executions)\n",
              (unsigned long long)result.fuzz_execs,
              (unsigned long long)(result.total_execs - result.fuzz_execs));

  std::printf("\n== relation learning ==\n");
  std::printf("relations known  : %zu (%zu static, %zu dynamic)\n",
              result.relations_total, result.relations_static,
              result.relations_dynamic);
  std::printf("final alpha      : %.2f\n", result.final_alpha);

  std::printf("\n== corpus ==\n");
  std::printf("programs         : %zu (mean length %.2f)\n",
              result.corpus_size, result.corpus_mean_len);

  std::printf("\n== crashes ==\n");
  for (const auto& crash : result.crashes) {
    std::printf("  [%6.2fh] %-55s (repro length %zu)\n",
                static_cast<double>(crash.first_seen) /
                    healer::SimClock::kHour,
                crash.title.c_str(), crash.shortest_repro);
  }
  if (result.crashes.empty()) {
    std::printf("  (none found in this short run; try more hours)\n");
  }
  return 0;
}
