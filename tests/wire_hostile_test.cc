// Hostile-input hardening for the program wire format (serialize.cc) and
// the corpus container (corpus_io.cc). One regression test per reachable
// decode failure path, plus truncation and bit-flip properties showing the
// decoder always fails cleanly — no crash, no over-allocation, no partially
// constructed program escaping.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "src/base/hash.h"
#include "src/base/metrics.h"
#include "src/base/rng.h"
#include "src/exec/exec_ring.h"
#include "src/exec/shm_channel.h"
#include "src/fuzz/corpus_io.h"
#include "src/fuzz/gossip.h"
#include "src/fuzz/shard.h"
#include "src/fuzz/templates.h"
#include "src/prog/serialize.h"
#include "src/syzlang/builtin_descs.h"

namespace healer {
namespace {

constexpr uint32_t kWireMagic = 0x48454131;  // "HEA1"

// Little-endian writer mirroring the wire format, for crafting hostile bytes.
struct Wire {
  std::vector<uint8_t> buf;
  Wire& U8(uint8_t v) {
    buf.push_back(v);
    return *this;
  }
  Wire& U32(uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      buf.push_back(static_cast<uint8_t>(v >> (8 * i)));
    }
    return *this;
  }
  Wire& U64(uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      buf.push_back(static_cast<uint8_t>(v >> (8 * i)));
    }
    return *this;
  }
};

Status Decode(const std::vector<uint8_t>& bytes) {
  return DeserializeProg(BuiltinTarget(), bytes.data(), bytes.size()).status();
}

void ExpectDecodeError(const std::vector<uint8_t>& bytes,
                       const std::string& message_fragment) {
  const Status status = Decode(bytes);
  ASSERT_FALSE(status.ok()) << "expected failure: " << message_fragment;
  EXPECT_EQ(status.code(), StatusCode::kParseError);
  EXPECT_NE(status.message().find(message_fragment), std::string::npos)
      << "got: " << status.message();
}

// First syscall without arguments (for minimal hand-crafted programs).
const Syscall& NoArgCall() {
  for (const auto& call : BuiltinTarget().syscalls()) {
    if (call->args.empty()) {
      return *call;
    }
  }
  ADD_FAILURE() << "builtin target has no zero-arg syscall";
  return *BuiltinTarget().syscalls().front();
}

// First syscall whose first argument is a plain scalar — neither a pointer
// nor an aggregate — so mismatched structural tags are rejected on it.
const Syscall& ScalarArgCall() {
  for (const auto& call : BuiltinTarget().syscalls()) {
    if (call->args.empty()) {
      continue;
    }
    const TypeKind kind = call->args[0].type->kind;
    if (kind == TypeKind::kInt || kind == TypeKind::kFlags ||
        kind == TypeKind::kConst) {
      return *call;
    }
  }
  ADD_FAILURE() << "builtin target has no scalar-first-arg syscall";
  return *BuiltinTarget().syscalls().front();
}

// Header plus call header for `call`, leaving the args section to the test.
Wire CallPrefix(const Syscall& call) {
  Wire w;
  w.U32(kWireMagic)
      .U32(1)
      .U32(static_cast<uint32_t>(call.id))
      .U32(static_cast<uint32_t>(call.args.size()));
  return w;
}

std::vector<uint8_t> SampleBytes() {
  const Target& target = BuiltinTarget();
  std::vector<int> ids;
  for (const auto& call : target.syscalls()) {
    ids.push_back(call->id);
  }
  Rng rng(4);
  const Prog prog =
      BuildChain(target, ids, {"memfd_create", "write$memfd"}, &rng);
  return SerializeProg(prog);
}

// ---- container / header paths ----

TEST(WireHostileTest, CraftedMinimalProgramDecodes) {
  // Sanity-check the crafting helpers against the real encoder before using
  // them to build hostile inputs.
  const Syscall& call = NoArgCall();
  Wire w;
  w.U32(kWireMagic).U32(1).U32(static_cast<uint32_t>(call.id)).U32(0);
  Result<Prog> prog =
      DeserializeProg(BuiltinTarget(), w.buf.data(), w.buf.size());
  ASSERT_TRUE(prog.ok()) << prog.status().ToString();
  EXPECT_EQ(prog->size(), 1u);
  EXPECT_EQ(prog->calls()[0].meta->id, call.id);
}

TEST(WireHostileTest, BadMagicRejected) {
  Wire w;
  w.U32(0xdeadbeef).U32(0);
  ExpectDecodeError(w.buf, "bad magic");
  ExpectDecodeError({}, "bad magic");
  ExpectDecodeError({0x31}, "bad magic");
}

TEST(WireHostileTest, HugeCallCountRejected) {
  Wire w;
  w.U32(kWireMagic).U32(5000);  // Over the 1024-call cap.
  ExpectDecodeError(w.buf, "bad call count");
}

TEST(WireHostileTest, TruncatedCallHeaderRejected) {
  Wire w;
  w.U32(kWireMagic).U32(1).U32(0);  // id present, arg count missing.
  ExpectDecodeError(w.buf, "truncated call header");
}

TEST(WireHostileTest, UnknownSyscallIdRejected) {
  Wire w;
  w.U32(kWireMagic)
      .U32(1)
      .U32(static_cast<uint32_t>(BuiltinTarget().NumSyscalls()))
      .U32(0);
  ExpectDecodeError(w.buf, "unknown syscall id");
}

TEST(WireHostileTest, ArgCountMismatchRejected) {
  const Syscall& call = NoArgCall();
  Wire w;
  w.U32(kWireMagic).U32(1).U32(static_cast<uint32_t>(call.id)).U32(7);
  ExpectDecodeError(w.buf, "arg count mismatch");
}

TEST(WireHostileTest, TrailingBytesRejected) {
  std::vector<uint8_t> bytes = SampleBytes();
  bytes.push_back(0x00);
  ExpectDecodeError(bytes, "trailing bytes");
}

// ---- per-arg decode paths (all driven through a real syscall's arg0) ----

TEST(WireHostileTest, TruncatedArgTagRejected) {
  ExpectDecodeError(CallPrefix(ScalarArgCall()).buf, "truncated arg tag");
}

TEST(WireHostileTest, UnknownArgTagRejected) {
  ExpectDecodeError(CallPrefix(ScalarArgCall()).U8(99).buf,
                    "unknown arg tag");
}

TEST(WireHostileTest, TruncatedConstantRejected) {
  // Tag kConstant then only half of the u64 payload.
  ExpectDecodeError(CallPrefix(ScalarArgCall()).U8(0).U32(1).buf,
                    "truncated constant");
}

TEST(WireHostileTest, TruncatedDataRejected) {
  // Tag kData claiming 100 payload bytes that are not there.
  ExpectDecodeError(CallPrefix(ScalarArgCall()).U8(1).U32(100).buf,
                    "truncated data arg");
}

TEST(WireHostileTest, OversizedDataLengthRejected) {
  // Even with the payload present, lengths over the 1 MiB reader cap are
  // rejected instead of allocated.
  Wire w = CallPrefix(ScalarArgCall());
  const uint32_t len = (1u << 20) + 1;
  w.U8(1).U32(len);
  w.buf.resize(w.buf.size() + len, 0xab);
  ExpectDecodeError(w.buf, "truncated data arg");
}

TEST(WireHostileTest, PointerTagForScalarRejected) {
  ExpectDecodeError(CallPrefix(ScalarArgCall()).U8(2).buf,
                    "pointer tag for non-pointer type");
}

TEST(WireHostileTest, HugeGroupCountRejected) {
  // The count cap fires before any type validation or allocation.
  ExpectDecodeError(CallPrefix(ScalarArgCall()).U8(4).U32(100000).buf,
                    "bad group count");
}

TEST(WireHostileTest, GroupTagForScalarRejected) {
  ExpectDecodeError(CallPrefix(ScalarArgCall()).U8(4).U32(0).buf,
                    "group tag for non-aggregate type");
}

TEST(WireHostileTest, UnionTagForNonUnionRejected) {
  ExpectDecodeError(CallPrefix(ScalarArgCall()).U8(5).buf,
                    "union tag for non-union type");
}

TEST(WireHostileTest, TruncatedResourceRefRejected) {
  // Tag kResourceRef with only the first of two u32 fields.
  ExpectDecodeError(CallPrefix(ScalarArgCall()).U8(6).U32(3).buf,
                    "truncated resource ref");
}

TEST(WireHostileTest, TruncatedResourceSpecialRejected) {
  ExpectDecodeError(CallPrefix(ScalarArgCall()).U8(7).U32(1).buf,
                    "truncated resource special");
}

TEST(WireHostileTest, TruncatedVmaRejected) {
  ExpectDecodeError(CallPrefix(ScalarArgCall()).U8(8).U64(0x1000).buf,
                    "truncated vma arg");
}

// ---- properties over a genuine serialization ----

TEST(WireHostileTest, EveryStrictPrefixFailsCleanly) {
  const std::vector<uint8_t> bytes = SampleBytes();
  ASSERT_GT(bytes.size(), 8u);
  for (size_t len = 0; len < bytes.size(); ++len) {
    const std::vector<uint8_t> prefix(bytes.begin(), bytes.begin() + len);
    const Status status = Decode(prefix);
    EXPECT_FALSE(status.ok()) << "prefix of " << len << " bytes decoded";
    EXPECT_EQ(status.code(), StatusCode::kParseError);
  }
}

TEST(WireHostileTest, RandomBitFlipsNeverCrashTheDecoder) {
  const std::vector<uint8_t> bytes = SampleBytes();
  Rng rng(99);
  size_t survived = 0;
  for (int i = 0; i < 300; ++i) {
    std::vector<uint8_t> mutated = bytes;
    const size_t bit = rng.Below(mutated.size() * 8);
    mutated[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
    Result<Prog> prog =
        DeserializeProg(BuiltinTarget(), mutated.data(), mutated.size());
    if (prog.ok()) {
      // A flip that still decodes must yield a structurally sound program.
      ++survived;
      prog->Validate().ok();  // Must not crash; failure is acceptable.
    }
  }
  // Most flips land in payload bytes; some must be caught by validation.
  EXPECT_LT(survived, 300u);
}

// ---- corpus container hardening ----

void WriteFileBytes(const std::string& path,
                    const std::vector<uint8_t>& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  if (!bytes.empty()) {
    ASSERT_EQ(std::fwrite(bytes.data(), bytes.size(), 1, f), 1u);
  }
  std::fclose(f);
}

void ExpectLoadError(const std::string& path,
                     const std::string& message_fragment) {
  const Status status =
      LoadProgs(path, BuiltinTarget(), nullptr).status();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kParseError);
  EXPECT_NE(status.message().find(message_fragment), std::string::npos)
      << "got: " << status.message();
}

TEST(CorpusHostileTest, ShortFileRejected) {
  const std::string path = "/tmp/healer_hostile_short.bin";
  WriteFileBytes(path, {'H', 'C', 'O', 'R', 1});
  ExpectLoadError(path, "not a corpus file");
}

TEST(CorpusHostileTest, BadContainerMagicRejected) {
  const std::string path = "/tmp/healer_hostile_magic.bin";
  Wire w;
  w.U32(0x58585858).U32(0);
  WriteFileBytes(path, w.buf);
  ExpectLoadError(path, "not a corpus file");
}

TEST(CorpusHostileTest, CountExceedingFileSizeRejected) {
  // A count the file could not possibly hold (no room for length fields)
  // must be rejected before any allocation is attempted.
  const std::string path = "/tmp/healer_hostile_count.bin";
  Wire w;
  w.U8('H').U8('C').U8('O').U8('R').U32(1000);
  WriteFileBytes(path, w.buf);
  ExpectLoadError(path, "bad corpus count");
}

TEST(CorpusHostileTest, OversizedEntryLengthRejected) {
  // Entry claims more bytes than remain in the file.
  const std::string path = "/tmp/healer_hostile_entry.bin";
  Wire w;
  w.U8('H').U8('C').U8('O').U8('R').U32(1).U32(100);
  WriteFileBytes(path, w.buf);
  ExpectLoadError(path, "oversized program length at entry 0");
}

TEST(CorpusHostileTest, HugeEntryLengthRejected) {
  const std::string path = "/tmp/healer_hostile_huge.bin";
  Wire w;
  w.U8('H').U8('C').U8('O').U8('R').U32(1).U32(0xfffffff0);
  WriteFileBytes(path, w.buf);
  ExpectLoadError(path, "oversized program length at entry 0");
}

TEST(CorpusHostileTest, GarbageEntrySkippedNotFatal) {
  // A corrupt entry inside an otherwise valid container is counted in
  // `skipped` while the remaining programs still load.
  const std::string path = "/tmp/healer_hostile_mixed.bin";
  const std::vector<uint8_t> good = SampleBytes();
  Wire w;
  w.U8('H').U8('C').U8('O').U8('R').U32(2);
  w.U32(4).U32(0xdeadbeef);  // Entry 0: four garbage bytes.
  w.U32(static_cast<uint32_t>(good.size()));
  w.buf.insert(w.buf.end(), good.begin(), good.end());
  WriteFileBytes(path, w.buf);

  size_t skipped = 0;
  Result<std::vector<Prog>> progs =
      LoadProgs(path, BuiltinTarget(), &skipped);
  ASSERT_TRUE(progs.ok()) << progs.status().ToString();
  EXPECT_EQ(progs->size(), 1u);
  EXPECT_EQ(skipped, 1u);
}

// ---- hcorp1 container hardening ----

std::vector<uint8_t> ReadFileBytes(const std::string& path) {
  std::vector<uint8_t> bytes;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return bytes;
  }
  std::fseek(f, 0, SEEK_END);
  bytes.resize(static_cast<size_t>(std::ftell(f)));
  std::rewind(f);
  if (!bytes.empty() && std::fread(bytes.data(), bytes.size(), 1, f) != 1) {
    bytes.clear();
  }
  std::fclose(f);
  return bytes;
}

uint64_t HashOf(const uint8_t* data, size_t len) {
  return FastBytesHash(
      std::string_view(reinterpret_cast<const char*>(data), len));
}

uint64_t GetU64At(const std::vector<uint8_t>& b, size_t off) {
  uint64_t v;
  std::memcpy(&v, b.data() + off, 8);
  return v;
}

void PutU32At(std::vector<uint8_t>* b, size_t off, uint32_t v) {
  std::memcpy(b->data() + off, &v, 4);
}

void PutU64At(std::vector<uint8_t>* b, size_t off, uint64_t v) {
  std::memcpy(b->data() + off, &v, 8);
}

// Recomputes the index checksum (header word at 48) and the header checksum
// (at 56) after a test mutated header fields, index entries, or payloads —
// so each test trips exactly the validation stage it targets, not the
// checksums in front of it.
void FixHcorpChecksums(std::vector<uint8_t>* b) {
  const uint64_t count = GetU64At(*b, 16);
  const uint64_t index_len = count * 16;
  if (index_len <= b->size() - 64) {
    PutU64At(b, 48, HashOf(b->data() + 64, index_len));
  }
  PutU64At(b, 56, HashOf(b->data(), 56));
}

// Recomputes index entry `i`'s payload checksum from the (possibly
// corrupted) payload bytes.
void FixHcorpEntryChecksum(std::vector<uint8_t>* b, size_t i) {
  const uint64_t payload_off = GetU64At(*b, 32);
  const size_t entry = 64 + i * 16;
  const uint64_t offset = GetU64At(*b, entry);
  uint32_t len;
  std::memcpy(&len, b->data() + entry + 8, 4);
  PutU32At(b, entry + 12,
           static_cast<uint32_t>(
               HashOf(b->data() + payload_off + offset, len)));
}

// A valid two-program hcorp1 file to corrupt, written to `path`.
std::vector<uint8_t> SampleHcorp1(const std::string& path) {
  const Target& target = BuiltinTarget();
  std::vector<int> ids;
  for (const auto& call : target.syscalls()) {
    ids.push_back(call->id);
  }
  Rng rng(4);
  std::vector<Prog> progs;
  progs.push_back(BuildChain(target, ids, {"memfd_create", "write$memfd"},
                             &rng));
  progs.push_back(BuildChain(target, ids, {"memfd_create", "write$memfd"},
                             &rng));
  EXPECT_TRUE(SaveProgs(path, progs, CorpusFormat::kHcorp1).ok());
  return ReadFileBytes(path);
}

TEST(Hcorp1HostileTest, TruncatedHeaderRejected) {
  const std::string path = "/tmp/healer_hcorp_trunc_header.bin";
  std::vector<uint8_t> bytes = SampleHcorp1(path);
  bytes.resize(32);  // Magic survives; the rest of the header does not.
  WriteFileBytes(path, bytes);
  ExpectLoadError(path, "truncated hcorp1 header");
}

TEST(Hcorp1HostileTest, HeaderChecksumMismatchRejected) {
  const std::string path = "/tmp/healer_hcorp_hdr_sum.bin";
  std::vector<uint8_t> bytes = SampleHcorp1(path);
  bytes[20] ^= 0x01;  // Count field, checksum left stale.
  WriteFileBytes(path, bytes);
  ExpectLoadError(path, "header checksum mismatch");
}

TEST(Hcorp1HostileTest, UnsupportedVersionRejected) {
  const std::string path = "/tmp/healer_hcorp_version.bin";
  std::vector<uint8_t> bytes = SampleHcorp1(path);
  PutU32At(&bytes, 8, 99);
  FixHcorpChecksums(&bytes);
  WriteFileBytes(path, bytes);
  ExpectLoadError(path, "unsupported hcorp1 version");
}

TEST(Hcorp1HostileTest, UnsupportedPageSizeRejected) {
  const std::string path = "/tmp/healer_hcorp_pagesize.bin";
  std::vector<uint8_t> bytes = SampleHcorp1(path);
  PutU32At(&bytes, 12, 512);
  FixHcorpChecksums(&bytes);
  WriteFileBytes(path, bytes);
  ExpectLoadError(path, "unsupported hcorp1 page size");
}

TEST(Hcorp1HostileTest, HugeCountRejected) {
  const std::string path = "/tmp/healer_hcorp_count.bin";
  std::vector<uint8_t> bytes = SampleHcorp1(path);
  PutU64At(&bytes, 16, (1ull << 20) + 1);
  FixHcorpChecksums(&bytes);
  WriteFileBytes(path, bytes);
  ExpectLoadError(path, "bad corpus count");
}

TEST(Hcorp1HostileTest, IndexBeyondFileRejected) {
  // A count under the cap whose index could not fit in the file must be
  // caught by extent validation before any index byte is read.
  const std::string path = "/tmp/healer_hcorp_index_oob.bin";
  std::vector<uint8_t> bytes = SampleHcorp1(path);
  PutU64At(&bytes, 16, 100000);
  FixHcorpChecksums(&bytes);
  WriteFileBytes(path, bytes);
  ExpectLoadError(path, "index out of bounds");
}

TEST(Hcorp1HostileTest, MisalignedPayloadRejected) {
  const std::string path = "/tmp/healer_hcorp_align.bin";
  std::vector<uint8_t> bytes = SampleHcorp1(path);
  PutU64At(&bytes, 32, GetU64At(bytes, 32) + 16);
  FixHcorpChecksums(&bytes);
  WriteFileBytes(path, bytes);
  ExpectLoadError(path, "payload extent mismatch");
}

TEST(Hcorp1HostileTest, TruncatedPayloadRejected) {
  const std::string path = "/tmp/healer_hcorp_trunc_payload.bin";
  std::vector<uint8_t> bytes = SampleHcorp1(path);
  bytes.pop_back();  // Header stays intact; the payload extent shrinks.
  WriteFileBytes(path, bytes);
  ExpectLoadError(path, "payload extent mismatch");
}

TEST(Hcorp1HostileTest, IndexChecksumMismatchRejected) {
  const std::string path = "/tmp/healer_hcorp_idx_sum.bin";
  std::vector<uint8_t> bytes = SampleHcorp1(path);
  bytes[64] ^= 0x01;  // Entry 0 offset, index checksum left stale.
  PutU64At(&bytes, 56, HashOf(bytes.data(), 56));  // Header stays valid.
  WriteFileBytes(path, bytes);
  ExpectLoadError(path, "index checksum mismatch");
}

TEST(Hcorp1HostileTest, EntryExtentOutOfBoundsRejected) {
  const std::string path = "/tmp/healer_hcorp_entry_oob.bin";
  std::vector<uint8_t> bytes = SampleHcorp1(path);
  PutU32At(&bytes, 64 + 8, (1u << 24) + 1);  // Entry 0 length over the cap.
  FixHcorpChecksums(&bytes);
  WriteFileBytes(path, bytes);
  ExpectLoadError(path, "extent out of bounds");
}

TEST(Hcorp1HostileTest, OverlappingEntriesRejected) {
  const std::string path = "/tmp/healer_hcorp_overlap.bin";
  std::vector<uint8_t> bytes = SampleHcorp1(path);
  PutU64At(&bytes, 64 + 16, 0);  // Entry 1 rewound onto entry 0's bytes.
  FixHcorpChecksums(&bytes);
  WriteFileBytes(path, bytes);
  ExpectLoadError(path, "overlaps its predecessor");
}

TEST(Hcorp1HostileTest, EntryChecksumMismatchRejected) {
  const std::string path = "/tmp/healer_hcorp_entry_sum.bin";
  std::vector<uint8_t> bytes = SampleHcorp1(path);
  const uint64_t payload_off = GetU64At(bytes, 32);
  bytes[payload_off] ^= 0x01;  // Payload damage, entry checksum stale.
  WriteFileBytes(path, bytes);
  ExpectLoadError(path, "payload checksum mismatch");
}

TEST(Hcorp1HostileTest, UndecodableProgramSkippedNotFatal) {
  // Structural checks pass (every checksum rewritten to match the damage);
  // the program that no longer decodes is skipped, its sibling loads.
  const std::string path = "/tmp/healer_hcorp_skip.bin";
  std::vector<uint8_t> bytes = SampleHcorp1(path);
  const uint64_t payload_off = GetU64At(bytes, 32);
  bytes[payload_off] ^= 0x01;  // Entry 0's wire magic byte.
  FixHcorpEntryChecksum(&bytes, 0);
  FixHcorpChecksums(&bytes);
  WriteFileBytes(path, bytes);
  size_t skipped = 0;
  Result<std::vector<Prog>> progs =
      LoadProgs(path, BuiltinTarget(), &skipped);
  ASSERT_TRUE(progs.ok()) << progs.status().ToString();
  EXPECT_EQ(progs->size(), 1u);
  EXPECT_EQ(skipped, 1u);
}

TEST(Hcorp1HostileTest, RandomBitFlipsNeverCrashTheLoader) {
  const std::string path = "/tmp/healer_hcorp_flip_src.bin";
  const std::string flipped = "/tmp/healer_hcorp_flip.bin";
  const std::vector<uint8_t> bytes = SampleHcorp1(path);
  Rng rng(515);
  size_t survived = 0;
  for (int i = 0; i < 200; ++i) {
    std::vector<uint8_t> mutated = bytes;
    const size_t bit = rng.Below(mutated.size() * 8);
    mutated[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
    WriteFileBytes(flipped, mutated);
    Result<std::vector<Prog>> progs =
        LoadProgs(flipped, BuiltinTarget(), nullptr);
    if (progs.ok()) {
      ++survived;  // Padding-byte flips may survive; they must not crash.
    }
  }
  // Any flip in header, index, or payload trips a checksum.
  EXPECT_LT(survived, 200u);
}

// ---- shared-memory channel hardening ----

TEST(ShmChannelHostileTest, HugeGuestLengthWordReadsAsEmpty) {
  // The guest owns the region and can write any length word; a value the
  // region cannot hold must read as an empty program, never as a
  // past-the-mapping read.
  ShmChannel shm;
  ASSERT_TRUE(shm.WriteProg({1, 2, 3, 4}));
  EXPECT_EQ(shm.prog_size(), 4u);
  const uint64_t huge = ~0ull;
  std::memcpy(shm.raw(), &huge, 8);
  EXPECT_EQ(shm.prog_size(), 0u);
  const uint64_t off_by_one = ShmChannel::kSize - 7;
  std::memcpy(shm.raw(), &off_by_one, 8);
  EXPECT_EQ(shm.prog_size(), 0u);
  // The largest representable program is still accepted.
  const uint64_t max_ok = ShmChannel::kSize - 8;
  std::memcpy(shm.raw(), &max_ok, 8);
  EXPECT_EQ(shm.prog_size(), ShmChannel::kSize - 8);
}

// ---- control socket bounding ----

TEST(ControlSocketTest, BoundedQueueDropsAndCountsOverflow) {
  ControlSocket ctrl;
  MetricRegistry metrics;
  ctrl.set_overflow_counter(metrics.GetCounter("healer_ctrl_overflow_total"));
  for (size_t i = 0; i < ControlSocket::kMaxPending + 10; ++i) {
    ctrl.Send(CtrlFrame{CtrlKind::kCrashNotice, i});
  }
  EXPECT_EQ(ctrl.pending(), ControlSocket::kMaxPending);
  EXPECT_EQ(ctrl.overflows(), 10u);
  EXPECT_EQ(metrics.Snapshot().counter("healer_ctrl_overflow_total"), 10u);
  // Draining restores capacity; frames past the cap were dropped, the rest
  // kept their order.
  CtrlFrame frame;
  for (size_t i = 0; i < ControlSocket::kMaxPending; ++i) {
    ASSERT_TRUE(ctrl.Recv(&frame));
    EXPECT_EQ(frame.payload, i);
  }
  EXPECT_FALSE(ctrl.Recv(&frame));
  ctrl.Send(CtrlFrame{CtrlKind::kHandshake, 1});
  EXPECT_EQ(ctrl.pending(), 1u);
  EXPECT_EQ(ctrl.overflows(), 10u);
}

// ---- completion codec hardening (ring CQ payloads) ----

// Completion-wire writer (header: magic, failure, has_crash, num_calls).
struct CqeWire {
  Wire w;
  CqeWire& Header(uint8_t failure, uint8_t has_crash, uint16_t num_calls) {
    w.U32(kCompletionMagic).U8(failure).U8(has_crash);
    w.U8(static_cast<uint8_t>(num_calls & 0xff));
    w.U8(static_cast<uint8_t>(num_calls >> 8));
    return *this;
  }
};

void ExpectCompletionError(const std::vector<uint8_t>& bytes,
                           const std::string& message_fragment) {
  const Status status = DecodeCompletion(bytes.data(), bytes.size()).status();
  ASSERT_FALSE(status.ok()) << "expected failure: " << message_fragment;
  EXPECT_EQ(status.code(), StatusCode::kParseError);
  EXPECT_NE(status.message().find(message_fragment), std::string::npos)
      << "got: " << status.message();
}

std::vector<uint8_t> SampleCompletion() {
  ExecResult result;
  CallExecInfo call;
  call.executed = true;
  call.retval = 3;
  call.signal = 0xfeedface;
  call.new_edges = 2;
  call.num_edges = 5;
  call.slot_values = {1, 2, 3};
  result.calls.push_back(call);
  CrashInfo crash;
  crash.bug = static_cast<BugId>(9);
  crash.title = "BUG: sim crash";
  crash.call_index = 0;
  result.crash = crash;
  return EncodeCompletion(result);
}

TEST(RingHostileTest, CompletionBadMagicRejected) {
  Wire w;
  w.U32(kCompletionMagic ^ 1).U8(0).U8(0).U8(0).U8(0);
  ExpectCompletionError(w.buf, "bad magic");
}

TEST(RingHostileTest, CompletionTruncatedHeaderRejected) {
  Wire w;
  w.U32(kCompletionMagic).U8(0);
  ExpectCompletionError(w.buf, "truncated header");
}

TEST(RingHostileTest, CompletionUnknownFailureKindRejected) {
  CqeWire c;
  c.Header(200, 0, 0);
  ExpectCompletionError(c.w.buf, "unknown failure kind");
}

TEST(RingHostileTest, CompletionBadCrashFlagRejected) {
  CqeWire c;
  c.Header(0, 2, 0);
  ExpectCompletionError(c.w.buf, "bad crash flag");
}

TEST(RingHostileTest, CompletionHugeCallCountRejected) {
  CqeWire c;
  c.Header(0, 0, 2000);  // > kMaxCompletionCalls.
  ExpectCompletionError(c.w.buf, "bad call count");
}

TEST(RingHostileTest, CompletionOversizedCrashTitleRejected) {
  CqeWire c;
  c.Header(0, 1, 0);
  c.w.U32(9).U32(0).U8(0x2c).U8(0x01);  // title_len = 300 > kMaxCrashTitle.
  ExpectCompletionError(c.w.buf, "oversized crash title");
}

TEST(RingHostileTest, CompletionTruncatedCrashTitleRejected) {
  CqeWire c;
  c.Header(0, 1, 0);
  c.w.U32(9).U32(0).U8(16).U8(0).U8('x');  // Claims 16 bytes, carries 1.
  ExpectCompletionError(c.w.buf, "truncated crash title");
}

TEST(RingHostileTest, CompletionTruncatedCallRecordRejected) {
  CqeWire c;
  c.Header(0, 0, 1);
  c.w.U8(1).U64(0);  // Call record cut short.
  ExpectCompletionError(c.w.buf, "truncated call record");
}

TEST(RingHostileTest, CompletionBadExecutedFlagRejected) {
  CqeWire c;
  c.Header(0, 0, 1);
  c.w.U8(7).U64(0).U64(0).U32(0).U32(0).U8(0).U8(0);
  ExpectCompletionError(c.w.buf, "bad executed flag");
}

TEST(RingHostileTest, CompletionHugeSlotCountRejected) {
  CqeWire c;
  c.Header(0, 0, 1);
  c.w.U8(1).U64(0).U64(0).U32(0).U32(0).U8(100).U8(0);  // > kMaxSlots.
  ExpectCompletionError(c.w.buf, "bad slot count");
}

TEST(RingHostileTest, CompletionTruncatedSlotValuesRejected) {
  CqeWire c;
  c.Header(0, 0, 1);
  c.w.U8(1).U64(0).U64(0).U32(0).U32(0).U8(2).U8(0).U64(1);  // 2 slots, 1.
  ExpectCompletionError(c.w.buf, "truncated slot values");
}

TEST(RingHostileTest, CompletionTrailingBytesRejected) {
  std::vector<uint8_t> bytes = SampleCompletion();
  bytes.push_back(0xff);
  ExpectCompletionError(bytes, "trailing bytes");
}

TEST(RingHostileTest, CompletionEveryStrictPrefixFailsCleanly) {
  const std::vector<uint8_t> bytes = SampleCompletion();
  ASSERT_GT(bytes.size(), 8u);
  for (size_t len = 0; len < bytes.size(); ++len) {
    const std::vector<uint8_t> prefix(bytes.begin(), bytes.begin() + len);
    const Status status =
        DecodeCompletion(prefix.data(), prefix.size()).status();
    EXPECT_FALSE(status.ok()) << "prefix of " << len << " bytes decoded";
    EXPECT_EQ(status.code(), StatusCode::kParseError);
  }
}

TEST(RingHostileTest, CompletionRandomBitFlipsNeverCrashTheDecoder) {
  const std::vector<uint8_t> bytes = SampleCompletion();
  Rng rng(4242);
  size_t survived = 0;
  for (int i = 0; i < 300; ++i) {
    std::vector<uint8_t> mutated = bytes;
    const size_t bit = rng.Below(mutated.size() * 8);
    mutated[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
    const Result<ExecResult> decoded =
        DecodeCompletion(mutated.data(), mutated.size());
    if (decoded.ok()) {
      ++survived;  // Payload-byte flips may survive; they must not crash.
    }
  }
  EXPECT_LT(survived, 300u);  // Structural flips must be caught.
}

TEST(RingHostileTest, StaleSequenceNumbersNeverWedgeTheRing) {
  // A hostile guest rewriting sequence words can destroy entries but must
  // never wedge the consumer: every poke is skipped-and-freed.
  SlotRing ring(8, 64);
  Rng rng(7);
  uint64_t pushed = 0;
  size_t delivered = 0;
  size_t dropped = 0;
  std::vector<uint8_t> out;
  uint64_t user_data = 0;
  for (int round = 0; round < 200; ++round) {
    while (!ring.Full()) {
      const uint8_t b = static_cast<uint8_t>(pushed & 0xff);
      ASSERT_TRUE(ring.Push(&b, 1, pushed));
      ++pushed;
    }
    if (rng.Chance(1, 3)) {
      ring.TestPokeSeq(rng.Next(), rng.Next());  // Corrupt a random slot.
    }
    for (int i = 0; i < 8; ++i) {
      const SlotRing::Pop popped = ring.TryPop(&out, &user_data);
      if (popped == SlotRing::Pop::kOk) {
        ++delivered;
      } else if (popped == SlotRing::Pop::kEmpty) {
        break;
      } else {
        ++dropped;  // kTorn/kStale: entry lost, ring still live.
      }
    }
  }
  // Conservation: every pushed entry was either delivered or dropped, and
  // the ring kept making progress throughout.
  EXPECT_EQ(delivered + dropped + ring.size(), pushed);
  EXPECT_GT(delivered, 0u);
}

// ---- HGSP1 gossip frames (gossip.h) ----
//
// The cross-shard gossip codec faces the same adversary as the corpus
// container: bytes from outside the process. Every length is checked before
// use, the payload checksum before the payload, and replayed (origin, seq)
// pairs are dropped — a hostile peer can waste bandwidth but cannot corrupt
// shard state or double-credit the exactly-once accounting.

std::vector<uint8_t> SampleGossipFrame(GossipFrameType type,
                                       std::vector<uint8_t> payload,
                                       uint64_t seq = 7) {
  GossipFrame frame;
  frame.type = type;
  frame.origin = 3;
  frame.seq = seq;
  frame.payload = std::move(payload);
  std::vector<uint8_t> bytes;
  AppendGossipFrame(frame, &bytes);
  return bytes;
}

void ExpectGossipError(const std::vector<uint8_t>& bytes,
                       const std::string& want) {
  size_t consumed = 0;
  Result<GossipFrame> frame =
      DecodeGossipFrame(bytes.data(), bytes.size(), &consumed);
  ASSERT_FALSE(frame.ok()) << "expected rejection: " << want;
  EXPECT_NE(frame.status().message().find(want), std::string::npos)
      << frame.status().ToString();
}

TEST(GossipHostileTest, EveryHeaderTruncationRejected) {
  const std::vector<uint8_t> bytes =
      SampleGossipFrame(GossipFrameType::kCoverage, {1, 2, 3});
  for (size_t len = 0; len < kGossipHeaderBytes; ++len) {
    size_t consumed = 0;
    Result<GossipFrame> frame =
        DecodeGossipFrame(bytes.data(), len, &consumed);
    EXPECT_FALSE(frame.ok()) << "prefix " << len;
  }
}

TEST(GossipHostileTest, TruncatedPayloadRejected) {
  const std::vector<uint8_t> bytes =
      SampleGossipFrame(GossipFrameType::kCoverage, {1, 2, 3, 4});
  size_t consumed = 0;
  Result<GossipFrame> frame =
      DecodeGossipFrame(bytes.data(), bytes.size() - 2, &consumed);
  ASSERT_FALSE(frame.ok());
  EXPECT_NE(frame.status().message().find("truncated frame payload"),
            std::string::npos);
}

TEST(GossipHostileTest, BadMagicRejected) {
  std::vector<uint8_t> bytes =
      SampleGossipFrame(GossipFrameType::kRelations, {});
  bytes[0] ^= 0xff;
  ExpectGossipError(bytes, "bad frame magic");
}

TEST(GossipHostileTest, UnsupportedVersionRejected) {
  std::vector<uint8_t> bytes =
      SampleGossipFrame(GossipFrameType::kRelations, {});
  bytes[4] = 99;
  ExpectGossipError(bytes, "unsupported version");
}

TEST(GossipHostileTest, UnknownFrameTypeRejected) {
  std::vector<uint8_t> bytes =
      SampleGossipFrame(GossipFrameType::kRelations, {});
  bytes[5] = 17;
  ExpectGossipError(bytes, "unknown frame type");
}

TEST(GossipHostileTest, NonzeroReservedBytesRejected) {
  std::vector<uint8_t> bytes =
      SampleGossipFrame(GossipFrameType::kRelations, {});
  bytes[6] = 1;
  ExpectGossipError(bytes, "nonzero reserved");
}

TEST(GossipHostileTest, HugePayloadLengthRejected) {
  std::vector<uint8_t> bytes =
      SampleGossipFrame(GossipFrameType::kSeeds, {});
  const uint32_t huge = 0x7fffffff;  // Claims 2 GiB; must not allocate it.
  std::memcpy(bytes.data() + 12, &huge, 4);
  ExpectGossipError(bytes, "exceeds limit");
}

TEST(GossipHostileTest, PayloadChecksumMismatchRejected) {
  std::vector<uint8_t> bytes =
      SampleGossipFrame(GossipFrameType::kCoverage, {1, 2, 3, 4, 5});
  bytes[kGossipHeaderBytes + 2] ^= 0x10;
  ExpectGossipError(bytes, "payload checksum mismatch");
}

TEST(GossipHostileTest, StreamStopsAtFirstBadFrame) {
  std::vector<uint8_t> bytes =
      SampleGossipFrame(GossipFrameType::kRelations,
                        EncodeRelationsPayload({}), 0);
  std::vector<uint8_t> bad =
      SampleGossipFrame(GossipFrameType::kCoverage, {9, 9, 9}, 1);
  bad[4] = 2;  // Version from the future.
  bytes.insert(bytes.end(), bad.begin(), bad.end());
  Result<std::vector<GossipFrame>> frames =
      DecodeGossipStream(bytes.data(), bytes.size());
  EXPECT_FALSE(frames.ok());  // All-or-nothing: the exchange is rejected.
}

TEST(GossipHostileTest, RelationsPayloadCountMismatchRejected) {
  std::vector<uint8_t> payload = EncodeRelationsPayload(
      {{1, 2, RelationSource::kDynamic, 0}});
  const uint32_t lie = 2;  // Claims two edges, carries one.
  std::memcpy(payload.data(), &lie, 4);
  Result<std::vector<WireRelationEdge>> edges =
      DecodeRelationsPayload(payload, 16);
  ASSERT_FALSE(edges.ok());
  EXPECT_NE(edges.status().message().find("length mismatch"),
            std::string::npos);
}

TEST(GossipHostileTest, RelationsOutOfRangeSyscallIdRejected) {
  const std::vector<uint8_t> payload = EncodeRelationsPayload(
      {{5, 200, RelationSource::kDynamic, 0}});
  Result<std::vector<WireRelationEdge>> edges =
      DecodeRelationsPayload(payload, 16);
  ASSERT_FALSE(edges.ok());
  EXPECT_NE(edges.status().message().find("out of range"),
            std::string::npos);
}

TEST(GossipHostileTest, CoverageOutOfRangeWordIndexRejected) {
  const std::vector<uint8_t> payload =
      EncodeCoveragePayload({{2000, 0xffULL}});
  Result<std::vector<WireCoverageWord>> words =
      DecodeCoveragePayload(payload, 1024);
  ASSERT_FALSE(words.ok());
  EXPECT_NE(words.status().message().find("out of range"),
            std::string::npos);
}

TEST(GossipHostileTest, SeedsTruncatedLengthRejected) {
  std::vector<uint8_t> payload = EncodeSeedsPayload({{1, 2, 3}});
  payload.resize(payload.size() - 2);  // Cut into the seed bytes.
  Result<std::vector<std::vector<uint8_t>>> blobs =
      DecodeSeedsPayload(payload);
  EXPECT_FALSE(blobs.ok());
}

TEST(GossipHostileTest, SeedsTrailingBytesRejected) {
  std::vector<uint8_t> payload = EncodeSeedsPayload({{1, 2, 3}});
  payload.push_back(0xaa);
  Result<std::vector<std::vector<uint8_t>>> blobs =
      DecodeSeedsPayload(payload);
  ASSERT_FALSE(blobs.ok());
  EXPECT_NE(blobs.status().message().find("trailing bytes"),
            std::string::npos);
}

TEST(GossipHostileTest, ReplayedFrameDroppedWithoutStateChange) {
  const Target& target = BuiltinTarget();
  FuzzerOptions options;
  options.num_vms = 2;
  FuzzShard receiver(target, options, 1);

  GossipFrame frame;
  frame.type = GossipFrameType::kCoverage;
  frame.origin = 0;
  frame.seq = 5;
  frame.payload = EncodeCoveragePayload({{3, 0xf0f0ULL}});
  std::vector<uint8_t> bytes;
  AppendGossipFrame(frame, &bytes);

  ASSERT_TRUE(receiver.Ingest(bytes.data(), bytes.size()).ok());
  EXPECT_EQ(receiver.ApplyInbox(), 1u);
  const uint64_t credited = receiver.stats().coverage_bits_imported;
  EXPECT_GT(credited, 0u);

  // Same frame again — and again: dropped at ingest, zero new credit.
  for (int replay = 0; replay < 3; ++replay) {
    ASSERT_TRUE(receiver.Ingest(bytes.data(), bytes.size()).ok());
    EXPECT_EQ(receiver.ApplyInbox(), 0u);
  }
  EXPECT_EQ(receiver.stats().coverage_bits_imported, credited);
  EXPECT_EQ(receiver.stats().frames_replayed, 3u);
}

TEST(GossipHostileTest, RandomBitFlipsNeverCrashTheDecoder) {
  const std::vector<uint8_t> pristine = SampleGossipFrame(
      GossipFrameType::kCoverage,
      EncodeCoveragePayload({{1, 2}, {3, 4}, {5, 6}}));
  Rng rng(20260809);
  size_t rejected = 0;
  for (int trial = 0; trial < 2000; ++trial) {
    std::vector<uint8_t> bytes = pristine;
    const int flips = 1 + static_cast<int>(rng.Below(4));
    for (int f = 0; f < flips; ++f) {
      bytes[rng.Below(bytes.size())] ^=
          static_cast<uint8_t>(1u << rng.Below(8));
    }
    size_t consumed = 0;
    Result<GossipFrame> frame =
        DecodeGossipFrame(bytes.data(), bytes.size(), &consumed);
    if (!frame.ok()) {
      ++rejected;
      continue;
    }
    // A frame that survived the checksum still decodes its payload against
    // receiver-side bounds without crashing.
    Result<std::vector<WireCoverageWord>> words =
        DecodeCoveragePayload(frame->payload, 1024);
    (void)words;
  }
  // The checksum catches every payload flip; flips confined to the
  // origin/seq identity fields survive by design (dedup, not integrity,
  // owns those), so rejection is high but not total.
  EXPECT_GT(rejected, 1500u);
}

}  // namespace
}  // namespace healer
