// Executor and VM-layer tests: per-call coverage, resource resolution,
// out-parameter extraction, wire transport, clock/latency modelling, crash
// reboot, monitor log collection.

#include <gtest/gtest.h>

#include "src/base/rng.h"
#include "src/kernel/errno.h"
#include "src/exec/executor.h"
#include "src/exec/shm_channel.h"
#include "src/fuzz/templates.h"
#include "src/syzlang/builtin_descs.h"
#include "src/vm/vm_pool.h"

namespace healer {
namespace {

std::vector<int> AllIds(const Target& target) {
  std::vector<int> ids;
  for (const auto& call : target.syscalls()) {
    ids.push_back(call->id);
  }
  return ids;
}

Prog Chain(const std::vector<std::string>& names, uint64_t seed = 1) {
  const Target& target = BuiltinTarget();
  Rng rng(seed);
  return BuildChain(target, AllIds(target), names, &rng);
}

class ExecutorTest : public ::testing::Test {
 protected:
  ExecutorTest()
      : executor_(BuiltinTarget(),
                  KernelConfig::ForVersion(KernelVersion::kV5_11)) {}
  Executor executor_;
};

TEST_F(ExecutorTest, KvmChainSucceedsEndToEnd) {
  Prog prog = Chain({"openat$kvm", "ioctl$KVM_CREATE_VM",
                     "ioctl$KVM_CREATE_VCPU"});
  ASSERT_EQ(prog.size(), 3u);
  const ExecResult result = executor_.Run(prog, nullptr);
  ASSERT_EQ(result.calls.size(), 3u);
  for (const auto& call : result.calls) {
    EXPECT_TRUE(call.executed);
    EXPECT_GE(call.retval, 0) << "chain call failed";
    EXPECT_GT(call.num_edges, 0u);
  }
  // Each call produced an fd in slot 0.
  EXPECT_EQ(result.calls[0].slot_values[0], 3u);
  EXPECT_EQ(result.calls[1].slot_values[0], 4u);
  EXPECT_EQ(result.calls[2].slot_values[0], 5u);
}

TEST_F(ExecutorTest, PerCallSignalsAreDeterministic) {
  Prog prog = Chain({"memfd_create", "write$memfd", "fcntl$ADD_SEALS"});
  const ExecResult a = executor_.Run(prog, nullptr);
  const ExecResult b = executor_.Run(prog, nullptr);
  ASSERT_EQ(a.calls.size(), b.calls.size());
  for (size_t i = 0; i < a.calls.size(); ++i) {
    EXPECT_EQ(a.calls[i].signal, b.calls[i].signal);
    EXPECT_EQ(a.calls[i].retval, b.calls[i].retval);
  }
}

TEST_F(ExecutorTest, RemovingSealsChangesMmapCoverage) {
  // The Figure 2 example: fcntl$ADD_SEALS influences mmap's path.
  Prog with_seals =
      Chain({"memfd_create", "fcntl$ADD_SEALS", "mmap"}, /*seed=*/3);
  ASSERT_EQ(with_seals.size(), 3u);
  // Force the seal and mmap arguments into the interesting configuration:
  // sealing allowed, seals = F_SEAL_WRITE, mmap(PROT_WRITE, MAP_SHARED).
  with_seals.calls()[0].args[1]->val = 2;  // MFD_ALLOW_SEALING.
  with_seals.calls()[1].args[2]->val = 8;
  with_seals.calls()[2].args[2]->val = 3;  // PROT_READ|PROT_WRITE.
  with_seals.calls()[2].args[3]->val = 1;  // MAP_SHARED.
  with_seals.calls()[2].args[4]->res_ref = 0;
  with_seals.calls()[2].args[4]->res_slot = 0;
  with_seals.calls()[2].args[4]->kind = ArgKind::kResource;

  Prog without = with_seals.Clone();
  without.RemoveCall(1);

  const ExecResult a = executor_.Run(with_seals, nullptr);
  const ExecResult b = executor_.Run(without, nullptr);
  // mmap is call 2 in `a`, call 1 in `b`; its coverage must differ.
  EXPECT_NE(a.calls[2].signal, b.calls[1].signal);
}

TEST_F(ExecutorTest, OutParamResourceExtraction) {
  Prog prog = Chain({"pipe2", "write$pipe", "read$pipe"});
  ASSERT_EQ(prog.size(), 3u);
  const ExecResult result = executor_.Run(prog, nullptr);
  ASSERT_GE(result.calls[0].slot_values.size(), 3u);
  // Slots 1 and 2 carry the two pipe fds written through the out pointer.
  EXPECT_EQ(result.calls[0].slot_values[1], 3u);
  EXPECT_EQ(result.calls[0].slot_values[2], 4u);
}

TEST_F(ExecutorTest, ResourceSpecialValuesReachKernel) {
  const Target& target = BuiltinTarget();
  Prog prog(&target);
  Call close_call;
  close_call.meta = target.FindSyscall("close");
  close_call.args.push_back(MakeResourceSpecial(
      close_call.meta->args[0].type, static_cast<uint64_t>(-1)));
  prog.calls().push_back(std::move(close_call));
  const ExecResult result = executor_.Run(prog, nullptr);
  EXPECT_EQ(result.calls[0].retval, -kEBADF);
}

TEST_F(ExecutorTest, NullPointerArgsFault) {
  const Target& target = BuiltinTarget();
  Prog prog(&target);
  Call call;
  call.meta = target.FindSyscall("nanosleep");
  call.args.push_back(MakeNullPointer(call.meta->args[0].type));
  prog.calls().push_back(std::move(call));
  const ExecResult result = executor_.Run(prog, nullptr);
  EXPECT_EQ(result.calls[0].retval, -kEFAULT);
}

TEST_F(ExecutorTest, CrashStopsExecution) {
  Prog prog = Chain({"epoll_create1"});
  // epoll self-add: build manually for precision.
  const Target& target = BuiltinTarget();
  Call ctl;
  ctl.meta = target.FindSyscall("epoll_ctl$ADD");
  ctl.args.push_back(MakeResourceRef(ctl.meta->args[0].type, 0, 0));
  ctl.args.push_back(MakeConstant(ctl.meta->args[1].type, 1));
  ctl.args.push_back(MakeResourceRef(ctl.meta->args[2].type, 0, 0));
  ctl.args.push_back(MakePointer(
      ctl.meta->args[3].type,
      MakeGroup(ctl.meta->args[3].type->elem,
                [&] {
                  std::vector<ArgPtr> fields;
                  fields.push_back(MakeConstant(
                      ctl.meta->args[3].type->elem->fields[0].type, 1));
                  return fields;
                }())));
  prog.calls().push_back(std::move(ctl));
  Call after;
  after.meta = target.FindSyscall("sync");
  prog.calls().push_back(std::move(after));

  const ExecResult result = executor_.Run(prog, nullptr);
  ASSERT_TRUE(result.Crashed());
  EXPECT_EQ(result.crash->bug, BugId::kEpollSelfAddDeadlock);
  EXPECT_EQ(result.crash->call_index, 1u);
  EXPECT_FALSE(result.calls[2].executed);
}

TEST_F(ExecutorTest, GlobalCoverageAccumulates) {
  Bitmap global(CallCoverage::kMapBits);
  Prog prog = Chain({"memfd_create", "write$memfd"});
  const ExecResult first = executor_.Run(prog, &global);
  EXPECT_GT(first.TotalNewEdges(), 0u);
  const ExecResult second = executor_.Run(prog, &global);
  EXPECT_EQ(second.TotalNewEdges(), 0u);  // Nothing new on re-run.
}

TEST_F(ExecutorTest, EnosysForGatedSyscalls) {
  Executor old(BuiltinTarget(),
               KernelConfig::ForVersion(KernelVersion::kV4_19));
  Prog prog = Chain({"io_uring_setup"});
  const ExecResult result = old.Run(prog, nullptr);
  EXPECT_EQ(result.calls.back().retval, -kENOSYS);
  const Syscall* setup = BuiltinTarget().FindSyscall("io_uring_setup");
  EXPECT_FALSE(old.SyscallEnabled(setup->id));
  EXPECT_TRUE(executor_.SyscallEnabled(setup->id));
}

TEST_F(ExecutorTest, SerializedAndDirectExecutionAgree) {
  Prog prog = Chain({"socket$tcp", "bind", "listen"});
  const auto bytes = SerializeProg(prog);
  const ExecResult direct = executor_.Run(prog, nullptr);
  const ExecResult wired =
      executor_.RunSerialized(bytes.data(), bytes.size(), nullptr);
  ASSERT_EQ(direct.calls.size(), wired.calls.size());
  for (size_t i = 0; i < direct.calls.size(); ++i) {
    EXPECT_EQ(direct.calls[i].retval, wired.calls[i].retval);
    EXPECT_EQ(direct.calls[i].signal, wired.calls[i].signal);
  }
}

TEST_F(ExecutorTest, BadWireBytesYieldEmptyResult) {
  const uint8_t junk[] = {1, 2, 3};
  const ExecResult result =
      executor_.RunSerialized(junk, sizeof(junk), nullptr);
  EXPECT_TRUE(result.calls.empty());
}

// ---- shm channel / control socket ----

TEST(ShmChannelTest, CarriesProgBytes) {
  ShmChannel shm;
  std::vector<uint8_t> bytes = {9, 8, 7, 6, 5};
  ASSERT_TRUE(shm.WriteProg(bytes));
  ASSERT_EQ(shm.prog_size(), bytes.size());
  EXPECT_EQ(std::vector<uint8_t>(shm.prog_data(),
                                 shm.prog_data() + shm.prog_size()),
            bytes);
}

TEST(ShmChannelTest, RejectsOversizedProg) {
  ShmChannel shm;
  std::vector<uint8_t> huge(ShmChannel::kSize, 0);
  EXPECT_FALSE(shm.WriteProg(huge));
}

TEST(ControlSocketTest, FifoFrames) {
  ControlSocket sock;
  sock.Send(CtrlFrame{CtrlKind::kHandshake, 1});
  sock.Send(CtrlFrame{CtrlKind::kExecRequest, 2});
  CtrlFrame frame;
  ASSERT_TRUE(sock.Recv(&frame));
  EXPECT_EQ(frame.kind, CtrlKind::kHandshake);
  ASSERT_TRUE(sock.Recv(&frame));
  EXPECT_EQ(frame.payload, 2u);
  EXPECT_FALSE(sock.Recv(&frame));
}

// ---- GuestVm / VmPool / Monitor ----

TEST(GuestVmTest, BootAndExecAdvanceClock) {
  SimClock clock;
  GuestVm vm(BuiltinTarget(), KernelConfig::ForVersion(KernelVersion::kV5_11),
             &clock);
  Prog prog = Chain({"memfd_create", "write$memfd"});
  const SimClock::Nanos before = clock.now();
  vm.Exec(prog, nullptr);
  VmLatencyModel model;
  EXPECT_EQ(clock.now() - before,
            model.boot + model.exec_overhead + 2 * model.per_call);
}

TEST(GuestVmTest, CrashCausesRebootLatency) {
  SimClock clock;
  GuestVm vm(BuiltinTarget(), KernelConfig::ForVersion(KernelVersion::kV5_11),
             &clock);
  // Trigger the shallow mmap-zero-len bug: mmap(addr, 0, ..., MAP_FIXED).
  const Target& target = BuiltinTarget();
  Prog prog(&target);
  Call call;
  call.meta = target.FindSyscall("mmap");
  call.args.push_back(MakeVma(call.meta->args[0].type,
                              GuestMem::kVmaBase + 4096, 1));
  call.args.push_back(MakeConstant(call.meta->args[1].type, 0));
  call.args.push_back(MakeConstant(call.meta->args[2].type, 3));
  call.args.push_back(MakeConstant(call.meta->args[3].type, 0x10));
  call.args.push_back(MakeResourceSpecial(call.meta->args[4].type,
                                          static_cast<uint64_t>(-1)));
  call.args.push_back(MakeConstant(call.meta->args[5].type, 0));
  prog.calls().push_back(std::move(call));

  const ExecResult result = vm.Exec(prog, nullptr);
  ASSERT_TRUE(result.Crashed());
  EXPECT_EQ(vm.crashes(), 1u);
  const SimClock::Nanos after_crash = clock.now();
  Prog benign = Chain({"sync"});
  vm.Exec(benign, nullptr);
  VmLatencyModel model;
  EXPECT_EQ(clock.now() - after_crash,
            model.reboot + model.exec_overhead + model.per_call);
}

TEST(VmPoolTest, RoundRobinAndTotals) {
  SimClock clock;
  VmPool pool(BuiltinTarget(), KernelConfig::ForVersion(KernelVersion::kV5_11),
              &clock, 3);
  EXPECT_EQ(pool.size(), 3u);
  Prog prog = Chain({"sync"});
  for (int i = 0; i < 6; ++i) {
    pool.Next().Exec(prog, nullptr);
  }
  EXPECT_EQ(pool.TotalExecs(), 6u);
  EXPECT_EQ(pool.vm(0).execs(), 2u);
  EXPECT_EQ(pool.vm(2).execs(), 2u);
}

TEST(MonitorTest, CollectsBootAndCrashLogs) {
  SimClock clock;
  VmPool pool(BuiltinTarget(), KernelConfig::ForVersion(KernelVersion::kV5_11),
              &clock, 2);
  Monitor monitor(&pool);
  Prog prog = Chain({"sync"});
  pool.Next().Exec(prog, nullptr);
  pool.Next().Exec(prog, nullptr);
  monitor.Poll();
  const auto journal = monitor.Snapshot();
  ASSERT_EQ(journal.size(), 2u);  // One boot line per VM.
  EXPECT_NE(journal[0].find("booted"), std::string::npos);
}

TEST(MonitorTest, BackgroundThreadDrains) {
  SimClock clock;
  VmPool pool(BuiltinTarget(), KernelConfig::ForVersion(KernelVersion::kV5_11),
              &clock, 1);
  Monitor monitor(&pool);
  monitor.Start();
  Prog prog = Chain({"sync"});
  pool.vm(0).Exec(prog, nullptr);
  monitor.Stop();  // Joins and performs a final drain.
  EXPECT_GE(monitor.lines_collected(), 1u);
}

}  // namespace
}  // namespace healer
