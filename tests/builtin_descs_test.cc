// Consistency between the built-in descriptions and the SimKernel handler
// table: every described syscall must have a handler and vice versa, and
// the resource flows the relation-learning examples rely on must hold.

#include <gtest/gtest.h>

#include <set>

#include "src/kernel/kernel.h"
#include "src/syzlang/builtin_descs.h"

namespace healer {
namespace {

TEST(BuiltinDescsTest, CompilesAndIsNonTrivial) {
  const Target& target = BuiltinTarget();
  EXPECT_GE(target.NumSyscalls(), 140u);
  EXPECT_GE(target.NumResources(), 25u);
}

TEST(BuiltinDescsTest, EveryDescriptionHasAKernelHandler) {
  const Target& target = BuiltinTarget();
  for (const auto& call : target.syscalls()) {
    EXPECT_NE(FindSyscallDef(call->name), nullptr)
        << "no handler for described syscall " << call->name;
  }
}

TEST(BuiltinDescsTest, EveryKernelHandlerIsDescribed) {
  const Target& target = BuiltinTarget();
  for (const SyscallDef& def : AllSyscallDefs()) {
    EXPECT_NE(target.FindSyscall(def.name), nullptr)
        << "no description for handler " << def.name;
  }
}

TEST(BuiltinDescsTest, HandlerNamesUnique) {
  std::set<std::string> names;
  for (const SyscallDef& def : AllSyscallDefs()) {
    EXPECT_TRUE(names.insert(def.name).second)
        << "duplicate handler " << def.name;
  }
}

TEST(BuiltinDescsTest, Figure2ResourceFlow) {
  // memfd_create -> write$memfd and -> fcntl$ADD_SEALS via the memfd
  // resource; mmap consumes plain fd.
  const Target& target = BuiltinTarget();
  const Syscall* memfd_create = target.FindSyscall("memfd_create");
  const Syscall* add_seals = target.FindSyscall("fcntl$ADD_SEALS");
  const Syscall* mmap = target.FindSyscall("mmap");
  ASSERT_NE(memfd_create, nullptr);
  ASSERT_NE(add_seals, nullptr);
  ASSERT_NE(mmap, nullptr);
  ASSERT_EQ(memfd_create->produced_resources.size(), 1u);
  const ResourceDesc* memfd = memfd_create->produced_resources[0];
  EXPECT_EQ(memfd->name, "memfd");
  EXPECT_TRUE(Target::Consumes(*add_seals, memfd));
  EXPECT_TRUE(Target::Consumes(*mmap, memfd));  // memfd inherits fd.
}

TEST(BuiltinDescsTest, KvmChainResourceFlow) {
  const Target& target = BuiltinTarget();
  const Syscall* create_vm = target.FindSyscall("ioctl$KVM_CREATE_VM");
  const Syscall* create_vcpu = target.FindSyscall("ioctl$KVM_CREATE_VCPU");
  const Syscall* run = target.FindSyscall("ioctl$KVM_RUN");
  ASSERT_NE(create_vm, nullptr);
  ASSERT_NE(create_vcpu, nullptr);
  ASSERT_NE(run, nullptr);
  EXPECT_TRUE(Target::Consumes(*create_vcpu, create_vm->ret));
  EXPECT_TRUE(Target::Consumes(*run, create_vcpu->ret));
  EXPECT_FALSE(Target::Consumes(*run, create_vm->ret));
}

TEST(BuiltinDescsTest, OutParamResourcesEnumerated) {
  const Target& target = BuiltinTarget();
  const Syscall* pipe2 = target.FindSyscall("pipe2");
  ASSERT_NE(pipe2, nullptr);
  // pipe2 produces both pipe ends through its out pointer.
  EXPECT_EQ(pipe2->produced_resources.size(), 2u);
  const Syscall* io_setup = target.FindSyscall("io_setup");
  ASSERT_NE(io_setup, nullptr);
  ASSERT_EQ(io_setup->produced_resources.size(), 1u);
  EXPECT_EQ(io_setup->produced_resources[0]->name, "aio_ctx");
}

TEST(BuiltinDescsTest, VersionGatingMatchesConfig) {
  const KernelConfig v4_19 = KernelConfig::ForVersion(KernelVersion::kV4_19);
  const KernelConfig v5_11 = KernelConfig::ForVersion(KernelVersion::kV5_11);
  const SyscallDef* uring = FindSyscallDef("io_uring_setup");
  ASSERT_NE(uring, nullptr);
  EXPECT_FALSE(SyscallAvailable(*uring, v4_19));
  EXPECT_TRUE(SyscallAvailable(*uring, v5_11));
  const SyscallDef* reiserfs = FindSyscallDef("mount$reiserfs");
  ASSERT_NE(reiserfs, nullptr);
  EXPECT_TRUE(SyscallAvailable(*reiserfs, v4_19));
  EXPECT_FALSE(SyscallAvailable(*reiserfs, v5_11));
  const SyscallDef* smi = FindSyscallDef("ioctl$KVM_SMI");
  ASSERT_NE(smi, nullptr);
  EXPECT_FALSE(SyscallAvailable(*smi, v4_19));
  EXPECT_TRUE(SyscallAvailable(*smi, v5_11));
}

TEST(BuiltinDescsTest, StructLayoutsMatchHandlerReads) {
  const Target& target = BuiltinTarget();
  // kvm_userspace_memory_region must be exactly the 32 bytes the handler
  // memcpys out of guest memory.
  EXPECT_EQ(target.FindNamedType("kvm_userspace_memory_region")->ByteSize(),
            32u);
  EXPECT_EQ(target.FindNamedType("kvm_ioeventfd")->ByteSize(), 24u);
  EXPECT_EQ(target.FindNamedType("itimerspec")->ByteSize(), 32u);
  EXPECT_EQ(target.FindNamedType("timespec")->ByteSize(), 16u);
  EXPECT_EQ(target.FindNamedType("gsm_config")->ByteSize(), 16u);
  EXPECT_EQ(target.FindNamedType("vt_sizes")->ByteSize(), 4u);
  EXPECT_EQ(target.FindNamedType("fb_var_screeninfo")->ByteSize(), 16u);
  EXPECT_EQ(target.FindNamedType("sockaddr_in")->ByteSize(), 8u);
  EXPECT_EQ(target.FindNamedType("pipe_fds")->ByteSize(), 16u);
  EXPECT_EQ(target.FindNamedType("iocb")->ByteSize(), 32u);
  EXPECT_EQ(target.FindNamedType("iovec")->ByteSize(), 16u);
}

}  // namespace
}  // namespace healer
