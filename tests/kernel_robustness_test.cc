// Robustness property tests: every kernel handler must tolerate arbitrary
// argument words (the executor hands it attacker-controlled values), and
// the executor must tolerate arbitrary generated programs. "Tolerate" means
// returning an errno or triggering an injected bug — never corrupting the
// host process.

#include <gtest/gtest.h>

#include "src/base/rng.h"
#include "src/exec/executor.h"
#include "src/fuzz/arg_gen.h"
#include "src/fuzz/prog_builder.h"
#include "src/syzlang/builtin_descs.h"
#include "tests/test_util.h"

namespace healer {
namespace {

class HandlerRobustnessTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(HandlerRobustnessTest, RandomRawArgsNeverCorrupt) {
  Rng rng(GetParam());
  for (KernelVersion version :
       {KernelVersion::kV4_19, KernelVersion::kV5_6, KernelVersion::kV5_11}) {
    KernelHarness h(version);
    // A staged buffer gives pointer-shaped args something to hit.
    const uint64_t staged = h.OutBuf(512);
    for (const SyscallDef& def : AllSyscallDefs()) {
      if (h.kernel().crashed()) {
        break;  // Injected bug fired; that's a valid outcome.
      }
      uint64_t args[6];
      for (auto& arg : args) {
        switch (rng.Below(5)) {
          case 0:
            arg = rng.Below(16);  // Plausible fd.
            break;
          case 1:
            arg = staged + rng.Below(512);  // In-window pointer.
            break;
          case 2:
            arg = rng.PickOne(MagicNumbers());
            break;
          case 3:
            arg = rng.Next();  // Garbage.
            break;
          default:
            arg = static_cast<uint64_t>(-1);
            break;
        }
      }
      const int64_t ret = h.kernel().Exec(def, args);
      // Returns are either success values or errnos in a sane range.
      EXPECT_TRUE(ret >= -200 || ret >= 0)
          << def.name << " returned " << ret;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HandlerRobustnessTest,
                         ::testing::Range<uint64_t>(0, 30));

class ExecutorRobustnessTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ExecutorRobustnessTest, RandomProgramsExecuteSafely) {
  const Target& target = BuiltinTarget();
  Rng rng(GetParam() * 31 + 5);
  std::vector<int> ids;
  for (const auto& call : target.syscalls()) {
    ids.push_back(call->id);
  }
  ProgBuilder builder(target, ids, &rng);
  Executor executor(target, KernelConfig::ForVersion(KernelVersion::kV5_11));
  Bitmap coverage(CallCoverage::kMapBits);
  for (int round = 0; round < 20; ++round) {
    Prog prog = builder.Generate(
        [&](const std::vector<int>&) {
          return static_cast<int>(rng.Below(target.NumSyscalls()));
        },
        4 + rng.Below(16));
    builder.MutateArgs(&prog);
    ASSERT_TRUE(prog.Validate().ok());
    const ExecResult result = executor.Run(prog, &coverage);
    ASSERT_EQ(result.calls.size(), prog.size());
    // Calls after a crash must be unexecuted; all before it executed.
    if (result.Crashed()) {
      for (size_t i = 0; i < result.calls.size(); ++i) {
        EXPECT_EQ(result.calls[i].executed, i <= result.crash->call_index);
      }
    }
  }
  EXPECT_GT(coverage.Count(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExecutorRobustnessTest,
                         ::testing::Range<uint64_t>(0, 15));

}  // namespace
}  // namespace healer
