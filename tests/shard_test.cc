// Sharded campaign topology tests (DESIGN.md §13): the HGSP1 codec
// round-trips, the gossip schedule covers all pairs, replayed frames credit
// nothing, and — the load-bearing property — a sharded campaign reconciles
// to byte-identical relation tables and corpus fingerprints no matter how
// the network shuffles or replays deliveries.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "src/fuzz/gossip.h"
#include "src/fuzz/shard.h"
#include "src/syzlang/builtin_descs.h"

namespace healer {
namespace {

// ---- codec round-trips ----

TEST(GossipCodecTest, FrameRoundTrip) {
  GossipFrame frame;
  frame.type = GossipFrameType::kCoverage;
  frame.origin = 7;
  frame.seq = 42;
  frame.payload = {1, 2, 3, 4, 5};
  std::vector<uint8_t> bytes;
  AppendGossipFrame(frame, &bytes);
  ASSERT_EQ(bytes.size(), kGossipHeaderBytes + 5);

  size_t consumed = 0;
  Result<GossipFrame> decoded =
      DecodeGossipFrame(bytes.data(), bytes.size(), &consumed);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(consumed, bytes.size());
  EXPECT_EQ(decoded->type, GossipFrameType::kCoverage);
  EXPECT_EQ(decoded->origin, 7u);
  EXPECT_EQ(decoded->seq, 42u);
  EXPECT_EQ(decoded->payload, frame.payload);
}

TEST(GossipCodecTest, StreamRoundTripMultipleFrames) {
  std::vector<uint8_t> bytes;
  for (uint64_t seq = 0; seq < 5; ++seq) {
    GossipFrame frame;
    frame.type = GossipFrameType::kRelations;
    frame.origin = 1;
    frame.seq = seq;
    frame.payload = EncodeRelationsPayload({});
    AppendGossipFrame(frame, &bytes);
  }
  Result<std::vector<GossipFrame>> frames =
      DecodeGossipStream(bytes.data(), bytes.size());
  ASSERT_TRUE(frames.ok());
  ASSERT_EQ(frames->size(), 5u);
  for (uint64_t seq = 0; seq < 5; ++seq) {
    EXPECT_EQ((*frames)[seq].seq, seq);
  }
}

TEST(GossipCodecTest, RelationsPayloadRoundTrip) {
  std::vector<RelationEdge> edges;
  edges.push_back({3, 9, RelationSource::kDynamic, 0});
  edges.push_back({1, 2, RelationSource::kDynamic, 5});
  const std::vector<uint8_t> payload = EncodeRelationsPayload(edges);
  Result<std::vector<WireRelationEdge>> decoded =
      DecodeRelationsPayload(payload, 16);
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded->size(), 2u);
  EXPECT_EQ((*decoded)[0].from, 3u);
  EXPECT_EQ((*decoded)[0].to, 9u);
  EXPECT_EQ((*decoded)[1].from, 1u);
  EXPECT_EQ((*decoded)[1].to, 2u);
}

TEST(GossipCodecTest, CoveragePayloadRoundTrip) {
  const std::vector<WireCoverageWord> words = {{0, 0xffULL},
                                               {1023, 1ULL << 63}};
  const std::vector<uint8_t> payload = EncodeCoveragePayload(words);
  Result<std::vector<WireCoverageWord>> decoded =
      DecodeCoveragePayload(payload, 1024);
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded->size(), 2u);
  EXPECT_EQ((*decoded)[1].index, 1023u);
  EXPECT_EQ((*decoded)[1].value, 1ULL << 63);
}

TEST(GossipCodecTest, SeedsPayloadRoundTrip) {
  const std::vector<std::vector<uint8_t>> blobs = {{1, 2, 3}, {}, {9}};
  const std::vector<uint8_t> payload = EncodeSeedsPayload(blobs);
  Result<std::vector<std::vector<uint8_t>>> decoded =
      DecodeSeedsPayload(payload);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, blobs);
}

// ---- dedup ----

TEST(GossipDedupTest, AcceptsOncePerOriginSeq) {
  GossipDedup dedup;
  EXPECT_TRUE(dedup.Accept(1, 0));
  EXPECT_FALSE(dedup.Accept(1, 0));
  EXPECT_TRUE(dedup.Accept(1, 1));
  EXPECT_TRUE(dedup.Accept(2, 0));  // Same seq, different origin.
  EXPECT_FALSE(dedup.Accept(2, 0));
}

// ---- schedule ----

TEST(GossipScheduleTest, NeverSelfAndEventuallyAllPairs) {
  const size_t n = 5;
  for (size_t fanout = 1; fanout <= 2; ++fanout) {
    for (size_t shard = 0; shard < n; ++shard) {
      std::set<size_t> reached;
      for (size_t round = 0; round < 8; ++round) {
        for (size_t peer : GossipPeers(shard, n, fanout, round)) {
          EXPECT_NE(peer, shard);
          EXPECT_LT(peer, n);
          reached.insert(peer);
        }
      }
      EXPECT_EQ(reached.size(), n - 1)
          << "shard " << shard << " fanout " << fanout;
    }
  }
}

TEST(GossipScheduleTest, SingleShardHasNoPeers) {
  EXPECT_TRUE(GossipPeers(0, 1, 2, 0).empty());
  EXPECT_TRUE(GossipPeers(0, 4, 0, 0).empty());
}

TEST(GossipScheduleTest, FanoutCappedAndDistinctWithinRound) {
  const std::vector<size_t> peers = GossipPeers(2, 4, 8, 3);
  EXPECT_EQ(peers.size(), 3u);  // Capped at n-1.
  std::set<size_t> unique(peers.begin(), peers.end());
  EXPECT_EQ(unique.size(), peers.size());
}

// ---- sharded campaigns ----

ShardedCampaignOptions SmallCampaign(size_t shards, uint64_t net_seed) {
  ShardedCampaignOptions options;
  options.shards = shards;
  options.rounds = 6;
  options.execs_per_round = 60;
  options.fanout = 1;
  options.seed = 11;
  options.net_seed = net_seed;
  options.reconcile_every = 2;
  options.base.num_vms = 2;
  return options;
}

TEST(ShardedCampaignTest, IdentitiesHoldAndStateFlows) {
  const Target& target = BuiltinTarget();
  const ShardedCampaignResult result =
      RunShardedCampaign(target, SmallCampaign(3, 1));
  EXPECT_TRUE(result.identities_ok);
  EXPECT_EQ(result.shards, 3u);
  // One fuzz exec per Step, except the rare empty-candidate early-out.
  EXPECT_LE(result.total_execs, 3u * 6 * 60);
  EXPECT_GT(result.total_execs, 3u * 6 * 60 * 9 / 10);
  EXPECT_GT(result.union_coverage, 0u);
  EXPECT_GT(result.union_relations, 0u);
  EXPECT_GT(result.gossip_bytes, 0u);
  EXPECT_GT(result.frames_exchanged, 0u);
  // The adversarial net (net_seed != 0) replays deliveries; dedup must have
  // seen and dropped them.
  EXPECT_GT(result.frames_replayed, 0u);
  EXPECT_EQ(result.samples.size(), 6u);
  EXPECT_EQ(result.corpus_fingerprints.size(), 3u);
}

// The tentpole guarantee: two campaigns that differ ONLY in how the network
// shuffles and replays deliveries reconcile to byte-identical global
// relation tables, identical per-shard corpus fingerprints, and identical
// per-shard coverage.
TEST(ShardedCampaignTest, ReconciliationIdenticalAcrossGossipOrderings) {
  const Target& target = BuiltinTarget();
  const ShardedCampaignResult a =
      RunShardedCampaign(target, SmallCampaign(3, 1));
  const ShardedCampaignResult b =
      RunShardedCampaign(target, SmallCampaign(3, 2));
  ASSERT_TRUE(a.identities_ok);
  ASSERT_TRUE(b.identities_ok);
  EXPECT_EQ(a.reconciled_relations, b.reconciled_relations);
  EXPECT_EQ(a.reconciled_relations_hash, b.reconciled_relations_hash);
  EXPECT_EQ(a.corpus_fingerprints, b.corpus_fingerprints);
  EXPECT_EQ(a.shard_coverage, b.shard_coverage);
  EXPECT_EQ(a.union_coverage, b.union_coverage);
}

// An orderly network (net_seed == 0: schedule order, no replays) must also
// agree with the adversarial ones.
TEST(ShardedCampaignTest, OrderlyNetworkAgreesWithAdversarial) {
  const Target& target = BuiltinTarget();
  const ShardedCampaignResult orderly =
      RunShardedCampaign(target, SmallCampaign(3, 0));
  const ShardedCampaignResult adversarial =
      RunShardedCampaign(target, SmallCampaign(3, 3));
  EXPECT_EQ(orderly.reconciled_relations, adversarial.reconciled_relations);
  EXPECT_EQ(orderly.corpus_fingerprints, adversarial.corpus_fingerprints);
}

// Threaded and sequential fuzz phases are state-identical (shards share
// nothing; threads only buy wall-clock).
TEST(ShardedCampaignTest, ThreadedMatchesSequential) {
  const Target& target = BuiltinTarget();
  ShardedCampaignOptions threaded = SmallCampaign(2, 1);
  ShardedCampaignOptions sequential = SmallCampaign(2, 1);
  threaded.use_threads = true;
  sequential.use_threads = false;
  const ShardedCampaignResult a = RunShardedCampaign(target, threaded);
  const ShardedCampaignResult b = RunShardedCampaign(target, sequential);
  EXPECT_EQ(a.reconciled_relations, b.reconciled_relations);
  EXPECT_EQ(a.corpus_fingerprints, b.corpus_fingerprints);
  EXPECT_EQ(a.shard_coverage, b.shard_coverage);
}

// Gossip must actually help: a shard importing peers' state should hold
// more relations than its table would from local learning alone. (Weak but
// robust: imported credits are nonzero somewhere in the fleet.)
TEST(ShardedCampaignTest, GossipImportsCreditState) {
  const Target& target = BuiltinTarget();
  FuzzerOptions base;
  base.num_vms = 2;

  FuzzShard a(target, base, 0);
  FuzzerOptions base_b = base;
  base_b.seed = 99;
  FuzzShard b(target, base_b, 1);

  a.RunExecs(300);
  b.RunExecs(300);
  const std::vector<uint8_t> batch = a.EmitGossip();
  ASSERT_FALSE(batch.empty());
  ASSERT_TRUE(b.Ingest(batch.data(), batch.size()).ok());
  EXPECT_GT(b.ApplyInbox(), 0u);
  EXPECT_TRUE(b.CheckRelationIdentity());
  const ShardStats& stats = b.stats();
  EXPECT_GT(stats.coverage_bits_imported + stats.relations_imported +
                stats.seeds_imported,
            0u);

  // Replaying the exact same batch must credit nothing further.
  const ShardStats before = b.stats();
  ASSERT_TRUE(b.Ingest(batch.data(), batch.size()).ok());
  EXPECT_EQ(b.ApplyInbox(), 0u);
  EXPECT_EQ(b.stats().relations_imported, before.relations_imported);
  EXPECT_EQ(b.stats().coverage_bits_imported,
            before.coverage_bits_imported);
  EXPECT_EQ(b.stats().seeds_imported, before.seeds_imported);
  EXPECT_GT(b.stats().frames_replayed, before.frames_replayed);
}

TEST(ShardedCampaignTest, CanonicalRelationBytesIgnoreLearnOrder) {
  const Target& target = BuiltinTarget();
  FuzzerOptions base;
  base.num_vms = 2;
  FuzzShard shard(target, base, 0);
  shard.RunExecs(100);
  const std::vector<uint8_t> once = shard.CanonicalRelationBytes();
  const std::vector<uint8_t> again = shard.CanonicalRelationBytes();
  EXPECT_EQ(once, again);
  EXPECT_GE(once.size(), 4u);
}

}  // namespace
}  // namespace healer
