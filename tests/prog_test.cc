#include <gtest/gtest.h>

#include "src/fuzz/prog_builder.h"
#include "src/fuzz/templates.h"
#include "src/prog/prog.h"
#include "src/prog/serialize.h"
#include "src/prog/slots.h"
#include "src/syzlang/builtin_descs.h"

namespace healer {
namespace {

std::vector<int> AllSyscallIds(const Target& target) {
  std::vector<int> ids;
  for (const auto& call : target.syscalls()) {
    ids.push_back(call->id);
  }
  return ids;
}

Prog Chain(const std::vector<std::string>& names, Rng* rng) {
  const Target& target = BuiltinTarget();
  return BuildChain(target, AllSyscallIds(target), names, rng);
}

// ---- Arg basics ----

TEST(ArgTest, CloneIsDeep) {
  const Target& target = BuiltinTarget();
  Rng rng(1);
  Prog prog = Chain({"memfd_create", "write$memfd"}, &rng);
  ASSERT_EQ(prog.size(), 2u);
  Prog copy = prog.Clone();
  // Mutating the copy must not affect the original.
  copy.calls()[1].args[0]->val = 999;
  EXPECT_NE(prog.calls()[1].args[0]->val, 999u);
  EXPECT_EQ(copy.target(), prog.target());
}

TEST(ArgTest, SizeOfScalarsAndAggregates) {
  const Target& target = BuiltinTarget();
  const Type* region = target.FindNamedType("kvm_userspace_memory_region");
  Rng rng(2);
  ArgGenerator gen(&rng);
  ResourcePool pool;
  ArgPtr arg = gen.Gen(region, pool);
  EXPECT_EQ(arg->Size(), 32u);
}

// ---- RemoveCall semantics ----

TEST(ProgTest, RemoveCallDegradesDanglingRefs) {
  Rng rng(3);
  Prog prog = Chain({"memfd_create", "fcntl$ADD_SEALS"}, &rng);
  ASSERT_EQ(prog.size(), 2u);
  // fcntl's fd arg references call 0.
  const Arg& fd_arg = *prog.calls()[1].args[0];
  ASSERT_EQ(fd_arg.kind, ArgKind::kResource);
  ASSERT_EQ(fd_arg.res_ref, 0);

  prog.RemoveCall(0);
  ASSERT_EQ(prog.size(), 1u);
  const Arg& degraded = *prog.calls()[0].args[0];
  EXPECT_EQ(degraded.res_ref, -1);
  EXPECT_EQ(degraded.val, static_cast<uint64_t>(-1));  // fd special.
}

TEST(ProgTest, RemoveCallShiftsLaterRefs) {
  Rng rng(4);
  Prog prog = Chain({"openat$file", "memfd_create", "fcntl$ADD_SEALS"}, &rng);
  ASSERT_EQ(prog.size(), 3u);
  ASSERT_EQ(prog.calls()[2].args[0]->res_ref, 1);
  prog.RemoveCall(0);
  EXPECT_EQ(prog.calls()[1].args[0]->res_ref, 0);
  EXPECT_TRUE(prog.Validate().ok());
}

TEST(ProgTest, TruncateDropsTail) {
  Rng rng(5);
  Prog prog = Chain({"memfd_create", "write$memfd", "fcntl$ADD_SEALS"}, &rng);
  prog.Truncate(1);
  EXPECT_EQ(prog.size(), 1u);
  EXPECT_EQ(prog.calls()[0].meta->name, "memfd_create");
}

// ---- FixupLens ----

TEST(ProgTest, FixupLensTracksBufferSize) {
  Rng rng(6);
  Prog prog = Chain({"memfd_create", "write$memfd"}, &rng);
  Call& write = prog.calls()[1];
  // write$memfd(fd, buf ptr[in, buffer], count len[buf]).
  Arg& buf = *write.args[1];
  ASSERT_EQ(buf.kind, ArgKind::kPointer);
  ASSERT_NE(buf.pointee, nullptr);
  buf.pointee->data.assign(37, 0xab);
  prog.FixupLens();
  EXPECT_EQ(write.args[2]->val, 37u);
}

TEST(ProgTest, FixupLensCountsArrayElements) {
  Rng rng(7);
  Prog prog = Chain({"io_uring_setup", "io_uring_register$BUFFERS"}, &rng);
  ASSERT_EQ(prog.size(), 2u);
  Call& reg = prog.calls()[1];
  Arg& iovs = *reg.args[2];
  ASSERT_EQ(iovs.kind, ArgKind::kPointer);
  ASSERT_NE(iovs.pointee, nullptr);
  const size_t elems = iovs.pointee->inner.size();
  prog.FixupLens();
  EXPECT_EQ(reg.args[3]->val, elems);
}

TEST(ProgTest, FixupLensUsesVmaBytes) {
  Rng rng(8);
  Prog prog = Chain({"mmap"}, &rng);
  ASSERT_GE(prog.size(), 1u);
  Call& mmap = prog.calls().back();
  Arg& addr = *mmap.args[0];
  ASSERT_EQ(addr.kind, ArgKind::kVma);
  addr.vma_pages = 3;
  prog.FixupLens();
  EXPECT_EQ(mmap.args[1]->val, 3 * 4096u);
}

// ---- Validate ----

TEST(ProgTest, ValidateAcceptsChains) {
  Rng rng(9);
  for (const auto& chain : TemplateChains()) {
    Prog prog = Chain(chain, &rng);
    if (prog.empty()) {
      continue;  // Chain unavailable in this config.
    }
    EXPECT_TRUE(prog.Validate().ok())
        << prog.ToString() << prog.Validate().ToString();
  }
}

TEST(ProgTest, ValidateRejectsForwardRef) {
  Rng rng(10);
  Prog prog = Chain({"memfd_create", "fcntl$ADD_SEALS"}, &rng);
  prog.calls()[1].args[0]->res_ref = 1;  // Self-reference.
  EXPECT_FALSE(prog.Validate().ok());
}

TEST(ProgTest, ValidateRejectsIncompatibleProducer) {
  Rng rng(11);
  Prog prog = Chain({"socket$tcp", "ioctl$KVM_CREATE_VCPU"}, &rng);
  // socket + the synthesized openat$kvm -> CREATE_VM producer chain.
  ASSERT_EQ(prog.size(), 4u);
  // Point the kvm_vm_fd arg at the tcp socket instead.
  Call& vcpu = prog.calls().back();
  vcpu.args[0]->res_ref = 0;
  EXPECT_FALSE(prog.Validate().ok());
}

TEST(ProgTest, ToStringMentionsCallsAndRefs) {
  Rng rng(12);
  Prog prog = Chain({"memfd_create", "write$memfd"}, &rng);
  const std::string text = prog.ToString();
  EXPECT_NE(text.find("memfd_create"), std::string::npos);
  EXPECT_NE(text.find("write$memfd"), std::string::npos);
  EXPECT_NE(text.find("r0"), std::string::npos);
}

// ---- Result slots ----

TEST(SlotsTest, RetOnly) {
  const Target& target = BuiltinTarget();
  const auto slots = ResultSlotsOf(*target.FindSyscall("memfd_create"));
  ASSERT_EQ(slots.size(), 1u);
  EXPECT_EQ(slots[0].slot, 0);
  EXPECT_EQ(slots[0].resource->name, "memfd");
}

TEST(SlotsTest, OutParamsNumberedAfterRet) {
  const Target& target = BuiltinTarget();
  const auto slots = ResultSlotsOf(*target.FindSyscall("pipe2"));
  ASSERT_EQ(slots.size(), 2u);
  EXPECT_EQ(slots[0].slot, 1);
  EXPECT_EQ(slots[0].resource->name, "pipe_r_fd");
  EXPECT_EQ(slots[1].slot, 2);
  EXPECT_EQ(slots[1].resource->name, "pipe_w_fd");
}

TEST(SlotsTest, NoSlotsForPureConsumers) {
  const Target& target = BuiltinTarget();
  EXPECT_TRUE(ResultSlotsOf(*target.FindSyscall("close")).empty());
  EXPECT_TRUE(ResultSlotsOf(*target.FindSyscall("listen")).empty());
}

TEST(SlotsTest, IoSetupOutResource) {
  const Target& target = BuiltinTarget();
  const auto slots = ResultSlotsOf(*target.FindSyscall("io_setup"));
  ASSERT_EQ(slots.size(), 1u);
  EXPECT_EQ(slots[0].slot, 1);
  EXPECT_EQ(slots[0].resource->name, "aio_ctx");
}

// ---- Serialization ----

TEST(SerializeTest, RoundTripChain) {
  Rng rng(13);
  const Target& target = BuiltinTarget();
  Prog prog = Chain({"openat$kvm", "ioctl$KVM_CREATE_VM",
                     "ioctl$KVM_CREATE_VCPU", "ioctl$KVM_RUN"},
                    &rng);
  const auto bytes = SerializeProg(prog);
  auto decoded = DeserializeProg(target, bytes.data(), bytes.size());
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->size(), prog.size());
  EXPECT_EQ(SerializeProg(*decoded), bytes);  // Canonical form.
  EXPECT_EQ(decoded->ToString(), prog.ToString());
}

class SerializePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SerializePropertyTest, RandomProgsRoundTrip) {
  const Target& target = BuiltinTarget();
  Rng rng(GetParam());
  ProgBuilder builder(target, AllSyscallIds(target), &rng);
  Prog prog = builder.Generate(
      [&](const std::vector<int>&) {
        return static_cast<int>(rng.Below(target.NumSyscalls()));
      },
      4 + rng.Below(12));
  ASSERT_TRUE(prog.Validate().ok());
  const auto bytes = SerializeProg(prog);
  auto decoded = DeserializeProg(target, bytes.data(), bytes.size());
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(SerializeProg(*decoded), bytes);
  EXPECT_TRUE(decoded->Validate().ok());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SerializePropertyTest,
                         ::testing::Range<uint64_t>(0, 40));

TEST(SerializeTest, RejectsBadMagic) {
  const Target& target = BuiltinTarget();
  std::vector<uint8_t> bytes = {1, 2, 3, 4, 0, 0, 0, 0};
  EXPECT_FALSE(DeserializeProg(target, bytes.data(), bytes.size()).ok());
}

TEST(SerializeTest, RejectsTruncation) {
  Rng rng(14);
  const Target& target = BuiltinTarget();
  Prog prog = Chain({"memfd_create", "write$memfd"}, &rng);
  const auto bytes = SerializeProg(prog);
  for (size_t cut : {size_t{3}, size_t{9}, bytes.size() - 1}) {
    EXPECT_FALSE(DeserializeProg(target, bytes.data(), cut).ok())
        << "cut=" << cut;
  }
}

TEST(SerializeTest, RejectsTrailingGarbage) {
  Rng rng(15);
  const Target& target = BuiltinTarget();
  Prog prog = Chain({"sync"}, &rng);
  auto bytes = SerializeProg(prog);
  bytes.push_back(0xff);
  EXPECT_FALSE(DeserializeProg(target, bytes.data(), bytes.size()).ok());
}

TEST(SerializeTest, RejectsUnknownSyscallId) {
  const Target& target = BuiltinTarget();
  Rng rng(16);
  Prog prog = Chain({"sync"}, &rng);
  auto bytes = SerializeProg(prog);
  // Patch the call id (offset 8: after magic + count).
  bytes[8] = 0xff;
  bytes[9] = 0xff;
  EXPECT_FALSE(DeserializeProg(target, bytes.data(), bytes.size()).ok());
}

}  // namespace
}  // namespace healer
