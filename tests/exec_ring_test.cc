// Property suite for the SQ/CQ ring executor transport (exec_ring.h):
// single-threaded ring semantics (wraparound, full/empty boundaries,
// torn/stale rejection), randomized producer/consumer schedules, threaded
// SPSC runs (ExecRingThreadsTest.* runs under TSan via scripts/check.sh),
// the wakeup-fallback protocol, the completion codec, and the VM-level
// differential: GuestVm::ExecBatch must be bit-identical to a sequence of
// legacy Exec calls for any fixed program stream and fault seed.

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <deque>
#include <thread>
#include <vector>

#include "src/base/rng.h"
#include "src/exec/exec_ring.h"
#include "src/fuzz/prog_builder.h"
#include "src/syzlang/builtin_descs.h"
#include "src/vm/guest_vm.h"

namespace healer {
namespace {

using Pop = SlotRing::Pop;

std::vector<int> AllIds(const Target& target) {
  std::vector<int> ids;
  for (const auto& call : target.syscalls()) {
    ids.push_back(call->id);
  }
  return ids;
}

// A deterministic program stream shared by the differential tests: same
// seed, same programs, both transports.
std::vector<Prog> BuildProgs(size_t count, uint64_t seed) {
  const Target& target = BuiltinTarget();
  Rng rng(seed);
  ProgBuilder builder(target, AllIds(target), &rng);
  std::vector<Prog> progs;
  progs.reserve(count);
  while (progs.size() < count) {
    Prog prog = builder.Generate(
        [&](const std::vector<int>&) {
          return static_cast<int>(rng.Below(target.NumSyscalls()));
        },
        4 + rng.Below(10));
    if (!prog.empty()) {
      progs.push_back(std::move(prog));
    }
  }
  return progs;
}

std::unique_ptr<GuestVm> MakeVm(SimClock* clock,
                                const FaultPlan& plan = FaultPlan(),
                                uint64_t fault_seed = 7,
                                MetricRegistry* metrics = nullptr,
                                RingConfig ring_config = RingConfig()) {
  return std::make_unique<GuestVm>(
      BuiltinTarget(), KernelConfig::ForVersion(KernelVersion::kV5_11), clock,
      VmLatencyModel(), plan, fault_seed, metrics, ring_config);
}

// ---- SlotRing semantics (single-threaded) ----

TEST(ExecRingTest, PushPopRoundTrip) {
  SlotRing ring(8, 64);
  const uint8_t payload[5] = {1, 2, 3, 4, 5};
  ASSERT_TRUE(ring.Push(payload, sizeof(payload), 42));
  EXPECT_EQ(ring.size(), 1u);
  std::vector<uint8_t> out;
  uint64_t user_data = 0;
  ASSERT_EQ(ring.TryPop(&out, &user_data), Pop::kOk);
  EXPECT_EQ(user_data, 42u);
  EXPECT_EQ(out, std::vector<uint8_t>(payload, payload + sizeof(payload)));
  EXPECT_TRUE(ring.Empty());
  EXPECT_EQ(ring.pushes(), 1u);
  EXPECT_EQ(ring.pops(), 1u);
}

TEST(ExecRingTest, FullAndEmptyBoundaries) {
  SlotRing ring(4, 64);
  const uint8_t b = 0xab;
  for (uint64_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(ring.Push(&b, 1, i)) << i;
  }
  EXPECT_TRUE(ring.Full());
  EXPECT_FALSE(ring.Push(&b, 1, 99));
  EXPECT_EQ(ring.full_rejects(), 1u);
  std::vector<uint8_t> out;
  uint64_t user_data = 0;
  for (uint64_t i = 0; i < 4; ++i) {
    ASSERT_EQ(ring.TryPop(&out, &user_data), Pop::kOk);
    EXPECT_EQ(user_data, i);
  }
  EXPECT_EQ(ring.TryPop(&out, &user_data), Pop::kEmpty);
  EXPECT_TRUE(ring.Empty());
}

TEST(ExecRingTest, WraparoundPreservesFifo) {
  // A tiny ring wraps dozens of times; sequence numbers must keep slots
  // correctly recycled across laps.
  SlotRing ring(4, 64);
  uint64_t next = 0;
  uint64_t expect = 0;
  std::vector<uint8_t> out;
  uint64_t user_data = 0;
  for (int round = 0; round < 100; ++round) {
    const size_t burst = 1 + (round % 4);
    for (size_t i = 0; i < burst; ++i) {
      const uint8_t payload = static_cast<uint8_t>(next & 0xff);
      ASSERT_TRUE(ring.Push(&payload, 1, next));
      ++next;
    }
    for (size_t i = 0; i < burst; ++i) {
      ASSERT_EQ(ring.TryPop(&out, &user_data), Pop::kOk);
      ASSERT_EQ(user_data, expect);
      ASSERT_EQ(out[0], static_cast<uint8_t>(expect & 0xff));
      ++expect;
    }
  }
  EXPECT_EQ(ring.pushes(), ring.pops());
}

TEST(ExecRingTest, OversizedPayloadRejected) {
  SlotRing ring(4, 64);  // Payload capacity: 48 bytes.
  std::vector<uint8_t> big(ring.payload_capacity() + 1, 0xcc);
  EXPECT_FALSE(ring.Push(big.data(), big.size(), 1));
  EXPECT_TRUE(ring.Empty());
  big.resize(ring.payload_capacity());
  EXPECT_TRUE(ring.Push(big.data(), big.size(), 1));
}

TEST(ExecRingTest, TornLengthWordSkipsEntryAndStaysLive) {
  SlotRing ring(4, 64);
  const uint8_t payload[4] = {1, 2, 3, 4};
  ASSERT_TRUE(ring.Push(payload, sizeof(payload), 7));
  // A guest tears the slot mid-flight: the length word claims more bytes
  // than the slot can hold.
  const uint32_t bogus = 0xffffffffu;
  std::memcpy(ring.TestSlotBytes(0) + 8, &bogus, 4);
  std::vector<uint8_t> out;
  uint64_t user_data = 0;
  EXPECT_EQ(ring.TryPop(&out, &user_data), Pop::kTorn);
  EXPECT_EQ(ring.torn(), 1u);
  // The bad slot was consumed and freed: the ring keeps working.
  ASSERT_TRUE(ring.Push(payload, sizeof(payload), 8));
  ASSERT_EQ(ring.TryPop(&out, &user_data), Pop::kOk);
  EXPECT_EQ(user_data, 8u);
}

TEST(ExecRingTest, StaleSequenceSkipsEntryAndStaysLive) {
  SlotRing ring(4, 64);
  const uint8_t payload[2] = {9, 9};
  ASSERT_TRUE(ring.Push(payload, sizeof(payload), 11));
  // Replayed/corrupt sequence word: neither free nor ready for position 0.
  ring.TestPokeSeq(0, 1234);
  std::vector<uint8_t> out;
  uint64_t user_data = 0;
  EXPECT_EQ(ring.TryPop(&out, &user_data), Pop::kStale);
  EXPECT_EQ(ring.stale(), 1u);
  ASSERT_TRUE(ring.Push(payload, sizeof(payload), 12));
  ASSERT_EQ(ring.TryPop(&out, &user_data), Pop::kOk);
  EXPECT_EQ(user_data, 12u);
}

TEST(ExecRingTest, WakeupProtocolSingleThreaded) {
  SlotRing ring(8, 64);
  // Empty ring: the consumer may park.
  EXPECT_TRUE(ring.PrepareToSleep());
  const uint8_t b = 1;
  ASSERT_TRUE(ring.Push(&b, 1, 0));
  // The push saw the sleep flag and rang the doorbell exactly once.
  EXPECT_EQ(ring.wakeup().signals(), 1u);
  EXPECT_TRUE(ring.wakeup().Wait());  // Consumes the pending signal.
  // Steady state (no sleeper): pushes are doorbell-free.
  ASSERT_TRUE(ring.Push(&b, 1, 1));
  EXPECT_EQ(ring.wakeup().signals(), 1u);
  // A non-empty ring declines the park request.
  EXPECT_FALSE(ring.PrepareToSleep());
}

// ---- randomized producer/consumer schedules (single-threaded model) ----

class ExecRingPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ExecRingPropertyTest, RandomScheduleNeverLosesDuplicatesOrReorders) {
  Rng rng(GetParam());
  SlotRing ring(8, 48);  // Payload capacity: 32 bytes.
  std::deque<std::pair<uint64_t, std::vector<uint8_t>>> model;
  uint64_t next_id = 0;
  std::vector<uint8_t> out;
  uint64_t user_data = 0;
  for (int op = 0; op < 4000; ++op) {
    if (rng.Chance(1, 2)) {
      std::vector<uint8_t> payload(rng.Below(ring.payload_capacity() + 1));
      for (uint8_t& byte : payload) {
        byte = static_cast<uint8_t>(rng.Below(256));
      }
      const bool ok = ring.Push(payload.data(), payload.size(), next_id);
      ASSERT_EQ(ok, model.size() < ring.entries())
          << "push accept must equal 'ring not full' at op " << op;
      if (ok) {
        model.emplace_back(next_id, std::move(payload));
        ++next_id;
      }
    } else {
      const Pop popped = ring.TryPop(&out, &user_data);
      if (model.empty()) {
        ASSERT_EQ(popped, Pop::kEmpty) << "op " << op;
      } else {
        ASSERT_EQ(popped, Pop::kOk) << "op " << op;
        ASSERT_EQ(user_data, model.front().first) << "op " << op;
        ASSERT_EQ(out, model.front().second) << "op " << op;
        model.pop_front();
      }
    }
  }
  while (!model.empty()) {
    ASSERT_EQ(ring.TryPop(&out, &user_data), Pop::kOk);
    ASSERT_EQ(user_data, model.front().first);
    ASSERT_EQ(out, model.front().second);
    model.pop_front();
  }
  EXPECT_EQ(ring.TryPop(&out, &user_data), Pop::kEmpty);
  EXPECT_EQ(ring.pushes(), ring.pops());
  EXPECT_EQ(ring.torn(), 0u);
  EXPECT_EQ(ring.stale(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExecRingPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// ---- threaded SPSC runs (under TSan via scripts/check.sh) ----

TEST(ExecRingThreadsTest, SpscNoLossNoDupNoReorder) {
  SlotRing ring(64, 64);
  constexpr uint64_t kItems = 20000;
  std::thread producer([&ring] {
    for (uint64_t i = 0; i < kItems; ++i) {
      uint8_t payload[8];
      std::memcpy(payload, &i, 8);
      while (!ring.Push(payload, 8, i)) {
        std::this_thread::yield();
      }
    }
  });
  std::vector<uint8_t> out;
  uint64_t user_data = 0;
  uint64_t expect = 0;
  while (expect < kItems) {
    const Pop popped = ring.TryPop(&out, &user_data);
    if (popped == Pop::kEmpty) {
      std::this_thread::yield();
      continue;
    }
    ASSERT_EQ(popped, Pop::kOk);
    ASSERT_EQ(user_data, expect);
    uint64_t echoed = 0;
    ASSERT_EQ(out.size(), 8u);
    std::memcpy(&echoed, out.data(), 8);
    ASSERT_EQ(echoed, expect);
    ++expect;
  }
  producer.join();
  EXPECT_EQ(ring.pushes(), kItems);
  EXPECT_EQ(ring.pops(), kItems);
  EXPECT_EQ(ring.torn(), 0u);
  EXPECT_EQ(ring.stale(), 0u);
}

TEST(ExecRingThreadsTest, WakeupFallbackDeliversEverythingInOrder) {
  SlotRing ring(16, 64);
  constexpr uint64_t kItems = 4000;
  std::atomic<bool> done{false};
  std::thread producer([&] {
    for (uint64_t i = 0; i < kItems; ++i) {
      uint8_t payload = static_cast<uint8_t>(i & 0xff);
      while (!ring.Push(&payload, 1, i)) {
        std::this_thread::yield();
      }
      if (i % 512 == 0) {
        // Bursty producer: give the consumer a chance to drain and park, so
        // the wakeup fallback actually fires.
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
    }
    done.store(true, std::memory_order_release);
    ring.wakeup().Close();  // Release a consumer parked after the last push.
  });
  std::vector<uint8_t> out;
  uint64_t user_data = 0;
  uint64_t expect = 0;
  while (expect < kItems) {
    const Pop popped = ring.TryPop(&out, &user_data);
    if (popped == Pop::kOk) {
      ASSERT_EQ(user_data, expect);
      ++expect;
      continue;
    }
    ASSERT_EQ(popped, Pop::kEmpty);
    if (done.load(std::memory_order_acquire) && ring.Empty()) {
      break;
    }
    if (ring.PrepareToSleep()) {
      ring.wakeup().Wait();  // False (closed) and true both mean re-check.
      ring.CancelSleep();
    }
  }
  producer.join();
  EXPECT_EQ(expect, kItems);
  // Doorbells only ring for parked consumers: far rarer than pushes, and
  // never more frequent.
  EXPECT_LE(ring.wakeup().signals(), ring.pushes());
}

TEST(ExecRingThreadsTest, EchoThroughPairedRingsKeepsOrder) {
  // Host pushes requests into the SQ; a guest thread drains multi-shot and
  // posts one completion per request into the CQ; the host reaps
  // concurrently. Tags must come back exactly once, in order.
  ExecRing ring(RingConfig{16, 16, 64, 64});
  constexpr uint64_t kItems = 5000;
  std::thread guest([&ring] {
    std::vector<uint8_t> payload;
    uint64_t tag = 0;
    uint64_t served = 0;
    while (served < kItems) {
      const Pop popped = ring.sq().TryPop(&payload, &tag);
      if (popped == Pop::kEmpty) {
        std::this_thread::yield();
        continue;
      }
      ASSERT_EQ(popped, Pop::kOk);
      while (!ring.cq().Push(payload.data(), payload.size(), tag)) {
        std::this_thread::yield();
      }
      ++served;
    }
  });
  uint64_t submitted = 0;
  uint64_t reaped = 0;
  std::vector<uint8_t> out;
  uint64_t tag = 0;
  while (reaped < kItems) {
    if (submitted < kItems) {
      uint8_t payload[8];
      std::memcpy(payload, &submitted, 8);
      if (ring.sq().Push(payload, 8, submitted)) {
        ++submitted;
      }
    }
    const Pop popped = ring.cq().TryPop(&out, &tag);
    if (popped == Pop::kOk) {
      ASSERT_EQ(tag, reaped);
      uint64_t echoed = 0;
      std::memcpy(&echoed, out.data(), 8);
      ASSERT_EQ(echoed, reaped);
      ++reaped;
    } else {
      ASSERT_EQ(popped, Pop::kEmpty);
      std::this_thread::yield();
    }
  }
  guest.join();
  EXPECT_EQ(ring.sq().pushes(), kItems);
  EXPECT_EQ(ring.cq().pops(), kItems);
}

// ---- completion codec ----

TEST(ExecRingTest, CompletionCodecRoundTrip) {
  ExecResult result;
  result.failure = ExecFailure::kNone;
  for (int i = 0; i < 3; ++i) {
    CallExecInfo call;
    call.executed = true;
    call.retval = -i;
    call.signal = 0x1234567890abcdefULL + i;
    call.new_edges = 7 * i;
    call.num_edges = 11 * i;
    call.slot_values = {static_cast<uint64_t>(i), 99u};
    result.calls.push_back(call);
  }
  CrashInfo crash;
  crash.bug = static_cast<BugId>(17);
  crash.title = "KASAN: use-after-free in sim_write";
  crash.call_index = 2;
  result.crash = crash;

  const std::vector<uint8_t> bytes = EncodeCompletion(result);
  const Result<ExecResult> decoded = DecodeCompletion(bytes.data(),
                                                      bytes.size());
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(*decoded == result);

  // Failure results (no calls, no crash) round-trip too.
  ExecResult failed;
  failed.failure = ExecFailure::kRingStall;
  const std::vector<uint8_t> failed_bytes = EncodeCompletion(failed);
  const Result<ExecResult> failed_decoded =
      DecodeCompletion(failed_bytes.data(), failed_bytes.size());
  ASSERT_TRUE(failed_decoded.ok());
  EXPECT_TRUE(*failed_decoded == failed);
}

// ---- GuestVm::ExecBatch differential against the legacy transport ----

// For a fixed program stream and fault seed, the ring transport must
// produce bit-identical per-program results, in submission order, with the
// same VM accounting and the same coverage bitmap — whatever the batch
// size.
void ExpectBatchMatchesLegacy(const FaultPlan& plan, size_t batch) {
  const std::vector<Prog> progs = BuildProgs(120, 20260808);
  SimClock legacy_clock;
  SimClock ring_clock;
  auto legacy_vm = MakeVm(&legacy_clock, plan);
  auto ring_vm = MakeVm(&ring_clock, plan);
  Bitmap legacy_cov(CallCoverage::kMapBits);
  Bitmap ring_cov(CallCoverage::kMapBits);

  std::vector<ExecResult> legacy_results;
  legacy_results.reserve(progs.size());
  for (const Prog& prog : progs) {
    legacy_results.push_back(legacy_vm->Exec(prog, &legacy_cov));
  }

  std::vector<ExecResult> ring_results;
  ring_results.reserve(progs.size());
  for (size_t base = 0; base < progs.size(); base += batch) {
    const size_t count = std::min(batch, progs.size() - base);
    std::vector<const Prog*> window;
    for (size_t i = 0; i < count; ++i) {
      window.push_back(&progs[base + i]);
    }
    const std::vector<RingCompletion> completions =
        ring_vm->ExecBatch(window, &ring_cov);
    ASSERT_EQ(completions.size(), count) << "batch at " << base;
    for (size_t i = 0; i < completions.size(); ++i) {
      ASSERT_EQ(completions[i].tag, i) << "completion order at " << base;
      ring_results.push_back(completions[i].result);
    }
  }

  ASSERT_EQ(ring_results.size(), legacy_results.size());
  for (size_t i = 0; i < progs.size(); ++i) {
    EXPECT_TRUE(ring_results[i] == legacy_results[i])
        << "program " << i << ": ring failure="
        << ExecFailureName(ring_results[i].failure) << " legacy failure="
        << ExecFailureName(legacy_results[i].failure);
  }
  EXPECT_EQ(ring_vm->execs(), legacy_vm->execs());
  EXPECT_EQ(ring_vm->crashes(), legacy_vm->crashes());
  EXPECT_EQ(ring_vm->infra_faults(), legacy_vm->infra_faults());
  EXPECT_EQ(ring_cov.Hash(), legacy_cov.Hash());
}

TEST(ExecBatchTest, FaultFreeBatchesMatchLegacyBitIdentical) {
  ExpectBatchMatchesLegacy(FaultPlan(), 48);
}

TEST(ExecBatchTest, FaultedBatchesMatchLegacyBitIdentical) {
  // Uniform plan exercises every kind, including the ring-lifecycle faults
  // (which degrade to equivalent failures on the legacy path).
  ExpectBatchMatchesLegacy(FaultPlan::Uniform(0.05), 48);
}

TEST(ExecBatchTest, DeepPipelineMatchesLegacyBitIdentical) {
  ExpectBatchMatchesLegacy(FaultPlan::Uniform(0.03), 256);
}

TEST(ExecBatchTest, BatchOfOneIsClockIdenticalToLegacy) {
  // The differential-campaign guarantee rests on this: at pipeline depth 1
  // the ring charges exactly the legacy latencies on the fault-free path.
  const std::vector<Prog> progs = BuildProgs(50, 99);
  SimClock legacy_clock;
  SimClock ring_clock;
  auto legacy_vm = MakeVm(&legacy_clock);
  auto ring_vm = MakeVm(&ring_clock);
  Bitmap legacy_cov(CallCoverage::kMapBits);
  Bitmap ring_cov(CallCoverage::kMapBits);
  for (size_t i = 0; i < progs.size(); ++i) {
    const SimClock::Nanos legacy_before = legacy_clock.now();
    const ExecResult legacy_result = legacy_vm->Exec(progs[i], &legacy_cov);
    const SimClock::Nanos legacy_cost = legacy_clock.now() - legacy_before;
    const SimClock::Nanos ring_before = ring_clock.now();
    const ExecResult ring_result = ring_vm->ExecRingOne(progs[i], &ring_cov);
    const SimClock::Nanos ring_cost = ring_clock.now() - ring_before;
    EXPECT_EQ(ring_cost, legacy_cost) << "program " << i;
    EXPECT_TRUE(ring_result == legacy_result) << "program " << i;
  }
  EXPECT_EQ(ring_clock.now(), legacy_clock.now());
}

TEST(ExecBatchTest, OversizedProgramsSpillToLegacyPath) {
  // Tiny SQ slots force every program through the spill path; results must
  // still match the legacy transport exactly.
  const RingConfig tiny{4, 4, 48, 4096};  // 32-byte payload budget.
  const std::vector<Prog> progs = BuildProgs(20, 123);
  SimClock legacy_clock;
  SimClock ring_clock;
  MetricRegistry metrics;
  auto legacy_vm = MakeVm(&legacy_clock);
  auto ring_vm = MakeVm(&ring_clock, FaultPlan(), 7, &metrics, tiny);
  Bitmap legacy_cov(CallCoverage::kMapBits);
  Bitmap ring_cov(CallCoverage::kMapBits);
  std::vector<const Prog*> window;
  for (const Prog& prog : progs) {
    window.push_back(&prog);
  }
  const std::vector<RingCompletion> completions =
      ring_vm->ExecBatch(window, &ring_cov);
  ASSERT_EQ(completions.size(), progs.size());
  for (size_t i = 0; i < progs.size(); ++i) {
    const ExecResult legacy_result = legacy_vm->Exec(progs[i], &legacy_cov);
    EXPECT_TRUE(completions[i].result == legacy_result) << "program " << i;
  }
  // Nothing travelled through the SQ; everything was counted as a spill.
  EXPECT_EQ(ring_vm->ring().sq().pushes(), 0u);
  const MetricsSnapshot snap = metrics.Snapshot();
  EXPECT_EQ(snap.counter("healer_ring_spills_total"), progs.size());
}

TEST(ExecBatchTest, StalledCompletionsTimeOutAsRingStalls) {
  FaultPlan plan;
  plan.set_rate(FaultKind::kRingStall, 1.0);
  const std::vector<Prog> progs = BuildProgs(8, 5);
  SimClock clock;
  MetricRegistry metrics;
  auto vm = MakeVm(&clock, plan, 7, &metrics);
  Bitmap coverage(CallCoverage::kMapBits);
  std::vector<const Prog*> window;
  for (const Prog& prog : progs) {
    window.push_back(&prog);
  }
  const std::vector<RingCompletion> completions =
      vm->ExecBatch(window, &coverage);
  ASSERT_EQ(completions.size(), progs.size());
  for (size_t i = 0; i < completions.size(); ++i) {
    EXPECT_EQ(completions[i].result.failure, ExecFailure::kRingStall)
        << "program " << i;
    EXPECT_TRUE(completions[i].result.calls.empty());
  }
  // Stalled completions carry no feedback and are accounted as infra
  // faults, preserving the recovery layer's invariants.
  EXPECT_EQ(coverage.Count(), 0u);
  EXPECT_EQ(vm->infra_faults(), progs.size());
  // Oversized programs spill to the legacy path, where the same fault
  // surfaces without the ring-stall counter; everything else stalled.
  const MetricsSnapshot snap = metrics.Snapshot();
  EXPECT_EQ(snap.counter("healer_ring_stalls_total") +
                snap.counter("healer_ring_spills_total"),
            progs.size());
  EXPECT_GT(snap.counter("healer_ring_stalls_total"), 0u);
}

}  // namespace
}  // namespace healer
