// Socket / netlink / KVM / TTY / io_uring / block / rdma / aio / coredump
// subsystem behaviour and bug reproducers.

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace healer {
namespace {

// ---- sockets ----

class SocketTest : public ::testing::Test {
 protected:
  KernelHarness h{KernelVersion::kV5_11};

  int64_t Tcp() { return h.Call("socket$tcp", 2, 1, 0); }
  int64_t Udp() { return h.Call("socket$udp", 2, 2, 0); }
};

TEST_F(SocketTest, ListenBeforeBindIsEdestaddrreq) {
  // The paper's introduction example.
  const int64_t fd = Tcp();
  EXPECT_EQ(h.Call("listen", fd, 8), -kEDESTADDRREQ);
}

TEST_F(SocketTest, FullAcceptFlow) {
  const int64_t server = Tcp();
  ASSERT_EQ(h.Call("bind", server, h.StageSockaddr(8080), 8), 0);
  ASSERT_EQ(h.Call("listen", server, 8), 0);
  const int64_t client = Tcp();
  ASSERT_EQ(h.Call("connect", client, h.StageSockaddr(8080), 8), 0);
  const int64_t conn = h.Call("accept4", server, 0);
  ASSERT_GE(conn, 0);
  EXPECT_EQ(h.Call("accept4", server, 0), -kEAGAIN);  // Queue drained.
}

TEST_F(SocketTest, ConnectRefusedWithoutListener) {
  const int64_t fd = Tcp();
  EXPECT_EQ(h.Call("connect", fd, h.StageSockaddr(9999), 8),
            -kECONNREFUSED);
}

TEST_F(SocketTest, SendRecvThroughLoopback) {
  const int64_t server = Tcp();
  h.Call("bind", server, h.StageSockaddr(80), 8);
  h.Call("listen", server, 4);
  const int64_t client = Tcp();
  ASSERT_EQ(h.Call("connect", client, h.StageSockaddr(80), 8), 0);
  EXPECT_EQ(h.Call("sendto", client, h.Stage("data", 4), 4, 0, 0, 0), 4);
  // Data lands in the listener's rx buffer in our loopback model.
  const uint64_t out = h.OutBuf(16);
  EXPECT_EQ(h.Call("recvfrom", server, out, 16, 0), 4);
}

TEST_F(SocketTest, BindConflictAndReuseaddr) {
  const int64_t a = Tcp();
  ASSERT_EQ(h.Call("bind", a, h.StageSockaddr(1000), 8), 0);
  ASSERT_EQ(h.Call("listen", a, 1), 0);
  const int64_t b = Tcp();
  EXPECT_EQ(h.Call("bind", b, h.StageSockaddr(1000), 8), -kEADDRINUSE);
  const int64_t c = Tcp();
  EXPECT_EQ(h.Call("setsockopt$REUSEADDR", c, 1, h.StageU32(1), 4), 0);
  EXPECT_EQ(h.Call("bind", c, h.StageSockaddr(1000), 8), 0);
}

TEST_F(SocketTest, UdpSendWithoutDestination) {
  const int64_t fd = Udp();
  EXPECT_EQ(h.Call("sendto", fd, h.Stage("x", 1), 1, 0, 0, 0),
            -kEDESTADDRREQ);
  // With MSG_CONFIRM the missing-destination path has a logic bug.
  EXPECT_EQ(h.Call("sendto", fd, h.Stage("x", 1), 1, 0x800, 0, 0), -kEIO);
  EXPECT_TRUE(h.kernel().crashed());
  EXPECT_EQ(h.kernel().crash().bug, BugId::kSendtoNoDestBug);
}

TEST_F(SocketTest, QdiscStabOobNeedsSockoptFirst) {
  const int64_t fd = Udp();
  h.Call("connect", fd, h.StageSockaddr(5), 8);
  // Without the stab: large send is fine.
  EXPECT_EQ(h.Call("sendto", fd, h.OutBuf(600), 600, 0, 0, 0), 600);
  ASSERT_EQ(h.Call("setsockopt$STAB", fd, 1, h.StageU32(64), 4), 0);
  EXPECT_EQ(h.Call("sendto", fd, h.OutBuf(600), 600, 0, 0, 0), -kEIO);
  EXPECT_TRUE(h.kernel().crashed());
  EXPECT_EQ(h.kernel().crash().bug, BugId::kQdiscCalculatePktLenOob);
}

TEST_F(SocketTest, MacvlanUafChain) {
  const int64_t fd = Udp();
  ASSERT_EQ(h.Call("ioctl$SIOCADDMACVLAN", fd, 0x8938, 0), 0);
  ASSERT_EQ(h.Call("setsockopt$BINDTODEVICE", fd, 1,
                   h.StageString("macvlan0"), 9),
            0);
  ASSERT_EQ(h.Call("ioctl$SIOCDELMACVLAN", fd, 0x8939, 0), 0);
  h.Call("connect", fd, h.StageSockaddr(5), 8);
  EXPECT_EQ(h.Call("sendto", fd, h.Stage("x", 1), 1, 0, 0, 0), -kEIO);
  EXPECT_TRUE(h.kernel().crashed());
  EXPECT_EQ(h.kernel().crash().bug, BugId::kMacvlanBroadcastUaf);
}

TEST_F(SocketTest, BindToMissingMacvlanFails) {
  const int64_t fd = Udp();
  EXPECT_EQ(h.Call("setsockopt$BINDTODEVICE", fd, 1,
                   h.StageString("macvlan0"), 9),
            -kENODEV);
}

TEST_F(SocketTest, LlcpGetnameNullDeref) {
  KernelHarness h54(KernelVersion::kV5_4);
  const int64_t fd = h54.Call("socket$llcp", 39, 2, 1);
  ASSERT_GE(fd, 0);
  ASSERT_EQ(h54.Call("connect", fd, h54.StageSockaddr(3), 8), 0);
  ASSERT_EQ(h54.Call("shutdown", fd, 0), 0);
  EXPECT_EQ(h54.Call("getsockname", fd, h54.OutBuf(8)), -kEFAULT);
  EXPECT_TRUE(h54.kernel().crashed());
  EXPECT_EQ(h54.kernel().crash().bug, BugId::kLlcpSockGetname);
}

TEST_F(SocketTest, RdsConnectUnboundNullDeref) {
  KernelHarness h56(KernelVersion::kV5_6);
  const int64_t fd = h56.Call("socket$rds", 21, 5, 0);
  EXPECT_EQ(h56.Call("connect", fd, h56.StageSockaddr(3), 8), -kEFAULT);
  EXPECT_TRUE(h56.kernel().crashed());
  EXPECT_EQ(h56.kernel().crash().bug, BugId::kRdsIbAddConnNullDeref);
}

TEST_F(SocketTest, L2capReconnectRefcountBug) {
  const int64_t fd = h.Call("socket$l2cap", 31, 5, 0);
  ASSERT_EQ(h.Call("connect", fd, h.StageSockaddr(3), 8), 0);
  ASSERT_EQ(h.Call("shutdown", fd, 0), 0);
  EXPECT_EQ(h.Call("connect", fd, h.StageSockaddr(3), 8), -kEIO);
  EXPECT_TRUE(h.kernel().crashed());
  EXPECT_EQ(h.kernel().crash().bug, BugId::kL2capChanPutRefcount);
}

TEST_F(SocketTest, RxrpcDoubleBindLeak) {
  KernelHarness h56(KernelVersion::kV5_6);
  const int64_t fd = h56.Call("socket$rxrpc", 33, 5, 0);
  ASSERT_EQ(h56.Call("bind", fd, h56.StageSockaddr(100), 8), 0);
  EXPECT_EQ(h56.Call("bind", fd, h56.StageSockaddr(101), 8), -kENOMEM);
  EXPECT_TRUE(h56.kernel().crashed());
  EXPECT_EQ(h56.kernel().crash().bug, BugId::kRxrpcLookupLocalLeak);
}

TEST_F(SocketTest, HugeOptlenOob) {
  const int64_t fd = Tcp();
  EXPECT_EQ(h.Call("setsockopt$SNDBUF", fd, 1, h.OutBuf(128), 100), -kEIO);
  EXPECT_TRUE(h.kernel().crashed());
  EXPECT_EQ(h.kernel().crash().bug, BugId::kSockoptHugeOptlenOob);
}

// ---- netlink ----

class NetlinkTest : public ::testing::Test {
 protected:
  KernelHarness h{KernelVersion::kV5_11};
  int64_t fd_ = -1;

  void SetUp() override {
    fd_ = h.Call("socket$nl802154", 16, 3, 20);
    ASSERT_GE(fd_, 0);
    ASSERT_EQ(h.Call("bind$netlink", fd_, h.OutBuf(8), 8), 0);
  }

  // Builds one TLV attribute {len, type, payload}.
  static std::vector<uint8_t> Attr(uint16_t type,
                                   const std::vector<uint8_t>& payload) {
    const uint16_t len = static_cast<uint16_t>(4 + payload.size());
    std::vector<uint8_t> out = {
        static_cast<uint8_t>(len & 0xff), static_cast<uint8_t>(len >> 8),
        static_cast<uint8_t>(type & 0xff), static_cast<uint8_t>(type >> 8)};
    out.insert(out.end(), payload.begin(), payload.end());
    while (out.size() % 4 != 0) {
      out.push_back(0);
    }
    return out;
  }

  int64_t Send(const std::string& call, const std::vector<uint8_t>& msg) {
    return h.Call(call, fd_, h.Stage(msg.data(), msg.size()), msg.size());
  }
};

TEST_F(NetlinkTest, AddKeyRequiresIdAndBytes) {
  auto msg = Attr(2, {1, 2});  // Key id only.
  EXPECT_EQ(Send("sendmsg$nl802154_add_key", msg), -kEINVAL);
  auto full = Attr(2, {1, 2});
  const auto key = Attr(3, std::vector<uint8_t>(16, 0xaa));
  full.insert(full.end(), key.begin(), key.end());
  EXPECT_EQ(Send("sendmsg$nl802154_add_key", full), 0);
}

TEST_F(NetlinkTest, MalformedTlvRejected) {
  std::vector<uint8_t> bad = {2, 0, 2, 0};  // len 2 < header size.
  EXPECT_EQ(Send("sendmsg$nl802154_add_key", bad), -kEINVAL);
}

TEST_F(NetlinkTest, DelKeyOnEmptyTableNullDeref) {
  KernelHarness h54(KernelVersion::kV5_4);
  const int64_t fd = h54.Call("socket$nl802154", 16, 3, 20);
  const auto msg = Attr(2, {1, 2});
  EXPECT_EQ(h54.Call("sendmsg$nl802154_del_key", fd,
                     h54.Stage(msg.data(), msg.size()), msg.size()),
            -kEFAULT);
  EXPECT_TRUE(h54.kernel().crashed());
  EXPECT_EQ(h54.kernel().crash().bug, BugId::kNl802154DelLlsecKey);
}

TEST_F(NetlinkTest, SetParamsMissingNestedKeyIdNullDeref) {
  // Sec-level attribute whose payload lacks the nested key-id attribute.
  const auto msg = Attr(4, {0, 0, 0, 0});
  EXPECT_EQ(Send("sendmsg$nl802154_set_params", msg), -kEFAULT);
  EXPECT_TRUE(h.kernel().crashed());
  EXPECT_EQ(h.kernel().crash().bug, BugId::kIeee802154LlsecParseKeyId);
}

TEST_F(NetlinkTest, SetParamsWithNestedKeyIdOk) {
  const auto nested = Attr(2, {7, 7});
  const auto msg = Attr(4, nested);
  EXPECT_EQ(Send("sendmsg$nl802154_set_params", msg), 0);
  EXPECT_FALSE(h.kernel().crashed());
}

TEST_F(NetlinkTest, DeletedKeyPoisonsWpanTx) {
  auto add = Attr(2, {1, 2});
  const auto key = Attr(3, std::vector<uint8_t>(16, 0xbb));
  add.insert(add.end(), key.begin(), key.end());
  ASSERT_EQ(Send("sendmsg$nl802154_add_key", add), 0);
  ASSERT_EQ(Send("sendmsg$nl802154_del_key", Attr(2, {1, 2})), 0);
  // Now transmit on an 802.15.4 socket -> use-after-free.
  const int64_t wpan = h.Call("socket$ieee802154", 36, 2, 0);
  h.Call("connect", wpan, h.StageSockaddr(9), 8);
  EXPECT_EQ(h.Call("sendto", wpan, h.Stage("f", 1), 1, 0, 0, 0), -kEIO);
  EXPECT_TRUE(h.kernel().crashed());
  EXPECT_EQ(h.kernel().crash().bug, BugId::kIeee802154TxUaf);
}

// ---- KVM ----

class KvmTest : public ::testing::Test {
 protected:
  KernelHarness h{KernelVersion::kV5_11};
  int64_t kvm_ = -1;
  int64_t vm_ = -1;
  int64_t vcpu_ = -1;

  void SetUp() override {
    kvm_ = h.Call("openat$kvm", h.StageString("/dev/kvm"), 2);
    ASSERT_GE(kvm_, 0);
    vm_ = h.Call("ioctl$KVM_CREATE_VM", kvm_, 0xae01, 0);
    ASSERT_GE(vm_, 0);
    vcpu_ = h.Call("ioctl$KVM_CREATE_VCPU", vm_, 0xae41, 0);
    ASSERT_GE(vcpu_, 0);
  }

  int64_t SetMemslot(uint32_t slot, uint64_t gpa, uint64_t size) {
    uint8_t raw[32] = {0};
    std::memcpy(raw, &slot, 4);
    std::memcpy(raw + 8, &gpa, 8);
    std::memcpy(raw + 16, &size, 8);
    return h.Call("ioctl$KVM_SET_USER_MEMORY_REGION", vm_, 0x4020ae46,
                  h.Stage(raw, sizeof(raw)));
  }
};

TEST_F(KvmTest, RunWithoutMemoryFaults) {
  EXPECT_EQ(h.Call("ioctl$KVM_RUN", vcpu_, 0xae80, 0), -kEFAULT);
  EXPECT_FALSE(h.kernel().crashed());
}

TEST_F(KvmTest, RunWithCoveringMemslotSucceeds) {
  // Fetch gfn is 0x100; cover [0, 0x200) pages.
  ASSERT_EQ(SetMemslot(0, 0, 0x200 * 4096), 0);
  EXPECT_EQ(h.Call("ioctl$KVM_RUN", vcpu_, 0xae80, 0), 0);
}

TEST_F(KvmTest, SearchMemslotsOobBugInV56) {
  // Listing 1: all memslots above the fetch gfn -> start == len -> OOB.
  KernelHarness h56(KernelVersion::kV5_6);
  const int64_t kvm =
      h56.Call("openat$kvm", h56.StageString("/dev/kvm"), 2);
  const int64_t vm = h56.Call("ioctl$KVM_CREATE_VM", kvm, 0xae01, 0);
  const int64_t vcpu = h56.Call("ioctl$KVM_CREATE_VCPU", vm, 0xae41, 0);
  uint8_t raw[32] = {0};
  const uint32_t slot = 0;
  const uint64_t gpa = 0x400000;  // gfn 0x400 > fetch gfn 0x100.
  const uint64_t size = 0x10 * 4096;
  std::memcpy(raw, &slot, 4);
  std::memcpy(raw + 8, &gpa, 8);
  std::memcpy(raw + 16, &size, 8);
  ASSERT_EQ(h56.Call("ioctl$KVM_SET_USER_MEMORY_REGION", vm, 0x4020ae46,
                     h56.Stage(raw, sizeof(raw))),
            0);
  EXPECT_EQ(h56.Call("ioctl$KVM_RUN", vcpu, 0xae80, 0), -kEIO);
  EXPECT_TRUE(h56.kernel().crashed());
  EXPECT_EQ(h56.kernel().crash().bug, BugId::kKvmGfnToHvaCacheOob);
}

TEST_F(KvmTest, MemslotDeleteAndReplace) {
  ASSERT_EQ(SetMemslot(1, 0x1000, 0x1000), 0);
  ASSERT_EQ(SetMemslot(1, 0x2000, 0x1000), 0);   // Replace.
  ASSERT_EQ(SetMemslot(1, 0x2000, 0), 0);        // Delete.
  EXPECT_EQ(SetMemslot(77, 0, 0x1000), -kEINVAL);  // Slot id too big.
}

TEST_F(KvmTest, IrqLineNeedsIrqchip) {
  const uint32_t line[2] = {3, 1};
  EXPECT_EQ(h.Call("ioctl$KVM_IRQ_LINE", vm_, 0xc008ae67,
                   h.Stage(line, sizeof(line))),
            -kENXIO);
  ASSERT_EQ(h.Call("ioctl$KVM_CREATE_IRQCHIP", vm_, 0xae60, 0), 0);
  EXPECT_EQ(h.Call("ioctl$KVM_IRQ_LINE", vm_, 0xc008ae67,
                   h.Stage(line, sizeof(line))),
            0);
}

TEST_F(KvmTest, HypervSynicNullDerefWithoutIrqchip) {
  uint8_t cap[24] = {0};
  const uint32_t hv_synic = 123;
  std::memcpy(cap, &hv_synic, 4);
  ASSERT_EQ(h.Call("ioctl$KVM_ENABLE_CAP_CPU", vcpu_, 0x4068aea3,
                   h.Stage(cap, sizeof(cap))),
            0);
  ASSERT_EQ(SetMemslot(0, 0, 0x200 * 4096), 0);
  EXPECT_EQ(h.Call("ioctl$KVM_RUN", vcpu_, 0xae80, 0), -kEFAULT);
  EXPECT_TRUE(h.kernel().crashed());
  EXPECT_EQ(h.kernel().crash().bug, BugId::kKvmHvIrqRoutingNullDeref);
}

TEST_F(KvmTest, CoalescedMmioUnregisterGpf) {
  uint64_t zone[2] = {0x1000, 0x1000};
  ASSERT_EQ(h.Call("ioctl$KVM_REGISTER_COALESCED_MMIO", vm_, 0x4010ae67,
                   h.Stage(zone, sizeof(zone))),
            0);
  ASSERT_EQ(h.Call("ioctl$KVM_UNREGISTER_COALESCED_MMIO", vm_, 0x4010ae68,
                   h.Stage(zone, sizeof(zone))),
            0);
  // Second unregister: zone list empty but a bus device count remains.
  EXPECT_EQ(h.Call("ioctl$KVM_UNREGISTER_COALESCED_MMIO", vm_, 0x4010ae68,
                   h.Stage(zone, sizeof(zone))),
            -kEFAULT);
  EXPECT_TRUE(h.kernel().crashed());
  EXPECT_EQ(h.kernel().crash().bug, BugId::kKvmUnregisterCoalescedMmioGpf);
}

TEST_F(KvmTest, IoeventfdConsumesEventfd) {
  const int64_t efd = h.Call("eventfd2", 0, 0);
  uint64_t arg[3] = {0x1000, 4, static_cast<uint64_t>(efd)};
  EXPECT_EQ(h.Call("ioctl$KVM_IOEVENTFD", vm_, 0x4040ae79,
                   h.Stage(arg, sizeof(arg))),
            0);
  uint64_t bad[3] = {0x1000, 4, static_cast<uint64_t>(-1)};
  EXPECT_EQ(h.Call("ioctl$KVM_IOEVENTFD", vm_, 0x4040ae79,
                   h.Stage(bad, sizeof(bad))),
            -kEBADF);
}

TEST_F(KvmTest, SetGetRegsRoundTrip) {
  const uint64_t regs[4] = {0x1111, 0x2222, 0x3333, 0x4444};
  ASSERT_EQ(h.Call("ioctl$KVM_SET_REGS", vcpu_, 0x4090ae82,
                   h.Stage(regs, sizeof(regs))),
            0);
  const uint64_t out = h.OutBuf(32);
  ASSERT_EQ(h.Call("ioctl$KVM_GET_REGS", vcpu_, 0x8090ae81, out), 0);
  uint64_t r0;
  h.kernel().mem().Read64(out, &r0);
  EXPECT_EQ(r0, 0x1111u);
}

TEST_F(KvmTest, SmiGatedByVersion) {
  KernelHarness h419(KernelVersion::kV4_19);
  EXPECT_EQ(h419.Call("ioctl$KVM_SMI", 3, 0xaeb7), -kENOSYS);
  EXPECT_EQ(h.Call("ioctl$KVM_SMI", vcpu_, 0xaeb7), 0);
}

// ---- TTY ----

class TtyTest : public ::testing::Test {
 protected:
  KernelHarness h{KernelVersion::kV5_11};

  int64_t OpenPtmx() {
    return h.Call("openat$ptmx", h.StageString("/dev/ptmx"), 2);
  }
};

TEST_F(TtyTest, LdiscRoundTrip) {
  const int64_t fd = OpenPtmx();
  EXPECT_EQ(h.Call("ioctl$TIOCSETD", fd, 0x5423, 21), 0);  // N_GSM.
  const uint64_t out = h.OutBuf(4);
  EXPECT_EQ(h.Call("ioctl$TIOCGETD", fd, 0x5424, out), 0);
  uint32_t ldisc;
  h.kernel().mem().Read32(out, &ldisc);
  EXPECT_EQ(ldisc, 21u);
}

TEST_F(TtyTest, GsmConfigBeforeAttachNullDeref) {
  const int64_t fd = OpenPtmx();
  const uint32_t conf[4] = {1, 0, 64, 64};
  EXPECT_EQ(h.Call("ioctl$GSMIOC_CONFIG", fd, 0x40104701,
                   h.Stage(conf, sizeof(conf))),
            -kEFAULT);
  EXPECT_TRUE(h.kernel().crashed());
  EXPECT_EQ(h.kernel().crash().bug, BugId::kGsmldAttachNullDeref);
}

TEST_F(TtyTest, GsmWriteNeedsConfig) {
  const int64_t fd = OpenPtmx();
  ASSERT_EQ(h.Call("ioctl$TIOCSETD", fd, 0x5423, 21), 0);
  EXPECT_EQ(h.Call("write$ptmx", fd, h.Stage("x", 1), 1), -kEAGAIN);
  const uint32_t conf[4] = {1, 0, 64, 64};
  ASSERT_EQ(h.Call("ioctl$GSMIOC_CONFIG", fd, 0x40104701,
                   h.Stage(conf, sizeof(conf))),
            0);
  EXPECT_EQ(h.Call("write$ptmx", fd, h.Stage("x", 1), 1), 1);
}

TEST_F(TtyTest, NttyOpenPagingFaultOnGsmTeardown) {
  const int64_t fd = OpenPtmx();
  ASSERT_EQ(h.Call("ioctl$TIOCSETD", fd, 0x5423, 21), 0);
  const uint32_t conf[4] = {1, 0, 64, 64};
  h.Call("ioctl$GSMIOC_CONFIG", fd, 0x40104701, h.Stage(conf, sizeof(conf)));
  h.Call("write$ptmx", fd, h.Stage("zz", 2), 2);  // rx_pending.
  EXPECT_EQ(h.Call("ioctl$TIOCSETD", fd, 0x5423, 0), -kEFAULT);
  EXPECT_TRUE(h.kernel().crashed());
  EXPECT_EQ(h.kernel().crash().bug, BugId::kNttyOpenPagingFault);
}

TEST_F(TtyTest, ReceiveBufUafOnV50) {
  KernelHarness h50(KernelVersion::kV5_0);
  const int64_t fd =
      h50.Call("openat$ptmx", h50.StageString("/dev/ptmx"), 2);
  ASSERT_EQ(h50.Call("write$ptmx", fd, h50.Stage("aa", 2), 2), 2);
  ASSERT_EQ(h50.Call("ioctl$TIOCSETD", fd, 0x5423, 3), 0);  // N_PPP.
  ASSERT_EQ(h50.Call("ioctl$TIOCSETD", fd, 0x5423, 0), 0);  // Back to N_TTY.
  EXPECT_EQ(h50.Call("read$ptmx", fd, h50.OutBuf(8), 2), -kEIO);
  EXPECT_TRUE(h50.kernel().crashed());
  EXPECT_EQ(h50.kernel().crash().bug, BugId::kNttyReceiveBufUaf);
}

TEST_F(TtyTest, VcsResizeAndOobs) {
  KernelHarness h419(KernelVersion::kV4_19);
  const int64_t fd = h419.Call("openat$vcs", h419.StageString("/dev/vcs"), 2);
  ASSERT_GE(fd, 0);
  // Default screen 80x25 -> 4000 bytes.
  EXPECT_EQ(h419.Call("write$vcs", fd, h419.OutBuf(4100), 4100), -kEIO);
  EXPECT_TRUE(h419.kernel().crashed());
  EXPECT_EQ(h419.kernel().crash().bug, BugId::kVcsWriteOob);
}

TEST_F(TtyTest, VcsReadOobAfterShrinkOnV50) {
  KernelHarness h50(KernelVersion::kV5_0);
  const int64_t fd = h50.Call("openat$vcs", h50.StageString("/dev/vcs"), 2);
  const uint16_t sizes[2] = {10, 10};  // Shrink to 10x10.
  ASSERT_EQ(h50.Call("ioctl$VT_RESIZE", fd, 0x5609,
                     h50.Stage(sizes, sizeof(sizes))),
            0);
  EXPECT_EQ(h50.Call("read$vcs", fd, h50.OutBuf(4096), 500), -kEIO);
  EXPECT_TRUE(h50.kernel().crashed());
  EXPECT_EQ(h50.kernel().crash().bug, BugId::kVcsScrReadwOob);
}

TEST_F(TtyTest, FbPixclockZeroDivideOn419) {
  KernelHarness h419(KernelVersion::kV4_19);
  const int64_t fd = h419.Call("openat$fb0", h419.StageString("/dev/fb0"), 2);
  const uint32_t var[4] = {1024, 768, 32, 0};
  EXPECT_EQ(h419.Call("ioctl$FBIOPUT_VSCREENINFO", fd, 0x4601,
                      h419.Stage(var, sizeof(var))),
            -kEIO);
  EXPECT_TRUE(h419.kernel().crashed());
}

TEST_F(TtyTest, FontOobNeedsSecondOversizedFont) {
  KernelHarness h419(KernelVersion::kV4_19);
  const int64_t fd = h419.Call("openat$vcs", h419.StageString("/dev/vcs"), 2);
  const uint32_t ok_font[2] = {16, 256};
  ASSERT_EQ(h419.Call("ioctl$PIO_FONT", fd, 0x4b61,
                      h419.Stage(ok_font, sizeof(ok_font))),
            0);
  const uint32_t big_font[2] = {64, 256};
  EXPECT_EQ(h419.Call("ioctl$PIO_FONT", fd, 0x4b61,
                      h419.Stage(big_font, sizeof(big_font))),
            -kEIO);
  EXPECT_TRUE(h419.kernel().crashed());
  EXPECT_EQ(h419.kernel().crash().bug, BugId::kFbconGetFontOob);
}

TEST_F(TtyTest, TtyprintkBugNeedsRepeatedLongWrites) {
  KernelHarness h54(KernelVersion::kV5_4);
  const int64_t fd =
      h54.Call("openat$ttyprintk", h54.StageString("/dev/ttyprintk"), 2);
  ASSERT_GE(fd, 0);
  EXPECT_EQ(h54.Call("write$ttyprintk", fd, h54.OutBuf(300), 300), 300);
  EXPECT_EQ(h54.Call("write$ttyprintk", fd, h54.OutBuf(300), 300), 300);
  EXPECT_EQ(h54.Call("write$ttyprintk", fd, h54.OutBuf(300), 300), -kEIO);
  EXPECT_TRUE(h54.kernel().crashed());
  EXPECT_EQ(h54.kernel().crash().bug, BugId::kTpkWriteBug);
}

TEST_F(TtyTest, VividStreamLifecycleBug) {
  KernelHarness h419(KernelVersion::kV4_19);
  const int64_t fd =
      h419.Call("openat$video0", h419.StageString("/dev/video0"), 2);
  ASSERT_GE(fd, 0);
  EXPECT_EQ(h419.Call("ioctl$VIDIOC_STREAMON", fd, 0x40045612, 1), -kEINVAL);
  ASSERT_EQ(h419.Call("ioctl$VIDIOC_REQBUFS", fd, 0xc0145608, 4), 0);
  ASSERT_EQ(h419.Call("ioctl$VIDIOC_STREAMON", fd, 0x40045612, 1), 0);
  ASSERT_EQ(h419.Call("ioctl$VIDIOC_STREAMOFF", fd, 0x40045613, 1), 0);
  EXPECT_EQ(h419.Call("ioctl$VIDIOC_STREAMOFF", fd, 0x40045613, 1), -kEFAULT);
  EXPECT_TRUE(h419.kernel().crashed());
  EXPECT_EQ(h419.kernel().crash().bug, BugId::kVividStopGenerating);
}

TEST_F(TtyTest, ConsoleUnlockDeadlockNeedsLongChain) {
  const int64_t ptmx = OpenPtmx();
  const int64_t vcs = h.Call("openat$vcs", h.StageString("/dev/vcs"), 2);
  ASSERT_GE(vcs, 0);
  // Build printk pressure: STI x4, two resizes, then vcs writes.
  for (int i = 0; i < 4; ++i) {
    ASSERT_EQ(h.Call("ioctl$TIOCSTI", ptmx, 0x5412, h.StageString("x")), 0);
  }
  const uint16_t sizes[2] = {30, 90};
  ASSERT_EQ(h.Call("ioctl$VT_RESIZE", vcs, 0x5609,
                   h.Stage(sizes, sizeof(sizes))),
            0);
  ASSERT_EQ(h.Call("ioctl$VT_RESIZE", vcs, 0x5609,
                   h.Stage(sizes, sizeof(sizes))),
            0);
  ASSERT_EQ(h.Call("write$vcs", vcs, h.Stage("a", 1), 1), 1);
  EXPECT_EQ(h.Call("write$vcs", vcs, h.Stage("a", 1), 1), -kEIO);
  EXPECT_TRUE(h.kernel().crashed());
  EXPECT_EQ(h.kernel().crash().bug, BugId::kConsoleUnlockDeadlock);
}

// ---- io_uring ----

TEST(UringTest, SetupRoundsEntries) {
  KernelHarness h(KernelVersion::kV5_11);
  const uint64_t params = h.OutBuf(4);
  const int64_t fd = h.Call("io_uring_setup", 100, params);
  ASSERT_GE(fd, 0);
  uint32_t rounded;
  h.kernel().mem().Read32(params, &rounded);
  EXPECT_EQ(rounded, 128u);
}

TEST(UringTest, CancelWithClosedRegisteredFileNullDeref) {
  KernelHarness h(KernelVersion::kV5_11);
  const int64_t ring = h.Call("io_uring_setup", 8, h.OutBuf(4));
  const int64_t efd = h.Call("eventfd2", 0, 0);
  const uint64_t fds[1] = {static_cast<uint64_t>(efd)};
  ASSERT_EQ(h.Call("io_uring_register$FILES", ring, 2,
                   h.Stage(fds, sizeof(fds)), 1),
            0);
  ASSERT_EQ(h.Call("close", efd), 0);
  EXPECT_EQ(h.Call("io_uring_enter", ring, 0, 0, 0x10), -kEFAULT);
  EXPECT_TRUE(h.kernel().crashed());
  EXPECT_EQ(h.kernel().crash().bug, BugId::kIoUringCancelNullDeref);
}

TEST(UringTest, SubmitAndComplete) {
  KernelHarness h(KernelVersion::kV5_11);
  const int64_t ring = h.Call("io_uring_setup", 8, h.OutBuf(4));
  EXPECT_EQ(h.Call("io_uring_enter", ring, 4, 0, 0), 4);
  EXPECT_EQ(h.Call("io_uring_enter", ring, 0, 4, 1), 4);  // GETEVENTS.
}

// ---- block ----

TEST(BlockTest, NbdDisconnectChainNullDeref) {
  KernelHarness h(KernelVersion::kV5_11);
  const int64_t nbd = h.Call("openat$nbd", h.StageString("/dev/nbd0"), 2);
  const int64_t sock = h.Call("socket$tcp", 2, 1, 0);
  ASSERT_EQ(h.Call("ioctl$NBD_SET_SOCK", nbd, 0xab00, sock), 0);
  ASSERT_EQ(h.Call("ioctl$NBD_DO_IT", nbd, 0xab03), 0);
  ASSERT_EQ(h.Call("close", sock), 0);
  EXPECT_EQ(h.Call("ioctl$NBD_DISCONNECT", nbd, 0xab08), -kEFAULT);
  EXPECT_TRUE(h.kernel().crashed());
  EXPECT_EQ(h.kernel().crash().bug, BugId::kNbdDisconnectNullDeref);
}

TEST(BlockTest, NbdNormalDisconnectIsClean) {
  KernelHarness h(KernelVersion::kV5_11);
  const int64_t nbd = h.Call("openat$nbd", h.StageString("/dev/nbd0"), 2);
  const int64_t sock = h.Call("socket$tcp", 2, 1, 0);
  ASSERT_EQ(h.Call("ioctl$NBD_SET_SOCK", nbd, 0xab00, sock), 0);
  ASSERT_EQ(h.Call("ioctl$NBD_DO_IT", nbd, 0xab03), 0);
  EXPECT_EQ(h.Call("ioctl$NBD_DISCONNECT", nbd, 0xab08), 0);
  EXPECT_FALSE(h.kernel().crashed());
}

TEST(BlockTest, LoopDoubleClearPutDevice) {
  KernelHarness h(KernelVersion::kV5_11);
  const int64_t file =
      h.Call("openat$file", h.StageString("/tmp/back"), 0x42, 0644);
  const int64_t loop = h.Call("openat$loop", h.StageString("/dev/loop0"), 2);
  ASSERT_EQ(h.Call("ioctl$LOOP_SET_FD", loop, 0x4c00, file), 0);
  ASSERT_EQ(h.Call("close", file), 0);
  ASSERT_EQ(h.Call("ioctl$LOOP_CLR_FD", loop, 0x4c01), 0);
  EXPECT_EQ(h.Call("ioctl$LOOP_CLR_FD", loop, 0x4c01), -kEFAULT);
  EXPECT_TRUE(h.kernel().crashed());
  EXPECT_EQ(h.kernel().crash().bug, BugId::kPutDeviceNullDeref);
}

// ---- rdma ----

TEST(RdmaTest, ListenAfterDestroyUaf) {
  KernelHarness h(KernelVersion::kV5_11);
  const int64_t fd =
      h.Call("openat$rdma_cm", h.StageString("/dev/infiniband/rdma_cm"), 2);
  ASSERT_GE(fd, 0);
  ASSERT_EQ(h.Call("write$rdma_create_id", fd, h.OutBuf(8), 8), 0);
  ASSERT_EQ(h.Call("write$rdma_destroy_id", fd, h.OutBuf(8), 8), 0);
  EXPECT_EQ(h.Call("write$rdma_listen", fd, h.OutBuf(8), 8), -kEIO);
  EXPECT_TRUE(h.kernel().crashed());
  EXPECT_EQ(h.kernel().crash().bug, BugId::kRdmaListenUaf);
}

TEST(RdmaTest, DestroyDuringResolveUaf) {
  KernelHarness h(KernelVersion::kV5_11);
  const int64_t fd =
      h.Call("openat$rdma_cm", h.StageString("/dev/infiniband/rdma_cm"), 2);
  ASSERT_EQ(h.Call("write$rdma_create_id", fd, h.OutBuf(8), 8), 0);
  ASSERT_EQ(h.Call("write$rdma_bind_addr", fd, h.OutBuf(8), 8), 0);
  ASSERT_EQ(h.Call("write$rdma_resolve_addr", fd, h.OutBuf(8), 8), 0);
  EXPECT_EQ(h.Call("write$rdma_destroy_id", fd, h.OutBuf(8), 8), -kEIO);
  EXPECT_TRUE(h.kernel().crashed());
  EXPECT_EQ(h.kernel().crash().bug, BugId::kCmaCancelOperationUaf);
}

TEST(RdmaTest, NormalLifecycle) {
  KernelHarness h(KernelVersion::kV5_11);
  const int64_t fd =
      h.Call("openat$rdma_cm", h.StageString("/dev/infiniband/rdma_cm"), 2);
  ASSERT_EQ(h.Call("write$rdma_create_id", fd, h.OutBuf(8), 8), 0);
  ASSERT_EQ(h.Call("write$rdma_bind_addr", fd, h.OutBuf(8), 8), 0);
  ASSERT_EQ(h.Call("write$rdma_listen", fd, h.OutBuf(8), 8), 0);
  EXPECT_FALSE(h.kernel().crashed());
}

// ---- aio ----

class AioTest : public ::testing::Test {
 protected:
  KernelHarness h{KernelVersion::kV5_0};
  int64_t ctx_ = -1;

  void Setup(uint32_t nr) {
    const uint64_t out = h.OutBuf(8);
    ASSERT_EQ(h.Call("io_setup", nr, out), 0);
    uint64_t id;
    ASSERT_TRUE(h.kernel().mem().Read64(out, &id));
    ctx_ = static_cast<int64_t>(id);
  }

  uint64_t StageIocbs(int count, uint64_t fd) {
    std::vector<uint64_t> raw;
    for (int i = 0; i < count; ++i) {
      raw.push_back(fd);
      raw.push_back(0);  // op
      raw.push_back(0);  // buf
      raw.push_back(8);  // len
    }
    return h.Stage(raw.data(), raw.size() * 8);
  }
};

TEST_F(AioTest, SubmitGetEventsDestroy) {
  Setup(8);
  const int64_t efd = h.Call("eventfd2", 0, 0);
  EXPECT_EQ(h.Call("io_submit", ctx_, 2, StageIocbs(2, efd)), 2);
  EXPECT_EQ(h.Call("io_getevents", ctx_, 0, 8, h.OutBuf(64)), 2);
  EXPECT_EQ(h.Call("io_destroy", ctx_), 0);
  EXPECT_EQ(h.Call("io_submit", ctx_, 1, StageIocbs(1, efd)), -kEINVAL);
}

TEST_F(AioTest, OverSubmitDeadlockOnV50) {
  Setup(2);
  const int64_t efd = h.Call("eventfd2", 0, 0);
  EXPECT_EQ(h.Call("io_submit", ctx_, 3, StageIocbs(3, efd)), -kEIO);
  EXPECT_TRUE(h.kernel().crashed());
  EXPECT_EQ(h.kernel().crash().bug, BugId::kIoSubmitOneDeadlock);
}

TEST_F(AioTest, DestroyWithInFlightDeadlockOnV50) {
  Setup(8);
  const int64_t efd = h.Call("eventfd2", 0, 0);
  ASSERT_EQ(h.Call("io_submit", ctx_, 2, StageIocbs(2, efd)), 2);
  EXPECT_EQ(h.Call("io_destroy", ctx_), -kEIO);
  EXPECT_TRUE(h.kernel().crashed());
  EXPECT_EQ(h.kernel().crash().bug, BugId::kFreeIoctxUsersDeadlock);
}

// ---- coredump (the paper's case study) ----

TEST(CoredumpTest, FillThreadCoreUninitValue) {
  KernelHarness h(KernelVersion::kV5_6);
  ASSERT_EQ(h.Call("prctl$PR_SET_DUMPABLE", 4, 1), 0);
  // Partial regset: 24 bytes is not a multiple of the 16-byte slot size.
  ASSERT_EQ(h.Call("ptrace$SETREGSET", 0, h.OutBuf(24), 24), 0);
  EXPECT_EQ(h.Call("tgkill$self", 11), -kEIO);  // SIGSEGV -> core dump.
  EXPECT_TRUE(h.kernel().crashed());
  EXPECT_EQ(h.kernel().crash().bug, BugId::kFillThreadCoreUninit);
}

TEST(CoredumpTest, FullRegsetIsClean) {
  KernelHarness h(KernelVersion::kV5_6);
  h.Call("prctl$PR_SET_DUMPABLE", 4, 1);
  h.Call("ptrace$SETREGSET", 0, h.OutBuf(32), 32);  // Multiple of 16.
  EXPECT_EQ(h.Call("tgkill$self", 11), 0);
  EXPECT_FALSE(h.kernel().crashed());
}

TEST(CoredumpTest, NotDumpableSkipsDump) {
  KernelHarness h(KernelVersion::kV5_6);
  h.Call("ptrace$SETREGSET", 0, h.OutBuf(24), 24);
  EXPECT_EQ(h.Call("tgkill$self", 11), 0);  // dumpable defaults to false.
  EXPECT_FALSE(h.kernel().crashed());
}

TEST(CoredumpTest, FixedInV511) {
  KernelHarness h(KernelVersion::kV5_11);
  h.Call("prctl$PR_SET_DUMPABLE", 4, 1);
  h.Call("ptrace$SETREGSET", 0, h.OutBuf(24), 24);
  EXPECT_EQ(h.Call("tgkill$self", 11), 0);
  EXPECT_FALSE(h.kernel().crashed());
}

}  // namespace
}  // namespace healer
