// Observability-plane tests: the flight-recorder journal (ring semantics,
// export encodings, determinism, multi-writer reconciliation), histogram
// quantiles, Prometheus exposition conformance for every healer_* metric,
// crash postmortem bundles (one per unique bug, byte-identical across
// same-seed runs), and the localhost introspection server.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <regex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "src/base/introspect_server.h"
#include "src/base/journal.h"
#include "src/base/metrics.h"
#include "src/fuzz/campaign.h"
#include "src/fuzz/fuzzer.h"
#include "src/fuzz/parallel.h"
#include "src/fuzz/postmortem.h"
#include "src/syzlang/builtin_descs.h"

namespace healer {
namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------------
// Journal: ring semantics and export encodings.

TEST(JournalTest, RingKeepsNewestAndCountsDrops) {
  if (!kTelemetryEnabled) {
    GTEST_SKIP() << "telemetry compiled out";
  }
  Journal journal(3);
  for (uint64_t i = 0; i < 5; ++i) {
    journal.Append(JournalRecord{JournalKind::kExec, 0, i * 10, i, 0, 0, ""});
  }
  EXPECT_EQ(journal.size(), 3u);
  EXPECT_EQ(journal.dropped(), 2u);
  const std::vector<JournalRecord> records = journal.Records();
  ASSERT_EQ(records.size(), 3u);
  // Oldest first: records 2, 3, 4 survive.
  EXPECT_EQ(records[0].a, 2u);
  EXPECT_EQ(records[2].a, 4u);
  const std::vector<JournalRecord> tail = journal.Tail(2);
  ASSERT_EQ(tail.size(), 2u);
  EXPECT_EQ(tail[0].a, 3u);
  EXPECT_EQ(tail[1].a, 4u);
}

TEST(JournalTest, ZeroCapacityDropsBeforeLocking) {
  Journal journal;  // capacity 0
  EXPECT_FALSE(journal.enabled());
  journal.Append(JournalRecord{JournalKind::kCrash, 1, 5, 0, 0, 0, ""});
  EXPECT_EQ(journal.size(), 0u);
  EXPECT_TRUE(journal.Records().empty());
}

TEST(JournalTest, JsonLineGolden) {
  JournalRecord record{JournalKind::kExec, 0, 12, 1, 2, 3, ""};
  EXPECT_EQ(record.ToJsonLine(),
            "{\"at\":12,\"kind\":\"exec\",\"worker\":0,\"a\":1,\"b\":2,"
            "\"c\":3}");
  JournalRecord crash{JournalKind::kCrash, 2, 99, 7, 0, 0,
                      "KASAN: \"use\"\nafter\tfree"};
  EXPECT_EQ(crash.ToJsonLine(),
            "{\"at\":99,\"kind\":\"crash\",\"worker\":2,\"a\":7,\"b\":0,"
            "\"c\":0,\"detail\":\"KASAN: \\\"use\\\"\\nafter\\tfree\"}");
}

TEST(JournalTest, BinaryRoundTripsExactly) {
  std::vector<JournalRecord> records = {
      {JournalKind::kExec, 0, 1, 2, 3, 4, ""},
      {JournalKind::kRelationLearned, 3, 500, 17, 21, 2, "open->read"},
      {JournalKind::kCrash, 1, 1000, 55, 12, 1, "null deref in sim_tcp"},
  };
  const std::string frame = JournalRecordsToBinary(records);
  std::vector<JournalRecord> decoded;
  ASSERT_TRUE(JournalRecordsFromBinary(frame, &decoded));
  EXPECT_EQ(decoded, records);
}

TEST(JournalTest, BinaryDecodeIsDefensive) {
  std::vector<JournalRecord> out;
  EXPECT_FALSE(JournalRecordsFromBinary("", &out));
  EXPECT_FALSE(JournalRecordsFromBinary("NOPE", &out));
  const std::string frame =
      JournalRecordsToBinary({{JournalKind::kExec, 0, 1, 2, 3, 4, "x"}});
  // Truncations at every boundary must fail, never crash.
  for (size_t len = 0; len < frame.size(); ++len) {
    EXPECT_FALSE(JournalRecordsFromBinary(frame.substr(0, len), &out))
        << "accepted truncation at " << len;
  }
  // Trailing garbage is rejected too.
  EXPECT_FALSE(JournalRecordsFromBinary(frame + "z", &out));
  // A corrupt kind byte is rejected.
  std::string bad_kind = frame;
  bad_kind[8] = static_cast<char>(0x7f);
  EXPECT_FALSE(JournalRecordsFromBinary(bad_kind, &out));
}

TEST(JournalTest, WriterStagesUntilFlush) {
  if (!kTelemetryEnabled) {
    GTEST_SKIP() << "telemetry compiled out";
  }
  Journal journal(16);
  JournalWriter writer(&journal, 5);
  writer.Record(JournalKind::kFault, 10, 1);
  writer.Record(JournalKind::kRecovery, 20, 2);
  EXPECT_EQ(writer.pending(), 2u);
  EXPECT_EQ(journal.size(), 0u);  // Nothing visible before the flush.
  writer.Flush();
  EXPECT_EQ(writer.pending(), 0u);
  ASSERT_EQ(journal.size(), 2u);
  EXPECT_EQ(journal.Records()[0].worker, 5u);
}

// Eight writers hammer one journal concurrently, flushing every few
// records; the drained ring must reconcile exactly with what was staged.
// Exercised under TSan by the parallel_fuzz_tsan suite.
TEST(JournalThreadsTest, ConcurrentWritersReconcile) {
  if (!kTelemetryEnabled) {
    GTEST_SKIP() << "telemetry compiled out";
  }
  constexpr size_t kWriters = 8;
  constexpr uint64_t kPerWriter = 500;
  Journal journal(kWriters * kPerWriter);
  std::vector<std::thread> threads;
  for (size_t w = 0; w < kWriters; ++w) {
    threads.emplace_back([&journal, w] {
      JournalWriter writer(&journal, static_cast<uint32_t>(w));
      for (uint64_t i = 0; i < kPerWriter; ++i) {
        writer.Record(JournalKind::kExec, i, i, w);
        if (i % 7 == 0) {
          writer.Flush();
        }
      }
      writer.Flush();
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  const std::vector<JournalRecord> records = journal.Records();
  ASSERT_EQ(records.size(), kWriters * kPerWriter);
  EXPECT_EQ(journal.dropped(), 0u);
  std::map<uint32_t, uint64_t> per_worker;
  for (const JournalRecord& record : records) {
    ++per_worker[record.worker];
  }
  ASSERT_EQ(per_worker.size(), kWriters);
  for (const auto& [worker, count] : per_worker) {
    EXPECT_EQ(count, kPerWriter) << "worker " << worker;
  }
}

// ---------------------------------------------------------------------------
// Histogram quantiles.

HistogramSnapshot SnapshotOf(const MetricRegistry& registry,
                             const std::string& name) {
  return registry.Snapshot().histograms.at(name);
}

TEST(QuantileTest, EmptyAndSingleValue) {
  if (!kTelemetryEnabled) {
    GTEST_SKIP() << "telemetry compiled out";
  }
  MetricRegistry registry;
  Histogram* hist = registry.GetHistogram("h");
  EXPECT_EQ(SnapshotOf(registry, "h").Quantile(0.5), 0.0);
  hist->Observe(2);
  const HistogramSnapshot snap = SnapshotOf(registry, "h");
  // Value 2 lands in the [2, 3] bucket; the rank interpolates across it.
  EXPECT_DOUBLE_EQ(snap.Quantile(0.50), 2.5);
  EXPECT_DOUBLE_EQ(snap.Quantile(0.90), 2.9);
  EXPECT_DOUBLE_EQ(snap.Quantile(0.99), 2.99);
}

TEST(QuantileTest, OrderedAndClamped) {
  if (!kTelemetryEnabled) {
    GTEST_SKIP() << "telemetry compiled out";
  }
  MetricRegistry registry;
  Histogram* hist = registry.GetHistogram("h");
  for (uint64_t v = 1; v <= 1000; ++v) {
    hist->Observe(v);
  }
  const HistogramSnapshot snap = SnapshotOf(registry, "h");
  const double p50 = snap.Quantile(0.50);
  const double p90 = snap.Quantile(0.90);
  const double p99 = snap.Quantile(0.99);
  EXPECT_LE(p50, p90);
  EXPECT_LE(p90, p99);
  // Log2 buckets bound the error to the covering bucket's width.
  EXPECT_GE(p50, 256.0);
  EXPECT_LE(p50, 1023.0);
  EXPECT_GE(p99, 512.0);
  EXPECT_LE(p99, 1023.0);
  // Out-of-range q clamps instead of reading out of bounds.
  EXPECT_GE(snap.Quantile(-1.0), 0.0);
  EXPECT_LE(snap.Quantile(2.0), 1023.0);
}

TEST(QuantileTest, ZeroBucket) {
  if (!kTelemetryEnabled) {
    GTEST_SKIP() << "telemetry compiled out";
  }
  MetricRegistry registry;
  Histogram* hist = registry.GetHistogram("h");
  hist->Observe(0);
  hist->Observe(0);
  EXPECT_DOUBLE_EQ(SnapshotOf(registry, "h").Quantile(0.99), 0.0);
}

// ---------------------------------------------------------------------------
// Campaign-level journal determinism and Prometheus conformance.

CampaignOptions ShortCampaign(uint64_t seed) {
  CampaignOptions options;
  options.tool = ToolKind::kHealer;
  options.seed = seed;
  options.hours = 24.0;
  options.max_execs = 300;
  return options;
}

TEST(JournalDeterminismTest, SameSeedSameJsonl) {
  if (!kTelemetryEnabled) {
    GTEST_SKIP() << "telemetry compiled out";
  }
  const CampaignResult a = RunCampaign(ShortCampaign(11));
  const CampaignResult b = RunCampaign(ShortCampaign(11));
  ASSERT_FALSE(a.journal.empty());
  EXPECT_EQ(JournalRecordsToJsonl(a.journal), JournalRecordsToJsonl(b.journal));
  EXPECT_EQ(JournalRecordsToBinary(a.journal),
            JournalRecordsToBinary(b.journal));
  // A different seed writes a different history.
  const CampaignResult c = RunCampaign(ShortCampaign(12));
  EXPECT_NE(JournalRecordsToJsonl(a.journal), JournalRecordsToJsonl(c.journal));
}

TEST(JournalDeterminismTest, CampaignJournalCoversTheCoreKinds) {
  if (!kTelemetryEnabled) {
    GTEST_SKIP() << "telemetry compiled out";
  }
  CampaignOptions options = ShortCampaign(11);
  options.journal_capacity = 1 << 16;  // Keep every record.
  const CampaignResult result = RunCampaign(options);
  std::map<JournalKind, size_t> by_kind;
  for (const JournalRecord& record : result.journal) {
    ++by_kind[record.kind];
  }
  // One exec record per fuzzing execution (ring large enough to hold all).
  EXPECT_EQ(by_kind[JournalKind::kExec], result.fuzz_execs);
  EXPECT_GT(by_kind[JournalKind::kCorpusAdd], 0u);
  EXPECT_GT(by_kind[JournalKind::kRelationLearned], 0u);
  if (!result.crashes.empty()) {
    // Every crash journals, and the crashed guest's reboot does too.
    EXPECT_GT(by_kind[JournalKind::kCrash], 0u);
    EXPECT_GT(by_kind[JournalKind::kVmLifecycle], 0u);
  }
}

// Prometheus text exposition conformance over a real campaign snapshot:
// valid metric names, counters ending in _total, a # HELP line for every
// healer_* metric, and every sample line lint-clean.
TEST(PrometheusConformanceTest, CampaignSnapshotLints) {
  if (!kTelemetryEnabled) {
    GTEST_SKIP() << "telemetry compiled out";
  }
  const CampaignResult result = RunCampaign(ShortCampaign(3));
  const std::string text = result.telemetry.ToPrometheusText();
  ASSERT_FALSE(text.empty());

  const std::regex name_re("[a-zA-Z_:][a-zA-Z0-9_:]*");
  const std::regex sample_re(
      "^([a-zA-Z_:][a-zA-Z0-9_:]*)(\\{[^{}]*\\})? "
      "(-?[0-9]+(\\.[0-9]+)?([eE][+-]?[0-9]+)?|[+-]?Inf|NaN)$");
  std::map<std::string, std::string> types;  // metric -> counter/gauge/...
  std::map<std::string, bool> has_help;
  std::string last_help_name;

  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    ASSERT_FALSE(line.empty()) << "blank line in exposition";
    if (line.rfind("# HELP ", 0) == 0) {
      std::istringstream fields(line.substr(7));
      std::string name;
      fields >> name;
      EXPECT_TRUE(std::regex_match(name, name_re)) << name;
      has_help[name] = true;
      last_help_name = name;
      continue;
    }
    if (line.rfind("# TYPE ", 0) == 0) {
      std::istringstream fields(line.substr(7));
      std::string name, type;
      fields >> name >> type;
      EXPECT_TRUE(std::regex_match(name, name_re)) << name;
      EXPECT_TRUE(type == "counter" || type == "gauge" || type == "histogram")
          << line;
      // HELP, when present, must immediately precede its TYPE line.
      if (has_help.count(name) != 0) {
        EXPECT_EQ(last_help_name, name) << "HELP/TYPE order for " << name;
      }
      types[name] = type;
      continue;
    }
    ASSERT_NE(line[0], '#') << "unknown comment: " << line;
    EXPECT_TRUE(std::regex_match(line, sample_re)) << "lint fail: " << line;
  }

  ASSERT_FALSE(types.empty());
  for (const auto& [name, type] : types) {
    EXPECT_EQ(name.rfind("healer_", 0), 0u)
        << name << " is outside the healer_ namespace";
    EXPECT_TRUE(has_help[name]) << name << " has no # HELP line";
    if (type == "counter") {
      EXPECT_EQ(name.substr(name.size() - 6), "_total")
          << "counter " << name << " must end in _total";
    }
  }
}

// ---------------------------------------------------------------------------
// Parallel fuzzing journal.

TEST(ParallelJournalTest, ExecRecordsReconcileWithFuzzExecs) {
  if (!kTelemetryEnabled) {
    GTEST_SKIP() << "telemetry compiled out";
  }
  ParallelOptions options;
  options.seed = 5;
  options.num_workers = 4;
  options.total_execs = 400;
  options.journal_capacity = 1 << 16;  // Keep every record.
  const ParallelResult result = RunParallelFuzz(BuiltinTarget(), options);
  EXPECT_EQ(result.fuzz_execs, options.total_execs);
  std::map<JournalKind, size_t> by_kind;
  std::map<uint32_t, size_t> execs_by_worker;
  for (const JournalRecord& record : result.journal) {
    ++by_kind[record.kind];
    if (record.kind == JournalKind::kExec) {
      ++execs_by_worker[record.worker];
    }
  }
  // One exec record per claimed ticket, fleet-wide and per worker.
  EXPECT_EQ(by_kind[JournalKind::kExec], result.fuzz_execs);
  size_t sum = 0;
  for (const auto& [worker, count] : execs_by_worker) {
    EXPECT_LT(worker, options.num_workers);
    sum += count;
  }
  EXPECT_EQ(sum, result.fuzz_execs);
  EXPECT_GT(by_kind[JournalKind::kCorpusAdd], 0u);
}

TEST(ParallelJournalTest, DisabledByDefault) {
  ParallelOptions options;
  options.seed = 5;
  options.num_workers = 2;
  options.total_execs = 64;
  const ParallelResult result = RunParallelFuzz(BuiltinTarget(), options);
  EXPECT_TRUE(result.journal.empty());
}

// ---------------------------------------------------------------------------
// Crash postmortem bundles.

TEST(PostmortemTest, SlugIsFilesystemSafe) {
  EXPECT_EQ(PostmortemSlug("KASAN: use-after-free in tcp_close"),
            "kasan-use-after-free-in-tcp-close");
  EXPECT_EQ(PostmortemSlug("a  b//c"), "a-b-c");
  EXPECT_EQ(PostmortemSlug(""), "crash");
  EXPECT_LE(PostmortemSlug(std::string(200, 'x')).size(), 48u);
}

// Reads every regular file under `dir` into path -> contents (relative
// paths), for byte-level bundle comparison.
std::map<std::string, std::string> SlurpTree(const fs::path& dir) {
  std::map<std::string, std::string> files;
  for (const auto& entry : fs::recursive_directory_iterator(dir)) {
    if (!entry.is_regular_file()) {
      continue;
    }
    std::ifstream in(entry.path(), std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    files[fs::relative(entry.path(), dir).string()] = buf.str();
  }
  return files;
}

// The crash-prone fixed-seed configuration from fuzz_loop_test: 400 steps
// at seed 20260806 find 7 unique bugs. Each must produce one bundle, and
// two same-seed runs must write byte-identical trees.
TEST(PostmortemTest, OneBundlePerUniqueCrashByteIdentical) {
  if (!kTelemetryEnabled) {
    GTEST_SKIP() << "telemetry compiled out";
  }
  const fs::path base =
      fs::temp_directory_path() / "healer_postmortem_test";
  fs::remove_all(base);
  auto run = [&](const std::string& sub) {
    FuzzerOptions options;
    options.tool = ToolKind::kHealer;
    options.seed = 20260806;
    options.postmortem_dir = (base / sub).string();
    Fuzzer fuzzer(BuiltinTarget(), options);
    for (int i = 0; i < 400; ++i) {
      fuzzer.Step();
    }
    return fuzzer.crashes().UniqueBugs();
  };
  const size_t bugs_a = run("a");
  const size_t bugs_b = run("b");
  ASSERT_GT(bugs_a, 0u);
  EXPECT_EQ(bugs_a, bugs_b);

  size_t bundles = 0;
  for (const auto& entry : fs::directory_iterator(base / "a")) {
    if (!entry.is_directory()) {
      continue;
    }
    ++bundles;
    // Every bundle is self-contained, including the minimized repro.
    for (const char* name :
         {"crash.json", "program.txt", "journal.jsonl", "journal.bin",
          "metrics.prom", "rings.json", "relations.json", "repro.txt"}) {
      EXPECT_TRUE(fs::exists(entry.path() / name))
          << entry.path() << " lacks " << name;
    }
    // The binary journal decodes and matches the JSONL view.
    std::ifstream bin(entry.path() / "journal.bin", std::ios::binary);
    std::ostringstream buf;
    buf << bin.rdbuf();
    std::vector<JournalRecord> window;
    ASSERT_TRUE(JournalRecordsFromBinary(buf.str(), &window));
    std::ifstream jsonl(entry.path() / "journal.jsonl", std::ios::binary);
    std::ostringstream jbuf;
    jbuf << jsonl.rdbuf();
    EXPECT_EQ(JournalRecordsToJsonl(window), jbuf.str());
    // The newest record in the window is the triggering crash... of this
    // bundle's bug for the first trigger; at minimum the window must
    // contain a crash record.
    bool has_crash = false;
    for (const JournalRecord& record : window) {
      has_crash |= record.kind == JournalKind::kCrash;
    }
    EXPECT_TRUE(has_crash) << entry.path();
  }
  EXPECT_EQ(bundles, bugs_a);
  EXPECT_EQ(SlurpTree(base / "a"), SlurpTree(base / "b"));
  fs::remove_all(base);
}

// ---------------------------------------------------------------------------
// Introspection hub and HTTP server.

TEST(IntrospectionHubTest, JournalTailServesNewestLines) {
  IntrospectionHub hub;
  EXPECT_FALSE(hub.healthy());
  EXPECT_EQ(hub.status(), "{}");
  hub.PublishJournal("l1\nl2\nl3\n");
  EXPECT_EQ(hub.journal_tail(2), "l2\nl3\n");
  EXPECT_EQ(hub.journal_tail(10), "l1\nl2\nl3\n");
  hub.PublishJournal("only\n");  // Whole-document replace, not append.
  EXPECT_EQ(hub.journal_tail(10), "only\n");
  hub.SetHealthy(true);
  EXPECT_TRUE(hub.healthy());
}

// Minimal HTTP/1.0 client for the loopback server.
std::string HttpGet(uint16_t port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return "";
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  const std::string request = "GET " + path + " HTTP/1.0\r\n\r\n";
  (void)::send(fd, request.data(), request.size(), 0);
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

TEST(IntrospectServerTest, ServesPublishedSnapshots) {
  IntrospectionHub hub;
  hub.PublishMetrics("# TYPE healer_up gauge\nhealer_up 1\n");
  hub.PublishStatus("{\"execs\": 7}");
  hub.PublishJournal("{\"at\":1}\n{\"at\":2}\n{\"at\":3}\n");
  IntrospectServer server(&hub);
  if (!server.Start(0)) {
    GTEST_SKIP() << "cannot bind loopback socket in this environment";
  }
  ASSERT_GT(server.port(), 0);

  // Unhealthy until the campaign says otherwise.
  EXPECT_NE(HttpGet(server.port(), "/healthz").find("503"),
            std::string::npos);
  hub.SetHealthy(true);
  const std::string healthz = HttpGet(server.port(), "/healthz");
  EXPECT_NE(healthz.find("200"), std::string::npos);
  EXPECT_NE(healthz.find("ok\n"), std::string::npos);

  const std::string metrics = HttpGet(server.port(), "/metrics");
  EXPECT_NE(metrics.find("text/plain; version=0.0.4"), std::string::npos);
  EXPECT_NE(metrics.find("healer_up 1\n"), std::string::npos);

  const std::string status = HttpGet(server.port(), "/status");
  EXPECT_NE(status.find("application/json"), std::string::npos);
  EXPECT_NE(status.find("{\"execs\": 7}"), std::string::npos);

  // /journal honors ?n= and defaults to the newest 64.
  const std::string tail = HttpGet(server.port(), "/journal?n=2");
  EXPECT_EQ(tail.find("{\"at\":1}"), std::string::npos);
  EXPECT_NE(tail.find("{\"at\":2}"), std::string::npos);
  EXPECT_NE(tail.find("{\"at\":3}"), std::string::npos);
  EXPECT_NE(HttpGet(server.port(), "/journal").find("{\"at\":1}"),
            std::string::npos);

  EXPECT_NE(HttpGet(server.port(), "/nope").find("404"), std::string::npos);
  server.Stop();
  EXPECT_FALSE(server.running());
}

TEST(IntrospectServerTest, CampaignPublishesIntoHub) {
  if (!kTelemetryEnabled) {
    GTEST_SKIP() << "telemetry compiled out";
  }
  IntrospectionHub hub;
  CampaignOptions options = ShortCampaign(4);
  options.introspect = &hub;
  RunCampaign(options);
  EXPECT_TRUE(hub.healthy());
  EXPECT_NE(hub.metrics().find("healer_fuzz_execs_total"), std::string::npos);
  EXPECT_NE(hub.status().find("\"execs\""), std::string::npos);
  EXPECT_FALSE(hub.journal_tail(8).empty());
}

}  // namespace
}  // namespace healer
