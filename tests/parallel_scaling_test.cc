// Stress and reconciliation tests for the batched-publish parallel loop.
//
// The batching protocol (parallel.h) may delay feedback but must never lose
// it: every claimed exec slot, observed crash and coverage edge has to land
// in the shared state by the time the campaign ends. These tests pin that
// down with exact counter identities on an 8-worker campaign (run under
// TSan via scripts/check.sh) and with a deterministic single-worker
// campaign proving batched publishing preserves the found bug set.

#include <gtest/gtest.h>

#include <set>

#include "src/fuzz/parallel.h"
#include "src/syzlang/builtin_descs.h"

namespace healer {
namespace {

std::set<BugId> BugSet(const ParallelResult& result) {
  std::set<BugId> bugs;
  for (const CrashRecord& rec : result.crash_records) {
    bugs.insert(rec.bug);
  }
  return bugs;
}

TEST(ParallelScalingTest, EightWorkersReconcileTelemetryExactly) {
  if (!kTelemetryEnabled) {
    GTEST_SKIP() << "telemetry compiled out";
  }
  ParallelOptions options;
  options.num_workers = 8;
  options.total_execs = 1200;
  options.batch_size = 16;
  options.seed = 77;
  const ParallelResult result = RunParallelFuzz(BuiltinTarget(), options);
  const MetricsSnapshot& t = result.telemetry;

  // The ticket dispenser hands out exactly total_execs slots, and every
  // per-worker batch reaches the shared total: fuzz_execs == sum of batches.
  EXPECT_EQ(result.fuzz_execs, options.total_execs);
  EXPECT_EQ(t.counter("healer_fuzz_execs_total"), options.total_execs);
  EXPECT_EQ(t.counter("healer_parallel_batched_execs_total"),
            t.counter("healer_fuzz_execs_total"));
  EXPECT_GT(t.counter("healer_parallel_batch_publish_total"), 0u);
  EXPECT_GT(t.counter("healer_parallel_snapshot_refresh_total"), 0u);

  // Atomic coverage merging credits each fresh edge exactly once
  // fleet-wide, so the counter equals the final bitmap population.
  EXPECT_EQ(t.counter("healer_coverage_edges_total"), result.coverage);
  EXPECT_GT(result.coverage, 100u);

  // No crash is lost to batching: every new bug a worker observed is in the
  // shared CrashDb, and every observed crash was recorded.
  EXPECT_EQ(t.counter("healer_crash_new_total"), result.unique_bugs);
  EXPECT_EQ(BugSet(result).size(), result.unique_bugs);
  uint64_t hits = 0;
  for (const CrashRecord& rec : result.crash_records) {
    hits += rec.hits;
  }
  EXPECT_EQ(hits, t.counter("healer_crash_reports_total"));

  EXPECT_EQ(result.corpus_progs.size(), result.corpus_size);
  EXPECT_GE(t.counter("healer_corpus_adds_total"), result.corpus_size);

  // Relation-edge reconciliation: RelationTable::Apply credits each learned
  // edge to exactly one worker's published delta, so the summed
  // relations_learned counter equals the dynamic edge count — no edge is
  // double-credited across batches, and none is lost.
  EXPECT_EQ(t.counter("healer_relations_learned_total"),
            result.relations_dynamic);
  EXPECT_EQ(result.relations,
            result.relations_static + result.relations_dynamic);
  EXPECT_GT(result.relations_dynamic, 0u);

  // Lock instrumentation: one held-interval observation per publish, and
  // the campaign-level contention gauges are populated and sane.
  const HistogramSnapshot& held =
      t.histograms.at("healer_parallel_lock_held_ns");
  EXPECT_EQ(held.count, t.counter("healer_parallel_batch_publish_total"));
  EXPECT_GT(t.gauge("healer_parallel_wall_ns"), 0.0);
  const double share = t.gauge("healer_parallel_lock_held_share");
  EXPECT_GE(share, 0.0);
  EXPECT_LT(share, 0.5);  // Far below the old hold-everything design (~1.0).
}

TEST(ParallelScalingTest, EightWorkersReconcileRelationEdgesExactly) {
  // Dedicated relation-delta stress: 8 workers race overlapping deltas
  // through Apply with a small batch size (run under TSan via
  // scripts/check.sh tsan). Invariants:
  //   * static edges are exactly the static-learn set (published once,
  //     before the workers start);
  //   * sum of per-worker published-delta credits == dynamic edge count ==
  //     Count() - statics (exactly-once, nothing double-credited, nothing
  //     lost: Apply never re-admits a pair that is already in the table).
  if (!kTelemetryEnabled) {
    GTEST_SKIP() << "telemetry compiled out";
  }
  const Target& target = BuiltinTarget();
  RelationTable statics_only(target.NumSyscalls());
  const size_t statics = StaticRelationLearn(target, &statics_only);

  ParallelOptions options;
  options.num_workers = 8;
  options.total_execs = 1600;
  options.batch_size = 8;
  options.seed = 13;
  const ParallelResult result = RunParallelFuzz(target, options);

  EXPECT_EQ(result.relations_static, statics);
  EXPECT_EQ(result.relations, result.relations_static +
                                  result.relations_dynamic);
  EXPECT_EQ(result.telemetry.counter("healer_relations_learned_total"),
            result.relations_dynamic);
  EXPECT_GT(result.relations_dynamic, 0u);
}

TEST(ParallelScalingTest, SingleWorkerParallelIsDeterministic) {
  // With one worker the batched-publish protocol has a deterministic
  // schedule (one RNG stream, sequential tickets), so two identical runs
  // must reach the identical crash/bug set, coverage and corpus — any
  // drift would mean the snapshot/batch machinery leaks nondeterminism
  // beyond thread scheduling.
  ParallelOptions options;
  options.num_workers = 1;
  options.total_execs = 1500;
  options.seed = 99;
  options.batch_size = 64;
  const ParallelResult a = RunParallelFuzz(BuiltinTarget(), options);
  const ParallelResult b = RunParallelFuzz(BuiltinTarget(), options);
  EXPECT_FALSE(BugSet(a).empty());
  EXPECT_EQ(BugSet(a), BugSet(b));
  EXPECT_EQ(a.coverage, b.coverage);
  EXPECT_EQ(a.corpus_size, b.corpus_size);
  EXPECT_EQ(a.fuzz_execs, b.fuzz_execs);
  EXPECT_EQ(a.relations, b.relations);
}

TEST(ParallelScalingTest, BatchSizeOneStillCountsEverything) {
  // Publishing after every exec (the degenerate batch) must satisfy the
  // same exact reconciliation as large batches.
  if (!kTelemetryEnabled) {
    GTEST_SKIP() << "telemetry compiled out";
  }
  ParallelOptions options;
  options.num_workers = 8;
  options.total_execs = 400;
  options.batch_size = 1;
  options.seed = 31;
  const ParallelResult result = RunParallelFuzz(BuiltinTarget(), options);
  const MetricsSnapshot& t = result.telemetry;
  EXPECT_EQ(result.fuzz_execs, options.total_execs);
  EXPECT_EQ(t.counter("healer_parallel_batched_execs_total"),
            t.counter("healer_fuzz_execs_total"));
  EXPECT_EQ(t.counter("healer_coverage_edges_total"), result.coverage);
  EXPECT_EQ(t.counter("healer_crash_new_total"), result.unique_bugs);
}

}  // namespace
}  // namespace healer
