// Property tests: argument trees produced by ArgGenerator (and preserved by
// ArgMutator) must structurally conform to their types — the invariant the
// executor, serializer and kernel handlers all rely on.

#include <gtest/gtest.h>

#include <functional>

#include "src/fuzz/arg_gen.h"
#include "src/fuzz/prog_builder.h"
#include "src/fuzz/relation_table.h"
#include "src/syzlang/builtin_descs.h"

namespace healer {
namespace {

// Checks one arg tree against its type; returns a failure description or
// empty on success.
std::string CheckConformance(const Arg& arg) {
  if (arg.type == nullptr) {
    return "arg without type";
  }
  switch (arg.type->kind) {
    case TypeKind::kInt: {
      if (arg.kind != ArgKind::kConstant) {
        return "int arg not constant";
      }
      const bool has_range =
          arg.type->range_min != 0 || arg.type->range_max != 0;
      if (has_range &&
          (arg.val < arg.type->range_min || arg.val > arg.type->range_max)) {
        return "ranged int out of bounds";
      }
      return "";
    }
    case TypeKind::kConst:
      if (arg.kind != ArgKind::kConstant || arg.val != arg.type->const_val) {
        return "const arg does not carry the fixed value";
      }
      return "";
    case TypeKind::kFlags:
      return arg.kind == ArgKind::kConstant ? "" : "flags arg not constant";
    case TypeKind::kLen:
      return arg.kind == ArgKind::kConstant ? "" : "len arg not constant";
    case TypeKind::kResource:
      if (arg.kind != ArgKind::kResource) {
        return "resource arg with wrong kind";
      }
      return "";
    case TypeKind::kPtr: {
      if (arg.kind != ArgKind::kPointer) {
        return "ptr arg with wrong kind";
      }
      if (arg.pointee == nullptr) {
        return "";  // Null pointer is legal.
      }
      if (arg.pointee->type != arg.type->elem) {
        return "pointee type mismatch";
      }
      return CheckConformance(*arg.pointee);
    }
    case TypeKind::kBuffer:
      if (arg.kind != ArgKind::kData) {
        return "buffer arg not data";
      }
      if (arg.data.size() < arg.type->buf_min ||
          arg.data.size() > arg.type->buf_max) {
        return "buffer size out of bounds";
      }
      return "";
    case TypeKind::kString:
    case TypeKind::kFilename: {
      if (arg.kind != ArgKind::kData) {
        return "string arg not data";
      }
      if (arg.data.empty() || arg.data.back() != 0) {
        return "string not NUL-terminated";
      }
      if (!arg.type->str_values.empty()) {
        const std::string text(arg.data.begin(), arg.data.end() - 1);
        bool found = false;
        for (const auto& candidate : arg.type->str_values) {
          found |= candidate == text;
        }
        if (!found) {
          return "string not from the candidate set";
        }
      }
      return "";
    }
    case TypeKind::kVma:
      if (arg.kind != ArgKind::kVma || arg.vma_pages == 0) {
        return "vma arg malformed";
      }
      if (arg.val % 4096 != 0) {
        return "vma address not page aligned";
      }
      return "";
    case TypeKind::kArray: {
      if (arg.kind != ArgKind::kGroup) {
        return "array arg not group";
      }
      if (arg.inner.size() < arg.type->array_min ||
          arg.inner.size() > arg.type->array_max) {
        return "array count out of bounds";
      }
      for (const auto& child : arg.inner) {
        if (child->type != arg.type->array_elem) {
          return "array element type mismatch";
        }
        const std::string err = CheckConformance(*child);
        if (!err.empty()) {
          return err;
        }
      }
      return "";
    }
    case TypeKind::kStruct: {
      if (arg.kind != ArgKind::kGroup ||
          arg.inner.size() != arg.type->fields.size()) {
        return "struct arity mismatch";
      }
      for (size_t i = 0; i < arg.inner.size(); ++i) {
        if (arg.inner[i]->type != arg.type->fields[i].type) {
          return "struct field type mismatch";
        }
        const std::string err = CheckConformance(*arg.inner[i]);
        if (!err.empty()) {
          return err;
        }
      }
      return "";
    }
    case TypeKind::kUnion: {
      if (arg.kind != ArgKind::kUnion || arg.inner.size() != 1) {
        return "union arity mismatch";
      }
      if (arg.union_index < 0 ||
          static_cast<size_t>(arg.union_index) >= arg.type->fields.size()) {
        return "union index out of range";
      }
      return CheckConformance(*arg.inner[0]);
    }
  }
  return "unknown kind";
}

std::vector<int> AllIds(const Target& target) {
  std::vector<int> ids;
  for (const auto& call : target.syscalls()) {
    ids.push_back(call->id);
  }
  return ids;
}

class GenConformanceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GenConformanceTest, EverySyscallsArgsConform) {
  const Target& target = BuiltinTarget();
  Rng rng(GetParam());
  ArgGenerator gen(&rng);
  ResourcePool pool;
  for (const auto& call : target.syscalls()) {
    for (const Field& field : call->args) {
      ArgPtr arg = gen.Gen(field.type, pool);
      const std::string err = CheckConformance(*arg);
      EXPECT_EQ(err, "") << call->name << " arg " << field.name;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GenConformanceTest,
                         ::testing::Range<uint64_t>(0, 20));

class MutateConformanceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MutateConformanceTest, MutationPreservesStructure) {
  const Target& target = BuiltinTarget();
  Rng rng(GetParam() + 777);
  ProgBuilder builder(target, AllIds(target), &rng);
  Prog prog = builder.Generate(
      [&](const std::vector<int>&) {
        return static_cast<int>(rng.Below(target.NumSyscalls()));
      },
      8);
  for (int round = 0; round < 30; ++round) {
    builder.MutateArgs(&prog);
    for (const Call& call : prog.calls()) {
      for (const auto& arg : call.args) {
        // Mutation may move scalars outside generation ranges (that is the
        // point of negative testing), so only check structural shape here:
        // kinds, arities, type links.
        std::function<std::string(const Arg&)> shape =
            [&](const Arg& a) -> std::string {
          if (a.type == nullptr) {
            return "untyped";
          }
          if (a.pointee != nullptr && a.pointee->type != a.type->elem) {
            return "pointee mismatch";
          }
          if (a.type->kind == TypeKind::kStruct &&
              a.inner.size() != a.type->fields.size()) {
            return "struct arity";
          }
          if (a.type->kind == TypeKind::kArray &&
              a.inner.size() > a.type->array_max) {
            return "array overflow";
          }
          if (a.pointee != nullptr) {
            return shape(*a.pointee);
          }
          for (const auto& child : a.inner) {
            const std::string err = shape(*child);
            if (!err.empty()) {
              return err;
            }
          }
          return "";
        };
        EXPECT_EQ(shape(*arg), "") << call.meta->name;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MutateConformanceTest,
                         ::testing::Range<uint64_t>(0, 10));

// ---- relation persistence ----

TEST(RelationPersistenceTest, SaveLoadRoundTrip) {
  const Target& target = BuiltinTarget();
  RelationTable table(target.NumSyscalls());
  StaticRelationLearn(target, &table);
  const size_t before = table.Count();
  const std::string path = "/tmp/healer_relations_test.txt";
  ASSERT_TRUE(table.SaveToFile(path, target).ok());

  RelationTable loaded(target.NumSyscalls());
  auto count = loaded.LoadFromFile(path, target);
  ASSERT_TRUE(count.ok()) << count.status().ToString();
  EXPECT_EQ(*count, before);
  EXPECT_EQ(loaded.Count(), before);
  // Spot-check an edge survived.
  const int memfd = target.FindSyscall("memfd_create")->id;
  const int seals = target.FindSyscall("fcntl$ADD_SEALS")->id;
  EXPECT_TRUE(loaded.Get(memfd, seals));
  std::remove(path.c_str());
}

TEST(RelationPersistenceTest, MissingFileIsNotFound) {
  RelationTable table(4);
  EXPECT_EQ(
      table.LoadFromFile("/tmp/no_such_relations", BuiltinTarget()).status()
          .code(),
      StatusCode::kNotFound);
}

}  // namespace
}  // namespace healer
