#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "src/base/bitmap.h"
#include "src/base/hash.h"
#include "src/base/rng.h"
#include "src/base/sim_clock.h"
#include "src/base/status.h"
#include "src/base/string_util.h"

namespace healer {
namespace {

// ---- Status / Result ----

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status status = InvalidArgument("bad thing");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(status.message(), "bad thing");
  EXPECT_EQ(status.ToString(), "INVALID_ARGUMENT: bad thing");
}

TEST(StatusTest, AllCodeNamesDistinct) {
  std::set<std::string> names;
  for (int c = 0; c <= static_cast<int>(StatusCode::kParseError); ++c) {
    names.insert(StatusCodeName(static_cast<StatusCode>(c)));
  }
  EXPECT_EQ(names.size(), 10u);
}

TEST(ResultTest, HoldsValue) {
  Result<int> result = 42;
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> result = NotFound("nope");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MovesValueOut) {
  Result<std::string> result = std::string("payload");
  std::string taken = std::move(result).value();
  EXPECT_EQ(taken, "payload");
}

// ---- Rng ----

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    same += a.Next() == b.Next() ? 1 : 0;
  }
  EXPECT_LT(same, 4);
}

TEST(RngTest, BelowRespectsBound) {
  Rng rng(7);
  for (uint64_t bound : {1ull, 2ull, 7ull, 1000ull}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.Below(bound), bound);
    }
  }
}

TEST(RngTest, InRangeInclusive) {
  Rng rng(9);
  bool hit_lo = false;
  bool hit_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const uint64_t v = rng.InRange(3, 5);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 5u);
    hit_lo |= v == 3;
    hit_hi |= v == 5;
  }
  EXPECT_TRUE(hit_lo);
  EXPECT_TRUE(hit_hi);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(11);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliRoughlyCalibrated) {
  Rng rng(13);
  int hits = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    hits += rng.Bernoulli(0.25) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(hits) / trials, 0.25, 0.03);
}

TEST(RngTest, WeightedPickFollowsWeights) {
  Rng rng(17);
  std::vector<uint64_t> weights = {1, 0, 9};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 10000; ++i) {
    ++counts[rng.WeightedPick(weights)];
  }
  EXPECT_EQ(counts[1], 0);
  EXPECT_GT(counts[2], counts[0] * 5);
}

TEST(RngTest, PickOneCoversAll) {
  Rng rng(19);
  std::vector<int> items = {1, 2, 3};
  std::set<int> seen;
  for (int i = 0; i < 200; ++i) {
    seen.insert(rng.PickOne(items));
  }
  EXPECT_EQ(seen.size(), 3u);
}

// ---- Bitmap ----

TEST(BitmapTest, SetAndTest) {
  Bitmap bitmap(128);
  EXPECT_FALSE(bitmap.Test(5));
  EXPECT_TRUE(bitmap.Set(5));
  EXPECT_TRUE(bitmap.Test(5));
  EXPECT_FALSE(bitmap.Set(5));  // Already set.
  EXPECT_EQ(bitmap.Count(), 1u);
}

TEST(BitmapTest, CountTracksSets) {
  Bitmap bitmap(1024);
  for (size_t i = 0; i < 1024; i += 3) {
    bitmap.Set(i);
  }
  EXPECT_EQ(bitmap.Count(), (1024 + 2) / 3);
}

TEST(BitmapTest, MergeNewCountsFreshBitsOnly) {
  Bitmap a(256);
  Bitmap b(256);
  a.Set(1);
  a.Set(2);
  b.Set(2);
  b.Set(3);
  b.Set(200);
  EXPECT_EQ(a.MergeNew(b), 2u);  // 3 and 200.
  EXPECT_EQ(a.Count(), 4u);
  EXPECT_EQ(a.MergeNew(b), 0u);  // Idempotent.
}

TEST(BitmapTest, HasNewBits) {
  Bitmap a(64);
  Bitmap b(64);
  b.Set(10);
  EXPECT_TRUE(a.HasNewBits(b));
  a.MergeNew(b);
  EXPECT_FALSE(a.HasNewBits(b));
}

TEST(BitmapTest, ClearResets) {
  Bitmap bitmap(64);
  bitmap.Set(3);
  bitmap.Clear();
  EXPECT_EQ(bitmap.Count(), 0u);
  EXPECT_FALSE(bitmap.Test(3));
}

TEST(BitmapTest, MergeNewSizeMismatchAborts) {
  // Mixing coverage spaces of different sizes used to silently truncate the
  // merge; it is now fatal regardless of NDEBUG.
  Bitmap a(128);
  Bitmap b(256);
  EXPECT_DEATH(a.MergeNew(b), "bitmap size mismatch");
  EXPECT_DEATH(b.MergeNew(a), "bitmap size mismatch");
}

TEST(BitmapTest, HasNewBitsSizeMismatchAborts) {
  Bitmap a(64);
  Bitmap b(128);
  EXPECT_DEATH(a.HasNewBits(b), "bitmap size mismatch");
}

TEST(BitmapTest, ConcurrentSetsCountEachBitOnce) {
  // Set/MergeNew are atomic-word operations: hammer one bitmap from
  // several threads with overlapping bit ranges and check that the winner
  // accounting is exact — total "fresh" credits == final popcount.
  constexpr size_t kBits = 4096;
  constexpr int kThreads = 4;
  Bitmap bitmap(kBits);
  std::atomic<size_t> fresh_total{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&bitmap, &fresh_total, t] {
      size_t fresh = 0;
      // Each thread covers 3/4 of the map, offset per thread, so every bit
      // is contended by at least two threads.
      for (size_t i = 0; i < kBits * 3 / 4; ++i) {
        fresh += bitmap.Set((i + t * (kBits / 4)) % kBits) ? 1 : 0;
      }
      fresh_total.fetch_add(fresh);
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(bitmap.Count(), kBits);
  EXPECT_EQ(fresh_total.load(), kBits);
}

TEST(BitmapTest, ConcurrentMergeNewCreditsExactly) {
  constexpr size_t kBits = 2048;
  constexpr int kThreads = 4;
  Bitmap global(kBits);
  // Overlapping per-thread locals: threads race to merge shared bits.
  std::vector<Bitmap> locals;
  for (int t = 0; t < kThreads; ++t) {
    locals.emplace_back(kBits);
    for (size_t i = 0; i < kBits; i += (t + 1)) {
      locals.back().Set(i);
    }
  }
  std::atomic<size_t> fresh_total{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&global, &locals, &fresh_total, t] {
      fresh_total.fetch_add(global.MergeNew(locals[t]));
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(fresh_total.load(), global.Count());
  EXPECT_EQ(global.Count(), kBits);  // Stride-1 local covers everything.
}

TEST(BitmapTest, SummaryTracksOccupiedWords) {
  Bitmap bitmap(64 * 128);  // 128 payload words -> 2 summary words.
  ASSERT_EQ(bitmap.SummaryWords(), 2u);
  EXPECT_EQ(bitmap.SummaryWord(0), 0u);
  EXPECT_EQ(bitmap.SummaryWord(1), 0u);
  bitmap.Set(0);            // Payload word 0.
  bitmap.Set(5 * 64 + 7);   // Payload word 5.
  bitmap.Set(70 * 64 + 1);  // Payload word 70 -> summary word 1, bit 6.
  EXPECT_EQ(bitmap.SummaryWord(0), (1ULL << 0) | (1ULL << 5));
  EXPECT_EQ(bitmap.SummaryWord(1), 1ULL << 6);
}

TEST(BitmapTest, MergeNewMarksSummaryInDestination) {
  Bitmap a(256);
  Bitmap b(256);
  b.Set(130);  // Payload word 2.
  EXPECT_EQ(a.MergeNew(b), 1u);
  EXPECT_EQ(a.SummaryWord(0), 1ULL << 2);
}

TEST(BitmapTest, ClearResetsSummary) {
  Bitmap bitmap(64 * 100);
  for (size_t i = 0; i < bitmap.size_bits(); i += 64) {
    bitmap.Set(i);
  }
  bitmap.Clear();
  for (size_t s = 0; s < bitmap.SummaryWords(); ++s) {
    EXPECT_EQ(bitmap.SummaryWord(s), 0u) << "summary word " << s;
  }
  // A stale summary bit after Clear would make MergeNew/HasNewBits skip or
  // revisit words incorrectly; the map must keep working after the reset.
  Bitmap other(64 * 100);
  other.Set(99);
  EXPECT_TRUE(bitmap.HasNewBits(other));
  EXPECT_EQ(bitmap.MergeNew(other), 1u);
  EXPECT_TRUE(bitmap.Test(99));
}

TEST(BitmapTest, RandomizedMergeMatchesSetReference) {
  // Property: the summary-guided MergeNew credits exactly the set-difference
  // cardinality, is idempotent, and leaves Count() at the union size.
  Rng rng(12345);
  for (int round = 0; round < 25; ++round) {
    const size_t bits = 64 * (1 + rng.Below(300));
    Bitmap acc(bits);
    Bitmap inc(bits);
    std::set<size_t> acc_ref;
    std::set<size_t> inc_ref;
    const size_t n = rng.Below(200);
    for (size_t i = 0; i < n; ++i) {
      const size_t a = rng.Below(bits);
      acc.Set(a);
      acc_ref.insert(a);
      const size_t b = rng.Below(bits);
      inc.Set(b);
      inc_ref.insert(b);
    }
    size_t expected_fresh = 0;
    for (size_t b : inc_ref) {
      expected_fresh += acc_ref.count(b) ? 0 : 1;
    }
    EXPECT_EQ(acc.HasNewBits(inc), expected_fresh != 0);
    EXPECT_EQ(acc.MergeNew(inc), expected_fresh);
    EXPECT_EQ(acc.MergeNew(inc), 0u);
    std::set<size_t> union_ref = acc_ref;
    union_ref.insert(inc_ref.begin(), inc_ref.end());
    EXPECT_EQ(acc.Count(), union_ref.size());
    for (size_t b : union_ref) {
      EXPECT_TRUE(acc.Test(b));
    }
  }
}

TEST(BitmapTest, HasNewBitsDenseBlockPath) {
  // 64 consecutive fully-set payload words make a summary word ~0, which
  // routes HasNewBits through the branch-free OR-reduction path.
  const size_t bits = 64 * 64 * 2;
  Bitmap dense(bits);
  for (size_t i = 0; i < 64 * 64; ++i) {
    dense.Set(i);
  }
  ASSERT_EQ(dense.SummaryWord(0), ~0ULL);
  Bitmap self(bits);
  EXPECT_TRUE(self.HasNewBits(dense));
  self.MergeNew(dense);
  EXPECT_FALSE(self.HasNewBits(dense));
  // A single missing bit deep inside the dense block is still detected.
  Bitmap almost(bits);
  for (size_t i = 0; i < 64 * 64; ++i) {
    if (i != 2048) {
      almost.Set(i);
    }
  }
  EXPECT_TRUE(almost.HasNewBits(dense));
  EXPECT_EQ(almost.MergeNew(dense), 1u);
  EXPECT_FALSE(almost.HasNewBits(dense));
}

// ---- Hash ----

TEST(HashTest, Fnv1aStable) {
  EXPECT_EQ(Fnv1a("hello"), Fnv1a("hello"));
  EXPECT_NE(Fnv1a("hello"), Fnv1a("hellp"));
  EXPECT_NE(Fnv1a("seeded", 1), Fnv1a("seeded", 2));
}

TEST(HashTest, Mix64Bijective) {
  // Distinct inputs stay distinct (spot check).
  std::set<uint64_t> outputs;
  for (uint64_t i = 0; i < 1000; ++i) {
    outputs.insert(Mix64(i));
  }
  EXPECT_EQ(outputs.size(), 1000u);
}

// ---- SimClock ----

TEST(SimClockTest, AdvanceAccumulates) {
  SimClock clock;
  clock.Advance(SimClock::kHour);
  clock.Advance(30 * SimClock::kMinute);
  EXPECT_DOUBLE_EQ(clock.hours(), 1.5);
  EXPECT_DOUBLE_EQ(clock.seconds(), 5400.0);
}

TEST(SimClockTest, ResetZeroes) {
  SimClock clock;
  clock.Advance(SimClock::kSecond);
  clock.Reset();
  EXPECT_EQ(clock.now(), 0u);
}

// ---- string_util ----

TEST(StringUtilTest, StrSplitKeepsEmptyPieces) {
  const auto parts = StrSplit("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
}

TEST(StringUtilTest, StrStrip) {
  EXPECT_EQ(StrStrip("  x \t\n"), "x");
  EXPECT_EQ(StrStrip(""), "");
  EXPECT_EQ(StrStrip(" \t "), "");
}

TEST(StringUtilTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("openat$kvm", "openat"));
  EXPECT_FALSE(StartsWith("open", "openat"));
  EXPECT_TRUE(EndsWith("ioctl$KVM_RUN", "RUN"));
  EXPECT_FALSE(EndsWith("RUN", "KVM_RUN"));
}

TEST(StringUtilTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrFormat("%s", ""), "");
}

TEST(StringUtilTest, StrJoin) {
  EXPECT_EQ(StrJoin({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(StrJoin({}, ","), "");
}

}  // namespace
}  // namespace healer
