// Reactor-fleet tests (DESIGN.md §12): EventLoop dispatch/determinism
// contracts, VM lifecycle state machines at storm scale (hundreds of guests
// booting or crash-looping on one worker thread), health-counter
// reconciliation, and byte-identical journals for a fixed seed.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "src/base/event_loop.h"
#include "src/base/journal.h"
#include "src/base/rng.h"
#include "src/fuzz/fuzzer.h"
#include "src/fuzz/parallel.h"
#include "src/fuzz/templates.h"
#include "src/syzlang/builtin_descs.h"
#include "src/vm/vm_pool.h"

namespace healer {
namespace {

std::vector<int> AllIds(const Target& target) {
  std::vector<int> ids;
  for (const auto& call : target.syscalls()) {
    ids.push_back(call->id);
  }
  return ids;
}

Prog Chain(const std::vector<std::string>& names, uint64_t seed = 1) {
  const Target& target = BuiltinTarget();
  Rng rng(seed);
  return BuildChain(target, AllIds(target), names, &rng);
}

// The shallow mmap-zero-len bug: mmap(addr, 0, ..., MAP_FIXED) crashes the
// simulated kernel (same trigger as GuestVmTest.CrashCausesRebootLatency).
Prog CrashingProg() {
  const Target& target = BuiltinTarget();
  Prog prog(&target);
  Call call;
  call.meta = target.FindSyscall("mmap");
  call.args.push_back(MakeVma(call.meta->args[0].type,
                              GuestMem::kVmaBase + 4096, 1));
  call.args.push_back(MakeConstant(call.meta->args[1].type, 0));
  call.args.push_back(MakeConstant(call.meta->args[2].type, 3));
  call.args.push_back(MakeConstant(call.meta->args[3].type, 0x10));
  call.args.push_back(MakeResourceSpecial(call.meta->args[4].type,
                                          static_cast<uint64_t>(-1)));
  call.args.push_back(MakeConstant(call.meta->args[5].type, 0));
  prog.calls().push_back(std::move(call));
  return prog;
}

KernelConfig Config() {
  return KernelConfig::ForVersion(KernelVersion::kV5_11);
}

// ---- EventLoop ----

TEST(EventLoopTest, TimersFireInDeadlineThenArmOrder) {
  EventLoop loop;
  std::vector<int> order;
  // Armed out of deadline order; 20ms carries two timers whose tiebreak is
  // arm order.
  loop.ScheduleAt(20 * SimClock::kMillisecond, [&] { order.push_back(2); });
  loop.ScheduleAt(5 * SimClock::kMillisecond, [&] { order.push_back(1); });
  loop.ScheduleAt(20 * SimClock::kMillisecond, [&] { order.push_back(3); });
  loop.ScheduleAt(40 * SimClock::kMillisecond, [&] { order.push_back(4); });
  EXPECT_EQ(loop.NextDeadline(), 5 * SimClock::kMillisecond);
  EXPECT_EQ(loop.RunUntil(SimClock::kSecond), 4u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
  EXPECT_EQ(loop.now(), SimClock::kSecond);
  EXPECT_EQ(loop.pending_timers(), 0u);
}

TEST(EventLoopTest, DeadlinesCascadeAcrossWheelLevels) {
  EventLoop loop;
  // 64 level-0 ticks per level: 50ms lives in level 0, 90s in level 2 and
  // 2 simulated hours in level 3+. All must fire at their exact deadline.
  std::vector<SimClock::Nanos> fired;
  const std::vector<SimClock::Nanos> deadlines = {
      50 * SimClock::kMillisecond, 90 * SimClock::kSecond,
      2 * SimClock::kHour};
  for (SimClock::Nanos d : deadlines) {
    loop.ScheduleAt(d, [&fired, &loop] { fired.push_back(loop.now()); });
  }
  EXPECT_EQ(loop.NextDeadline(), deadlines[0]);
  loop.RunUntilIdle();
  EXPECT_EQ(fired, deadlines);
  EXPECT_EQ(loop.NextDeadline(), EventLoop::kNoDeadline);
}

TEST(EventLoopTest, CancelDisarms) {
  EventLoop loop;
  bool fired = false;
  const EventLoop::TimerId id =
      loop.ScheduleAfter(SimClock::kMillisecond, [&] { fired = true; });
  EXPECT_TRUE(loop.Cancel(id));
  EXPECT_FALSE(loop.Cancel(id));  // Already cancelled.
  loop.RunUntil(SimClock::kSecond);
  EXPECT_FALSE(fired);
  EXPECT_EQ(loop.pending_timers(), 0u);
}

TEST(EventLoopTest, PostsRunFifoAndSignalsCoalesce) {
  EventLoop loop;
  std::vector<int> order;
  int handler_runs = 0;
  const size_t source = loop.AddCompletionSource([&] { ++handler_runs; });
  loop.Post([&] { order.push_back(1); });
  loop.Post([&] { order.push_back(2); });
  // Three rings before the pump coalesce into one invocation (eventfd
  // semantics).
  loop.SignalCompletion(source);
  loop.SignalCompletion(source);
  loop.SignalCompletion(source);
  loop.PumpReady();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(handler_runs, 1);
  loop.PumpReady();  // No pending signal: handler must not rerun.
  EXPECT_EQ(handler_runs, 1);
}

TEST(EventLoopTest, SameScheduleSameDispatchOrder) {
  // The determinism contract the fleet journals lean on: identical
  // schedules dispatch identically, including past-deadline and same-tick
  // collisions.
  auto run = [] {
    EventLoop loop;
    std::string order;
    Rng rng(1234);
    for (int i = 0; i < 200; ++i) {
      const SimClock::Nanos deadline =
          (rng.Next() % 500) * SimClock::kMillisecond;
      loop.ScheduleAt(deadline, [&order, i] {
        order += std::to_string(i);
        order += ",";
      });
    }
    loop.RunUntil(SimClock::kSecond);
    return order;
  };
  EXPECT_EQ(run(), run());
}

// In the TSan pass: workers ring doorbells and arm timers against a shard
// they do not pump.
TEST(EventLoopThreadsTest, CrossThreadSignalsAndTimers) {
  EventLoop loop;
  std::atomic<int> handled{0};
  const size_t source =
      loop.AddCompletionSource([&] { handled.fetch_add(1); });
  std::atomic<int> timers_fired{0};
  std::atomic<bool> stop{false};
  std::thread pumper([&] {
    SimClock::Nanos horizon = 0;
    while (!stop.load()) {
      horizon += SimClock::kMillisecond;
      loop.RunUntil(horizon);
    }
    loop.RunUntilIdle();
  });
  std::vector<std::thread> producers;
  for (int t = 0; t < 4; ++t) {
    producers.emplace_back([&, t] {
      for (int i = 0; i < 64; ++i) {
        loop.SignalCompletion(source);
        loop.ScheduleAfter((t + 1) * SimClock::kMillisecond,
                           [&] { timers_fired.fetch_add(1); });
      }
    });
  }
  for (auto& p : producers) {
    p.join();
  }
  stop.store(true);
  pumper.join();
  EXPECT_EQ(timers_fired.load(), 4 * 64);
  EXPECT_GE(handled.load(), 1);
}

// ---- Next() health skip (legacy topology) ----

TEST(VmPoolTest, NextSkipsDownGuests) {
  SimClock clock;
  VmPool pool(BuiltinTarget(), Config(), &clock, 3);
  Prog crash = CrashingProg();
  Prog benign = Chain({"sync"});
  // Boot everyone, then take VM 1 down.
  for (size_t i = 0; i < pool.size(); ++i) {
    pool.vm(i).Exec(benign, nullptr);
  }
  pool.vm(1).Exec(crash, nullptr);
  ASSERT_TRUE(pool.vm(1).down());
  // Fresh work must route around the dead guest: 0, 2, 0, 2, ...
  EXPECT_EQ(&pool.Next(), &pool.vm(0));
  EXPECT_EQ(&pool.Next(), &pool.vm(2));
  EXPECT_EQ(&pool.Next(), &pool.vm(0));
  // Once it reboots (inline, at the top of its next Exec) it rejoins the
  // rotation.
  pool.vm(1).Exec(benign, nullptr);
  ASSERT_FALSE(pool.vm(1).down());
  EXPECT_EQ(&pool.Next(), &pool.vm(1));
}

TEST(VmPoolTest, NextFallsBackWhenEveryGuestIsDown) {
  SimClock clock;
  VmPool pool(BuiltinTarget(), Config(), &clock, 2);
  Prog crash = CrashingProg();
  pool.vm(0).Exec(crash, nullptr);
  pool.vm(1).Exec(crash, nullptr);
  ASSERT_TRUE(pool.vm(0).down());
  ASSERT_TRUE(pool.vm(1).down());
  // Progress guarantee: the round-robin pick still comes back (the caller's
  // recovery path reboots it inline).
  GuestVm& picked = pool.Next();
  EXPECT_TRUE(&picked == &pool.vm(0) || &picked == &pool.vm(1));
}

// ---- fleet storms ----

TEST(FleetPoolTest, BootStormCostsOneBootLatency) {
  SimClock clock;
  FleetOptions fleet;
  fleet.lanes = 4;
  fleet.shards = 2;
  VmPool pool(BuiltinTarget(), Config(), &clock, 512, VmLatencyModel(),
              FaultPlan(), 1, nullptr, fleet);
  ASSERT_TRUE(pool.fleet());
  ASSERT_EQ(pool.num_shards(), 2u);
  // Everything is armed but nothing has fired: the whole fleet is cold or
  // booting, and no simulated time has passed.
  EXPECT_EQ(clock.now(), 0u);

  GuestVm* vm = pool.AcquireReady(0);
  ASSERT_NE(vm, nullptr);
  EXPECT_EQ(vm->state(), VmState::kReady);
  // The acquire advanced the shared clock to the boot deadline — once, not
  // once per guest: 512 overlapping boots cost one boot latency.
  const VmLatencyModel model;
  EXPECT_EQ(clock.now(), model.boot);
  pool.PumpShard(1);  // Bring the other shard up to the same horizon.

  size_t ready = 0, total = 0;
  for (const FleetShardSummary& s : pool.ShardSummaries()) {
    ready += s.ready;
    total += s.vms;
    EXPECT_EQ(s.timers_pending, 0u);
  }
  EXPECT_EQ(total, 512u);
  EXPECT_EQ(ready, 512u);
  EXPECT_EQ(pool.shard(0).now(), model.boot);
}

TEST(FleetPoolTest, CrashStormRebootsExactlyOnce) {
  SimClock clock;
  FleetOptions fleet;
  fleet.lanes = 2;
  fleet.shards = 2;
  FaultPlan plan;
  plan.set_rate(FaultKind::kBootFailure, 1.0);
  VmPool pool(BuiltinTarget(), Config(), &clock, 256, VmLatencyModel(), plan,
              7, nullptr, fleet);
  // Every async boot fails, parking all 256 guests; the shard doorbell arms
  // one reboot each, and the reboots overlap too.
  GuestVm* a = pool.AcquireReady(0);
  GuestVm* b = pool.AcquireReady(1);
  ASSERT_EQ(a->state(), VmState::kReady);
  ASSERT_EQ(b->state(), VmState::kReady);
  const VmLatencyModel model;
  // Virtual cost of the whole storm: one boot + one reboot, max not sum.
  EXPECT_EQ(clock.now(), model.boot + model.reboot);

  // Exactly-once charges: each guest drew exactly one boot failure and was
  // rebooted exactly once, even with both shards pumped repeatedly.
  pool.PumpShard(0);
  pool.PumpShard(1);
  Monitor monitor(&pool);
  const std::vector<VmHealth> health = monitor.HealthReport();
  ASSERT_EQ(health.size(), 256u);
  for (size_t i = 0; i < pool.size(); ++i) {
    EXPECT_EQ(pool.vm(i).state(), VmState::kReady) << "vm " << i;
    EXPECT_EQ(pool.vm(i).infra_faults(), 1u) << "vm " << i;
    // The Monitor's report must reconcile with the per-VM counters.
    EXPECT_EQ(health[i].infra_faults, pool.vm(i).infra_faults());
    EXPECT_EQ(health[i].execs, pool.vm(i).execs());
    EXPECT_EQ(health[i].quarantines, pool.vm(i).quarantines());
  }
  size_t pending = 0;
  for (const FleetShardSummary& s : pool.ShardSummaries()) {
    pending += s.timers_pending;
  }
  EXPECT_EQ(pending, 0u);
}

TEST(FleetPoolTest, SameSeedLifecycleJournalsAreByteIdentical) {
  auto run = [] {
    SimClock clock;
    Journal journal(4096);
    JournalWriter jw(&journal, 0);
    FleetOptions fleet;
    fleet.lanes = 2;
    fleet.shards = 2;
    FaultPlan plan;
    plan.set_rate(FaultKind::kBootFailure, 0.3);
    VmPool pool(BuiltinTarget(), Config(), &clock, 64, VmLatencyModel(), plan,
                42, nullptr, fleet);
    for (size_t i = 0; i < pool.size(); ++i) {
      pool.vm(i).set_journal(&jw);
    }
    for (size_t s = 0; s < pool.num_shards(); ++s) {
      pool.set_shard_journal(s, &jw);
    }
    for (int round = 0; round < 4; ++round) {
      for (size_t lane = 0; lane < pool.num_lanes(); ++lane) {
        GuestVm* vm = pool.AcquireReady(lane);
        pool.Release(lane, vm);
      }
    }
    jw.Flush();
    return JournalRecordsToJsonl(journal.Records());
  };
  const std::string first = run();
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, run());
}

// ---- fleet fuzzing (single-threaded reference loop) ----

TEST(FleetFuzzerTest, SameSeedFleetCampaignsAreIdentical) {
  auto run = [] {
    FuzzerOptions options;
    options.seed = 77;
    options.num_vms = 2;
    options.fleet_size = 64;
    options.fleet_shards = 2;
    Fuzzer fuzzer(BuiltinTarget(), options);
    for (int i = 0; i < 150; ++i) {
      fuzzer.Step();
    }
    struct Outcome {
      size_t coverage;
      size_t corpus;
      std::string journal;
    };
    return Outcome{fuzzer.CoverageCount(), fuzzer.corpus().size(),
                   fuzzer.journal().ToJsonl()};
  };
  const auto a = run();
  const auto b = run();
  EXPECT_GT(a.coverage, 0u);
  EXPECT_EQ(a.coverage, b.coverage);
  EXPECT_EQ(a.corpus, b.corpus);
  EXPECT_EQ(a.journal, b.journal);
}

TEST(FleetFuzzerTest, FleetStatusCensusCoversEveryGuest) {
  FuzzerOptions options;
  options.seed = 5;
  // Shards are clamped to the lane count, so three lanes carry three shards.
  options.num_vms = 3;
  options.fleet_size = 96;
  options.fleet_shards = 3;
  Fuzzer fuzzer(BuiltinTarget(), options);
  for (int i = 0; i < 40; ++i) {
    fuzzer.Step();
  }
  const std::vector<FleetShardSummary> fleet = fuzzer.pool().ShardSummaries();
  ASSERT_EQ(fleet.size(), 3u);
  size_t total = 0;
  for (const FleetShardSummary& s : fleet) {
    total += s.vms;
    EXPECT_EQ(s.vms, s.cold + s.booting + s.ready + s.executing + s.crashed +
                         s.rebooting + s.quarantined)
        << "shard " << s.shard;
  }
  EXPECT_EQ(total, 96u);
}

// ---- fleet fuzzing (parallel workers; in the TSan pass) ----

TEST(FleetFuzzTest, ParallelFleetSmokeAndHealthReconciliation) {
  ParallelOptions options;
  options.seed = 11;
  options.num_workers = 4;
  options.total_execs = 1200;
  options.fleet_size = 512;
  options.fleet_shards = 2;
  options.journal_capacity = 2048;
  options.fault_plan.set_rate(FaultKind::kVmCrash, 0.02);
  options.fault_plan.set_rate(FaultKind::kBootFailure, 0.05);
  const ParallelResult result = RunParallelFuzz(BuiltinTarget(), options);

  EXPECT_EQ(result.fuzz_execs, 1200u);
  EXPECT_GT(result.coverage, 0u);
  ASSERT_EQ(result.fleet.size(), 2u);
  size_t census = 0;
  for (const FleetShardSummary& s : result.fleet) {
    census += s.vms;
    EXPECT_EQ(s.vms, s.cold + s.booting + s.ready + s.executing + s.crashed +
                         s.rebooting + s.quarantined)
        << "shard " << s.shard;
  }
  EXPECT_EQ(census, 512u);

  // Health accounting reconciles: the Monitor's per-VM report covers the
  // whole fleet and its exec total matches the shared telemetry counter.
  ASSERT_EQ(result.vm_health.size(), 512u);
  uint64_t health_execs = 0;
  for (const VmHealth& h : result.vm_health) {
    health_execs += h.execs;
  }
  EXPECT_EQ(health_execs, result.telemetry.counter("healer_vm_execs_total"));
  EXPECT_GE(health_execs, result.fuzz_execs);
  EXPECT_GT(result.monitor_lines, 0u);
}

TEST(FleetFuzzTest, LegacyTopologyIsUnchangedByFleetPlumbing) {
  // fleet_size 0 and fleet_size == num_workers must both resolve to the
  // pinned one-VM-per-worker topology (parallel campaigns are
  // scheduling-dependent, so the check is structural, not value-for-value).
  for (const size_t fleet_size : {size_t{0}, size_t{2}}) {
    ParallelOptions options;
    options.seed = 3;
    options.num_workers = 2;
    options.total_execs = 400;
    options.fleet_size = fleet_size;
    const ParallelResult r = RunParallelFuzz(BuiltinTarget(), options);
    EXPECT_EQ(r.fuzz_execs, 400u) << "fleet_size " << fleet_size;
    EXPECT_GT(r.coverage, 0u);
    // Legacy census: one shard, every guest accounted for, none of the
    // fleet-only states (parked reboots) in play after shutdown.
    ASSERT_EQ(r.fleet.size(), 1u);
    EXPECT_EQ(r.fleet[0].vms, 2u);
    EXPECT_EQ(r.vm_health.size(), 2u);
  }
}

}  // namespace
}  // namespace healer
