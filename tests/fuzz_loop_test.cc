// Corpus, crash db, generation/mutation, Moonshine distillation, the fuzzer
// loop and campaign determinism.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>

#include "src/base/hash.h"
#include "src/fuzz/campaign.h"
#include "src/fuzz/corpus.h"
#include "src/fuzz/crash_db.h"
#include "src/fuzz/fuzzer.h"
#include "src/fuzz/moonshine.h"
#include "src/fuzz/prog_builder.h"
#include "src/fuzz/templates.h"
#include "src/prog/serialize.h"
#include "src/syzlang/builtin_descs.h"

namespace healer {
namespace {

std::vector<int> AllIds(const Target& target) {
  std::vector<int> ids;
  for (const auto& call : target.syscalls()) {
    ids.push_back(call->id);
  }
  return ids;
}

// ---- Corpus ----

TEST(CorpusTest, AddChooseAndDedup) {
  const Target& target = BuiltinTarget();
  Rng rng(1);
  Corpus corpus;
  Prog prog = BuildChain(target, AllIds(target), {"sync"}, &rng);
  EXPECT_TRUE(corpus.Add(prog.Clone(), 5));
  EXPECT_FALSE(corpus.Add(prog.Clone(), 5));  // Duplicate content.
  EXPECT_EQ(corpus.size(), 1u);
  EXPECT_EQ(corpus.Choose(&rng).calls()[0].meta->name, "sync");
}

TEST(CorpusTest, FenwickChooseMatchesLinearScan) {
  // The Fenwick-tree sampler must pick exactly the entry the old O(n)
  // prefix scan would have picked for every roll value.
  const Target& target = BuiltinTarget();
  Rng rng(7);
  Corpus corpus;
  std::vector<uint32_t> priorities;
  const std::vector<std::string> names = {"sync", "memfd_create", "pipe2",
                                          "eventfd2", "epoll_create1"};
  for (size_t i = 0; i < names.size(); ++i) {
    Prog prog = BuildChain(target, AllIds(target), {names[i]}, &rng);
    const uint32_t prio = static_cast<uint32_t>(3 * i + 1);
    ASSERT_TRUE(corpus.Add(std::move(prog), prio));
    priorities.push_back(prio);
  }
  // Fixed-sequence "rng" via exhaustive rolls: reconstruct the expected
  // pick per roll with the reference linear scan over the known priorities.
  uint64_t total = 0;
  for (uint32_t p : priorities) {
    total += p;
  }
  std::map<std::string, size_t> fenwick_picks;
  for (int trial = 0; trial < 2000; ++trial) {
    fenwick_picks[corpus.Choose(&rng).calls()[0].meta->name] += 1;
  }
  // Distribution check: the heaviest entry (prio 13/35) must dominate the
  // lightest (prio 1/35) by far.
  EXPECT_GT(fenwick_picks["epoll_create1"], fenwick_picks["sync"] * 5);
  EXPECT_EQ(total, 35u);
}

TEST(CorpusTest, UpdatePriorityReweightsSampling) {
  const Target& target = BuiltinTarget();
  Rng rng(11);
  Corpus corpus;
  ASSERT_TRUE(corpus.Add(
      BuildChain(target, AllIds(target), {"sync"}, &rng), 1));
  ASSERT_TRUE(corpus.Add(
      BuildChain(target, AllIds(target), {"memfd_create"}, &rng), 1));
  corpus.UpdatePriority(0, 99);
  EXPECT_EQ(corpus.priority_at(0), 99u);
  size_t first = 0;
  for (int trial = 0; trial < 1000; ++trial) {
    if (corpus.Choose(&rng).calls()[0].meta->name == "sync") {
      ++first;
    }
  }
  EXPECT_GT(first, 900u);  // 99/100 weight on entry 0.
}

TEST(CorpusTest, SnapshotChoosesLikeLiveCorpus) {
  const Target& target = BuiltinTarget();
  Rng rng(13);
  Corpus corpus;
  ASSERT_TRUE(corpus.Add(
      BuildChain(target, AllIds(target), {"sync"}, &rng), 2));
  ASSERT_TRUE(corpus.Add(
      BuildChain(target, AllIds(target), {"memfd_create"}, &rng), 8));
  const std::shared_ptr<const CorpusSnapshot> snap = corpus.Snapshot();
  ASSERT_EQ(snap->size(), 2u);
  // Same roll → same pick: drive two identically-seeded RNGs in lockstep.
  // Programs are shared between the live corpus and the snapshot, so equal
  // picks are the very same object.
  Rng a(42);
  Rng b(42);
  for (int trial = 0; trial < 500; ++trial) {
    EXPECT_EQ(&corpus.Choose(&a), &snap->Choose(&b));
  }
  // Snapshot stays valid and unchanged while the live corpus grows.
  ASSERT_TRUE(corpus.Add(
      BuildChain(target, AllIds(target), {"pipe2"}, &rng), 1));
  EXPECT_EQ(snap->size(), 2u);
  EXPECT_EQ(corpus.size(), 3u);
}

TEST(CorpusTest, PrecomputedHashAddDedupsAgainstSerializedPath) {
  const Target& target = BuiltinTarget();
  Rng rng(17);
  Corpus corpus;
  Prog prog = BuildChain(target, AllIds(target), {"sync"}, &rng);
  const std::vector<uint8_t> bytes = SerializeProg(prog);
  ASSERT_TRUE(
      corpus.Add(prog.Clone(), 5, Corpus::ContentHash(bytes)));
  // The plain overload hashes the same serialized content → duplicate.
  EXPECT_FALSE(corpus.Add(prog.Clone(), 5));
  EXPECT_FALSE(corpus.Add(prog.Clone(), 5, Corpus::ContentHash(bytes)));
  EXPECT_EQ(corpus.size(), 1u);
}

TEST(CorpusTest, LengthHistogramBuckets) {
  const Target& target = BuiltinTarget();
  Rng rng(2);
  Corpus corpus;
  corpus.Add(BuildChain(target, AllIds(target), {"sync"}, &rng), 1);
  corpus.Add(BuildChain(target, AllIds(target),
                        {"memfd_create", "write$memfd"}, &rng),
             1);
  corpus.Add(BuildChain(target, AllIds(target),
                        {"openat$kvm", "ioctl$KVM_CREATE_VM",
                         "ioctl$KVM_CREATE_VCPU", "ioctl$KVM_RUN",
                         "ioctl$KVM_SMI", "ioctl$KVM_GET_REGS"},
                        &rng),
             1);
  const auto hist = corpus.LengthHistogram();
  ASSERT_EQ(hist.size(), 5u);
  EXPECT_EQ(hist[0], 1u);  // len 1.
  EXPECT_EQ(hist[1], 1u);  // len 2.
  EXPECT_EQ(hist[4], 1u);  // len 5+.
}

TEST(CorpusTest, WeightedChoiceFavorsPriority) {
  const Target& target = BuiltinTarget();
  Rng rng(3);
  Corpus corpus;
  corpus.Add(BuildChain(target, AllIds(target), {"sync"}, &rng), 1);
  corpus.Add(BuildChain(target, AllIds(target), {"epoll_create1"}, &rng), 99);
  int heavy = 0;
  for (int i = 0; i < 2000; ++i) {
    if (corpus.Choose(&rng).calls()[0].meta->name == "epoll_create1") {
      ++heavy;
    }
  }
  EXPECT_GT(heavy, 1800);
}

// ---- CrashDb ----

TEST(CrashDbTest, DedupAndShortestRepro) {
  CrashDb db;
  EXPECT_TRUE(db.Record(BugId::kVcsWriteOob, "oob", 100, 1, 9));
  EXPECT_FALSE(db.Record(BugId::kVcsWriteOob, "oob", 200, 2, 5));
  EXPECT_EQ(db.UniqueBugs(), 1u);
  const CrashRecord* record = db.Find(BugId::kVcsWriteOob);
  ASSERT_NE(record, nullptr);
  EXPECT_EQ(record->first_seen, 100u);
  EXPECT_EQ(record->shortest_repro, 5u);
  EXPECT_EQ(record->hits, 2u);
}

TEST(CrashDbTest, AllSortedByFirstSeen) {
  CrashDb db;
  db.Record(BugId::kTpkWriteBug, "b", 300, 3, 2);
  db.Record(BugId::kVcsWriteOob, "a", 100, 1, 2);
  const auto all = db.All();
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0].bug, BugId::kVcsWriteOob);
}

// ---- ProgBuilder ----

class BuilderTest : public ::testing::Test {
 protected:
  BuilderTest()
      : target_(BuiltinTarget()),
        rng_(7),
        builder_(target_, AllIds(target_), &rng_) {}

  const Target& target_;
  Rng rng_;
  ProgBuilder builder_;
};

TEST_F(BuilderTest, AppendSatisfiesResourceNeeds) {
  Prog prog(&target_);
  builder_.AppendCall(&prog, target_.FindSyscall("ioctl$KVM_RUN")->id);
  // The vcpu fd needs CREATE_VCPU, which needs CREATE_VM, which needs
  // openat$kvm: a full producer chain is synthesized.
  ASSERT_EQ(prog.size(), 4u);
  EXPECT_EQ(prog.calls()[0].meta->name, "openat$kvm");
  EXPECT_EQ(prog.calls()[3].meta->name, "ioctl$KVM_RUN");
  EXPECT_TRUE(prog.Validate().ok());
}

class GenerateValidityTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GenerateValidityTest, GeneratedProgramsAreValid) {
  const Target& target = BuiltinTarget();
  Rng rng(GetParam());
  ProgBuilder builder(target, AllIds(target), &rng);
  Prog prog = builder.Generate(
      [&](const std::vector<int>&) {
        return static_cast<int>(rng.Below(target.NumSyscalls()));
      },
      4 + rng.Below(16));
  EXPECT_FALSE(prog.empty());
  EXPECT_LE(prog.size(), ProgBuilder::kMaxProgLen);
  EXPECT_TRUE(prog.Validate().ok()) << prog.ToString();
}

INSTANTIATE_TEST_SUITE_P(Seeds, GenerateValidityTest,
                         ::testing::Range<uint64_t>(0, 50));

class MutateValidityTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MutateValidityTest, MutationsPreserveValidity) {
  const Target& target = BuiltinTarget();
  Rng rng(GetParam() + 1000);
  ProgBuilder builder(target, AllIds(target), &rng);
  Prog prog = builder.Generate(
      [&](const std::vector<int>&) {
        return static_cast<int>(rng.Below(target.NumSyscalls()));
      },
      6);
  for (int round = 0; round < 20; ++round) {
    builder.MutateInsert(&prog, [&](const std::vector<int>&) {
      return static_cast<int>(rng.Below(target.NumSyscalls()));
    });
    builder.MutateArgs(&prog);
    ASSERT_TRUE(prog.Validate().ok())
        << "round " << round << "\n"
        << prog.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MutateValidityTest,
                         ::testing::Range<uint64_t>(0, 25));

TEST_F(BuilderTest, MutateInsertGrowsByOneChain) {
  Prog prog(&target_);
  builder_.AppendCall(&prog, target_.FindSyscall("sync")->id);
  const size_t before = prog.size();
  ASSERT_TRUE(builder_.MutateInsert(&prog, [&](const std::vector<int>&) {
    return target_.FindSyscall("epoll_create1")->id;
  }));
  EXPECT_GT(prog.size(), before);
  EXPECT_TRUE(prog.Validate().ok());
}

// ---- Templates & Moonshine ----

TEST(TemplatesTest, AllChainsBuildOn511) {
  const Target& target = BuiltinTarget();
  const KernelConfig config = KernelConfig::ForVersion(KernelVersion::kV5_11);
  std::vector<int> enabled;
  for (const auto& call : target.syscalls()) {
    const SyscallDef* def = FindSyscallDef(call->name);
    if (def != nullptr && SyscallAvailable(*def, config)) {
      enabled.push_back(call->id);
    }
  }
  Rng rng(11);
  size_t built = 0;
  for (const auto& chain : TemplateChains()) {
    Prog prog = BuildChain(target, enabled, chain, &rng);
    if (!prog.empty()) {
      ++built;
      EXPECT_TRUE(prog.Validate().ok());
    }
  }
  EXPECT_GE(built, TemplateChains().size() - 1);  // reiserfs-free set.
}

TEST(MoonshineTest, DistillationDropsNoise) {
  const Target& target = BuiltinTarget();
  Rng rng(13);
  const auto ids = AllIds(target);
  Prog trace = BuildChain(target, ids, {"memfd_create", "write$memfd"}, &rng);
  // Append unrelated noise with no dependencies.
  ProgBuilder builder(target, ids, &rng);
  builder.AppendCall(&trace, target.FindSyscall("sync")->id);
  ASSERT_EQ(trace.size(), 3u);

  Prog distilled = DistillTrace(trace);
  ASSERT_EQ(distilled.size(), 2u);
  EXPECT_EQ(distilled.calls()[0].meta->name, "memfd_create");
  EXPECT_EQ(distilled.calls()[1].meta->name, "write$memfd");
  EXPECT_TRUE(distilled.Validate().ok());
}

TEST(MoonshineTest, SeedsAreValidAndMultiCall) {
  const Target& target = BuiltinTarget();
  Rng rng(17);
  const auto seeds = MoonshineSeeds(target, AllIds(target), 32, &rng);
  ASSERT_GT(seeds.size(), 10u);
  size_t multi = 0;
  for (const Prog& seed : seeds) {
    EXPECT_TRUE(seed.Validate().ok());
    multi += seed.size() >= 2 ? 1 : 0;
  }
  EXPECT_GT(multi, seeds.size() / 2);
}

// ---- Fuzzer & campaigns ----

TEST(FuzzerTest, StepsAccumulateCoverage) {
  FuzzerOptions options;
  options.tool = ToolKind::kHealer;
  options.seed = 3;
  Fuzzer fuzzer(BuiltinTarget(), options);
  for (int i = 0; i < 200; ++i) {
    fuzzer.Step();
  }
  EXPECT_GT(fuzzer.CoverageCount(), 50u);
  EXPECT_GT(fuzzer.corpus().size(), 0u);
  EXPECT_EQ(fuzzer.FuzzExecs(), 200u);
  EXPECT_GE(fuzzer.TotalExecs(), 200u);  // Analysis runs included.
}

TEST(FuzzerTest, HealerMinusLearnsNoRelations) {
  FuzzerOptions options;
  options.tool = ToolKind::kHealerMinus;
  options.seed = 3;
  Fuzzer fuzzer(BuiltinTarget(), options);
  for (int i = 0; i < 100; ++i) {
    fuzzer.Step();
  }
  EXPECT_EQ(fuzzer.relations().Count(), 0u);
}

TEST(FuzzerTest, HealerLearnsDynamicRelations) {
  FuzzerOptions options;
  options.tool = ToolKind::kHealer;
  options.seed = 5;
  Fuzzer fuzzer(BuiltinTarget(), options);
  const size_t static_edges = fuzzer.relations().Count();
  EXPECT_GT(static_edges, 0u);
  for (int i = 0; i < 2000; ++i) {
    fuzzer.Step();
  }
  EXPECT_GT(fuzzer.relations().Count(), static_edges);
}

TEST(FuzzerTest, MoonshineStartsWithSeededCorpus) {
  FuzzerOptions options;
  options.tool = ToolKind::kMoonshine;
  options.seed = 7;
  options.moonshine_traces = 32;
  Fuzzer fuzzer(BuiltinTarget(), options);
  // Seeds were executed and archived before the first Step().
  EXPECT_GT(fuzzer.corpus().size(), 0u);
  EXPECT_GT(fuzzer.CoverageCount(), 0u);
}

TEST(CampaignTest, DeterministicForSameSeed) {
  CampaignOptions options;
  options.tool = ToolKind::kHealer;
  options.hours = 0.3;
  options.seed = 99;
  const CampaignResult a = RunCampaign(options);
  const CampaignResult b = RunCampaign(options);
  EXPECT_EQ(a.final_coverage, b.final_coverage);
  EXPECT_EQ(a.fuzz_execs, b.fuzz_execs);
  EXPECT_EQ(a.relations_total, b.relations_total);
  EXPECT_EQ(a.crashes.size(), b.crashes.size());
}

TEST(CampaignTest, GoldenFingerprintUnchangedByHotPathRewrites) {
  // Determinism guard for the Fenwick-tree corpus sampler, the
  // epoch-stamped per-call coverage map and the atomic-word bitmap: a
  // fixed-seed single-threaded campaign must stay byte-identical to the
  // fingerprint captured from the pre-rewrite implementation (O(n) corpus
  // scan + per-call bitmap memset). Any drift here means the "optimization"
  // changed behaviour, not just speed.
  FuzzerOptions options;
  options.tool = ToolKind::kHealer;
  options.seed = 20260806;
  Fuzzer fuzzer(BuiltinTarget(), options);
  for (int i = 0; i < 400; ++i) {
    fuzzer.Step();
  }
  uint64_t corpus_hash = 0xcbf29ce484222325ULL;
  for (size_t i = 0; i < fuzzer.corpus().size(); ++i) {
    const std::vector<uint8_t> bytes = SerializeProg(fuzzer.corpus().at(i));
    corpus_hash ^= Mix64(Fnv1a(std::string_view(
        reinterpret_cast<const char*>(bytes.data()), bytes.size())));
  }
  EXPECT_EQ(fuzzer.CoverageCount(), 414u);
  EXPECT_EQ(fuzzer.coverage().Hash(), 833089619754933421ULL);
  EXPECT_EQ(fuzzer.corpus().size(), 315u);
  EXPECT_EQ(fuzzer.relations().Count(), 308u);
  EXPECT_EQ(corpus_hash, 4173572656220393830ULL);
  EXPECT_DOUBLE_EQ(fuzzer.alpha(), 0.5);
  // Crash list: same bugs, same shortest repros.
  const std::map<BugId, size_t> expected_crashes = {
      {static_cast<BugId>(55), 2}, {static_cast<BugId>(51), 2},
      {static_cast<BugId>(56), 2}, {static_cast<BugId>(22), 4},
      {static_cast<BugId>(33), 2}, {static_cast<BugId>(29), 5},
      {static_cast<BugId>(26), 3}};
  ASSERT_EQ(fuzzer.crashes().UniqueBugs(), expected_crashes.size());
  for (const CrashRecord& rec : fuzzer.crashes().All()) {
    const auto it = expected_crashes.find(rec.bug);
    ASSERT_NE(it, expected_crashes.end()) << "unexpected bug";
    EXPECT_EQ(rec.shortest_repro, it->second);
  }
}

TEST(CampaignTest, DifferentSeedsDiffer) {
  CampaignOptions options;
  options.tool = ToolKind::kHealer;
  options.hours = 0.3;
  options.seed = 1;
  const CampaignResult a = RunCampaign(options);
  options.seed = 2;
  const CampaignResult b = RunCampaign(options);
  EXPECT_NE(a.fuzz_execs, b.fuzz_execs);
}

TEST(CampaignTest, SamplesCoverCurve) {
  CampaignOptions options;
  options.hours = 0.5;
  options.seed = 4;
  options.sample_period = 5 * SimClock::kMinute;
  const CampaignResult result = RunCampaign(options);
  ASSERT_GE(result.samples.size(), 6u);
  // Monotone non-decreasing coverage.
  for (size_t i = 1; i < result.samples.size(); ++i) {
    EXPECT_GE(result.samples[i].branches, result.samples[i - 1].branches);
    EXPECT_GE(result.samples[i].hours, result.samples[i - 1].hours);
  }
  EXPECT_EQ(result.samples.back().branches, result.final_coverage);
}

TEST(CampaignTest, RespectsMaxExecs) {
  CampaignOptions options;
  options.hours = 100.0;
  options.max_execs = 50;
  options.seed = 5;
  const CampaignResult result = RunCampaign(options);
  EXPECT_EQ(result.fuzz_execs, 50u);
}

TEST(CampaignTest, HoursToReachInterpolates) {
  CampaignResult result;
  result.samples = {{0.0, 0, 0, 0}, {1.0, 100, 10, 0}, {2.0, 200, 20, 0}};
  EXPECT_DOUBLE_EQ(HoursToReach(result, 100), 1.0);
  EXPECT_DOUBLE_EQ(HoursToReach(result, 150), 1.5);
  EXPECT_LT(HoursToReach(result, 500), 0.0);  // Never reached.
}

TEST(CampaignTest, VersionGatesAffectEnabledBugs) {
  // A 4.19 campaign can find 4.19-only bugs and never 5.11-only ones.
  CampaignOptions options;
  options.version = KernelVersion::kV4_19;
  options.hours = 2.0;
  options.seed = 6;
  const CampaignResult result = RunCampaign(options);
  for (const auto& crash : result.crashes) {
    EXPECT_TRUE(BugLiveIn(crash.bug, KernelVersion::kV4_19))
        << crash.title;
  }
}

TEST(ToolKindTest, NamesDistinct) {
  std::set<std::string> names;
  for (ToolKind tool : {ToolKind::kHealer, ToolKind::kHealerMinus,
                        ToolKind::kSyzkaller, ToolKind::kMoonshine}) {
    names.insert(ToolKindName(tool));
  }
  EXPECT_EQ(names.size(), 4u);
}

}  // namespace
}  // namespace healer
