// Corpus, crash db, generation/mutation, Moonshine distillation, the fuzzer
// loop and campaign determinism.

#include <gtest/gtest.h>

#include <set>

#include "src/fuzz/campaign.h"
#include "src/fuzz/corpus.h"
#include "src/fuzz/crash_db.h"
#include "src/fuzz/moonshine.h"
#include "src/fuzz/prog_builder.h"
#include "src/fuzz/templates.h"
#include "src/syzlang/builtin_descs.h"

namespace healer {
namespace {

std::vector<int> AllIds(const Target& target) {
  std::vector<int> ids;
  for (const auto& call : target.syscalls()) {
    ids.push_back(call->id);
  }
  return ids;
}

// ---- Corpus ----

TEST(CorpusTest, AddChooseAndDedup) {
  const Target& target = BuiltinTarget();
  Rng rng(1);
  Corpus corpus;
  Prog prog = BuildChain(target, AllIds(target), {"sync"}, &rng);
  EXPECT_TRUE(corpus.Add(prog.Clone(), 5));
  EXPECT_FALSE(corpus.Add(prog.Clone(), 5));  // Duplicate content.
  EXPECT_EQ(corpus.size(), 1u);
  EXPECT_EQ(corpus.Choose(&rng).calls()[0].meta->name, "sync");
}

TEST(CorpusTest, LengthHistogramBuckets) {
  const Target& target = BuiltinTarget();
  Rng rng(2);
  Corpus corpus;
  corpus.Add(BuildChain(target, AllIds(target), {"sync"}, &rng), 1);
  corpus.Add(BuildChain(target, AllIds(target),
                        {"memfd_create", "write$memfd"}, &rng),
             1);
  corpus.Add(BuildChain(target, AllIds(target),
                        {"openat$kvm", "ioctl$KVM_CREATE_VM",
                         "ioctl$KVM_CREATE_VCPU", "ioctl$KVM_RUN",
                         "ioctl$KVM_SMI", "ioctl$KVM_GET_REGS"},
                        &rng),
             1);
  const auto hist = corpus.LengthHistogram();
  ASSERT_EQ(hist.size(), 5u);
  EXPECT_EQ(hist[0], 1u);  // len 1.
  EXPECT_EQ(hist[1], 1u);  // len 2.
  EXPECT_EQ(hist[4], 1u);  // len 5+.
}

TEST(CorpusTest, WeightedChoiceFavorsPriority) {
  const Target& target = BuiltinTarget();
  Rng rng(3);
  Corpus corpus;
  corpus.Add(BuildChain(target, AllIds(target), {"sync"}, &rng), 1);
  corpus.Add(BuildChain(target, AllIds(target), {"epoll_create1"}, &rng), 99);
  int heavy = 0;
  for (int i = 0; i < 2000; ++i) {
    if (corpus.Choose(&rng).calls()[0].meta->name == "epoll_create1") {
      ++heavy;
    }
  }
  EXPECT_GT(heavy, 1800);
}

// ---- CrashDb ----

TEST(CrashDbTest, DedupAndShortestRepro) {
  CrashDb db;
  EXPECT_TRUE(db.Record(BugId::kVcsWriteOob, "oob", 100, 1, 9));
  EXPECT_FALSE(db.Record(BugId::kVcsWriteOob, "oob", 200, 2, 5));
  EXPECT_EQ(db.UniqueBugs(), 1u);
  const CrashRecord* record = db.Find(BugId::kVcsWriteOob);
  ASSERT_NE(record, nullptr);
  EXPECT_EQ(record->first_seen, 100u);
  EXPECT_EQ(record->shortest_repro, 5u);
  EXPECT_EQ(record->hits, 2u);
}

TEST(CrashDbTest, AllSortedByFirstSeen) {
  CrashDb db;
  db.Record(BugId::kTpkWriteBug, "b", 300, 3, 2);
  db.Record(BugId::kVcsWriteOob, "a", 100, 1, 2);
  const auto all = db.All();
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0].bug, BugId::kVcsWriteOob);
}

// ---- ProgBuilder ----

class BuilderTest : public ::testing::Test {
 protected:
  BuilderTest()
      : target_(BuiltinTarget()),
        rng_(7),
        builder_(target_, AllIds(target_), &rng_) {}

  const Target& target_;
  Rng rng_;
  ProgBuilder builder_;
};

TEST_F(BuilderTest, AppendSatisfiesResourceNeeds) {
  Prog prog(&target_);
  builder_.AppendCall(&prog, target_.FindSyscall("ioctl$KVM_RUN")->id);
  // The vcpu fd needs CREATE_VCPU, which needs CREATE_VM, which needs
  // openat$kvm: a full producer chain is synthesized.
  ASSERT_EQ(prog.size(), 4u);
  EXPECT_EQ(prog.calls()[0].meta->name, "openat$kvm");
  EXPECT_EQ(prog.calls()[3].meta->name, "ioctl$KVM_RUN");
  EXPECT_TRUE(prog.Validate().ok());
}

class GenerateValidityTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GenerateValidityTest, GeneratedProgramsAreValid) {
  const Target& target = BuiltinTarget();
  Rng rng(GetParam());
  ProgBuilder builder(target, AllIds(target), &rng);
  Prog prog = builder.Generate(
      [&](const std::vector<int>&) {
        return static_cast<int>(rng.Below(target.NumSyscalls()));
      },
      4 + rng.Below(16));
  EXPECT_FALSE(prog.empty());
  EXPECT_LE(prog.size(), ProgBuilder::kMaxProgLen);
  EXPECT_TRUE(prog.Validate().ok()) << prog.ToString();
}

INSTANTIATE_TEST_SUITE_P(Seeds, GenerateValidityTest,
                         ::testing::Range<uint64_t>(0, 50));

class MutateValidityTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MutateValidityTest, MutationsPreserveValidity) {
  const Target& target = BuiltinTarget();
  Rng rng(GetParam() + 1000);
  ProgBuilder builder(target, AllIds(target), &rng);
  Prog prog = builder.Generate(
      [&](const std::vector<int>&) {
        return static_cast<int>(rng.Below(target.NumSyscalls()));
      },
      6);
  for (int round = 0; round < 20; ++round) {
    builder.MutateInsert(&prog, [&](const std::vector<int>&) {
      return static_cast<int>(rng.Below(target.NumSyscalls()));
    });
    builder.MutateArgs(&prog);
    ASSERT_TRUE(prog.Validate().ok())
        << "round " << round << "\n"
        << prog.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MutateValidityTest,
                         ::testing::Range<uint64_t>(0, 25));

TEST_F(BuilderTest, MutateInsertGrowsByOneChain) {
  Prog prog(&target_);
  builder_.AppendCall(&prog, target_.FindSyscall("sync")->id);
  const size_t before = prog.size();
  ASSERT_TRUE(builder_.MutateInsert(&prog, [&](const std::vector<int>&) {
    return target_.FindSyscall("epoll_create1")->id;
  }));
  EXPECT_GT(prog.size(), before);
  EXPECT_TRUE(prog.Validate().ok());
}

// ---- Templates & Moonshine ----

TEST(TemplatesTest, AllChainsBuildOn511) {
  const Target& target = BuiltinTarget();
  const KernelConfig config = KernelConfig::ForVersion(KernelVersion::kV5_11);
  std::vector<int> enabled;
  for (const auto& call : target.syscalls()) {
    const SyscallDef* def = FindSyscallDef(call->name);
    if (def != nullptr && SyscallAvailable(*def, config)) {
      enabled.push_back(call->id);
    }
  }
  Rng rng(11);
  size_t built = 0;
  for (const auto& chain : TemplateChains()) {
    Prog prog = BuildChain(target, enabled, chain, &rng);
    if (!prog.empty()) {
      ++built;
      EXPECT_TRUE(prog.Validate().ok());
    }
  }
  EXPECT_GE(built, TemplateChains().size() - 1);  // reiserfs-free set.
}

TEST(MoonshineTest, DistillationDropsNoise) {
  const Target& target = BuiltinTarget();
  Rng rng(13);
  const auto ids = AllIds(target);
  Prog trace = BuildChain(target, ids, {"memfd_create", "write$memfd"}, &rng);
  // Append unrelated noise with no dependencies.
  ProgBuilder builder(target, ids, &rng);
  builder.AppendCall(&trace, target.FindSyscall("sync")->id);
  ASSERT_EQ(trace.size(), 3u);

  Prog distilled = DistillTrace(trace);
  ASSERT_EQ(distilled.size(), 2u);
  EXPECT_EQ(distilled.calls()[0].meta->name, "memfd_create");
  EXPECT_EQ(distilled.calls()[1].meta->name, "write$memfd");
  EXPECT_TRUE(distilled.Validate().ok());
}

TEST(MoonshineTest, SeedsAreValidAndMultiCall) {
  const Target& target = BuiltinTarget();
  Rng rng(17);
  const auto seeds = MoonshineSeeds(target, AllIds(target), 32, &rng);
  ASSERT_GT(seeds.size(), 10u);
  size_t multi = 0;
  for (const Prog& seed : seeds) {
    EXPECT_TRUE(seed.Validate().ok());
    multi += seed.size() >= 2 ? 1 : 0;
  }
  EXPECT_GT(multi, seeds.size() / 2);
}

// ---- Fuzzer & campaigns ----

TEST(FuzzerTest, StepsAccumulateCoverage) {
  FuzzerOptions options;
  options.tool = ToolKind::kHealer;
  options.seed = 3;
  Fuzzer fuzzer(BuiltinTarget(), options);
  for (int i = 0; i < 200; ++i) {
    fuzzer.Step();
  }
  EXPECT_GT(fuzzer.CoverageCount(), 50u);
  EXPECT_GT(fuzzer.corpus().size(), 0u);
  EXPECT_EQ(fuzzer.FuzzExecs(), 200u);
  EXPECT_GE(fuzzer.TotalExecs(), 200u);  // Analysis runs included.
}

TEST(FuzzerTest, HealerMinusLearnsNoRelations) {
  FuzzerOptions options;
  options.tool = ToolKind::kHealerMinus;
  options.seed = 3;
  Fuzzer fuzzer(BuiltinTarget(), options);
  for (int i = 0; i < 100; ++i) {
    fuzzer.Step();
  }
  EXPECT_EQ(fuzzer.relations().Count(), 0u);
}

TEST(FuzzerTest, HealerLearnsDynamicRelations) {
  FuzzerOptions options;
  options.tool = ToolKind::kHealer;
  options.seed = 5;
  Fuzzer fuzzer(BuiltinTarget(), options);
  const size_t static_edges = fuzzer.relations().Count();
  EXPECT_GT(static_edges, 0u);
  for (int i = 0; i < 2000; ++i) {
    fuzzer.Step();
  }
  EXPECT_GT(fuzzer.relations().Count(), static_edges);
}

TEST(FuzzerTest, MoonshineStartsWithSeededCorpus) {
  FuzzerOptions options;
  options.tool = ToolKind::kMoonshine;
  options.seed = 7;
  options.moonshine_traces = 32;
  Fuzzer fuzzer(BuiltinTarget(), options);
  // Seeds were executed and archived before the first Step().
  EXPECT_GT(fuzzer.corpus().size(), 0u);
  EXPECT_GT(fuzzer.CoverageCount(), 0u);
}

TEST(CampaignTest, DeterministicForSameSeed) {
  CampaignOptions options;
  options.tool = ToolKind::kHealer;
  options.hours = 0.3;
  options.seed = 99;
  const CampaignResult a = RunCampaign(options);
  const CampaignResult b = RunCampaign(options);
  EXPECT_EQ(a.final_coverage, b.final_coverage);
  EXPECT_EQ(a.fuzz_execs, b.fuzz_execs);
  EXPECT_EQ(a.relations_total, b.relations_total);
  EXPECT_EQ(a.crashes.size(), b.crashes.size());
}

TEST(CampaignTest, DifferentSeedsDiffer) {
  CampaignOptions options;
  options.tool = ToolKind::kHealer;
  options.hours = 0.3;
  options.seed = 1;
  const CampaignResult a = RunCampaign(options);
  options.seed = 2;
  const CampaignResult b = RunCampaign(options);
  EXPECT_NE(a.fuzz_execs, b.fuzz_execs);
}

TEST(CampaignTest, SamplesCoverCurve) {
  CampaignOptions options;
  options.hours = 0.5;
  options.seed = 4;
  options.sample_period = 5 * SimClock::kMinute;
  const CampaignResult result = RunCampaign(options);
  ASSERT_GE(result.samples.size(), 6u);
  // Monotone non-decreasing coverage.
  for (size_t i = 1; i < result.samples.size(); ++i) {
    EXPECT_GE(result.samples[i].branches, result.samples[i - 1].branches);
    EXPECT_GE(result.samples[i].hours, result.samples[i - 1].hours);
  }
  EXPECT_EQ(result.samples.back().branches, result.final_coverage);
}

TEST(CampaignTest, RespectsMaxExecs) {
  CampaignOptions options;
  options.hours = 100.0;
  options.max_execs = 50;
  options.seed = 5;
  const CampaignResult result = RunCampaign(options);
  EXPECT_EQ(result.fuzz_execs, 50u);
}

TEST(CampaignTest, HoursToReachInterpolates) {
  CampaignResult result;
  result.samples = {{0.0, 0, 0, 0}, {1.0, 100, 10, 0}, {2.0, 200, 20, 0}};
  EXPECT_DOUBLE_EQ(HoursToReach(result, 100), 1.0);
  EXPECT_DOUBLE_EQ(HoursToReach(result, 150), 1.5);
  EXPECT_LT(HoursToReach(result, 500), 0.0);  // Never reached.
}

TEST(CampaignTest, VersionGatesAffectEnabledBugs) {
  // A 4.19 campaign can find 4.19-only bugs and never 5.11-only ones.
  CampaignOptions options;
  options.version = KernelVersion::kV4_19;
  options.hours = 2.0;
  options.seed = 6;
  const CampaignResult result = RunCampaign(options);
  for (const auto& crash : result.crashes) {
    EXPECT_TRUE(BugLiveIn(crash.bug, KernelVersion::kV4_19))
        << crash.title;
  }
}

TEST(ToolKindTest, NamesDistinct) {
  std::set<std::string> names;
  for (ToolKind tool : {ToolKind::kHealer, ToolKind::kHealerMinus,
                        ToolKind::kSyzkaller, ToolKind::kMoonshine}) {
    names.insert(ToolKindName(tool));
  }
  EXPECT_EQ(names.size(), 4u);
}

}  // namespace
}  // namespace healer
