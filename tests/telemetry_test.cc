// Telemetry layer: metric registry exactness (including under threads, the
// TSan target), histogram bucketing, Prometheus/JSON/Chrome-trace golden
// outputs, the log sink, the live status line, and campaign-level
// properties — counters reconcile with the campaign's own result fields and
// snapshots are a deterministic function of (options, seed, fault_plan).

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "src/base/logging.h"
#include "src/base/metrics.h"
#include "src/base/trace.h"
#include "src/fuzz/campaign.h"
#include "src/fuzz/parallel.h"
#include "src/fuzz/report.h"
#include "src/syzlang/builtin_descs.h"

namespace healer {
namespace {

// ---- Counter / Gauge / Histogram ----

TEST(MetricsTest, CounterAddAndValue) {
  MetricRegistry registry;
  Counter* c = registry.GetCounter("healer_test_total");
  EXPECT_EQ(c->Value(), 0u);
  c->Add();
  c->Add(41);
  if (kTelemetryEnabled) {
    EXPECT_EQ(c->Value(), 42u);
  } else {
    EXPECT_EQ(c->Value(), 0u);
  }
  // Same name returns the same handle; a new name a distinct one.
  EXPECT_EQ(registry.GetCounter("healer_test_total"), c);
  EXPECT_NE(registry.GetCounter("healer_other_total"), c);
}

TEST(MetricsTest, GaugeLastWriteWins) {
  MetricRegistry registry;
  Gauge* g = registry.GetGauge("healer_test_gauge");
  EXPECT_EQ(g->Value(), 0.0);
  g->Set(0.62);
  g->Set(1234.5);
  if (kTelemetryEnabled) {
    EXPECT_DOUBLE_EQ(g->Value(), 1234.5);
  }
}

TEST(MetricsTest, HistogramBucketEdges) {
  // Bucket 0 holds only the value 0; bucket i holds bit-width-i values.
  EXPECT_EQ(Histogram::BucketIndex(0), 0u);
  EXPECT_EQ(Histogram::BucketIndex(1), 1u);
  EXPECT_EQ(Histogram::BucketIndex(2), 2u);
  EXPECT_EQ(Histogram::BucketIndex(3), 2u);
  EXPECT_EQ(Histogram::BucketIndex(4), 3u);
  EXPECT_EQ(Histogram::BucketIndex(7), 3u);
  EXPECT_EQ(Histogram::BucketIndex(8), 4u);
  EXPECT_EQ(Histogram::BucketIndex(~uint64_t{0}), 64u);
  EXPECT_EQ(Histogram::BucketUpperEdge(0), 0u);
  EXPECT_EQ(Histogram::BucketUpperEdge(1), 1u);
  EXPECT_EQ(Histogram::BucketUpperEdge(2), 3u);
  EXPECT_EQ(Histogram::BucketUpperEdge(3), 7u);
  EXPECT_EQ(Histogram::BucketUpperEdge(4), 15u);
  EXPECT_EQ(Histogram::BucketUpperEdge(64), ~uint64_t{0});
  // Every value lands in the bucket whose upper edge bounds it.
  for (uint64_t v : {0ull, 1ull, 2ull, 5ull, 100ull, 65535ull, 1ull << 40}) {
    const size_t b = Histogram::BucketIndex(v);
    EXPECT_LE(v, Histogram::BucketUpperEdge(b));
    if (b > 0) {
      EXPECT_GT(v, Histogram::BucketUpperEdge(b - 1));
    }
  }
}

TEST(MetricsTest, HistogramObserve) {
  if (!kTelemetryEnabled) {
    GTEST_SKIP() << "telemetry compiled out";
  }
  Histogram h;
  h.Observe(0);
  h.Observe(1);
  h.Observe(2);
  h.Observe(3);
  h.Observe(7);
  EXPECT_EQ(h.Count(), 5u);
  EXPECT_EQ(h.Sum(), 13u);
  EXPECT_EQ(h.BucketCount(0), 1u);
  EXPECT_EQ(h.BucketCount(1), 1u);
  EXPECT_EQ(h.BucketCount(2), 2u);
  EXPECT_EQ(h.BucketCount(3), 1u);
}

// ---- exactness under threads (runs under TSan in scripts/check.sh) ----

TEST(TelemetryThreadsTest, CountersExactUnder8Threads) {
  if (!kTelemetryEnabled) {
    GTEST_SKIP() << "telemetry compiled out";
  }
  MetricRegistry registry;
  Counter* counter = registry.GetCounter("healer_threads_total");
  Histogram* hist = registry.GetHistogram("healer_threads_hist");
  Gauge* gauge = registry.GetGauge("healer_threads_gauge");
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        counter->Add();
        hist->Observe(i % 16);
        gauge->Set(static_cast<double>(t));
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(counter->Value(), kThreads * kPerThread);
  EXPECT_EQ(hist->Count(), kThreads * kPerThread);
  const double g = gauge->Value();
  EXPECT_GE(g, 0.0);
  EXPECT_LT(g, static_cast<double>(kThreads));
  // Snapshot while nothing is running is exact too.
  const MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.counter("healer_threads_total"), kThreads * kPerThread);
}

TEST(TelemetryThreadsTest, TraceBufferUnderThreads) {
  if (!kTelemetryEnabled) {
    GTEST_SKIP() << "telemetry compiled out";
  }
  TraceBuffer buffer(64);
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (uint64_t i = 0; i < 1000; ++i) {
        buffer.RecordComplete("span", "test", i, 1,
                              static_cast<uint32_t>(t));
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(buffer.size(), 64u);
  EXPECT_EQ(buffer.dropped(), kThreads * 1000u - 64u);
}

// ---- golden outputs ----

TEST(MetricsTest, PrometheusGolden) {
  if (!kTelemetryEnabled) {
    GTEST_SKIP() << "telemetry compiled out";
  }
  MetricRegistry registry;
  registry.GetCounter("healer_execs_total")->Add(42);
  registry.GetGauge("healer_alpha")->Set(0.62);
  Histogram* h = registry.GetHistogram("healer_prog_len");
  h->Observe(0);
  h->Observe(3);
  h->Observe(3);
  const std::string expected =
      "# TYPE healer_execs_total counter\n"
      "healer_execs_total 42\n"
      "# TYPE healer_alpha gauge\n"
      "healer_alpha 0.62\n"
      "# TYPE healer_prog_len histogram\n"
      "healer_prog_len_bucket{le=\"0\"} 1\n"
      "healer_prog_len_bucket{le=\"1\"} 1\n"
      "healer_prog_len_bucket{le=\"3\"} 3\n"
      "healer_prog_len_bucket{le=\"+Inf\"} 3\n"
      "healer_prog_len_sum 6\n"
      "healer_prog_len_count 3\n";
  EXPECT_EQ(registry.ToPrometheusText(), expected);
}

TEST(MetricsTest, JsonGolden) {
  if (!kTelemetryEnabled) {
    GTEST_SKIP() << "telemetry compiled out";
  }
  MetricRegistry registry;
  registry.GetCounter("healer_execs_total")->Add(7);
  registry.GetGauge("healer_alpha")->Set(0.5);
  registry.GetHistogram("healer_prog_len")->Observe(2);
  const std::string expected =
      "{\n"
      "  \"counters\": {\n"
      "    \"healer_execs_total\": 7\n"
      "  },\n"
      "  \"gauges\": {\n"
      "    \"healer_alpha\": 0.5\n"
      "  },\n"
      "  \"histograms\": {\n"
      "    \"healer_prog_len\": {\"count\": 1, \"sum\": 2, "
      "\"buckets\": [0, 0, 1], \"p50\": 2.5, \"p90\": 2.9, "
      "\"p99\": 2.99}\n"
      "  }\n"
      "}\n";
  EXPECT_EQ(registry.ToJson(), expected);
}

TEST(TraceTest, ChromeJsonGolden) {
  if (!kTelemetryEnabled) {
    GTEST_SKIP() << "telemetry compiled out";
  }
  TraceBuffer buffer(8);
  buffer.RecordComplete("exec", "vm", 1500, 2500);
  buffer.RecordInstant("alpha-update", "alpha", 5000, 2);
  const std::string expected =
      "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n"
      "{\"name\": \"exec\", \"cat\": \"vm\", \"ph\": \"X\", \"pid\": 1, "
      "\"tid\": 0, \"ts\": 1.500, \"dur\": 2.500},\n"
      "{\"name\": \"alpha-update\", \"cat\": \"alpha\", \"ph\": \"i\", "
      "\"pid\": 1, \"tid\": 2, \"ts\": 5.000, \"s\": \"t\"}\n"
      "]}\n";
  EXPECT_EQ(buffer.ToChromeJson(), expected);
}

TEST(TraceTest, RingOverwritesOldest) {
  if (!kTelemetryEnabled) {
    GTEST_SKIP() << "telemetry compiled out";
  }
  TraceBuffer buffer(3);
  for (uint64_t i = 0; i < 5; ++i) {
    buffer.RecordInstant("e", "t", i * 100);
  }
  const std::vector<TraceEvent> events = buffer.Events();
  ASSERT_EQ(events.size(), 3u);
  // Oldest first: events 2, 3, 4 survive.
  EXPECT_EQ(events[0].start, 200u);
  EXPECT_EQ(events[1].start, 300u);
  EXPECT_EQ(events[2].start, 400u);
  EXPECT_EQ(buffer.dropped(), 2u);
}

TEST(TraceTest, ZeroCapacityDropsEverything) {
  TraceBuffer buffer;  // capacity 0
  buffer.RecordComplete("exec", "vm", 0, 10);
  buffer.RecordInstant("x", "y", 5);
  EXPECT_EQ(buffer.size(), 0u);
  EXPECT_TRUE(buffer.Events().empty());
}

// ---- log sink ----

TEST(LogSinkTest, CapturesAndRestores) {
  std::vector<std::string> lines;
  SetLogSink([&](LogLevel, const std::string& line) {
    lines.push_back(line);
  });
  LogToSink(LogLevel::kInfo, "status line one");
  LOG_ERROR << "an error line";  // Above threshold -> reaches the sink.
  SetLogSink(nullptr);  // Restore stderr default.
  ASSERT_GE(lines.size(), 2u);
  EXPECT_EQ(lines[0], "status line one");
  EXPECT_NE(lines[1].find("an error line"), std::string::npos);
}

TEST(StatusLineTest, Format) {
  StatusLineInfo info;
  info.hours = 12.5;
  info.execs = 48123;
  info.execs_per_sec = 22.4;
  info.coverage = 1234;
  info.corpus = 321;
  info.relations = 99;
  info.crashes = 3;
  info.vms = 2;
  const std::string line = FormatStatusLine(info);
  EXPECT_NE(line.find("12.50h"), std::string::npos);
  EXPECT_NE(line.find("execs 48123 (22.40/sec sim)"), std::string::npos);
  EXPECT_NE(line.find("cover 1234"), std::string::npos);
  EXPECT_NE(line.find("crashes 3"), std::string::npos);
  EXPECT_EQ(line.find("faults"), std::string::npos);
  info.failed_execs = 17;
  info.quarantines = 2;
  EXPECT_NE(FormatStatusLine(info).find("faults 17 (2 quarantined)"),
            std::string::npos);
}

// ---- campaign-level properties ----

CampaignOptions QuickOptions(uint64_t seed = 3) {
  CampaignOptions options;
  options.hours = 0.05;
  options.seed = seed;
  options.sample_period = SimClock::kMinute;
  options.fault_plan = FaultPlan::Uniform(0.01);
  return options;
}

TEST(TelemetryCampaignTest, CountersReconcileWithResult) {
  if (!kTelemetryEnabled) {
    GTEST_SKIP() << "telemetry compiled out";
  }
  const CampaignResult result = RunCampaign(QuickOptions());
  const MetricsSnapshot& t = result.telemetry;
  ASSERT_FALSE(t.empty());
  ASSERT_GT(result.fuzz_execs, 0u);

  // The snapshot and the struct fields come from the same campaign and must
  // agree exactly.
  EXPECT_EQ(t.counter("healer_fuzz_execs_total"), result.fuzz_execs);
  EXPECT_EQ(t.counter("healer_fuzz_execs_total"),
            t.counter("healer_fuzz_generated_total") +
                t.counter("healer_fuzz_mutated_total") +
                t.counter("healer_fuzz_seeded_total"));
  // Every recovery attempt either succeeded or failed.
  EXPECT_EQ(t.counter("healer_exec_attempts_total"),
            t.counter("healer_exec_ok_total") +
                t.counter("healer_exec_failed_total"));
  // VM-side exec counting (only successful round trips) matches both the
  // recovery layer's ok count and the pool total the result reports.
  EXPECT_EQ(t.counter("healer_vm_execs_total"),
            t.counter("healer_exec_ok_total"));
  EXPECT_EQ(t.counter("healer_vm_execs_total"), result.total_execs);
  // The coverage counter sums exactly the edges merged into the bitmap.
  EXPECT_EQ(t.counter("healer_coverage_edges_total"), result.final_coverage);
  EXPECT_DOUBLE_EQ(t.gauge("healer_coverage_branches"),
                   static_cast<double>(result.final_coverage));
  // Fault accounting is backed by the same counters as FaultStats.
  EXPECT_EQ(t.counter("healer_exec_failed_total"),
            result.faults.failed_execs);
  EXPECT_EQ(t.counter("healer_exec_retries_total"), result.faults.retries);
  EXPECT_EQ(t.counter("healer_vm_quarantines_total"),
            result.faults.quarantines);
  // Per-kind injected-fault counters sum to the FaultStats total.
  uint64_t injected = 0;
  for (size_t i = 0; i < kNumFaultKinds; ++i) {
    injected += t.counter(
        std::string("healer_fault_injected_") +
        FaultKindName(static_cast<FaultKind>(i)) + "_total");
  }
  EXPECT_EQ(injected, result.faults.TotalInjected());
  // Derived gauges match result fields.
  EXPECT_DOUBLE_EQ(t.gauge("healer_corpus_programs"),
                   static_cast<double>(result.corpus_size));
  EXPECT_DOUBLE_EQ(t.gauge("healer_relations_total"),
                   static_cast<double>(result.relations_total));
  EXPECT_DOUBLE_EQ(t.gauge("healer_crashes_unique"),
                   static_cast<double>(result.crashes.size()));
  EXPECT_NEAR(t.gauge("healer_sim_hours"), QuickOptions().hours, 0.05);
  // Distribution bookkeeping: program lengths were observed for every
  // fuzzing execution.
  auto it = t.histograms.find("healer_prog_len");
  ASSERT_NE(it, t.histograms.end());
  EXPECT_EQ(it->second.count, result.fuzz_execs);
}

TEST(TelemetryCampaignTest, SnapshotIsDeterministic) {
  if (!kTelemetryEnabled) {
    GTEST_SKIP() << "telemetry compiled out";
  }
  CampaignOptions options = QuickOptions(11);
  options.capture_trace = true;
  options.trace_capacity = 1 << 12;
  const CampaignResult a = RunCampaign(options);
  const CampaignResult b = RunCampaign(options);
  EXPECT_EQ(a.telemetry, b.telemetry);
  EXPECT_EQ(a.telemetry.ToPrometheusText(), b.telemetry.ToPrometheusText());
  ASSERT_EQ(a.trace_events.size(), b.trace_events.size());
  EXPECT_TRUE(a.trace_events == b.trace_events);
  EXPECT_FALSE(a.trace_events.empty());
}

TEST(TelemetryCampaignTest, StatusLinesEmittedThroughSink) {
  std::vector<std::string> lines;
  SetLogSink([&](LogLevel level, const std::string& line) {
    if (level == LogLevel::kInfo) {
      lines.push_back(line);
    }
  });
  CampaignOptions options = QuickOptions(5);
  options.status_period = 30 * SimClock::kSecond;
  RunCampaign(options);
  SetLogSink(nullptr);
  ASSERT_GE(lines.size(), 2u);  // Periodic lines plus the final one.
  for (const std::string& line : lines) {
    EXPECT_NE(line.find("execs"), std::string::npos) << line;
    EXPECT_NE(line.find("cover"), std::string::npos) << line;
  }
}

TEST(TelemetryCampaignTest, TraceEventsSpanTheCampaign) {
  if (!kTelemetryEnabled) {
    GTEST_SKIP() << "telemetry compiled out";
  }
  CampaignOptions options = QuickOptions(7);
  options.capture_trace = true;
  options.trace_capacity = 1 << 14;
  const CampaignResult result = RunCampaign(options);
  ASSERT_FALSE(result.trace_events.empty());
  // Spans record at scope exit, so the buffer is ordered by *end* time
  // (nested spans close before their parent): start + duration must be
  // non-decreasing, and every event must fit inside the campaign.
  bool saw_exec = false;
  SimClock::Nanos last_end = 0;
  for (const TraceEvent& event : result.trace_events) {
    if (std::string(event.name) == "exec") {
      saw_exec = true;
    }
    const SimClock::Nanos end = event.start + event.duration;
    EXPECT_GE(end, last_end);
    last_end = end;
  }
  EXPECT_TRUE(saw_exec);
  EXPECT_GT(last_end, 0u);
  // Off by default: a plain campaign records nothing.
  CampaignOptions plain = QuickOptions(7);
  EXPECT_TRUE(RunCampaign(plain).trace_events.empty());
}

// ---- report integration ----

TEST(TelemetryReportTest, ReportQuotesTelemetry) {
  if (!kTelemetryEnabled) {
    GTEST_SKIP() << "telemetry compiled out";
  }
  const CampaignResult result = RunCampaign(QuickOptions(13));
  const std::string report = FormatCampaignReport(result);
  // The executions line is rendered from the snapshot; it must carry the
  // same number the result field does.
  char expected[64];
  std::snprintf(expected, sizeof(expected), "executions : %llu fuzzing",
                (unsigned long long)result.telemetry.counter(
                    "healer_fuzz_execs_total"));
  EXPECT_NE(report.find(expected), std::string::npos) << report;
}

TEST(TelemetryReportTest, MaxCrashesZeroSuppressesList) {
  CampaignResult result;
  result.crashes.push_back(CrashRecord{});
  result.crashes.back().title = "KASAN: some-bug";
  ReportOptions options;
  options.max_crashes = 0;
  const std::string report = FormatCampaignReport(result, options);
  EXPECT_EQ(report.find("KASAN: some-bug"), std::string::npos);
  EXPECT_NE(report.find("crashes    : 1 unique"), std::string::npos);
  EXPECT_NE(report.find("crash list suppressed"), std::string::npos);
}

TEST(TelemetryReportTest, MaxSamplesThinsCurve) {
  CampaignResult result;
  for (int i = 0; i < 200; ++i) {
    CoverageSample sample;
    sample.hours = i * 0.1;
    sample.branches = static_cast<size_t>(i);
    result.samples.push_back(sample);
  }
  ReportOptions options;
  options.include_samples = true;
  options.max_samples = 10;
  const std::string report = FormatCampaignReport(result, options);
  EXPECT_NE(report.find("(10 of 200 samples shown)"), std::string::npos);
  // Unlimited when 0.
  options.max_samples = 0;
  EXPECT_EQ(FormatCampaignReport(result, options).find("samples shown"),
            std::string::npos);
}

// ---- parallel fuzzing carries the same telemetry ----

TEST(TelemetryParallelTest, SnapshotAndFaultStatsAgree) {
  if (!kTelemetryEnabled) {
    GTEST_SKIP() << "telemetry compiled out";
  }
  ParallelOptions options;
  options.num_workers = 4;
  options.total_execs = 400;
  options.fault_plan = FaultPlan::Uniform(0.01);
  options.trace_capacity = 1 << 10;
  const ParallelResult result = RunParallelFuzz(BuiltinTarget(), options);
  const MetricsSnapshot& t = result.telemetry;
  ASSERT_FALSE(t.empty());
  EXPECT_EQ(t.counter("healer_exec_attempts_total"),
            t.counter("healer_exec_ok_total") +
                t.counter("healer_exec_failed_total"));
  EXPECT_EQ(t.counter("healer_exec_failed_total"),
            result.faults.failed_execs);
  EXPECT_EQ(t.counter("healer_coverage_edges_total"), result.coverage);
  EXPECT_DOUBLE_EQ(t.gauge("healer_coverage_branches"),
                   static_cast<double>(result.coverage));
  EXPECT_FALSE(result.trace_events.empty());
}

}  // namespace
}  // namespace healer
