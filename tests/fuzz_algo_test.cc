// HEALER's core algorithms: relation table + static learning, Algorithm 1
// (minimization), Algorithm 2 (dynamic learning), Algorithm 3 (guided call
// selection) with the alpha schedule, and the Syzkaller choice table.

#include <gtest/gtest.h>

#include <map>

#include "src/exec/executor.h"
#include "src/fuzz/call_selector.h"
#include "src/fuzz/choice_table.h"
#include "src/fuzz/learner.h"
#include "src/fuzz/minimizer.h"
#include "src/fuzz/relation_table.h"
#include "src/fuzz/templates.h"
#include "src/syzlang/builtin_descs.h"

namespace healer {
namespace {

std::vector<int> AllIds(const Target& target) {
  std::vector<int> ids;
  for (const auto& call : target.syscalls()) {
    ids.push_back(call->id);
  }
  return ids;
}

Prog Chain(const std::vector<std::string>& names, uint64_t seed = 1) {
  const Target& target = BuiltinTarget();
  Rng rng(seed);
  return BuildChain(target, AllIds(target), names, &rng);
}

int IdOf(const std::string& name) {
  return BuiltinTarget().FindSyscall(name)->id;
}

// ---- RelationTable ----

TEST(RelationTableTest, SetGetAndDedup) {
  RelationTable table(8);
  EXPECT_FALSE(table.Get(1, 2));
  EXPECT_TRUE(table.Set(1, 2, RelationSource::kDynamic, 100));
  EXPECT_TRUE(table.Get(1, 2));
  EXPECT_FALSE(table.Get(2, 1));  // Directed.
  EXPECT_FALSE(table.Set(1, 2, RelationSource::kStatic, 200));  // Dup.
  EXPECT_EQ(table.Count(), 1u);
}

TEST(RelationTableTest, EdgesBeforeCutoff) {
  RelationTable table(8);
  table.Set(0, 1, RelationSource::kDynamic, 10);
  table.Set(1, 2, RelationSource::kDynamic, 20);
  table.Set(2, 3, RelationSource::kDynamic, 30);
  EXPECT_EQ(table.EdgesBefore(20).size(), 2u);
  EXPECT_EQ(table.EdgesBefore().size(), 3u);
}

TEST(RelationTableTest, InfluencedByListsRow) {
  RelationTable table(8);
  table.Set(3, 1, RelationSource::kDynamic, 0);
  table.Set(3, 5, RelationSource::kDynamic, 0);
  const auto influenced = table.InfluencedBy(3);
  EXPECT_EQ(influenced, (std::vector<int>{1, 5}));
}

// ---- RelationSnapshot (CSR) + RelationDelta ----

TEST(RelationSnapshotTest, CsrRowsAreSortedAndBinarySearchable) {
  RelationTable table(8);
  table.Set(3, 5, RelationSource::kDynamic, 0);
  table.Set(3, 1, RelationSource::kDynamic, 0);
  table.Set(3, 7, RelationSource::kDynamic, 0);
  table.Set(6, 0, RelationSource::kDynamic, 0);
  const auto snap = table.snapshot();
  ASSERT_EQ(snap->n(), 8u);
  EXPECT_EQ(snap->num_edges(), 4u);
  // Row 3 sorted ascending regardless of insertion order.
  ASSERT_EQ(snap->OutDegree(3), 3u);
  const int32_t* row = snap->Row(3);
  EXPECT_EQ(row[0], 1);
  EXPECT_EQ(row[1], 5);
  EXPECT_EQ(row[2], 7);
  EXPECT_EQ(snap->OutDegree(0), 0u);
  EXPECT_EQ(snap->OutDegree(6), 1u);
  EXPECT_TRUE(snap->Contains(3, 5));
  EXPECT_TRUE(snap->Contains(6, 0));
  EXPECT_FALSE(snap->Contains(5, 3));
  EXPECT_FALSE(snap->Contains(3, 2));
}

TEST(RelationSnapshotTest, SnapshotsAreImmutablePointsInTime) {
  RelationTable table(4);
  table.Set(0, 1, RelationSource::kDynamic, 0);
  const auto before = table.snapshot();
  table.Set(0, 2, RelationSource::kDynamic, 0);
  const auto after = table.snapshot();
  // The old view is untouched by the later write.
  EXPECT_EQ(before->num_edges(), 1u);
  EXPECT_FALSE(before->Contains(0, 2));
  EXPECT_EQ(after->num_edges(), 2u);
  EXPECT_TRUE(after->Contains(0, 2));
  EXPECT_GT(after->epoch(), before->epoch());
}

TEST(RelationSnapshotTest, EpochBumpsOnlyWhenEdgesLand) {
  RelationTable table(4);
  const uint64_t start = table.epoch();
  table.Set(0, 1, RelationSource::kDynamic, 0);
  const uint64_t after_set = table.epoch();
  EXPECT_GT(after_set, start);
  // A duplicate Set publishes nothing.
  table.Set(0, 1, RelationSource::kStatic, 5);
  EXPECT_EQ(table.epoch(), after_set);
  // A delta containing only known edges publishes nothing either.
  RelationDelta dup;
  dup.Add(0, 1, RelationSource::kDynamic, 9);
  EXPECT_EQ(table.Apply(dup), 0u);
  EXPECT_EQ(table.epoch(), after_set);
  // The epoch a reader probes matches the snapshot it fetches.
  EXPECT_EQ(table.snapshot()->epoch(), after_set);
}

TEST(RelationDeltaTest, AddDeduplicatesAndTracksMembership) {
  RelationDelta delta;
  EXPECT_TRUE(delta.empty());
  EXPECT_TRUE(delta.Add(1, 2, RelationSource::kDynamic, 10));
  EXPECT_FALSE(delta.Add(1, 2, RelationSource::kStatic, 20));  // Dup.
  EXPECT_TRUE(delta.Add(2, 1, RelationSource::kDynamic, 10));  // Directed.
  EXPECT_EQ(delta.size(), 2u);
  EXPECT_TRUE(delta.Contains(1, 2));
  EXPECT_TRUE(delta.Contains(2, 1));
  EXPECT_FALSE(delta.Contains(1, 3));
  delta.clear();
  EXPECT_TRUE(delta.empty());
  EXPECT_FALSE(delta.Contains(1, 2));
}

TEST(RelationDeltaTest, ApplyCreditsOverlappingDeltasExactlyOnce) {
  // Two "workers" learn overlapping edge sets; each edge is credited to
  // exactly one Apply.
  RelationTable table(8);
  RelationDelta first;
  first.Add(0, 1, RelationSource::kDynamic, 1);
  first.Add(0, 2, RelationSource::kDynamic, 1);
  RelationDelta second;
  second.Add(0, 2, RelationSource::kDynamic, 2);  // Overlap.
  second.Add(0, 3, RelationSource::kDynamic, 2);
  EXPECT_EQ(table.Apply(first), 2u);
  EXPECT_EQ(table.Apply(second), 1u);
  EXPECT_EQ(table.Count(), 3u);
  EXPECT_EQ(table.Apply(second), 0u);  // Re-publishing credits nothing.
  EXPECT_EQ(table.Count(), 3u);
}

TEST(StaticLearnTest, LearnsSpecificResourceEdges) {
  const Target& target = BuiltinTarget();
  RelationTable table(target.NumSyscalls());
  const size_t added = StaticRelationLearn(target, &table);
  EXPECT_GT(added, 50u);
  // memfd_create -> fcntl$ADD_SEALS (memfd resource, specific).
  EXPECT_TRUE(table.Get(IdOf("memfd_create"), IdOf("fcntl$ADD_SEALS")));
  // KVM chain.
  EXPECT_TRUE(
      table.Get(IdOf("openat$kvm"), IdOf("ioctl$KVM_CREATE_VM")));
  EXPECT_TRUE(table.Get(IdOf("ioctl$KVM_CREATE_VM"),
                        IdOf("ioctl$KVM_CREATE_VCPU")));
  EXPECT_TRUE(
      table.Get(IdOf("ioctl$KVM_CREATE_VCPU"), IdOf("ioctl$KVM_RUN")));
}

TEST(StaticLearnTest, SkipsRootOnlyPairs) {
  const Target& target = BuiltinTarget();
  RelationTable table(target.NumSyscalls());
  StaticRelationLearn(target, &table);
  // close(fd) relates to everything through the root kind only: no static
  // edge (dynamic learning would have to prove actual influence).
  EXPECT_FALSE(table.Get(IdOf("memfd_create"), IdOf("close")));
  EXPECT_FALSE(table.Get(IdOf("socket$tcp"), IdOf("read")));
  // And fcntl$ADD_SEALS -> mmap is NOT statically derivable (Figure 2).
  EXPECT_FALSE(table.Get(IdOf("fcntl$ADD_SEALS"), IdOf("mmap")));
}

TEST(StaticLearnTest, AllEdgesTimestampedZero) {
  const Target& target = BuiltinTarget();
  RelationTable table(target.NumSyscalls());
  StaticRelationLearn(target, &table);
  for (const auto& edge : table.EdgesBefore()) {
    EXPECT_EQ(edge.learned_at, 0u);
    EXPECT_EQ(edge.source, RelationSource::kStatic);
  }
}

// ---- Minimizer (Algorithm 1) ----

class MinimizerTest : public ::testing::Test {
 protected:
  MinimizerTest()
      : executor_(BuiltinTarget(),
                  KernelConfig::ForVersion(KernelVersion::kV5_11)),
        coverage_(CallCoverage::kMapBits),
        minimizer_([this](const Prog& p) { return executor_.Run(p, nullptr); }) {}

  ExecResult Baseline(const Prog& prog) {
    return executor_.Run(prog, &coverage_);
  }

  Executor executor_;
  Bitmap coverage_;
  Minimizer minimizer_;
};

TEST_F(MinimizerTest, RemovesIrrelevantCalls) {
  // [memfd_create, timer noise, write$memfd]: the timer call does not
  // affect write's coverage and must be removed.
  Prog prog = Chain({"memfd_create", "timerfd_create", "write$memfd"});
  ASSERT_EQ(prog.size(), 3u);
  const ExecResult baseline = Baseline(prog);
  ASSERT_GT(baseline.TotalNewEdges(), 0u);
  const auto minimized = minimizer_.Minimize(prog, baseline);
  ASSERT_FALSE(minimized.empty());
  // The sequence targeting write$memfd keeps only the memfd chain.
  bool found_write_seq = false;
  for (const auto& seq : minimized) {
    if (seq.prog.calls()[seq.target_index].meta->name == "write$memfd") {
      found_write_seq = true;
      for (const auto& call : seq.prog.calls()) {
        EXPECT_NE(call.meta->name, "timerfd_create");
      }
      EXPECT_EQ(seq.prog.size(), 2u);
    }
  }
  EXPECT_TRUE(found_write_seq);
}

TEST_F(MinimizerTest, PreservesTargetSignal) {
  Prog prog = Chain({"openat$kvm", "ioctl$KVM_CREATE_VM", "eventfd2",
                     "ioctl$KVM_CREATE_VCPU"});
  const ExecResult baseline = Baseline(prog);
  const auto minimized = minimizer_.Minimize(prog, baseline);
  for (const auto& seq : minimized) {
    const ExecResult re = executor_.Run(seq.prog, nullptr);
    ASSERT_LT(seq.target_index, re.calls.size());
    EXPECT_EQ(re.calls[seq.target_index].signal, seq.target_signal);
  }
}

TEST_F(MinimizerTest, KeepsLoadBearingDependencies) {
  Prog prog = Chain({"memfd_create", "fcntl$ADD_SEALS"});
  // Force a real seal so the dependency matters.
  prog.calls()[1].args[2]->val = 8;
  const ExecResult baseline = Baseline(prog);
  const auto minimized = minimizer_.Minimize(prog, baseline);
  for (const auto& seq : minimized) {
    if (seq.prog.calls()[seq.target_index].meta->name == "fcntl$ADD_SEALS") {
      // memfd_create cannot be removed: ADD_SEALS on a bad fd covers
      // different code.
      EXPECT_EQ(seq.prog.size(), 2u);
    }
  }
}

TEST_F(MinimizerTest, SkipsCallsWithoutNewCoverage) {
  Prog prog = Chain({"sync"});
  ExecResult baseline = Baseline(prog);
  // Re-run: nothing new anymore.
  baseline = Baseline(prog);
  EXPECT_EQ(baseline.TotalNewEdges(), 0u);
  EXPECT_TRUE(minimizer_.Minimize(prog, baseline).empty());
}

TEST_F(MinimizerTest, CountsAnalysisExecs) {
  Prog prog = Chain({"memfd_create", "timerfd_create", "write$memfd"});
  const ExecResult baseline = Baseline(prog);
  const uint64_t before = minimizer_.execs_used();
  minimizer_.Minimize(prog, baseline);
  EXPECT_GT(minimizer_.execs_used(), before);
}

// ---- Dynamic learner (Algorithm 2) ----

class LearnerTest : public ::testing::Test {
 protected:
  LearnerTest()
      : executor_(BuiltinTarget(),
                  KernelConfig::ForVersion(KernelVersion::kV5_11)),
        table_(BuiltinTarget().NumSyscalls()),
        learner_(&table_, [this](const Prog& p) {
          return executor_.Run(p, nullptr);
        }, &clock_) {}

  Executor executor_;
  RelationTable table_;
  SimClock clock_;
  DynamicLearner learner_;
};

TEST_F(LearnerTest, LearnsSealsInfluenceMmap) {
  // The paper's running example, end to end.
  Prog prog = Chain({"memfd_create", "fcntl$ADD_SEALS", "mmap"}, 3);
  ASSERT_EQ(prog.size(), 3u);
  prog.calls()[0].args[1]->val = 2;      // MFD_ALLOW_SEALING.
  prog.calls()[1].args[2]->val = 8;      // F_SEAL_WRITE.
  prog.calls()[2].args[2]->val = 3;      // PROT_READ|WRITE.
  prog.calls()[2].args[3]->val = 1;      // MAP_SHARED.
  prog.calls()[2].args[4]->kind = ArgKind::kResource;
  prog.calls()[2].args[4]->res_ref = 0;
  prog.calls()[2].args[4]->res_slot = 0;

  clock_.Advance(SimClock::kHour);
  const size_t learned = learner_.Learn(prog);
  EXPECT_GE(learned, 1u);
  EXPECT_TRUE(table_.Get(IdOf("fcntl$ADD_SEALS"), IdOf("mmap")));
  // Timestamped with the simulated clock.
  const auto edges = table_.EdgesBefore();
  ASSERT_FALSE(edges.empty());
  EXPECT_EQ(edges.back().learned_at, SimClock::kHour);
  EXPECT_EQ(edges.back().source, RelationSource::kDynamic);
}

TEST_F(LearnerTest, SkipsKnownRelations) {
  Prog prog = Chain({"memfd_create", "write$memfd"});
  table_.Set(IdOf("memfd_create"), IdOf("write$memfd"),
             RelationSource::kStatic, 0);
  const uint64_t before = learner_.execs_used();
  EXPECT_EQ(learner_.Learn(prog), 0u);
  // Only the baseline execution: the pair is already known.
  EXPECT_EQ(learner_.execs_used(), before + 1);
}

TEST_F(LearnerTest, NoRelationForIndependentCalls) {
  Prog prog = Chain({"timerfd_create", "epoll_create1"});
  ASSERT_EQ(prog.size(), 2u);
  learner_.Learn(prog);
  EXPECT_FALSE(table_.Get(IdOf("timerfd_create"), IdOf("epoll_create1")));
}

TEST_F(LearnerTest, SingleCallLearnsNothing) {
  Prog prog = Chain({"sync"});
  EXPECT_EQ(learner_.Learn(prog), 0u);
  EXPECT_EQ(table_.Count(), 0u);
}

TEST_F(LearnerTest, LearnIntoAccumulatesWithoutTouchingTable) {
  Prog prog = Chain({"memfd_create", "fcntl$ADD_SEALS", "mmap"}, 3);
  ASSERT_EQ(prog.size(), 3u);
  prog.calls()[0].args[1]->val = 2;      // MFD_ALLOW_SEALING.
  prog.calls()[1].args[2]->val = 8;      // F_SEAL_WRITE.
  prog.calls()[2].args[2]->val = 3;      // PROT_READ|WRITE.
  prog.calls()[2].args[3]->val = 1;      // MAP_SHARED.
  prog.calls()[2].args[4]->kind = ArgKind::kResource;
  prog.calls()[2].args[4]->res_ref = 0;
  prog.calls()[2].args[4]->res_slot = 0;

  RelationDelta delta;
  const size_t learned = learner_.LearnInto(prog, &delta);
  EXPECT_GE(learned, 1u);
  EXPECT_EQ(delta.size(), learned);
  // The table is untouched until the delta is applied.
  EXPECT_EQ(table_.Count(), 0u);
  EXPECT_TRUE(delta.Contains(IdOf("fcntl$ADD_SEALS"), IdOf("mmap")));
  EXPECT_EQ(table_.Apply(delta), learned);
  EXPECT_TRUE(table_.Get(IdOf("fcntl$ADD_SEALS"), IdOf("mmap")));
}

TEST_F(LearnerTest, LearnIntoSkipsPairsPendingInDelta) {
  // A pair already in the batch delta is not re-probed, even though the
  // table has not seen it yet.
  Prog prog = Chain({"memfd_create", "write$memfd"});
  RelationDelta delta;
  delta.Add(IdOf("memfd_create"), IdOf("write$memfd"),
            RelationSource::kDynamic, 0);
  const uint64_t before = learner_.execs_used();
  EXPECT_EQ(learner_.LearnInto(prog, &delta), 0u);
  // Only the baseline execution.
  EXPECT_EQ(learner_.execs_used(), before + 1);
}

TEST_F(LearnerTest, LinearExecutionCost) {
  // Section 6.2: a length-n minimized sequence needs at most n extra
  // executions (baseline + one per unknown adjacent pair).
  Prog prog = Chain({"openat$kvm", "ioctl$KVM_CREATE_VM",
                     "ioctl$KVM_CREATE_VCPU", "ioctl$KVM_RUN"});
  ASSERT_EQ(prog.size(), 4u);
  const uint64_t before = learner_.execs_used();
  learner_.Learn(prog);
  EXPECT_LE(learner_.execs_used() - before, prog.size());
}

// ---- CallSelector (Algorithm 3) + alpha ----

TEST(AlphaScheduleTest, StartsAtInitial) {
  AlphaSchedule alpha;
  EXPECT_DOUBLE_EQ(alpha.alpha(), AlphaSchedule::kInitial);
}

TEST(AlphaScheduleTest, UpdatesEvery1024Execs) {
  AlphaSchedule alpha;
  for (int i = 0; i < 1023; ++i) {
    alpha.Record(true, true);
  }
  EXPECT_EQ(alpha.updates(), 0u);
  alpha.Record(false, false);
  EXPECT_EQ(alpha.updates(), 1u);
}

TEST(AlphaScheduleTest, RisesWhenTableOutperforms) {
  AlphaSchedule alpha;
  for (int i = 0; i < 1024; ++i) {
    alpha.Record(i % 2 == 0, /*gained=*/i % 2 == 0);
  }
  EXPECT_GT(alpha.alpha(), AlphaSchedule::kInitial);
  EXPECT_LE(alpha.alpha(), AlphaSchedule::kMax);
}

TEST(AlphaScheduleTest, FallsWhenRandomOutperforms) {
  AlphaSchedule alpha;
  for (int i = 0; i < 1024; ++i) {
    alpha.Record(i % 2 == 0, /*gained=*/i % 2 != 0);
  }
  EXPECT_LT(alpha.alpha(), AlphaSchedule::kInitial);
  EXPECT_GE(alpha.alpha(), AlphaSchedule::kMin);
}

TEST(AlphaScheduleTest, ClampsAtMaxWhenOnlyTableGains) {
  // random_execs_ == 0 at rollover: random_rate is 0, the raw estimate is
  // 1.0, and the clamp holds it at kMax.
  AlphaSchedule alpha;
  for (uint64_t i = 0; i < AlphaSchedule::kWindow; ++i) {
    alpha.Record(/*used_table=*/true, /*gained=*/true);
  }
  EXPECT_EQ(alpha.updates(), 1u);
  EXPECT_DOUBLE_EQ(alpha.alpha(), AlphaSchedule::kMax);
}

TEST(AlphaScheduleTest, ClampsAtMinWhenOnlyRandomGains) {
  // table_execs_ == 0 at rollover: the raw estimate is 0.0, clamped to kMin.
  AlphaSchedule alpha;
  for (uint64_t i = 0; i < AlphaSchedule::kWindow; ++i) {
    alpha.Record(/*used_table=*/false, /*gained=*/true);
  }
  EXPECT_EQ(alpha.updates(), 1u);
  EXPECT_DOUBLE_EQ(alpha.alpha(), AlphaSchedule::kMin);
}

TEST(AlphaScheduleTest, GainFreeWindowRollsOverWithoutMovingAlpha) {
  // Both rates zero: no information, alpha keeps its value but the window
  // still rolls over (updates_ counts the rollover).
  AlphaSchedule alpha;
  for (uint64_t i = 0; i < AlphaSchedule::kWindow; ++i) {
    alpha.Record(i % 2 == 0, /*gained=*/false);
  }
  EXPECT_EQ(alpha.updates(), 1u);
  EXPECT_DOUBLE_EQ(alpha.alpha(), AlphaSchedule::kInitial);
  // A second gain-free window behaves identically.
  for (uint64_t i = 0; i < AlphaSchedule::kWindow; ++i) {
    alpha.Record(i % 3 == 0, /*gained=*/false);
  }
  EXPECT_EQ(alpha.updates(), 2u);
  EXPECT_DOUBLE_EQ(alpha.alpha(), AlphaSchedule::kInitial);
}

TEST(AlphaScheduleTest, RecordOrderWithinWindowIsIrrelevant) {
  // The schedule aggregates per-category counts within a window, so any
  // interleaving of the same outcome multiset must yield the same alpha and
  // update count — the property the parallel fuzzer's batched replay of
  // alpha outcomes relies on.
  struct Outcome {
    bool used_table;
    bool gained;
    uint64_t count;
  };
  const std::vector<Outcome> multiset = {
      {true, true, 400}, {true, false, 112}, {false, true, 300},
      {false, false, 212}};  // Sums to kWindow (1024).

  AlphaSchedule sequential;
  for (const Outcome& o : multiset) {
    for (uint64_t i = 0; i < o.count; ++i) {
      sequential.Record(o.used_table, o.gained);
    }
  }

  AlphaSchedule interleaved;
  std::vector<uint64_t> remaining;
  for (const Outcome& o : multiset) {
    remaining.push_back(o.count);
  }
  Rng rng(123);
  uint64_t left = AlphaSchedule::kWindow;
  while (left > 0) {
    const size_t pick = rng.Below(multiset.size());
    if (remaining[pick] == 0) {
      continue;
    }
    --remaining[pick];
    --left;
    interleaved.Record(multiset[pick].used_table, multiset[pick].gained);
  }

  EXPECT_EQ(sequential.updates(), interleaved.updates());
  EXPECT_EQ(sequential.updates(), 1u);
  EXPECT_DOUBLE_EQ(sequential.alpha(), interleaved.alpha());
  EXPECT_GT(sequential.alpha(), AlphaSchedule::kInitial);  // Table won.
}

TEST(CallSelectorTest, AlphaZeroIsAlwaysRandom) {
  RelationTable table(4);
  table.Set(0, 1, RelationSource::kDynamic, 0);
  Rng rng(5);
  CallSelector selector(&table, {0, 1, 2, 3}, &rng);
  bool used_table = false;
  for (int i = 0; i < 64; ++i) {
    selector.Select({0}, /*alpha=*/0.0, &used_table);
    EXPECT_FALSE(used_table);
  }
}

TEST(CallSelectorTest, FollowsRelationsAtAlphaOne) {
  RelationTable table(4);
  table.Set(0, 2, RelationSource::kDynamic, 0);
  Rng rng(6);
  CallSelector selector(&table, {0, 1, 2, 3}, &rng);
  bool used_table = false;
  int table_picks = 0;
  for (int i = 0; i < 100; ++i) {
    const int pick = selector.Select({0}, /*alpha=*/1.0, &used_table);
    if (used_table) {
      ++table_picks;
      EXPECT_EQ(pick, 2);  // The only influenced candidate.
    }
  }
  EXPECT_EQ(table_picks, 100);
}

TEST(CallSelectorTest, WeightsByInfluencerCount) {
  // Prefix {0, 1}: candidate 2 influenced by both; candidate 3 by one.
  RelationTable table(4);
  table.Set(0, 2, RelationSource::kDynamic, 0);
  table.Set(1, 2, RelationSource::kDynamic, 0);
  table.Set(1, 3, RelationSource::kDynamic, 0);
  Rng rng(7);
  CallSelector selector(&table, {0, 1, 2, 3}, &rng);
  int picks2 = 0;
  int picks3 = 0;
  bool used_table = false;
  for (int i = 0; i < 3000; ++i) {
    const int pick = selector.Select({0, 1}, 1.0, &used_table);
    picks2 += pick == 2 ? 1 : 0;
    picks3 += pick == 3 ? 1 : 0;
  }
  EXPECT_EQ(picks2 + picks3, 3000);
  // ~2:1 ratio expected.
  EXPECT_NEAR(static_cast<double>(picks2) / picks3, 2.0, 0.4);
}

TEST(CallSelectorTest, EmptyCandidatesFallBackToRandom) {
  RelationTable table(4);
  Rng rng(8);
  CallSelector selector(&table, {0, 1}, &rng);
  bool used_table = true;
  const int pick = selector.Select({0}, 1.0, &used_table);
  EXPECT_FALSE(used_table);
  EXPECT_TRUE(pick == 0 || pick == 1);
}

TEST(CallSelectorTest, DisabledCallsNeverSelected) {
  RelationTable table(4);
  table.Set(0, 2, RelationSource::kDynamic, 0);
  table.Set(0, 3, RelationSource::kDynamic, 0);
  Rng rng(9);
  CallSelector selector(&table, {0, 3}, &rng);  // 2 is disabled.
  bool used_table = false;
  for (int i = 0; i < 100; ++i) {
    const int pick = selector.Select({0}, 1.0, &used_table);
    EXPECT_NE(pick, 2);
    EXPECT_NE(pick, 1);
  }
}

TEST(CallSelectorTest, RefreshesSnapshotWhenTableGrows) {
  // The selector caches the CSR snapshot; edges published after the cache
  // was taken must become visible via the epoch probe.
  RelationTable table(4);
  Rng rng(11);
  CallSelector selector(&table, {0, 1, 2, 3}, &rng);
  bool used_table = true;
  selector.Select({0}, 1.0, &used_table);  // Caches the empty snapshot.
  EXPECT_FALSE(used_table);

  RelationDelta delta;
  delta.Add(0, 2, RelationSource::kDynamic, 0);
  ASSERT_EQ(table.Apply(delta), 1u);
  for (int i = 0; i < 50; ++i) {
    const int pick = selector.Select({0}, 1.0, &used_table);
    EXPECT_TRUE(used_table);
    EXPECT_EQ(pick, 2);
  }
}

// Reference implementation of the pre-snapshot Select (std::map candidate
// accumulation over the allocating InfluencedBy), kept draw-for-draw
// faithful: the rewrite must consume identical RNG rolls and return
// identical picks for any table/prefix/alpha.
int ReferenceSelect(const RelationTable& table,
                    const std::vector<int>& enabled,
                    const std::vector<uint8_t>& mask, Rng* rng,
                    const std::vector<int>& prefix, double alpha,
                    bool* used_table) {
  *used_table = false;
  if (prefix.empty() || !rng->Bernoulli(alpha)) {
    return enabled[rng->Below(enabled.size())];
  }
  std::map<int, uint64_t> candidates;
  for (int ci : prefix) {
    for (int cj : table.InfluencedBy(ci)) {
      if (mask[static_cast<size_t>(cj)] != 0) {
        ++candidates[cj];
      }
    }
  }
  if (candidates.empty()) {
    return enabled[rng->Below(enabled.size())];
  }
  *used_table = true;
  std::vector<int> calls;
  std::vector<uint64_t> weights;
  for (const auto& [call, weight] : candidates) {
    calls.push_back(call);
    weights.push_back(weight);
  }
  return calls[rng->WeightedPick(weights)];
}

TEST(CallSelectorTest, DrawEquivalentWithMapReference) {
  // Lockstep property test: a randomly grown table, random prefixes and
  // varying alpha; the snapshot Select and the map reference run on
  // identically seeded RNG streams and must agree on every single pick and
  // used_table flag. Any divergence means the rewrite changed draw order
  // and would silently re-pin every fixed-seed campaign.
  constexpr size_t kN = 64;
  RelationTable table(kN);
  std::vector<int> enabled;
  for (size_t i = 0; i < kN; i += 2) {  // Odd ids disabled.
    enabled.push_back(static_cast<int>(i));
  }
  std::vector<uint8_t> mask(kN, 0);
  for (int id : enabled) {
    mask[static_cast<size_t>(id)] = 1;
  }

  Rng driver(2026);  // Grows the table and shapes prefixes.
  Rng rng_new(777);
  Rng rng_ref(777);
  CallSelector selector(&table, enabled, &rng_new);

  for (int step = 0; step < 4000; ++step) {
    // Occasionally grow the table mid-stream so both paths see the same
    // evolving relation set (including edges to disabled calls).
    if (driver.Chance(1, 10)) {
      table.Set(static_cast<int>(driver.Below(kN)),
                static_cast<int>(driver.Below(kN)),
                RelationSource::kDynamic, step);
    }
    std::vector<int> prefix;
    const size_t len = driver.Below(5);  // Empty prefixes included.
    for (size_t i = 0; i < len; ++i) {
      prefix.push_back(static_cast<int>(driver.Below(kN)));
    }
    const double alpha = 0.25 * static_cast<double>(driver.Below(5));
    bool used_new = false;
    bool used_ref = false;
    const int pick_new = selector.Select(prefix, alpha, &used_new);
    const int pick_ref = ReferenceSelect(table, enabled, mask, &rng_ref,
                                         prefix, alpha, &used_ref);
    ASSERT_EQ(pick_new, pick_ref) << "diverged at step " << step;
    ASSERT_EQ(used_new, used_ref) << "diverged at step " << step;
  }
}

// ---- ChoiceTable (Syzkaller baseline) ----

TEST(ChoiceTableTest, StaticPrefersSharedResourceKinds) {
  const Target& target = BuiltinTarget();
  ChoiceTable table(target, AllIds(target));
  // KVM vcpu calls share the kvm_vcpu_fd kind: high P0.
  const uint32_t kvm_pair =
      table.P(IdOf("ioctl$KVM_CREATE_VCPU"), IdOf("ioctl$KVM_RUN"));
  const uint32_t unrelated =
      table.P(IdOf("timerfd_create"), IdOf("ioctl$KVM_RUN"));
  EXPECT_GT(kvm_pair, unrelated);
}

TEST(ChoiceTableTest, AdjacencyBoostsPairs) {
  const Target& target = BuiltinTarget();
  ChoiceTable table(target, AllIds(target));
  const uint32_t before =
      table.P(IdOf("timerfd_create"), IdOf("timerfd_settime"));
  for (int i = 0; i < 50; ++i) {
    table.NoteAdjacent(IdOf("timerfd_create"), IdOf("timerfd_settime"));
  }
  table.Rebuild();
  EXPECT_GT(table.P(IdOf("timerfd_create"), IdOf("timerfd_settime")),
            before);
}

TEST(ChoiceTableTest, ChooseWithoutPrevIsUniformlyEnabled) {
  const Target& target = BuiltinTarget();
  std::vector<int> enabled = {IdOf("sync"), IdOf("close")};
  ChoiceTable table(target, enabled);
  Rng rng(10);
  for (int i = 0; i < 50; ++i) {
    const int pick = table.Choose(&rng, -1);
    EXPECT_TRUE(pick == enabled[0] || pick == enabled[1]);
  }
}

TEST(ChoiceTableTest, RebuildPublishesImmutableSnapshot) {
  const Target& target = BuiltinTarget();
  ChoiceTable table(target, AllIds(target));
  const auto before = table.snapshot();
  ASSERT_NE(before, nullptr);
  EXPECT_EQ(before->epoch(), table.epoch());
  const int from = IdOf("timerfd_create");
  const int to = IdOf("timerfd_settime");
  const uint32_t p_before = before->P(from, to);
  EXPECT_EQ(p_before, table.P(from, to));

  for (int i = 0; i < 50; ++i) {
    table.NoteAdjacent(from, to);
  }
  table.Rebuild();
  const auto after = table.snapshot();
  EXPECT_GT(after->epoch(), before->epoch());
  EXPECT_GT(after->P(from, to), p_before);
  // The earlier snapshot still reads its original value.
  EXPECT_EQ(before->P(from, to), p_before);
  // Choose follows the published matrix (identical draws to reading P
  // directly: same weights vector, one WeightedPick).
  Rng rng_a(12);
  Rng rng_b(12);
  std::vector<uint64_t> weights;
  for (int candidate : AllIds(target)) {
    weights.push_back(1 + table.P(from, candidate));
  }
  const int expect = AllIds(target)[rng_b.WeightedPick(weights)];
  EXPECT_EQ(table.Choose(&rng_a, from), expect);
}

}  // namespace
}  // namespace healer
