// Kernel core: fd table, guest memory, coverage, bug registry, dispatch.

#include <gtest/gtest.h>

#include "src/kernel/coverage.h"
#include "tests/test_util.h"

namespace healer {
namespace {

// ---- GuestMem ----

TEST(GuestMemTest, AllocAndRoundTrip) {
  GuestMem mem;
  const uint64_t addr = mem.AllocData(16);
  ASSERT_NE(addr, 0u);
  EXPECT_GE(addr, GuestMem::kDataBase);
  const uint64_t value = 0xdeadbeefcafef00dULL;
  ASSERT_TRUE(mem.Write64(addr, value));
  uint64_t out = 0;
  ASSERT_TRUE(mem.Read64(addr, &out));
  EXPECT_EQ(out, value);
}

TEST(GuestMemTest, AllocationsAligned) {
  GuestMem mem;
  const uint64_t a = mem.AllocData(3);
  const uint64_t b = mem.AllocData(5);
  EXPECT_EQ(a % 8, 0u);
  EXPECT_EQ(b % 8, 0u);
  EXPECT_EQ(b - a, 8u);
}

TEST(GuestMemTest, RejectsOutOfWindowAccess) {
  GuestMem mem;
  uint64_t out;
  EXPECT_FALSE(mem.Read64(0x1000, &out));            // Below window.
  EXPECT_FALSE(mem.Read64(GuestMem::kVmaBase, &out));  // VMA is unbacked.
  EXPECT_FALSE(
      mem.Read64(GuestMem::kDataBase + GuestMem::kDataSize - 4, &out));
  EXPECT_FALSE(mem.Write64(~0ull - 4, 1));  // Overflow.
}

TEST(GuestMemTest, ResetClearsUsedBytes) {
  GuestMem mem;
  const uint64_t addr = mem.AllocData(8);
  mem.Write64(addr, 0x1234);
  mem.Reset();
  const uint64_t addr2 = mem.AllocData(8);
  EXPECT_EQ(addr2, addr);  // Bump allocator restarted.
  uint64_t out = 99;
  ASSERT_TRUE(mem.Read64(addr2, &out));
  EXPECT_EQ(out, 0u);  // Cleared.
}

TEST(GuestMemTest, ReadStringStopsAtNul) {
  GuestMem mem;
  const char text[] = "hello\0world";
  const uint64_t addr = mem.AllocData(sizeof(text));
  mem.Write(addr, text, sizeof(text));
  std::string out;
  ASSERT_TRUE(mem.ReadString(addr, 64, &out));
  EXPECT_EQ(out, "hello");
}

TEST(GuestMemTest, ReadStringFailsUnterminated) {
  GuestMem mem;
  const uint64_t addr = mem.AllocData(4);
  mem.Write(addr, "abcd", 4);
  std::string out;
  EXPECT_FALSE(mem.ReadString(addr, 4, &out));
}

TEST(GuestMemTest, ExhaustionReturnsZero) {
  GuestMem mem;
  EXPECT_EQ(mem.AllocData(GuestMem::kDataSize + 8), 0u);
  // But the full window is allocatable.
  EXPECT_NE(mem.AllocData(GuestMem::kDataSize - 64), 0u);
}

// ---- Coverage ----

TEST(CoverageTest, DistinctSitesYieldDistinctEdges) {
  CallCoverage cov;
  cov.Reset();
  cov.HitBlock(1);
  cov.HitBlock(2);
  EXPECT_EQ(cov.NumEdges(), 2u);  // 0->1 and 1->2.
}

TEST(CoverageTest, SignalOrderIndependentForSameEdgeSet) {
  CallCoverage a;
  CallCoverage b;
  a.Reset();
  a.HitBlock(1);
  a.HitBlock(2);
  b.Reset();
  b.HitBlock(1);
  b.HitBlock(2);
  EXPECT_EQ(a.signal(), b.signal());
}

TEST(CoverageTest, DifferentPathsDifferentSignals) {
  CallCoverage a;
  CallCoverage b;
  a.Reset();
  a.HitBlock(1);
  a.HitBlock(2);
  b.Reset();
  b.HitBlock(1);
  b.HitBlock(3);
  EXPECT_NE(a.signal(), b.signal());
}

TEST(CoverageTest, ResetClearsState) {
  CallCoverage cov;
  cov.Reset();
  cov.HitBlock(7);
  const uint64_t sig1 = cov.signal();
  cov.Reset();
  EXPECT_EQ(cov.NumEdges(), 0u);
  cov.HitBlock(7);
  EXPECT_EQ(cov.signal(), sig1);  // Deterministic after reset.
}

TEST(CoverageTest, SiteIdsStable) {
  EXPECT_EQ(MakeCovSiteId("a.cc", 10), MakeCovSiteId("a.cc", 10));
  EXPECT_NE(MakeCovSiteId("a.cc", 10), MakeCovSiteId("a.cc", 11));
  EXPECT_NE(MakeCovSiteId("a.cc", 10), MakeCovSiteId("b.cc", 10));
}

// ---- Bug registry ----

TEST(BugRegistryTest, CompleteAndConsistent) {
  const auto& bugs = AllBugs();
  ASSERT_EQ(bugs.size(), static_cast<size_t>(BugId::kNumBugs));
  for (size_t i = 0; i < bugs.size(); ++i) {
    EXPECT_EQ(static_cast<size_t>(bugs[i].id), i);
    EXPECT_NE(bugs[i].title, nullptr);
    EXPECT_GE(bugs[i].repro_len, 1);
    EXPECT_LE(static_cast<int>(bugs[i].lo), static_cast<int>(bugs[i].hi));
  }
}

TEST(BugRegistryTest, VersionLiveness) {
  EXPECT_TRUE(BugLiveIn(BugId::kVcsWriteOob, KernelVersion::kV4_19));
  EXPECT_FALSE(BugLiveIn(BugId::kVcsWriteOob, KernelVersion::kV5_11));
  EXPECT_TRUE(
      BugLiveIn(BugId::kConsoleUnlockDeadlock, KernelVersion::kV5_11));
  EXPECT_FALSE(
      BugLiveIn(BugId::kConsoleUnlockDeadlock, KernelVersion::kV4_19));
  // The case-study bug "existed for 12 years": live across the range.
  EXPECT_TRUE(BugLiveIn(BugId::kFillThreadCoreUninit, KernelVersion::kV4_19));
  EXPECT_TRUE(BugLiveIn(BugId::kFillThreadCoreUninit, KernelVersion::kV5_6));
}

TEST(BugRegistryTest, Table4BugsAreDeep) {
  for (BugId id : {BugId::kConsoleUnlockDeadlock, BugId::kPutDeviceNullDeref,
                   BugId::kVividStopGenerating}) {
    EXPECT_TRUE(GetBugInfo(id).deep);
    EXPECT_GE(GetBugInfo(id).repro_len, 5);
  }
}

// ---- Kernel fd table & dispatch ----

TEST(KernelTest, FdAllocationStartsAtThree) {
  KernelHarness h;
  const int64_t fd = h.Call("epoll_create1", 0);
  EXPECT_EQ(fd, 3);
  const int64_t fd2 = h.Call("epoll_create1", 0);
  EXPECT_EQ(fd2, 4);
}

TEST(KernelTest, CloseFreesAndReusesSlots) {
  KernelHarness h;
  const int64_t fd = h.Call("epoll_create1", 0);
  EXPECT_EQ(h.Call("close", static_cast<uint64_t>(fd)), 0);
  EXPECT_EQ(h.Call("close", static_cast<uint64_t>(fd)), -kEBADF);
  EXPECT_EQ(h.Call("epoll_create1", 0), fd);  // Lowest free slot.
}

TEST(KernelTest, BadFdValues) {
  KernelHarness h;
  EXPECT_EQ(h.Call("close", static_cast<uint64_t>(-1)), -kEBADF);
  EXPECT_EQ(h.Call("close", 0), -kEBADF);    // Reserved std fd.
  EXPECT_EQ(h.Call("close", 9999), -kEBADF);
}

TEST(KernelTest, UnknownSyscallIsEnosys) {
  KernelHarness h;
  EXPECT_EQ(h.Call("not_a_syscall"), -kENOSYS);
}

TEST(KernelTest, VersionGateReturnsEnosys) {
  KernelHarness h(KernelVersion::kV4_19);
  EXPECT_EQ(h.Call("io_uring_setup", 8, h.OutBuf(4)), -kENOSYS);
}

TEST(KernelTest, CrashStopsSubsequentCalls) {
  KernelHarness h(KernelVersion::kV4_19);
  // fb_var_to_videomode divide error: pixclock == 0.
  const int64_t fd = h.Call("openat$fb0", h.StageString("/dev/fb0"), 0);
  ASSERT_GE(fd, 0);
  const uint32_t var[4] = {800, 600, 32, 0};
  EXPECT_EQ(h.Call("ioctl$FBIOPUT_VSCREENINFO", static_cast<uint64_t>(fd),
                   0x4601, h.Stage(var, sizeof(var))),
            -kEIO);
  ASSERT_TRUE(h.kernel().crashed());
  EXPECT_EQ(h.kernel().crash().bug, BugId::kFbVarToVideomodeDivide);
  // Kernel is down: further syscalls fail.
  EXPECT_EQ(h.Call("epoll_create1", 0), -kEIO);
}

TEST(KernelTest, TriggerBugRespectsVersion) {
  KernelHarness h(KernelVersion::kV5_11);  // Bug only live in 4.19.
  const int64_t fd = h.Call("openat$fb0", h.StageString("/dev/fb0"), 0);
  ASSERT_GE(fd, 0);
  const uint32_t var[4] = {800, 600, 32, 0};
  EXPECT_EQ(h.Call("ioctl$FBIOPUT_VSCREENINFO", static_cast<uint64_t>(fd),
                   0x4601, h.Stage(var, sizeof(var))),
            -kEINVAL);
  EXPECT_FALSE(h.kernel().crashed());
}

TEST(KernelTest, AllocFailureInjection) {
  KernelConfig config = KernelConfig::ForVersion(KernelVersion::kV5_6);
  config.fail_nth_alloc = 1;  // Every modelled allocation fails.
  Kernel kernel(config);
  EXPECT_FALSE(kernel.AllocAttempt());
  config.fail_nth_alloc = 0;
  Kernel kernel2(config);
  EXPECT_TRUE(kernel2.AllocAttempt());
}

TEST(KernelTest, TickAdvancesPerSyscall) {
  KernelHarness h;
  EXPECT_EQ(h.kernel().tick(), 0u);
  h.Call("sync");
  h.Call("sync");
  EXPECT_EQ(h.kernel().tick(), 2u);
}

}  // namespace
}  // namespace healer
