// Header-to-description converter (the paper's Section 8 future-work
// feature): structural conversion of simplified C headers into HealLang
// that compiles against Target::CompileSource.

#include <gtest/gtest.h>

#include "src/syzlang/header_gen.h"
#include "src/syzlang/target.h"

namespace healer {
namespace {

TEST(HeaderGenTest, ConvertsDefinesToConsts) {
  auto out = ConvertHeaderToDescriptions("#define O_APPEND 0x400\n");
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_NE(out->find("const O_APPEND = 0x400"), std::string::npos);
}

TEST(HeaderGenTest, ConvertsPrototypeWithScalars) {
  auto out = ConvertHeaderToDescriptions(
      "long dummy_call(int mode, unsigned long len, short tag);\n");
  ASSERT_TRUE(out.ok());
  EXPECT_NE(out->find("dummy_call(mode int32, len int64, tag int16)"),
            std::string::npos);
}

TEST(HeaderGenTest, FdHeuristicMapsToResource) {
  auto out = ConvertHeaderToDescriptions("int do_sync(int fd);\n");
  ASSERT_TRUE(out.ok());
  EXPECT_NE(out->find("do_sync(fd fd)"), std::string::npos);
}

TEST(HeaderGenTest, ConstCharPtrIsInString) {
  auto out =
      ConvertHeaderToDescriptions("int set_name(const char *name);\n");
  ASSERT_TRUE(out.ok());
  EXPECT_NE(out->find("set_name(name ptr[in, string])"), std::string::npos);
}

TEST(HeaderGenTest, MutableBufferIsOut) {
  auto out = ConvertHeaderToDescriptions(
      "long read_into(int fd, char *buf, size_t n);\n");
  ASSERT_TRUE(out.ok());
  EXPECT_NE(out->find("buf ptr[out, buffer[out, 0:64]]"), std::string::npos);
  EXPECT_NE(out->find("n intptr"), std::string::npos);
}

TEST(HeaderGenTest, StructsConvertAndAreReferenced) {
  const char header[] =
      "struct my_args {\n"
      "  unsigned int flags;\n"
      "  long value;\n"
      "};\n"
      "int apply(struct my_args *args);\n";
  auto out = ConvertHeaderToDescriptions(header);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_NE(out->find("struct my_args {"), std::string::npos);
  EXPECT_NE(out->find("flags int32"), std::string::npos);
  EXPECT_NE(out->find("apply(args ptr[inout, my_args])"), std::string::npos);
}

TEST(HeaderGenTest, OpenLikeNamesReturnFd) {
  auto out = ConvertHeaderToDescriptions(
      "int dev_open(const char *path);\nint dev_close(int fd);\n");
  ASSERT_TRUE(out.ok());
  EXPECT_NE(out->find("dev_open(path ptr[in, string]) fd"),
            std::string::npos);
  // Non-creating calls get no return resource.
  EXPECT_NE(out->find("dev_close(fd fd)\n"), std::string::npos);
}

TEST(HeaderGenTest, UnknownStructReferenceFails) {
  auto out = ConvertHeaderToDescriptions("int f(struct ghost *g);\n");
  EXPECT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kParseError);
}

TEST(HeaderGenTest, UnmappableTypeFails) {
  auto out = ConvertHeaderToDescriptions("int f(double x);\n");
  EXPECT_FALSE(out.ok());
}

TEST(HeaderGenTest, SkipsCommentsAndOtherPreprocessor) {
  const char header[] =
      "// a comment\n"
      "#include <stdint.h>\n"
      "#define FLAG 1\n"
      "int g(int fd);\n";
  auto out = ConvertHeaderToDescriptions(header);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(out->find("stdint"), std::string::npos);
}

TEST(HeaderGenTest, OutputCompilesAsTarget) {
  // End-to-end: the paper's goal — generated text is a valid description
  // set that the compiler accepts and the fuzzer could use.
  const char header[] =
      "#define DUMMY_MAGIC 0xabc\n"
      "struct dummy_req {\n"
      "  unsigned int op;\n"
      "  long arg;\n"
      "};\n"
      "int dummy_open(const char *path);\n"
      "int dummy_ctl(int fd, struct dummy_req *req);\n"
      "long dummy_write(int fd, char *buf, size_t n);\n";
  auto text = ConvertHeaderToDescriptions(header);
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  auto target = Target::CompileSource(*text, "generated");
  ASSERT_TRUE(target.ok()) << target.status().ToString() << "\n" << *text;
  EXPECT_EQ(target->NumSyscalls(), 3u);
  const Syscall* ctl = target->FindSyscall("dummy_ctl");
  ASSERT_NE(ctl, nullptr);
  // dummy_open produces fd; dummy_ctl consumes it.
  EXPECT_FALSE(target->ProducersOf(target->FindResource("fd")).empty());
  EXPECT_EQ(ctl->consumed_resources.size(), 1u);
}

TEST(HeaderGenTest, NoFdResourceWhenDisabled) {
  HeaderGenOptions options;
  options.emit_fd_resource = false;
  auto out = ConvertHeaderToDescriptions("#define X 1\n", options);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->find("resource fd"), std::string::npos);
}

}  // namespace
}  // namespace healer
