// Shared helpers for the HEALER test suite.

#ifndef TESTS_TEST_UTIL_H_
#define TESTS_TEST_UTIL_H_

#include <cstring>
#include <string>
#include <vector>

#include "src/kernel/errno.h"
#include "src/kernel/kernel.h"
#include "src/syzlang/builtin_descs.h"

namespace healer {

// Drives a Kernel directly by syscall name, with helpers for staging
// argument data in guest memory. Gives subsystem tests precise control over
// raw argument words.
class KernelHarness {
 public:
  explicit KernelHarness(KernelVersion version = KernelVersion::kV5_11)
      : kernel_(KernelConfig::ForVersion(version)) {}

  explicit KernelHarness(const KernelConfig& config) : kernel_(config) {}

  Kernel& kernel() { return kernel_; }

  // Copies `data` into fresh guest memory; returns its guest address.
  uint64_t Stage(const void* data, uint64_t len) {
    const uint64_t addr = kernel_.mem().AllocData(len);
    kernel_.mem().Write(addr, data, len);
    return addr;
  }

  uint64_t StageString(const std::string& s) {
    return Stage(s.c_str(), s.size() + 1);
  }

  uint64_t StageU64(uint64_t value) { return Stage(&value, 8); }

  uint64_t StageU32(uint32_t value) { return Stage(&value, 4); }

  // Scratch output buffer of `len` zero bytes.
  uint64_t OutBuf(uint64_t len) {
    std::vector<uint8_t> zeros(len, 0);
    return Stage(zeros.data(), len);
  }

  // Executes `name` with up to 6 argument words.
  int64_t Call(const std::string& name, uint64_t a0 = 0, uint64_t a1 = 0,
               uint64_t a2 = 0, uint64_t a3 = 0, uint64_t a4 = 0,
               uint64_t a5 = 0) {
    const uint64_t args[6] = {a0, a1, a2, a3, a4, a5};
    return kernel_.ExecByName(name, args);
  }

  // Convenience: sockaddr_in {family=2, port, addr=0}.
  uint64_t StageSockaddr(uint16_t port) {
    uint8_t raw[8] = {2, 0, 0, 0, 0, 0, 0, 0};
    raw[2] = static_cast<uint8_t>(port & 0xff);
    raw[3] = static_cast<uint8_t>(port >> 8);
    return Stage(raw, sizeof(raw));
  }

 private:
  Kernel kernel_;
};

}  // namespace healer

#endif  // TESTS_TEST_UTIL_H_
