// Hot-path memory discipline (DESIGN.md §11): ProgArena unit behavior, the
// arena-vs-heap draw-identity property (same seed → byte-identical programs
// and identical coverage, whichever allocator backs the Arg nodes), and the
// HCORP1 mmap-able corpus container round trip.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "src/base/bitmap.h"
#include "src/base/rng.h"
#include "src/exec/executor.h"
#include "src/fuzz/corpus_io.h"
#include "src/fuzz/prog_builder.h"
#include "src/kernel/coverage.h"
#include "src/prog/arena.h"
#include "src/prog/prog.h"
#include "src/prog/serialize.h"
#include "src/syzlang/builtin_descs.h"

namespace healer {
namespace {

std::vector<int> AllIds() {
  std::vector<int> ids;
  for (const auto& call : BuiltinTarget().syscalls()) {
    ids.push_back(call->id);
  }
  return ids;
}

// ---- ProgArena ----

TEST(ProgArenaTest, AllocationsAreAligned) {
  ProgArena arena;
  for (size_t align : {1, 2, 8, 16, 64}) {
    void* p = arena.Allocate(3, align);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % align, 0u) << align;
  }
  EXPECT_GE(arena.bytes_allocated(), 5 * 3u);
  EXPECT_EQ(arena.chunk_count(), 1u);
}

TEST(ProgArenaTest, ChunksGrowMonotonically) {
  ProgArena arena;
  arena.Allocate(1, 1);
  EXPECT_EQ(arena.bytes_reserved(), ProgArena::kInitialChunkBytes);
  // Exhaust the first chunk; the arena must add chunks, never move old ones.
  void* first = arena.Allocate(64, 8);
  size_t total = ProgArena::kInitialChunkBytes;
  while (arena.chunk_count() < 3) {
    arena.Allocate(1024, 8);
    total += 1024;
  }
  EXPECT_GE(arena.bytes_reserved(), total);
  // The early allocation is still addressable (write through it).
  std::memset(first, 0xab, 64);
  // An allocation larger than any chunk cap still succeeds.
  void* big = arena.Allocate(ProgArena::kMaxChunkBytes + 512, 16);
  ASSERT_NE(big, nullptr);
  std::memset(big, 0, ProgArena::kMaxChunkBytes + 512);
}

TEST(ProgArenaTest, ResetRetainsChunksAndReusesStorage) {
  ProgArena arena;
  void* first = arena.Allocate(256, 16);
  for (int i = 0; i < 1000; ++i) {
    arena.Allocate(64, 8);
  }
  const size_t reserved = arena.bytes_reserved();
  const size_t chunks = arena.chunk_count();
  arena.Reset();
  EXPECT_EQ(arena.bytes_allocated(), 0u);
  EXPECT_EQ(arena.bytes_reserved(), reserved);
  EXPECT_EQ(arena.chunk_count(), chunks);
  EXPECT_EQ(arena.reset_count(), 1u);
  // Steady state: the same allocation pattern reuses the same storage and
  // adds no chunks — the "zero mallocs per iteration" property the fuzzer
  // hot loop relies on.
  EXPECT_EQ(arena.Allocate(256, 16), first);
  for (int i = 0; i < 1000; ++i) {
    arena.Allocate(64, 8);
  }
  EXPECT_EQ(arena.bytes_reserved(), reserved);
  EXPECT_EQ(arena.chunk_count(), chunks);
}

TEST(ProgArenaTest, FactoriesTagArenaOwnership) {
  ProgArena arena;
  const Type* type = BuiltinTarget().syscalls().front()->args.empty()
                         ? nullptr
                         : BuiltinTarget().syscalls().front()->args[0].type;
  ArgPtr heap_arg = MakeConstant(type, 7);
  EXPECT_FALSE(heap_arg->arena_owned);
  ArgPtr arena_arg = MakeConstant(type, 7, &arena);
  EXPECT_TRUE(arena_arg->arena_owned);
  EXPECT_GE(arena.bytes_allocated(), sizeof(Arg));
  // Dropping an arena-backed node with heap members (data vector) must free
  // them via ~Arg() — ASan in check.sh verifies no leak here.
  ArgPtr data_arg =
      MakeData(type, std::vector<uint8_t>(1024, 0x5a), &arena);
  EXPECT_TRUE(data_arg->arena_owned);
  data_arg.reset();
  arena.Reset();
}

// ---- arena-vs-heap equivalence ----

// Runs the generate/mutate loop twice from the same seed — once heap-backed,
// once arena-backed with a per-iteration Reset — and requires byte-identical
// serializations plus identical executor coverage. This is the property that
// lets the fuzzers switch allocators without perturbing a single draw.
TEST(ArenaHeapEquivalenceTest, SameSeedSameProgramsSameCoverage) {
  const Target& target = BuiltinTarget();
  const std::vector<int> ids = AllIds();

  Rng heap_rng(20260808);
  Rng arena_rng(20260808);
  ProgBuilder heap_builder(target, ids, &heap_rng);
  ProgBuilder arena_builder(target, ids, &arena_rng);
  ProgArena arena;
  arena_builder.set_arena(&arena);

  const auto heap_choose = [&](const std::vector<int>&) {
    return ids[heap_rng.Below(ids.size())];
  };
  const auto arena_choose = [&](const std::vector<int>&) {
    return ids[arena_rng.Below(ids.size())];
  };

  Executor heap_exec(target, KernelConfig::ForVersion(KernelVersion::kV5_11));
  Executor arena_exec(target, KernelConfig::ForVersion(KernelVersion::kV5_11));
  Bitmap heap_cov(CallCoverage::kMapBits);
  Bitmap arena_cov(CallCoverage::kMapBits);

  for (int iter = 0; iter < 60; ++iter) {
    arena.Reset();  // Mirrors Fuzzer::Step / parallel Worker::Run.
    Prog heap_prog = heap_builder.Generate(heap_choose, 2 + iter % 5);
    Prog arena_prog = arena_builder.Generate(arena_choose, 2 + iter % 5);
    if (iter % 3 == 1) {
      heap_builder.MutateArgs(&heap_prog);
      arena_builder.MutateArgs(&arena_prog);
    } else if (iter % 3 == 2) {
      heap_builder.MutateInsert(&heap_prog, heap_choose);
      arena_builder.MutateInsert(&arena_prog, arena_choose);
    }
    ASSERT_EQ(SerializeProg(heap_prog), SerializeProg(arena_prog))
        << "draw divergence at iteration " << iter;
    heap_exec.Run(heap_prog, &heap_cov);
    arena_exec.Run(arena_prog, &arena_cov);
  }
  EXPECT_EQ(heap_cov.Count(), arena_cov.Count());
  EXPECT_EQ(heap_cov.Hash(), arena_cov.Hash());
  // Both RNGs must have consumed exactly the same stream.
  EXPECT_EQ(heap_rng.Next(), arena_rng.Next());
}

TEST(ArenaHeapEquivalenceTest, HeapCloneSurvivesArenaReset) {
  const Target& target = BuiltinTarget();
  const std::vector<int> ids = AllIds();
  Rng rng(4242);
  ProgBuilder builder(target, ids, &rng);
  ProgArena arena;
  builder.set_arena(&arena);
  const auto choose = [&](const std::vector<int>&) {
    return ids[rng.Below(ids.size())];
  };
  Prog candidate = builder.Generate(choose, 6);
  const std::vector<uint8_t> bytes = SerializeProg(candidate);

  // Corpus admission path: deep-copy to heap before the arena rewinds.
  Prog survivor = candidate.Clone();
  for (const Call& call : survivor.calls()) {
    ForEachArg(call, [](const Arg& arg) { EXPECT_FALSE(arg.arena_owned); });
  }
  candidate = Prog();  // Drop arena-backed nodes before invalidating them.
  arena.Reset();
  // Scribble over the arena so dangling pointers would be caught loudly.
  for (int i = 0; i < 4096; ++i) {
    arena.Allocate(16, 8);
  }
  EXPECT_EQ(SerializeProg(survivor), bytes);
  EXPECT_TRUE(survivor.Validate().ok());
}

TEST(ArenaHeapEquivalenceTest, CloneIntoArenaMatchesHeapClone) {
  const Target& target = BuiltinTarget();
  const std::vector<int> ids = AllIds();
  Rng rng(99);
  ProgBuilder builder(target, ids, &rng);
  const auto choose = [&](const std::vector<int>&) {
    return ids[rng.Below(ids.size())];
  };
  const Prog original = builder.Generate(choose, 8);
  ProgArena arena;
  Prog arena_copy = original.CloneInto(&arena);
  EXPECT_EQ(SerializeProg(arena_copy), SerializeProg(original));
  size_t arena_nodes = 0;
  for (const Call& call : arena_copy.calls()) {
    ForEachArg(call, [&](const Arg& arg) {
      EXPECT_TRUE(arg.arena_owned);
      ++arena_nodes;
    });
  }
  EXPECT_GT(arena_nodes, 0u);
  arena_copy = Prog();
  arena.Reset();
}

// ---- HCORP1 round trip ----

std::vector<Prog> SampleCorpus(size_t count, uint64_t seed) {
  const Target& target = BuiltinTarget();
  const std::vector<int> ids = AllIds();
  Rng rng(seed);
  ProgBuilder builder(target, ids, &rng);
  const auto choose = [&](const std::vector<int>&) {
    return ids[rng.Below(ids.size())];
  };
  std::vector<Prog> progs;
  while (progs.size() < count) {
    Prog prog = builder.Generate(choose, 1 + progs.size() % 7);
    if (!prog.empty() && prog.Validate().ok()) {
      progs.push_back(std::move(prog));
    }
  }
  return progs;
}

std::vector<std::vector<uint8_t>> Serialized(const std::vector<Prog>& progs) {
  std::vector<std::vector<uint8_t>> out;
  out.reserve(progs.size());
  for (const Prog& prog : progs) {
    out.push_back(SerializeProg(prog));
  }
  return out;
}

std::vector<uint8_t> ReadFileBytes(const std::string& path) {
  std::vector<uint8_t> bytes;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return bytes;
  }
  std::fseek(f, 0, SEEK_END);
  bytes.resize(static_cast<size_t>(std::ftell(f)));
  std::rewind(f);
  if (!bytes.empty() && std::fread(bytes.data(), bytes.size(), 1, f) != 1) {
    bytes.clear();
  }
  std::fclose(f);
  return bytes;
}

TEST(Hcorp1Test, RoundTripsByteIdentically) {
  const std::vector<Prog> corpus = SampleCorpus(24, 7);
  const std::string path = "/tmp/healer_hcorp1_roundtrip.bin";
  ASSERT_TRUE(SaveProgs(path, corpus, CorpusFormat::kHcorp1).ok());

  size_t skipped = 77;
  Result<std::vector<Prog>> loaded =
      LoadProgs(path, BuiltinTarget(), &skipped);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(skipped, 0u);
  ASSERT_EQ(loaded->size(), corpus.size());
  EXPECT_EQ(Serialized(*loaded), Serialized(corpus));

  // Re-saving the loaded corpus reproduces the file byte for byte — the
  // container is a deterministic function of the program sequence.
  const std::string path2 = "/tmp/healer_hcorp1_roundtrip2.bin";
  ASSERT_TRUE(SaveProgs(path2, *loaded, CorpusFormat::kHcorp1).ok());
  EXPECT_EQ(ReadFileBytes(path), ReadFileBytes(path2));
}

TEST(Hcorp1Test, HeaderIsPageAlignedAndChecksummed) {
  const std::vector<Prog> corpus = SampleCorpus(10, 11);
  const std::string path = "/tmp/healer_hcorp1_header.bin";
  ASSERT_TRUE(SaveProgs(path, corpus, CorpusFormat::kHcorp1).ok());
  const std::vector<uint8_t> bytes = ReadFileBytes(path);
  ASSERT_GE(bytes.size(), 64u);
  EXPECT_EQ(std::memcmp(bytes.data(), "HCORP1\n\0", 8), 0);
  uint64_t count;
  uint64_t payload_off;
  std::memcpy(&count, bytes.data() + 16, 8);
  std::memcpy(&payload_off, bytes.data() + 32, 8);
  EXPECT_EQ(count, corpus.size());
  EXPECT_EQ(payload_off % 4096, 0u);
  EXPECT_GE(bytes.size(), payload_off);
}

TEST(Hcorp1Test, AutoDetectionLoadsBothFormatsIdentically) {
  const std::vector<Prog> corpus = SampleCorpus(16, 23);
  const std::string legacy_path = "/tmp/healer_corpus_fmt_legacy.bin";
  const std::string hcorp_path = "/tmp/healer_corpus_fmt_hcorp1.bin";
  ASSERT_TRUE(SaveProgs(legacy_path, corpus, CorpusFormat::kLegacy).ok());
  ASSERT_TRUE(SaveProgs(hcorp_path, corpus, CorpusFormat::kHcorp1).ok());
  // Same LoadProgs call, no format hint: the magic probe must route each
  // file to its decoder.
  Result<std::vector<Prog>> from_legacy =
      LoadProgs(legacy_path, BuiltinTarget(), nullptr);
  Result<std::vector<Prog>> from_hcorp =
      LoadProgs(hcorp_path, BuiltinTarget(), nullptr);
  ASSERT_TRUE(from_legacy.ok()) << from_legacy.status().ToString();
  ASSERT_TRUE(from_hcorp.ok()) << from_hcorp.status().ToString();
  EXPECT_EQ(Serialized(*from_legacy), Serialized(*from_hcorp));
  EXPECT_EQ(Serialized(*from_hcorp), Serialized(corpus));
}

TEST(Hcorp1Test, EmptyCorpusRoundTrips) {
  const std::string path = "/tmp/healer_hcorp1_empty.bin";
  ASSERT_TRUE(SaveProgs(path, {}, CorpusFormat::kHcorp1).ok());
  Result<std::vector<Prog>> loaded =
      LoadProgs(path, BuiltinTarget(), nullptr);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(loaded->empty());
}

TEST(Hcorp1Test, FormatNamesParseAndPrint) {
  EXPECT_STREQ(CorpusFormatName(CorpusFormat::kLegacy), "legacy");
  EXPECT_STREQ(CorpusFormatName(CorpusFormat::kHcorp1), "hcorp1");
  Result<CorpusFormat> legacy = ParseCorpusFormat("legacy");
  ASSERT_TRUE(legacy.ok());
  EXPECT_EQ(*legacy, CorpusFormat::kLegacy);
  Result<CorpusFormat> hcorp = ParseCorpusFormat("hcorp1");
  ASSERT_TRUE(hcorp.ok());
  EXPECT_EQ(*hcorp, CorpusFormat::kHcorp1);
  EXPECT_FALSE(ParseCorpusFormat("hcorp2").ok());
}

}  // namespace
}  // namespace healer
