// Fault-injection framework: deterministic injector streams, typed failure
// surfaces on GuestVm, feedback-isolation guarantees (a faulted execution
// never touches the coverage bitmap or the relation table), recovery-policy
// accounting, and campaign-level properties randomized over many seeds.

#include <gtest/gtest.h>

#include "src/base/rng.h"
#include "src/fuzz/campaign.h"
#include "src/fuzz/templates.h"
#include "src/syzlang/builtin_descs.h"
#include "src/vm/fault_plan.h"
#include "src/vm/vm_pool.h"

namespace healer {
namespace {

std::vector<int> AllIds(const Target& target) {
  std::vector<int> ids;
  for (const auto& call : target.syscalls()) {
    ids.push_back(call->id);
  }
  return ids;
}

Prog Chain(const std::vector<std::string>& names, uint64_t seed = 1) {
  const Target& target = BuiltinTarget();
  Rng rng(seed);
  return BuildChain(target, AllIds(target), names, &rng);
}

FaultPlan SingleFault(FaultKind kind, double rate = 1.0) {
  FaultPlan plan;
  plan.set_rate(kind, rate);
  return plan;
}

std::unique_ptr<GuestVm> MakeVm(SimClock* clock, const FaultPlan& plan,
                                uint64_t seed = 7) {
  return std::make_unique<GuestVm>(
      BuiltinTarget(), KernelConfig::ForVersion(KernelVersion::kV5_11), clock,
      VmLatencyModel(), plan, seed);
}

// ---- FaultPlan / FaultInjector ----

TEST(FaultPlanTest, EmptyAndUniform) {
  FaultPlan plan;
  EXPECT_TRUE(plan.empty());
  plan.set_rate(FaultKind::kSlowVm, 0.5);
  EXPECT_FALSE(plan.empty());
  EXPECT_FALSE(FaultPlan::Uniform(0.1).empty());
  EXPECT_TRUE(FaultPlan::Uniform(0.0).empty());
}

TEST(FaultPlanTest, ParseSpec) {
  Result<FaultPlan> plan = ParseFaultPlan("crash=0.01,timeout=0.5,boot=1");
  ASSERT_TRUE(plan.ok());
  EXPECT_DOUBLE_EQ(plan->rate(FaultKind::kVmCrash), 0.01);
  EXPECT_DOUBLE_EQ(plan->rate(FaultKind::kExecTimeout), 0.5);
  EXPECT_DOUBLE_EQ(plan->rate(FaultKind::kBootFailure), 1.0);
  EXPECT_DOUBLE_EQ(plan->rate(FaultKind::kSlowVm), 0.0);

  EXPECT_FALSE(ParseFaultPlan("nosuch=0.1").ok());
  EXPECT_FALSE(ParseFaultPlan("crash").ok());
  EXPECT_FALSE(ParseFaultPlan("crash=2.0").ok());
  EXPECT_FALSE(ParseFaultPlan("crash=x").ok());
  EXPECT_TRUE(ParseFaultPlan("").ok());  // Empty spec = fault-free plan.
}

TEST(FaultInjectorTest, SameSeedSameDecisionStream) {
  const FaultPlan plan = FaultPlan::Uniform(0.2);
  FaultInjector a(plan, 99);
  FaultInjector b(plan, 99);
  for (int i = 0; i < 500; ++i) {
    EXPECT_EQ(a.Draw(), b.Draw()) << "diverged at draw " << i;
  }
  EXPECT_EQ(a.injected(), b.injected());
  uint64_t total = 0;
  for (uint64_t n : a.injected()) total += n;
  EXPECT_GT(total, 0u);
}

TEST(FaultInjectorTest, DisabledInjectorNeverFires) {
  FaultInjector injector(FaultPlan(), 1);
  EXPECT_FALSE(injector.enabled());
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(injector.Draw(), std::nullopt);
  }
}

// ---- GuestVm typed failures ----

TEST(GuestVmFaultTest, VmCrashSurfacesVmLostAndMergesNothing) {
  SimClock clock;
  auto vm = MakeVm(&clock, SingleFault(FaultKind::kVmCrash));
  Bitmap coverage(CallCoverage::kMapBits);
  const uint64_t checksum = coverage.Hash();
  const ExecResult result = vm->Exec(Chain({"sync"}), &coverage);
  EXPECT_EQ(result.failure, ExecFailure::kVmLost);
  EXPECT_TRUE(result.Failed());
  EXPECT_TRUE(result.calls.empty());
  EXPECT_EQ(coverage.Hash(), checksum);  // No feedback from a faulted exec.
  EXPECT_EQ(coverage.Count(), 0u);
  EXPECT_EQ(vm->execs(), 0u);
  EXPECT_EQ(vm->infra_faults(), 1u);
  EXPECT_EQ(vm->consecutive_failures(), 1u);
}

TEST(GuestVmFaultTest, TimeoutBurnsWatchdogBudget) {
  SimClock clock;
  auto vm = MakeVm(&clock, SingleFault(FaultKind::kExecTimeout));
  const ExecResult result = vm->Exec(Chain({"sync"}), nullptr);
  EXPECT_EQ(result.failure, ExecFailure::kTimeout);
  VmLatencyModel model;
  EXPECT_EQ(clock.now(), model.boot + model.exec_timeout);
}

TEST(GuestVmFaultTest, CorruptedWireBytesNeverMergeCoverage) {
  for (const FaultKind kind :
       {FaultKind::kTruncatedResult, FaultKind::kBitFlipResult}) {
    SimClock clock;
    auto vm = MakeVm(&clock, SingleFault(kind));
    Bitmap coverage(CallCoverage::kMapBits);
    const uint64_t checksum = coverage.Hash();
    const ExecResult result =
        vm->Exec(Chain({"memfd_create", "write$memfd"}), &coverage);
    EXPECT_EQ(result.failure, ExecFailure::kCorruptedReply);
    EXPECT_TRUE(result.calls.empty());
    EXPECT_EQ(coverage.Hash(), checksum);
  }
}

TEST(GuestVmFaultTest, SlowVmStillSucceedsButTakesLonger) {
  SimClock slow_clock;
  auto slow = MakeVm(&slow_clock, SingleFault(FaultKind::kSlowVm));
  SimClock fast_clock;
  auto fast = MakeVm(&fast_clock, FaultPlan());

  Prog prog = Chain({"sync"});
  Bitmap coverage(CallCoverage::kMapBits);
  const ExecResult result = slow->Exec(prog, &coverage);
  fast->Exec(prog.Clone(), nullptr);

  EXPECT_FALSE(result.Failed());
  EXPECT_FALSE(result.calls.empty());
  EXPECT_GT(coverage.Count(), 0u);  // A slow exec still reports feedback.
  VmLatencyModel model;
  EXPECT_EQ(slow_clock.now() - fast_clock.now(), model.slow_penalty);
  EXPECT_EQ(slow->consecutive_failures(), 0u);
}

TEST(GuestVmFaultTest, BootFailureLeavesVmDownUntilQuarantine) {
  SimClock clock;
  auto vm = MakeVm(&clock, SingleFault(FaultKind::kBootFailure));
  for (int i = 1; i <= 3; ++i) {
    const ExecResult result = vm->Exec(Chain({"sync"}), nullptr);
    EXPECT_EQ(result.failure, ExecFailure::kBootFailure);
    EXPECT_EQ(vm->consecutive_failures(), static_cast<uint64_t>(i));
  }
  vm->QuarantineReboot();
  EXPECT_EQ(vm->quarantines(), 1u);
  EXPECT_EQ(vm->consecutive_failures(), 0u);
}

TEST(GuestVmFaultTest, FaultFreePlanMatchesLegacyTiming) {
  SimClock clock;
  auto vm = MakeVm(&clock, FaultPlan());
  Prog prog = Chain({"memfd_create", "write$memfd"});
  vm->Exec(prog, nullptr);
  VmLatencyModel model;
  EXPECT_EQ(clock.now(), model.boot + model.exec_overhead + 2 * model.per_call);
}

// ---- Monitor health accounting ----

TEST(MonitorHealthTest, ReportsPerVmFaultCounters) {
  SimClock clock;
  VmPool pool(BuiltinTarget(), KernelConfig::ForVersion(KernelVersion::kV5_11),
              &clock, 2, VmLatencyModel(),
              SingleFault(FaultKind::kVmCrash), /*fault_seed=*/11);
  Monitor monitor(&pool);
  pool.vm(0).Exec(Chain({"sync"}), nullptr);

  const std::vector<VmHealth> health = monitor.HealthReport();
  ASSERT_EQ(health.size(), 2u);
  EXPECT_EQ(health[0].infra_faults, 1u);
  EXPECT_EQ(health[0].consecutive_failures, 1u);
  EXPECT_EQ(health[1].infra_faults, 0u);
  EXPECT_EQ(pool.TotalInfraFaults(), 1u);
  EXPECT_EQ(pool.InjectedStats().injected[static_cast<size_t>(
                FaultKind::kVmCrash)],
            1u);
}

// ---- Campaign-level properties ----

CampaignOptions SmallCampaign(uint64_t seed, const FaultPlan& plan) {
  CampaignOptions options;
  options.tool = ToolKind::kHealer;
  options.seed = seed;
  options.hours = 0.1;
  options.max_execs = 15;
  options.num_vms = 2;
  options.fault_plan = plan;
  return options;
}

FaultPlan RandomPlan(uint64_t seed) {
  Rng rng(seed * 0x9e3779b97f4a7c15ULL + 1);
  FaultPlan plan;
  for (size_t i = 0; i < kNumFaultKinds; ++i) {
    if (rng.Chance(1, 2)) {
      plan.rates[i] = static_cast<double>(rng.Below(25)) / 100.0;
    }
  }
  return plan;
}

// Any randomized plan, over >= 200 seeds: the campaign completes, the
// coverage curve stays monotone, and the fault accounting is consistent.
TEST(FaultPropertyTest, RandomPlansNeverCorruptCampaignState) {
  for (uint64_t seed = 1; seed <= 200; ++seed) {
    const FaultPlan plan = RandomPlan(seed);
    const CampaignResult result = RunCampaign(SmallCampaign(seed, plan));

    // The coverage curve never decreases: discarded feedback from faulted
    // executions must not perturb accumulated state.
    for (size_t i = 1; i < result.samples.size(); ++i) {
      ASSERT_GE(result.samples[i].branches, result.samples[i - 1].branches)
          << "coverage regressed, seed " << seed;
      ASSERT_GE(result.samples[i].execs, result.samples[i - 1].execs);
    }
    ASSERT_EQ(result.final_coverage, result.samples.back().branches);

    // Accounting invariants.
    const FaultStats& faults = result.faults;
    ASSERT_LE(faults.discarded + faults.recovered, faults.failed_execs)
        << "seed " << seed;
    ASSERT_LE(faults.retries, faults.failed_execs);
    ASSERT_GE(result.relations_total, result.relations_static);
    ASSERT_EQ(result.relations_total,
              result.relations_static + result.relations_dynamic);
  }
}

// Same (seed, plan) => bit-identical campaigns: coverage curve, corpus,
// crash list and fault/recovery counters.
TEST(FaultPropertyTest, SameSeedAndPlanAreBitIdentical) {
  for (uint64_t seed = 3; seed <= 60; seed += 3) {
    const FaultPlan plan = RandomPlan(seed + 1000);
    const CampaignOptions options = SmallCampaign(seed, plan);
    const CampaignResult a = RunCampaign(options);
    const CampaignResult b = RunCampaign(options);

    ASSERT_EQ(a.final_coverage, b.final_coverage) << "seed " << seed;
    ASSERT_EQ(a.fuzz_execs, b.fuzz_execs);
    ASSERT_EQ(a.total_execs, b.total_execs);
    ASSERT_EQ(a.corpus_size, b.corpus_size);
    ASSERT_EQ(a.crashes.size(), b.crashes.size());
    ASSERT_TRUE(a.faults == b.faults) << "fault counters diverged, seed "
                                      << seed;
    ASSERT_EQ(a.samples.size(), b.samples.size());
    for (size_t i = 0; i < a.samples.size(); ++i) {
      ASSERT_EQ(a.samples[i].hours, b.samples[i].hours);
      ASSERT_EQ(a.samples[i].branches, b.samples[i].branches);
      ASSERT_EQ(a.samples[i].execs, b.samples[i].execs);
      ASSERT_EQ(a.samples[i].relations, b.samples[i].relations);
    }
  }
}

// With a 100% VM-crash rate no execution ever completes, so no feedback of
// any kind may reach the campaign state: coverage, corpus and dynamically
// learned relations all stay empty and every program is discarded.
TEST(FaultPropertyTest, TotalFaultRateYieldsZeroFeedback) {
  CampaignOptions options = SmallCampaign(5, SingleFault(FaultKind::kVmCrash));
  options.hours = 1.0;
  options.max_execs = 10;
  const CampaignResult result = RunCampaign(options);

  EXPECT_EQ(result.final_coverage, 0u);
  EXPECT_EQ(result.corpus_size, 0u);
  EXPECT_EQ(result.relations_dynamic, 0u);
  EXPECT_TRUE(result.crashes.empty());
  EXPECT_EQ(result.faults.discarded, result.fuzz_execs);
  EXPECT_EQ(result.faults.recovered, 0u);
  EXPECT_GT(result.faults.quarantines, 0u);  // Streaks trip the threshold.
}

// Moderate fault pressure with recovery still makes progress.
TEST(FaultPropertyTest, RecoveryKeepsCampaignProductive) {
  CampaignOptions options = SmallCampaign(17, FaultPlan::Uniform(0.05));
  options.hours = 0.5;
  options.max_execs = 200;
  const CampaignResult result = RunCampaign(options);
  EXPECT_GT(result.final_coverage, 0u);
  EXPECT_GT(result.corpus_size, 0u);
  EXPECT_GT(result.faults.TotalInjected(), 0u);
  EXPECT_GT(result.faults.recovered, 0u);
}

}  // namespace
}  // namespace healer
