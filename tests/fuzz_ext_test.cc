// Extensions: crash reproduction, corpus persistence, guidance ablation
// modes, fault injection, and the multi-worker architecture.

#include <gtest/gtest.h>

#include <cstdio>

#include "src/exec/executor.h"
#include "src/fuzz/campaign.h"
#include "src/fuzz/corpus_io.h"
#include "src/fuzz/parallel.h"
#include "src/fuzz/report.h"
#include "src/fuzz/repro.h"
#include "src/fuzz/templates.h"
#include "src/syzlang/builtin_descs.h"
#include "tests/test_util.h"

namespace healer {
namespace {

std::vector<int> AllIds(const Target& target) {
  std::vector<int> ids;
  for (const auto& call : target.syscalls()) {
    ids.push_back(call->id);
  }
  return ids;
}

Prog Chain(const std::vector<std::string>& names, uint64_t seed = 1) {
  const Target& target = BuiltinTarget();
  Rng rng(seed);
  return BuildChain(target, AllIds(target), names, &rng);
}

// ---- Crash reproduction ----

class ReproTest : public ::testing::Test {
 protected:
  ReproTest()
      : executor_(BuiltinTarget(),
                  KernelConfig::ForVersion(KernelVersion::kV5_11)),
        reproducer_([this](const Prog& p) { return executor_.Run(p, nullptr); }) {}

  Executor executor_;
  CrashReproducer reproducer_;
};

TEST_F(ReproTest, StripsNoiseAroundCrashChain) {
  // gsmld_attach null-deref needs openat$ptmx + GSMIOC_CONFIG (without
  // TIOCSETD); pad the program with unrelated calls on both sides.
  Prog prog = Chain({"timerfd_create", "openat$ptmx", "epoll_create1",
                     "ioctl$GSMIOC_CONFIG", "sync"});
  ASSERT_EQ(prog.size(), 5u);
  const ExecResult result = executor_.Run(prog, nullptr);
  ASSERT_TRUE(result.Crashed());
  ASSERT_EQ(result.crash->bug, BugId::kGsmldAttachNullDeref);

  auto repro = reproducer_.Minimize(prog, result.crash->bug);
  ASSERT_TRUE(repro.has_value());
  EXPECT_EQ(repro->prog.size(), 2u);
  EXPECT_EQ(repro->prog.calls()[0].meta->name, "openat$ptmx");
  EXPECT_EQ(repro->prog.calls()[1].meta->name, "ioctl$GSMIOC_CONFIG");
  // The repro still crashes with the same bug.
  const ExecResult re = executor_.Run(repro->prog, nullptr);
  ASSERT_TRUE(re.Crashed());
  EXPECT_EQ(re.crash->bug, BugId::kGsmldAttachNullDeref);
}

TEST_F(ReproTest, ReturnsNulloptForNonCrashingProgram) {
  Prog prog = Chain({"sync"});
  EXPECT_FALSE(reproducer_.Minimize(prog, BugId::kVcsWriteOob).has_value());
}

TEST_F(ReproTest, KeepsAllLoadBearingCalls) {
  // The nbd chain needs all 6 calls; nothing should be removable.
  Prog prog = Chain({"openat$nbd", "socket$tcp", "ioctl$NBD_SET_SOCK",
                     "ioctl$NBD_DO_IT", "close", "ioctl$NBD_DISCONNECT"},
                    5);
  ASSERT_EQ(prog.size(), 6u);
  // Point close at the socket (call 1).
  prog.calls()[4].args[0]->kind = ArgKind::kResource;
  prog.calls()[4].args[0]->res_ref = 1;
  prog.calls()[4].args[0]->res_slot = 0;
  const ExecResult result = executor_.Run(prog, nullptr);
  ASSERT_TRUE(result.Crashed());
  ASSERT_EQ(result.crash->bug, BugId::kNbdDisconnectNullDeref);
  auto repro = reproducer_.Minimize(prog, result.crash->bug);
  ASSERT_TRUE(repro.has_value());
  EXPECT_EQ(repro->prog.size(), 6u);  // Matches Table 4's length 6.
}

TEST(FuzzerReproTest, CampaignRecordsMinimizedLengths) {
  CampaignOptions options;
  options.tool = ToolKind::kHealer;
  options.hours = 2.0;
  options.seed = 21;
  const CampaignResult result = RunCampaign(options);
  for (const CrashRecord& crash : result.crashes) {
    // The recorded reproducer length never exceeds the bug's documented
    // minimum by much and is at least 1.
    EXPECT_GE(crash.shortest_repro, 1u);
    EXPECT_LE(crash.shortest_repro, 24u);
  }
}

// ---- Corpus persistence ----

TEST(CorpusIoTest, SaveLoadRoundTrip) {
  const Target& target = BuiltinTarget();
  std::vector<Prog> progs;
  progs.push_back(Chain({"memfd_create", "write$memfd"}));
  progs.push_back(Chain({"socket$tcp", "bind", "listen"}));
  const std::string path = "/tmp/healer_corpus_test.bin";
  ASSERT_TRUE(SaveProgs(path, progs).ok());
  size_t skipped = 0;
  auto loaded = LoadProgs(path, target, &skipped);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(skipped, 0u);
  ASSERT_EQ(loaded->size(), 2u);
  EXPECT_EQ((*loaded)[0].ToString(), progs[0].ToString());
  EXPECT_EQ((*loaded)[1].ToString(), progs[1].ToString());
  std::remove(path.c_str());
}

TEST(CorpusIoTest, MissingFileIsNotFound) {
  EXPECT_EQ(LoadProgs("/tmp/no_such_corpus_file", BuiltinTarget()).status()
                .code(),
            StatusCode::kNotFound);
}

TEST(CorpusIoTest, GarbageFileIsParseError) {
  const std::string path = "/tmp/healer_corpus_garbage.bin";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  std::fputs("not a corpus", f);
  std::fclose(f);
  EXPECT_EQ(LoadProgs(path, BuiltinTarget()).status().code(),
            StatusCode::kParseError);
  std::remove(path.c_str());
}

TEST(CorpusIoTest, CampaignSeedsFromSavedCorpus) {
  const std::string path = "/tmp/healer_corpus_seed.bin";
  // First campaign saves its corpus.
  CampaignOptions options;
  options.tool = ToolKind::kHealer;
  options.hours = 1.0;
  options.seed = 31;
  options.save_corpus_path = path;
  const CampaignResult first = RunCampaign(options);
  ASSERT_GT(first.corpus_size, 0u);

  // Second campaign seeds from it and must start from comparable coverage
  // quickly (its first samples should outpace a cold start).
  CampaignOptions warm = options;
  warm.save_corpus_path.clear();
  warm.initial_corpus_path = path;
  warm.hours = 0.5;
  const CampaignResult warm_result = RunCampaign(warm);

  CampaignOptions cold = warm;
  cold.initial_corpus_path.clear();
  const CampaignResult cold_result = RunCampaign(cold);

  EXPECT_GT(warm_result.final_coverage, cold_result.final_coverage);
  std::remove(path.c_str());
}

TEST(RelationWarmStartTest, CampaignLoadsAndSavesRelations) {
  const std::string path = "/tmp/healer_relations_warm.txt";
  // First campaign saves its relation table (statics + learned dynamics).
  CampaignOptions options;
  options.tool = ToolKind::kHealer;
  options.hours = 1.0;
  options.seed = 51;
  options.save_relations_path = path;
  const CampaignResult first = RunCampaign(options);
  ASSERT_GT(first.relations_dynamic, 0u);
  EXPECT_EQ(first.relations_loaded, 0u);  // Cold start.

  // Second campaign warm-starts from the file: its own static learning
  // already covers the static edges, so exactly the dynamic edges load.
  CampaignOptions warm = options;
  warm.save_relations_path.clear();
  warm.initial_relations_path = path;
  warm.seed = 52;
  warm.hours = 0.25;
  const CampaignResult warm_result = RunCampaign(warm);
  EXPECT_EQ(warm_result.relations_loaded, first.relations_dynamic);
  EXPECT_GE(warm_result.relations_total,
            first.relations_static + first.relations_dynamic);
  // The summary reports the warm start.
  const std::string report = FormatCampaignReport(warm_result);
  EXPECT_NE(report.find("warm-up"), std::string::npos);

  // A missing file is survivable: the campaign runs cold and reports 0.
  CampaignOptions missing = warm;
  missing.initial_relations_path = "/tmp/no_such_relations_warm";
  missing.hours = 0.1;
  const CampaignResult missing_result = RunCampaign(missing);
  EXPECT_EQ(missing_result.relations_loaded, 0u);
  std::remove(path.c_str());
}

// ---- Guidance ablation modes ----

TEST(GuidanceModeTest, StaticOnlyLearnsNoDynamicEdges) {
  CampaignOptions options;
  options.tool = ToolKind::kHealer;
  options.hours = 1.0;
  options.seed = 41;
  options.guidance = GuidanceMode::kStaticOnly;
  const CampaignResult result = RunCampaign(options);
  EXPECT_GT(result.relations_static, 0u);
  EXPECT_EQ(result.relations_dynamic, 0u);
}

TEST(GuidanceModeTest, FixedAlphaReported) {
  CampaignOptions options;
  options.tool = ToolKind::kHealer;
  options.hours = 0.5;
  options.seed = 43;
  options.guidance = GuidanceMode::kFixedAlpha;
  options.fixed_alpha = 0.33;
  const CampaignResult result = RunCampaign(options);
  // The adaptive schedule still reports its (unused) value; the campaign
  // runs and learns dynamically.
  EXPECT_GT(result.relations_dynamic, 0u);
}

TEST(GuidanceModeTest, NamesDistinct) {
  EXPECT_STRNE(GuidanceModeName(GuidanceMode::kDefault),
               GuidanceModeName(GuidanceMode::kStaticOnly));
  EXPECT_STRNE(GuidanceModeName(GuidanceMode::kStaticOnly),
               GuidanceModeName(GuidanceMode::kFixedAlpha));
}

// ---- Fault injection ----

TEST(FaultInjectionTest, EveryAllocationFails) {
  KernelConfig config = KernelConfig::ForVersion(KernelVersion::kV5_11);
  config.fail_nth_alloc = 1;
  KernelHarness h(config);
  EXPECT_EQ(h.Call("memfd_create", h.StageString("m"), 2), -kENOMEM);
}

TEST(FaultInjectionTest, NthAllocationFails) {
  KernelConfig config = KernelConfig::ForVersion(KernelVersion::kV5_11);
  config.fail_nth_alloc = 2;
  KernelHarness h(config);
  EXPECT_GE(h.Call("memfd_create", h.StageString("m"), 2), 0);   // 1st ok.
  EXPECT_EQ(h.Call("memfd_create", h.StageString("m"), 2), -kENOMEM);
  EXPECT_GE(h.Call("memfd_create", h.StageString("m"), 2), 0);   // 3rd ok.
}

// ---- Parallel architecture ----

TEST(ParallelFuzzTest, WorkersShareStateAndFinish) {
  ParallelOptions options;
  options.tool = ToolKind::kHealer;
  options.num_workers = 4;
  options.total_execs = 600;
  options.seed = 51;
  const ParallelResult result =
      RunParallelFuzz(BuiltinTarget(), options);
  EXPECT_GE(result.fuzz_execs, options.total_execs);
  EXPECT_GT(result.coverage, 100u);
  EXPECT_GT(result.corpus_size, 0u);
  EXPECT_GT(result.relations, 0u);
  EXPECT_GT(result.monitor_lines, 0u);  // Background IO collected logs.
}

TEST(ParallelFuzzTest, HealerMinusModeHasNoRelations) {
  ParallelOptions options;
  options.tool = ToolKind::kHealerMinus;
  options.num_workers = 2;
  options.total_execs = 200;
  const ParallelResult result =
      RunParallelFuzz(BuiltinTarget(), options);
  EXPECT_EQ(result.relations, 0u);
  EXPECT_GT(result.coverage, 0u);
}

// ---- report formatting ----

TEST(ReportTest, ContainsAllSections) {
  CampaignOptions options;
  options.tool = ToolKind::kHealer;
  options.hours = 1.0;
  options.seed = 61;
  const CampaignResult result = RunCampaign(options);
  const std::string report = FormatCampaignReport(result);
  EXPECT_NE(report.find("coverage"), std::string::npos);
  EXPECT_NE(report.find("corpus"), std::string::npos);
  EXPECT_NE(report.find("relations"), std::string::npos);
  EXPECT_NE(report.find("crashes"), std::string::npos);
  EXPECT_NE(report.find("healer"), std::string::npos);
}

TEST(ReportTest, OptionalSectionsToggle) {
  CampaignOptions options;
  options.hours = 0.5;
  options.seed = 62;
  const CampaignResult result = RunCampaign(options);
  ReportOptions ropts;
  ropts.include_samples = true;
  ropts.include_relations = true;
  const std::string verbose = FormatCampaignReport(result, ropts);
  const std::string terse = FormatCampaignReport(result);
  EXPECT_GT(verbose.size(), terse.size());
  EXPECT_NE(verbose.find("coverage curve"), std::string::npos);
  EXPECT_EQ(terse.find("coverage curve"), std::string::npos);
}

TEST(ParallelFuzzTest, SingleWorkerDegenerate) {
  ParallelOptions options;
  options.num_workers = 1;
  options.total_execs = 100;
  const ParallelResult result =
      RunParallelFuzz(BuiltinTarget(), options);
  EXPECT_GE(result.fuzz_execs, 100u);
}

}  // namespace
}  // namespace healer
