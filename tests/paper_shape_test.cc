// End-to-end regression tests for the paper's headline claims, on fixed
// seeds and reduced budgets so they run in CI time. If a refactor breaks
// relation learning's advantage, these catch it.

#include <gtest/gtest.h>

#include "src/fuzz/campaign.h"
#include "src/kernel/errno.h"

namespace healer {
namespace {

CampaignResult RunShape(ToolKind tool, double hours, uint64_t seed) {
  CampaignOptions options;
  options.tool = tool;
  options.version = KernelVersion::kV5_11;
  options.hours = hours;
  options.seed = seed;
  return RunCampaign(options);
}

TEST(PaperShapeTest, HealerBeatsSyzkallerOnCoverage) {
  // Section 6.1 / Table 1 direction (reduced 8h budget, 2 seeds averaged).
  double healer = 0.0;
  double syzkaller = 0.0;
  for (uint64_t seed : {101u, 102u}) {
    healer += static_cast<double>(
        RunShape(ToolKind::kHealer, 8.0, seed).final_coverage);
    syzkaller += static_cast<double>(
        RunShape(ToolKind::kSyzkaller, 8.0, seed).final_coverage);
  }
  EXPECT_GT(healer, syzkaller * 1.05)
      << "healer=" << healer / 2 << " syzkaller=" << syzkaller / 2;
}

TEST(PaperShapeTest, HealerBeatsAblation) {
  // Table 2 direction.
  const CampaignResult healer = RunShape(ToolKind::kHealer, 8.0, 103);
  const CampaignResult minus = RunShape(ToolKind::kHealerMinus, 8.0, 103);
  EXPECT_GT(healer.final_coverage, minus.final_coverage);
}

TEST(PaperShapeTest, CorpusSkewsLongerWithRelations) {
  // Figure 6 direction: share of length>=3 sequences.
  auto share3 = [](const CampaignResult& result) {
    size_t total = 0;
    size_t long3 = 0;
    for (size_t i = 0; i < result.corpus_length_hist.size(); ++i) {
      total += result.corpus_length_hist[i];
      if (i >= 2) {
        long3 += result.corpus_length_hist[i];
      }
    }
    return total == 0 ? 0.0
                      : static_cast<double>(long3) /
                            static_cast<double>(total);
  };
  const CampaignResult healer = RunShape(ToolKind::kHealer, 8.0, 104);
  const CampaignResult minus = RunShape(ToolKind::kHealerMinus, 8.0, 104);
  EXPECT_GT(share3(healer), share3(minus));
}

TEST(PaperShapeTest, RelationsAccumulateOverTime) {
  // Figure 5 direction: the relation count is non-decreasing and grows
  // past its static seed during the campaign.
  const CampaignResult result = RunShape(ToolKind::kHealer, 6.0, 105);
  ASSERT_GE(result.samples.size(), 3u);
  for (size_t i = 1; i < result.samples.size(); ++i) {
    EXPECT_GE(result.samples[i].relations, result.samples[i - 1].relations);
  }
  EXPECT_GT(result.relations_dynamic, 0u);
  EXPECT_EQ(result.relations_total,
            result.relations_static + result.relations_dynamic);
}

TEST(PaperShapeTest, AlphaAdaptsDuringCampaign) {
  const CampaignResult result = RunShape(ToolKind::kHealer, 8.0, 106);
  // The schedule moved off its initial value after >1024-exec windows.
  EXPECT_NE(result.final_alpha, AlphaSchedule::kInitial);
  EXPECT_GE(result.final_alpha, AlphaSchedule::kMin);
  EXPECT_LE(result.final_alpha, AlphaSchedule::kMax);
}

TEST(PaperShapeTest, DeepBugsRequireLongReproducers) {
  // Table 4 direction: among found bugs, the deep class has strictly
  // longer recorded reproducers on average than the shallow pool.
  const CampaignResult result = RunShape(ToolKind::kHealer, 24.0, 107);
  double deep_sum = 0.0;
  double deep_n = 0.0;
  double shallow_sum = 0.0;
  double shallow_n = 0.0;
  for (const CrashRecord& crash : result.crashes) {
    if (GetBugInfo(crash.bug).deep) {
      deep_sum += static_cast<double>(crash.shortest_repro);
      deep_n += 1.0;
    } else {
      shallow_sum += static_cast<double>(crash.shortest_repro);
      shallow_n += 1.0;
    }
  }
  ASSERT_GT(deep_n, 0.0);
  ASSERT_GT(shallow_n, 0.0);
  EXPECT_GT(deep_sum / deep_n, shallow_sum / shallow_n);
}

// ---- small utility coverage ----

TEST(ErrnoTest, NamesKnownValues) {
  EXPECT_STREQ(ErrnoName(kEINVAL), "EINVAL");
  EXPECT_STREQ(ErrnoName(kEDESTADDRREQ), "EDESTADDRREQ");
  EXPECT_STREQ(ErrnoName(123456), "E?");
}

TEST(LatencyModelTest, DefaultsArePositive) {
  VmLatencyModel model;
  EXPECT_GT(model.boot, 0u);
  EXPECT_GT(model.reboot, model.boot);
  EXPECT_GT(model.exec_overhead, model.per_call);
}

}  // namespace
}  // namespace healer
