// Edge-path tests for handler branches not covered by the main subsystem
// suites: error paths, boundary values, and less-travelled ioctls.

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace healer {
namespace {

// ---- vfs odds and ends ----

TEST(VfsEdgeTest, LseekWhenceVariants) {
  KernelHarness h;
  const int64_t fd = h.Call("openat$file", h.StageString("/tmp/x"), 0x42, 0);
  h.Call("write", fd, h.Stage("abcd", 4), 4);
  EXPECT_EQ(h.Call("lseek", fd, 0, 2), 4);     // SEEK_END.
  EXPECT_EQ(h.Call("lseek", fd, -2, 1), 2);    // SEEK_CUR backwards.
  EXPECT_EQ(h.Call("lseek", fd, -9, 0), -kEINVAL);  // Negative target.
  EXPECT_EQ(h.Call("lseek", fd, 0, 9), -kEINVAL);   // Bad whence.
  EXPECT_EQ(h.Call("lseek", fd, 1ull << 50, 0), -kEINVAL);  // Huge.
}

TEST(VfsEdgeTest, SeekDataOnEmptyFileBug) {
  KernelHarness h;
  const int64_t fd = h.Call("openat$file", h.StageString("/tmp/e"), 0x42, 0);
  EXPECT_EQ(h.Call("lseek", fd, 0, 3), -kEIO);  // SEEK_DATA logic bug.
  EXPECT_TRUE(h.kernel().crashed());
  EXPECT_EQ(h.kernel().crash().bug, BugId::kSeekNegativeBug);
}

TEST(VfsEdgeTest, FcntlGetflReflectsSetfl) {
  KernelHarness h;
  const int64_t fd = h.Call("openat$file", h.StageString("/tmp/g"), 0x42, 0);
  ASSERT_EQ(h.Call("fcntl$SETFL", fd, 4, 0x800), 0);  // O_NONBLOCK.
  EXPECT_EQ(h.Call("fcntl$GETFL", fd, 3) & 0x800, 0x800);
}

TEST(VfsEdgeTest, FlockOps) {
  KernelHarness h;
  const int64_t fd = h.Call("openat$file", h.StageString("/tmp/l"), 0x42, 0);
  EXPECT_EQ(h.Call("flock", fd, 2), 0);   // LOCK_EX.
  EXPECT_EQ(h.Call("flock", fd, 8), 0);   // LOCK_UN.
  EXPECT_EQ(h.Call("flock", fd, 0), -kEINVAL);
}

TEST(VfsEdgeTest, DupPressureLeak) {
  KernelHarness h;
  const int64_t fd = h.Call("openat$file", h.StageString("/tmp/d"), 0x42, 0);
  int64_t last = 0;
  for (int i = 0; i < 40 && last >= 0; ++i) {
    last = h.Call("dup", fd);
  }
  EXPECT_TRUE(h.kernel().crashed());
  EXPECT_EQ(h.kernel().crash().bug, BugId::kDupLimitLeak);
}

TEST(VfsEdgeTest, FsReclaimChainOn419) {
  KernelHarness h(KernelVersion::kV4_19);
  const int64_t fd = h.Call("openat$file", h.StageString("/tmp/r"), 0x42, 0);
  // Large fallocate latches reclaim pressure; sync trips the lockdep bug.
  ASSERT_EQ(h.Call("fallocate", fd, 0, 0, 2 << 20), 0);
  EXPECT_EQ(h.Call("sync"), -kEIO);
  EXPECT_TRUE(h.kernel().crashed());
  EXPECT_EQ(h.kernel().crash().bug, BugId::kFsReclaimLockState);
}

// ---- mm ----

TEST(MmEdgeTest, MadviseBranches) {
  KernelHarness h;
  const uint64_t addr = GuestMem::kVmaBase + 4096;
  EXPECT_EQ(h.Call("madvise", addr, 4096, 4), 0);       // DONTNEED.
  EXPECT_EQ(h.Call("madvise", addr, 4096, 14), -kEPERM);  // HWPOISON.
  EXPECT_EQ(h.Call("madvise", addr, 4096, 99), -kEINVAL);
  EXPECT_EQ(h.Call("madvise", 0x100, 4096, 4), -kEINVAL);  // Bad range.
}

TEST(MmEdgeTest, MsyncRequiresMapping) {
  KernelHarness h;
  const uint64_t addr = GuestMem::kVmaBase + 8 * 4096;
  EXPECT_EQ(h.Call("msync", addr, 4096, 4), -kENOMEM);
  ASSERT_EQ(h.Call("mmap", addr, 4096, 3, 0x22, static_cast<uint64_t>(-1),
                   0),
            static_cast<int64_t>(addr));
  EXPECT_EQ(h.Call("msync", addr, 4096, 4), 0);
}

TEST(MmEdgeTest, MmapRequiresShareMode) {
  KernelHarness h;
  EXPECT_EQ(h.Call("mmap", GuestMem::kVmaBase + 4096, 4096, 3, 0x20,
                   static_cast<uint64_t>(-1), 0),
            -kEINVAL);  // ANON without SHARED/PRIVATE.
}

// ---- sockets ----

TEST(SocketEdgeTest, GetsockoptReadsStoredValue) {
  KernelHarness h;
  const int64_t fd = h.Call("socket$tcp", 2, 1, 0);
  ASSERT_EQ(h.Call("setsockopt$RCVBUF", fd, 1, h.StageU32(4096), 4), 0);
  const uint64_t out = h.OutBuf(4);
  EXPECT_EQ(h.Call("getsockopt", fd, 8 /*SO_RCVBUF*/, out), 0);
  uint32_t value = 0;
  ASSERT_TRUE(h.kernel().mem().Read32(out, &value));
  EXPECT_EQ(value, 4096u);
}

TEST(SocketEdgeTest, ShutdownThenRecvSeesEof) {
  KernelHarness h;
  const int64_t fd = h.Call("socket$tcp", 2, 1, 0);
  h.Call("bind", fd, h.StageSockaddr(70), 8);
  EXPECT_EQ(h.Call("shutdown", fd, 0), 0);
  EXPECT_EQ(h.Call("recvfrom", fd, h.OutBuf(16), 16, 0), 0);  // EOF.
}

TEST(SocketEdgeTest, ListenBacklogOverflowTimesOut) {
  KernelHarness h;
  const int64_t server = h.Call("socket$tcp", 2, 1, 0);
  h.Call("bind", server, h.StageSockaddr(71), 8);
  h.Call("listen", server, 0);  // Backlog 0 -> one pending connection max.
  const int64_t c1 = h.Call("socket$tcp", 2, 1, 0);
  EXPECT_EQ(h.Call("connect", c1, h.StageSockaddr(71), 8), 0);
  const int64_t c2 = h.Call("socket$tcp", 2, 1, 0);
  EXPECT_EQ(h.Call("connect", c2, h.StageSockaddr(71), 8), -kETIMEDOUT);
}

TEST(SocketEdgeTest, EphemeralPortAssignedOnZero) {
  KernelHarness h;
  const int64_t fd = h.Call("socket$udp", 2, 2, 0);
  ASSERT_EQ(h.Call("bind", fd, h.StageSockaddr(0), 8), 0);
  const uint64_t out = h.OutBuf(8);
  ASSERT_EQ(h.Call("getsockname", fd, out), 0);
  uint8_t raw[4];
  h.kernel().mem().Read(out, raw, 4);
  const uint16_t port = static_cast<uint16_t>(raw[2] | (raw[3] << 8));
  EXPECT_GE(port, 1024);
}

TEST(SocketEdgeTest, MacvlanLifecycleErrors) {
  KernelHarness h;
  const int64_t fd = h.Call("socket$udp", 2, 2, 0);
  EXPECT_EQ(h.Call("ioctl$SIOCDELMACVLAN", fd, 0x8939, 0), -kENODEV);
  ASSERT_EQ(h.Call("ioctl$SIOCADDMACVLAN", fd, 0x8938, 0), 0);
  EXPECT_EQ(h.Call("ioctl$SIOCADDMACVLAN", fd, 0x8938, 0), -kEEXIST);
}

// ---- pipes ----

TEST(PipeEdgeTest, SpliceSamePipeRejected) {
  KernelHarness h;
  const uint64_t fds = h.OutBuf(16);
  ASSERT_EQ(h.Call("pipe2", fds, 0), 0);
  uint64_t rfd = 0;
  uint64_t wfd = 0;
  h.kernel().mem().Read64(fds, &rfd);
  h.kernel().mem().Read64(fds + 8, &wfd);
  EXPECT_EQ(h.Call("splice", rfd, wfd, 8, 0), -kEINVAL);
}

TEST(PipeEdgeTest, PacketModeBoundsWrites) {
  KernelHarness h;
  const uint64_t fds = h.OutBuf(16);
  ASSERT_EQ(h.Call("pipe2", fds, 0x4000), 0);  // O_DIRECT packets.
  uint64_t wfd = 0;
  h.kernel().mem().Read64(fds + 8, &wfd);
  EXPECT_EQ(h.Call("write$pipe", wfd, h.OutBuf(8000), 8000), -kEINVAL);
}

TEST(PipeEdgeTest, FullPipeWouldBlock) {
  KernelHarness h;
  const uint64_t fds = h.OutBuf(16);
  ASSERT_EQ(h.Call("pipe2", fds, 0), 0);
  uint64_t rfd = 0;
  uint64_t wfd = 0;
  h.kernel().mem().Read64(fds, &rfd);
  h.kernel().mem().Read64(fds + 8, &wfd);
  ASSERT_EQ(h.Call("fcntl$SETPIPE_SZ", wfd, 1031, 4096), 4096);
  EXPECT_EQ(h.Call("write$pipe", wfd, h.OutBuf(4096), 4096), 4096);
  EXPECT_EQ(h.Call("write$pipe", wfd, h.Stage("x", 1), 1), -kEAGAIN);
}

// ---- kvm ----

TEST(KvmEdgeTest, CheckExtensionAndMmapSize) {
  KernelHarness h;
  const int64_t kvm = h.Call("openat$kvm", h.StageString("/dev/kvm"), 2);
  EXPECT_EQ(h.Call("ioctl$KVM_CHECK_EXTENSION", kvm, 0xae03, 7), 1);
  EXPECT_EQ(h.Call("ioctl$KVM_CHECK_EXTENSION", kvm, 0xae03, 250), 0);
  EXPECT_EQ(h.Call("ioctl$KVM_GET_VCPU_MMAP_SIZE", kvm, 0xae04), 4096);
}

TEST(KvmEdgeTest, VcpuLimits) {
  KernelHarness h;
  const int64_t kvm = h.Call("openat$kvm", h.StageString("/dev/kvm"), 2);
  const int64_t vm = h.Call("ioctl$KVM_CREATE_VM", kvm, 0xae01, 0);
  EXPECT_EQ(h.Call("ioctl$KVM_CREATE_VCPU", vm, 0xae41, 20), -kEINVAL);
  for (int i = 0; i < 4; ++i) {
    EXPECT_GE(h.Call("ioctl$KVM_CREATE_VCPU", vm, 0xae41, i), 0);
  }
  EXPECT_EQ(h.Call("ioctl$KVM_CREATE_VCPU", vm, 0xae41, 5), -kEMFILE);
}

TEST(KvmEdgeTest, WrongFdKindsRejected) {
  KernelHarness h;
  const int64_t efd = h.Call("eventfd2", 0, 0);
  EXPECT_EQ(h.Call("ioctl$KVM_CREATE_VM", efd, 0xae01, 0), -kEBADF);
  EXPECT_EQ(h.Call("ioctl$KVM_RUN", efd, 0xae80, 0), -kEBADF);
}

// ---- tty / timer ----

TEST(TtyEdgeTest, VtResizeValidation) {
  KernelHarness h;
  const int64_t vcs = h.Call("openat$vcs", h.StageString("/dev/vcs"), 2);
  const uint16_t zero[2] = {0, 80};
  EXPECT_EQ(h.Call("ioctl$VT_RESIZE", vcs, 0x5609,
                   h.Stage(zero, sizeof(zero))),
            -kEINVAL);
  const uint16_t huge[2] = {600, 80};
  EXPECT_EQ(h.Call("ioctl$VT_RESIZE", vcs, 0x5609,
                   h.Stage(huge, sizeof(huge))),
            -kEINVAL);
}

TEST(TtyEdgeTest, WrongDeviceKindIoctls) {
  KernelHarness h;
  const int64_t vcs = h.Call("openat$vcs", h.StageString("/dev/vcs"), 2);
  EXPECT_EQ(h.Call("ioctl$TIOCSETD", vcs, 0x5423, 0), -kENOTTY);
  const int64_t ptmx = h.Call("openat$ptmx", h.StageString("/dev/ptmx"), 2);
  EXPECT_EQ(h.Call("ioctl$VT_RESIZE", ptmx, 0x5609, h.OutBuf(4)), -kENOTTY);
}

TEST(TtyEdgeTest, OpenWrongPathFails) {
  KernelHarness h;
  EXPECT_EQ(h.Call("openat$ptmx", h.StageString("/dev/zero"), 2), -kENOENT);
  EXPECT_EQ(h.Call("openat$kvm", h.StageString("/dev/null"), 2), -kENOENT);
}

TEST(TimerEdgeTest, GettimeBeforeSettimeIsZero) {
  KernelHarness h;
  const int64_t tfd = h.Call("timerfd_create", 1, 0);
  const uint64_t out = h.OutBuf(32);
  ASSERT_EQ(h.Call("timerfd_gettime", tfd, out), 0);
  uint64_t value_sec = 1;
  h.kernel().mem().Read64(out + 16, &value_sec);
  EXPECT_EQ(value_sec, 0u);
  EXPECT_EQ(h.Call("read$timerfd", tfd, h.OutBuf(8), 8), -kEAGAIN);
}

TEST(TimerEdgeTest, BadClockIdRejected) {
  KernelHarness h;
  EXPECT_EQ(h.Call("timerfd_create", 99, 0), -kEINVAL);
  EXPECT_EQ(h.Call("clock_gettime", 99, h.OutBuf(16)), -kEINVAL);
}

// ---- io_uring ----

TEST(UringEdgeTest, DoubleRegisterRejected) {
  KernelHarness h;
  const int64_t ring = h.Call("io_uring_setup", 8, h.OutBuf(4));
  const uint64_t iov[2] = {0, 64};
  ASSERT_EQ(h.Call("io_uring_register$BUFFERS", ring, 0,
                   h.Stage(iov, sizeof(iov)), 1),
            0);
  EXPECT_EQ(h.Call("io_uring_register$BUFFERS", ring, 0,
                   h.Stage(iov, sizeof(iov)), 1),
            -kEBUSY);
}

TEST(UringEdgeTest, SubmitBeyondEntriesRejected) {
  KernelHarness h;
  const int64_t ring = h.Call("io_uring_setup", 8, h.OutBuf(4));
  EXPECT_EQ(h.Call("io_uring_enter", ring, 50, 0, 0), -kEINVAL);
}

// ---- netlink ----

TEST(NetlinkEdgeTest, UnboundSetParamsRejected) {
  KernelHarness h;
  const int64_t fd = h.Call("socket$nl802154", 16, 3, 20);
  EXPECT_EQ(h.Call("sendmsg$nl802154_set_params", fd, h.OutBuf(8), 8),
            -kENOTCONN);
}

TEST(NetlinkEdgeTest, NonNetlinkFdRejected) {
  KernelHarness h;
  const int64_t fd = h.Call("socket$udp", 2, 2, 0);
  EXPECT_EQ(h.Call("bind$netlink", fd, h.OutBuf(8), 8), -kEBADF);
}

}  // namespace
}  // namespace healer
