// Differential properties of the fault-injection layer: a faulted campaign
// must track its fault-free twin within a coverage tolerance band, and the
// corpora built by both the single-threaded Fuzzer and the ParallelFuzzer
// must satisfy the archive invariant — every archived program re-executes
// on a fresh, fault-free VM and reproduces nonzero coverage.

#include <gtest/gtest.h>

#include "src/fuzz/campaign.h"
#include "src/fuzz/parallel.h"
#include "src/syzlang/builtin_descs.h"

namespace healer {
namespace {

CampaignOptions SmallCampaign(uint64_t seed) {
  CampaignOptions options;
  options.tool = ToolKind::kHealer;
  options.seed = seed;
  options.hours = 0.5;
  options.max_execs = 400;
  options.num_vms = 2;
  return options;
}

// Re-executes `prog` on a fresh fault-free VM; the archive invariant
// requires a clean run that reports coverage.
bool ReExecutesWithCoverage(const Prog& prog) {
  SimClock clock;
  GuestVm vm(BuiltinTarget(), KernelConfig::ForVersion(KernelVersion::kV5_11),
             &clock);
  Bitmap coverage(CallCoverage::kMapBits);
  const ExecResult result = vm.Exec(prog, &coverage);
  return !result.Failed() && coverage.Count() > 0;
}

// A moderately faulted campaign loses throughput, not correctness: given
// enough simulated time that both runs complete the same exec budget, its
// coverage stays inside a band around the fault-free twin's rather than
// collapsing (recovery works) or inflating (no phantom feedback). Faults do
// cost simulated wall-clock (timeouts, reboots, backoff), so the hours
// budget is sized to make max_execs the binding limit for both runs.
TEST(FaultDifferentialTest, ModerateFaultsStayWithinCoverageBand) {
  for (const uint64_t seed : {11ull, 23ull}) {
    CampaignOptions baseline_options = SmallCampaign(seed);
    baseline_options.hours = 6.0;
    const CampaignResult baseline = RunCampaign(baseline_options);
    CampaignOptions faulted_options = SmallCampaign(seed);
    faulted_options.hours = 6.0;
    faulted_options.fault_plan = FaultPlan::Uniform(0.03);
    const CampaignResult faulted = RunCampaign(faulted_options);

    // Both campaigns ran their full exec budget: the differential below
    // compares equal amounts of fuzzing work, not unequal time slices.
    ASSERT_EQ(baseline.fuzz_execs, faulted.fuzz_execs) << "seed " << seed;

    EXPECT_EQ(baseline.faults.TotalInjected(), 0u);
    EXPECT_GT(faulted.faults.TotalInjected(), 0u) << "seed " << seed;
    ASSERT_GT(baseline.final_coverage, 0u);
    ASSERT_GT(faulted.final_coverage, 0u) << "seed " << seed;

    const double ratio = static_cast<double>(faulted.final_coverage) /
                         static_cast<double>(baseline.final_coverage);
    EXPECT_GE(ratio, 0.5) << "seed " << seed << ": faulted campaign collapsed "
                          << faulted.final_coverage << " vs "
                          << baseline.final_coverage;
    EXPECT_LE(ratio, 1.5) << "seed " << seed
                          << ": faulted campaign overshot " << ratio;
  }
}

// Discarding faulted feedback must never archive a program that cannot
// reproduce coverage: single-threaded fuzzer under sustained fault pressure.
TEST(FaultDifferentialTest, FuzzerCorpusReExecutesCleanly) {
  FuzzerOptions options;
  options.tool = ToolKind::kHealer;
  options.seed = 9;
  options.num_vms = 2;
  options.fault_plan = FaultPlan::Uniform(0.05);
  Fuzzer fuzzer(BuiltinTarget(), options);
  for (int i = 0; i < 300; ++i) {
    fuzzer.Step();
  }
  const std::vector<Prog> progs = fuzzer.corpus().ExportAll();
  ASSERT_FALSE(progs.empty());
  for (size_t i = 0; i < progs.size(); ++i) {
    EXPECT_TRUE(ReExecutesWithCoverage(progs[i])) << "corpus entry " << i;
    EXPECT_TRUE(progs[i].Validate().ok()) << "corpus entry " << i;
  }
  EXPECT_GT(fuzzer.fault_stats().TotalInjected(), 0u);
}

// The ParallelFuzzer's corpus satisfies the same invariant, and its health /
// fault accounting is internally consistent. (Suite name matches the
// FaultParallel* TSan filter in tests/CMakeLists.txt.)
TEST(FaultParallelTest, ParallelCorpusReExecutesAndAccountsFaults) {
  ParallelOptions options;
  options.tool = ToolKind::kHealer;
  options.seed = 5;
  options.num_workers = 3;
  options.total_execs = 600;
  options.fault_plan = FaultPlan::Uniform(0.05);
  const ParallelResult result = RunParallelFuzz(BuiltinTarget(), options);

  EXPECT_GE(result.fuzz_execs, options.total_execs);
  ASSERT_GT(result.corpus_size, 0u);
  ASSERT_EQ(result.corpus_progs.size(), result.corpus_size);
  for (size_t i = 0; i < result.corpus_progs.size(); ++i) {
    EXPECT_TRUE(ReExecutesWithCoverage(result.corpus_progs[i]))
        << "corpus entry " << i;
  }

  // Health report covers every worker VM, and the per-VM failure counters
  // sum to the recovery layer's failed-exec count.
  ASSERT_EQ(result.vm_health.size(), options.num_workers);
  uint64_t vm_faults = 0;
  for (const VmHealth& health : result.vm_health) {
    vm_faults += health.infra_faults;
  }
  EXPECT_EQ(vm_faults, result.faults.failed_execs);
  EXPECT_GT(result.faults.TotalInjected(), 0u);
  EXPECT_LE(result.faults.discarded + result.faults.recovered,
            result.faults.failed_execs);
}

// ---- ring-transport differentials ----

// Everything about a campaign fingerprint that does not depend on the
// simulated clock. Faulted campaigns pay slightly different clock charges on
// the two transports (a ring drain fronts its overhead before the per-
// program fault lands), so the clock-free fingerprint is the strongest
// property that holds under fault pressure.
void ExpectSameClockFreeFingerprint(const CampaignResult& legacy,
                                    const CampaignResult& ring) {
  EXPECT_EQ(legacy.final_coverage, ring.final_coverage);
  EXPECT_EQ(legacy.fuzz_execs, ring.fuzz_execs);
  EXPECT_EQ(legacy.total_execs, ring.total_execs);
  EXPECT_EQ(legacy.corpus_size, ring.corpus_size);
  EXPECT_DOUBLE_EQ(legacy.corpus_mean_len, ring.corpus_mean_len);
  EXPECT_EQ(legacy.corpus_length_hist, ring.corpus_length_hist);
  EXPECT_EQ(legacy.relations_total, ring.relations_total);
  EXPECT_EQ(legacy.relations_static, ring.relations_static);
  EXPECT_EQ(legacy.relations_dynamic, ring.relations_dynamic);
  EXPECT_DOUBLE_EQ(legacy.final_alpha, ring.final_alpha);
  EXPECT_EQ(legacy.faults, ring.faults);
  ASSERT_EQ(legacy.crashes.size(), ring.crashes.size());
  for (size_t i = 0; i < legacy.crashes.size(); ++i) {
    EXPECT_EQ(legacy.crashes[i].bug, ring.crashes[i].bug) << "crash " << i;
    EXPECT_EQ(legacy.crashes[i].title, ring.crashes[i].title) << "crash " << i;
    EXPECT_EQ(legacy.crashes[i].first_exec, ring.crashes[i].first_exec)
        << "crash " << i;
    EXPECT_EQ(legacy.crashes[i].shortest_repro, ring.crashes[i].shortest_repro)
        << "crash " << i;
    EXPECT_EQ(legacy.crashes[i].hits, ring.crashes[i].hits) << "crash " << i;
  }
}

// The tentpole differential: a fixed-seed fault-free campaign over the ring
// transport is bit-identical to its legacy twin — same fingerprint AND the
// same clock-dependent data (coverage samples, crash first-seen times),
// because a ring batch of one charges exactly the legacy latencies.
TEST(FaultDifferentialTest, RingTransportCampaignMatchesLegacyBitIdentical) {
  for (const uint64_t seed : {7ull, 20260808ull}) {
    CampaignOptions legacy_options = SmallCampaign(seed);
    legacy_options.hours = 6.0;
    const CampaignResult legacy = RunCampaign(legacy_options);
    CampaignOptions ring_options = SmallCampaign(seed);
    ring_options.hours = 6.0;
    ring_options.transport = ExecTransport::kRing;
    const CampaignResult ring = RunCampaign(ring_options);

    ExpectSameClockFreeFingerprint(legacy, ring);
    ASSERT_EQ(legacy.samples.size(), ring.samples.size()) << "seed " << seed;
    for (size_t i = 0; i < legacy.samples.size(); ++i) {
      EXPECT_DOUBLE_EQ(legacy.samples[i].hours, ring.samples[i].hours);
      EXPECT_EQ(legacy.samples[i].branches, ring.samples[i].branches);
      EXPECT_EQ(legacy.samples[i].execs, ring.samples[i].execs);
      EXPECT_EQ(legacy.samples[i].relations, ring.samples[i].relations);
    }
    for (size_t i = 0; i < legacy.crashes.size(); ++i) {
      EXPECT_EQ(legacy.crashes[i].first_seen, ring.crashes[i].first_seen);
    }
  }
}

// Under fault pressure the two transports still draw the same fault stream
// and produce the same per-program results, so the clock-free fingerprint —
// including the full fault/recovery accounting — stays identical.
TEST(FaultDifferentialTest, RingTransportFaultedCampaignMatchesLegacy) {
  CampaignOptions legacy_options = SmallCampaign(13);
  legacy_options.hours = 12.0;
  legacy_options.fault_plan = FaultPlan::Uniform(0.03);
  const CampaignResult legacy = RunCampaign(legacy_options);
  CampaignOptions ring_options = legacy_options;
  ring_options.transport = ExecTransport::kRing;
  const CampaignResult ring = RunCampaign(ring_options);

  // The plan actually fired, and both runs completed the exec budget (the
  // hours budget is generous enough that max_execs binds for both).
  EXPECT_GT(legacy.faults.TotalInjected(), 0u);
  ASSERT_EQ(legacy.fuzz_execs, ring.fuzz_execs);
  ExpectSameClockFreeFingerprint(legacy, ring);
}

// Pipelined workers (ring ExecBatch with hundreds of programs in flight)
// keep the archive invariant and the fault accounting that the one-at-a-time
// path guarantees. (Suite name matches the FaultParallel* TSan filter.)
TEST(FaultParallelTest, PipelinedRingCorpusReExecutesAndAccounts) {
  ParallelOptions options;
  options.tool = ToolKind::kHealer;
  options.seed = 21;
  options.num_workers = 2;
  options.total_execs = 800;
  options.pipeline_depth = 256;
  options.fault_plan = FaultPlan::Uniform(0.03);
  const ParallelResult result = RunParallelFuzz(BuiltinTarget(), options);

  EXPECT_GE(result.fuzz_execs, options.total_execs);
  EXPECT_GT(result.coverage, 0u);
  ASSERT_GT(result.corpus_size, 0u);
  ASSERT_EQ(result.corpus_progs.size(), result.corpus_size);
  for (size_t i = 0; i < result.corpus_progs.size(); ++i) {
    EXPECT_TRUE(ReExecutesWithCoverage(result.corpus_progs[i]))
        << "corpus entry " << i;
  }

  ASSERT_EQ(result.vm_health.size(), options.num_workers);
  uint64_t vm_faults = 0;
  for (const VmHealth& health : result.vm_health) {
    vm_faults += health.infra_faults;
  }
  EXPECT_EQ(vm_faults, result.faults.failed_execs);
  EXPECT_GT(result.faults.TotalInjected(), 0u);
  EXPECT_LE(result.faults.discarded + result.faults.recovered,
            result.faults.failed_execs);
}

// Fault-free parallel and single-threaded runs agree on the invariant too:
// nothing about the recovery plumbing disturbs the plain path.
TEST(FaultParallelTest, FaultFreeParallelCorpusReExecutes) {
  ParallelOptions options;
  options.seed = 2;
  options.num_workers = 2;
  options.total_execs = 300;
  const ParallelResult result = RunParallelFuzz(BuiltinTarget(), options);
  EXPECT_EQ(result.faults.TotalInjected(), 0u);
  EXPECT_EQ(result.faults.failed_execs, 0u);
  ASSERT_EQ(result.corpus_progs.size(), result.corpus_size);
  for (size_t i = 0; i < result.corpus_progs.size(); ++i) {
    EXPECT_TRUE(ReExecutesWithCoverage(result.corpus_progs[i]))
        << "corpus entry " << i;
  }
}

}  // namespace
}  // namespace healer
