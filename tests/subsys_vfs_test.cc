// VFS / memfd / mm / pipe / epoll / timer subsystem behaviour, including
// the injected-bug reproducers for these subsystems.

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace healer {
namespace {

// ---- VFS basics ----

class VfsTest : public ::testing::Test {
 protected:
  KernelHarness h{KernelVersion::kV5_11};

  int64_t Open(const std::string& path, uint32_t flags = 0x42 /*RDWR|CREAT*/) {
    return h.Call("openat$file", h.StageString(path), flags, 0644);
  }
};

TEST_F(VfsTest, CreateWriteReadBack) {
  const int64_t fd = Open("/tmp/a");
  ASSERT_GE(fd, 0);
  const char data[] = "hello vfs";
  EXPECT_EQ(h.Call("write", fd, h.Stage(data, 9), 9), 9);
  EXPECT_EQ(h.Call("lseek", fd, 0, 0), 0);
  const uint64_t out = h.OutBuf(16);
  EXPECT_EQ(h.Call("read", fd, out, 9), 9);
  char back[10] = {0};
  ASSERT_TRUE(h.kernel().mem().Read(out, back, 9));
  EXPECT_STREQ(back, "hello vfs");
}

TEST_F(VfsTest, OpenMissingWithoutCreatFails) {
  EXPECT_EQ(h.Call("openat$file", h.StageString("/tmp/nope"), 0, 0),
            -kENOENT);
}

TEST_F(VfsTest, ReadOnWriteOnlyFdFails) {
  const int64_t fd = Open("/tmp/w", 0x41);  // WRONLY|CREAT.
  ASSERT_GE(fd, 0);
  EXPECT_EQ(h.Call("read", fd, h.OutBuf(8), 8), -kEBADF);
}

TEST_F(VfsTest, AppendModeWritesAtEnd) {
  const int64_t fd = Open("/tmp/app", 0x42 | 0x400);
  ASSERT_GE(fd, 0);
  EXPECT_EQ(h.Call("write", fd, h.Stage("ab", 2), 2), 2);
  EXPECT_EQ(h.Call("lseek", fd, 0, 0), 0);
  EXPECT_EQ(h.Call("write", fd, h.Stage("cd", 2), 2), 2);
  EXPECT_EQ(h.Call("lseek", fd, 0, 2), 4);  // SEEK_END: size 4.
}

TEST_F(VfsTest, PreadPwriteAtOffsets) {
  const int64_t fd = Open("/tmp/p");
  EXPECT_EQ(h.Call("pwrite64", fd, h.Stage("xyz", 3), 3, 100), 3);
  const uint64_t out = h.OutBuf(4);
  EXPECT_EQ(h.Call("pread64", fd, out, 3, 100), 3);
  char back[4] = {0};
  h.kernel().mem().Read(out, back, 3);
  EXPECT_STREQ(back, "xyz");
  // Hole reads as zero.
  EXPECT_EQ(h.Call("pread64", fd, out, 3, 0), 3);
}

TEST_F(VfsTest, PwriteHugeOffsetRejected) {
  const int64_t fd = Open("/tmp/h");
  EXPECT_EQ(h.Call("pwrite64", fd, h.Stage("x", 1), 1,
                   static_cast<uint64_t>(-1)),
            -kEFBIG);
}

TEST_F(VfsTest, MkdirUnlinkRename) {
  EXPECT_EQ(h.Call("mkdir", h.StageString("/tmp/d"), 0755), 0);
  EXPECT_EQ(h.Call("mkdir", h.StageString("/tmp/d"), 0755), -kEEXIST);
  ASSERT_GE(Open("/tmp/f"), 0);
  EXPECT_EQ(h.Call("rename", h.StageString("/tmp/f"),
                   h.StageString("/tmp/g")),
            0);
  EXPECT_EQ(h.Call("unlink", h.StageString("/tmp/g")), 0);
  EXPECT_EQ(h.Call("unlink", h.StageString("/tmp/g")), -kENOENT);
  EXPECT_EQ(h.Call("unlink", h.StageString("/tmp/d")), -kEISDIR);
}

TEST_F(VfsTest, DupSharesObject) {
  const int64_t fd = Open("/tmp/dup");
  const int64_t fd2 = h.Call("dup", fd);
  ASSERT_GE(fd2, 0);
  EXPECT_NE(fd, fd2);
  EXPECT_EQ(h.Call("write", fd2, h.Stage("q", 1), 1), 1);
  EXPECT_EQ(h.Call("close", fd), 0);
  EXPECT_EQ(h.Call("write", fd2, h.Stage("q", 1), 1), 1);  // Still open.
}

TEST_F(VfsTest, FstatReportsSize) {
  const int64_t fd = Open("/tmp/s");
  h.Call("write", fd, h.Stage("12345", 5), 5);
  const uint64_t out = h.OutBuf(32);
  EXPECT_EQ(h.Call("fstat", fd, out), 0);
  uint64_t size = 0;
  h.kernel().mem().Read64(out, &size);
  EXPECT_EQ(size, 5u);
}

// ---- ext4/jbd2 race bugs ----

TEST_F(VfsTest, Ext4MarkIlocDirtyRace) {
  const int64_t fd = Open("/tmp/j");
  h.Call("write", fd, h.Stage("a", 1), 1);
  EXPECT_EQ(h.Call("fsync", fd), 0);  // Opens the commit window.
  EXPECT_EQ(h.Call("write", fd, h.Stage("b", 1), 1), -kEIO);
  ASSERT_TRUE(h.kernel().crashed());
  EXPECT_EQ(h.kernel().crash().bug, BugId::kExt4MarkIlocDirtyRace);
}

TEST_F(VfsTest, CommitWindowClosesAfterOneCall) {
  const int64_t fd = Open("/tmp/j2");
  h.Call("write", fd, h.Stage("a", 1), 1);
  h.Call("fsync", fd);
  h.Call("sync");  // Benign call consumes the window (dirty count is 0).
  EXPECT_EQ(h.Call("write", fd, h.Stage("b", 1), 1), 1);
  EXPECT_FALSE(h.kernel().crashed());
}

TEST_F(VfsTest, Ext4FcCommitRace) {
  const int64_t fd = Open("/tmp/fc");
  h.Call("write", fd, h.Stage("a", 1), 1);
  EXPECT_EQ(h.Call("fdatasync", fd), 0);
  h.Call("write", fd, h.Stage("b", 1), 1);
  // journal_committing is false here (fdatasync uses the fc path).
  EXPECT_EQ(h.Call("fdatasync", fd), -kEIO);
  ASSERT_TRUE(h.kernel().crashed());
  EXPECT_EQ(h.kernel().crash().bug, BugId::kExt4FcCommitRace);
}

TEST_F(VfsTest, DropNlinkRaceOnlyInV56) {
  KernelHarness h56(KernelVersion::kV5_6);
  const int64_t fd =
      h56.Call("openat$file", h56.StageString("/tmp/u"), 0x42, 0644);
  ASSERT_GE(fd, 0);
  EXPECT_EQ(h56.Call("unlink", h56.StageString("/tmp/u")), 0);
  EXPECT_EQ(h56.Call("fstat", fd, h56.OutBuf(32)), -kEIO);
  EXPECT_TRUE(h56.kernel().crashed());

  // Same sequence on 5.11: no crash (bug fixed).
  const int64_t fd2 = Open("/tmp/u");
  h.Call("unlink", h.StageString("/tmp/u"));
  EXPECT_EQ(h.Call("fstat", fd2, h.OutBuf(32)), 0);
  EXPECT_FALSE(h.kernel().crashed());
}

TEST_F(VfsTest, NfsMonolithicLeak) {
  KernelHarness h56(KernelVersion::kV5_6);
  uint8_t data[12] = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12};  // No NUL.
  EXPECT_EQ(h56.Call("mount$nfs", h56.StageString("/tmp/nfsdata"),
                     h56.Stage(data, sizeof(data)), sizeof(data)),
            -kENOMEM);
  EXPECT_TRUE(h56.kernel().crashed());
  EXPECT_EQ(h56.kernel().crash().bug, BugId::kNfsParseMonolithicLeak);
}

TEST_F(VfsTest, ReiserfsOnlyOn419) {
  KernelHarness h419(KernelVersion::kV4_19);
  uint8_t small[4] = {1, 2, 3, 4};
  EXPECT_EQ(h419.Call("mount$reiserfs", h419.StageString("/tmp/f"),
                      h419.Stage(small, 4), 4),
            -kEIO);
  EXPECT_TRUE(h419.kernel().crashed());
  EXPECT_EQ(h.Call("mount$reiserfs", h.StageString("/tmp/f"),
                   h.StageU32(1), 4),
            -kENOSYS);
}

// ---- memfd + seals + mmap ----

class MemfdTest : public ::testing::Test {
 protected:
  KernelHarness h{KernelVersion::kV5_11};

  int64_t Create(uint32_t flags = 2 /*ALLOW_SEALING*/) {
    return h.Call("memfd_create", h.StageString("m"), flags);
  }
};

TEST_F(MemfdTest, SealsDefaultToSealSealWithoutAllow) {
  const int64_t fd = Create(0);
  ASSERT_GE(fd, 0);
  EXPECT_EQ(h.Call("fcntl$GET_SEALS", fd, 1034), 1);  // F_SEAL_SEAL.
  EXPECT_EQ(h.Call("fcntl$ADD_SEALS", fd, 1033, 8), -kEPERM);
}

TEST_F(MemfdTest, WriteSealBlocksWrites) {
  const int64_t fd = Create();
  EXPECT_EQ(h.Call("write$memfd", fd, h.Stage("abc", 3), 3), 3);
  EXPECT_EQ(h.Call("fcntl$ADD_SEALS", fd, 1033, 8), 0);  // F_SEAL_WRITE.
  EXPECT_EQ(h.Call("write$memfd", fd, h.Stage("d", 1), 1), -kEPERM);
}

TEST_F(MemfdTest, ShrinkGrowSeals) {
  const int64_t fd = Create();
  h.Call("ftruncate$memfd", fd, 100);
  EXPECT_EQ(h.Call("fcntl$ADD_SEALS", fd, 1033, 2 | 4), 0);  // SHRINK|GROW.
  EXPECT_EQ(h.Call("ftruncate$memfd", fd, 50), -kEPERM);
  EXPECT_EQ(h.Call("ftruncate$memfd", fd, 200), -kEPERM);
  EXPECT_EQ(h.Call("ftruncate$memfd", fd, 100), 0);  // Same size OK.
}

TEST_F(MemfdTest, SealedSharedWritableMapRejected) {
  const int64_t fd = Create();
  h.Call("write$memfd", fd, h.Stage("abc", 3), 3);
  EXPECT_EQ(h.Call("fcntl$ADD_SEALS", fd, 1033, 8), 0);
  // mmap(addr, len, PROT_READ|PROT_WRITE, MAP_SHARED, fd, 0).
  EXPECT_EQ(h.Call("mmap", GuestMem::kVmaBase + 4096, 4096, 3, 1, fd, 0),
            -kEPERM);
  // Read-only shared mapping is fine.
  EXPECT_EQ(h.Call("mmap", GuestMem::kVmaBase + 8192, 4096, 1, 1, fd, 0),
            static_cast<int64_t>(GuestMem::kVmaBase + 8192));
}

TEST_F(MemfdTest, WriteSealAfterSharedMapRejected) {
  const int64_t fd = Create();
  ASSERT_EQ(h.Call("mmap", GuestMem::kVmaBase + 4096, 4096, 3, 1, fd, 0),
            static_cast<int64_t>(GuestMem::kVmaBase + 4096));
  EXPECT_EQ(h.Call("fcntl$ADD_SEALS", fd, 1033, 8), -kEBUSY);
}

// ---- mm ----

TEST(MmTest, MapUnmapLifecycle) {
  KernelHarness h;
  const uint64_t addr = GuestMem::kVmaBase + 3 * 4096;
  EXPECT_EQ(h.Call("mmap", addr, 8192, 3, 0x22 /*ANON|PRIVATE*/,
                   static_cast<uint64_t>(-1), 0),
            static_cast<int64_t>(addr));
  EXPECT_EQ(h.Call("mprotect", addr, 8192, 1), 0);
  EXPECT_EQ(h.Call("msync", addr, 8192, 4), 0);
  EXPECT_EQ(h.Call("munmap", addr, 8192), 0);
  EXPECT_EQ(h.Call("munmap", addr, 8192), -kEINVAL);
}

TEST(MmTest, RejectsZeroLenAndBadRange) {
  KernelHarness h;
  EXPECT_EQ(h.Call("mmap", GuestMem::kVmaBase, 0, 3, 0x22,
                   static_cast<uint64_t>(-1), 0),
            -kEINVAL);
  EXPECT_EQ(h.Call("mmap", 0x1000, 4096, 3, 0x22, static_cast<uint64_t>(-1),
                   0),
            -kEINVAL);
}

TEST(MmTest, IoremapBugNeedsMprotectHistory) {
  KernelHarness h(KernelVersion::kV5_11);
  const uint64_t addr = GuestMem::kVmaBase + 16 * 4096;
  ASSERT_EQ(h.Call("mmap", addr, 4096, 3, 0x22, static_cast<uint64_t>(-1), 0),
            static_cast<int64_t>(addr));
  h.Call("mprotect", addr, 4096, 1);
  h.Call("mprotect", addr, 4096, 3);
  // MAP_FIXED|ANON|PRIVATE remap with PROT_EXEC over the churned region.
  EXPECT_EQ(h.Call("mmap", addr, 4096, 4, 0x32, static_cast<uint64_t>(-1), 0),
            -kEIO);
  ASSERT_TRUE(h.kernel().crashed());
  EXPECT_EQ(h.kernel().crash().bug, BugId::kIoremapPageRangeBug);
}

// ---- pipes ----

class PipeTest : public ::testing::Test {
 protected:
  KernelHarness h{KernelVersion::kV5_11};
  int64_t rfd_ = -1;
  int64_t wfd_ = -1;

  void MakePipe(uint32_t flags = 0) {
    const uint64_t out = h.OutBuf(16);
    ASSERT_EQ(h.Call("pipe2", out, flags), 0);
    uint64_t r;
    uint64_t w;
    ASSERT_TRUE(h.kernel().mem().Read64(out, &r));
    ASSERT_TRUE(h.kernel().mem().Read64(out + 8, &w));
    rfd_ = static_cast<int64_t>(r);
    wfd_ = static_cast<int64_t>(w);
  }
};

TEST_F(PipeTest, WriteThenRead) {
  MakePipe();
  EXPECT_EQ(h.Call("write$pipe", wfd_, h.Stage("ping", 4), 4), 4);
  const uint64_t out = h.OutBuf(8);
  EXPECT_EQ(h.Call("read$pipe", rfd_, out, 4), 4);
  char back[5] = {0};
  h.kernel().mem().Read(out, back, 4);
  EXPECT_STREQ(back, "ping");
}

TEST_F(PipeTest, EndsRejectWrongDirection) {
  MakePipe();
  EXPECT_EQ(h.Call("write$pipe", rfd_, h.Stage("x", 1), 1), -kEBADF);
  EXPECT_EQ(h.Call("read$pipe", wfd_, h.OutBuf(4), 1), -kEBADF);
}

TEST_F(PipeTest, EmptyReadBlocksWouldBlock) {
  MakePipe();
  EXPECT_EQ(h.Call("read$pipe", rfd_, h.OutBuf(4), 4), -kEAGAIN);
}

TEST_F(PipeTest, SetPipeSizeShrinkBelowBufferedCrashes) {
  MakePipe();
  h.Call("write$pipe", wfd_, h.Stage("0123456789", 10), 10);
  EXPECT_EQ(h.Call("fcntl$SETPIPE_SZ", wfd_, 1031, 4), -kEIO);
  EXPECT_TRUE(h.kernel().crashed());
  EXPECT_EQ(h.kernel().crash().bug, BugId::kPipeSetSizeOob);
}

TEST_F(PipeTest, SpliceMovesBytesBetweenPipes) {
  MakePipe();
  const int64_t r1 = rfd_;
  const int64_t w1 = wfd_;
  MakePipe();
  h.Call("write$pipe", w1, h.Stage("abcdef", 6), 6);
  EXPECT_EQ(h.Call("splice", r1, wfd_, 6, 0), 6);
  const uint64_t out = h.OutBuf(8);
  EXPECT_EQ(h.Call("read$pipe", rfd_, out, 6), 6);
}

// ---- epoll / eventfd ----

TEST(EpollTest, ReadinessReflectsPipeState) {
  KernelHarness h;
  const int64_t ep = h.Call("epoll_create1", 0);
  const uint64_t pfds = h.OutBuf(16);
  ASSERT_EQ(h.Call("pipe2", pfds, 0), 0);
  uint64_t rfd = 0;
  uint64_t wfd = 0;
  ASSERT_TRUE(h.kernel().mem().Read64(pfds, &rfd));
  ASSERT_TRUE(h.kernel().mem().Read64(pfds + 8, &wfd));
  ASSERT_EQ(h.Call("epoll_ctl$ADD", ep, 1, rfd, h.StageU32(1)), 0);
  const uint64_t events = h.OutBuf(512);
  EXPECT_EQ(h.Call("epoll_wait", ep, events, 8, 0), 0);  // Empty pipe.
  h.Call("write$pipe", wfd, h.Stage("x", 1), 1);
  EXPECT_EQ(h.Call("epoll_wait", ep, events, 8, 0), 1);
}

TEST(EpollTest, DoubleAddAndMissingDel) {
  KernelHarness h;
  const int64_t ep = h.Call("epoll_create1", 0);
  const int64_t efd = h.Call("eventfd2", 0, 0);
  EXPECT_EQ(h.Call("epoll_ctl$ADD", ep, 1, efd, h.StageU32(1)), 0);
  EXPECT_EQ(h.Call("epoll_ctl$ADD", ep, 1, efd, h.StageU32(1)), -kEEXIST);
  EXPECT_EQ(h.Call("epoll_ctl$MOD", ep, 3, efd, h.StageU32(4)), 0);
  EXPECT_EQ(h.Call("epoll_ctl$DEL", ep, 2, efd, h.StageU32(0)), 0);
  EXPECT_EQ(h.Call("epoll_ctl$DEL", ep, 2, efd, h.StageU32(0)), -kENOENT);
}

TEST(EpollTest, SelfAddDeadlockBug) {
  KernelHarness h;
  const int64_t ep = h.Call("epoll_create1", 0);
  EXPECT_EQ(h.Call("epoll_ctl$ADD", ep, 1, ep, h.StageU32(1)), -kEIO);
  EXPECT_TRUE(h.kernel().crashed());
  EXPECT_EQ(h.kernel().crash().bug, BugId::kEpollSelfAddDeadlock);
}

TEST(EpollTest, FputEpRemoveRaceAfterClose) {
  KernelHarness h(KernelVersion::kV5_11);
  const int64_t ep = h.Call("epoll_create1", 0);
  const int64_t efd = h.Call("eventfd2", 1, 0);
  ASSERT_EQ(h.Call("epoll_ctl$ADD", ep, 1, efd, h.StageU32(1)), 0);
  ASSERT_EQ(h.Call("close", efd), 0);
  EXPECT_EQ(h.Call("epoll_wait", ep, h.OutBuf(512), 8, 0), -kEIO);
  EXPECT_TRUE(h.kernel().crashed());
  EXPECT_EQ(h.kernel().crash().bug, BugId::kFputEpRemoveRace);
}

TEST(EventfdTest, CounterSemantics) {
  KernelHarness h;
  const int64_t efd = h.Call("eventfd2", 5, 0);
  const uint64_t out = h.OutBuf(8);
  EXPECT_EQ(h.Call("read$eventfd", efd, out, 8), 8);
  uint64_t value = 0;
  ASSERT_TRUE(h.kernel().mem().Read64(out, &value));
  EXPECT_EQ(value, 5u);
  EXPECT_EQ(h.Call("read$eventfd", efd, out, 8), -kEAGAIN);
  EXPECT_EQ(h.Call("write$eventfd", efd, h.StageU64(7), 8), 8);
  EXPECT_EQ(h.Call("read$eventfd", efd, out, 8), 8);
}

TEST(EventfdTest, OverflowBug) {
  KernelHarness h;
  const int64_t efd = h.Call("eventfd2", 2, 0);
  EXPECT_EQ(h.Call("write$eventfd", efd,
                   h.StageU64(0xfffffffffffffffeULL), 8),
            -kEIO);
  EXPECT_TRUE(h.kernel().crashed());
  EXPECT_EQ(h.kernel().crash().bug, BugId::kEventfdCounterOverflow);
}

// ---- timers ----

TEST(TimerTest, SettimeGettimeRead) {
  KernelHarness h;
  const int64_t tfd = h.Call("timerfd_create", 0, 0);
  ASSERT_GE(tfd, 0);
  const uint64_t spec[4] = {1, 0, 2, 500000000};
  EXPECT_EQ(h.Call("timerfd_settime", tfd, 0, h.Stage(spec, sizeof(spec)), 0),
            0);
  const uint64_t out = h.OutBuf(32);
  EXPECT_EQ(h.Call("timerfd_gettime", tfd, out), 0);
  uint64_t interval_sec = 0;
  ASSERT_TRUE(h.kernel().mem().Read64(out, &interval_sec));
  EXPECT_EQ(interval_sec, 1u);
  EXPECT_EQ(h.Call("read$timerfd", tfd, h.OutBuf(8), 8), 8);
}

TEST(TimerTest, UnnormalizedNsecBug) {
  KernelHarness h;
  const int64_t tfd = h.Call("timerfd_create", 0, 0);
  const uint64_t spec[4] = {0, 0, 0, 2000000000};  // value nsec >= 1e9.
  EXPECT_EQ(h.Call("timerfd_settime", tfd, 0, h.Stage(spec, sizeof(spec)), 0),
            -kEIO);
  EXPECT_TRUE(h.kernel().crashed());
  EXPECT_EQ(h.kernel().crash().bug, BugId::kTimerfdSettimeBug);
}

TEST(TimerTest, NanosleepValidation) {
  KernelHarness h;
  const uint64_t ok_ts[2] = {1, 100};
  EXPECT_EQ(h.Call("nanosleep", h.Stage(ok_ts, sizeof(ok_ts))), 0);
  const uint64_t bad_ts[2] = {2000000001, 0};  // Seconds overflow bug.
  EXPECT_EQ(h.Call("nanosleep", h.Stage(bad_ts, sizeof(bad_ts))), -kEIO);
  EXPECT_TRUE(h.kernel().crashed());
}

}  // namespace
}  // namespace healer
