#include <gtest/gtest.h>

#include "src/syzlang/lexer.h"
#include "src/syzlang/parser.h"
#include "src/syzlang/target.h"

namespace healer {
namespace {

// ---- Lexer ----

TEST(LexerTest, BasicTokens) {
  auto tokens = Tokenize("foo(bar, 42) ret");
  ASSERT_TRUE(tokens.ok());
  ASSERT_GE(tokens->size(), 8u);
  EXPECT_EQ((*tokens)[0].kind, TokKind::kIdent);
  EXPECT_EQ((*tokens)[0].text, "foo");
  EXPECT_EQ((*tokens)[1].kind, TokKind::kLParen);
  EXPECT_EQ((*tokens)[3].kind, TokKind::kComma);
  EXPECT_EQ((*tokens)[4].kind, TokKind::kNumber);
  EXPECT_EQ((*tokens)[4].number, 42u);
  EXPECT_EQ(tokens->back().kind, TokKind::kEof);
}

TEST(LexerTest, HexAndNegativeNumbers) {
  auto tokens = Tokenize("0xae01 -1");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].number, 0xae01u);
  EXPECT_EQ((*tokens)[1].number, static_cast<uint64_t>(-1));
}

TEST(LexerTest, StringsAndComments) {
  auto tokens = Tokenize("\"/dev/kvm\" # a comment\nnext");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].kind, TokKind::kString);
  EXPECT_EQ((*tokens)[0].text, "/dev/kvm");
  EXPECT_EQ((*tokens)[1].kind, TokKind::kNewline);
  EXPECT_EQ((*tokens)[2].text, "next");
}

TEST(LexerTest, CollapsesBlankLines) {
  auto tokens = Tokenize("a\n\n\nb");
  ASSERT_TRUE(tokens.ok());
  ASSERT_EQ(tokens->size(), 5u);  // a, NL, b, NL, EOF
  EXPECT_EQ((*tokens)[1].kind, TokKind::kNewline);
  EXPECT_EQ((*tokens)[2].text, "b");
}

TEST(LexerTest, UnterminatedStringFails) {
  auto tokens = Tokenize("\"oops");
  EXPECT_FALSE(tokens.ok());
  EXPECT_EQ(tokens.status().code(), StatusCode::kParseError);
}

TEST(LexerTest, UnexpectedCharFails) {
  auto tokens = Tokenize("a @ b");
  EXPECT_FALSE(tokens.ok());
}

TEST(LexerTest, TracksLineNumbers) {
  auto tokens = Tokenize("a\nb\nc");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].line, 1);
  EXPECT_EQ((*tokens)[2].line, 2);
  EXPECT_EQ((*tokens)[4].line, 3);
}

// ---- Parser ----

TEST(ParserTest, ConstDecl) {
  auto file = ParseDescriptions("const FOO = 0x10");
  ASSERT_TRUE(file.ok());
  ASSERT_EQ(file->consts.size(), 1u);
  EXPECT_EQ(file->consts[0].name, "FOO");
  EXPECT_EQ(file->consts[0].value, 0x10u);
}

TEST(ParserTest, FlagsDecl) {
  auto file = ParseDescriptions("const A = 1\nflags fs = A, 2, 4");
  ASSERT_TRUE(file.ok());
  ASSERT_EQ(file->flags.size(), 1u);
  EXPECT_EQ(file->flags[0].values.size(), 3u);
}

TEST(ParserTest, ResourceDecl) {
  auto file = ParseDescriptions("resource fd[int32]: -1, 100");
  ASSERT_TRUE(file.ok());
  ASSERT_EQ(file->resources.size(), 1u);
  EXPECT_EQ(file->resources[0].name, "fd");
  EXPECT_EQ(file->resources[0].base, "int32");
  ASSERT_EQ(file->resources[0].special_values.size(), 2u);
  EXPECT_EQ(file->resources[0].special_values[0], static_cast<uint64_t>(-1));
}

TEST(ParserTest, StructDecl) {
  auto file = ParseDescriptions(
      "struct point {\n  x int32\n  y int32\n}");
  ASSERT_TRUE(file.ok());
  ASSERT_EQ(file->structs.size(), 1u);
  EXPECT_FALSE(file->structs[0].is_union);
  ASSERT_EQ(file->structs[0].fields.size(), 2u);
  EXPECT_EQ(file->structs[0].fields[1].name, "y");
}

TEST(ParserTest, EmptyStructFails) {
  auto file = ParseDescriptions("struct empty {\n}");
  EXPECT_FALSE(file.ok());
}

TEST(ParserTest, SyscallWithVariantAndRet) {
  auto file = ParseDescriptions(
      "resource fd[int32]\n"
      "openat$kvm(path ptr[in, string[\"/dev/kvm\"]], flags const[2]) fd");
  ASSERT_TRUE(file.ok());
  ASSERT_EQ(file->syscalls.size(), 1u);
  EXPECT_EQ(file->syscalls[0].name, "openat$kvm");
  EXPECT_EQ(file->syscalls[0].base_name, "openat");
  EXPECT_EQ(file->syscalls[0].ret, "fd");
  ASSERT_EQ(file->syscalls[0].args.size(), 2u);
}

TEST(ParserTest, ZeroArgSyscall) {
  auto file = ParseDescriptions("sync()");
  ASSERT_TRUE(file.ok());
  EXPECT_TRUE(file->syscalls[0].args.empty());
}

TEST(ParserTest, RangeTypeArg) {
  auto file = ParseDescriptions("nap(n int32[3:9])");
  ASSERT_TRUE(file.ok());
  const TypeExpr& type = file->syscalls[0].args[0].type;
  ASSERT_EQ(type.args.size(), 1u);
  EXPECT_EQ(type.args[0].kind, TypeExprArg::Kind::kRange);
  EXPECT_EQ(type.args[0].number, 3u);
  EXPECT_EQ(type.args[0].range_hi, 9u);
}

TEST(ParserTest, GarbageAfterDeclFails) {
  auto file = ParseDescriptions("sync() extra stuff ]");
  EXPECT_FALSE(file.ok());
}

// ---- Target compilation ----

constexpr char kSmallDesc[] = R"(
resource fd[int32]: -1
resource sock[fd]
resource tcp[sock]
const AF_INET = 2
flags oflags = 1, 2, AF_INET
struct addr {
  family const[AF_INET, int16]
  port int16
}
open(path ptr[in, filename], flags flags[oflags]) fd
socket() tcp
bind(s sock, a ptr[in, addr], alen len[a])
close(f fd)
pair(out ptr[out, fdpair])
struct fdpair {
  r fd
  w fd
}
)";

class TargetTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto target = Target::CompileSource(kSmallDesc, "small");
    ASSERT_TRUE(target.ok()) << target.status().ToString();
    target_ = std::make_unique<Target>(std::move(target).value());
  }
  std::unique_ptr<Target> target_;
};

TEST_F(TargetTest, CompilesAllSyscalls) {
  EXPECT_EQ(target_->NumSyscalls(), 5u);
  EXPECT_NE(target_->FindSyscall("open"), nullptr);
  EXPECT_EQ(target_->FindSyscall("nosuch"), nullptr);
}

TEST_F(TargetTest, ResourceInheritanceChain) {
  const ResourceDesc* fd = target_->FindResource("fd");
  const ResourceDesc* sock = target_->FindResource("sock");
  const ResourceDesc* tcp = target_->FindResource("tcp");
  ASSERT_NE(fd, nullptr);
  ASSERT_NE(tcp, nullptr);
  EXPECT_TRUE(tcp->IsCompatibleWith(fd));
  EXPECT_TRUE(tcp->IsCompatibleWith(sock));
  EXPECT_TRUE(tcp->IsCompatibleWith(tcp));
  EXPECT_FALSE(fd->IsCompatibleWith(tcp));
}

TEST_F(TargetTest, SubtypesInheritSpecialValues) {
  const ResourceDesc* tcp = target_->FindResource("tcp");
  ASSERT_EQ(tcp->special_values.size(), 1u);
  EXPECT_EQ(tcp->special_values[0], static_cast<uint64_t>(-1));
}

TEST_F(TargetTest, ProducerIndexHonorsInheritance) {
  // socket() returns tcp, which satisfies fd, sock and tcp consumers.
  const ResourceDesc* fd = target_->FindResource("fd");
  const auto& fd_producers = target_->ProducersOf(fd);
  // open produces fd; socket produces tcp (compatible with fd); pair
  // produces fds through its out-pointer.
  EXPECT_EQ(fd_producers.size(), 3u);
  const ResourceDesc* tcp = target_->FindResource("tcp");
  const auto& tcp_producers = target_->ProducersOf(tcp);
  ASSERT_EQ(tcp_producers.size(), 1u);
  EXPECT_EQ(target_->syscall(tcp_producers[0]).name, "socket");
}

TEST_F(TargetTest, ConsumedAndProducedResources) {
  const Syscall* bind = target_->FindSyscall("bind");
  ASSERT_EQ(bind->consumed_resources.size(), 1u);
  EXPECT_EQ(bind->consumed_resources[0]->name, "sock");
  const Syscall* pair = target_->FindSyscall("pair");
  // Out-pointer struct of two fds -> produced resources include fd.
  ASSERT_EQ(pair->produced_resources.size(), 1u);
  EXPECT_EQ(pair->produced_resources[0]->name, "fd");
}

TEST_F(TargetTest, ConstResolution) {
  auto value = target_->FindConst("AF_INET");
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(*value, 2u);
  EXPECT_FALSE(target_->FindConst("MISSING").ok());
}

TEST_F(TargetTest, FlagsIncludeConstRefs) {
  const Syscall* open = target_->FindSyscall("open");
  const Type* flags = open->args[1].type;
  ASSERT_EQ(flags->kind, TypeKind::kFlags);
  ASSERT_EQ(flags->flag_values.size(), 3u);
  EXPECT_EQ(flags->flag_values[2], 2u);  // AF_INET resolved.
}

TEST_F(TargetTest, StructLayoutSizes) {
  const Type* addr = target_->FindNamedType("addr");
  ASSERT_NE(addr, nullptr);
  EXPECT_EQ(addr->ByteSize(), 4u);  // int16 + int16.
}

TEST(TargetErrorTest, UnknownTypeFails) {
  auto target = Target::CompileSource("f(a nosuchtype)", "t");
  EXPECT_FALSE(target.ok());
}

TEST(TargetErrorTest, UnknownResourceBaseFails) {
  auto target = Target::CompileSource("resource a[nosuch]", "t");
  EXPECT_FALSE(target.ok());
}

TEST(TargetErrorTest, DuplicateSyscallFails) {
  auto target = Target::CompileSource("f()\nf()", "t");
  EXPECT_FALSE(target.ok());
}

TEST(TargetErrorTest, LenWithoutSiblingFails) {
  auto target = Target::CompileSource("f(n len[missing])", "t");
  EXPECT_FALSE(target.ok());
}

TEST(TargetErrorTest, ResourceCycleFails) {
  auto target =
      Target::CompileSource("resource a[b]\nresource b[a]", "t");
  EXPECT_FALSE(target.ok());
}

TEST(TargetErrorTest, UnknownRetResourceFails) {
  auto target = Target::CompileSource("f() ghost", "t");
  EXPECT_FALSE(target.ok());
}

TEST(TargetErrorTest, EmptyRangeFails) {
  auto target = Target::CompileSource("f(n int32[9:3])", "t");
  EXPECT_FALSE(target.ok());
}

TEST(TargetErrorTest, UnknownFlagsSetFails) {
  auto target = Target::CompileSource("f(n flags[ghost])", "t");
  EXPECT_FALSE(target.ok());
}

TEST(TargetTest2, PtrStringSugar) {
  auto target =
      Target::CompileSource("f(p ptr[in, \"/dev/x\"])", "t");
  ASSERT_TRUE(target.ok());
  const Type* ptr = target->FindSyscall("f")->args[0].type;
  ASSERT_EQ(ptr->kind, TypeKind::kPtr);
  ASSERT_EQ(ptr->elem->kind, TypeKind::kString);
  EXPECT_EQ(ptr->elem->str_values[0], "/dev/x");
}

TEST(TargetTest2, UnionCompiles) {
  auto target = Target::CompileSource(
      "union u {\n a int32\n b int64\n}\nf(x ptr[in, u])", "t");
  ASSERT_TRUE(target.ok());
  const Type* u = target->FindNamedType("u");
  ASSERT_EQ(u->kind, TypeKind::kUnion);
  EXPECT_EQ(u->ByteSize(), 8u);  // Largest member.
}

TEST(TargetTest2, ArrayBounds) {
  auto target = Target::CompileSource("f(x ptr[in, array[int8, 3:5]])", "t");
  ASSERT_TRUE(target.ok());
  const Type* arr = target->FindSyscall("f")->args[0].type->elem;
  EXPECT_EQ(arr->array_min, 3u);
  EXPECT_EQ(arr->array_max, 5u);
}

}  // namespace
}  // namespace healer
