#!/usr/bin/env python3
"""Compare a freshly generated BENCH_*.json against a committed baseline.

Usage: bench_diff.py BASELINE FRESH [options]

Every metric in the baseline must exist in the fresh run; each is then
compared under a per-metric-class tolerance:

  flags    (*_ok, *identical)        fresh must be at least the baseline —
                                     a correctness bit that was 1 may never
                                     drop to 0.
  timings  (*_ns, *_ms, *_secs,      machine- and load-dependent; only an
            *_per_sec, *ttc*)        order-of-magnitude change is
                                     interesting. Allowed factor either way:
                                     --timing-factor (default 5.0).
  counts   (*execs*, *rounds*,       workload shape; nearly deterministic.
            *_bytes, *edges*,        Allowed relative drift: --count-tol
            *relations*, *coverage*, (default 0.10).
            *shards*, *threads*,
            *publishes*, *words*)
  ratios   (everything else:         derived speedups/shares/ratios; noisy
            speedup, share, ratio,   on loaded boxes but bounded. Allowed
            reduction, ...)          relative drift: --ratio-tol (default
                                     0.50). The direction-sensitive floors
                                     and ceilings live in check.sh stages;
                                     this diff only catches silent drift of
                                     the committed baselines.

Host-shape metrics (`cores`, `workers`) are reported but never failed: the
baseline records the machine it ran on, not a claim about this one.

Exit status: 0 when every metric is within tolerance, 1 otherwise.
"""

import argparse
import json
import sys


def load_metrics(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, ValueError) as err:
        sys.exit("bench_diff: cannot load %s: %s" % (path, err))
    metrics = doc.get("metrics")
    if not isinstance(metrics, dict) or not metrics:
        sys.exit("bench_diff: %s has no metrics object" % path)
    return doc.get("bench", "?"), metrics


INFORMATIONAL = {"cores", "workers"}

FLAG_SUFFIXES = ("_ok", "identical")
TIMING_MARKERS = ("_ns", "_ms", "_secs", "_per_sec", "ttc", "_vs_1")
COUNT_MARKERS = ("execs", "rounds", "_bytes", "edges", "relations",
                 "coverage", "shards", "threads", "publishes", "words",
                 "fleet", "budget", "allocs")


def classify(name):
    if name in INFORMATIONAL:
        return "info"
    if name.endswith(FLAG_SUFFIXES):
        return "flag"
    if any(m in name for m in TIMING_MARKERS):
        return "timing"
    if any(m in name for m in COUNT_MARKERS):
        return "count"
    return "ratio"


def rel_drift(base, fresh):
    if base == 0:
        return abs(fresh)
    return abs(fresh - base) / abs(base)


def main():
    parser = argparse.ArgumentParser(
        description="diff fresh bench metrics against a committed baseline")
    parser.add_argument("baseline")
    parser.add_argument("fresh")
    parser.add_argument("--timing-factor", type=float, default=5.0,
                        help="allowed factor either way for timing metrics")
    parser.add_argument("--count-tol", type=float, default=0.10,
                        help="allowed relative drift for count metrics")
    parser.add_argument("--ratio-tol", type=float, default=0.50,
                        help="allowed relative drift for ratio metrics")
    parser.add_argument("--loose", action="append", default=[],
                        metavar="NAME",
                        help="treat NAME as timing-class (factor tolerance);"
                        " for ratios of timings that are themselves noisy")
    args = parser.parse_args()

    base_name, base = load_metrics(args.baseline)
    fresh_name, fresh = load_metrics(args.fresh)
    if base_name != fresh_name:
        sys.exit("bench_diff: comparing different benches (%s vs %s)" %
                 (base_name, fresh_name))

    failures = 0
    print("bench %s: %d baseline metrics" % (base_name, len(base)))
    for name in sorted(base):
        b = base[name]
        if name not in fresh:
            print("  FAIL %-34s missing from fresh run" % name)
            failures += 1
            continue
        f = fresh[name]
        kind = "timing" if name in args.loose else classify(name)
        verdict, detail = "ok", ""
        if kind == "info":
            verdict = "info"
            detail = "baseline %g, fresh %g (host shape, not compared)" % (
                b, f)
        elif kind == "flag":
            if f < b:
                verdict = "FAIL"
            detail = "baseline %g, fresh %g" % (b, f)
        elif kind == "timing":
            lo, hi = b / args.timing_factor, b * args.timing_factor
            if b > 0 and not (lo <= f <= hi):
                verdict = "FAIL"
            detail = "baseline %g, fresh %g (factor %.1fx allowed)" % (
                b, f, args.timing_factor)
        elif kind == "count":
            drift = rel_drift(b, f)
            if drift > args.count_tol:
                verdict = "FAIL"
            detail = "baseline %g, fresh %g (drift %.1f%%, tol %.0f%%)" % (
                b, f, drift * 100, args.count_tol * 100)
        else:
            drift = rel_drift(b, f)
            if drift > args.ratio_tol:
                verdict = "FAIL"
            detail = "baseline %g, fresh %g (drift %.1f%%, tol %.0f%%)" % (
                b, f, drift * 100, args.ratio_tol * 100)
        if verdict == "FAIL":
            failures += 1
        print("  %-4s %-34s %s [%s]" % (verdict, name, detail, kind))

    extra = sorted(set(fresh) - set(base))
    for name in extra:
        print("  note %-34s new metric (not in baseline)" % name)
    if failures:
        print("bench_diff: %d metric(s) out of tolerance" % failures)
        return 1
    print("bench_diff: all metrics within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
