#!/usr/bin/env bash
# Full verification: tier-1 build+tests, an ASan/UBSan pass over everything,
# and a ThreadSanitizer pass over the multi-threaded fuzzing paths.
#
#   scripts/check.sh          # all three stages
#   scripts/check.sh tier1    # just the tier-1 verify
#   scripts/check.sh asan     # just the ASan/UBSan stage
#   scripts/check.sh tsan     # just the TSan stage

set -euo pipefail
cd "$(dirname "$0")/.."

jobs=$(nproc 2>/dev/null || echo 4)
stage="${1:-all}"

run_tier1() {
  echo "==> tier-1: build + ctest"
  cmake -B build -S . >/dev/null
  cmake --build build -j"$jobs"
  ctest --test-dir build --output-on-failure -j"$jobs"
}

run_asan() {
  echo "==> ASan/UBSan: build + ctest"
  cmake -B build-asan -S . -DHEALER_SANITIZE=ON >/dev/null
  cmake --build build-asan -j"$jobs"
  ctest --test-dir build-asan --output-on-failure -j"$jobs"
}

run_tsan() {
  echo "==> TSan: build + parallel-fuzz tests"
  cmake -B build-tsan -S . -DHEALER_SANITIZE_THREAD=ON >/dev/null
  cmake --build build-tsan -j"$jobs" --target healer_tests
  ctest --test-dir build-tsan --output-on-failure -R parallel_fuzz_tsan
}

case "$stage" in
  tier1) run_tier1 ;;
  asan)  run_asan ;;
  tsan)  run_tsan ;;
  all)   run_tier1; run_asan; run_tsan ;;
  *) echo "usage: $0 [tier1|asan|tsan|all]" >&2; exit 2 ;;
esac

echo "==> all requested checks passed"
