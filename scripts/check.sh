#!/usr/bin/env bash
# Full verification: tier-1 build+tests, an ASan/UBSan pass over everything,
# a ThreadSanitizer pass over the multi-threaded fuzzing paths, a
# telemetry stage (smoke-test the observability surfaces + hot-path
# overhead guard against a -DHEALER_NO_TELEMETRY baseline build), and a
# parallel stage (scaling-bench smoke + critical-section-share guard), a
# fleet stage (reactor-fleet scaling: OS-thread ceiling + wall-clock budget
# + storm determinism tests), a
# relation stage (snapshot-Select speedup guard + draw-determinism tests),
# an exec stage (ring-transport replay bench + speedup guard), an
# introspect stage (live HTTP endpoints, journal export, postmortem-bundle
# determinism), a hotpath stage (arena allocation-reduction guard +
# two-level bitmap merge floor + arena/heap timing guards + equivalence
# tests), a distributed stage (sharded-gossip scaling bench +
# byte-identical-reconciliation guard), and a benchdiff stage (fresh bench
# metrics vs the committed BENCH_*.json baselines).
#
#   scripts/check.sh              # all stages
#   scripts/check.sh tier1        # just the tier-1 verify
#   scripts/check.sh asan         # just the ASan/UBSan stage
#   scripts/check.sh tsan         # just the TSan stage
#   scripts/check.sh telemetry    # just the telemetry smoke + overhead guard
#   scripts/check.sh parallel     # just the parallel scaling-bench guard
#   scripts/check.sh fleet        # just the reactor-fleet scaling guards
#   scripts/check.sh relation     # just the relation-engine guards
#   scripts/check.sh exec         # just the ring-transport replay guard
#   scripts/check.sh introspect   # just the introspection-plane smoke
#   scripts/check.sh hotpath      # just the hot-path memory guards
#   scripts/check.sh distributed  # just the sharded-campaign guards
#   scripts/check.sh benchdiff    # just the baseline-drift diff

set -euo pipefail
cd "$(dirname "$0")/.."

jobs=$(nproc 2>/dev/null || echo 4)
stage="${1:-all}"

run_tier1() {
  echo "==> tier-1: build + ctest"
  cmake -B build -S . >/dev/null
  cmake --build build -j"$jobs"
  ctest --test-dir build --output-on-failure -j"$jobs"
}

run_asan() {
  echo "==> ASan/UBSan: build + ctest"
  cmake -B build-asan -S . -DHEALER_SANITIZE=ON >/dev/null
  cmake --build build-asan -j"$jobs"
  ctest --test-dir build-asan --output-on-failure -j"$jobs"
}

run_tsan() {
  echo "==> TSan: build + parallel-fuzz tests"
  cmake -B build-tsan -S . -DHEALER_SANITIZE_THREAD=ON >/dev/null
  cmake --build build-tsan -j"$jobs" --target healer_tests
  ctest --test-dir build-tsan --output-on-failure -R parallel_fuzz_tsan
}

run_telemetry() {
  echo "==> telemetry: smoke-test metrics/trace/status surfaces"
  cmake -B build -S . >/dev/null
  cmake --build build -j"$jobs" --target healer_cli bench_micro
  local tmp
  tmp=$(mktemp -d)
  trap 'rm -rf "$tmp"' RETURN

  ./build/tools/healer fuzz --hours 0.5 --seed 3 --fault-rate 0.005 \
    --status-period 300 \
    --metrics-out "$tmp/metrics.prom" --trace-out "$tmp/trace.json" \
    > "$tmp/report.txt" 2> "$tmp/status.txt"

  # Live status: at least one line per simulated 5 minutes reached the sink.
  grep -q "execs" "$tmp/status.txt" || {
    echo "FAIL: no status lines on stderr" >&2; exit 1; }
  # Prometheus dump: parseable "# TYPE" lines and name/value samples.
  grep -q "^# TYPE healer_fuzz_execs_total counter$" "$tmp/metrics.prom" || {
    echo "FAIL: metrics dump missing TYPE line" >&2; exit 1; }
  awk '!/^#/ && NF { if ($0 !~ /^[a-z_]+(\{[^}]*\})? -?[0-9.e+-]+$/) \
      { print "bad sample: " $0; exit 1 } }' "$tmp/metrics.prom" || {
    echo "FAIL: malformed Prometheus sample" >&2; exit 1; }
  # Chrome trace: valid JSON (python3 when available) with trace events.
  if command -v python3 >/dev/null; then
    python3 -m json.tool "$tmp/trace.json" >/dev/null || {
      echo "FAIL: trace is not valid JSON" >&2; exit 1; }
  fi
  grep -q '"traceEvents"' "$tmp/trace.json" || {
    echo "FAIL: trace missing traceEvents" >&2; exit 1; }
  grep -q '"name": "exec"' "$tmp/trace.json" || {
    echo "FAIL: trace has no exec spans" >&2; exit 1; }
  echo "    smoke OK: status lines, Prometheus dump, Chrome trace"

  echo "==> telemetry: hot-path overhead guard (< 3% vs HEALER_NO_TELEMETRY)"
  cmake -B build-notel -S . -DHEALER_NO_TELEMETRY=ON >/dev/null
  cmake --build build-notel -j"$jobs" --target bench_micro
  local bench_args="--benchmark_filter=BM_FuzzerSteps \
    --benchmark_repetitions=3 --benchmark_format=csv"
  # Interleave instrumented / compiled-out runs so slow machine-load drift
  # hits both sides, then compare the global min real_time per binary. Six
  # rounds of three repetitions each: the min estimator only converges from
  # above (noise is strictly additive), so more interleaved samples tighten
  # both sides without biasing the ratio. The awk match is anchored on the
  # exact row name: "BM_FuzzerSteps_mean" / "_stddev" aggregate rows must
  # not leak into the minimum.
  : > "$tmp/with.csv"
  : > "$tmp/without.csv"
  local round
  for round in 1 2 3 4 5 6; do
    # shellcheck disable=SC2086
    ./build/bench/bench_micro $bench_args 2>/dev/null >> "$tmp/with.csv"
    # shellcheck disable=SC2086
    ./build-notel/bench/bench_micro $bench_args 2>/dev/null \
      >> "$tmp/without.csv"
  done
  local with without
  with=$(awk -F, '/^"BM_FuzzerSteps",/ {
      t=$3+0; if (min=="" || t<min) min=t } END { print min }' "$tmp/with.csv")
  without=$(awk -F, '/^"BM_FuzzerSteps",/ {
      t=$3+0; if (min=="" || t<min) min=t } END { print min }' "$tmp/without.csv")
  echo "    BM_FuzzerSteps min real_time: with=$with ns, without=$without ns"
  awk -v w="$with" -v wo="$without" 'BEGIN {
    if (wo <= 0) { print "FAIL: bad baseline"; exit 1 }
    ratio = w / wo;
    printf "    overhead: %+.2f%%\n", (ratio - 1) * 100;
    if (ratio > 1.03) { print "FAIL: telemetry overhead above 3%"; exit 1 }
  }'
}

run_parallel() {
  echo "==> parallel: scaling-bench smoke + lock-held-share guard"
  cmake -B build -S . >/dev/null
  cmake --build build -j"$jobs" --target bench_parallel_scaling
  local tmp
  tmp=$(mktemp -d)
  trap 'rm -rf "$tmp"' RETURN
  # Smoke config: enough execs per worker count to exercise snapshots and
  # batched publishes without making the stage slow on a loaded box.
  (cd "$tmp" && "$OLDPWD/build/bench/bench_parallel_scaling" 2000)
  [ -f "$tmp/BENCH_parallel_scaling.json" ] || {
    echo "FAIL: BENCH_parallel_scaling.json not written" >&2; exit 1; }
  # The tentpole guarantee: SharedFuzzState::mu covers only feedback
  # merging, never generation/mutation/execution. With the old design the
  # 8-worker critical-section share was ~1.0; the batched design measures
  # well under 0.05 here, so 0.25 is a regression tripwire with margin for
  # noisy machines, not a tight bound.
  awk -F: '/"workers8_lock_held_share"/ {
      gsub(/[ ,]/, "", $2); share=$2+0;
      printf "    8-worker lock-held share: %.4f (budget 0.25)\n", share;
      found=1; if (share > 0.25) { print "FAIL: lock-held share above budget"; exit 1 }
    } END { if (!found) { print "FAIL: workers8_lock_held_share missing"; exit 1 } }' \
    "$tmp/BENCH_parallel_scaling.json"
}

run_fleet() {
  echo "==> fleet: reactor scaling bench + thread-ceiling/wall-clock guards"
  cmake -B build -S . >/dev/null
  cmake --build build -j"$jobs" --target bench_parallel_scaling healer_tests
  local tmp
  tmp=$(mktemp -d)
  trap 'rm -rf "$tmp"' RETURN
  (cd "$tmp" && "$OLDPWD/build/bench/bench_parallel_scaling" 2000 1500)
  [ -f "$tmp/BENCH_fleet.json" ] || {
    echo "FAIL: BENCH_fleet.json not written" >&2; exit 1; }
  # Guard 1 — the tentpole's structural claim: 2048 simulated guests are
  # event-loop state machines multiplexed over the worker threads, so the
  # process's peak OS-thread count must stay within workers + shards + the
  # bench harness's own two threads (main + sampler). peak_threads reads 0
  # only when /proc is unavailable, which skips the guard.
  awk '
    /"fleet2048_peak_threads"/ { gsub(/[^0-9.]/, ""); peak=$0+0 }
    /"fleet2048_thread_budget"/ { gsub(/[^0-9.]/, ""); budget=$0+0 }
    END {
      if (budget == 0) { print "FAIL: fleet2048_thread_budget missing"; exit 1 }
      printf "    2048-guest peak OS threads: %d (budget %d)\n", peak, budget;
      if (peak == 0) { print "    (no /proc/self/status; ceiling skipped)"; exit 0 }
      if (peak > budget) { print "FAIL: thread count scales with fleet size"; exit 1 }
    }' "$tmp/BENCH_fleet.json"
  # Guard 2 — wall-clock budget: the 2048-guest smoke config measures ~2.6s
  # here; 30s is the regression tripwire (an accidental O(fleet) hot path or
  # a reactor spin shows up as an order-of-magnitude blowup, not seconds).
  awk -F: '/"fleet2048_wall_secs"/ {
      gsub(/[ ,]/, "", $2); secs=$2+0;
      printf "    2048-guest wall time: %.2fs (budget 30s)\n", secs;
      found=1; if (secs > 30) { print "FAIL: 2048-guest wall time above budget"; exit 1 }
    } END { if (!found) { print "FAIL: fleet2048_wall_secs missing"; exit 1 } }' \
    "$tmp/BENCH_fleet.json"
  # Storm determinism + lifecycle correctness: boot/crash storms charge
  # exactly once, same-seed journals are byte-identical, and the legacy
  # topology is untouched by the fleet plumbing.
  ctest --test-dir build --output-on-failure \
    -R 'EventLoopTest|FleetPoolTest|FleetFuzzerTest|FleetFuzzTest|VmPoolTest'
}

run_relation() {
  echo "==> relation: snapshot-Select speedup guard + draw determinism"
  cmake -B build -S . >/dev/null
  cmake --build build -j"$jobs" --target bench_micro healer_tests
  local tmp
  tmp=$(mktemp -d)
  trap 'rm -rf "$tmp"' RETURN
  # bench_micro --json-only times the epoch-snapshot Select against the
  # legacy shared_mutex + std::map reference on the same table and RNG.
  # The rewrite measures 10-12x here; 5x is the regression tripwire.
  (cd "$tmp" && "$OLDPWD/build/bench/bench_micro" --json-only)
  [ -f "$tmp/BENCH_micro.json" ] || {
    echo "FAIL: BENCH_micro.json not written" >&2; exit 1; }
  awk -F: '/"select_speedup"/ {
      gsub(/[ ,]/, "", $2); speedup=$2+0;
      printf "    snapshot Select speedup over legacy: %.2fx (floor 5x)\n", speedup;
      found=1; if (speedup < 5) { print "FAIL: Select speedup below 5x"; exit 1 }
    } END { if (!found) { print "FAIL: select_speedup missing"; exit 1 } }' \
    "$tmp/BENCH_micro.json"
  # Determinism: the snapshot Select must stay draw-identical to the map
  # reference, and fixed-seed campaigns must reproduce the golden
  # fingerprint bit-for-bit.
  ctest --test-dir build --output-on-failure \
    -R 'DrawEquivalentWithMapReference|GoldenFingerprint'
}

run_exec() {
  echo "==> exec: ring-transport replay bench + speedup guard"
  cmake -B build -S . >/dev/null
  cmake --build build -j"$jobs" --target bench_exec_replay healer_tests
  local tmp
  tmp=$(mktemp -d)
  trap 'rm -rf "$tmp"' RETURN
  (cd "$tmp" && "$OLDPWD/build/bench/bench_exec_replay")
  [ -f "$tmp/BENCH_exec_replay.json" ] || {
    echo "FAIL: BENCH_exec_replay.json not written" >&2; exit 1; }
  # The tentpole guarantee: amortizing the per-program round-trip overhead
  # across a drain makes the ring's per-program p50 span at batch >= 64 at
  # least 2x better than the legacy one-at-a-time channel. The latency
  # model measures ~3.9x here; 2x is the regression tripwire.
  awk -F: '/"ring_vs_legacy_p50_speedup"/ {
      gsub(/[ ,]/, "", $2); speedup=$2+0;
      printf "    ring p50 speedup over legacy at batch 64: %.2fx (floor 2x)\n", speedup;
      found=1; if (speedup < 2) { print "FAIL: ring speedup below 2x"; exit 1 }
    } END { if (!found) { print "FAIL: ring_vs_legacy_p50_speedup missing"; exit 1 } }' \
    "$tmp/BENCH_exec_replay.json"
  # Transport equivalence: fixed-seed ring campaigns must stay bit-identical
  # to their legacy twins (the differential that licenses the fast path).
  ctest --test-dir build --output-on-failure \
    -R 'RingTransport|PipelinedRing'
}

run_introspect() {
  echo "==> introspect: live endpoints, journal export, postmortem bundles"
  cmake -B build -S . >/dev/null
  cmake --build build -j"$jobs" --target healer_cli healer_postmortem
  local tmp
  tmp=$(mktemp -d)
  trap 'rm -rf "$tmp"' RETURN

  # HTTP fetch helper: curl when present, python3 otherwise.
  fetch() {  # fetch PORT PATH OUT
    if command -v curl >/dev/null; then
      curl -sf "http://127.0.0.1:$1$2" -o "$3"
    else
      python3 - "$1" "$2" "$3" <<'EOF'
import sys, urllib.request
port, path, out = sys.argv[1:4]
data = urllib.request.urlopen(
    "http://127.0.0.1:%s%s" % (port, path), timeout=10).read()
open(out, "wb").write(data)
EOF
    fi
  }

  # A short campaign with the introspection server on an ephemeral port.
  # --serve-secs keeps the server answering after the (fast, simulated)
  # campaign finishes, so the scrapes below always have a live target.
  ./build/tools/healer fuzz --hours 0.5 --seed 3 --http-port 0 \
    --serve-secs 20 --status-period 300 \
    --journal-out "$tmp/journal.jsonl" \
    > "$tmp/report.txt" 2> "$tmp/stderr.txt" &
  local fuzz_pid=$!
  local port="" i
  for i in $(seq 1 100); do
    port=$(sed -n \
      's/.*introspection server listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' \
      "$tmp/stderr.txt" | head -1)
    [ -n "$port" ] && break
    sleep 0.1
  done
  [ -n "$port" ] || {
    echo "FAIL: server port never announced on stderr" >&2
    kill "$fuzz_pid" 2>/dev/null; exit 1; }

  fetch "$port" /healthz "$tmp/healthz" || {
    echo "FAIL: /healthz unreachable or unhealthy" >&2
    kill "$fuzz_pid" 2>/dev/null; exit 1; }
  grep -q "^ok$" "$tmp/healthz" || {
    echo "FAIL: /healthz body is not ok" >&2; exit 1; }
  fetch "$port" /metrics "$tmp/metrics.prom" || {
    echo "FAIL: /metrics unreachable" >&2; kill "$fuzz_pid" 2>/dev/null
    exit 1; }
  fetch "$port" /status "$tmp/status.json" || {
    echo "FAIL: /status unreachable" >&2; kill "$fuzz_pid" 2>/dev/null
    exit 1; }
  fetch "$port" '/journal?n=32' "$tmp/journal_tail.jsonl" || {
    echo "FAIL: /journal unreachable" >&2; kill "$fuzz_pid" 2>/dev/null
    exit 1; }
  wait "$fuzz_pid" || { echo "FAIL: fuzz campaign failed" >&2; exit 1; }

  # The scraped exposition must lint exactly like the --metrics-out dump:
  # HELP/TYPE comments plus name{labels} value samples, nothing else.
  grep -q "^# HELP healer_fuzz_execs_total " "$tmp/metrics.prom" || {
    echo "FAIL: scraped metrics missing HELP line" >&2; exit 1; }
  grep -q "^# TYPE healer_fuzz_execs_total counter$" "$tmp/metrics.prom" || {
    echo "FAIL: scraped metrics missing TYPE line" >&2; exit 1; }
  awk '!/^#/ && NF { if ($0 !~ /^[a-z_]+(\{[^}]*\})? -?[0-9.e+-]+$/) \
      { print "bad sample: " $0; exit 1 } }' "$tmp/metrics.prom" || {
    echo "FAIL: malformed scraped Prometheus sample" >&2; exit 1; }
  grep -q '"execs"' "$tmp/status.json" || {
    echo "FAIL: /status missing execs" >&2; exit 1; }
  [ -s "$tmp/journal_tail.jsonl" ] || {
    echo "FAIL: /journal tail empty" >&2; exit 1; }
  [ -s "$tmp/journal.jsonl" ] || {
    echo "FAIL: --journal-out wrote nothing" >&2; exit 1; }
  grep -q '"kind":"exec"' "$tmp/journal.jsonl" || {
    echo "FAIL: journal has no exec records" >&2; exit 1; }
  if command -v python3 >/dev/null; then
    python3 -c 'import json,sys
for line in open(sys.argv[1]):
    json.loads(line)' "$tmp/journal.jsonl" || {
      echo "FAIL: journal JSONL does not parse" >&2; exit 1; }
  fi
  echo "    live endpoints OK: /healthz /metrics /status /journal + JSONL"

  # Postmortem bundles: two same-seed crashing campaigns must write one
  # bundle per unique crash and byte-identical trees (the flight recorder
  # and every bundle field derive from simulated time, never wall clock).
  local run_flags="fuzz --hours 0.5 --seed 3"
  # shellcheck disable=SC2086
  ./build/tools/healer $run_flags --postmortem-dir "$tmp/pm_a" >/dev/null
  # shellcheck disable=SC2086
  ./build/tools/healer $run_flags --postmortem-dir "$tmp/pm_b" >/dev/null
  local bundles
  bundles=$(find "$tmp/pm_a" -mindepth 1 -maxdepth 1 -type d | wc -l)
  [ "$bundles" -gt 0 ] || {
    echo "FAIL: no postmortem bundles written" >&2; exit 1; }
  diff -r "$tmp/pm_a" "$tmp/pm_b" >/dev/null || {
    echo "FAIL: same-seed postmortem bundles differ" >&2; exit 1; }
  local bundle
  bundle=$(find "$tmp/pm_a" -mindepth 1 -maxdepth 1 -type d | sort | head -1)
  ./build/tools/healer_postmortem "$bundle" > "$tmp/pm.txt" || {
    echo "FAIL: healer_postmortem failed on $bundle" >&2; exit 1; }
  grep -q "^crash:" "$tmp/pm.txt" || {
    echo "FAIL: postmortem printer missing crash section" >&2; exit 1; }
  grep -q "^journal " "$tmp/pm.txt" || {
    echo "FAIL: postmortem printer missing journal section" >&2; exit 1; }
  echo "    postmortem OK: $bundles deterministic bundles, printer renders"
}

run_hotpath() {
  echo "==> hotpath: arena allocation guard + bitmap merge floor"
  cmake -B build -S . >/dev/null
  cmake --build build -j"$jobs" --target bench_hotpath healer_tests
  local tmp
  tmp=$(mktemp -d)
  trap 'rm -rf "$tmp"' RETURN
  # bench_hotpath --json-only counts operator-new hits per generated program
  # (heap vs arena build paths on the same seed) and times the two-level
  # bitmap MergeNew against a pre-summary full-scan reference on a 16-word
  # sparse map. The arena path measures ~3.3x fewer allocations and the
  # sparse merge ~20x faster here; 2x / 4x are the regression tripwires.
  (cd "$tmp" && "$OLDPWD/build/bench/bench_hotpath" --json-only)
  [ -f "$tmp/BENCH_hotpath.json" ] || {
    echo "FAIL: BENCH_hotpath.json not written" >&2; exit 1; }
  awk -F: '/"gen_alloc_reduction"/ {
      gsub(/[ ,]/, "", $2); r=$2+0;
      printf "    arena allocation reduction: %.2fx (floor 2x)\n", r;
      found=1; if (r < 2) { print "FAIL: allocation reduction below 2x"; exit 1 }
    } END { if (!found) { print "FAIL: gen_alloc_reduction missing"; exit 1 } }' \
    "$tmp/BENCH_hotpath.json"
  awk -F: '/"merge_sparse16_speedup"/ {
      gsub(/[ ,]/, "", $2); s=$2+0;
      printf "    sparse-16 MergeNew speedup: %.2fx (floor 4x)\n", s;
      found=1; if (s < 4) { print "FAIL: sparse merge speedup below 4x"; exit 1 }
    } END { if (!found) { print "FAIL: merge_sparse16_speedup missing"; exit 1 } }' \
    "$tmp/BENCH_hotpath.json"
  # Time guards: the allocation win must not be paid for in wall-clock. The
  # bench interleaves short arena/heap (and dense twolevel/flat) blocks and
  # compares per-loop minima, so these ratios are stable under load; the
  # ceilings bound time, not just counts. The dense escape hatch keeps the
  # two-level merge within 1.1x of a flat linear scan even at >= 50% map
  # occupancy, and HCORP1 warm-start may never be slower than the legacy
  # text loader.
  awk -F: '/"gen_time_ratio"/ {
      gsub(/[ ,]/, "", $2); r=$2+0;
      printf "    arena/heap generation time ratio: %.3f (ceiling 1.05)\n", r;
      found=1; if (r > 1.05) { print "FAIL: arena generation slower than heap"; exit 1 }
    } END { if (!found) { print "FAIL: gen_time_ratio missing"; exit 1 } }' \
    "$tmp/BENCH_hotpath.json"
  awk -F: '/"merge_dense_ratio"/ {
      gsub(/[ ,]/, "", $2); r=$2+0;
      printf "    dense twolevel/flat merge ratio: %.3f (ceiling 1.1)\n", r;
      found=1; if (r > 1.1) { print "FAIL: dense merge above flat-scan ceiling"; exit 1 }
    } END { if (!found) { print "FAIL: merge_dense_ratio missing"; exit 1 } }' \
    "$tmp/BENCH_hotpath.json"
  awk -F: '/"warmstart_speedup"/ {
      gsub(/[ ,]/, "", $2); s=$2+0;
      printf "    HCORP1 warm-start speedup: %.3fx (floor 1x)\n", s;
      found=1; if (s < 1) { print "FAIL: HCORP1 warm-start slower than legacy"; exit 1 }
    } END { if (!found) { print "FAIL: warmstart_speedup missing"; exit 1 } }' \
    "$tmp/BENCH_hotpath.json"
  # Equivalence + format hardening: arena builds must serialize and cover
  # bit-identically to heap builds, fixed-seed campaigns must reproduce the
  # golden fingerprint, and the mmap corpus loader must survive hostile
  # inputs.
  ctest --test-dir build --output-on-failure \
    -R 'ProgArena|ArenaHeapEquivalence|GoldenFingerprint|Hcorp1|BitmapTest'
}

run_distributed() {
  echo "==> distributed: sharded-gossip scaling bench + reconciliation guard"
  cmake -B build -S . >/dev/null
  cmake --build build -j"$jobs" --target bench_distributed healer_tests
  local tmp
  tmp=$(mktemp -d)
  trap 'rm -rf "$tmp"' RETURN
  (cd "$tmp" && "$OLDPWD/build/bench/bench_distributed")
  [ -f "$tmp/BENCH_distributed.json" ] || {
    echo "FAIL: BENCH_distributed.json not written" >&2; exit 1; }
  # Guard 1 — the tentpole's correctness claim: two 4-shard campaigns under
  # different adversarial network seeds (delivery shuffle + replays) must
  # reconcile to byte-identical global relation tables, and every shard's
  # exactly-once relation identity must hold.
  awk -F: '/"reconcile_identical"/ {
      gsub(/[ ,]/, "", $2); same=$2+0;
      printf "    reconciled tables byte-identical across net seeds: %s\n", \
        same == 1 ? "yes" : "NO";
      found=1; if (same != 1) { print "FAIL: reconciliation differs across gossip orderings"; exit 1 }
    } END { if (!found) { print "FAIL: reconcile_identical missing"; exit 1 } }' \
    "$tmp/BENCH_distributed.json"
  awk -F: '/identities_ok"/ {
      gsub(/[ ,]/, "", $2); if ($2+0 != 1) bad=1; found=1
    } END {
      if (!found) { print "FAIL: identities_ok metrics missing"; exit 1 }
      if (bad) { print "FAIL: exactly-once relation identity violated"; exit 1 }
      print "    exactly-once identities hold at every shard count"
    }' "$tmp/BENCH_distributed.json"
  # Guard 2 — throughput scaling: aggregate execs/sec at 4 shards must be
  # >= 3x the 1-shard rate. Shards scale with cores (they fuzz on their own
  # threads), so the guard is only meaningful when the host has >= 4 cores;
  # on smaller boxes the shards time-slice one CPU and the ratio is ~1 by
  # construction, so the guard is skipped (same idiom as the fleet stage's
  # /proc-less thread-ceiling skip).
  awk -F: '
    /"cores"/ { gsub(/[ ,]/, "", $2); cores=$2+0 }
    /"shards4_speedup_vs_1"/ { gsub(/[ ,]/, "", $2); s4=$2+0; found=1 }
    END {
      if (!found) { print "FAIL: shards4_speedup_vs_1 missing"; exit 1 }
      if (cores < 4) {
        printf "    4-shard throughput: %.2fx of 1-shard (%d cores; >=3x guard skipped)\n", s4, cores;
        exit 0
      }
      printf "    4-shard throughput: %.2fx of 1-shard (floor 3x)\n", s4;
      if (s4 < 3) { print "FAIL: 4-shard aggregate throughput below 3x"; exit 1 }
    }' "$tmp/BENCH_distributed.json"
  # Reconciliation + hostile-gossip tests: cross-shard state flow, identity
  # accounting, canonical byte encodings, and the HGSP1 decoder's posture
  # against truncation, bad lengths, and replayed deltas.
  ctest --test-dir build --output-on-failure \
    -R 'ShardedCampaignTest|GossipCodecTest|GossipDedupTest|GossipScheduleTest|GossipHostileTest'
}

run_benchdiff() {
  echo "==> benchdiff: fresh bench metrics vs committed baselines"
  if ! command -v python3 >/dev/null; then
    echo "    (python3 unavailable; stage skipped)"
    return 0
  fi
  cmake -B build -S . >/dev/null
  cmake --build build -j"$jobs" --target bench_hotpath bench_distributed
  local tmp
  tmp=$(mktemp -d)
  trap 'rm -rf "$tmp"' RETURN
  (cd "$tmp" && "$OLDPWD/build/bench/bench_hotpath" --json-only)
  (cd "$tmp" && "$OLDPWD/build/bench/bench_distributed")
  # The two timing-derived hotpath ratios are compared under the loose
  # factor tolerance: their floors/ceilings are enforced by the hotpath
  # stage above; the diff only has to catch silent baseline drift.
  python3 scripts/bench_diff.py BENCH_hotpath.json \
    "$tmp/BENCH_hotpath.json" \
    --loose merge_dense_ratio --loose merge_sparse16_speedup
  python3 scripts/bench_diff.py BENCH_distributed.json \
    "$tmp/BENCH_distributed.json"
}

case "$stage" in
  tier1) run_tier1 ;;
  asan)  run_asan ;;
  tsan)  run_tsan ;;
  telemetry) run_telemetry ;;
  parallel) run_parallel ;;
  fleet) run_fleet ;;
  relation) run_relation ;;
  exec) run_exec ;;
  introspect) run_introspect ;;
  hotpath) run_hotpath ;;
  distributed) run_distributed ;;
  benchdiff) run_benchdiff ;;
  all)   run_tier1; run_asan; run_tsan; run_telemetry; run_parallel; run_fleet; run_relation; run_exec; run_introspect; run_hotpath; run_distributed; run_benchdiff ;;
  *) echo "usage: $0 [tier1|asan|tsan|telemetry|parallel|fleet|relation|exec|introspect|hotpath|distributed|benchdiff|all]" >&2; exit 2 ;;
esac

echo "==> all requested checks passed"
