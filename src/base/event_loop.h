// EventLoop: the single-threaded-per-shard reactor that drives VM lifecycle
// state machines over simulated time (DESIGN.md §12). Three event sources
// feed one deterministic dispatch order:
//
//   * a hierarchical timer wheel over SimClock nanoseconds — boot, reboot
//     and watchdog deadlines land in 64-slot levels (level-0 tick = one
//     simulated millisecond) with a per-level occupancy bitmask, so an idle
//     loop skips straight to the next armed deadline instead of ticking;
//   * a FIFO ready queue (Post) for immediate work;
//   * completion sources — the WakeupFd idiom from the ring transport: a
//     producer on any thread rings a doorbell (SignalCompletion) and the
//     loop runs the registered handler at its next pump, with coalescing
//     exactly like an eventfd read.
//
// Determinism contract: timers fire strictly ordered by (deadline,
// sequence-number) — two timers armed for the same nanosecond fire in the
// order they were scheduled — and Post callbacks run FIFO. A single-threaded
// caller scheduling the same work against the same clock therefore observes
// byte-identical event order across runs, which is what lets fleet-scale
// boot/crash storms journal identically for a fixed seed.
//
// The loop's own `now()` is virtual time: RunUntil(horizon) advances it to
// each due deadline in turn, so 512 overlapping boots cost one boot latency
// of loop time, not 512 (the shared campaign SimClock only ever moves via
// its additive Advance; the pool bridges the two — see vm_pool.h).
//
// Thread safety: all public methods are internally locked, so parallel
// workers may Post/Schedule/Signal against a shard they do not pump.
// Callbacks run with the lock released (re-arming a timer from inside a
// callback is fine); the caller must serialize pumps per loop (the pool's
// per-shard pump mutex does this).

#ifndef SRC_BASE_EVENT_LOOP_H_
#define SRC_BASE_EVENT_LOOP_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "src/base/sim_clock.h"

namespace healer {

class EventLoop {
 public:
  using Callback = std::function<void()>;
  using TimerId = uint64_t;

  static constexpr SimClock::Nanos kNoDeadline = ~SimClock::Nanos{0};
  static constexpr TimerId kInvalidTimer = 0;

  explicit EventLoop(SimClock::Nanos start = 0);

  // ---- ready queue ----
  // Enqueues `cb` to run at the next pump, FIFO with other posts.
  void Post(Callback cb);

  // ---- timers ----
  // Arms a one-shot timer. A deadline at or before now() fires at the next
  // pump (ordered by its requested deadline, then arm order). Returns a
  // handle for Cancel; ids are never reused within a loop.
  TimerId ScheduleAt(SimClock::Nanos deadline, Callback cb);
  TimerId ScheduleAfter(SimClock::Nanos delay, Callback cb);
  // Disarms a timer. Returns false if it already fired or was cancelled.
  bool Cancel(TimerId id);

  // ---- completion sources (WakeupFd idiom) ----
  // Registers a handler; returns its doorbell index. Registration is not
  // thread-safe with pumping — register sources before the loop is shared.
  size_t AddCompletionSource(Callback handler);
  // Rings doorbell `source` from any thread. Multiple signals before the
  // next pump coalesce into one handler invocation (eventfd semantics).
  void SignalCompletion(size_t source);

  // ---- pumping (single pumper at a time) ----
  // Runs completions + posted callbacks without advancing time. Returns the
  // number of callbacks dispatched.
  size_t PumpReady();
  // Dispatches every due event with deadline <= horizon, advancing now() to
  // each deadline in turn and to `horizon` at the end. Returns dispatches.
  size_t RunUntil(SimClock::Nanos horizon);
  // Drains until no timer remains armed (repeating timers never let this
  // return — test/bench helper, not for Monitor-driven production loops).
  size_t RunUntilIdle();

  // Earliest armed deadline, kNoDeadline when idle. The unlocked variant
  // `next_deadline_hint()` is a conservative (never-late) relaxed read for
  // hot-path "anything due?" probes.
  SimClock::Nanos NextDeadline() const;
  SimClock::Nanos next_deadline_hint() const {
    return deadline_hint_.load(std::memory_order_relaxed);
  }

  SimClock::Nanos now() const { return now_.load(std::memory_order_relaxed); }
  size_t pending_timers() const {
    return live_timers_.load(std::memory_order_relaxed);
  }
  uint64_t dispatched() const {
    return dispatched_.load(std::memory_order_relaxed);
  }

 private:
  // One simulated millisecond per level-0 tick: fine enough that distinct
  // VM-model latencies never alias, coarse enough that a 7-hour campaign
  // spans ~25M ticks (level 4 of 6).
  static constexpr SimClock::Nanos kTickNs = SimClock::kMillisecond;
  static constexpr size_t kWheelBits = 6;
  static constexpr size_t kWheelSlots = 1u << kWheelBits;  // 64
  static constexpr size_t kWheelLevels = 6;  // 64^6 ticks ≈ 2.2 sim-years.

  struct Timer {
    SimClock::Nanos deadline = 0;
    uint64_t seq = 0;  // Arm order; the (deadline, seq) tiebreak.
    Callback cb;
  };

  // All Locked() helpers require mu_ held.
  void InsertLocked(TimerId id, SimClock::Nanos deadline);
  // Pulls level-`level` bucket `slot` down to finer levels.
  void CascadeLocked(size_t level, size_t slot);
  // Moves the wheel cursor to `tick`, cascading at every 64-tick boundary.
  void AdvanceCursorLocked(uint64_t tick);
  // Minimum live deadline in `slot` of `level`; prunes cancelled ids and
  // clears the occupancy bit when the slot empties. kNoDeadline if empty.
  SimClock::Nanos SlotMinLocked(size_t level, size_t slot);
  SimClock::Nanos NextTimerDeadlineLocked();
  void RefreshHintLocked();
  // Collects due (deadline <= horizon) timers from the cursor's level-0
  // slot into `out`, sorted by (deadline, seq).
  void CollectDueLocked(SimClock::Nanos horizon, std::vector<Timer>* out);

  mutable std::mutex mu_;
  std::atomic<SimClock::Nanos> now_;
  uint64_t cursor_ = 0;  // Wheel position in ticks (= now_ / kTickNs).
  uint64_t next_id_ = 1;
  uint64_t next_seq_ = 0;
  std::unordered_map<TimerId, Timer> timers_;
  // slots_[level][slot] holds timer ids; cancelled ids are pruned lazily.
  std::vector<TimerId> slots_[kWheelLevels][kWheelSlots];
  uint64_t occupancy_[kWheelLevels] = {};
  std::vector<Callback> ready_;

  struct CompletionSource {
    Callback handler;
    std::atomic<uint64_t> pending{0};
  };
  // Deque-stable storage: sources are registered up front and never removed.
  std::vector<std::unique_ptr<CompletionSource>> sources_;
  std::atomic<bool> completions_pending_{false};

  std::atomic<SimClock::Nanos> deadline_hint_{kNoDeadline};
  std::atomic<size_t> live_timers_{0};
  std::atomic<uint64_t> dispatched_{0};
};

}  // namespace healer

#endif  // SRC_BASE_EVENT_LOOP_H_
