#include "src/base/trace.h"

#include "src/base/string_util.h"

namespace healer {

void TraceBuffer::Push(const TraceEvent& event) {
#ifdef HEALER_NO_TELEMETRY
  (void)event;
#else
  if (capacity_ == 0) {
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  ++total_;
  if (ring_.size() < capacity_) {
    ring_.push_back(event);
  } else {
    ring_[next_] = event;
    next_ = (next_ + 1) % capacity_;
  }
#endif
}

void TraceBuffer::RecordComplete(const char* name, const char* category,
                                 SimClock::Nanos start,
                                 SimClock::Nanos duration, uint32_t tid) {
  TraceEvent event;
  event.name = name;
  event.category = category;
  event.phase = 'X';
  event.tid = tid;
  event.start = start;
  event.duration = duration;
  Push(event);
}

void TraceBuffer::RecordInstant(const char* name, const char* category,
                                SimClock::Nanos at, uint32_t tid) {
  TraceEvent event;
  event.name = name;
  event.category = category;
  event.phase = 'i';
  event.tid = tid;
  event.start = at;
  Push(event);
}

void TraceBuffer::RecordInstantArg(const char* name, const char* category,
                                   SimClock::Nanos at, uint64_t arg,
                                   uint32_t tid) {
  TraceEvent event;
  event.name = name;
  event.category = category;
  event.phase = 'i';
  event.tid = tid;
  event.start = at;
  event.arg = arg;
  event.has_arg = true;
  Push(event);
}

std::vector<TraceEvent> TraceBuffer::Events() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  if (ring_.size() < capacity_ || capacity_ == 0) {
    out = ring_;
  } else {
    out.insert(out.end(), ring_.begin() + static_cast<long>(next_),
               ring_.end());
    out.insert(out.end(), ring_.begin(),
               ring_.begin() + static_cast<long>(next_));
  }
  return out;
}

size_t TraceBuffer::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.size();
}

uint64_t TraceBuffer::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_ - ring_.size();
}

std::string TraceBuffer::ToChromeJson() const {
  return TraceEventsToChromeJson(Events());
}

std::string TraceEventsToChromeJson(const std::vector<TraceEvent>& events) {
  // Simulated nanoseconds -> trace microseconds (Chrome's unit).
  std::string out = "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  for (size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    out += i == 0 ? "\n" : ",\n";
    out += StrFormat("{\"name\": \"%s\", \"cat\": \"%s\", \"ph\": \"%c\", "
                     "\"pid\": 1, \"tid\": %u, \"ts\": %.3f",
                     e.name, e.category, e.phase, e.tid,
                     static_cast<double>(e.start) / 1000.0);
    if (e.phase == 'X') {
      out += StrFormat(", \"dur\": %.3f",
                       static_cast<double>(e.duration) / 1000.0);
    }
    if (e.phase == 'i') {
      out += ", \"s\": \"t\"";
    }
    if (e.has_arg) {
      out += StrFormat(", \"args\": {\"value\": %llu}",
                       (unsigned long long)e.arg);
    }
    out += "}";
  }
  out += "\n]}\n";
  return out;
}

}  // namespace healer
