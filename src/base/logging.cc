#include "src/base/logging.h"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace healer {

namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarning};
std::mutex g_log_mutex;  // Serializes sink calls and sink replacement.
LogSink g_sink;          // Empty -> stderr default.

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(level); }
LogLevel GetLogLevel() { return g_level.load(); }

void SetLogSink(LogSink sink) {
  std::lock_guard<std::mutex> lock(g_log_mutex);
  g_sink = std::move(sink);
}

void LogToSink(LogLevel level, const std::string& line) {
  std::lock_guard<std::mutex> lock(g_log_mutex);
  if (g_sink) {
    g_sink(level, line);
  } else {
    std::fprintf(stderr, "%s\n", line.c_str());
  }
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') {
      base = p + 1;
    }
  }
  stream_ << "[" << LevelName(level_) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() { LogToSink(level_, stream_.str()); }

}  // namespace internal

}  // namespace healer
