// Fixed-size bitmaps used for coverage accounting.
//
// CoverageBitmap is an AFL-style 2^16-slot hit map: edges are hashed into
// slots and campaigns track the set of slots ever seen. MergeNew() returns
// how many previously-unseen slots the merge contributed, which is the
// "new coverage" signal consumed by the fuzzers.
//
// Two-level layout: alongside the payload words the bitmap maintains a
// summary index with one bit per payload word (bit w set ⇔ words_[w] != 0;
// 16 summary words cover the 1024-word coverage map). MergeNew/HasNewBits
// walk only the occupied words of the source — a per-call map that touched
// a handful of slots merges in a handful of visits instead of a full
// 8 KiB scan. The summary is conservative-exact: a bit is set by whichever
// thread first lands a payload bit in that word, and only Clear() resets it.
//
// Dense escape hatch: the ctz-driven summary walk wins big on sparse
// sources but loses to a straight word loop once most payload words are
// occupied (the per-bit ctz/clear bookkeeping buys no skipping and defeats
// instruction-level parallelism). MergeNew tracks source occupancy with an
// O(1) counter and switches to an unrolled linear scan above
// kDenseMergeThreshold — bench_hotpath guards that the dense case stays
// within 1.1x of the flat-scan reference while the sparse case keeps its
// ~20x win.
//
// Word granularity is also the unit of cross-shard coverage gossip
// (DESIGN.md §13): ForEachOccupiedWord exports the occupied (index, value)
// pairs of a quiescent bitmap, and OrWord merges one received word with the
// same exactly-once fresh-bit credit as MergeNew.
//
// Concurrency: mutating word accesses go through std::atomic_ref with
// relaxed ordering, so a campaign-global bitmap can absorb merges from
// parallel workers without any external lock ("atomic-word MergeNew"). Each
// newly-set bit is counted exactly once across all threads (fetch_or tells
// the winner). On the single-threaded path the relaxed loads/stores compile
// to plain moves; the read-modify-write ops only run for *fresh* bits, which
// are rare in a warmed-up campaign, so the hot already-seen case costs the
// same load+test it always did. Clear()/Hash()/operator== are quiescent-only
// operations: they abort if a MergeNew is in flight on this bitmap (always
// checked, independent of NDEBUG — the check is one relaxed load).

#ifndef SRC_BASE_BITMAP_H_
#define SRC_BASE_BITMAP_H_

#include <atomic>
#include <bit>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

namespace healer {

class Bitmap {
 public:
  explicit Bitmap(size_t bits)
      : bits_(bits),
        words_((bits + 63) / 64, 0),
        summary_((words_.size() + 63) / 64, 0) {}

  // Bitmaps participating in a merge/compare must be the same size; a
  // mismatch means two different coverage spaces are being mixed, which
  // would silently truncate the merge. Always fatal (independent of NDEBUG).
  static void CheckSameSize(const Bitmap& a, const Bitmap& b) {
    if (a.bits_ != b.bits_) {
      std::fprintf(stderr, "bitmap size mismatch: %zu vs %zu bits\n", a.bits_,
                   b.bits_);
      std::abort();
    }
  }

  size_t size_bits() const { return bits_; }

  bool Test(size_t idx) const {
    return (std::atomic_ref<const uint64_t>(words_[idx >> 6])
                .load(std::memory_order_relaxed) >>
            (idx & 63)) &
           1;
  }

  // Sets the bit; returns true iff it was previously clear. Safe against
  // concurrent Set/MergeNew on the same bitmap: exactly one caller wins a
  // fresh bit.
  bool Set(size_t idx) {
    std::atomic_ref<uint64_t> word(words_[idx >> 6]);
    const uint64_t mask = 1ULL << (idx & 63);
    if (word.load(std::memory_order_relaxed) & mask) {
      return false;
    }
    const uint64_t prev = word.fetch_or(mask, std::memory_order_relaxed);
    if (prev & mask) {
      return false;  // Another thread set it between the load and the RMW.
    }
    MarkSummary(idx >> 6);
    std::atomic_ref<size_t>(popcount_).fetch_add(1,
                                                 std::memory_order_relaxed);
    return true;
  }

  void Clear() {
    CheckQuiescent("Clear");
    std::fill(words_.begin(), words_.end(), 0);
    std::fill(summary_.begin(), summary_.end(), 0);
    popcount_ = 0;
    occupied_words_ = 0;
  }

  // Number of set bits. O(1).
  size_t Count() const {
    return std::atomic_ref<const size_t>(popcount_).load(
        std::memory_order_relaxed);
  }

  // ORs `other` in; returns the number of bits newly set in *this. `other`
  // must be quiescent (typically a worker-local per-call map); *this may be
  // merged into concurrently. Visits only `other`'s occupied words, guided
  // by its summary index.
  size_t MergeNew(const Bitmap& other) {
    CheckSameSize(*this, other);
    MergeScope in_flight(this);
    // Dense source: most payload words occupied, so the summary cannot skip
    // anything — take the straight word loop instead of the per-bit walk.
    if (other.OccupiedWords() * kDenseMergeThreshold >= other.words_.size()) {
      return MergeNewDense(other);
    }
    size_t fresh = 0;
    for (size_t s = 0; s < other.summary_.size(); ++s) {
      uint64_t sw = other.summary_[s];
      while (sw != 0) {
        const size_t i =
            (s << 6) + static_cast<size_t>(std::countr_zero(sw));
        sw &= sw - 1;
        const uint64_t theirs = other.words_[i];
        std::atomic_ref<uint64_t> word(words_[i]);
        uint64_t add = theirs & ~word.load(std::memory_order_relaxed);
        if (add == 0) {
          continue;
        }
        const uint64_t prev = word.fetch_or(add, std::memory_order_relaxed);
        add &= ~prev;  // Bits a concurrent merger beat us to are not ours.
        if (add != 0) {
          MarkSummary(i);
          fresh += static_cast<size_t>(std::popcount(add));
        }
      }
    }
    if (fresh != 0) {
      std::atomic_ref<size_t>(popcount_).fetch_add(fresh,
                                                   std::memory_order_relaxed);
    }
    return fresh;
  }

  // True iff `other` has at least one bit not present in *this. Both
  // bitmaps must be quiescent (analysis/test paths): the dense-block scan
  // below uses plain word loads so the compiler can vectorize it.
  bool HasNewBits(const Bitmap& other) const {
    CheckSameSize(*this, other);
    for (size_t s = 0; s < other.summary_.size(); ++s) {
      const uint64_t sw = other.summary_[s];
      if (sw == 0) {
        continue;
      }
      const size_t base = s << 6;
      if (sw == ~0ULL && base + 64 <= words_.size()) {
        // Fully-occupied block: a branch-free OR-reduction over 64 plain
        // uint64_t lanes (autovectorizes; see bench_hotpath).
        uint64_t acc = 0;
        for (size_t i = 0; i < 64; ++i) {
          acc |= other.words_[base + i] & ~words_[base + i];
        }
        if (acc != 0) {
          return true;
        }
        continue;
      }
      uint64_t bitset = sw;
      while (bitset != 0) {
        const size_t i = base + static_cast<size_t>(std::countr_zero(bitset));
        bitset &= bitset - 1;
        if ((other.words_[i] & ~words_[i]) != 0) {
          return true;
        }
      }
    }
    return false;
  }

  bool operator==(const Bitmap& other) const {
    CheckQuiescent("operator==");
    other.CheckQuiescent("operator==");
    return bits_ == other.bits_ && words_ == other.words_;
  }

  // Stable content checksum (tests use it to prove a faulted execution left
  // the campaign bitmap untouched). Quiescent-only; the hash is over the
  // payload words, so it is layout-stable across the summary-index change.
  uint64_t Hash() const {
    CheckQuiescent("Hash");
    uint64_t h = 0xcbf29ce484222325ULL;
    for (uint64_t w : words_) {
      h = (h ^ w) * 0x100000001b3ULL;
      h ^= h >> 29;
    }
    return h;
  }

  // Exposed for tests: the summary word covering payload words
  // [idx*64, idx*64+64).
  uint64_t SummaryWord(size_t idx) const {
    return std::atomic_ref<const uint64_t>(summary_[idx])
        .load(std::memory_order_relaxed);
  }
  size_t SummaryWords() const { return summary_.size(); }

  // ---- word-granular export/import (cross-shard coverage gossip) ----

  size_t WordCount() const { return words_.size(); }

  uint64_t Word(size_t idx) const {
    return std::atomic_ref<const uint64_t>(words_[idx])
        .load(std::memory_order_relaxed);
  }

  // Number of nonzero payload words. O(1); exact for quiescent bitmaps
  // (the counter is bumped by whichever thread first occupies a word).
  size_t OccupiedWords() const {
    return std::atomic_ref<const size_t>(occupied_words_)
        .load(std::memory_order_relaxed);
  }

  // Invokes `fn(word_index, word_value)` for every occupied payload word,
  // ascending, guided by the summary index. The bitmap should be quiescent
  // (a concurrent merge's bits may or may not be seen, never torn words).
  template <typename Fn>
  void ForEachOccupiedWord(Fn&& fn) const {
    for (size_t s = 0; s < summary_.size(); ++s) {
      uint64_t sw = std::atomic_ref<const uint64_t>(summary_[s])
                        .load(std::memory_order_relaxed);
      while (sw != 0) {
        const size_t i = (s << 6) + static_cast<size_t>(std::countr_zero(sw));
        sw &= sw - 1;
        const uint64_t w = Word(i);
        if (w != 0) {
          fn(i, w);
        }
      }
    }
  }

  // ORs one word in (a received gossip word); returns the number of bits
  // newly set, with the same exactly-once credit as MergeNew. Safe against
  // concurrent Set/MergeNew/OrWord on *this.
  size_t OrWord(size_t idx, uint64_t value) {
    if (value == 0 || idx >= words_.size()) {
      return 0;
    }
    std::atomic_ref<uint64_t> word(words_[idx]);
    uint64_t add = value & ~word.load(std::memory_order_relaxed);
    if (add == 0) {
      return 0;
    }
    const uint64_t prev = word.fetch_or(add, std::memory_order_relaxed);
    add &= ~prev;
    if (add == 0) {
      return 0;
    }
    MarkSummary(idx);
    const size_t fresh = static_cast<size_t>(std::popcount(add));
    std::atomic_ref<size_t>(popcount_).fetch_add(fresh,
                                                 std::memory_order_relaxed);
    return fresh;
  }

 private:
  // MergeNew switches to the linear scan when at least 1/kDenseMergeThreshold
  // of the source's payload words are occupied (the summary walk's per-bit
  // bookkeeping stops paying for itself around 50% occupancy).
  static constexpr size_t kDenseMergeThreshold = 2;

  // Straight word loop over the whole map, 4-wide unrolled: the common
  // nothing-fresh case reduces to loads + and-nots + one branch per four
  // words, which is what lets the dense case stay within 1.1x of the plain
  // pre-summary scan (bench_hotpath merge_dense_ratio guard).
  size_t MergeNewDense(const Bitmap& other) {
    size_t fresh = 0;
    const size_t n = words_.size();
    size_t i = 0;
    for (; i + 4 <= n; i += 4) {
      const uint64_t a0 =
          other.words_[i] &
          ~std::atomic_ref<const uint64_t>(words_[i]).load(
              std::memory_order_relaxed);
      const uint64_t a1 =
          other.words_[i + 1] &
          ~std::atomic_ref<const uint64_t>(words_[i + 1]).load(
              std::memory_order_relaxed);
      const uint64_t a2 =
          other.words_[i + 2] &
          ~std::atomic_ref<const uint64_t>(words_[i + 2]).load(
              std::memory_order_relaxed);
      const uint64_t a3 =
          other.words_[i + 3] &
          ~std::atomic_ref<const uint64_t>(words_[i + 3]).load(
              std::memory_order_relaxed);
      if ((a0 | a1 | a2 | a3) != 0) {
        for (size_t k = i; k < i + 4; ++k) {
          fresh += MergeWordSlow(k, other.words_[k]);
        }
      }
    }
    for (; i < n; ++i) {
      fresh += MergeWordSlow(i, other.words_[i]);
    }
    if (fresh != 0) {
      std::atomic_ref<size_t>(popcount_).fetch_add(fresh,
                                                   std::memory_order_relaxed);
    }
    return fresh;
  }

  // One word of the merge on the fresh path: RMW, credit only the bits this
  // thread won.
  size_t MergeWordSlow(size_t i, uint64_t theirs) {
    std::atomic_ref<uint64_t> word(words_[i]);
    uint64_t add = theirs & ~word.load(std::memory_order_relaxed);
    if (add == 0) {
      return 0;
    }
    const uint64_t prev = word.fetch_or(add, std::memory_order_relaxed);
    add &= ~prev;
    if (add == 0) {
      return 0;
    }
    MarkSummary(i);
    return static_cast<size_t>(std::popcount(add));
  }

  // Records "payload word `word` is nonzero". Idempotent; called only on
  // the fresh-bit path, so the extra RMW is off the already-seen fast path.
  // The occupancy counter is credited to whichever thread wins the summary
  // bit, keeping OccupiedWords() exact (it drives the dense-merge dispatch).
  void MarkSummary(size_t word) {
    const uint64_t mask = 1ULL << (word & 63);
    const uint64_t prev = std::atomic_ref<uint64_t>(summary_[word >> 6])
                              .fetch_or(mask, std::memory_order_relaxed);
    if ((prev & mask) == 0) {
      std::atomic_ref<size_t>(occupied_words_)
          .fetch_add(1, std::memory_order_relaxed);
    }
  }

  // Quiescence contract for Clear/Hash/operator==: these walk the words
  // non-atomically, so running them concurrently with a MergeNew into this
  // bitmap would read torn state and (for Clear) lose the summary/payload
  // pairing. The in-flight counter makes the contract violation loud
  // instead of silently corrupting coverage accounting.
  void CheckQuiescent(const char* op) const {
    if (std::atomic_ref<const size_t>(merges_in_flight_)
            .load(std::memory_order_acquire) != 0) {
      std::fprintf(stderr,
                   "bitmap %s called concurrently with MergeNew (quiescence "
                   "contract violated)\n",
                   op);
      std::abort();
    }
  }

  class MergeScope {
   public:
    explicit MergeScope(Bitmap* b) : b_(b) {
      std::atomic_ref<size_t>(b_->merges_in_flight_)
          .fetch_add(1, std::memory_order_acquire);
    }
    ~MergeScope() {
      std::atomic_ref<size_t>(b_->merges_in_flight_)
          .fetch_sub(1, std::memory_order_release);
    }
    MergeScope(const MergeScope&) = delete;
    MergeScope& operator=(const MergeScope&) = delete;

   private:
    Bitmap* b_;
  };

  size_t bits_;
  std::vector<uint64_t> words_;
  // One bit per payload word; bit w set ⇔ words_[w] != 0 (never reset
  // except by Clear, so it is exact for quiescent bitmaps).
  std::vector<uint64_t> summary_;
  size_t popcount_ = 0;
  // Number of nonzero payload words (== popcount of summary_); maintained by
  // MarkSummary, reset by Clear. Drives the dense-merge dispatch.
  size_t occupied_words_ = 0;
  // Number of MergeNew calls currently running against this bitmap; a
  // transient value, meaningful only while threads are live (a copied
  // quiescent bitmap starts at 0 by definition).
  size_t merges_in_flight_ = 0;
};

}  // namespace healer

#endif  // SRC_BASE_BITMAP_H_
