// Fixed-size bitmaps used for coverage accounting.
//
// CoverageBitmap is an AFL-style 2^16-slot hit map: edges are hashed into
// slots and campaigns track the set of slots ever seen. MergeNew() returns
// how many previously-unseen slots the merge contributed, which is the
// "new coverage" signal consumed by the fuzzers.

#ifndef SRC_BASE_BITMAP_H_
#define SRC_BASE_BITMAP_H_

#include <cstdint>
#include <cstring>
#include <vector>

namespace healer {

class Bitmap {
 public:
  explicit Bitmap(size_t bits) : bits_(bits), words_((bits + 63) / 64, 0) {}

  size_t size_bits() const { return bits_; }

  bool Test(size_t idx) const {
    return (words_[idx >> 6] >> (idx & 63)) & 1;
  }

  // Sets the bit; returns true iff it was previously clear.
  bool Set(size_t idx) {
    uint64_t& w = words_[idx >> 6];
    const uint64_t mask = 1ULL << (idx & 63);
    if (w & mask) {
      return false;
    }
    w |= mask;
    ++popcount_;
    return true;
  }

  void Clear() {
    std::fill(words_.begin(), words_.end(), 0);
    popcount_ = 0;
  }

  // Number of set bits. O(1).
  size_t Count() const { return popcount_; }

  // ORs `other` in; returns the number of bits newly set in *this.
  size_t MergeNew(const Bitmap& other) {
    size_t fresh = 0;
    for (size_t i = 0; i < words_.size() && i < other.words_.size(); ++i) {
      const uint64_t add = other.words_[i] & ~words_[i];
      if (add != 0) {
        fresh += static_cast<size_t>(__builtin_popcountll(add));
        words_[i] |= add;
      }
    }
    popcount_ += fresh;
    return fresh;
  }

  // True iff `other` has at least one bit not present in *this.
  bool HasNewBits(const Bitmap& other) const {
    for (size_t i = 0; i < words_.size() && i < other.words_.size(); ++i) {
      if ((other.words_[i] & ~words_[i]) != 0) {
        return true;
      }
    }
    return false;
  }

  bool operator==(const Bitmap& other) const {
    return bits_ == other.bits_ && words_ == other.words_;
  }

  // Stable content checksum (tests use it to prove a faulted execution left
  // the campaign bitmap untouched).
  uint64_t Hash() const {
    uint64_t h = 0xcbf29ce484222325ULL;
    for (uint64_t w : words_) {
      h = (h ^ w) * 0x100000001b3ULL;
      h ^= h >> 29;
    }
    return h;
  }

 private:
  size_t bits_;
  std::vector<uint64_t> words_;
  size_t popcount_ = 0;
};

}  // namespace healer

#endif  // SRC_BASE_BITMAP_H_
