// Fixed-size bitmaps used for coverage accounting.
//
// CoverageBitmap is an AFL-style 2^16-slot hit map: edges are hashed into
// slots and campaigns track the set of slots ever seen. MergeNew() returns
// how many previously-unseen slots the merge contributed, which is the
// "new coverage" signal consumed by the fuzzers.
//
// Concurrency: mutating word accesses go through std::atomic_ref with
// relaxed ordering, so a campaign-global bitmap can absorb merges from
// parallel workers without any external lock ("atomic-word MergeNew"). Each
// newly-set bit is counted exactly once across all threads (fetch_or tells
// the winner). On the single-threaded path the relaxed loads/stores compile
// to plain moves; the read-modify-write ops only run for *fresh* bits, which
// are rare in a warmed-up campaign, so the hot already-seen case costs the
// same load+test it always did. Clear()/Hash()/operator== remain
// single-threaded operations for quiescent bitmaps.

#ifndef SRC_BASE_BITMAP_H_
#define SRC_BASE_BITMAP_H_

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

namespace healer {

class Bitmap {
 public:
  explicit Bitmap(size_t bits) : bits_(bits), words_((bits + 63) / 64, 0) {}

  // Bitmaps participating in a merge/compare must be the same size; a
  // mismatch means two different coverage spaces are being mixed, which
  // would silently truncate the merge. Always fatal (independent of NDEBUG).
  static void CheckSameSize(const Bitmap& a, const Bitmap& b) {
    if (a.bits_ != b.bits_) {
      std::fprintf(stderr, "bitmap size mismatch: %zu vs %zu bits\n", a.bits_,
                   b.bits_);
      std::abort();
    }
  }

  size_t size_bits() const { return bits_; }

  bool Test(size_t idx) const {
    return (std::atomic_ref<const uint64_t>(words_[idx >> 6])
                .load(std::memory_order_relaxed) >>
            (idx & 63)) &
           1;
  }

  // Sets the bit; returns true iff it was previously clear. Safe against
  // concurrent Set/MergeNew on the same bitmap: exactly one caller wins a
  // fresh bit.
  bool Set(size_t idx) {
    std::atomic_ref<uint64_t> word(words_[idx >> 6]);
    const uint64_t mask = 1ULL << (idx & 63);
    if (word.load(std::memory_order_relaxed) & mask) {
      return false;
    }
    const uint64_t prev = word.fetch_or(mask, std::memory_order_relaxed);
    if (prev & mask) {
      return false;  // Another thread set it between the load and the RMW.
    }
    std::atomic_ref<size_t>(popcount_).fetch_add(1,
                                                 std::memory_order_relaxed);
    return true;
  }

  void Clear() {
    std::fill(words_.begin(), words_.end(), 0);
    popcount_ = 0;
  }

  // Number of set bits. O(1).
  size_t Count() const {
    return std::atomic_ref<const size_t>(popcount_).load(
        std::memory_order_relaxed);
  }

  // ORs `other` in; returns the number of bits newly set in *this. `other`
  // must be quiescent (typically a worker-local per-call map); *this may be
  // merged into concurrently.
  size_t MergeNew(const Bitmap& other) {
    CheckSameSize(*this, other);
    size_t fresh = 0;
    for (size_t i = 0; i < words_.size(); ++i) {
      const uint64_t theirs = other.words_[i];
      if (theirs == 0) {
        continue;
      }
      std::atomic_ref<uint64_t> word(words_[i]);
      uint64_t add = theirs & ~word.load(std::memory_order_relaxed);
      if (add == 0) {
        continue;
      }
      const uint64_t prev = word.fetch_or(add, std::memory_order_relaxed);
      add &= ~prev;  // Bits a concurrent merger beat us to are not ours.
      fresh += static_cast<size_t>(__builtin_popcountll(add));
    }
    if (fresh != 0) {
      std::atomic_ref<size_t>(popcount_).fetch_add(fresh,
                                                   std::memory_order_relaxed);
    }
    return fresh;
  }

  // True iff `other` has at least one bit not present in *this.
  bool HasNewBits(const Bitmap& other) const {
    CheckSameSize(*this, other);
    for (size_t i = 0; i < words_.size(); ++i) {
      if ((other.words_[i] & ~words_[i]) != 0) {
        return true;
      }
    }
    return false;
  }

  bool operator==(const Bitmap& other) const {
    return bits_ == other.bits_ && words_ == other.words_;
  }

  // Stable content checksum (tests use it to prove a faulted execution left
  // the campaign bitmap untouched).
  uint64_t Hash() const {
    uint64_t h = 0xcbf29ce484222325ULL;
    for (uint64_t w : words_) {
      h = (h ^ w) * 0x100000001b3ULL;
      h ^= h >> 29;
    }
    return h;
  }

 private:
  size_t bits_;
  std::vector<uint64_t> words_;
  size_t popcount_ = 0;
};

}  // namespace healer

#endif  // SRC_BASE_BITMAP_H_
