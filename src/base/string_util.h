// String helpers shared by the description parser and report printers.

#ifndef SRC_BASE_STRING_UTIL_H_
#define SRC_BASE_STRING_UTIL_H_

#include <cstdarg>
#include <string>
#include <string_view>
#include <vector>

namespace healer {

// Splits `text` on `sep`, keeping empty pieces.
std::vector<std::string> StrSplit(std::string_view text, char sep);

// Removes leading and trailing ASCII whitespace.
std::string_view StrStrip(std::string_view text);

bool StartsWith(std::string_view text, std::string_view prefix);
bool EndsWith(std::string_view text, std::string_view suffix);

// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

// Joins items with `sep`.
std::string StrJoin(const std::vector<std::string>& items, std::string_view sep);

}  // namespace healer

#endif  // SRC_BASE_STRING_UTIL_H_
