// Error handling primitives for the HEALER library.
//
// Library code is exception-free: fallible operations return Status or
// Result<T>. Both are cheap value types; the error payload is a code plus a
// human-readable message.

#ifndef SRC_BASE_STATUS_H_
#define SRC_BASE_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>
#include <variant>

namespace healer {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kInternal,
  kUnimplemented,
  kResourceExhausted,
  kParseError,
};

// Returns a stable, human-readable name for `code` ("OK", "PARSE_ERROR", ...).
const char* StatusCodeName(StatusCode code);

// A success-or-error value. Default-constructed Status is OK.
class Status {
 public:
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "<CODE_NAME>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

inline Status OkStatus() { return Status(); }

inline Status InvalidArgument(std::string msg) {
  return Status(StatusCode::kInvalidArgument, std::move(msg));
}
inline Status NotFound(std::string msg) {
  return Status(StatusCode::kNotFound, std::move(msg));
}
inline Status AlreadyExists(std::string msg) {
  return Status(StatusCode::kAlreadyExists, std::move(msg));
}
inline Status OutOfRange(std::string msg) {
  return Status(StatusCode::kOutOfRange, std::move(msg));
}
inline Status FailedPrecondition(std::string msg) {
  return Status(StatusCode::kFailedPrecondition, std::move(msg));
}
inline Status Internal(std::string msg) {
  return Status(StatusCode::kInternal, std::move(msg));
}
inline Status Unimplemented(std::string msg) {
  return Status(StatusCode::kUnimplemented, std::move(msg));
}
inline Status ResourceExhausted(std::string msg) {
  return Status(StatusCode::kResourceExhausted, std::move(msg));
}
inline Status ParseError(std::string msg) {
  return Status(StatusCode::kParseError, std::move(msg));
}

// Result<T> holds either a T or a non-OK Status.
template <typename T>
class Result {
 public:
  // Implicit construction from a value or an error keeps call sites terse.
  Result(T value) : value_(std::move(value)) {}  // NOLINT
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::optional<T> value_;
  Status status_;
};

#define HEALER_RETURN_IF_ERROR(expr)      \
  do {                                    \
    ::healer::Status _st = (expr);        \
    if (!_st.ok()) {                      \
      return _st;                         \
    }                                     \
  } while (0)

#define HEALER_ASSIGN_OR_RETURN(lhs, expr) \
  auto HEALER_CONCAT_(_res_, __LINE__) = (expr);                   \
  if (!HEALER_CONCAT_(_res_, __LINE__).ok()) {                     \
    return HEALER_CONCAT_(_res_, __LINE__).status();               \
  }                                                                \
  lhs = std::move(HEALER_CONCAT_(_res_, __LINE__)).value()

#define HEALER_CONCAT_INNER_(a, b) a##b
#define HEALER_CONCAT_(a, b) HEALER_CONCAT_INNER_(a, b)

}  // namespace healer

#endif  // SRC_BASE_STATUS_H_
