// Minimal leveled logging.
//
// The fuzzer is throughput-sensitive, so logging is compiled around a global
// level check and stream-style message assembly only happens for enabled
// levels. Output goes to a replaceable LogSink (default: stderr), so tests
// can capture lines and embedders can redirect them.

#ifndef SRC_BASE_LOGGING_H_
#define SRC_BASE_LOGGING_H_

#include <functional>
#include <sstream>
#include <string>

namespace healer {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kOff = 4,
};

// Global minimum level; messages below it are discarded. Default: kWarning
// so library users are quiet unless they opt in.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// Destination for emitted log lines (without trailing newline). Calls are
// serialized by the logging layer; the sink need not lock.
using LogSink = std::function<void(LogLevel, const std::string& line)>;

// Replaces the sink; an empty function restores the stderr default.
void SetLogSink(LogSink sink);

// Routes a preformatted line straight through the sink, bypassing the level
// threshold. Used for output the user asked for explicitly (e.g. the
// periodic campaign status line behind --status-period).
void LogToSink(LogLevel level, const std::string& line);

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal

#define HEALER_LOG(level)                                              \
  if (::healer::LogLevel::level < ::healer::GetLogLevel()) {           \
  } else                                                               \
    ::healer::internal::LogMessage(::healer::LogLevel::level, __FILE__, \
                                   __LINE__)                           \
        .stream()

#define LOG_DEBUG HEALER_LOG(kDebug)
#define LOG_INFO HEALER_LOG(kInfo)
#define LOG_WARNING HEALER_LOG(kWarning)
#define LOG_ERROR HEALER_LOG(kError)

}  // namespace healer

#endif  // SRC_BASE_LOGGING_H_
