#include "src/base/metrics.h"

#include <cstdlib>

#include "src/base/string_util.h"

namespace healer {

size_t Counter::ThisThreadShard() {
  static std::atomic<size_t> next{0};
  thread_local const size_t shard =
      next.fetch_add(1, std::memory_order_relaxed) % kShards;
  return shard;
}

uint64_t Histogram::BucketUpperEdge(size_t index) {
  if (index == 0) {
    return 0;
  }
  if (index >= 64) {
    return ~uint64_t{0};
  }
  return (uint64_t{1} << index) - 1;
}

double HistogramSnapshot::Quantile(double q) const {
  if (count == 0) {
    return 0.0;
  }
  if (q < 0.0) {
    q = 0.0;
  }
  if (q > 1.0) {
    q = 1.0;
  }
  // Rank in [0, count]; interpolate linearly inside the covering bucket.
  const double target = q * static_cast<double>(count);
  uint64_t before = 0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    const uint64_t in_bucket = buckets[i];
    if (in_bucket == 0) {
      continue;
    }
    if (static_cast<double>(before + in_bucket) >= target) {
      if (i == 0) {
        return 0.0;  // Bucket 0 holds only the value 0.
      }
      const double lower =
          static_cast<double>(Histogram::BucketUpperEdge(i - 1) + 1);
      const double upper = static_cast<double>(Histogram::BucketUpperEdge(i));
      double frac =
          (target - static_cast<double>(before)) / static_cast<double>(in_bucket);
      if (frac < 0.0) {
        frac = 0.0;
      }
      return lower + frac * (upper - lower);
    }
    before += in_bucket;
  }
  return buckets.empty()
             ? 0.0
             : static_cast<double>(
                   Histogram::BucketUpperEdge(buckets.size() - 1));
}

uint64_t MetricsSnapshot::counter(const std::string& name) const {
  auto it = counters.find(name);
  return it == counters.end() ? 0 : it->second;
}

double MetricsSnapshot::gauge(const std::string& name) const {
  auto it = gauges.find(name);
  return it == gauges.end() ? 0.0 : it->second;
}

namespace {

// Shortest representation that round-trips; avoids "0.620000" noise.
std::string FormatDouble(double value) {
  std::string text = StrFormat("%.17g", value);
  for (int precision = 1; precision < 17; ++precision) {
    std::string candidate = StrFormat("%.*g", precision, value);
    if (std::strtod(candidate.c_str(), nullptr) == value) {
      return candidate;
    }
  }
  return text;
}

// "# HELP" text escaping per the exposition format: backslash and newline.
std::string EscapeHelp(const std::string& help) {
  std::string out;
  out.reserve(help.size());
  for (char ch : help) {
    if (ch == '\\') {
      out += "\\\\";
    } else if (ch == '\n') {
      out += "\\n";
    } else {
      out += ch;
    }
  }
  return out;
}

}  // namespace

std::string MetricsSnapshot::ToPrometheusText() const {
  std::string out;
  const auto emit_help = [&](const std::string& name) {
    auto it = help.find(name);
    if (it != help.end() && !it->second.empty()) {
      out += StrFormat("# HELP %s %s\n", name.c_str(),
                       EscapeHelp(it->second).c_str());
    }
  };
  for (const auto& [name, value] : counters) {
    emit_help(name);
    out += StrFormat("# TYPE %s counter\n", name.c_str());
    out += StrFormat("%s %llu\n", name.c_str(), (unsigned long long)value);
  }
  for (const auto& [name, value] : gauges) {
    emit_help(name);
    out += StrFormat("# TYPE %s gauge\n", name.c_str());
    out += StrFormat("%s %s\n", name.c_str(), FormatDouble(value).c_str());
  }
  for (const auto& [name, hist] : histograms) {
    emit_help(name);
    out += StrFormat("# TYPE %s histogram\n", name.c_str());
    uint64_t cumulative = 0;
    for (size_t i = 0; i < hist.buckets.size(); ++i) {
      cumulative += hist.buckets[i];
      out += StrFormat("%s_bucket{le=\"%llu\"} %llu\n", name.c_str(),
                       (unsigned long long)Histogram::BucketUpperEdge(i),
                       (unsigned long long)cumulative);
    }
    out += StrFormat("%s_bucket{le=\"+Inf\"} %llu\n", name.c_str(),
                     (unsigned long long)hist.count);
    out += StrFormat("%s_sum %llu\n", name.c_str(),
                     (unsigned long long)hist.sum);
    out += StrFormat("%s_count %llu\n", name.c_str(),
                     (unsigned long long)hist.count);
  }
  return out;
}

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters) {
    out += StrFormat("%s\n    \"%s\": %llu", first ? "" : ",", name.c_str(),
                     (unsigned long long)value);
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : gauges) {
    out += StrFormat("%s\n    \"%s\": %s", first ? "" : ",", name.c_str(),
                     FormatDouble(value).c_str());
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, hist] : histograms) {
    out += StrFormat("%s\n    \"%s\": {\"count\": %llu, \"sum\": %llu, "
                     "\"buckets\": [",
                     first ? "" : ",", name.c_str(),
                     (unsigned long long)hist.count,
                     (unsigned long long)hist.sum);
    for (size_t i = 0; i < hist.buckets.size(); ++i) {
      out += StrFormat("%s%llu", i == 0 ? "" : ", ",
                       (unsigned long long)hist.buckets[i]);
    }
    out += StrFormat("], \"p50\": %s, \"p90\": %s, \"p99\": %s}",
                     FormatDouble(hist.Quantile(0.50)).c_str(),
                     FormatDouble(hist.Quantile(0.90)).c_str(),
                     FormatDouble(hist.Quantile(0.99)).c_str());
    first = false;
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

Counter* MetricRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Counter>();
  }
  return slot.get();
}

Gauge* MetricRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Gauge>();
  }
  return slot.get();
}

Histogram* MetricRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Histogram>();
  }
  return slot.get();
}

void MetricRegistry::SetHelp(const std::string& name,
                             const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  help_[name] = help;
}

MetricsSnapshot MetricRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snapshot;
  for (const auto& [name, counter] : counters_) {
    snapshot.counters[name] = counter->Value();
  }
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges[name] = gauge->Value();
  }
  for (const auto& [name, hist] : histograms_) {
    HistogramSnapshot h;
    h.count = hist->Count();
    h.sum = hist->Sum();
    size_t highest = 0;
    for (size_t i = 0; i < Histogram::kBuckets; ++i) {
      if (hist->BucketCount(i) != 0) {
        highest = i + 1;
      }
    }
    h.buckets.resize(highest);
    for (size_t i = 0; i < highest; ++i) {
      h.buckets[i] = hist->BucketCount(i);
    }
    snapshot.histograms[name] = std::move(h);
  }
  snapshot.help = help_;
  return snapshot;
}

}  // namespace healer
