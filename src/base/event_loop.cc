#include "src/base/event_loop.h"

#include <algorithm>
#include <bit>
#include <utility>

namespace healer {

EventLoop::EventLoop(SimClock::Nanos start)
    : now_(start), cursor_(start / kTickNs) {}

void EventLoop::Post(Callback cb) {
  std::lock_guard<std::mutex> lock(mu_);
  ready_.push_back(std::move(cb));
}

EventLoop::TimerId EventLoop::ScheduleAt(SimClock::Nanos deadline,
                                         Callback cb) {
  std::lock_guard<std::mutex> lock(mu_);
  const TimerId id = next_id_++;
  timers_.emplace(id, Timer{deadline, next_seq_++, std::move(cb)});
  InsertLocked(id, deadline);
  live_timers_.store(timers_.size(), std::memory_order_relaxed);
  if (deadline < deadline_hint_.load(std::memory_order_relaxed)) {
    deadline_hint_.store(deadline, std::memory_order_relaxed);
  }
  return id;
}

EventLoop::TimerId EventLoop::ScheduleAfter(SimClock::Nanos delay,
                                            Callback cb) {
  return ScheduleAt(now() + delay, std::move(cb));
}

bool EventLoop::Cancel(TimerId id) {
  std::lock_guard<std::mutex> lock(mu_);
  // The slot entry is pruned lazily the next time its slot is scanned; the
  // hint may now be early, which only costs one wasted pump probe.
  const bool erased = timers_.erase(id) > 0;
  if (erased) {
    live_timers_.store(timers_.size(), std::memory_order_relaxed);
  }
  return erased;
}

size_t EventLoop::AddCompletionSource(Callback handler) {
  std::lock_guard<std::mutex> lock(mu_);
  sources_.push_back(std::make_unique<CompletionSource>());
  sources_.back()->handler = std::move(handler);
  return sources_.size() - 1;
}

void EventLoop::SignalCompletion(size_t source) {
  if (source >= sources_.size()) {
    return;
  }
  // Doorbell order matters: publish the pending count before the flag, so a
  // pumper that observes the flag always sees the count (WakeupFd::Signal).
  sources_[source]->pending.fetch_add(1, std::memory_order_release);
  completions_pending_.store(true, std::memory_order_release);
}

size_t EventLoop::PumpReady() {
  size_t n = 0;
  // Completion handlers run first, in source-registration order — the
  // deterministic analogue of polling every eventfd before the work queue.
  if (completions_pending_.exchange(false, std::memory_order_acquire)) {
    for (auto& source : sources_) {
      if (source->pending.exchange(0, std::memory_order_acquire) > 0) {
        source->handler();
        ++n;
      }
    }
  }
  for (;;) {
    std::vector<Callback> batch;
    {
      std::lock_guard<std::mutex> lock(mu_);
      batch.swap(ready_);
    }
    if (batch.empty()) {
      break;
    }
    for (Callback& cb : batch) {
      cb();
      ++n;
    }
  }
  dispatched_.fetch_add(n, std::memory_order_relaxed);
  return n;
}

size_t EventLoop::RunUntil(SimClock::Nanos horizon) {
  size_t n = PumpReady();
  for (;;) {
    std::vector<Timer> due;
    {
      std::lock_guard<std::mutex> lock(mu_);
      const SimClock::Nanos next = NextTimerDeadlineLocked();
      if (next == kNoDeadline || next > horizon) {
        // Nothing due: drag the wheel cursor up toward the horizon (but not
        // past the next armed deadline's tick) so later inserts see a fresh
        // origin and cascade walks stay short.
        uint64_t target = horizon / kTickNs;
        if (next != kNoDeadline) {
          target = std::min(target, next / kTickNs);
        }
        if (timers_.empty()) {
          cursor_ = std::max(cursor_, horizon / kTickNs);
        } else {
          AdvanceCursorLocked(target);
        }
        RefreshHintLocked();
        break;
      }
      AdvanceCursorLocked(std::max(next / kTickNs, cursor_));
      CollectDueLocked(horizon, &due);
      live_timers_.store(timers_.size(), std::memory_order_relaxed);
      RefreshHintLocked();
    }
    for (Timer& timer : due) {
      if (timer.deadline > now()) {
        now_.store(timer.deadline, std::memory_order_relaxed);
      }
      timer.cb();
      ++n;
      dispatched_.fetch_add(1, std::memory_order_relaxed);
    }
    // Work posted by the timers runs at the current virtual time, before
    // any later deadline fires.
    n += PumpReady();
  }
  if (horizon > now()) {
    now_.store(horizon, std::memory_order_relaxed);
  }
  return n;
}

size_t EventLoop::RunUntilIdle() {
  size_t n = PumpReady();
  for (;;) {
    const SimClock::Nanos next = NextDeadline();
    if (next == kNoDeadline) {
      break;
    }
    n += RunUntil(next);
  }
  return n;
}

SimClock::Nanos EventLoop::NextDeadline() const {
  std::lock_guard<std::mutex> lock(mu_);
  return const_cast<EventLoop*>(this)->NextTimerDeadlineLocked();
}

void EventLoop::InsertLocked(TimerId id, SimClock::Nanos deadline) {
  uint64_t tick = deadline / kTickNs;
  if (tick < cursor_) {
    tick = cursor_;  // Past deadlines fire at the next pump, in order.
  }
  const uint64_t delta = tick - cursor_;
  size_t level = 0;
  while (level + 1 < kWheelLevels &&
         (delta >> (kWheelBits * (level + 1))) != 0) {
    ++level;
  }
  const size_t slot =
      static_cast<size_t>(tick >> (kWheelBits * level)) & (kWheelSlots - 1);
  slots_[level][slot].push_back(id);
  occupancy_[level] |= 1ull << slot;
}

void EventLoop::CascadeLocked(size_t level, size_t slot) {
  if ((occupancy_[level] & (1ull << slot)) == 0) {
    return;
  }
  std::vector<TimerId> ids = std::move(slots_[level][slot]);
  slots_[level][slot].clear();
  occupancy_[level] &= ~(1ull << slot);
  for (TimerId id : ids) {
    auto it = timers_.find(id);
    if (it != timers_.end()) {
      InsertLocked(id, it->second.deadline);
    }
  }
}

void EventLoop::AdvanceCursorLocked(uint64_t tick) {
  while (cursor_ < tick) {
    const uint64_t boundary = (cursor_ | (kWheelSlots - 1)) + 1;
    if (tick < boundary) {
      cursor_ = tick;
      return;
    }
    cursor_ = boundary;
    // Entering a new level-0 window; pull down the covering bucket of every
    // level whose window boundary this also is, coarsest first so pulled
    // entries land in already-cascaded finer levels.
    for (size_t level = kWheelLevels - 1; level >= 1; --level) {
      const uint64_t window = 1ull << (kWheelBits * level);
      if ((boundary & (window - 1)) == 0) {
        CascadeLocked(level, static_cast<size_t>(boundary >>
                                                 (kWheelBits * level)) &
                                 (kWheelSlots - 1));
      }
    }
  }
}

SimClock::Nanos EventLoop::SlotMinLocked(size_t level, size_t slot) {
  std::vector<TimerId>& ids = slots_[level][slot];
  SimClock::Nanos best = kNoDeadline;
  size_t w = 0;
  for (TimerId id : ids) {
    auto it = timers_.find(id);
    if (it == timers_.end()) {
      continue;  // Cancelled: prune in place.
    }
    ids[w++] = id;
    best = std::min(best, it->second.deadline);
  }
  ids.resize(w);
  if (ids.empty()) {
    occupancy_[level] &= ~(1ull << slot);
  }
  return best;
}

SimClock::Nanos EventLoop::NextTimerDeadlineLocked() {
  // Exact minimum: deadlines are compared in nanoseconds across every
  // occupied bucket, so bucket-rotation ambiguity (an entry one full wheel
  // turn out sharing a slot with the current window) cannot mislead.
  SimClock::Nanos best = kNoDeadline;
  for (size_t level = 0; level < kWheelLevels; ++level) {
    uint64_t mask = occupancy_[level];
    while (mask != 0) {
      const size_t slot = static_cast<size_t>(std::countr_zero(mask));
      mask &= mask - 1;
      best = std::min(best, SlotMinLocked(level, slot));
    }
  }
  return best;
}

void EventLoop::RefreshHintLocked() {
  deadline_hint_.store(NextTimerDeadlineLocked(), std::memory_order_relaxed);
}

void EventLoop::CollectDueLocked(SimClock::Nanos horizon,
                                 std::vector<Timer>* out) {
  const size_t slot = static_cast<size_t>(cursor_) & (kWheelSlots - 1);
  std::vector<TimerId> ids = std::move(slots_[0][slot]);
  slots_[0][slot].clear();
  occupancy_[0] &= ~(1ull << slot);
  for (TimerId id : ids) {
    auto it = timers_.find(id);
    if (it == timers_.end()) {
      continue;
    }
    if (it->second.deadline <= horizon) {
      out->push_back(std::move(it->second));
      timers_.erase(it);
    } else {
      // Same tick, past the horizon: stays armed for a later pump.
      slots_[0][slot].push_back(id);
      occupancy_[0] |= 1ull << slot;
    }
  }
  std::sort(out->begin(), out->end(), [](const Timer& a, const Timer& b) {
    return a.deadline != b.deadline ? a.deadline < b.deadline : a.seq < b.seq;
  });
}

}  // namespace healer
