// Process-local telemetry metrics: counters, gauges and log-bucketed
// histograms behind a registry with Prometheus-text and JSON export.
//
// Design constraints, in order:
//   1. Hot-path cost. Counter::Add is one relaxed fetch_add on a per-thread
//      shard (cache-line padded), so ParallelFuzzer workers never contend on
//      a shared atomic. Callers hold raw Counter*/Gauge*/Histogram* handles;
//      the registry mutex is only taken at registration and snapshot time.
//   2. Determinism. Metrics are plain exact integer/double cells — a
//      campaign's snapshot is a pure function of (options, seed, fault_plan)
//      like every other campaign output, and tests compare snapshots with
//      operator==.
//   3. Compile-out. Building with -DHEALER_NO_TELEMETRY (CMake option of
//      the same name) turns every mutation into a no-op so the overhead of
//      the instrumentation itself can be measured (scripts/check.sh
//      telemetry stage guards the delta).
//
// Registries are instantiable values, not process singletons: each Fuzzer /
// SharedFuzzState owns one, which keeps campaigns pure and concurrent
// campaigns isolated.

#ifndef SRC_BASE_METRICS_H_
#define SRC_BASE_METRICS_H_

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace healer {

#ifdef HEALER_NO_TELEMETRY
inline constexpr bool kTelemetryEnabled = false;
#else
inline constexpr bool kTelemetryEnabled = true;
#endif

// Monotonic counter, sharded per thread. Value() is exact (sums shards).
class Counter {
 public:
  static constexpr size_t kShards = 16;

  void Add(uint64_t delta = 1) {
#ifndef HEALER_NO_TELEMETRY
    shards_[ThisThreadShard()].value.fetch_add(delta,
                                               std::memory_order_relaxed);
#endif
  }

  uint64_t Value() const {
    uint64_t total = 0;
    for (const Shard& shard : shards_) {
      total += shard.value.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  struct alignas(64) Shard {
    std::atomic<uint64_t> value{0};
  };

  // Threads are assigned shards round-robin on first use.
  static size_t ThisThreadShard();

  std::array<Shard, kShards> shards_{};
};

// Last-write-wins double value (coverage, corpus size, alpha, ...).
class Gauge {
 public:
  void Set(double value) {
#ifndef HEALER_NO_TELEMETRY
    bits_.store(std::bit_cast<uint64_t>(value), std::memory_order_relaxed);
#endif
  }

  double Value() const {
    return std::bit_cast<double>(bits_.load(std::memory_order_relaxed));
  }

 private:
  std::atomic<uint64_t> bits_{0};  // 0 bits == 0.0.
};

// Log2-bucketed histogram of non-negative integer observations. Bucket 0
// holds the value 0; bucket i >= 1 holds values in [2^(i-1), 2^i - 1], i.e.
// values whose bit width is i. Upper edges are therefore 0, 1, 3, 7, 15, ...
class Histogram {
 public:
  static constexpr size_t kBuckets = 65;

  void Observe(uint64_t value) {
#ifndef HEALER_NO_TELEMETRY
    buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
#endif
  }

  static size_t BucketIndex(uint64_t value) {
    return value == 0 ? 0 : static_cast<size_t>(std::bit_width(value));
  }
  // Largest value that falls into bucket `index` (inclusive).
  static uint64_t BucketUpperEdge(size_t index);

  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t Sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t BucketCount(size_t index) const {
    return buckets_[index].load(std::memory_order_relaxed);
  }

 private:
  std::array<std::atomic<uint64_t>, kBuckets> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
};

struct HistogramSnapshot {
  uint64_t count = 0;
  uint64_t sum = 0;
  // Per-bucket counts, trimmed after the highest non-empty bucket.
  std::vector<uint64_t> buckets;

  // Quantile estimate (q in [0, 1]) by linear interpolation inside the
  // covering log2 bucket. Exact for bucket 0 (the value 0); elsewhere the
  // error is bounded by the bucket width. Returns 0 for an empty histogram.
  double Quantile(double q) const;

  bool operator==(const HistogramSnapshot& other) const = default;
};

// A point-in-time copy of every metric in a registry. Deterministically
// ordered (std::map), comparable, and exportable without the live registry —
// CampaignResult carries one as its TelemetrySnapshot.
struct MetricsSnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;
  // Optional metric help strings, emitted as "# HELP" exposition lines.
  std::map<std::string, std::string> help;

  bool empty() const {
    return counters.empty() && gauges.empty() && histograms.empty();
  }
  // Value lookups; absent names read as zero.
  uint64_t counter(const std::string& name) const;
  double gauge(const std::string& name) const;

  // Prometheus text exposition format (counters/gauges/histograms with
  // cumulative le-labelled buckets).
  std::string ToPrometheusText() const;
  std::string ToJson() const;

  bool operator==(const MetricsSnapshot& other) const = default;
};

class MetricRegistry {
 public:
  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  // Returns the metric registered under `name`, creating it on first use.
  // Handles stay valid for the registry's lifetime; registration is
  // mutex-protected, the returned handles are lock-free.
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  // Attaches a one-line help string to `name` (any metric type); emitted as
  // a "# HELP" line by the Prometheus exporter. Last write wins.
  void SetHelp(const std::string& name, const std::string& help);

  MetricsSnapshot Snapshot() const;
  std::string ToPrometheusText() const { return Snapshot().ToPrometheusText(); }
  std::string ToJson() const { return Snapshot().ToJson(); }

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::map<std::string, std::string> help_;
};

}  // namespace healer

#endif  // SRC_BASE_METRICS_H_
