#include "src/base/journal.h"

#include <sys/mman.h>

#include <cstring>
#include <new>

namespace healer {

namespace {

// JSON string escaping for `detail` payloads (control chars, quote,
// backslash). Matches the escaping used by the trace exporter.
void AppendJsonEscaped(const std::string& in, std::string* out) {
  for (char ch : in) {
    switch (ch) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(ch)));
          *out += buf;
        } else {
          *out += ch;
        }
    }
  }
}

void PutU32(uint32_t v, std::string* out) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutU64(uint64_t v, std::string* out) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

bool GetU32(const std::string& in, size_t* pos, uint32_t* v) {
  if (*pos + 4 > in.size()) {
    return false;
  }
  uint32_t r = 0;
  for (int i = 0; i < 4; ++i) {
    r |= static_cast<uint32_t>(static_cast<unsigned char>(in[*pos + i]))
         << (8 * i);
  }
  *pos += 4;
  *v = r;
  return true;
}

bool GetU64(const std::string& in, size_t* pos, uint64_t* v) {
  if (*pos + 8 > in.size()) {
    return false;
  }
  uint64_t r = 0;
  for (int i = 0; i < 8; ++i) {
    r |= static_cast<uint64_t>(static_cast<unsigned char>(in[*pos + i]))
         << (8 * i);
  }
  *pos += 8;
  *v = r;
  return true;
}

constexpr char kBinaryMagic[4] = {'H', 'J', 'B', '1'};

}  // namespace

const char* JournalKindName(JournalKind kind) {
  switch (kind) {
    case JournalKind::kExec:
      return "exec";
    case JournalKind::kCorpusAdd:
      return "corpus-add";
    case JournalKind::kRelationLearned:
      return "relation-learned";
    case JournalKind::kFault:
      return "fault";
    case JournalKind::kRecovery:
      return "recovery";
    case JournalKind::kVmLifecycle:
      return "vm-lifecycle";
    case JournalKind::kRingStall:
      return "ring-stall";
    case JournalKind::kCrash:
      return "crash";
  }
  return "unknown";
}

std::string JournalRecord::ToJsonLine() const {
  std::string out;
  out.reserve(96 + detail.size());
  out += "{\"at\":";
  out += std::to_string(at);
  out += ",\"kind\":\"";
  out += JournalKindName(kind);
  out += "\",\"worker\":";
  out += std::to_string(worker);
  out += ",\"a\":";
  out += std::to_string(a);
  out += ",\"b\":";
  out += std::to_string(b);
  out += ",\"c\":";
  out += std::to_string(c);
  if (!detail.empty()) {
    out += ",\"detail\":\"";
    AppendJsonEscaped(detail, &out);
    out += "\"";
  }
  out += "}";
  return out;
}

Journal::Journal(size_t capacity) : capacity_(capacity) {
  if (!enabled()) {
    capacity_ = 0;
    return;
  }
  // Slot storage comes straight from the kernel, bypassing malloc: see the
  // class comment. Pages are zero-filled lazily, so an oversized capacity
  // costs address space, not resident memory, until the ring fills.
  void* mem = mmap(nullptr, capacity_ * sizeof(JournalRecord),
                   PROT_READ | PROT_WRITE, MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (mem == MAP_FAILED) {
    capacity_ = 0;  // Degrade to a disabled journal rather than crash.
    return;
  }
  slots_ = static_cast<JournalRecord*>(mem);
  for (size_t i = 0; i < capacity_; ++i) {
    new (&slots_[i]) JournalRecord();
  }
}

Journal::~Journal() {
  if (slots_ != nullptr) {
    for (size_t i = 0; i < capacity_; ++i) {
      slots_[i].~JournalRecord();
    }
    munmap(slots_, capacity_ * sizeof(JournalRecord));
  }
}

void Journal::Append(JournalRecord record) {
  if (!enabled()) {
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  Push(std::move(record));
}

void Journal::AppendBatch(std::vector<JournalRecord>* records) {
  if (!enabled()) {
    records->clear();
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  for (JournalRecord& record : *records) {
    Push(std::move(record));
  }
  records->clear();
}

void Journal::Push(JournalRecord record) {
  ++total_;
  if (size_ < capacity_) {
    slots_[size_++] = std::move(record);
    return;
  }
  slots_[next_] = std::move(record);
  next_ = (next_ + 1) % capacity_;
}

std::vector<JournalRecord> Journal::Records() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<JournalRecord> out;
  out.reserve(size_);
  for (size_t i = 0; i < size_; ++i) {
    out.push_back(slots_[(next_ + i) % size_]);
  }
  return out;
}

std::vector<JournalRecord> Journal::Tail(size_t n) const {
  std::vector<JournalRecord> all = Records();
  if (n >= all.size()) {
    return all;
  }
  return std::vector<JournalRecord>(all.end() - static_cast<long>(n),
                                    all.end());
}

size_t Journal::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return size_;
}

uint64_t Journal::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_ - size_;
}

std::string Journal::ToJsonl(size_t n) const {
  return JournalRecordsToJsonl(n == 0 ? Records() : Tail(n));
}

std::string JournalRecordsToJsonl(const std::vector<JournalRecord>& records) {
  std::string out;
  for (const JournalRecord& record : records) {
    out += record.ToJsonLine();
    out += "\n";
  }
  return out;
}

std::string JournalRecordsToBinary(const std::vector<JournalRecord>& records) {
  std::string out;
  out.append(kBinaryMagic, sizeof(kBinaryMagic));
  PutU32(static_cast<uint32_t>(records.size()), &out);
  for (const JournalRecord& record : records) {
    out.push_back(static_cast<char>(record.kind));
    PutU32(record.worker, &out);
    PutU64(record.at, &out);
    PutU64(record.a, &out);
    PutU64(record.b, &out);
    PutU64(record.c, &out);
    PutU32(static_cast<uint32_t>(record.detail.size()), &out);
    out += record.detail;
  }
  return out;
}

bool JournalRecordsFromBinary(const std::string& data,
                              std::vector<JournalRecord>* out) {
  out->clear();
  if (data.size() < sizeof(kBinaryMagic) ||
      std::memcmp(data.data(), kBinaryMagic, sizeof(kBinaryMagic)) != 0) {
    return false;
  }
  size_t pos = sizeof(kBinaryMagic);
  uint32_t count = 0;
  if (!GetU32(data, &pos, &count)) {
    return false;
  }
  // Defensive cap: a frame cannot hold more records than bytes.
  if (count > data.size()) {
    return false;
  }
  out->reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    JournalRecord record;
    if (pos >= data.size()) {
      return false;
    }
    const uint8_t kind = static_cast<uint8_t>(data[pos++]);
    if (kind >= kNumJournalKinds) {
      return false;
    }
    record.kind = static_cast<JournalKind>(kind);
    uint32_t detail_len = 0;
    if (!GetU32(data, &pos, &record.worker) ||
        !GetU64(data, &pos, &record.at) || !GetU64(data, &pos, &record.a) ||
        !GetU64(data, &pos, &record.b) || !GetU64(data, &pos, &record.c) ||
        !GetU32(data, &pos, &detail_len)) {
      return false;
    }
    if (pos + detail_len > data.size()) {
      return false;
    }
    record.detail.assign(data, pos, detail_len);
    pos += detail_len;
    out->push_back(std::move(record));
  }
  return pos == data.size();
}

}  // namespace healer
