// Live introspection plane: a minimal localhost HTTP/1.0 server answering
// entirely from published snapshots, never from live fuzzing state.
//
// The split is IntrospectionHub (a mutex-protected store of preformatted
// response bodies the campaign loop publishes into at its existing sample
// points) and IntrospectServer (a background accept loop that copies the
// hub's strings into one-shot HTTP responses). Workers never see either; the
// hot path cost of serving is zero, and a slow or stuck scraper can at worst
// delay its own response.
//
// Endpoints:
//   GET /healthz       -> "ok\n" while the campaign is live
//   GET /metrics       -> Prometheus text exposition (the existing exporter)
//   GET /status        -> one-line campaign JSON (FormatStatusJson)
//   GET /journal?n=K   -> newest K journal records as JSONL (default 64)
//
// Scope: loopback only (binds 127.0.0.1), HTTP/1.0, Connection: close. This
// is an operator plane for curl/Prometheus scrapes, not a web server.

#ifndef SRC_BASE_INTROSPECT_SERVER_H_
#define SRC_BASE_INTROSPECT_SERVER_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace healer {

// Published snapshot store. Publishers overwrite whole documents; readers
// copy them out. One mutex, no reader ever blocks a fuzzing thread.
class IntrospectionHub {
 public:
  void PublishMetrics(std::string prometheus_text);
  void PublishStatus(std::string status_json);
  // `jsonl_tail` is the newest window, oldest record first; /journal?n=K
  // serves its last K lines.
  void PublishJournal(std::string jsonl_tail);
  void SetHealthy(bool healthy);

  std::string metrics() const;
  std::string status() const;
  // Last min(n, available) journal lines, oldest first.
  std::string journal_tail(size_t n) const;
  bool healthy() const;

 private:
  mutable std::mutex mu_;
  std::string metrics_;
  std::string status_ = "{}";
  std::vector<std::string> journal_lines_;
  bool healthy_ = false;
};

// Background HTTP/1.0 server over POSIX sockets. Start() binds and spawns
// the accept thread; Stop() (or the destructor) shuts it down. Requests are
// served sequentially — correctness over throughput for an operator plane.
class IntrospectServer {
 public:
  explicit IntrospectServer(IntrospectionHub* hub) : hub_(hub) {}
  ~IntrospectServer() { Stop(); }
  IntrospectServer(const IntrospectServer&) = delete;
  IntrospectServer& operator=(const IntrospectServer&) = delete;

  // Binds 127.0.0.1:`port` (0 picks an ephemeral port) and starts serving.
  // Returns false if the socket could not be bound (port taken, sandbox).
  bool Start(uint16_t port);
  void Stop();

  bool running() const { return running_; }
  // The bound port (useful with port 0); 0 when not running.
  uint16_t port() const { return port_; }

 private:
  void Serve();
  void HandleConnection(int client_fd);

  IntrospectionHub* hub_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  bool running_ = false;
  std::thread thread_;
};

}  // namespace healer

#endif  // SRC_BASE_INTROSPECT_SERVER_H_
