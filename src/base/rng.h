// Deterministic pseudo-random number generation for fuzzing.
//
// Rng wraps xoshiro256** seeded via splitmix64. Every fuzzing campaign is a
// pure function of its seed, which the tests and benches rely on.

#ifndef SRC_BASE_RNG_H_
#define SRC_BASE_RNG_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace healer {

// splitmix64 step; also used as a general-purpose integer mixer.
inline uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x1234567890abcdefULL) { Seed(seed); }

  void Seed(uint64_t seed) {
    uint64_t sm = seed;
    for (auto& word : s_) {
      word = SplitMix64(sm);
    }
  }

  // Uniform 64-bit value.
  uint64_t Next() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  // Uniform in [0, bound). bound must be > 0.
  uint64_t Below(uint64_t bound) {
    assert(bound > 0);
    // Lemire-style rejection-free reduction is fine for fuzzing purposes.
    return Next() % bound;
  }

  // Uniform in [lo, hi] inclusive.
  uint64_t InRange(uint64_t lo, uint64_t hi) {
    assert(lo <= hi);
    return lo + Below(hi - lo + 1);
  }

  // True with probability 1/n.
  bool OneIn(uint64_t n) { return Below(n) == 0; }

  // True with probability num/den.
  bool Chance(uint64_t num, uint64_t den) { return Below(den) < num; }

  // True with probability p (0..1).
  bool Bernoulli(double p) {
    if (p <= 0.0) {
      return false;
    }
    if (p >= 1.0) {
      return true;
    }
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0) < p;
  }

  // Picks an index in [0, weights.size()) proportionally to weights.
  // Total weight must be positive.
  size_t WeightedPick(const std::vector<uint64_t>& weights) {
    uint64_t total = 0;
    for (uint64_t w : weights) {
      total += w;
    }
    assert(total > 0);
    uint64_t roll = Below(total);
    for (size_t i = 0; i < weights.size(); ++i) {
      if (roll < weights[i]) {
        return i;
      }
      roll -= weights[i];
    }
    return weights.size() - 1;  // Unreachable with positive total.
  }

  template <typename T>
  const T& PickOne(const std::vector<T>& items) {
    assert(!items.empty());
    return items[Below(items.size())];
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t s_[4];
};

}  // namespace healer

#endif  // SRC_BASE_RNG_H_
