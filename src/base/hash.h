// Small non-cryptographic hash helpers shared across modules.

#ifndef SRC_BASE_HASH_H_
#define SRC_BASE_HASH_H_

#include <cstdint>
#include <string_view>

namespace healer {

// FNV-1a over a byte string; stable across platforms and runs.
inline uint64_t Fnv1a(std::string_view data, uint64_t seed = 0xcbf29ce484222325ULL) {
  uint64_t h = seed;
  for (unsigned char c : data) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

// Mixes a 64-bit value (finalizer from MurmurHash3).
inline uint64_t Mix64(uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

// Combines two hashes (boost-style).
inline uint64_t HashCombine(uint64_t a, uint64_t b) {
  return a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2));
}

}  // namespace healer

#endif  // SRC_BASE_HASH_H_
