// Small non-cryptographic hash helpers shared across modules.

#ifndef SRC_BASE_HASH_H_
#define SRC_BASE_HASH_H_

#include <cstdint>
#include <string_view>

namespace healer {

// FNV-1a over a byte string; stable across platforms and runs.
inline uint64_t Fnv1a(std::string_view data, uint64_t seed = 0xcbf29ce484222325ULL) {
  uint64_t h = seed;
  for (unsigned char c : data) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

// Word-at-a-time content hash: FNV-style fold over 8-byte native-endian
// lanes with a MurmurHash3 finalizer, the length mixed into the seed so
// "abc" and "abc\0" differ. ~8x faster than byte-serial Fnv1a on the
// multi-KiB payloads the HCORP1 corpus container checksums (the warm-start
// hot path, BENCH_hotpath warmstart_speedup). Stable across runs on a given
// endianness (HCORP1 files are host-endian already); not cryptographic —
// it detects corruption, not adversaries.
inline uint64_t FastBytesHash(std::string_view data,
                              uint64_t seed = 0xcbf29ce484222325ULL) {
  uint64_t h = seed ^ (static_cast<uint64_t>(data.size()) * 0x9e3779b97f4a7c15ULL);
  const char* p = data.data();
  size_t n = data.size();
  while (n >= 8) {
    uint64_t w;
    __builtin_memcpy(&w, p, 8);
    h = (h ^ w) * 0x100000001b3ULL;
    h ^= h >> 29;
    p += 8;
    n -= 8;
  }
  if (n != 0) {
    uint64_t w = 0;
    __builtin_memcpy(&w, p, n);
    h = (h ^ w) * 0x100000001b3ULL;
    h ^= h >> 29;
  }
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  h *= 0xc4ceb9fe1a85ec53ULL;
  h ^= h >> 33;
  return h;
}

// Mixes a 64-bit value (finalizer from MurmurHash3).
inline uint64_t Mix64(uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

// Combines two hashes (boost-style).
inline uint64_t HashCombine(uint64_t a, uint64_t b) {
  return a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2));
}

}  // namespace healer

#endif  // SRC_BASE_HASH_H_
