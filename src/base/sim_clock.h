// Simulated time.
//
// Campaign "hours" in the paper map onto a simulated clock: executing a test
// case, booting a VM, or rebooting after a crash each advance it by a
// modelled latency. This makes 24-hour experiments reproducible in seconds
// of wall time and independent of host load.

#ifndef SRC_BASE_SIM_CLOCK_H_
#define SRC_BASE_SIM_CLOCK_H_

#include <atomic>
#include <cstdint>

namespace healer {

// Thread-safe: parallel workers advance one shared campaign clock outside
// any lock. Advances are commutative relaxed fetch_adds, so the final total
// is deterministic even though interleavings are not.
class SimClock {
 public:
  using Nanos = uint64_t;

  static constexpr Nanos kMicrosecond = 1000;
  static constexpr Nanos kMillisecond = 1000 * kMicrosecond;
  static constexpr Nanos kSecond = 1000 * kMillisecond;
  static constexpr Nanos kMinute = 60 * kSecond;
  static constexpr Nanos kHour = 60 * kMinute;

  Nanos now() const { return now_.load(std::memory_order_relaxed); }
  void Advance(Nanos delta) {
    now_.fetch_add(delta, std::memory_order_relaxed);
  }
  void Reset() { now_.store(0, std::memory_order_relaxed); }

  double hours() const { return static_cast<double>(now()) / kHour; }
  double seconds() const { return static_cast<double>(now()) / kSecond; }

 private:
  std::atomic<Nanos> now_{0};
};

}  // namespace healer

#endif  // SRC_BASE_SIM_CLOCK_H_
