// Simulated time.
//
// Campaign "hours" in the paper map onto a simulated clock: executing a test
// case, booting a VM, or rebooting after a crash each advance it by a
// modelled latency. This makes 24-hour experiments reproducible in seconds
// of wall time and independent of host load.

#ifndef SRC_BASE_SIM_CLOCK_H_
#define SRC_BASE_SIM_CLOCK_H_

#include <cstdint>

namespace healer {

class SimClock {
 public:
  using Nanos = uint64_t;

  static constexpr Nanos kMicrosecond = 1000;
  static constexpr Nanos kMillisecond = 1000 * kMicrosecond;
  static constexpr Nanos kSecond = 1000 * kMillisecond;
  static constexpr Nanos kMinute = 60 * kSecond;
  static constexpr Nanos kHour = 60 * kMinute;

  Nanos now() const { return now_; }
  void Advance(Nanos delta) { now_ += delta; }
  void Reset() { now_ = 0; }

  double hours() const { return static_cast<double>(now_) / kHour; }
  double seconds() const { return static_cast<double>(now_) / kSecond; }

 private:
  Nanos now_ = 0;
};

}  // namespace healer

#endif  // SRC_BASE_SIM_CLOCK_H_
