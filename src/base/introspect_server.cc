#include "src/base/introspect_server.h"

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>

namespace healer {

namespace {

// Splits a JSONL document into lines (without trailing newlines).
std::vector<std::string> SplitLines(const std::string& text) {
  std::vector<std::string> lines;
  size_t start = 0;
  while (start < text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string::npos) {
      lines.push_back(text.substr(start));
      break;
    }
    lines.push_back(text.substr(start, end - start));
    start = end + 1;
  }
  return lines;
}

std::string HttpResponse(const char* status, const char* content_type,
                         const std::string& body) {
  std::string out = "HTTP/1.0 ";
  out += status;
  out += "\r\nContent-Type: ";
  out += content_type;
  out += "\r\nContent-Length: ";
  out += std::to_string(body.size());
  out += "\r\nConnection: close\r\n\r\n";
  out += body;
  return out;
}

}  // namespace

void IntrospectionHub::PublishMetrics(std::string prometheus_text) {
  std::lock_guard<std::mutex> lock(mu_);
  metrics_ = std::move(prometheus_text);
}

void IntrospectionHub::PublishStatus(std::string status_json) {
  std::lock_guard<std::mutex> lock(mu_);
  status_ = std::move(status_json);
}

void IntrospectionHub::PublishJournal(std::string jsonl_tail) {
  std::vector<std::string> lines = SplitLines(jsonl_tail);
  std::lock_guard<std::mutex> lock(mu_);
  journal_lines_ = std::move(lines);
}

void IntrospectionHub::SetHealthy(bool healthy) {
  std::lock_guard<std::mutex> lock(mu_);
  healthy_ = healthy;
}

std::string IntrospectionHub::metrics() const {
  std::lock_guard<std::mutex> lock(mu_);
  return metrics_;
}

std::string IntrospectionHub::status() const {
  std::lock_guard<std::mutex> lock(mu_);
  return status_;
}

std::string IntrospectionHub::journal_tail(size_t n) const {
  std::lock_guard<std::mutex> lock(mu_);
  const size_t count = n < journal_lines_.size() ? n : journal_lines_.size();
  std::string out;
  for (size_t i = journal_lines_.size() - count; i < journal_lines_.size();
       ++i) {
    out += journal_lines_[i];
    out += "\n";
  }
  return out;
}

bool IntrospectionHub::healthy() const {
  std::lock_guard<std::mutex> lock(mu_);
  return healthy_;
}

bool IntrospectServer::Start(uint16_t port) {
  if (running_) {
    return false;
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return false;
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
          0 ||
      ::listen(listen_fd_, 16) < 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) <
      0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  port_ = ntohs(addr.sin_port);
  running_ = true;
  thread_ = std::thread([this] { Serve(); });
  return true;
}

void IntrospectServer::Stop() {
  if (!running_) {
    return;
  }
  running_ = false;
  if (thread_.joinable()) {
    thread_.join();
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  port_ = 0;
}

void IntrospectServer::Serve() {
  // Poll with a short timeout so Stop() is observed promptly without
  // signal-based interruption.
  while (running_) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/50);
    if (ready <= 0 || !(pfd.revents & POLLIN)) {
      continue;
    }
    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) {
      continue;
    }
    HandleConnection(client);
    ::close(client);
  }
}

void IntrospectServer::HandleConnection(int client_fd) {
  // One read is enough for the GET request lines this plane serves; a
  // request split across packets beyond 4 KiB is not worth supporting.
  char buf[4096];
  const ssize_t got = ::recv(client_fd, buf, sizeof(buf) - 1, 0);
  if (got <= 0) {
    return;
  }
  buf[got] = '\0';
  std::string request(buf);
  const size_t line_end = request.find("\r\n");
  std::string line =
      line_end == std::string::npos ? request : request.substr(0, line_end);

  std::string response;
  if (line.compare(0, 4, "GET ") != 0) {
    response = HttpResponse("405 Method Not Allowed", "text/plain",
                            "method not allowed\n");
  } else {
    size_t path_end = line.find(' ', 4);
    if (path_end == std::string::npos) {
      path_end = line.size();
    }
    std::string path = line.substr(4, path_end - 4);
    std::string query;
    const size_t qpos = path.find('?');
    if (qpos != std::string::npos) {
      query = path.substr(qpos + 1);
      path = path.substr(0, qpos);
    }
    if (path == "/healthz") {
      response = hub_->healthy()
                     ? HttpResponse("200 OK", "text/plain", "ok\n")
                     : HttpResponse("503 Service Unavailable", "text/plain",
                                    "not ready\n");
    } else if (path == "/metrics") {
      response = HttpResponse(
          "200 OK", "text/plain; version=0.0.4; charset=utf-8",
          hub_->metrics());
    } else if (path == "/status") {
      response =
          HttpResponse("200 OK", "application/json", hub_->status() + "\n");
    } else if (path == "/journal") {
      size_t n = 64;
      const size_t npos = query.find("n=");
      if (npos != std::string::npos) {
        n = static_cast<size_t>(
            std::strtoull(query.c_str() + npos + 2, nullptr, 10));
      }
      response = HttpResponse("200 OK", "application/x-ndjson",
                              hub_->journal_tail(n));
    } else {
      response = HttpResponse("404 Not Found", "text/plain", "not found\n");
    }
  }
  size_t sent = 0;
  while (sent < response.size()) {
    const ssize_t w =
        ::send(client_fd, response.data() + sent, response.size() - sent, 0);
    if (w <= 0) {
      break;
    }
    sent += static_cast<size_t>(w);
  }
}

}  // namespace healer
