// Flight-recorder journal: a bounded ring of typed structured records that
// answers "what happened" where metrics only answer "how fast".
//
// Records are appended either directly (single-threaded Fuzzer) or through a
// per-worker JournalWriter — a private, unsynchronized buffer the parallel
// workers fill on the lock-free hot path and drain at the existing batched
// publish point, so journaling adds no locks between publishes.
//
// Determinism: records are timestamped with SimClock nanos and carry only
// campaign-derived payloads, so for a fixed (options, seed, fault_plan) the
// journal contents — and both export encodings — are bit-identical across
// runs. That property is what makes postmortem bundles diffable.
//
// Export: JSONL (one record per line, grep/jq-friendly) and a compact
// binary frame ("HJB1") for bundles that must stay small. A capacity-0
// journal drops records before taking any lock; -DHEALER_NO_TELEMETRY
// compiles recording out entirely, like the rest of the telemetry layer.

#ifndef SRC_BASE_JOURNAL_H_
#define SRC_BASE_JOURNAL_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "src/base/metrics.h"
#include "src/base/sim_clock.h"

namespace healer {

enum class JournalKind : uint8_t {
  kExec = 0,             // One program execution finished (ok or failed).
  kCorpusAdd = 1,        // A program was admitted into the corpus.
  kRelationLearned = 2,  // One relation edge entered the table.
  kFault = 3,            // An injected infrastructure fault surfaced.
  kRecovery = 4,         // The recovery policy brought a VM back.
  kVmLifecycle = 5,      // Boot / reboot / quarantine transition.
  kRingStall = 6,        // A drain timed out waiting on lost completions.
  kCrash = 7,            // A kernel bug was triggered.
};

inline constexpr size_t kNumJournalKinds = 8;

// Stable lowercase name used in both export encodings.
const char* JournalKindName(JournalKind kind);

// One journal record. The three uint64 payload slots are interpreted per
// kind (documented at each record site and in DESIGN.md §10); `detail` is a
// short free-form string (failure kind, crash title, edge names) and stays
// empty on the hottest kinds.
struct JournalRecord {
  JournalKind kind = JournalKind::kExec;
  uint32_t worker = 0;        // Observing worker; 0 for single-threaded.
  SimClock::Nanos at = 0;     // Simulated time of the event.
  uint64_t a = 0;
  uint64_t b = 0;
  uint64_t c = 0;
  std::string detail;

  bool operator==(const JournalRecord& other) const = default;

  // One JSON object, no trailing newline:
  //   {"at":12,"kind":"exec","worker":0,"a":1,"b":2,"c":3}
  // `detail` is emitted (JSON-escaped) only when non-empty.
  std::string ToJsonLine() const;
};

// Bounded ring of JournalRecords. Append takes a mutex (one lock + one slot
// move); the parallel hot path never calls it directly — workers buffer in a
// JournalWriter and flush a whole batch under one acquire at publish time.
//
// The ring slots live in a dedicated mmap'd region, not on the heap. This
// matters more than it looks: a malloc'd multi-hundred-KB ring crosses
// glibc's adaptive mmap threshold, and repeatedly allocating/freeing it
// (one ring per campaign) retunes that threshold and fragments the main
// arena — measured as a double-digit percent slowdown of the *fuzzing*
// hot path, whose small allocations share the arena. A flight recorder
// must not perturb the flight.
class Journal {
 public:
  // capacity == 0 disables recording (records are counted as dropped), as
  // does a failed ring mapping.
  explicit Journal(size_t capacity = 0);
  ~Journal();

  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  size_t capacity() const { return capacity_; }
  bool enabled() const { return kTelemetryEnabled && capacity_ > 0; }

  void Append(JournalRecord record);
  // Drains `records` into the ring under a single lock acquire and clears
  // the vector (keeping its allocation for reuse by the writer).
  void AppendBatch(std::vector<JournalRecord>* records);

  // Buffered records, oldest first.
  std::vector<JournalRecord> Records() const;
  // The newest min(n, size) records, oldest first.
  std::vector<JournalRecord> Tail(size_t n) const;
  size_t size() const;
  // Records lost to the bounded ring (recorded - buffered).
  uint64_t dropped() const;

  // JSONL of Tail(n) (n == 0 means everything buffered), newline-terminated
  // per record.
  std::string ToJsonl(size_t n = 0) const;

 private:
  void Push(JournalRecord record);

  mutable std::mutex mu_;
  size_t capacity_;
  // mmap'd slot array, all capacity_ records default-constructed upfront
  // (empty details, no heap). size_ counts live records; next_ is the
  // overwrite position once the ring is full.
  JournalRecord* slots_ = nullptr;
  size_t size_ = 0;
  size_t next_ = 0;
  uint64_t total_ = 0;  // Total records ever appended.
};

// Per-worker SPSC staging buffer. Record() appends to a private vector (no
// synchronization — single producer), Flush() hands the batch to the shared
// Journal under its one lock. Workers flush at their batched-publish point,
// so journal lock traffic scales with publishes, not with executions.
class JournalWriter {
 public:
  JournalWriter() = default;
  // `journal` may be null (journaling off); `worker` stamps every record.
  JournalWriter(Journal* journal, uint32_t worker)
      : journal_(journal), worker_(worker) {
    if (enabled()) {
      buffer_.reserve(64);
    }
  }

  bool enabled() const { return journal_ != nullptr && journal_->enabled(); }

  void Record(JournalKind kind, SimClock::Nanos at, uint64_t a = 0,
              uint64_t b = 0, uint64_t c = 0, std::string detail = "") {
#ifndef HEALER_NO_TELEMETRY
    if (!enabled()) {
      return;
    }
    JournalRecord& record = buffer_.emplace_back();
    record.kind = kind;
    record.worker = worker_;
    record.at = at;
    record.a = a;
    record.b = b;
    record.c = c;
    record.detail = std::move(detail);
#else
    (void)kind; (void)at; (void)a; (void)b; (void)c; (void)detail;
#endif
  }

  // Drains the staged records into the journal (one lock acquire).
  void Flush() {
    if (journal_ != nullptr && !buffer_.empty()) {
      journal_->AppendBatch(&buffer_);
    }
  }

  size_t pending() const { return buffer_.size(); }

 private:
  Journal* journal_ = nullptr;
  uint32_t worker_ = 0;
  std::vector<JournalRecord> buffer_;
};

// JSONL for a plain record list (used for the journal copied into
// CampaignResult after the ring is gone).
std::string JournalRecordsToJsonl(const std::vector<JournalRecord>& records);

// Compact binary frame: magic "HJB1", record count, then length-prefixed
// records. Round-trips exactly; decoding is defensive (bad magic, truncated
// frames and absurd lengths return false).
std::string JournalRecordsToBinary(const std::vector<JournalRecord>& records);
bool JournalRecordsFromBinary(const std::string& data,
                              std::vector<JournalRecord>* out);

}  // namespace healer

#endif  // SRC_BASE_JOURNAL_H_
