// Span-based tracing on simulated time.
//
// TraceBuffer is a bounded ring of events timestamped with SimClock nanos:
// complete spans ('X', e.g. one executor round trip including its retries)
// and instant events ('i', e.g. "relation learned", "alpha update"). When
// the ring is full the oldest events are overwritten, so a long campaign
// keeps its most recent window and counts what it dropped.
//
// Export is Chrome trace_event JSON (chrome://tracing / Perfetto: open the
// file with ui.perfetto.dev). Timestamps map simulated nanoseconds to trace
// microseconds, so "24 simulated hours" reads as 24 hours on the Perfetto
// timeline.
//
// Cost model: recording is a mutex acquire + one vector slot write (~tens of
// ns), cheap against the ~µs-scale simulated executions it brackets, so the
// HEALER_TRACE_* macros are left compiled in by default. A capacity-0 buffer
// (the default for library users) drops events before taking the lock;
// -DHEALER_NO_TELEMETRY compiles recording out entirely.
//
// Event names/categories must be string literals (or otherwise outlive the
// buffer): events store the pointers, never copies.

#ifndef SRC_BASE_TRACE_H_
#define SRC_BASE_TRACE_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "src/base/sim_clock.h"

namespace healer {

struct TraceEvent {
  const char* name = "";
  const char* category = "";
  char phase = 'X';  // 'X' complete span, 'i' instant.
  uint32_t tid = 0;  // Worker index; 0 for the single-threaded fuzzer.
  SimClock::Nanos start = 0;
  SimClock::Nanos duration = 0;  // 0 for instants.
  uint64_t arg = 0;              // Optional numeric payload.
  bool has_arg = false;

  bool operator==(const TraceEvent& other) const = default;
};

class TraceBuffer {
 public:
  // capacity == 0 disables recording (events are counted as dropped).
  explicit TraceBuffer(size_t capacity = 0) : capacity_(capacity) {}

  size_t capacity() const { return capacity_; }

  void RecordComplete(const char* name, const char* category,
                      SimClock::Nanos start, SimClock::Nanos duration,
                      uint32_t tid = 0);
  void RecordInstant(const char* name, const char* category,
                     SimClock::Nanos at, uint32_t tid = 0);
  void RecordInstantArg(const char* name, const char* category,
                        SimClock::Nanos at, uint64_t arg, uint32_t tid = 0);

  // Buffered events, oldest first.
  std::vector<TraceEvent> Events() const;
  size_t size() const;
  // Events lost to the bounded ring (recorded - buffered).
  uint64_t dropped() const;

  std::string ToChromeJson() const;

 private:
  void Push(const TraceEvent& event);

  mutable std::mutex mu_;
  size_t capacity_;
  std::vector<TraceEvent> ring_;
  size_t next_ = 0;     // Overwrite position once the ring is full.
  uint64_t total_ = 0;  // Total events ever recorded.
};

// Chrome trace_event JSON for a plain event list (used for the trace copied
// into CampaignResult after the buffer is gone).
std::string TraceEventsToChromeJson(const std::vector<TraceEvent>& events);

// RAII span: records [construction, destruction) on the simulated clock.
class TraceSpan {
 public:
  TraceSpan(TraceBuffer* buffer, const SimClock* clock, const char* name,
            const char* category, uint32_t tid = 0)
      : buffer_(buffer),
        clock_(clock),
        name_(name),
        category_(category),
        tid_(tid),
        start_(clock->now()) {}
  ~TraceSpan() {
    buffer_->RecordComplete(name_, category_, start_, clock_->now() - start_,
                            tid_);
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  TraceBuffer* buffer_;
  const SimClock* clock_;
  const char* name_;
  const char* category_;
  uint32_t tid_;
  SimClock::Nanos start_;
};

#ifndef HEALER_NO_TELEMETRY
#define HEALER_TRACE_CONCAT2(a, b) a##b
#define HEALER_TRACE_CONCAT(a, b) HEALER_TRACE_CONCAT2(a, b)
#define HEALER_TRACE_SPAN(buffer, clock, name, category)                   \
  ::healer::TraceSpan HEALER_TRACE_CONCAT(healer_trace_span_, __COUNTER__)( \
      (buffer), (clock), (name), (category))
#define HEALER_TRACE_INSTANT(buffer, clock, name, category) \
  (buffer)->RecordInstant((name), (category), (clock)->now())
#else
#define HEALER_TRACE_SPAN(buffer, clock, name, category) ((void)0)
#define HEALER_TRACE_INSTANT(buffer, clock, name, category) ((void)0)
#endif

}  // namespace healer

#endif  // SRC_BASE_TRACE_H_
