// Ring-based fuzzer <-> executor transport (io_uring idiom), replacing the
// one-program-at-a-time ShmChannel handshake for batched execution: paired
// fixed-slot submission/completion rings over a per-VM shared-memory region.
//
// Layout follows io_uring's split between ring headers and entry arrays:
// head/tail indices and per-slot sequence numbers live in a "doorbell page"
// (atomics), while entry payloads live in a flat byte area. Entries are
// sequence-numbered; a slot is free when its sequence equals the position a
// producer wants to claim and ready when it equals position + 1, which gives
// wraparound, full/empty detection, and torn/stale-entry detection without
// any shared lock. The steady state is doorbell-free polling: consumers spin
// on the sequence word; only when a consumer has declared itself asleep
// (need_wakeup, io_uring's SQ_NEED_WAKEUP) does the producer pay for an
// eventfd-style signal (WakeupFd).
//
// The wire surfaces are hostile-input hardened like serialize.cc: slot
// length words are validated against the slot budget before any copy, and
// the completion codec (EncodeCompletion/DecodeCompletion) rejects
// truncated, oversized, or trailing-byte payloads with a typed status
// instead of trusting guest-controlled lengths. tests/exec_ring_test.cc
// holds the producer/consumer property suite; DESIGN.md §9 documents the
// invariants.

#ifndef SRC_EXEC_EXEC_RING_H_
#define SRC_EXEC_EXEC_RING_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "src/base/status.h"
#include "src/exec/exec_result.h"

namespace healer {

// Eventfd-style wakeup line: a counting signal the consumer blocks on when
// it has seen the ring empty and parked itself. Signal() is cheap for the
// producer; Wait() blocks until a signal arrives or the fd is closed.
class WakeupFd {
 public:
  void Signal();
  // Returns false once the fd is closed and all pending signals consumed.
  bool Wait();
  void Close();

  // Total signals ever raised (the "doorbell rings"; steady-state polling
  // keeps this far below the push count).
  uint64_t signals() const { return signals_.load(std::memory_order_relaxed); }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  uint64_t pending_ = 0;
  bool closed_ = false;
  std::atomic<uint64_t> signals_{0};
};

// One ring direction: fixed-count, fixed-stride slots, single producer and
// single consumer (the fuzzer worker owns the VM; the executor owns the
// guest side). Sequence numbers double as the publish barrier: the producer
// writes payload bytes, then releases the slot's sequence; the consumer
// acquires the sequence before touching the bytes.
class SlotRing {
 public:
  // What TryPop found. kTorn and kStale consume (and free) the bad slot so
  // one corrupted entry cannot wedge the ring.
  enum class Pop : uint8_t {
    kOk = 0,
    kEmpty,  // Nothing published.
    kTorn,   // Slot length word exceeds the slot budget (corrupt framing).
    kStale,  // Slot sequence number is neither free nor ready (corruption).
  };

  // `entries` must be a power of two; `slot_bytes` is the full slot stride
  // including the 16-byte slot header.
  SlotRing(uint32_t entries, uint32_t slot_bytes);

  // Producer side. False when the ring is full or the payload exceeds the
  // slot budget (callers drain or spill to the legacy path).
  bool Push(const uint8_t* payload, size_t len, uint64_t user_data);

  // Consumer side. On kOk fills `payload` (copied out of the slot) and
  // `user_data`; on kTorn/kStale the slot is skipped and freed.
  Pop TryPop(std::vector<uint8_t>* payload, uint64_t* user_data);

  size_t size() const;
  bool Empty() const { return size() == 0; }
  bool Full() const { return size() >= entries_; }
  uint32_t entries() const { return entries_; }
  // Largest payload one slot can carry.
  uint32_t payload_capacity() const { return slot_bytes_ - kSlotHeader; }

  // ---- wakeup protocol (io_uring SQ_NEED_WAKEUP idiom) ----
  // Consumer: declare intent to sleep. Returns true if the ring is still
  // empty after the flag was raised (safe to Wait); false means an entry
  // raced in and the consumer should keep polling.
  bool PrepareToSleep();
  void CancelSleep() { need_wakeup_.store(false, std::memory_order_release); }
  // Producer: called after every Push; signals the WakeupFd only when the
  // consumer declared itself asleep.
  void WakeConsumerIfNeeded();
  WakeupFd& wakeup() { return wakeup_; }

  // ---- counters (relaxed; exact once the threads have joined) ----
  uint64_t pushes() const { return pushes_.load(std::memory_order_relaxed); }
  uint64_t pops() const { return pops_.load(std::memory_order_relaxed); }
  uint64_t torn() const { return torn_.load(std::memory_order_relaxed); }
  uint64_t stale() const { return stale_.load(std::memory_order_relaxed); }
  uint64_t full_rejects() const {
    return full_rejects_.load(std::memory_order_relaxed);
  }

  // ---- hostile-input / fault-injection access ----
  // Raw bytes of the slot that position `pos` maps to (header + payload).
  // Tests and the fault injector use this to model a guest tearing an entry
  // mid-flight; production code never touches it.
  uint8_t* TestSlotBytes(uint64_t pos);
  // Overwrites the slot's sequence word (modelling a stale/corrupt publish).
  void TestPokeSeq(uint64_t pos, uint64_t seq);

 private:
  static constexpr uint32_t kSlotHeader = 16;  // u64 user_data + u32 len + pad

  uint32_t entries_;
  uint32_t mask_;
  uint32_t slot_bytes_;
  std::vector<uint8_t> data_;  // The shm entry area: entries_ * slot_bytes_.
  std::unique_ptr<std::atomic<uint64_t>[]> seq_;  // The doorbell page.
  std::atomic<uint64_t> head_{0};
  std::atomic<uint64_t> tail_{0};
  std::atomic<bool> need_wakeup_{false};
  WakeupFd wakeup_;
  std::atomic<uint64_t> pushes_{0};
  std::atomic<uint64_t> pops_{0};
  std::atomic<uint64_t> torn_{0};
  std::atomic<uint64_t> stale_{0};
  std::atomic<uint64_t> full_rejects_{0};
};

// Geometry of one VM's paired rings. Defaults keep >= 256 programs in
// flight per VM with the region on the same scale as ShmChannel's 1 MiB.
struct RingConfig {
  uint32_t sq_entries = 256;     // Power of two.
  uint32_t cq_entries = 256;     // Power of two.
  uint32_t sq_slot_bytes = 4096; // Slot stride (16-byte header + payload).
  uint32_t cq_slot_bytes = 4096;
};

// Point-in-time ring occupancy, read without disturbing the transport.
// Postmortem bundles snapshot one per VM so a crash ships with the depth of
// both queues and the lifetime push/pop/reject counters at trigger time.
struct RingOccupancy {
  uint32_t sq_depth = 0;
  uint32_t sq_entries = 0;
  uint32_t cq_depth = 0;
  uint32_t cq_entries = 0;
  uint64_t sq_pushes = 0;
  uint64_t cq_pushes = 0;
  uint64_t sq_full_rejects = 0;

  bool operator==(const RingOccupancy& other) const = default;
};

// The paired rings: the fuzzer pushes serialized programs into the SQ and
// reaps encoded ExecResults from the CQ; the in-guest executor drains the
// SQ multi-shot and posts completions. Both directions carry the
// submission's user_data tag so completions can be matched out of band.
class ExecRing {
 public:
  explicit ExecRing(RingConfig config = RingConfig());

  SlotRing& sq() { return sq_; }
  SlotRing& cq() { return cq_; }
  const SlotRing& sq() const { return sq_; }
  const SlotRing& cq() const { return cq_; }
  const RingConfig& config() const { return config_; }

  RingOccupancy Occupancy() const {
    RingOccupancy occ;
    occ.sq_depth = static_cast<uint32_t>(sq_.size());
    occ.sq_entries = sq_.entries();
    occ.cq_depth = static_cast<uint32_t>(cq_.size());
    occ.cq_entries = cq_.entries();
    occ.sq_pushes = sq_.pushes();
    occ.cq_pushes = cq_.pushes();
    occ.sq_full_rejects = sq_.full_rejects();
    return occ;
  }

 private:
  RingConfig config_;
  SlotRing sq_;
  SlotRing cq_;
};

// ---- completion wire codec ----
//
// CQ entry payload: a self-delimiting encoding of one ExecResult. Bounds
// mirror the program wire format's defensive caps; DecodeCompletion fails
// with kParseError on any truncation, cap violation, or trailing bytes.
inline constexpr uint32_t kCompletionMagic = 0x43514531;  // "CQE1"
inline constexpr size_t kMaxCompletionCalls = 1024;
inline constexpr size_t kMaxCompletionSlots = 64;
inline constexpr size_t kMaxCrashTitle = 256;

std::vector<uint8_t> EncodeCompletion(const ExecResult& result);
Result<ExecResult> DecodeCompletion(const uint8_t* data, size_t size);

}  // namespace healer

#endif  // SRC_EXEC_EXEC_RING_H_
