// Executor: the in-guest agent. Decodes wire-format programs, lays argument
// data out in guest memory, issues each call to the SimKernel with per-call
// KCOV collection, resolves resource references, and extracts out-parameter
// resource values.
//
// A fresh Kernel is booted per program (the paper's executor forks per test
// case for isolation; a fresh kernel object is the simulator equivalent and
// keeps programs independent and deterministic).

#ifndef SRC_EXEC_EXECUTOR_H_
#define SRC_EXEC_EXECUTOR_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/base/bitmap.h"
#include "src/exec/exec_result.h"
#include "src/kernel/kernel.h"
#include "src/prog/prog.h"
#include "src/prog/serialize.h"
#include "src/prog/slots.h"

namespace healer {

class Executor {
 public:
  // `target` must outlive the executor. The handler table is resolved once:
  // syscall id -> SyscallDef (nullptr => ENOSYS in the configured kernel).
  Executor(const Target& target, const KernelConfig& config);

  // Runs `prog` against a fresh kernel. If `global_coverage` is non-null,
  // per-call edges are merged into it and CallExecInfo::new_edges reports
  // the fresh ones; pass nullptr for side-effect-free runs (minimization).
  ExecResult Run(const Prog& prog, Bitmap* global_coverage);

  // Wire-format entry point used by the VM transport. Decoding failures
  // yield an empty result (all calls unexecuted).
  ExecResult RunSerialized(const uint8_t* data, size_t size,
                           Bitmap* global_coverage);

  // Ids of syscalls available in this kernel configuration.
  const std::vector<int>& enabled_syscalls() const {
    return enabled_syscalls_;
  }
  bool SyscallEnabled(int id) const {
    return handlers_[static_cast<size_t>(id)] != nullptr;
  }

  const KernelConfig& config() const { return config_; }
  const Target& target() const { return target_; }

  // Number of kernel executions performed (programs, not calls).
  uint64_t execs() const { return execs_; }

 private:
  // Writes `arg` into guest memory at `addr`; returns bytes written.
  uint64_t StoreArg(Kernel& kernel, const Arg& arg,
                    const std::vector<CallExecInfo>& done, uint64_t addr);
  // Computes the flat syscall argument word for `arg` (allocating guest
  // memory for pointees).
  uint64_t EvalArg(Kernel& kernel, const Arg& arg,
                   const std::vector<CallExecInfo>& done);
  // Resolves a resource reference against completed calls.
  uint64_t ResolveResource(const Arg& arg,
                           const std::vector<CallExecInfo>& done) const;

  const Target& target_;
  KernelConfig config_;
  // Result slots precomputed per syscall id; the per-call extraction loop
  // borrows them instead of re-walking argument trees every execution.
  ResultSlotTable slot_table_;
  std::vector<const SyscallDef*> handlers_;
  std::vector<int> enabled_syscalls_;
  CallCoverage cov_;
  GuestMem mem_;  // Pooled across programs; Reset() per Run.
  uint64_t execs_ = 0;
};

}  // namespace healer

#endif  // SRC_EXEC_EXECUTOR_H_
