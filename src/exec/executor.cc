#include "src/exec/executor.h"

#include <algorithm>

#include "src/base/logging.h"
#include "src/kernel/errno.h"
#include "src/prog/slots.h"

namespace healer {

namespace {

uint64_t SpecialValueOf(const Type* type) {
  if (type != nullptr && type->resource != nullptr &&
      !type->resource->special_values.empty()) {
    return type->resource->special_values[0];
  }
  return static_cast<uint64_t>(-1);
}

}  // namespace

Executor::Executor(const Target& target, const KernelConfig& config)
    : target_(target), config_(config), slot_table_(target) {
  handlers_.resize(target.NumSyscalls(), nullptr);
  for (const auto& call : target.syscalls()) {
    const SyscallDef* def = FindSyscallDef(call->name);
    if (def != nullptr && SyscallAvailable(*def, config_)) {
      handlers_[static_cast<size_t>(call->id)] = def;
      enabled_syscalls_.push_back(call->id);
    }
  }
}

uint64_t Executor::ResolveResource(
    const Arg& arg, const std::vector<CallExecInfo>& done) const {
  if (arg.res_ref < 0) {
    return arg.val;
  }
  const size_t ref = static_cast<size_t>(arg.res_ref);
  if (ref >= done.size() || !done[ref].executed ||
      static_cast<size_t>(arg.res_slot) >= done[ref].slot_values.size()) {
    return SpecialValueOf(arg.type);
  }
  return done[ref].slot_values[static_cast<size_t>(arg.res_slot)];
}

uint64_t Executor::StoreArg(Kernel& kernel, const Arg& arg,
                            const std::vector<CallExecInfo>& done,
                            uint64_t addr) {
  GuestMem& mem = kernel.mem();
  switch (arg.kind) {
    case ArgKind::kConstant: {
      const uint32_t size = arg.type != nullptr ? arg.type->size : 8;
      mem.Write(addr, &arg.val, std::min<uint32_t>(size, 8));
      return size;
    }
    case ArgKind::kResource: {
      const uint64_t value = ResolveResource(arg, done);
      mem.Write(addr, &value, 8);
      return 8;
    }
    case ArgKind::kVma: {
      mem.Write(addr, &arg.val, 8);
      return 8;
    }
    case ArgKind::kData:
      if (!arg.data.empty()) {
        mem.Write(addr, arg.data.data(), arg.data.size());
      }
      return arg.data.size();
    case ArgKind::kPointer: {
      const uint64_t ptr_value = EvalArg(kernel, arg, done);
      mem.Write(addr, &ptr_value, 8);
      return 8;
    }
    case ArgKind::kGroup: {
      uint64_t offset = 0;
      for (const auto& child : arg.inner) {
        offset += StoreArg(kernel, *child, done, addr + offset);
      }
      return offset;
    }
    case ArgKind::kUnion:
      return arg.inner.empty()
                 ? 0
                 : StoreArg(kernel, *arg.inner[0], done, addr);
  }
  return 0;
}

uint64_t Executor::EvalArg(Kernel& kernel, const Arg& arg,
                           const std::vector<CallExecInfo>& done) {
  switch (arg.kind) {
    case ArgKind::kConstant:
    case ArgKind::kVma:
      return arg.val;
    case ArgKind::kResource:
      return ResolveResource(arg, done);
    case ArgKind::kPointer: {
      if (arg.pointee == nullptr) {
        return 0;
      }
      const uint64_t size = std::max<uint64_t>(arg.pointee->Size(), 1);
      const uint64_t addr = kernel.mem().AllocData(size);
      if (addr == 0) {
        return 0;  // Guest data window exhausted; acts like a bad pointer.
      }
      StoreArg(kernel, *arg.pointee, done, addr);
      return addr;
    }
    case ArgKind::kData:
    case ArgKind::kGroup:
    case ArgKind::kUnion: {
      // Aggregates at the top level decay to a pointer to their contents.
      const uint64_t size = std::max<uint64_t>(arg.Size(), 1);
      const uint64_t addr = kernel.mem().AllocData(size);
      if (addr != 0) {
        StoreArg(kernel, arg, done, addr);
      }
      return addr;
    }
  }
  return 0;
}

namespace {

// Collects guest addresses of out-direction resource scalars in the same
// pre-order as ResultSlotsOf. `base` is the pointee's base address.
void CollectOutResourceAddrs(const Arg& arg, bool out_ctx, uint64_t base,
                             std::vector<uint64_t>* addrs) {
  switch (arg.kind) {
    case ArgKind::kResource:
      if (out_ctx && base != 0) {
        addrs->push_back(base);
      }
      break;
    case ArgKind::kPointer: {
      if (arg.pointee == nullptr) {
        break;
      }
      const bool pointee_out =
          arg.type != nullptr && (arg.type->dir == Dir::kOut ||
                                  arg.type->dir == Dir::kInOut);
      // The pointee's address is the pointer's evaluated value; we don't
      // have it here, so pointer nesting below the top level is walked with
      // base 0 (no extraction). Top-level handling happens in Run().
      CollectOutResourceAddrs(*arg.pointee, pointee_out, 0, addrs);
      break;
    }
    case ArgKind::kGroup: {
      uint64_t offset = 0;
      for (const auto& child : arg.inner) {
        CollectOutResourceAddrs(*child, out_ctx,
                                base == 0 ? 0 : base + offset, addrs);
        offset += child->Size();
      }
      break;
    }
    case ArgKind::kUnion:
      if (!arg.inner.empty()) {
        CollectOutResourceAddrs(*arg.inner[0], out_ctx, base, addrs);
      }
      break;
    default:
      break;
  }
}

}  // namespace

ExecResult Executor::Run(const Prog& prog, Bitmap* global_coverage) {
  ++execs_;
  ExecResult result;
  result.calls.resize(prog.size());

  mem_.Reset();
  Kernel kernel(config_, &mem_);

  for (size_t ci = 0; ci < prog.size(); ++ci) {
    const Call& call = prog.calls()[ci];
    CallExecInfo& info = result.calls[ci];
    const SyscallDef* def = handlers_[static_cast<size_t>(call.meta->id)];

    // Evaluate arguments (allocates and fills guest memory). Remember the
    // evaluated pointer values of top-level args for out-extraction.
    uint64_t args[6] = {0, 0, 0, 0, 0, 0};
    std::vector<uint64_t> top_ptr_values(call.args.size(), 0);
    for (size_t ai = 0; ai < call.args.size() && ai < 6; ++ai) {
      args[ai] = EvalArg(kernel, *call.args[ai], result.calls);
      top_ptr_values[ai] = args[ai];
    }

    cov_.Reset();
    kernel.SetCoverage(&cov_);
    int64_t ret;
    if (def == nullptr) {
      ret = -kENOSYS;
    } else {
      ret = kernel.Exec(*def, args);
    }
    kernel.SetCoverage(nullptr);

    info.executed = true;
    info.retval = ret;
    info.signal = cov_.signal();
    info.num_edges = static_cast<uint32_t>(cov_.NumEdges());
    if (global_coverage != nullptr) {
      // Merge only the slots this call actually touched; Set() is atomic per
      // word, so the campaign bitmap needs no lock even with parallel
      // executors, and each fresh slot is credited to exactly one of them.
      uint32_t fresh = 0;
      for (const uint32_t slot : cov_.slots()) {
        fresh += global_coverage->Set(slot) ? 1 : 0;
      }
      info.new_edges = fresh;
    }

    // Result slots: slot 0 is the return value; out-parameter resources
    // are read back from guest memory.
    const auto& slots = slot_table_.of(call.meta->id);
    if (!slots.empty()) {
      size_t max_slot = 0;
      for (const auto& slot : slots) {
        max_slot = std::max(max_slot, static_cast<size_t>(slot.slot));
      }
      info.slot_values.assign(max_slot + 1, SpecialValueOf(nullptr));
      if (ret >= 0) {
        info.slot_values[0] = static_cast<uint64_t>(ret);
        // Walk top-level out pointers, reading resource values at their
        // stored offsets.
        std::vector<uint64_t> addrs;
        for (size_t ai = 0; ai < call.args.size(); ++ai) {
          const Arg& arg = *call.args[ai];
          if (arg.kind == ArgKind::kPointer && arg.pointee != nullptr &&
              arg.type != nullptr &&
              (arg.type->dir == Dir::kOut || arg.type->dir == Dir::kInOut)) {
            CollectOutResourceAddrs(*arg.pointee, true, top_ptr_values[ai],
                                    &addrs);
          }
        }
        for (size_t si = 0; si < addrs.size() && 1 + si <= max_slot; ++si) {
          uint64_t value = SpecialValueOf(nullptr);
          kernel.mem().Read64(addrs[si], &value);
          info.slot_values[1 + si] = value;
        }
      }
    }

    if (kernel.crashed()) {
      result.crash = CrashInfo{kernel.crash().bug, kernel.crash().title, ci};
      break;
    }
  }
  return result;
}

ExecResult Executor::RunSerialized(const uint8_t* data, size_t size,
                                   Bitmap* global_coverage) {
  Result<Prog> prog = DeserializeProg(target_, data, size);
  if (!prog.ok()) {
    LOG_WARNING << "executor: bad program: " << prog.status().ToString();
    return ExecResult{};
  }
  return Run(*prog, global_coverage);
}

}  // namespace healer
