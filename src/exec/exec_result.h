// Execution results: per-call return values, coverage signals and crash
// reports — exactly the feedback HEALER's algorithms consume.

#ifndef SRC_EXEC_EXEC_RESULT_H_
#define SRC_EXEC_EXEC_RESULT_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/kernel/bugs.h"

namespace healer {

struct CallExecInfo {
  bool executed = false;
  int64_t retval = 0;
  // Order-independent hash of the call's edge set; equal hashes mean "same
  // coverage" for the minimizer and dynamic learner.
  uint64_t signal = 0;
  // Number of edges this call contributed that the campaign-global bitmap
  // had never seen (0 when no global bitmap was supplied).
  uint32_t new_edges = 0;
  // Total edges this call touched.
  uint32_t num_edges = 0;
  // Result-slot values this call produced (slot -> value), parallel to
  // ResultSlotsOf(call.meta).
  std::vector<uint64_t> slot_values;
};

struct CrashInfo {
  BugId bug;
  std::string title;
  // Index of the crashing call within the program.
  size_t call_index = 0;
};

struct ExecResult {
  std::vector<CallExecInfo> calls;
  std::optional<CrashInfo> crash;

  bool Crashed() const { return crash.has_value(); }
  uint32_t TotalNewEdges() const {
    uint32_t total = 0;
    for (const auto& call : calls) {
      total += call.new_edges;
    }
    return total;
  }
};

}  // namespace healer

#endif  // SRC_EXEC_EXEC_RESULT_H_
