// Execution results: per-call return values, coverage signals and crash
// reports — exactly the feedback HEALER's algorithms consume.

#ifndef SRC_EXEC_EXEC_RESULT_H_
#define SRC_EXEC_EXEC_RESULT_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/kernel/bugs.h"

namespace healer {

struct CallExecInfo {
  bool executed = false;
  int64_t retval = 0;
  // Order-independent hash of the call's edge set; equal hashes mean "same
  // coverage" for the minimizer and dynamic learner.
  uint64_t signal = 0;
  // Number of edges this call contributed that the campaign-global bitmap
  // had never seen (0 when no global bitmap was supplied).
  uint32_t new_edges = 0;
  // Total edges this call touched.
  uint32_t num_edges = 0;
  // Result-slot values this call produced (slot -> value), parallel to
  // ResultSlotsOf(call.meta).
  std::vector<uint64_t> slot_values;

  bool operator==(const CallExecInfo& other) const = default;
};

struct CrashInfo {
  BugId bug;
  std::string title;
  // Index of the crashing call within the program.
  size_t call_index = 0;

  bool operator==(const CrashInfo& other) const = default;
};

// Infrastructure failure of an execution attempt, as opposed to a guest
// kernel crash (CrashInfo), which is a fuzzing result. A failed execution
// carries no usable feedback: its calls are empty, nothing was merged into
// the global coverage bitmap, and the fuzzer's recovery policy decides
// whether to retry or discard the program.
enum class ExecFailure : uint8_t {
  kNone = 0,
  kVmLost,          // The VM died mid-program.
  kTimeout,         // The executor hung; the watchdog gave up waiting.
  kCorruptedReply,  // The wire bytes were damaged in transit.
  kBootFailure,     // The VM failed to (re)boot.
  // Ring-transport lifecycle failures (exec_ring.h; keep kRingStall last —
  // the completion codec bounds-checks the enum against it).
  kRingSetup,       // Ring setup/register/mmap equivalent failed.
  kRingTorn,        // A submission entry was torn/corrupted in the SQ.
  kRingStall,       // The completion never arrived; the reaper gave up.
};

inline const char* ExecFailureName(ExecFailure failure) {
  switch (failure) {
    case ExecFailure::kNone:
      return "none";
    case ExecFailure::kVmLost:
      return "vm-lost";
    case ExecFailure::kTimeout:
      return "timeout";
    case ExecFailure::kCorruptedReply:
      return "corrupted-reply";
    case ExecFailure::kBootFailure:
      return "boot-failure";
    case ExecFailure::kRingSetup:
      return "ring-setup";
    case ExecFailure::kRingTorn:
      return "ring-torn";
    case ExecFailure::kRingStall:
      return "ring-stall";
  }
  return "?";
}

struct ExecResult {
  std::vector<CallExecInfo> calls;
  std::optional<CrashInfo> crash;
  ExecFailure failure = ExecFailure::kNone;

  bool operator==(const ExecResult& other) const = default;

  bool Crashed() const { return crash.has_value(); }
  bool Failed() const { return failure != ExecFailure::kNone; }
  uint32_t TotalNewEdges() const {
    uint32_t total = 0;
    for (const auto& call : calls) {
      total += call.new_edges;
    }
    return total;
  }
};

}  // namespace healer

#endif  // SRC_EXEC_EXEC_RESULT_H_
