// Fuzzer <-> executor transport, modelled on HEALER's architecture (Fig. 3):
// test cases travel through an ivshmem-style shared-memory region in the
// compact serialized representation, while a small control socket carries
// handshakes and command/status frames.

#ifndef SRC_EXEC_SHM_CHANNEL_H_
#define SRC_EXEC_SHM_CHANNEL_H_

#include <cstdint>
#include <cstring>
#include <deque>
#include <vector>

#include "src/base/metrics.h"

namespace healer {

// The shared-memory data plane. One in-flight program at a time, like the
// paper's per-VM region.
class ShmChannel {
 public:
  static constexpr size_t kSize = 1 << 20;

  ShmChannel() : region_(kSize, 0) {}

  // Copies a serialized program into the region. False when it won't fit.
  bool WriteProg(const std::vector<uint8_t>& bytes) {
    if (bytes.size() + 8 > kSize) {
      return false;
    }
    const uint64_t len = bytes.size();
    std::memcpy(region_.data(), &len, 8);
    if (!bytes.empty()) {
      std::memcpy(region_.data() + 8, bytes.data(), bytes.size());
    }
    return true;
  }

  const uint8_t* prog_data() const { return region_.data() + 8; }
  // The guest-written length word is untrusted: a value the region cannot
  // hold reads as 0, so RunSerialized sees an empty (cleanly rejected)
  // program instead of reading past the mapping.
  size_t prog_size() const {
    uint64_t len;
    std::memcpy(&len, region_.data(), 8);
    return len <= kSize - 8 ? static_cast<size_t>(len) : 0;
  }

  // Raw region access for hostile-guest tests and fault injection; the
  // production path only ever writes through WriteProg.
  uint8_t* raw() { return region_.data(); }

 private:
  std::vector<uint8_t> region_;
};

// The control plane: an in-memory duplex frame queue standing in for the
// QEMU control socket.
enum class CtrlKind : uint8_t {
  kHandshake = 1,
  kHandshakeAck = 2,
  kExecRequest = 3,
  kExecReply = 4,
  kCrashNotice = 5,
};

struct CtrlFrame {
  CtrlKind kind;
  uint64_t payload = 0;
};

class ControlSocket {
 public:
  // A real socket has a finite buffer; an unbounded frame queue lets a
  // babbling guest exhaust host memory. Frames past the cap are dropped and
  // counted (surfaced as healer_ctrl_overflow_total when a registry is
  // attached).
  static constexpr size_t kMaxPending = 1024;

  void Send(CtrlFrame frame) {
    if (queue_.size() >= kMaxPending) {
      ++overflows_;
      if (overflow_counter_ != nullptr) {
        overflow_counter_->Add();
      }
      return;
    }
    queue_.push_back(frame);
  }

  bool Recv(CtrlFrame* frame) {
    if (queue_.empty()) {
      return false;
    }
    *frame = queue_.front();
    queue_.pop_front();
    return true;
  }

  bool empty() const { return queue_.empty(); }
  size_t pending() const { return queue_.size(); }
  uint64_t overflows() const { return overflows_; }

  // Optional telemetry hookup; the counter must outlive the socket.
  void set_overflow_counter(Counter* counter) { overflow_counter_ = counter; }

 private:
  std::deque<CtrlFrame> queue_;
  uint64_t overflows_ = 0;
  Counter* overflow_counter_ = nullptr;
};

}  // namespace healer

#endif  // SRC_EXEC_SHM_CHANNEL_H_
