#include "src/exec/exec_ring.h"

#include <cassert>
#include <cstring>

#include "src/base/string_util.h"

namespace healer {

// ---- WakeupFd ----

void WakeupFd::Signal() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++pending_;
  }
  signals_.fetch_add(1, std::memory_order_relaxed);
  cv_.notify_one();
}

bool WakeupFd::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return pending_ > 0 || closed_; });
  if (pending_ == 0) {
    return false;
  }
  --pending_;
  return true;
}

void WakeupFd::Close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  cv_.notify_all();
}

// ---- SlotRing ----

SlotRing::SlotRing(uint32_t entries, uint32_t slot_bytes)
    : entries_(entries),
      mask_(entries - 1),
      slot_bytes_(slot_bytes),
      data_(static_cast<size_t>(entries) * slot_bytes, 0),
      seq_(new std::atomic<uint64_t>[entries]) {
  assert(entries != 0 && (entries & (entries - 1)) == 0);
  assert(slot_bytes > kSlotHeader);
  for (uint32_t i = 0; i < entries_; ++i) {
    seq_[i].store(i, std::memory_order_relaxed);
  }
}

size_t SlotRing::size() const {
  const uint64_t tail = tail_.load(std::memory_order_acquire);
  const uint64_t head = head_.load(std::memory_order_acquire);
  return tail >= head ? static_cast<size_t>(tail - head) : 0;
}

bool SlotRing::Push(const uint8_t* payload, size_t len, uint64_t user_data) {
  if (len > payload_capacity()) {
    return false;
  }
  const uint64_t pos = tail_.load(std::memory_order_relaxed);
  const uint32_t idx = static_cast<uint32_t>(pos) & mask_;
  // Free slots carry seq == pos. Anything else means the consumer has not
  // recycled this slot yet: the ring is full.
  if (seq_[idx].load(std::memory_order_acquire) != pos) {
    full_rejects_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  uint8_t* slot = data_.data() + static_cast<size_t>(idx) * slot_bytes_;
  std::memcpy(slot, &user_data, 8);
  const uint32_t len32 = static_cast<uint32_t>(len);
  std::memcpy(slot + 8, &len32, 4);
  std::memset(slot + 12, 0, 4);
  if (len > 0) {
    std::memcpy(slot + kSlotHeader, payload, len);
  }
  // Publish: the release on seq_ is the barrier that makes the payload
  // bytes visible to the consumer's acquire load.
  seq_[idx].store(pos + 1, std::memory_order_release);
  tail_.store(pos + 1, std::memory_order_release);
  pushes_.fetch_add(1, std::memory_order_relaxed);
  WakeConsumerIfNeeded();
  return true;
}

SlotRing::Pop SlotRing::TryPop(std::vector<uint8_t>* payload,
                               uint64_t* user_data) {
  const uint64_t pos = head_.load(std::memory_order_relaxed);
  const uint32_t idx = static_cast<uint32_t>(pos) & mask_;
  const uint64_t seq = seq_[idx].load(std::memory_order_acquire);
  if (seq == pos) {
    return Pop::kEmpty;  // Slot still free: nothing published.
  }
  if (seq != pos + 1) {
    // Neither free nor ready-for-this-position: the sequence word was
    // corrupted (or replayed from a previous lap). Skip and free the slot so
    // the ring stays live; the entry is lost, never half-trusted.
    stale_.fetch_add(1, std::memory_order_relaxed);
    seq_[idx].store(pos + entries_, std::memory_order_release);
    head_.store(pos + 1, std::memory_order_release);
    return Pop::kStale;
  }
  const uint8_t* slot = data_.data() + static_cast<size_t>(idx) * slot_bytes_;
  uint32_t len = 0;
  std::memcpy(&len, slot + 8, 4);
  if (len > payload_capacity()) {
    // The length word claims bytes beyond the slot budget: a torn write.
    // Reject before copying anything.
    torn_.fetch_add(1, std::memory_order_relaxed);
    seq_[idx].store(pos + entries_, std::memory_order_release);
    head_.store(pos + 1, std::memory_order_release);
    return Pop::kTorn;
  }
  std::memcpy(user_data, slot, 8);
  payload->assign(slot + kSlotHeader, slot + kSlotHeader + len);
  // Recycle: mark the slot free for the producer's next lap.
  seq_[idx].store(pos + entries_, std::memory_order_release);
  head_.store(pos + 1, std::memory_order_release);
  pops_.fetch_add(1, std::memory_order_relaxed);
  return Pop::kOk;
}

bool SlotRing::PrepareToSleep() {
  need_wakeup_.store(true, std::memory_order_seq_cst);
  // Re-check emptiness after raising the flag: a producer that published
  // before seeing the flag would otherwise be missed (the classic lost
  // wakeup). seq_cst on both sides makes flag-then-check safe.
  if (!Empty()) {
    need_wakeup_.store(false, std::memory_order_release);
    return false;
  }
  return true;
}

void SlotRing::WakeConsumerIfNeeded() {
  if (need_wakeup_.load(std::memory_order_seq_cst) &&
      need_wakeup_.exchange(false, std::memory_order_seq_cst)) {
    wakeup_.Signal();
  }
}

uint8_t* SlotRing::TestSlotBytes(uint64_t pos) {
  const uint32_t idx = static_cast<uint32_t>(pos) & mask_;
  return data_.data() + static_cast<size_t>(idx) * slot_bytes_;
}

void SlotRing::TestPokeSeq(uint64_t pos, uint64_t seq) {
  seq_[static_cast<uint32_t>(pos) & mask_].store(seq,
                                                 std::memory_order_release);
}

// ---- ExecRing ----

ExecRing::ExecRing(RingConfig config)
    : config_(config),
      sq_(config.sq_entries, config.sq_slot_bytes),
      cq_(config.cq_entries, config.cq_slot_bytes) {}

// ---- completion codec ----

namespace {

class ByteWriter {
 public:
  explicit ByteWriter(std::vector<uint8_t>* out) : out_(out) {}
  void U8(uint8_t v) { out_->push_back(v); }
  void U16(uint16_t v) { Put(&v, 2); }
  void U32(uint32_t v) { Put(&v, 4); }
  void U64(uint64_t v) { Put(&v, 8); }
  void Bytes(const void* data, size_t n) {
    const uint8_t* p = static_cast<const uint8_t*>(data);
    out_->insert(out_->end(), p, p + n);
  }

 private:
  void Put(const void* v, size_t n) {
    // The simulator runs host-endian; the serialized program format makes
    // the same assumption.
    Bytes(v, n);
  }
  std::vector<uint8_t>* out_;
};

class ByteReader {
 public:
  ByteReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}
  bool U8(uint8_t* v) { return Get(v, 1); }
  bool U16(uint16_t* v) { return Get(v, 2); }
  bool U32(uint32_t* v) { return Get(v, 4); }
  bool U64(uint64_t* v) { return Get(v, 8); }
  bool Bytes(void* out, size_t n) { return Get(out, n); }
  size_t remaining() const { return size_ - pos_; }

 private:
  bool Get(void* out, size_t n) {
    if (size_ - pos_ < n) {
      return false;
    }
    std::memcpy(out, data_ + pos_, n);
    pos_ += n;
    return true;
  }
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

Result<ExecResult> CompletionError(const char* what) {
  return ParseError(StrFormat("bad completion: %s", what));
}

}  // namespace

std::vector<uint8_t> EncodeCompletion(const ExecResult& result) {
  std::vector<uint8_t> out;
  ByteWriter w(&out);
  w.U32(kCompletionMagic);
  w.U8(static_cast<uint8_t>(result.failure));
  w.U8(result.crash.has_value() ? 1 : 0);
  w.U16(static_cast<uint16_t>(result.calls.size()));
  if (result.crash.has_value()) {
    w.U32(static_cast<uint32_t>(result.crash->bug));
    w.U32(static_cast<uint32_t>(result.crash->call_index));
    const size_t title_len =
        std::min(result.crash->title.size(), kMaxCrashTitle);
    w.U16(static_cast<uint16_t>(title_len));
    w.Bytes(result.crash->title.data(), title_len);
  }
  for (const CallExecInfo& call : result.calls) {
    w.U8(call.executed ? 1 : 0);
    w.U64(static_cast<uint64_t>(call.retval));
    w.U64(call.signal);
    w.U32(call.new_edges);
    w.U32(call.num_edges);
    w.U16(static_cast<uint16_t>(call.slot_values.size()));
    for (uint64_t slot : call.slot_values) {
      w.U64(slot);
    }
  }
  return out;
}

Result<ExecResult> DecodeCompletion(const uint8_t* data, size_t size) {
  ByteReader r(data, size);
  uint32_t magic = 0;
  if (!r.U32(&magic) || magic != kCompletionMagic) {
    return CompletionError("bad magic");
  }
  uint8_t failure = 0;
  uint8_t has_crash = 0;
  uint16_t num_calls = 0;
  if (!r.U8(&failure) || !r.U8(&has_crash) || !r.U16(&num_calls)) {
    return CompletionError("truncated header");
  }
  if (failure > static_cast<uint8_t>(ExecFailure::kRingStall)) {
    return CompletionError("unknown failure kind");
  }
  if (has_crash > 1) {
    return CompletionError("bad crash flag");
  }
  if (num_calls > kMaxCompletionCalls) {
    return CompletionError("bad call count");
  }
  ExecResult result;
  result.failure = static_cast<ExecFailure>(failure);
  if (has_crash != 0) {
    uint32_t bug = 0;
    uint32_t call_index = 0;
    uint16_t title_len = 0;
    if (!r.U32(&bug) || !r.U32(&call_index) || !r.U16(&title_len)) {
      return CompletionError("truncated crash record");
    }
    if (title_len > kMaxCrashTitle) {
      return CompletionError("oversized crash title");
    }
    std::string title(title_len, '\0');
    if (title_len > 0 && !r.Bytes(title.data(), title_len)) {
      return CompletionError("truncated crash title");
    }
    CrashInfo crash;
    crash.bug = static_cast<BugId>(bug);
    crash.title = std::move(title);
    crash.call_index = call_index;
    result.crash = std::move(crash);
  }
  result.calls.reserve(num_calls);
  for (uint16_t i = 0; i < num_calls; ++i) {
    CallExecInfo call;
    uint8_t executed = 0;
    uint64_t retval = 0;
    uint16_t nslots = 0;
    if (!r.U8(&executed) || !r.U64(&retval) || !r.U64(&call.signal) ||
        !r.U32(&call.new_edges) || !r.U32(&call.num_edges) ||
        !r.U16(&nslots)) {
      return CompletionError("truncated call record");
    }
    if (executed > 1) {
      return CompletionError("bad executed flag");
    }
    if (nslots > kMaxCompletionSlots) {
      return CompletionError("bad slot count");
    }
    call.executed = executed != 0;
    call.retval = static_cast<int64_t>(retval);
    call.slot_values.resize(nslots);
    for (uint16_t s = 0; s < nslots; ++s) {
      if (!r.U64(&call.slot_values[s])) {
        return CompletionError("truncated slot values");
      }
    }
    result.calls.push_back(std::move(call));
  }
  if (r.remaining() != 0) {
    return CompletionError("trailing bytes");
  }
  return result;
}

}  // namespace healer
