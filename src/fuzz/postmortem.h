// Crash postmortem bundles: the black box that ships with every unique
// crash. When CrashDb sees a previously-unseen bug its on_new_crash hook
// assembles a PostmortemBundle — triggering program, the last-N flight-
// recorder window, a full metrics snapshot, per-VM SQ/CQ ring occupancy and
// the relation-table state — and writes it as one self-contained directory
// under --postmortem-dir:
//
//   bug-<id>-<slug>/
//     crash.json      bug id, title, trigger exec/time, campaign identity
//     program.txt     the triggering program (Prog::ToString)
//     journal.jsonl   newest <= kPostmortemJournalWindow journal records
//     journal.bin     the same window in the compact binary frame
//     metrics.prom    Prometheus text snapshot at trigger time
//     rings.json      per-VM SQ/CQ depth + lifetime transport counters
//     relations.json  epoch, edge counts by source, staged-delta backlog
//     repro.txt       minimized reproducer (appended after minimization)
//
// Every field is derived from simulated time and campaign state — never
// wall clock — so two same-seed campaigns write byte-identical bundles
// (tests/introspect_test.cc pins this).

#ifndef SRC_FUZZ_POSTMORTEM_H_
#define SRC_FUZZ_POSTMORTEM_H_

#include <string>
#include <vector>

#include "src/base/journal.h"
#include "src/base/metrics.h"
#include "src/base/status.h"
#include "src/exec/exec_ring.h"
#include "src/fuzz/crash_db.h"

namespace healer {

// Journal records captured into a bundle (newest window, oldest first).
inline constexpr size_t kPostmortemJournalWindow = 256;

struct PostmortemBundle {
  CrashRecord crash;
  // Campaign identity, so a bundle is interpretable standalone.
  uint64_t seed = 0;
  std::string tool;
  std::string transport;
  std::string program_text;  // Triggering program.
  std::vector<JournalRecord> journal_window;
  MetricsSnapshot metrics;
  std::vector<RingOccupancy> rings;  // One per VM, pool order.
  uint64_t relation_epoch = 0;
  uint64_t relation_edges = 0;
  uint64_t relation_static = 0;
  uint64_t relation_dynamic = 0;
  // Learned-but-unpublished edges staged in deltas at trigger time.
  uint64_t relation_backlog = 0;
};

// Filesystem-safe directory slug for a crash title ("KASAN: use-after-free
// in tcp_close" -> "kasan-use-after-free-in-tcp-close", bounded length).
std::string PostmortemSlug(const std::string& title);

// Writes `bundle` under `dir` (created if needed) and returns the bundle
// directory path. An existing bundle directory for the same bug is
// overwritten file-by-file, which keeps re-runs idempotent.
Result<std::string> WritePostmortemBundle(const std::string& dir,
                                          const PostmortemBundle& bundle);

// Appends the minimized reproducer to an already-written bundle.
Status WritePostmortemRepro(const std::string& bundle_dir,
                            const std::string& repro_text);

}  // namespace healer

#endif  // SRC_FUZZ_POSTMORTEM_H_
