#include "src/fuzz/corpus.h"

#include <algorithm>
#include <bit>
#include <cassert>

namespace healer {

namespace {

constexpr size_t Lowbit(size_t i) { return i & (~i + 1); }

// Appends a new leaf with weight `v` to a 1-based Fenwick tree of current
// size n = f->size() - 1. The new node at index n+1 covers the range
// (n+1 - lowbit(n+1), n+1], whose sum is v plus the already-stored nodes
// tiling the rest of that range.
void FenwickAppend(std::vector<uint64_t>* f, uint64_t v) {
  const size_t i = f->size();
  uint64_t t = v;
  for (size_t j = i - 1; j > i - Lowbit(i); j -= Lowbit(j)) {
    t += (*f)[j];
  }
  f->push_back(t);
}

void FenwickAdd(std::vector<uint64_t>* f, size_t i, uint64_t delta) {
  for (; i < f->size(); i += Lowbit(i)) {
    (*f)[i] += delta;  // Unsigned wraparound handles negative deltas.
  }
}

// Returns the 0-based index of the entry whose priority range contains
// `roll` (0 <= roll < total): the largest pos with prefix_sum(pos) <= roll.
size_t FenwickPick(const std::vector<uint64_t>& f, uint64_t roll) {
  const size_t n = f.size() - 1;
  size_t pos = 0;
  for (size_t bit = std::bit_floor(n); bit != 0; bit >>= 1) {
    const size_t next = pos + bit;
    if (next <= n && f[next] <= roll) {
      pos = next;
      roll -= f[next];
    }
  }
  return pos;  // pos entries lie fully below the roll; pick entry #pos.
}

}  // namespace

const Prog& CorpusSnapshot::Choose(Rng* rng) const {
  assert(!progs.empty());
  return *progs[FenwickPick(fenwick, rng->Below(total_priority))];
}

bool Corpus::Add(Prog prog, uint32_t priority) {
  if (entries_.size() >= kMaxEntries || prog.empty()) {
    return false;
  }
  const uint64_t hash = ContentHash(prog);
  return Add(std::move(prog), priority, hash);
}

bool Corpus::Add(Prog prog, uint32_t priority, uint64_t content_hash) {
  if (entries_.size() >= kMaxEntries || prog.empty()) {
    return false;
  }
  if (!hashes_.insert(content_hash).second) {
    return false;
  }
  priority = std::max<uint32_t>(priority, 1);
  total_priority_ += priority;
  FenwickAppend(&fenwick_, priority);
  entries_.push_back(
      Entry{std::make_shared<const Prog>(std::move(prog)), priority});
  return true;
}

const Prog& Corpus::Choose(Rng* rng) const {
  assert(!entries_.empty());
  return *entries_[FenwickPick(fenwick_, rng->Below(total_priority_))].prog;
}

void Corpus::UpdatePriority(size_t index, uint32_t priority) {
  assert(index < entries_.size());
  priority = std::max<uint32_t>(priority, 1);
  Entry& entry = entries_[index];
  const uint64_t delta = static_cast<uint64_t>(priority) -
                         static_cast<uint64_t>(entry.priority);
  if (delta == 0) {
    return;
  }
  entry.priority = priority;
  total_priority_ += delta;
  FenwickAdd(&fenwick_, index + 1, delta);
}

std::shared_ptr<const CorpusSnapshot> Corpus::Snapshot() const {
  auto snap = std::make_shared<CorpusSnapshot>();
  snap->progs.reserve(entries_.size());
  for (const Entry& entry : entries_) {
    snap->progs.push_back(entry.prog);
  }
  snap->fenwick = fenwick_;
  snap->total_priority = total_priority_;
  return snap;
}

std::vector<size_t> Corpus::LengthHistogram() const {
  std::vector<size_t> hist(5, 0);
  for (const Entry& entry : entries_) {
    const size_t len = entry.prog->size();
    if (len == 0) {
      continue;
    }
    hist[std::min<size_t>(len, 5) - 1] += 1;
  }
  return hist;
}

std::vector<Prog> Corpus::ExportAll() const {
  std::vector<Prog> out;
  out.reserve(entries_.size());
  for (const Entry& entry : entries_) {
    out.push_back(entry.prog->Clone());
  }
  return out;
}

double Corpus::MeanLength() const {
  if (entries_.empty()) {
    return 0.0;
  }
  size_t total = 0;
  for (const Entry& entry : entries_) {
    total += entry.prog->size();
  }
  return static_cast<double>(total) /
         static_cast<double>(entries_.size());
}

}  // namespace healer
