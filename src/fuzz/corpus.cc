#include "src/fuzz/corpus.h"

#include <algorithm>
#include <cassert>

namespace healer {

bool Corpus::Add(Prog prog, uint32_t priority) {
  if (entries_.size() >= kMaxEntries || prog.empty()) {
    return false;
  }
  const std::vector<uint8_t> bytes = SerializeProg(prog);
  const uint64_t hash =
      Fnv1a(std::string_view(reinterpret_cast<const char*>(bytes.data()),
                             bytes.size()));
  if (!hashes_.insert(hash).second) {
    return false;
  }
  priority = std::max<uint32_t>(priority, 1);
  total_priority_ += priority;
  entries_.push_back(Entry{std::move(prog), priority});
  return true;
}

const Prog& Corpus::Choose(Rng* rng) const {
  assert(!entries_.empty());
  uint64_t roll = rng->Below(total_priority_);
  for (const Entry& entry : entries_) {
    if (roll < entry.priority) {
      return entry.prog;
    }
    roll -= entry.priority;
  }
  return entries_.back().prog;
}

std::vector<size_t> Corpus::LengthHistogram() const {
  std::vector<size_t> hist(5, 0);
  for (const Entry& entry : entries_) {
    const size_t len = entry.prog.size();
    if (len == 0) {
      continue;
    }
    hist[std::min<size_t>(len, 5) - 1] += 1;
  }
  return hist;
}

std::vector<Prog> Corpus::ExportAll() const {
  std::vector<Prog> out;
  out.reserve(entries_.size());
  for (const Entry& entry : entries_) {
    out.push_back(entry.prog.Clone());
  }
  return out;
}

double Corpus::MeanLength() const {
  if (entries_.empty()) {
    return 0.0;
  }
  size_t total = 0;
  for (const Entry& entry : entries_) {
    total += entry.prog.size();
  }
  return static_cast<double>(total) / static_cast<double>(entries_.size());
}

}  // namespace healer
