#include "src/fuzz/campaign.h"

#include <algorithm>

#include "src/base/introspect_server.h"
#include "src/base/logging.h"
#include "src/fuzz/corpus_io.h"
#include "src/fuzz/report.h"
#include "src/syzlang/builtin_descs.h"

namespace healer {

bool CampaignResult::FoundBug(BugId bug) const {
  return std::any_of(crashes.begin(), crashes.end(),
                     [&](const CrashRecord& r) { return r.bug == bug; });
}

CampaignResult RunCampaign(const CampaignOptions& options) {
  const Target& target = BuiltinTarget();
  FuzzerOptions fuzz_options;
  fuzz_options.tool = options.tool;
  fuzz_options.version = options.version;
  fuzz_options.seed = options.seed;
  fuzz_options.num_vms = options.num_vms;
  fuzz_options.fleet_size = options.fleet_size;
  fuzz_options.fleet_shards = options.fleet_shards;
  fuzz_options.latency = options.latency;
  fuzz_options.moonshine_traces = options.moonshine_traces;
  fuzz_options.guidance = options.guidance;
  fuzz_options.fixed_alpha = options.fixed_alpha;
  fuzz_options.fault_plan = options.fault_plan;
  fuzz_options.recovery = options.recovery;
  fuzz_options.transport = options.transport;
  fuzz_options.trace_capacity =
      options.capture_trace ? options.trace_capacity : 0;
  fuzz_options.journal_capacity = options.journal_capacity;
  fuzz_options.postmortem_dir = options.postmortem_dir;
  Fuzzer fuzzer(target, fuzz_options);

  size_t relations_loaded = 0;
  if (!options.initial_relations_path.empty()) {
    Result<size_t> loaded =
        fuzzer.LoadRelations(options.initial_relations_path);
    if (loaded.ok()) {
      relations_loaded = *loaded;
    } else {
      LOG_WARNING << "failed to load initial relations: "
                  << loaded.status().ToString();
    }
  }

  if (!options.initial_corpus_path.empty()) {
    Result<std::vector<Prog>> seeds =
        LoadProgs(options.initial_corpus_path, target);
    if (seeds.ok()) {
      fuzzer.SeedWith(*seeds);
    } else {
      LOG_WARNING << "failed to load initial corpus: "
                  << seeds.status().ToString();
    }
  }

  const SimClock::Nanos deadline = static_cast<SimClock::Nanos>(
      options.hours * static_cast<double>(SimClock::kHour));

  CampaignResult result;
  result.options = options;
  SimClock::Nanos next_sample = 0;

  // Live status bookkeeping (status line + /status endpoint).
  SimClock::Nanos next_status = options.status_period;
  uint64_t last_status_execs = 0;
  SimClock::Nanos last_status_time = 0;
  auto make_status = [&] {
    StatusLineInfo info;
    info.hours = fuzzer.clock().hours();
    info.execs = fuzzer.FuzzExecs();
    const SimClock::Nanos dt = fuzzer.clock().now() - last_status_time;
    if (dt > 0) {
      info.execs_per_sec = static_cast<double>(info.execs -
                                               last_status_execs) *
                           static_cast<double>(SimClock::kSecond) /
                           static_cast<double>(dt);
    }
    info.coverage = fuzzer.CoverageCount();
    info.corpus = fuzzer.corpus().size();
    info.relations = fuzzer.relations().Count();
    info.crashes = fuzzer.crashes().UniqueBugs();
    info.vms = fuzzer.pool().size();
    if (fuzzer.pool().fleet()) {
      info.fleet = fuzzer.pool().ShardSummaries();
    }
    const FaultStats faults = fuzzer.fault_stats();
    info.failed_execs = faults.failed_execs;
    info.quarantines = faults.quarantines;
    // Ring/pipeline occupancy and lock share, read from the registry so the
    // status line can never disagree with /metrics.
    const MetricsSnapshot snap = fuzzer.metrics().Snapshot();
    info.ring_drains = snap.counter("healer_ring_drains_total");
    const auto drain_hist = snap.histograms.find("healer_ring_drain_programs");
    if (drain_hist != snap.histograms.end() && drain_hist->second.count > 0) {
      info.ring_depth_mean = static_cast<double>(drain_hist->second.sum) /
                             static_cast<double>(drain_hist->second.count);
    }
    info.ring_stalls = snap.counter("healer_ring_stalls_total");
    info.lock_held_share = snap.gauge("healer_parallel_lock_held_share");
    return info;
  };
  auto emit_status = [&] {
    const StatusLineInfo info = make_status();
    LogToSink(LogLevel::kInfo, FormatStatusLine(info));
    last_status_execs = info.execs;
    last_status_time = fuzzer.clock().now();
  };

  // Snapshot publication for the introspection server: whole documents,
  // assembled off the hot path and swapped into the hub.
  auto publish = [&] {
    if (options.introspect == nullptr) {
      return;
    }
    fuzzer.RefreshGauges();
    options.introspect->PublishMetrics(fuzzer.metrics().ToPrometheusText());
    options.introspect->PublishStatus(FormatStatusJson(make_status()));
    options.introspect->PublishJournal(fuzzer.journal().ToJsonl(256));
    options.introspect->SetHealthy(true);
  };

  auto sample = [&] {
    CoverageSample s;
    s.hours = fuzzer.clock().hours();
    s.branches = fuzzer.CoverageCount();
    s.execs = fuzzer.FuzzExecs();
    s.relations = fuzzer.relations().Count();
    result.samples.push_back(s);
    publish();
  };

  while (fuzzer.clock().now() < deadline &&
         fuzzer.FuzzExecs() < options.max_execs) {
    if (fuzzer.clock().now() >= next_sample) {
      sample();
      next_sample += options.sample_period;
    }
    if (options.status_period > 0 && fuzzer.clock().now() >= next_status) {
      emit_status();
      next_status += options.status_period;
    }
    fuzzer.Step();
  }
  sample();
  if (options.status_period > 0) {
    emit_status();
  }

  result.final_coverage = fuzzer.CoverageCount();
  result.fuzz_execs = fuzzer.FuzzExecs();
  result.total_execs = fuzzer.TotalExecs();
  result.corpus_size = fuzzer.corpus().size();
  result.corpus_mean_len = fuzzer.corpus().MeanLength();
  result.corpus_length_hist = fuzzer.corpus().LengthHistogram();
  result.crashes = fuzzer.crashes().All();
  result.relations_total = fuzzer.relations().Count();
  result.relations_static =
      fuzzer.relations().CountBySource(RelationSource::kStatic);
  result.relations_dynamic =
      fuzzer.relations().CountBySource(RelationSource::kDynamic);
  result.relation_edges = fuzzer.relations().EdgesBefore();
  result.relations_loaded = relations_loaded;
  result.final_alpha = fuzzer.alpha();
  result.faults = fuzzer.fault_stats();
  fuzzer.RefreshGauges();
  result.telemetry = fuzzer.metrics().Snapshot();
  if (options.capture_trace) {
    result.trace_events = fuzzer.trace().Events();
  }
  result.journal = fuzzer.journal().Records();
  // Final publication so post-campaign scrapes (--serve-secs linger) see
  // the end-of-run state.
  publish();

  if (!options.save_corpus_path.empty()) {
    const Status saved =
        SaveProgs(options.save_corpus_path, fuzzer.corpus().ExportAll(),
                  options.corpus_format);
    if (!saved.ok()) {
      LOG_WARNING << "failed to save corpus: " << saved.ToString();
    }
  }
  if (!options.save_relations_path.empty()) {
    const Status saved = fuzzer.SaveRelations(options.save_relations_path);
    if (!saved.ok()) {
      LOG_WARNING << "failed to save relations: " << saved.ToString();
    }
  }
  return result;
}

double HoursToReach(const CampaignResult& result, size_t coverage) {
  const auto& samples = result.samples;
  for (size_t i = 0; i < samples.size(); ++i) {
    if (samples[i].branches >= coverage) {
      if (i == 0) {
        return samples[0].hours;
      }
      const auto& lo = samples[i - 1];
      const auto& hi = samples[i];
      if (hi.branches == lo.branches) {
        return hi.hours;
      }
      const double frac = static_cast<double>(coverage - lo.branches) /
                          static_cast<double>(hi.branches - lo.branches);
      return lo.hours + frac * (hi.hours - lo.hours);
    }
  }
  return -1.0;
}

}  // namespace healer
