#include "src/fuzz/templates.h"

#include <algorithm>

#include "src/fuzz/prog_builder.h"

namespace healer {

std::vector<std::vector<std::string>> TemplateChains() {
  return {
      {"openat$kvm", "ioctl$KVM_CREATE_VM", "ioctl$KVM_CREATE_VCPU",
       "ioctl$KVM_SET_USER_MEMORY_REGION", "ioctl$KVM_RUN"},
      {"openat$kvm", "ioctl$KVM_CREATE_VM", "ioctl$KVM_CREATE_IRQCHIP",
       "ioctl$KVM_IRQ_LINE"},
      {"memfd_create", "write$memfd", "fcntl$ADD_SEALS", "mmap"},
      {"memfd_create", "ftruncate$memfd", "mmap", "munmap"},
      {"socket$tcp", "bind", "listen", "accept4"},
      {"socket$tcp", "bind", "listen", "connect", "sendto", "recvfrom"},
      {"socket$udp", "bind", "sendto", "recvfrom"},
      {"pipe2", "write$pipe", "read$pipe"},
      {"pipe2", "pipe2", "write$pipe", "splice", "read$pipe"},
      {"epoll_create1", "pipe2", "epoll_ctl$ADD", "epoll_wait"},
      {"eventfd2", "write$eventfd", "read$eventfd"},
      {"openat$file", "write", "fsync", "read", "close"},
      {"openat$file", "write", "lseek", "pread64", "fstat"},
      {"openat$ptmx", "ioctl$TCSETS", "write$ptmx", "read$ptmx"},
      {"openat$ptmx", "ioctl$TIOCSETD", "ioctl$GSMIOC_CONFIG", "write$ptmx"},
      {"openat$vcs", "ioctl$VT_RESIZE", "write$vcs", "read$vcs"},
      {"openat$fb0", "ioctl$FBIOPUT_VSCREENINFO", "ioctl$FBIOPAN_DISPLAY",
       "write$fb"},
      {"timerfd_create", "timerfd_settime", "read$timerfd"},
      {"io_uring_setup", "io_uring_register$BUFFERS", "io_uring_enter"},
      {"openat$nbd", "socket$tcp", "ioctl$NBD_SET_SOCK", "ioctl$NBD_DO_IT"},
      {"openat$loop", "openat$file", "ioctl$LOOP_SET_FD",
       "ioctl$LOOP_CLR_FD"},
      {"openat$rdma_cm", "write$rdma_create_id", "write$rdma_bind_addr",
       "write$rdma_listen"},
      {"io_setup", "openat$file", "io_submit", "io_getevents", "io_destroy"},
      {"socket$nl802154", "bind$netlink", "sendmsg$nl802154_add_key"},
      {"prctl$PR_SET_DUMPABLE", "ptrace$SETREGSET", "tgkill$self"},
      {"openat$video0", "ioctl$VIDIOC_REQBUFS", "ioctl$VIDIOC_STREAMON",
       "ioctl$VIDIOC_STREAMOFF"},
  };
}

Prog BuildChain(const Target& target, const std::vector<int>& enabled,
                const std::vector<std::string>& chain, Rng* rng) {
  std::vector<uint8_t> enabled_mask(target.NumSyscalls(), 0);
  for (int id : enabled) {
    enabled_mask[static_cast<size_t>(id)] = 1;
  }
  ProgBuilder builder(target, enabled, rng);
  Prog prog(&target);
  for (const std::string& name : chain) {
    const Syscall* call = target.FindSyscall(name);
    if (call == nullptr || enabled_mask[static_cast<size_t>(call->id)] == 0) {
      return Prog(&target);
    }
    builder.AppendCall(&prog, call->id);
  }
  // Templates are ground truth: deterministically wire every resource
  // argument to the most recent compatible producer and materialize null
  // pointers, so a chain always exercises its intended path regardless of
  // the generator's negative-testing randomness.
  ArgGenerator gen(rng);
  for (size_t ci = 0; ci < prog.size(); ++ci) {
    ResourcePool pool;
    for (size_t pi = 0; pi < ci; ++pi) {
      pool.AddCall(*prog.calls()[pi].meta, static_cast<int>(pi));
    }
    ForEachArg(prog.calls()[ci], [&](Arg& arg) {
      if (arg.kind == ArgKind::kResource && arg.type != nullptr &&
          arg.type->resource != nullptr) {
        const auto producers = pool.FindProducers(arg.type->resource);
        if (!producers.empty()) {
          arg.res_ref = producers.back().call_index;
          arg.res_slot = producers.back().slot;
        }
      } else if (arg.kind == ArgKind::kPointer && arg.pointee == nullptr &&
                 arg.type != nullptr && arg.type->elem != nullptr) {
        arg.pointee = gen.Gen(arg.type->elem, pool);
      }
    });
  }
  prog.FixupLens();
  return prog;
}

}  // namespace healer
