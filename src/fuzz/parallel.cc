#include "src/fuzz/parallel.h"

#include <algorithm>
#include <array>
#include <chrono>
#include <vector>

#include "src/base/string_util.h"
#include "src/prog/arena.h"
#include "src/vm/vm_pool.h"

namespace healer {

namespace {

std::vector<int> EnabledIds(const Target& target, const KernelConfig& config) {
  std::vector<int> ids;
  for (const auto& call : target.syscalls()) {
    const SyscallDef* def = FindSyscallDef(call->name);
    if (def != nullptr && SyscallAvailable(*def, config)) {
      ids.push_back(call->id);
    }
  }
  return ids;
}

uint64_t ToNs(std::chrono::steady_clock::duration d) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(d).count());
}

// Scoped ownership of the publish mutex that feeds the contention
// histograms: wall time spent waiting for the lock and wall time spent
// holding it. Host wall-clock is the right ruler here — the lock-held-share
// acceptance gate asks what fraction of the campaign the workers spent
// serialized, which simulated time cannot answer.
class TimedLock {
 public:
  TimedLock(std::mutex* mu, ParallelMetrics* pm) : mu_(mu), pm_(pm) {
    const auto start = std::chrono::steady_clock::now();
    mu_->lock();
    locked_ = std::chrono::steady_clock::now();
    pm_->lock_wait_ns->Observe(ToNs(locked_ - start));
  }
  ~TimedLock() {
    const auto end = std::chrono::steady_clock::now();
    mu_->unlock();
    pm_->lock_held_ns->Observe(ToNs(end - locked_));
  }

  TimedLock(const TimedLock&) = delete;
  TimedLock& operator=(const TimedLock&) = delete;

 private:
  std::mutex* mu_;
  ParallelMetrics* pm_;
  std::chrono::steady_clock::time_point locked_;
};

// One Job_i of Figure 3: owns a VM, an RNG and builders; fuzzes against
// read-mostly views of the shared state and publishes feedback in batches
// (see parallel.h for the protocol).
class Worker {
 public:
  Worker(const Target& target, const ParallelOptions& options,
         SharedFuzzState* shared, size_t index, VmPool* pool,
         const SimClock* sim_clock)
      : target_(target),
        options_(options),
        shared_(shared),
        rng_(options.seed * 7919 + index),
        pool_(pool),
        lane_(index % pool->num_lanes()),
        sim_clock_(sim_clock),
        tid_(static_cast<uint32_t>(index)),
        m_(&shared->metrics),
        pm_(&shared->metrics),
        builder_(target,
                 EnabledIds(target, KernelConfig::ForVersion(options.version)),
                 &rng_),
        selector_(&shared->relations, builder_.enabled(), &rng_),
        jw_(&shared->journal, static_cast<uint32_t>(index)) {
    // Candidate programs are built in the worker-private arena and die at
    // the end of each iteration (or pipelined round); corpus survivors are
    // heap clones staged by the minimizer, so they outlive resets.
    builder_.set_arena(&arena_);
  }

  void Run() {
    if (options_.pipeline_depth > 1) {
      RunPipelined();
      return;
    }
    while (true) {
      // The previous iteration's candidate is dead; reclaim its nodes.
      arena_.Reset();
      const uint64_t ticket =
          shared_->exec_tickets.fetch_add(1, std::memory_order_relaxed);
      if (ticket >= options_.total_execs) {
        break;
      }
      const bool urgent = Step(ticket);
      if (urgent || batch_.execs >= options_.batch_size) {
        Publish();
        PumpLaneShard();
      }
    }
    Publish();     // Final flush.
    jw_.Flush();   // Records staged inside the final Publish itself.
    PumpLaneShard();
  }

 private:
  // ---- fleet lane protocol ----
  // A worker owns a guest only for the execution+feedback half of an
  // iteration (or one pipelined round): acquired from the lane freelist,
  // released when the feedback is staged. In the legacy topology the lane
  // holds exactly one pinned VM and release is a no-op, so the protocol
  // collapses to the historical worker-owns-VM model.
  GuestVm& AcquireVm() {
    GuestVm* vm = pool_->AcquireReady(lane_);
    // Lifecycle / fault / ring-stall records route through this worker's
    // writer while it drives the VM (single producer: the VM is checked
    // out of the freelist).
    vm->set_journal(&jw_);
    vm_ = vm;
    return *vm;
  }
  void ReleaseVm() {
    if (vm_ == nullptr) {
      return;
    }
    if (pool_->fleet()) {
      // Hand journal ownership back to the shard: an async reboot fired by
      // whichever worker pumps next must not write into this worker's
      // single-producer staging buffer.
      vm_->set_journal(shard_journal_);
      pool_->Release(lane_, vm_);
    }
    vm_ = nullptr;
  }
  void PumpLaneShard() {
    if (pool_->fleet()) {
      pool_->PumpShard(pool_->shard_of_lane(lane_));
    }
  }

 public:
  // The shard journal this worker's lane re-attaches on release (fleet
  // mode; may stay null when journaling is disabled).
  void set_shard_journal(JournalWriter* journal) { shard_journal_ = journal; }

 private:
  // Feedback accumulated since the last publish.
  struct PendingCrash {
    BugId bug;
    std::string title;
    uint64_t exec_index;
    size_t repro_len;
  };
  struct PendingAdd {
    Prog prog;
    uint32_t priority;
    uint64_t content_hash;
  };
  struct Batch {
    uint64_t execs = 0;
    std::vector<PendingCrash> crashes;
    std::vector<PendingAdd> adds;
    // Relation edges learned since the last publish (locally deduplicated;
    // RelationTable::Apply credits them exactly once fleet-wide).
    RelationDelta relations;
    // Alpha-schedule outcomes keyed by (used_table << 1) | gained. The
    // schedule only counts per-category totals within its window, so
    // replaying them as counts at publish time is order-safe.
    std::array<uint64_t, 4> alpha_outcomes{};

    bool Empty() const {
      return execs == 0 && crashes.empty() && adds.empty() &&
             relations.empty() && alpha_outcomes == std::array<uint64_t, 4>{};
    }
  };

  // A chooser bound to the shared relation table / alpha.
  CallChooser MakeChooser(double alpha, bool* used_table) {
    if (options_.tool == ToolKind::kHealer) {
      return [this, alpha, used_table](const std::vector<int>& prefix) {
        bool used = false;
        const int pick = selector_.Select(prefix, alpha, &used);
        *used_table |= used;
        return pick;
      };
    }
    return [this](const std::vector<int>&) { return selector_.RandomCall(); };
  }

  // Re-copies the corpus snapshot pointer iff the epoch moved. The common
  // case (epoch unchanged) is one relaxed load.
  void RefreshSnapshot() {
    const uint64_t epoch =
        shared_->corpus_epoch.load(std::memory_order_relaxed);
    if (epoch == snapshot_epoch_ && snapshot_ != nullptr) {
      return;
    }
    std::lock_guard<std::mutex> lock(shared_->snapshot_mu);
    snapshot_ = shared_->corpus_snapshot;
    snapshot_epoch_ = shared_->corpus_epoch.load(std::memory_order_relaxed);
    pm_.snapshot_refresh->Add();
  }

  // Runs `prog` on this worker's VM under the recovery policy: bounded
  // retry, quarantine-rebooting the VM when its failure streak crosses the
  // threshold. Lock-free: the VM is worker-owned, the campaign bitmap
  // merges atomically, and the sim clock advances atomically. Every failure
  // is accounted in the shared registry's recovery counters, so the per-VM
  // infra_faults counters and the recovery-side failed_execs agree. A
  // faulted execution merged nothing into the shared coverage, so retrying
  // is safe; a still-Failed() return means the program's feedback must be
  // discarded.
  // The pipelined submit path: claim up to pipeline_depth tickets, build
  // that many programs lock-free, submit them all into the VM's SQ ring in
  // one ExecBatch, then run the recovery tail and feedback processing per
  // completion. The VM charges its round-trip overhead once per drain, so
  // deep pipelines amortize it across hundreds of in-flight programs.
  void RunPipelined() {
    while (true) {
      // All of the previous round's in-flight programs have been reaped;
      // reset here (never inside BuildOne — up to pipeline_depth candidates
      // are alive simultaneously within a round).
      arena_.Reset();
      std::vector<PendingExec> pending;
      pending.reserve(options_.pipeline_depth);
      while (pending.size() < options_.pipeline_depth) {
        const uint64_t ticket =
            shared_->exec_tickets.fetch_add(1, std::memory_order_relaxed);
        if (ticket >= options_.total_execs) {
          break;
        }
        pending.push_back(BuildOne(ticket));
      }
      if (pending.empty()) {
        break;
      }
      // Submit every non-empty program in claim order; completion tags are
      // indices into `progs`, reaped in submission order.
      std::vector<const Prog*> progs;
      std::vector<size_t> pending_of;
      progs.reserve(pending.size());
      pending_of.reserve(pending.size());
      for (size_t i = 0; i < pending.size(); ++i) {
        if (!pending[i].prog.empty()) {
          progs.push_back(&pending[i].prog);
          pending_of.push_back(i);
        }
      }
      bool urgent = false;
      if (!progs.empty()) {
        TraceSpan span(&shared_->trace, sim_clock_, "exec-batch", "vm", tid_);
        m_.exec_attempts->Add(progs.size());
        AcquireVm();
        std::vector<RingCompletion> completions =
            vm_->ExecBatch(progs, &shared_->coverage);
        for (RingCompletion& completion : completions) {
          const PendingExec& p =
              pending[pending_of[static_cast<size_t>(completion.tag)]];
          const ExecResult result = RetryTail(p.prog, &shared_->coverage,
                                              std::move(completion.result));
          urgent |= HandleFeedback(p, result);
        }
        ReleaseVm();
      }
      if (urgent || batch_.execs >= options_.batch_size) {
        Publish();
        PumpLaneShard();
      }
    }
    Publish();     // Final flush.
    jw_.Flush();   // Records staged inside the final Publish itself.
    PumpLaneShard();
  }

  // One execution on this worker's VM, routed by transport: the pipelined
  // path (pipeline_depth > 1) keeps retries and analysis probes on the ring
  // so a worker uses exactly one transport for its whole campaign.
  ExecResult ExecOne(const Prog& prog, Bitmap* coverage) {
    return options_.pipeline_depth > 1 ? vm_->ExecRingOne(prog, coverage)
                                       : vm_->Exec(prog, coverage);
  }

  // The recovery tail shared by both transports: takes the result of an
  // already-attempted (and already attempt-counted) execution and applies
  // the bounded-retry/quarantine policy. Every observed failure is counted
  // once, which keeps the per-VM infra_faults counters and the
  // recovery-side failed_execs in agreement — including ring completions
  // that failed inside a batched drain.
  ExecResult RetryTail(const Prog& prog, Bitmap* coverage,
                       ExecResult result) {
    int attempt = 0;
    while (result.Failed()) {
      m_.exec_failed->Add();
      if (vm_->consecutive_failures() >=
          options_.recovery.quarantine_threshold) {
        vm_->QuarantineReboot();
        m_.quarantines->Add();
      }
      if (attempt >= options_.recovery.max_retries) {
        m_.exec_discarded->Add();
        return result;
      }
      ++attempt;
      m_.exec_retries->Add();
      m_.exec_attempts->Add();
      result = ExecOne(prog, coverage);
    }
    m_.exec_ok->Add();
    if (attempt > 0) {
      m_.exec_recovered->Add();
    }
    return result;
  }

  ExecResult ExecWithRecovery(const Prog& prog, Bitmap* coverage) {
    TraceSpan span(&shared_->trace, sim_clock_, "exec", "vm", tid_);
    m_.exec_attempts->Add();
    return RetryTail(prog, coverage, ExecOne(prog, coverage));
  }

  // One claimed exec slot: the built program plus the selection context the
  // feedback phase needs. `prog` may be empty (a wasted slot, still
  // consumed).
  struct PendingExec {
    uint64_t ticket = 0;
    Prog prog;
    bool used_table = false;
  };

  // Front half of one iteration, entirely lock-free: refresh the snapshot,
  // pick generate-or-mutate, and build the program. Consumes the exec-slot
  // accounting.
  PendingExec BuildOne(uint64_t ticket) {
    RefreshSnapshot();
    const double alpha = std::bit_cast<double>(
        shared_->alpha_bits.load(std::memory_order_relaxed));
    PendingExec pending;
    pending.ticket = ticket;
    bool mutated = false;
    Prog prog(&target_);
    if (snapshot_ != nullptr && !snapshot_->empty() && rng_.Chance(3, 5)) {
      prog = snapshot_->Choose(&rng_).CloneInto(&arena_);
    }
    CallChooser chooser = MakeChooser(alpha, &pending.used_table);
    if (prog.empty()) {
      prog = builder_.Generate(chooser, 4 + rng_.Below(10));
    } else {
      mutated = true;
      if (rng_.Chance(7, 10)) {
        builder_.MutateInsert(&prog, chooser);
      }
      if (rng_.Chance(6, 10)) {
        builder_.MutateArgs(&prog);
      }
    }
    // The exec slot is consumed either way; counting both here keeps
    // healer_parallel_batched_execs_total == healer_fuzz_execs_total exact,
    // and one exec record per slot keeps the journal's exec count
    // reconcilable with the fuzz_execs total (a = ticket, b = mutated,
    // c = program length).
    ++batch_.execs;
    m_.fuzz_execs->Add();
    jw_.Record(JournalKind::kExec, sim_clock_->now(), ticket,
               mutated ? 1 : 0, prog.size());
    if (!prog.empty()) {
      (mutated ? m_.mutated : m_.generated)->Add();
      m_.prog_len->Observe(prog.size());
    }
    pending.prog = std::move(prog);
    return pending;
  }

  // One fuzzing iteration, entirely outside the publish lock. Returns true
  // if the batch should publish immediately (new coverage or a crash).
  bool Step(uint64_t ticket) {
    PendingExec pending = BuildOne(ticket);
    if (pending.prog.empty()) {
      return false;
    }
    AcquireVm();
    const ExecResult result =
        ExecWithRecovery(pending.prog, &shared_->coverage);
    const bool urgent = HandleFeedback(pending, result);
    ReleaseVm();
    return urgent;
  }

  // Back half of one iteration: feedback processing for a recovered (or
  // finally-failed) result. Returns true if the batch should publish
  // immediately (new coverage or a crash).
  bool HandleFeedback(const PendingExec& pending, const ExecResult& result) {
    const Prog& prog = pending.prog;
    const uint64_t ticket = pending.ticket;
    const bool used_table = pending.used_table;
    if (result.Failed()) {
      return false;  // Feedback discarded; the exec slot is still consumed.
    }
    const bool gained = result.TotalNewEdges() > 0;
    m_.coverage_edges->Add(result.TotalNewEdges());
    if (gained) {
      m_.exec_new_edges->Observe(result.TotalNewEdges());
    }
    if (options_.tool == ToolKind::kHealer) {
      ++batch_.alpha_outcomes[(used_table ? 2u : 0u) | (gained ? 1u : 0u)];
    }
    bool urgent = false;
    if (result.Crashed()) {
      m_.crash_reports->Add();
      // a = bug, b = exec index, c = crashing call index.
      jw_.Record(JournalKind::kCrash, sim_clock_->now(),
                 static_cast<uint64_t>(result.crash->bug), ticket + 1,
                 result.crash->call_index + 1, result.crash->title);
      batch_.crashes.push_back(PendingCrash{
          result.crash->bug, result.crash->title, ticket + 1,
          result.crash->call_index + 1});
      urgent = true;
    }
    if (!gained) {
      return urgent;
    }
    // Analysis probes go through the same recovery accounting as fuzzing
    // executions; a still-failed probe reaches the minimizer/learner as a
    // typed failure, which both treat as "no information". Probes pass a
    // null bitmap, so they never perturb campaign coverage.
    Minimizer minimizer([this](const Prog& p) {
      m_.analysis_execs->Add();
      return ExecWithRecovery(p, nullptr);
    });
    DynamicLearner learner(
        &shared_->relations,
        [this](const Prog& p) {
          m_.analysis_execs->Add();
          return ExecWithRecovery(p, nullptr);
        },
        &clock_);
    std::vector<MinimizedSeq> minimized = minimizer.Minimize(prog, result);
    m_.minimize_rounds->Add();
    m_.minimize_probes->Add(minimizer.execs_used());
    m_.minimize_execs->Observe(minimizer.execs_used());
    for (MinimizedSeq& seq : minimized) {
      if (options_.tool == ToolKind::kHealer) {
        const uint64_t learn_before = learner.execs_used();
        // Edges accumulate in the batch delta; the exactly-once credit (and
        // the relations_learned counter) happens in Publish via Apply.
        learner.LearnInto(seq.prog, &batch_.relations);
        m_.learn_rounds->Add();
        m_.learn_probes->Add(learner.execs_used() - learn_before);
        m_.learn_execs->Observe(learner.execs_used() - learn_before);
      }
      // Serialize (for the dedup hash) outside the lock; Publish reuses it
      // via the precomputed-hash Corpus::Add overload.
      const uint64_t hash = Corpus::ContentHash(SerializeProg(seq.prog));
      const uint32_t priority = std::max<uint32_t>(1, result.TotalNewEdges());
      // a = minimized length, b = priority; c stays 0 — the fleet corpus
      // size is only known at publish time, and a locally-staged add can
      // still lose the dedup race there.
      jw_.Record(JournalKind::kCorpusAdd, sim_clock_->now(), seq.prog.size(),
                 priority, 0);
      batch_.adds.push_back(PendingAdd{std::move(seq.prog), priority, hash});
    }
    return true;  // New coverage: publish so peers can build on it.
  }

  // The only place SharedFuzzState::mu is taken: merges this worker's batch
  // into the authoritative state in one short critical section.
  void Publish() {
    // Drain the staged journal records first (one ring-lock acquire), so
    // the flight recorder and the metrics publish on the same cadence.
    jw_.Flush();
    if (batch_.Empty()) {
      return;
    }
    // Flush the relation delta before taking mu: Apply is internally
    // synchronized (the table's write mutex) and republishes the snapshot
    // itself, so routing it through the publish lock would only lengthen
    // the critical section. The return value is the number of edges that
    // were new fleet-wide — the exactly-once credit.
    if (!batch_.relations.empty()) {
      const size_t credited = shared_->relations.Apply(batch_.relations);
      if (credited > 0) {
        m_.relations_learned->Add(credited);
      }
      // Journal the edges this worker observed (a = from, b = to,
      // c = table epoch after apply). A peer may have published the same
      // edge first; the per-worker provenance is the point of the record.
      for (const RelationEdge& edge : batch_.relations.edges()) {
        jw_.Record(JournalKind::kRelationLearned, edge.learned_at, edge.from,
                   edge.to, shared_->relations.epoch(),
                   StrFormat("%s->%s",
                             target_.syscall(edge.from).name.c_str(),
                             target_.syscall(edge.to).name.c_str()));
      }
      batch_.relations.clear();
    }
    TimedLock lock(&shared_->mu, &pm_);
    shared_->fuzz_execs += batch_.execs;
    pm_.batch_publish->Add();
    pm_.batched_execs->Add(batch_.execs);
    for (const PendingCrash& crash : batch_.crashes) {
      const bool is_new = shared_->crashes.Record(
          crash.bug, crash.title, 0, crash.exec_index, crash.repro_len);
      if (is_new) {
        m_.crash_new->Add();
      }
    }
    if (options_.tool == ToolKind::kHealer) {
      for (size_t key = 0; key < batch_.alpha_outcomes.size(); ++key) {
        for (uint64_t i = 0; i < batch_.alpha_outcomes[key]; ++i) {
          shared_->alpha.Record((key & 2u) != 0, (key & 1u) != 0);
        }
      }
      if (shared_->alpha.updates() != shared_->alpha_updates_seen) {
        m_.alpha_updates->Add(shared_->alpha.updates() -
                              shared_->alpha_updates_seen);
        shared_->alpha_updates_seen = shared_->alpha.updates();
        m_.alpha->Set(shared_->alpha.alpha());
        shared_->alpha_bits.store(
            std::bit_cast<uint64_t>(shared_->alpha.alpha()),
            std::memory_order_relaxed);
        shared_->trace.RecordInstant("alpha-update", "alpha",
                                     sim_clock_->now(), tid_);
      }
    }
    bool added = false;
    for (PendingAdd& add : batch_.adds) {
      added |= shared_->corpus.Add(std::move(add.prog), add.priority,
                                   add.content_hash);
      m_.corpus_adds->Add();
    }
    if (added) {
      auto snap = shared_->corpus.Snapshot();
      std::lock_guard<std::mutex> sg(shared_->snapshot_mu);
      shared_->corpus_snapshot = std::move(snap);
      shared_->corpus_epoch.fetch_add(1, std::memory_order_relaxed);
    }
    batch_ = Batch{};
  }

  const Target& target_;
  const ParallelOptions& options_;
  SharedFuzzState* shared_;
  Rng rng_;
  SimClock clock_;  // Worker-local timestamps for learned relations.
  VmPool* pool_;
  size_t lane_;
  GuestVm* vm_ = nullptr;  // Checked out between AcquireVm and ReleaseVm.
  const SimClock* sim_clock_;  // The fleet clock, for trace timestamps.
  uint32_t tid_;
  FuzzMetrics m_;
  ParallelMetrics pm_;
  JournalWriter* shard_journal_ = nullptr;
  // Declared before builder_ (which borrows it); worker-private, reset at
  // iteration / pipelined-round boundaries.
  ProgArena arena_;
  ProgBuilder builder_;
  CallSelector selector_;
  Batch batch_;
  JournalWriter jw_;
  std::shared_ptr<const CorpusSnapshot> snapshot_;
  uint64_t snapshot_epoch_ = ~0ULL;
};

}  // namespace

ParallelResult RunParallelFuzz(const Target& target,
                               const ParallelOptions& options) {
  SharedFuzzState shared(target.NumSyscalls(), options.trace_capacity,
                         options.journal_capacity);
  if (options.tool == ToolKind::kHealer) {
    StaticRelationLearn(target, &shared.relations);
  }
  shared.corpus_snapshot = shared.corpus.Snapshot();
  SimClock clock;  // Shared simulated clock (atomic; advanced lock-free).
  // Topology: fleet_size == 0 (or == num_workers) is the legacy pinned
  // pool; anything larger spreads the guests over one lane per worker and
  // fleet_shards reactors that the workers pump cooperatively.
  const size_t fleet_size =
      options.fleet_size == 0
          ? options.num_workers
          : std::max(options.fleet_size, options.num_workers);
  size_t fleet_shards = options.fleet_shards;
  if (fleet_shards == 0) {
    fleet_shards = std::clamp<size_t>(fleet_size / 256, 1,
                                      std::max<size_t>(options.num_workers, 1));
  }
  FleetOptions fleet;
  fleet.lanes = options.num_workers;
  fleet.shards = fleet_shards;
  VmPool pool(target, KernelConfig::ForVersion(options.version), &clock,
              fleet_size, VmLatencyModel(), options.fault_plan, options.seed,
              &shared.metrics, fleet);
  // Reactor-side lifecycle records (async boots, crash reboots) write into
  // one journal writer per shard — producer ids continue after the workers'
  // — flushed by whichever worker pumps the shard.
  std::vector<std::unique_ptr<JournalWriter>> shard_journals;
  if (pool.fleet()) {
    for (size_t s = 0; s < pool.num_shards(); ++s) {
      shard_journals.push_back(std::make_unique<JournalWriter>(
          &shared.journal,
          static_cast<uint32_t>(options.num_workers + s)));
      pool.set_shard_journal(s, shard_journals.back().get());
    }
    for (size_t i = 0; i < pool.size(); ++i) {
      pool.vm(i).set_journal(
          shard_journals[pool.shard_of_lane(i % pool.num_lanes())].get());
    }
  }
  Monitor monitor(&pool);
  monitor.Start();

  std::vector<std::unique_ptr<Worker>> workers;
  for (size_t i = 0; i < options.num_workers; ++i) {
    workers.push_back(std::make_unique<Worker>(target, options, &shared, i,
                                               &pool, &clock));
    if (pool.fleet()) {
      workers.back()->set_shard_journal(
          shard_journals[pool.shard_of_lane(i % pool.num_lanes())].get());
    }
  }
  const auto wall_start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(workers.size());
  for (auto& worker : workers) {
    threads.emplace_back([&worker] { worker->Run(); });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  const uint64_t wall_ns = ToNs(std::chrono::steady_clock::now() - wall_start);
  ParallelResult result;
  result.vm_health = monitor.HealthReport();
  result.fleet = pool.ShardSummaries();
  monitor.Stop();

  result.coverage = shared.coverage.Count();
  result.fuzz_execs = shared.fuzz_execs;
  result.corpus_size = shared.corpus.size();
  result.unique_bugs = shared.crashes.UniqueBugs();
  result.relations = shared.relations.Count();
  result.relations_static =
      shared.relations.CountBySource(RelationSource::kStatic);
  result.relations_dynamic =
      shared.relations.CountBySource(RelationSource::kDynamic);
  result.monitor_lines = monitor.lines_collected();
  FuzzMetrics handles(&shared.metrics);
  ParallelMetrics pm(&shared.metrics);
  result.faults = pool.InjectedStats();
  result.faults.Merge(handles.RecoveryStats());
  result.corpus_progs = shared.corpus.ExportAll();
  result.crash_records = shared.crashes.All();
  // Final gauge refresh, then snapshot the whole registry.
  handles.coverage_branches->Set(static_cast<double>(result.coverage));
  handles.corpus_programs->Set(static_cast<double>(result.corpus_size));
  handles.relations_total->Set(static_cast<double>(result.relations));
  handles.relations_static->Set(static_cast<double>(result.relations_static));
  handles.relations_dynamic->Set(
      static_cast<double>(result.relations_dynamic));
  handles.crashes_unique->Set(static_cast<double>(result.unique_bugs));
  handles.alpha->Set(shared.alpha.alpha());
  handles.sim_hours->Set(static_cast<double>(clock.now()) /
                         static_cast<double>(SimClock::kHour));
  pm.wall_ns->Set(static_cast<double>(wall_ns));
  // Fraction of the fleet's wall time spent inside the publish lock: the
  // headline contention number (1.0 would mean fully serialized workers).
  const double fleet_ns =
      static_cast<double>(wall_ns) * static_cast<double>(options.num_workers);
  pm.lock_held_share->Set(
      fleet_ns > 0.0 ? static_cast<double>(pm.lock_held_ns->Sum()) / fleet_ns
                     : 0.0);
  result.telemetry = shared.metrics.Snapshot();
  result.trace_events = shared.trace.Events();
  result.journal = shared.journal.Records();
  return result;
}

}  // namespace healer
