#include "src/fuzz/parallel.h"

#include <vector>

#include "src/vm/vm_pool.h"

namespace healer {

namespace {

std::vector<int> EnabledIds(const Target& target, const KernelConfig& config) {
  std::vector<int> ids;
  for (const auto& call : target.syscalls()) {
    const SyscallDef* def = FindSyscallDef(call->name);
    if (def != nullptr && SyscallAvailable(*def, config)) {
      ids.push_back(call->id);
    }
  }
  return ids;
}

// One Job_i of Figure 3: owns a VM, an RNG and builders; everything else
// lives in the shared state.
class Worker {
 public:
  Worker(const Target& target, const ParallelOptions& options,
         SharedFuzzState* shared, size_t index, GuestVm* vm)
      : target_(target),
        options_(options),
        shared_(shared),
        rng_(options.seed * 7919 + index),
        vm_(*vm),
        builder_(target,
                 EnabledIds(target, KernelConfig::ForVersion(options.version)),
                 &rng_),
        selector_(&shared->relations, builder_.enabled(), &rng_) {}

  void Run() {
    while (true) {
      {
        std::lock_guard<std::mutex> lock(shared_->mu);
        if (shared_->fuzz_execs >= options_.total_execs) {
          return;
        }
        ++shared_->fuzz_execs;
      }
      StepLocked();
    }
  }

 private:
  // A chooser bound to the shared relation table / alpha.
  CallChooser MakeChooser(double alpha, bool* used_table) {
    if (options_.tool == ToolKind::kHealer) {
      return [this, alpha, used_table](const std::vector<int>& prefix) {
        bool used = false;
        const int pick = selector_.Select(prefix, alpha, &used);
        *used_table |= used;
        return pick;
      };
    }
    return [this](const std::vector<int>&) { return selector_.RandomCall(); };
  }

  // Runs `prog` on this worker's VM under the recovery policy: bounded
  // retry, quarantine-rebooting the VM when its failure streak crosses the
  // threshold. Every failure is accounted in the shared FaultStats, so the
  // per-VM infra_faults counters and the recovery-side failed_execs agree.
  // Caller must hold shared_->mu. A faulted execution merged nothing into
  // the shared coverage, so retrying is safe; a still-Failed() return means
  // the program's feedback must be discarded.
  ExecResult ExecWithRecoveryLocked(const Prog& prog, Bitmap* coverage) {
    ExecResult result = vm_.Exec(prog, coverage);
    int attempt = 0;
    while (result.Failed()) {
      ++shared_->faults.failed_execs;
      if (vm_.consecutive_failures() >=
          options_.recovery.quarantine_threshold) {
        vm_.QuarantineReboot();
        ++shared_->faults.quarantines;
      }
      if (attempt >= options_.recovery.max_retries) {
        ++shared_->faults.discarded;
        return result;
      }
      ++attempt;
      ++shared_->faults.retries;
      result = vm_.Exec(prog, coverage);
    }
    if (attempt > 0) {
      ++shared_->faults.recovered;
    }
    return result;
  }

  void StepLocked() {
    bool used_table = false;
    double alpha = 0.0;
    Prog prog(&target_);
    {
      std::lock_guard<std::mutex> lock(shared_->mu);
      alpha = shared_->alpha.alpha();
      if (!shared_->corpus.empty() && rng_.Chance(3, 5)) {
        prog = shared_->corpus.Choose(&rng_).Clone();
      }
    }
    CallChooser chooser = MakeChooser(alpha, &used_table);
    if (prog.empty()) {
      prog = builder_.Generate(chooser, 4 + rng_.Below(10));
    } else {
      if (rng_.Chance(7, 10)) {
        builder_.MutateInsert(&prog, chooser);
      }
      if (rng_.Chance(6, 10)) {
        builder_.MutateArgs(&prog);
      }
    }
    if (prog.empty()) {
      return;
    }

    // Execute + merge feedback under the shared-state lock (see header).
    std::lock_guard<std::mutex> lock(shared_->mu);
    const ExecResult result = ExecWithRecoveryLocked(prog, &shared_->coverage);
    if (result.Failed()) {
      return;  // Feedback discarded; the exec slot is still consumed.
    }
    const bool gained = result.TotalNewEdges() > 0;
    if (options_.tool == ToolKind::kHealer) {
      shared_->alpha.Record(used_table, gained);
    }
    if (result.Crashed()) {
      shared_->crashes.Record(result.crash->bug, result.crash->title, 0,
                              shared_->fuzz_execs,
                              result.crash->call_index + 1);
    }
    if (!gained) {
      return;
    }
    // Analysis probes go through the same recovery accounting as fuzzing
    // executions (the caller already holds the shared lock); a still-failed
    // probe reaches the minimizer/learner as a typed failure, which both
    // treat as "no information".
    Minimizer minimizer([this](const Prog& p) {
      return ExecWithRecoveryLocked(p, nullptr);
    });
    DynamicLearner learner(
        &shared_->relations,
        [this](const Prog& p) { return ExecWithRecoveryLocked(p, nullptr); },
        &clock_);
    for (MinimizedSeq& seq : minimizer.Minimize(prog, result)) {
      if (options_.tool == ToolKind::kHealer) {
        learner.Learn(seq.prog);
      }
      shared_->corpus.Add(std::move(seq.prog),
                          std::max<uint32_t>(1, result.TotalNewEdges()));
    }
  }

  const Target& target_;
  const ParallelOptions& options_;
  SharedFuzzState* shared_;
  Rng rng_;
  SimClock clock_;  // Worker-local timestamps for learned relations.
  GuestVm& vm_;
  ProgBuilder builder_;
  CallSelector selector_;
};

}  // namespace

ParallelResult RunParallelFuzz(const Target& target,
                               const ParallelOptions& options) {
  SharedFuzzState shared(target.NumSyscalls());
  if (options.tool == ToolKind::kHealer) {
    StaticRelationLearn(target, &shared.relations);
  }
  SimClock clock;  // Shared simulated clock (advanced under the lock).
  VmPool pool(target, KernelConfig::ForVersion(options.version), &clock,
              options.num_workers, VmLatencyModel(), options.fault_plan,
              options.seed);
  Monitor monitor(&pool);
  monitor.Start();

  std::vector<std::unique_ptr<Worker>> workers;
  for (size_t i = 0; i < options.num_workers; ++i) {
    workers.push_back(
        std::make_unique<Worker>(target, options, &shared, i, &pool.vm(i)));
  }
  std::vector<std::thread> threads;
  threads.reserve(workers.size());
  for (auto& worker : workers) {
    threads.emplace_back([&worker] { worker->Run(); });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  ParallelResult result;
  result.vm_health = monitor.HealthReport();
  monitor.Stop();

  result.coverage = shared.coverage.Count();
  result.fuzz_execs = shared.fuzz_execs;
  result.corpus_size = shared.corpus.size();
  result.unique_bugs = shared.crashes.UniqueBugs();
  result.relations = shared.relations.Count();
  result.monitor_lines = monitor.lines_collected();
  result.faults = pool.InjectedStats();
  result.faults.Merge(shared.faults);
  result.corpus_progs = shared.corpus.ExportAll();
  return result;
}

}  // namespace healer
