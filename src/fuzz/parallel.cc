#include "src/fuzz/parallel.h"

#include <vector>

#include "src/vm/vm_pool.h"

namespace healer {

namespace {

std::vector<int> EnabledIds(const Target& target, const KernelConfig& config) {
  std::vector<int> ids;
  for (const auto& call : target.syscalls()) {
    const SyscallDef* def = FindSyscallDef(call->name);
    if (def != nullptr && SyscallAvailable(*def, config)) {
      ids.push_back(call->id);
    }
  }
  return ids;
}

// One Job_i of Figure 3: owns a VM, an RNG and builders; everything else
// lives in the shared state.
class Worker {
 public:
  Worker(const Target& target, const ParallelOptions& options,
         SharedFuzzState* shared, size_t index, GuestVm* vm,
         const SimClock* sim_clock)
      : target_(target),
        options_(options),
        shared_(shared),
        rng_(options.seed * 7919 + index),
        vm_(*vm),
        sim_clock_(sim_clock),
        tid_(static_cast<uint32_t>(index)),
        m_(&shared->metrics),
        builder_(target,
                 EnabledIds(target, KernelConfig::ForVersion(options.version)),
                 &rng_),
        selector_(&shared->relations, builder_.enabled(), &rng_) {}

  void Run() {
    while (true) {
      {
        std::lock_guard<std::mutex> lock(shared_->mu);
        if (shared_->fuzz_execs >= options_.total_execs) {
          return;
        }
        ++shared_->fuzz_execs;
      }
      StepLocked();
    }
  }

 private:
  // A chooser bound to the shared relation table / alpha.
  CallChooser MakeChooser(double alpha, bool* used_table) {
    if (options_.tool == ToolKind::kHealer) {
      return [this, alpha, used_table](const std::vector<int>& prefix) {
        bool used = false;
        const int pick = selector_.Select(prefix, alpha, &used);
        *used_table |= used;
        return pick;
      };
    }
    return [this](const std::vector<int>&) { return selector_.RandomCall(); };
  }

  // Runs `prog` on this worker's VM under the recovery policy: bounded
  // retry, quarantine-rebooting the VM when its failure streak crosses the
  // threshold. Every failure is accounted in the shared registry's recovery
  // counters, so the per-VM infra_faults counters and the recovery-side
  // failed_execs agree. Caller must hold shared_->mu. A faulted execution
  // merged nothing into the shared coverage, so retrying is safe; a
  // still-Failed() return means the program's feedback must be discarded.
  ExecResult ExecWithRecoveryLocked(const Prog& prog, Bitmap* coverage) {
    TraceSpan span(&shared_->trace, sim_clock_, "exec", "vm", tid_);
    m_.exec_attempts->Add();
    ExecResult result = vm_.Exec(prog, coverage);
    int attempt = 0;
    while (result.Failed()) {
      m_.exec_failed->Add();
      if (vm_.consecutive_failures() >=
          options_.recovery.quarantine_threshold) {
        vm_.QuarantineReboot();
        m_.quarantines->Add();
      }
      if (attempt >= options_.recovery.max_retries) {
        m_.exec_discarded->Add();
        return result;
      }
      ++attempt;
      m_.exec_retries->Add();
      m_.exec_attempts->Add();
      result = vm_.Exec(prog, coverage);
    }
    m_.exec_ok->Add();
    if (attempt > 0) {
      m_.exec_recovered->Add();
    }
    return result;
  }

  void StepLocked() {
    bool used_table = false;
    double alpha = 0.0;
    bool mutated = false;
    Prog prog(&target_);
    {
      std::lock_guard<std::mutex> lock(shared_->mu);
      alpha = shared_->alpha.alpha();
      if (!shared_->corpus.empty() && rng_.Chance(3, 5)) {
        prog = shared_->corpus.Choose(&rng_).Clone();
      }
    }
    CallChooser chooser = MakeChooser(alpha, &used_table);
    if (prog.empty()) {
      prog = builder_.Generate(chooser, 4 + rng_.Below(10));
    } else {
      mutated = true;
      if (rng_.Chance(7, 10)) {
        builder_.MutateInsert(&prog, chooser);
      }
      if (rng_.Chance(6, 10)) {
        builder_.MutateArgs(&prog);
      }
    }
    if (prog.empty()) {
      return;
    }

    // Execute + merge feedback under the shared-state lock (see header).
    std::lock_guard<std::mutex> lock(shared_->mu);
    const ExecResult result = ExecWithRecoveryLocked(prog, &shared_->coverage);
    m_.fuzz_execs->Add();
    (mutated ? m_.mutated : m_.generated)->Add();
    m_.prog_len->Observe(prog.size());
    if (result.Failed()) {
      return;  // Feedback discarded; the exec slot is still consumed.
    }
    const bool gained = result.TotalNewEdges() > 0;
    m_.coverage_edges->Add(result.TotalNewEdges());
    if (gained) {
      m_.exec_new_edges->Observe(result.TotalNewEdges());
    }
    if (options_.tool == ToolKind::kHealer) {
      shared_->alpha.Record(used_table, gained);
      if (shared_->alpha.updates() != shared_->alpha_updates_seen) {
        shared_->alpha_updates_seen = shared_->alpha.updates();
        m_.alpha_updates->Add();
        m_.alpha->Set(shared_->alpha.alpha());
        shared_->trace.RecordInstant("alpha-update", "alpha",
                                     sim_clock_->now(), tid_);
      }
    }
    if (result.Crashed()) {
      m_.crash_reports->Add();
      const bool is_new =
          shared_->crashes.Record(result.crash->bug, result.crash->title, 0,
                                  shared_->fuzz_execs,
                                  result.crash->call_index + 1);
      if (is_new) {
        m_.crash_new->Add();
      }
    }
    if (!gained) {
      return;
    }
    // Analysis probes go through the same recovery accounting as fuzzing
    // executions (the caller already holds the shared lock); a still-failed
    // probe reaches the minimizer/learner as a typed failure, which both
    // treat as "no information".
    Minimizer minimizer([this](const Prog& p) {
      m_.analysis_execs->Add();
      return ExecWithRecoveryLocked(p, nullptr);
    });
    DynamicLearner learner(
        &shared_->relations,
        [this](const Prog& p) {
          m_.analysis_execs->Add();
          return ExecWithRecoveryLocked(p, nullptr);
        },
        &clock_);
    std::vector<MinimizedSeq> minimized = minimizer.Minimize(prog, result);
    m_.minimize_rounds->Add();
    m_.minimize_probes->Add(minimizer.execs_used());
    m_.minimize_execs->Observe(minimizer.execs_used());
    for (MinimizedSeq& seq : minimized) {
      if (options_.tool == ToolKind::kHealer) {
        const uint64_t learn_before = learner.execs_used();
        const size_t learned = learner.Learn(seq.prog);
        m_.learn_rounds->Add();
        m_.learn_probes->Add(learner.execs_used() - learn_before);
        m_.learn_execs->Observe(learner.execs_used() - learn_before);
        if (learned > 0) {
          m_.relations_learned->Add(learned);
        }
      }
      shared_->corpus.Add(std::move(seq.prog),
                          std::max<uint32_t>(1, result.TotalNewEdges()));
      m_.corpus_adds->Add();
    }
  }

  const Target& target_;
  const ParallelOptions& options_;
  SharedFuzzState* shared_;
  Rng rng_;
  SimClock clock_;  // Worker-local timestamps for learned relations.
  GuestVm& vm_;
  const SimClock* sim_clock_;  // The fleet clock, for trace timestamps.
  uint32_t tid_;
  FuzzMetrics m_;
  ProgBuilder builder_;
  CallSelector selector_;
};

}  // namespace

ParallelResult RunParallelFuzz(const Target& target,
                               const ParallelOptions& options) {
  SharedFuzzState shared(target.NumSyscalls(), options.trace_capacity);
  if (options.tool == ToolKind::kHealer) {
    StaticRelationLearn(target, &shared.relations);
  }
  SimClock clock;  // Shared simulated clock (advanced under the lock).
  VmPool pool(target, KernelConfig::ForVersion(options.version), &clock,
              options.num_workers, VmLatencyModel(), options.fault_plan,
              options.seed, &shared.metrics);
  Monitor monitor(&pool);
  monitor.Start();

  std::vector<std::unique_ptr<Worker>> workers;
  for (size_t i = 0; i < options.num_workers; ++i) {
    workers.push_back(std::make_unique<Worker>(target, options, &shared, i,
                                               &pool.vm(i), &clock));
  }
  std::vector<std::thread> threads;
  threads.reserve(workers.size());
  for (auto& worker : workers) {
    threads.emplace_back([&worker] { worker->Run(); });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  ParallelResult result;
  result.vm_health = monitor.HealthReport();
  monitor.Stop();

  result.coverage = shared.coverage.Count();
  result.fuzz_execs = shared.fuzz_execs;
  result.corpus_size = shared.corpus.size();
  result.unique_bugs = shared.crashes.UniqueBugs();
  result.relations = shared.relations.Count();
  result.monitor_lines = monitor.lines_collected();
  FuzzMetrics handles(&shared.metrics);
  result.faults = pool.InjectedStats();
  result.faults.Merge(handles.RecoveryStats());
  result.corpus_progs = shared.corpus.ExportAll();
  // Final gauge refresh, then snapshot the whole registry.
  handles.coverage_branches->Set(static_cast<double>(result.coverage));
  handles.corpus_programs->Set(static_cast<double>(result.corpus_size));
  handles.relations_total->Set(static_cast<double>(result.relations));
  handles.relations_static->Set(static_cast<double>(
      shared.relations.CountBySource(RelationSource::kStatic)));
  handles.relations_dynamic->Set(static_cast<double>(
      shared.relations.CountBySource(RelationSource::kDynamic)));
  handles.crashes_unique->Set(static_cast<double>(result.unique_bugs));
  handles.alpha->Set(shared.alpha.alpha());
  handles.sim_hours->Set(static_cast<double>(clock.now()) /
                         static_cast<double>(SimClock::kHour));
  result.telemetry = shared.metrics.Snapshot();
  result.trace_events = shared.trace.Events();
  return result;
}

}  // namespace healer
