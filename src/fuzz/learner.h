// Dynamic relation learning (Algorithm 2).
//
// For each pair of *consecutive* calls (C_i, C_j) of a minimized sequence
// whose relation is still unknown, C_i is removed and the modified program
// re-executed; a change in C_j's per-call coverage proves the influence
// relation and sets R[i][j] = 1. Only adjacent pairs are analyzed, since a
// coverage change after removing a non-adjacent call could be an indirect
// effect (Section 4.1).

#ifndef SRC_FUZZ_LEARNER_H_
#define SRC_FUZZ_LEARNER_H_

#include "src/base/sim_clock.h"
#include "src/fuzz/minimizer.h"
#include "src/fuzz/relation_table.h"

namespace healer {

class DynamicLearner {
 public:
  DynamicLearner(RelationTable* table, ExecFn exec, const SimClock* clock)
      : table_(table), exec_(std::move(exec)), clock_(clock) {}

  // Runs Algorithm 2 on one minimized sequence; returns the number of new
  // relations learned.
  size_t Learn(const Prog& minimized);

  uint64_t execs_used() const { return execs_used_; }

 private:
  RelationTable* table_;
  ExecFn exec_;
  const SimClock* clock_;
  uint64_t execs_used_ = 0;
};

}  // namespace healer

#endif  // SRC_FUZZ_LEARNER_H_
