// Dynamic relation learning (Algorithm 2).
//
// For each pair of *consecutive* calls (C_i, C_j) of a minimized sequence
// whose relation is still unknown, C_i is removed and the modified program
// re-executed; a change in C_j's per-call coverage proves the influence
// relation and sets R[i][j] = 1. Only adjacent pairs are analyzed, since a
// coverage change after removing a non-adjacent call could be an indirect
// effect (Section 4.1).
//
// Learned edges are produced as a RelationDelta: LearnInto() appends edges
// to a caller-owned delta without touching the table (the parallel fuzzer
// flushes worker deltas through its batched publish), while Learn() is the
// single-threaded convenience that applies the delta immediately. Known
// pairs are skipped by consulting the table's immutable snapshot plus the
// pending delta — the learner never takes the table's write lock to read.

#ifndef SRC_FUZZ_LEARNER_H_
#define SRC_FUZZ_LEARNER_H_

#include "src/base/sim_clock.h"
#include "src/fuzz/minimizer.h"
#include "src/fuzz/relation_table.h"

namespace healer {

class DynamicLearner {
 public:
  DynamicLearner(RelationTable* table, ExecFn exec, const SimClock* clock)
      : table_(table), exec_(std::move(exec)), clock_(clock) {}

  // Runs Algorithm 2 on one minimized sequence and applies the resulting
  // delta to the table; returns the number of new relations learned.
  size_t Learn(const Prog& minimized);

  // Runs Algorithm 2 but accumulates the learned edges into `delta` instead
  // of writing the table; returns the number of edges added to the delta.
  // Pairs already in the snapshot or in `delta` are not re-probed, so a
  // worker's batch never pays twice for the same pair.
  size_t LearnInto(const Prog& minimized, RelationDelta* delta);

  uint64_t execs_used() const { return execs_used_; }

 private:
  RelationTable* table_;
  ExecFn exec_;
  const SimClock* clock_;
  uint64_t execs_used_ = 0;
};

}  // namespace healer

#endif  // SRC_FUZZ_LEARNER_H_
