#include "src/fuzz/postmortem.h"

#include <filesystem>
#include <fstream>

#include "src/base/string_util.h"

namespace healer {

namespace {

std::string JsonEscape(const std::string& in) {
  std::string out;
  out.reserve(in.size());
  for (char ch : in) {
    if (ch == '"' || ch == '\\') {
      out += '\\';
      out += ch;
    } else if (static_cast<unsigned char>(ch) < 0x20) {
      out += StrFormat("\\u%04x",
                       static_cast<unsigned>(static_cast<unsigned char>(ch)));
    } else {
      out += ch;
    }
  }
  return out;
}

Status WriteFile(const std::filesystem::path& path,
                 const std::string& contents) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status(StatusCode::kInternal,
                  StrFormat("cannot open %s", path.string().c_str()));
  }
  out << contents;
  out.close();
  if (!out) {
    return Status(StatusCode::kInternal,
                  StrFormat("short write to %s", path.string().c_str()));
  }
  return OkStatus();
}

std::string CrashJson(const PostmortemBundle& bundle) {
  const CrashRecord& crash = bundle.crash;
  std::string out = "{\n";
  out += StrFormat("  \"bug\": %d,\n", static_cast<int>(crash.bug));
  out += StrFormat("  \"title\": \"%s\",\n", JsonEscape(crash.title).c_str());
  out += StrFormat("  \"first_seen_ns\": %llu,\n",
                   (unsigned long long)crash.first_seen);
  out += StrFormat("  \"first_exec\": %llu,\n",
                   (unsigned long long)crash.first_exec);
  out += StrFormat("  \"shortest_repro\": %zu,\n", crash.shortest_repro);
  out += StrFormat("  \"seed\": %llu,\n", (unsigned long long)bundle.seed);
  out += StrFormat("  \"tool\": \"%s\",\n", JsonEscape(bundle.tool).c_str());
  out += StrFormat("  \"transport\": \"%s\"\n",
                   JsonEscape(bundle.transport).c_str());
  out += "}\n";
  return out;
}

std::string RingsJson(const std::vector<RingOccupancy>& rings) {
  std::string out = "{\n  \"vms\": [";
  for (size_t i = 0; i < rings.size(); ++i) {
    const RingOccupancy& occ = rings[i];
    out += StrFormat(
        "%s\n    {\"vm\": %zu, \"sq_depth\": %u, \"sq_entries\": %u, "
        "\"cq_depth\": %u, \"cq_entries\": %u, \"sq_pushes\": %llu, "
        "\"cq_pushes\": %llu, \"sq_full_rejects\": %llu}",
        i == 0 ? "" : ",", i, occ.sq_depth, occ.sq_entries, occ.cq_depth,
        occ.cq_entries, (unsigned long long)occ.sq_pushes,
        (unsigned long long)occ.cq_pushes,
        (unsigned long long)occ.sq_full_rejects);
  }
  out += rings.empty() ? "]\n" : "\n  ]\n";
  out += "}\n";
  return out;
}

std::string RelationsJson(const PostmortemBundle& bundle) {
  std::string out = "{\n";
  out += StrFormat("  \"epoch\": %llu,\n",
                   (unsigned long long)bundle.relation_epoch);
  out += StrFormat("  \"edges\": %llu,\n",
                   (unsigned long long)bundle.relation_edges);
  out += StrFormat("  \"static\": %llu,\n",
                   (unsigned long long)bundle.relation_static);
  out += StrFormat("  \"dynamic\": %llu,\n",
                   (unsigned long long)bundle.relation_dynamic);
  out += StrFormat("  \"backlog\": %llu\n",
                   (unsigned long long)bundle.relation_backlog);
  out += "}\n";
  return out;
}

}  // namespace

std::string PostmortemSlug(const std::string& title) {
  std::string slug;
  slug.reserve(title.size());
  bool last_dash = true;  // Suppress a leading dash.
  for (char ch : title) {
    if (slug.size() >= 48) {
      break;
    }
    if ((ch >= 'a' && ch <= 'z') || (ch >= '0' && ch <= '9')) {
      slug += ch;
      last_dash = false;
    } else if (ch >= 'A' && ch <= 'Z') {
      slug += static_cast<char>(ch - 'A' + 'a');
      last_dash = false;
    } else if (!last_dash) {
      slug += '-';
      last_dash = true;
    }
  }
  while (!slug.empty() && slug.back() == '-') {
    slug.pop_back();
  }
  return slug.empty() ? "crash" : slug;
}

Result<std::string> WritePostmortemBundle(const std::string& dir,
                                          const PostmortemBundle& bundle) {
  const std::filesystem::path bundle_dir =
      std::filesystem::path(dir) /
      StrFormat("bug-%d-%s", static_cast<int>(bundle.crash.bug),
                PostmortemSlug(bundle.crash.title).c_str());
  std::error_code ec;
  std::filesystem::create_directories(bundle_dir, ec);
  if (ec) {
    return Status(StatusCode::kInternal,
                  StrFormat("cannot create %s: %s",
                            bundle_dir.string().c_str(),
                            ec.message().c_str()));
  }
  Status status = WriteFile(bundle_dir / "crash.json", CrashJson(bundle));
  if (status.ok()) {
    status = WriteFile(bundle_dir / "program.txt", bundle.program_text);
  }
  if (status.ok()) {
    status = WriteFile(bundle_dir / "journal.jsonl",
                       JournalRecordsToJsonl(bundle.journal_window));
  }
  if (status.ok()) {
    status = WriteFile(bundle_dir / "journal.bin",
                       JournalRecordsToBinary(bundle.journal_window));
  }
  if (status.ok()) {
    status = WriteFile(bundle_dir / "metrics.prom",
                       bundle.metrics.ToPrometheusText());
  }
  if (status.ok()) {
    status = WriteFile(bundle_dir / "rings.json", RingsJson(bundle.rings));
  }
  if (status.ok()) {
    status = WriteFile(bundle_dir / "relations.json", RelationsJson(bundle));
  }
  if (!status.ok()) {
    return status;
  }
  return bundle_dir.string();
}

Status WritePostmortemRepro(const std::string& bundle_dir,
                            const std::string& repro_text) {
  return WriteFile(std::filesystem::path(bundle_dir) / "repro.txt",
                   repro_text);
}

}  // namespace healer
