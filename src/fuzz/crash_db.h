// Crash collection and deduplication. Crashes are deduplicated by bug id
// (standing in for syzkaller's report-title dedup) and keep the shortest
// reproducer length observed — the "Length to Reproduce" column of Table 4.

#ifndef SRC_FUZZ_CRASH_DB_H_
#define SRC_FUZZ_CRASH_DB_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "src/base/sim_clock.h"
#include "src/kernel/bugs.h"

namespace healer {

struct CrashRecord {
  BugId bug;
  std::string title;
  SimClock::Nanos first_seen = 0;
  uint64_t first_exec = 0;
  size_t shortest_repro = 0;
  uint64_t hits = 0;
};

class CrashDb {
 public:
  // Records one crash occurrence; `repro_len` is the triggering program's
  // length. Returns true if this bug was new.
  bool Record(BugId bug, const std::string& title, SimClock::Nanos when,
              uint64_t exec_index, size_t repro_len);

  size_t UniqueBugs() const { return records_.size(); }
  bool Found(BugId bug) const { return records_.count(bug) != 0; }
  const CrashRecord* Find(BugId bug) const;

  std::vector<CrashRecord> All() const;

  // Invoked from Record() for each previously-unseen bug, after the record
  // is stored — the postmortem-bundle trigger. The callback runs on the
  // recording thread; keep it bounded.
  void set_on_new_crash(std::function<void(const CrashRecord&)> hook) {
    on_new_crash_ = std::move(hook);
  }

 private:
  std::map<BugId, CrashRecord> records_;
  std::function<void(const CrashRecord&)> on_new_crash_;
};

}  // namespace healer

#endif  // SRC_FUZZ_CRASH_DB_H_
