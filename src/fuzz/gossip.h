// HGSP1: the cross-shard gossip wire format (DESIGN.md §13).
//
// A gossip exchange is a byte stream of length-prefixed frames. Each frame
// carries one kind of shard state delta:
//
//   kRelations — dynamic relation edges (the RelationDelta tail of the
//                origin's edge log), as (from, to) syscall-id pairs.
//   kCoverage  — fresh coverage words: (word_index, word_value) pairs of the
//                origin's campaign bitmap that changed since its last emit.
//   kSeeds     — newly archived corpus programs, each a SerializeProg blob.
//
// Frame layout (all integers host-endian, matching the serialize layer):
//
//   offset size field
//        0    4 magic "HGSP"
//        4    1 version (kGossipVersion)
//        5    1 frame type
//        6    2 reserved (must be zero)
//        8    4 origin shard id
//       12    4 payload length
//       16    8 per-origin sequence number
//       24    8 payload checksum (FastBytesHash)
//       32    — payload bytes
//
// Hostile-input posture mirrors the HCORP1 loader and the exec ring codec:
// every length is bounds-checked before use, the payload checksum is
// verified before the payload is parsed, unknown versions/types are typed
// parse errors, and payload decoders validate every id/index against the
// receiver's own limits. A decoder never trusts a peer: a malicious or
// corrupt frame must fail loudly, not corrupt shard state (the
// GossipHostileTest suite in wire_hostile_test.cc pins this).
//
// Replay protection: (origin, seq) identifies a frame; GossipDedup drops
// duplicates so re-delivered or replayed frames cannot double-credit the
// exactly-once relation/coverage accounting.

#ifndef SRC_FUZZ_GOSSIP_H_
#define SRC_FUZZ_GOSSIP_H_

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/base/status.h"
#include "src/fuzz/relation_table.h"
#include "src/syzlang/target.h"

namespace healer {

inline constexpr uint8_t kGossipVersion = 1;
inline constexpr size_t kGossipHeaderBytes = 32;
// Largest accepted payload: bounds a hostile frame's allocation. Generous —
// a full 1024-word coverage map is 12 KiB and a seed batch is far smaller.
inline constexpr size_t kGossipMaxPayload = 4u << 20;
// Per-frame caps for the typed payloads, enforced on decode.
inline constexpr size_t kGossipMaxEdges = 1u << 16;
inline constexpr size_t kGossipMaxWords = 1u << 16;
inline constexpr size_t kGossipMaxSeeds = 1u << 10;
inline constexpr size_t kGossipMaxSeedBytes = 1u << 20;

enum class GossipFrameType : uint8_t {
  kRelations = 1,
  kCoverage = 2,
  kSeeds = 3,
};

struct GossipFrame {
  GossipFrameType type = GossipFrameType::kRelations;
  uint32_t origin = 0;
  uint64_t seq = 0;
  std::vector<uint8_t> payload;
};

// Appends one encoded frame to `out`.
void AppendGossipFrame(const GossipFrame& frame, std::vector<uint8_t>* out);

// Decodes the frame at `data` and sets `*consumed` to its total encoded
// size. Fails (typed parse error) on truncation, bad magic/version/type,
// oversized payloads, or checksum mismatch; `*consumed` is untouched on
// failure, so a stream decoder stops at the first hostile byte.
Result<GossipFrame> DecodeGossipFrame(const uint8_t* data, size_t size,
                                      size_t* consumed);

// Decodes a whole exchange buffer into frames. All-or-nothing: any bad
// frame fails the stream (a partially applied exchange would break the
// reconciliation identities).
Result<std::vector<GossipFrame>> DecodeGossipStream(const uint8_t* data,
                                                    size_t size);

// ---- typed payloads ----

struct WireRelationEdge {
  uint32_t from = 0;
  uint32_t to = 0;
};

std::vector<uint8_t> EncodeRelationsPayload(
    const std::vector<RelationEdge>& edges);
// `num_syscalls` bounds every id; an out-of-range id fails the payload.
Result<std::vector<WireRelationEdge>> DecodeRelationsPayload(
    const std::vector<uint8_t>& payload, size_t num_syscalls);

struct WireCoverageWord {
  uint32_t index = 0;
  uint64_t value = 0;
};

std::vector<uint8_t> EncodeCoveragePayload(
    const std::vector<WireCoverageWord>& words);
// `word_count` bounds every index against the receiver's bitmap geometry.
Result<std::vector<WireCoverageWord>> DecodeCoveragePayload(
    const std::vector<uint8_t>& payload, size_t word_count);

std::vector<uint8_t> EncodeSeedsPayload(
    const std::vector<std::vector<uint8_t>>& progs);
// Returns the raw SerializeProg blobs; the caller deserializes each against
// its Target (DeserializeProg carries its own hostile hardening).
Result<std::vector<std::vector<uint8_t>>> DecodeSeedsPayload(
    const std::vector<uint8_t>& payload);

// ---- replay protection ----

// Tracks (origin, seq) pairs; Accept returns true exactly once per pair.
class GossipDedup {
 public:
  bool Accept(uint32_t origin, uint64_t seq) {
    return seen_[origin].insert(seq).second;
  }
  size_t dropped() const { return dropped_; }
  void CountDrop() { ++dropped_; }

 private:
  std::unordered_map<uint32_t, std::unordered_set<uint64_t>> seen_;
  size_t dropped_ = 0;
};

// ---- gossip schedule ----

// Deterministic fanout schedule: the peers shard `shard` pushes to in round
// `round`. Rotates through the other shards so every pair communicates
// within ceil((n-1)/fanout) rounds; never includes `shard` itself. The
// schedule depends only on (shard, n, fanout, round) — network delivery
// order is allowed to vary (see net_seed in shard.h), the schedule is not.
std::vector<size_t> GossipPeers(size_t shard, size_t shard_count,
                                size_t fanout, size_t round);

}  // namespace healer

#endif  // SRC_FUZZ_GOSSIP_H_
