#include "src/fuzz/fuzz_metrics.h"

namespace healer {

// Registration attaches the exposition help text alongside each handle, so
// every pipeline metric carries a "# HELP" line (the conformance test in
// tests/introspect_test.cc requires one for every healer_* metric).
FuzzMetrics::FuzzMetrics(MetricRegistry* registry) {
  const auto C = [registry](const char* name, const char* help) {
    registry->SetHelp(name, help);
    return registry->GetCounter(name);
  };
  const auto G = [registry](const char* name, const char* help) {
    registry->SetHelp(name, help);
    return registry->GetGauge(name);
  };
  const auto H = [registry](const char* name, const char* help) {
    registry->SetHelp(name, help);
    return registry->GetHistogram(name);
  };

  generated = C("healer_fuzz_generated_total",
                "Programs synthesized from scratch and executed.");
  mutated = C("healer_fuzz_mutated_total",
              "Corpus programs mutated and executed.");
  seeded = C("healer_fuzz_seeded_total",
             "Initial-corpus seed programs executed.");
  fuzz_execs = C("healer_fuzz_execs_total",
                 "Fuzzing executions (generated + mutated + seeded).");
  analysis_execs = C("healer_exec_analysis_total",
                     "Analysis executions (minimization, relation learning, "
                     "crash reproduction).");

  exec_attempts = C("healer_exec_attempts_total",
                    "Executor round trips attempted under the recovery "
                    "policy.");
  exec_ok = C("healer_exec_ok_total", "Round trips that returned a result.");
  exec_failed = C("healer_exec_failed_total",
                  "Round trips that surfaced an infrastructure fault.");
  exec_retries = C("healer_exec_retries_total",
                   "Retries issued after failed round trips.");
  exec_recovered = C("healer_exec_recovered_total",
                     "Executions that succeeded after at least one retry.");
  exec_discarded = C("healer_exec_discarded_total",
                     "Executions abandoned after the retry budget.");
  quarantines = C("healer_vm_quarantines_total",
                  "Out-of-band reboots of repeatedly failing guests.");

  coverage_edges = C("healer_coverage_edges_total",
                     "New coverage edges merged into the global bitmap.");
  corpus_adds = C("healer_corpus_adds_total",
                  "Minimized sequences admitted into the corpus.");
  crash_reports = C("healer_crash_reports_total",
                    "Crash reports observed (including duplicates).");
  crash_new = C("healer_crash_new_total", "Previously-unseen bugs found.");
  minimize_rounds = C("healer_minimize_rounds_total",
                      "Minimization rounds run on gaining programs.");
  minimize_probes = C("healer_minimize_probes_total",
                      "Executor probes spent by minimization.");
  learn_rounds = C("healer_learn_rounds_total",
                   "Dynamic relation-learning rounds (Alg. 2).");
  learn_probes = C("healer_learn_probes_total",
                   "Executor probes spent by relation learning.");
  relations_learned = C("healer_relations_learned_total",
                        "Relation edges learned dynamically.");
  alpha_updates = C("healer_alpha_updates_total",
                    "Adaptive-alpha adjustments applied.");

  coverage_branches = G("healer_coverage_branches",
                        "Covered branches in the global bitmap.");
  corpus_programs = G("healer_corpus_programs", "Programs in the corpus.");
  relations_total = G("healer_relations_total",
                      "Relation-table edges (static + dynamic).");
  relations_static = G("healer_relations_static",
                       "Relation edges from static learning.");
  relations_dynamic = G("healer_relations_dynamic",
                        "Relation edges from dynamic learning.");
  crashes_unique = G("healer_crashes_unique", "Unique bugs found so far.");
  alpha = G("healer_alpha", "Current relation-guidance alpha.");
  sim_hours = G("healer_sim_hours", "Simulated campaign hours elapsed.");

  prog_len = H("healer_prog_len", "Length of executed programs (calls).");
  exec_new_edges = H("healer_exec_new_edges",
                     "New edges per gaining execution.");
  minimize_execs = H("healer_minimize_execs",
                     "Executor probes per minimization round.");
  learn_execs = H("healer_learn_execs",
                  "Executor probes per relation-learning round.");
}

ParallelMetrics::ParallelMetrics(MetricRegistry* registry) {
  const auto C = [registry](const char* name, const char* help) {
    registry->SetHelp(name, help);
    return registry->GetCounter(name);
  };
  const auto G = [registry](const char* name, const char* help) {
    registry->SetHelp(name, help);
    return registry->GetGauge(name);
  };
  const auto H = [registry](const char* name, const char* help) {
    registry->SetHelp(name, help);
    return registry->GetHistogram(name);
  };

  lock_wait_ns = H("healer_parallel_lock_wait_ns",
                   "Wall nanoseconds waiting for the shared-state lock.");
  lock_held_ns = H("healer_parallel_lock_held_ns",
                   "Wall nanoseconds holding the shared-state lock.");

  batch_publish = C("healer_parallel_batch_publish_total",
                    "Worker batch publishes into shared state.");
  batched_execs = C("healer_parallel_batched_execs_total",
                    "Executions carried by published batches.");
  snapshot_refresh = C("healer_parallel_snapshot_refresh_total",
                       "Corpus-snapshot refreshes taken by workers.");

  wall_ns = G("healer_parallel_wall_ns",
              "Host wall nanoseconds of the parallel campaign.");
  lock_held_share = G("healer_parallel_lock_held_share",
                      "Lock-held wall time over wall time times workers.");
}

FaultStats FuzzMetrics::RecoveryStats() const {
  FaultStats stats;
  stats.failed_execs = exec_failed->Value();
  stats.retries = exec_retries->Value();
  stats.recovered = exec_recovered->Value();
  stats.discarded = exec_discarded->Value();
  stats.quarantines = quarantines->Value();
  return stats;
}

}  // namespace healer
