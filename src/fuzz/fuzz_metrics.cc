#include "src/fuzz/fuzz_metrics.h"

namespace healer {

FuzzMetrics::FuzzMetrics(MetricRegistry* registry) {
  generated = registry->GetCounter("healer_fuzz_generated_total");
  mutated = registry->GetCounter("healer_fuzz_mutated_total");
  seeded = registry->GetCounter("healer_fuzz_seeded_total");
  fuzz_execs = registry->GetCounter("healer_fuzz_execs_total");
  analysis_execs = registry->GetCounter("healer_exec_analysis_total");

  exec_attempts = registry->GetCounter("healer_exec_attempts_total");
  exec_ok = registry->GetCounter("healer_exec_ok_total");
  exec_failed = registry->GetCounter("healer_exec_failed_total");
  exec_retries = registry->GetCounter("healer_exec_retries_total");
  exec_recovered = registry->GetCounter("healer_exec_recovered_total");
  exec_discarded = registry->GetCounter("healer_exec_discarded_total");
  quarantines = registry->GetCounter("healer_vm_quarantines_total");

  coverage_edges = registry->GetCounter("healer_coverage_edges_total");
  corpus_adds = registry->GetCounter("healer_corpus_adds_total");
  crash_reports = registry->GetCounter("healer_crash_reports_total");
  crash_new = registry->GetCounter("healer_crash_new_total");
  minimize_rounds = registry->GetCounter("healer_minimize_rounds_total");
  minimize_probes = registry->GetCounter("healer_minimize_probes_total");
  learn_rounds = registry->GetCounter("healer_learn_rounds_total");
  learn_probes = registry->GetCounter("healer_learn_probes_total");
  relations_learned = registry->GetCounter("healer_relations_learned_total");
  alpha_updates = registry->GetCounter("healer_alpha_updates_total");

  coverage_branches = registry->GetGauge("healer_coverage_branches");
  corpus_programs = registry->GetGauge("healer_corpus_programs");
  relations_total = registry->GetGauge("healer_relations_total");
  relations_static = registry->GetGauge("healer_relations_static");
  relations_dynamic = registry->GetGauge("healer_relations_dynamic");
  crashes_unique = registry->GetGauge("healer_crashes_unique");
  alpha = registry->GetGauge("healer_alpha");
  sim_hours = registry->GetGauge("healer_sim_hours");

  prog_len = registry->GetHistogram("healer_prog_len");
  exec_new_edges = registry->GetHistogram("healer_exec_new_edges");
  minimize_execs = registry->GetHistogram("healer_minimize_execs");
  learn_execs = registry->GetHistogram("healer_learn_execs");
}

ParallelMetrics::ParallelMetrics(MetricRegistry* registry) {
  lock_wait_ns = registry->GetHistogram("healer_parallel_lock_wait_ns");
  lock_held_ns = registry->GetHistogram("healer_parallel_lock_held_ns");

  batch_publish = registry->GetCounter("healer_parallel_batch_publish_total");
  batched_execs = registry->GetCounter("healer_parallel_batched_execs_total");
  snapshot_refresh =
      registry->GetCounter("healer_parallel_snapshot_refresh_total");

  wall_ns = registry->GetGauge("healer_parallel_wall_ns");
  lock_held_share = registry->GetGauge("healer_parallel_lock_held_share");
}

FaultStats FuzzMetrics::RecoveryStats() const {
  FaultStats stats;
  stats.failed_execs = exec_failed->Value();
  stats.retries = exec_retries->Value();
  stats.recovered = exec_recovered->Value();
  stats.discarded = exec_discarded->Value();
  stats.quarantines = quarantines->Value();
  return stats;
}

}  // namespace healer
