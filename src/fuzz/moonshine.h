// Moonshine's seed distillation, reproduced per Section 3: system-call
// traces (here synthesized from ground-truth template chains interleaved
// with noise, standing in for strace over LTP) are filtered by static
// read-write dependency analysis — calls without dependencies on the
// trace's coverage-bearing calls are dropped. The distilled seeds feed the
// Syzkaller baseline ("Moonshine" = Syzkaller + distilled initial corpus).

#ifndef SRC_FUZZ_MOONSHINE_H_
#define SRC_FUZZ_MOONSHINE_H_

#include <vector>

#include "src/base/rng.h"
#include "src/prog/prog.h"

namespace healer {

// Synthesizes `count` traces: template chains with random unrelated calls
// interleaved (as real traces contain).
std::vector<Prog> SynthesizeTraces(const Target& target,
                                   const std::vector<int>& enabled,
                                   size_t count, Rng* rng);

// Distills one trace: keeps the resource-dependency closure of each
// dependency-bearing call, dropping unrelated noise.
Prog DistillTrace(const Prog& trace);

// Full pipeline: synthesize + distill + dedupe.
std::vector<Prog> MoonshineSeeds(const Target& target,
                                 const std::vector<int>& enabled,
                                 size_t count, Rng* rng);

}  // namespace healer

#endif  // SRC_FUZZ_MOONSHINE_H_
