#include "src/fuzz/learner.h"

namespace healer {

size_t DynamicLearner::Learn(const Prog& minimized) {
  RelationDelta delta;
  if (LearnInto(minimized, &delta) == 0) {
    return 0;
  }
  return table_->Apply(delta);
}

size_t DynamicLearner::LearnInto(const Prog& minimized,
                                 RelationDelta* delta) {
  const size_t len = minimized.size();
  if (len < 2) {
    return 0;
  }
  // Baseline per-call signals of the minimized sequence.
  ++execs_used_;
  const ExecResult baseline = exec_(minimized);
  if (baseline.Failed() || baseline.calls.size() < len) {
    return 0;
  }

  const std::shared_ptr<const RelationSnapshot> snap = table_->snapshot();
  size_t learned = 0;
  for (size_t idx = 1; idx < len; ++idx) {
    const int ci = minimized.calls()[idx - 1].meta->id;
    const int cj = minimized.calls()[idx].meta->id;
    // Line 6: skip pairs whose relation is already known (e.g. found by
    // static learning), either in the published snapshot or in the batch
    // this learner is building.
    if (snap->Contains(ci, cj) || delta->Contains(ci, cj)) {
      continue;
    }
    // Lines 7-8: remove C_i and re-execute.
    Prog cand = minimized.Clone();
    cand.RemoveCall(idx - 1);
    ++execs_used_;
    const ExecResult res = exec_(cand);
    if (res.Failed()) {
      // A faulted probe proves nothing about the relation — skipping the
      // pair keeps the table free of fault-induced edges.
      continue;
    }
    const size_t cj_pos = idx - 1;
    // Lines 9-10: if C_j's coverage changed, C_i influences C_j.
    const bool unchanged = cj_pos < res.calls.size() &&
                           res.calls[cj_pos].executed &&
                           res.calls[cj_pos].signal ==
                               baseline.calls[idx].signal;
    if (!unchanged) {
      if (delta->Add(ci, cj, RelationSource::kDynamic, clock_->now())) {
        ++learned;
      }
    }
  }
  return learned;
}

}  // namespace healer
