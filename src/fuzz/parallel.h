// Multi-worker fuzzing (Figure 3): worker threads (Job_i) drive the entire
// fuzzing process on the host and synchronize through a shared fuzzing
// state — coverage bitmap, corpus, crash db, relation table, alpha schedule
// — while each worker pulls ready guests from its VmPool lane (in the
// default topology that lane holds exactly one pinned VM). The Monitor's
// log drains ride the pool's reactor shards as SimClock timers; no
// dedicated monitor thread exists.
//
// The shared-state mutex covers ONLY feedback merging. Workers fuzz
// against read-mostly views and batch their feedback:
//
//   * generation/mutation samples an epoch-versioned CorpusSnapshot
//     (shared_ptr swapped on publish; workers refresh when corpus_epoch
//     advances) — no lock on the pick path;
//   * execution merges coverage straight into the campaign Bitmap, whose
//     Set/MergeNew are atomic-word operations — no lock on the merge path;
//   * guided selection reads the RelationTable's immutable CSR snapshot
//     (epoch-probed, same protocol as the corpus snapshot) and dynamic
//     learning accumulates a per-worker RelationDelta, flushed through
//     RelationTable::Apply at publish time with exactly-once edge credit —
//     workers never take a lock to read relations (DESIGN.md §8);
//   * everything else (corpus adds, crash records, alpha outcomes, the
//     fuzz_execs total) accumulates in a per-worker batch, published in one
//     short `mu` acquisition every `batch_size` executions or immediately
//     on new coverage / a crash.
//
// Lock contention is measured, not assumed: healer_parallel_lock_wait_ns /
// _held_ns histograms and the healer_parallel_lock_held_share gauge make
// the critical-section share visible in --metrics-out, and
// scripts/check.sh's `parallel` stage gates on it.
//
// Parallel campaigns are scheduling-dependent; the deterministic
// single-threaded Fuzzer remains the benchmarking reference (DESIGN.md §7).

#ifndef SRC_FUZZ_PARALLEL_H_
#define SRC_FUZZ_PARALLEL_H_

#include <atomic>
#include <bit>
#include <memory>
#include <mutex>
#include <thread>

#include "src/base/journal.h"
#include "src/base/metrics.h"
#include "src/base/trace.h"
#include "src/fuzz/call_selector.h"
#include "src/fuzz/corpus.h"
#include "src/fuzz/crash_db.h"
#include "src/fuzz/fuzz_metrics.h"
#include "src/fuzz/fuzzer.h"
#include "src/fuzz/learner.h"
#include "src/fuzz/minimizer.h"
#include "src/fuzz/prog_builder.h"
#include "src/fuzz/relation_table.h"

namespace healer {

// The "Shared Fuzz State" box of Figure 3.
struct SharedFuzzState {
  explicit SharedFuzzState(size_t num_syscalls, size_t trace_capacity = 0,
                           size_t journal_capacity = 0)
      : coverage(CallCoverage::kMapBits),
        relations(num_syscalls),
        trace(trace_capacity),
        journal(journal_capacity) {}

  // ---- Lock-free fleet state ----
  Bitmap coverage;          // Atomic-word merges; no external lock.
  RelationTable relations;  // Snapshot-read, delta-written (DESIGN.md §8).
  // Exec-slot dispenser: each worker claims tickets until total_execs.
  std::atomic<uint64_t> exec_tickets{0};
  // Current alpha as bit_cast<uint64_t>(double); workers read it per step
  // without touching the AlphaSchedule (which lives under mu).
  std::atomic<uint64_t> alpha_bits{
      std::bit_cast<uint64_t>(AlphaSchedule::kInitial)};

  // ---- Corpus snapshot hand-off ----
  // Workers cache `corpus_snapshot` and re-copy the pointer (briefly under
  // snapshot_mu) only when corpus_epoch moved past their cached epoch. The
  // unlocked epoch probe is an optimization: a stale read just delays the
  // refresh by one step.
  std::mutex snapshot_mu;
  std::shared_ptr<const CorpusSnapshot> corpus_snapshot;
  std::atomic<uint64_t> corpus_epoch{0};

  // ---- Publish-locked authoritative state (guarded by mu) ----
  // mu is held only inside Worker::Publish — never across VM execution,
  // generation/mutation, minimization or learning.
  std::mutex mu;
  Corpus corpus;
  CrashDb crashes;
  AlphaSchedule alpha;
  uint64_t fuzz_execs = 0;
  // How many alpha re-estimations workers have already published to the
  // telemetry counters (guarded by mu).
  uint64_t alpha_updates_seen = 0;

  // Fleet-wide telemetry: counters shard per worker thread, so recording is
  // contention-free; the recovery-side fault accounting lives here too (the
  // injected counters live in the VM injectors, merged at the end).
  MetricRegistry metrics;
  TraceBuffer trace;
  // Flight-recorder ring. Workers never Append directly: each stages
  // records in its private JournalWriter and drains them at its publish
  // point, so the journal mutex sees one acquire per batch.
  Journal journal;
};

struct ParallelOptions {
  ToolKind tool = ToolKind::kHealer;
  KernelVersion version = KernelVersion::kV5_11;
  uint64_t seed = 1;
  size_t num_workers = 4;
  uint64_t total_execs = 10000;
  // Executions a worker accumulates before publishing its feedback batch
  // (new coverage and crashes publish immediately).
  size_t batch_size = 32;
  // Fault injection (empty = fault-free) and per-worker recovery policy.
  FaultPlan fault_plan;
  RecoveryPolicy recovery;
  // Programs each worker keeps in flight on its VM per submit/drain round.
  // 1 = the legacy one-at-a-time shm path; >= 2 switches the worker to the
  // batched SQ/CQ ring transport (GuestVm::ExecBatch): it claims up to
  // pipeline_depth exec tickets, builds that many programs, submits them
  // all into the VM's SQ, and processes feedback per completion — hundreds
  // of programs in flight per VM with one round-trip overhead per drain.
  size_t pipeline_depth = 1;
  // Span-trace ring capacity (0 disables tracing).
  size_t trace_capacity = 0;
  // Flight-recorder ring capacity (0 disables journaling).
  size_t journal_capacity = 0;
  // Total simulated guests. 0 (the default) keeps the legacy topology: one
  // VM pinned per worker, byte-identical to the historical pool. A value
  // above num_workers builds a reactor fleet instead — VMs spread across
  // one lane per worker, lifecycle (async boots, crash reboots) driven by
  // EventLoop shards that the workers pump cooperatively. No extra OS
  // threads: 2048 guests still run on num_workers threads.
  size_t fleet_size = 0;
  // Reactor shards for fleet mode. 0 = auto: fleet_size / 256, clamped to
  // [1, num_workers].
  size_t fleet_shards = 0;
};

struct ParallelResult {
  size_t coverage = 0;
  uint64_t fuzz_execs = 0;
  size_t corpus_size = 0;
  size_t unique_bugs = 0;
  size_t relations = 0;
  size_t relations_static = 0;
  size_t relations_dynamic = 0;
  size_t monitor_lines = 0;
  // Injected + recovery counters, and the final per-VM health accounting
  // from the Monitor.
  FaultStats faults;
  std::vector<VmHealth> vm_health;
  // Final per-shard fleet census (one entry even in legacy mode).
  std::vector<FleetShardSummary> fleet;
  // The final corpus (for differential/property checks against the
  // single-threaded fuzzer).
  std::vector<Prog> corpus_progs;
  // Deduplicated crash records (bug set, hit counts, shortest repros).
  std::vector<CrashRecord> crash_records;
  // Full telemetry snapshot of the shared registry, and the buffered span
  // trace (empty unless options.trace_capacity > 0).
  MetricsSnapshot telemetry;
  std::vector<TraceEvent> trace_events;
  // Flight-recorder window, oldest first (empty unless journal_capacity).
  std::vector<JournalRecord> journal;
};

// Runs `num_workers` threads until `total_execs` test cases have executed.
ParallelResult RunParallelFuzz(const Target& target,
                               const ParallelOptions& options);

}  // namespace healer

#endif  // SRC_FUZZ_PARALLEL_H_
