// Multi-worker fuzzing (Figure 3): worker threads (Job_i) drive the entire
// fuzzing process on the host and synchronize directly through a shared
// fuzzing state — coverage bitmap, corpus, crash db, relation table, alpha
// schedule — while each worker owns a guest VM. A background Monitor
// thread drains the VMs' console logs.
//
// SimKernel executes in-process at microsecond scale, so the shared-state
// lock is held across execution; against a real target the executor runs
// inside the guest and the lock would only cover feedback merging. The
// parallel mode demonstrates the architecture and scales state safely; the
// deterministic single-threaded Fuzzer remains the benchmarking path.

#ifndef SRC_FUZZ_PARALLEL_H_
#define SRC_FUZZ_PARALLEL_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <thread>

#include "src/base/metrics.h"
#include "src/base/trace.h"
#include "src/fuzz/call_selector.h"
#include "src/fuzz/corpus.h"
#include "src/fuzz/crash_db.h"
#include "src/fuzz/fuzz_metrics.h"
#include "src/fuzz/fuzzer.h"
#include "src/fuzz/learner.h"
#include "src/fuzz/minimizer.h"
#include "src/fuzz/prog_builder.h"
#include "src/fuzz/relation_table.h"

namespace healer {

// The "Shared Fuzz State" box of Figure 3.
struct SharedFuzzState {
  explicit SharedFuzzState(size_t num_syscalls, size_t trace_capacity = 0)
      : coverage(CallCoverage::kMapBits),
        relations(num_syscalls),
        trace(trace_capacity) {}

  std::mutex mu;
  Bitmap coverage;
  Corpus corpus;
  CrashDb crashes;
  RelationTable relations;  // Internally reader-writer locked.
  AlphaSchedule alpha;
  uint64_t fuzz_execs = 0;
  // How many alpha re-estimations workers have already published to the
  // telemetry counters (guarded by mu).
  uint64_t alpha_updates_seen = 0;
  // Fleet-wide telemetry: counters shard per worker thread, so recording is
  // contention-free; the recovery-side fault accounting lives here too (the
  // injected counters live in the VM injectors, merged at the end).
  MetricRegistry metrics;
  TraceBuffer trace;
};

struct ParallelOptions {
  ToolKind tool = ToolKind::kHealer;
  KernelVersion version = KernelVersion::kV5_11;
  uint64_t seed = 1;
  size_t num_workers = 4;
  uint64_t total_execs = 10000;
  // Fault injection (empty = fault-free) and per-worker recovery policy.
  FaultPlan fault_plan;
  RecoveryPolicy recovery;
  // Span-trace ring capacity (0 disables tracing).
  size_t trace_capacity = 0;
};

struct ParallelResult {
  size_t coverage = 0;
  uint64_t fuzz_execs = 0;
  size_t corpus_size = 0;
  size_t unique_bugs = 0;
  size_t relations = 0;
  size_t monitor_lines = 0;
  // Injected + recovery counters, and the final per-VM health accounting
  // from the Monitor.
  FaultStats faults;
  std::vector<VmHealth> vm_health;
  // The final corpus (for differential/property checks against the
  // single-threaded fuzzer).
  std::vector<Prog> corpus_progs;
  // Full telemetry snapshot of the shared registry, and the buffered span
  // trace (empty unless options.trace_capacity > 0).
  MetricsSnapshot telemetry;
  std::vector<TraceEvent> trace_events;
};

// Runs `num_workers` threads until `total_execs` test cases have executed.
ParallelResult RunParallelFuzz(const Target& target,
                               const ParallelOptions& options);

}  // namespace healer

#endif  // SRC_FUZZ_PARALLEL_H_
