#include "src/fuzz/minimizer.h"

#include <numeric>

namespace healer {

std::vector<MinimizedSeq> Minimizer::Minimize(const Prog& prog,
                                              const ExecResult& baseline) {
  std::vector<MinimizedSeq> out;
  const size_t len = prog.size();
  if (len == 0 || baseline.calls.size() < len) {
    return out;
  }
  std::vector<bool> reserved(len, false);

  // Lines 3-7: extract a subsequence for each new-coverage call, in reverse
  // order, skipping calls already included in another minimal sequence.
  for (size_t ii = len; ii-- > 0;) {
    if (reserved[ii] || baseline.calls[ii].new_edges == 0) {
      continue;
    }
    reserved[ii] = true;
    const uint64_t target_signal = baseline.calls[ii].signal;

    Prog cur = prog.Clone();
    cur.Truncate(ii + 1);
    std::vector<size_t> orig(ii + 1);
    std::iota(orig.begin(), orig.end(), 0);
    size_t last = ii;  // Target call's index within `cur`.

    // Lines 9-17: try removing each call before the target.
    for (size_t jj = last; jj-- > 0;) {
      Prog cand = cur.Clone();
      cand.RemoveCall(jj);
      ++execs_used_;
      const ExecResult res = exec_(cand);
      const size_t cand_last = last - 1;
      // A faulted probe is treated as "coverage not preserved": the call is
      // conservatively kept rather than trusting a failed execution.
      const bool preserved =
          !res.Failed() && cand_last < res.calls.size() &&
          res.calls[cand_last].executed &&
          res.calls[cand_last].signal == target_signal;
      if (preserved) {
        cur = std::move(cand);
        orig.erase(orig.begin() + static_cast<long>(jj));
        last = cand_last;
      } else {
        // The call is load-bearing: reserve it so it isn't re-extracted as
        // its own minimal sequence.
        reserved[orig[jj]] = true;
      }
    }
    out.push_back(MinimizedSeq{std::move(cur), last, target_signal});
  }
  return out;
}

}  // namespace healer
