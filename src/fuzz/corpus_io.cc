#include "src/fuzz/corpus_io.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <memory>

#include "src/base/hash.h"
#include "src/base/string_util.h"
#include "src/prog/serialize.h"

namespace healer {

namespace {

constexpr char kMagic[4] = {'H', 'C', 'O', 'R'};

// HCORP1 container constants. The header is a fixed 64 bytes; the index is
// 16 bytes per program; payload starts at the first page boundary after the
// index so a warm restart maps it with no copy or realignment.
constexpr char kHcorpMagic[8] = {'H', 'C', 'O', 'R', 'P', '1', '\n', '\0'};
// Version 2 switched every container checksum (header, index, per-entry
// payload) from byte-serial FNV-1a to the word-at-a-time FastBytesHash —
// same corruption detection, ~8x cheaper on the warm-start path where the
// per-entry payload hashes dominated the mmap load (BENCH_hotpath
// warmstart_speedup was below 1x with the byte-serial hash). Version-1
// files are rejected with a clear error; corpora are regenerated per
// campaign, so no migration path is kept.
constexpr uint32_t kHcorpVersion = 2;
constexpr uint64_t kHcorpPageSize = 4096;
constexpr uint64_t kHcorpHeaderBytes = 64;
constexpr uint64_t kHcorpEntryBytes = 16;
constexpr uint64_t kMaxProgs = 1u << 20;
constexpr uint64_t kMaxProgBytes = 1u << 24;

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) {
      std::fclose(f);
    }
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

bool WriteU32(std::FILE* f, uint32_t v) {
  return std::fwrite(&v, 4, 1, f) == 1;
}

bool ReadU32(std::FILE* f, uint32_t* v) {
  return std::fread(v, 4, 1, f) == 1;
}

void PutU32(std::vector<uint8_t>* out, uint32_t v) {
  const size_t at = out->size();
  out->resize(at + 4);
  std::memcpy(out->data() + at, &v, 4);
}

void PutU64(std::vector<uint8_t>* out, uint64_t v) {
  const size_t at = out->size();
  out->resize(at + 8);
  std::memcpy(out->data() + at, &v, 8);
}

uint32_t GetU32(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

uint64_t GetU64(const uint8_t* p) {
  uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

uint64_t BytesHash(const uint8_t* data, size_t len) {
  return FastBytesHash(
      std::string_view(reinterpret_cast<const char*>(data), len));
}

// Read-only view of a whole file: mmap when possible (the HCORP1 fast
// path — one syscall, zero copies, page-cache-warm on restart), falling
// back to a heap read for filesystems that refuse to map.
class MappedFile {
 public:
  static Result<MappedFile> Open(const std::string& path) {
    MappedFile mf;
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) {
      return NotFound(StrFormat("cannot open '%s'", path.c_str()));
    }
    struct stat st;
    if (::fstat(fd, &st) != 0 || st.st_size < 0) {
      ::close(fd);
      return ParseError(StrFormat("cannot stat '%s'", path.c_str()));
    }
    mf.size_ = static_cast<size_t>(st.st_size);
    if (mf.size_ > 0) {
      void* base = ::mmap(nullptr, mf.size_, PROT_READ, MAP_PRIVATE, fd, 0);
      if (base != MAP_FAILED) {
        mf.map_base_ = base;
        mf.data_ = static_cast<const uint8_t*>(base);
      } else {
        mf.fallback_.resize(mf.size_);
        size_t got = 0;
        while (got < mf.size_) {
          const ssize_t n =
              ::read(fd, mf.fallback_.data() + got, mf.size_ - got);
          if (n <= 0) {
            ::close(fd);
            return ParseError(StrFormat("cannot read '%s'", path.c_str()));
          }
          got += static_cast<size_t>(n);
        }
        mf.data_ = mf.fallback_.data();
      }
    }
    ::close(fd);
    return mf;
  }

  MappedFile() = default;
  MappedFile(MappedFile&& other) noexcept { *this = std::move(other); }
  MappedFile& operator=(MappedFile&& other) noexcept {
    Unmap();
    map_base_ = other.map_base_;
    data_ = other.data_;
    size_ = other.size_;
    fallback_ = std::move(other.fallback_);
    if (!fallback_.empty()) {
      data_ = fallback_.data();
    }
    other.map_base_ = nullptr;
    other.data_ = nullptr;
    other.size_ = 0;
    return *this;
  }
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;
  ~MappedFile() { Unmap(); }

  const uint8_t* data() const { return data_; }
  size_t size() const { return size_; }

 private:
  void Unmap() {
    if (map_base_ != nullptr) {
      ::munmap(map_base_, size_);
      map_base_ = nullptr;
    }
  }

  void* map_base_ = nullptr;
  const uint8_t* data_ = nullptr;
  size_t size_ = 0;
  std::vector<uint8_t> fallback_;
};

Status SaveLegacy(const std::string& path, const std::vector<Prog>& progs) {
  FilePtr file(std::fopen(path.c_str(), "wb"));
  if (file == nullptr) {
    return Internal(StrFormat("cannot open '%s' for writing", path.c_str()));
  }
  if (std::fwrite(kMagic, 4, 1, file.get()) != 1 ||
      !WriteU32(file.get(), static_cast<uint32_t>(progs.size()))) {
    return Internal("short write");
  }
  for (const Prog& prog : progs) {
    const std::vector<uint8_t> bytes = SerializeProg(prog);
    if (!WriteU32(file.get(), static_cast<uint32_t>(bytes.size())) ||
        (!bytes.empty() &&
         std::fwrite(bytes.data(), bytes.size(), 1, file.get()) != 1)) {
      return Internal("short write");
    }
  }
  return OkStatus();
}

Status SaveHcorp1(const std::string& path, const std::vector<Prog>& progs) {
  // Serialize all payloads first so the index (offsets, lengths, checksums)
  // is known before any byte is laid down.
  std::vector<std::vector<uint8_t>> payloads;
  payloads.reserve(progs.size());
  uint64_t payload_len = 0;
  for (const Prog& prog : progs) {
    payloads.push_back(SerializeProg(prog));
    payload_len += payloads.back().size();
  }
  const uint64_t count = payloads.size();
  const uint64_t index_off = kHcorpHeaderBytes;
  const uint64_t index_len = count * kHcorpEntryBytes;
  const uint64_t payload_off =
      (index_off + index_len + kHcorpPageSize - 1) & ~(kHcorpPageSize - 1);

  std::vector<uint8_t> index;
  index.reserve(index_len);
  uint64_t offset = 0;
  for (const auto& bytes : payloads) {
    PutU64(&index, offset);
    PutU32(&index, static_cast<uint32_t>(bytes.size()));
    PutU32(&index, static_cast<uint32_t>(BytesHash(bytes.data(),
                                                   bytes.size())));
    offset += bytes.size();
  }

  std::vector<uint8_t> header;
  header.reserve(kHcorpHeaderBytes);
  header.insert(header.end(), kHcorpMagic, kHcorpMagic + 8);
  PutU32(&header, kHcorpVersion);
  PutU32(&header, static_cast<uint32_t>(kHcorpPageSize));
  PutU64(&header, count);
  PutU64(&header, index_off);
  PutU64(&header, payload_off);
  PutU64(&header, payload_len);
  PutU64(&header, BytesHash(index.data(), index.size()));
  PutU64(&header, BytesHash(header.data(), header.size()));

  FilePtr file(std::fopen(path.c_str(), "wb"));
  if (file == nullptr) {
    return Internal(StrFormat("cannot open '%s' for writing", path.c_str()));
  }
  // Header, index, zero padding to the payload page boundary, payloads.
  // One deterministic byte stream: saving the same corpus twice produces
  // byte-identical files (tests pin this).
  std::vector<uint8_t> out;
  out.reserve(payload_off + payload_len);
  out.insert(out.end(), header.begin(), header.end());
  out.insert(out.end(), index.begin(), index.end());
  out.resize(payload_off, 0);
  for (const auto& bytes : payloads) {
    out.insert(out.end(), bytes.begin(), bytes.end());
  }
  if (!out.empty() &&
      std::fwrite(out.data(), out.size(), 1, file.get()) != 1) {
    return Internal("short write");
  }
  return OkStatus();
}

Result<std::vector<Prog>> LoadLegacy(const std::string& path,
                                     const Target& target, size_t* skipped) {
  FilePtr file(std::fopen(path.c_str(), "rb"));
  if (file == nullptr) {
    return NotFound(StrFormat("cannot open '%s'", path.c_str()));
  }
  // The file size bounds every length field, so a hostile header can never
  // force an allocation larger than the file itself.
  if (std::fseek(file.get(), 0, SEEK_END) != 0) {
    return ParseError(StrFormat("cannot stat '%s'", path.c_str()));
  }
  const long file_size = std::ftell(file.get());
  std::rewind(file.get());
  if (file_size < 8) {
    return ParseError(StrFormat("'%s' is not a corpus file", path.c_str()));
  }
  uint64_t remaining = static_cast<uint64_t>(file_size) - 8;
  char magic[4];
  if (std::fread(magic, 4, 1, file.get()) != 1 ||
      std::memcmp(magic, kMagic, 4) != 0) {
    return ParseError(StrFormat("'%s' is not a corpus file", path.c_str()));
  }
  uint32_t count;
  if (!ReadU32(file.get(), &count) || count > kMaxProgs ||
      count > remaining / 4) {
    return ParseError("bad corpus count");
  }
  std::vector<Prog> progs;
  progs.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    uint32_t len;
    if (!ReadU32(file.get(), &len)) {
      return ParseError(StrFormat("bad program length at entry %u", i));
    }
    remaining -= 4;
    if (len > kMaxProgBytes || len > remaining) {
      return ParseError(
          StrFormat("oversized program length at entry %u", i));
    }
    remaining -= len;
    std::vector<uint8_t> bytes(len);
    if (len > 0 && std::fread(bytes.data(), len, 1, file.get()) != 1) {
      return ParseError(StrFormat("truncated program at entry %u", i));
    }
    // DeserializeProg validates resource refs inline; a program it accepts
    // already satisfies Prog::Validate(), so no second walk here.
    Result<Prog> prog = DeserializeProg(target, bytes.data(), bytes.size());
    if (!prog.ok()) {
      if (skipped != nullptr) {
        ++*skipped;
      }
      continue;
    }
    progs.push_back(std::move(prog).value());
  }
  return progs;
}

Result<std::vector<Prog>> LoadHcorp1(const MappedFile& file,
                                     const std::string& path,
                                     const Target& target, size_t* skipped) {
  const uint8_t* base = file.data();
  const uint64_t file_size = file.size();
  if (file_size < kHcorpHeaderBytes) {
    return ParseError(StrFormat("'%s': truncated hcorp1 header", path.c_str()));
  }
  // Header integrity first: nothing else in the file is trusted until the
  // header checksum matches.
  const uint64_t header_checksum = GetU64(base + 56);
  if (BytesHash(base, 56) != header_checksum) {
    return ParseError(StrFormat("'%s': hcorp1 header checksum mismatch",
                                path.c_str()));
  }
  const uint32_t version = GetU32(base + 8);
  const uint32_t page_size = GetU32(base + 12);
  const uint64_t count = GetU64(base + 16);
  const uint64_t index_off = GetU64(base + 24);
  const uint64_t payload_off = GetU64(base + 32);
  const uint64_t payload_len = GetU64(base + 40);
  const uint64_t index_checksum = GetU64(base + 48);
  if (version != kHcorpVersion) {
    return ParseError(StrFormat("'%s': unsupported hcorp1 version %u",
                                path.c_str(), version));
  }
  if (page_size != kHcorpPageSize) {
    return ParseError(StrFormat("'%s': unsupported hcorp1 page size %u",
                                path.c_str(), page_size));
  }
  if (count > kMaxProgs) {
    return ParseError("bad corpus count");
  }
  const uint64_t index_len = count * kHcorpEntryBytes;
  // All extents are validated against the actual file size before any
  // dereference: index within [header, payload), payload page-aligned and
  // exactly filling the rest of the file.
  if (index_off != kHcorpHeaderBytes || index_len > file_size - index_off ||
      index_off + index_len > payload_off) {
    return ParseError(StrFormat("'%s': hcorp1 index out of bounds",
                                path.c_str()));
  }
  if (payload_off % page_size != 0 || payload_off > file_size ||
      payload_len != file_size - payload_off) {
    return ParseError(StrFormat("'%s': hcorp1 payload extent mismatch",
                                path.c_str()));
  }
  const uint8_t* index = base + index_off;
  if (BytesHash(index, index_len) != index_checksum) {
    return ParseError(StrFormat("'%s': hcorp1 index checksum mismatch",
                                path.c_str()));
  }
  const uint8_t* payload = base + payload_off;
  std::vector<Prog> progs;
  progs.reserve(count);
  uint64_t prev_end = 0;
  for (uint64_t i = 0; i < count; ++i) {
    const uint8_t* entry = index + i * kHcorpEntryBytes;
    const uint64_t offset = GetU64(entry);
    const uint32_t len = GetU32(entry + 8);
    const uint32_t checksum = GetU32(entry + 12);
    if (len > kMaxProgBytes || offset > payload_len ||
        len > payload_len - offset) {
      return ParseError(StrFormat(
          "'%s': hcorp1 entry %llu extent out of bounds", path.c_str(),
          static_cast<unsigned long long>(i)));
    }
    if (offset < prev_end) {
      return ParseError(StrFormat(
          "'%s': hcorp1 entry %llu overlaps its predecessor", path.c_str(),
          static_cast<unsigned long long>(i)));
    }
    prev_end = offset + len;
    if (static_cast<uint32_t>(BytesHash(payload + offset, len)) != checksum) {
      return ParseError(StrFormat(
          "'%s': hcorp1 entry %llu payload checksum mismatch", path.c_str(),
          static_cast<unsigned long long>(i)));
    }
    // Container structure is sound from here on; a program that fails to
    // decode (DeserializeProg validates resource refs inline — no second
    // per-program walk) is individually skipped, like the legacy loader.
    Result<Prog> prog = DeserializeProg(target, payload + offset, len);
    if (!prog.ok()) {
      if (skipped != nullptr) {
        ++*skipped;
      }
      continue;
    }
    progs.push_back(std::move(prog).value());
  }
  return progs;
}

}  // namespace

const char* CorpusFormatName(CorpusFormat format) {
  switch (format) {
    case CorpusFormat::kLegacy:
      return "legacy";
    case CorpusFormat::kHcorp1:
      return "hcorp1";
  }
  return "?";
}

Result<CorpusFormat> ParseCorpusFormat(const std::string& name) {
  if (name == "legacy") {
    return CorpusFormat::kLegacy;
  }
  if (name == "hcorp1") {
    return CorpusFormat::kHcorp1;
  }
  return ParseError(StrFormat("unknown corpus format '%s' (expected "
                              "'legacy' or 'hcorp1')",
                              name.c_str()));
}

Status SaveProgs(const std::string& path, const std::vector<Prog>& progs,
                 CorpusFormat format) {
  switch (format) {
    case CorpusFormat::kLegacy:
      return SaveLegacy(path, progs);
    case CorpusFormat::kHcorp1:
      return SaveHcorp1(path, progs);
  }
  return Internal("unknown corpus format");
}

Result<std::vector<Prog>> LoadProgs(const std::string& path,
                                    const Target& target, size_t* skipped) {
  if (skipped != nullptr) {
    *skipped = 0;
  }
  // Detect the container by magic. The 8-byte hcorp1 magic is checked
  // first; it cannot collide with a legacy file (a legacy header would need
  // its count field to spell "P1\n\0").
  {
    FilePtr probe(std::fopen(path.c_str(), "rb"));
    if (probe == nullptr) {
      return NotFound(StrFormat("cannot open '%s'", path.c_str()));
    }
    char magic[8] = {};
    const size_t got = std::fread(magic, 1, 8, probe.get());
    if (got == 8 && std::memcmp(magic, kHcorpMagic, 8) == 0) {
      HEALER_ASSIGN_OR_RETURN(MappedFile file, MappedFile::Open(path));
      return LoadHcorp1(file, path, target, skipped);
    }
  }
  return LoadLegacy(path, target, skipped);
}

}  // namespace healer
