#include "src/fuzz/corpus_io.h"

#include <cstdio>
#include <cstring>
#include <memory>

#include "src/base/string_util.h"
#include "src/prog/serialize.h"

namespace healer {

namespace {

constexpr char kMagic[4] = {'H', 'C', 'O', 'R'};

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) {
      std::fclose(f);
    }
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

bool WriteU32(std::FILE* f, uint32_t v) {
  return std::fwrite(&v, 4, 1, f) == 1;
}

bool ReadU32(std::FILE* f, uint32_t* v) {
  return std::fread(v, 4, 1, f) == 1;
}

}  // namespace

Status SaveProgs(const std::string& path, const std::vector<Prog>& progs) {
  FilePtr file(std::fopen(path.c_str(), "wb"));
  if (file == nullptr) {
    return Internal(StrFormat("cannot open '%s' for writing", path.c_str()));
  }
  if (std::fwrite(kMagic, 4, 1, file.get()) != 1 ||
      !WriteU32(file.get(), static_cast<uint32_t>(progs.size()))) {
    return Internal("short write");
  }
  for (const Prog& prog : progs) {
    const std::vector<uint8_t> bytes = SerializeProg(prog);
    if (!WriteU32(file.get(), static_cast<uint32_t>(bytes.size())) ||
        (!bytes.empty() &&
         std::fwrite(bytes.data(), bytes.size(), 1, file.get()) != 1)) {
      return Internal("short write");
    }
  }
  return OkStatus();
}

Result<std::vector<Prog>> LoadProgs(const std::string& path,
                                    const Target& target, size_t* skipped) {
  if (skipped != nullptr) {
    *skipped = 0;
  }
  FilePtr file(std::fopen(path.c_str(), "rb"));
  if (file == nullptr) {
    return NotFound(StrFormat("cannot open '%s'", path.c_str()));
  }
  // The file size bounds every length field, so a hostile header can never
  // force an allocation larger than the file itself.
  if (std::fseek(file.get(), 0, SEEK_END) != 0) {
    return ParseError(StrFormat("cannot stat '%s'", path.c_str()));
  }
  const long file_size = std::ftell(file.get());
  std::rewind(file.get());
  if (file_size < 8) {
    return ParseError(StrFormat("'%s' is not a corpus file", path.c_str()));
  }
  uint64_t remaining = static_cast<uint64_t>(file_size) - 8;
  char magic[4];
  if (std::fread(magic, 4, 1, file.get()) != 1 ||
      std::memcmp(magic, kMagic, 4) != 0) {
    return ParseError(StrFormat("'%s' is not a corpus file", path.c_str()));
  }
  uint32_t count;
  if (!ReadU32(file.get(), &count) || count > (1u << 20) ||
      count > remaining / 4) {
    return ParseError("bad corpus count");
  }
  std::vector<Prog> progs;
  progs.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    uint32_t len;
    if (!ReadU32(file.get(), &len)) {
      return ParseError(StrFormat("bad program length at entry %u", i));
    }
    remaining -= 4;
    if (len > (1u << 24) || len > remaining) {
      return ParseError(
          StrFormat("oversized program length at entry %u", i));
    }
    remaining -= len;
    std::vector<uint8_t> bytes(len);
    if (len > 0 && std::fread(bytes.data(), len, 1, file.get()) != 1) {
      return ParseError(StrFormat("truncated program at entry %u", i));
    }
    Result<Prog> prog = DeserializeProg(target, bytes.data(), bytes.size());
    if (!prog.ok() || !prog->Validate().ok()) {
      if (skipped != nullptr) {
        ++*skipped;
      }
      continue;
    }
    progs.push_back(std::move(prog).value());
  }
  return progs;
}

}  // namespace healer
