#include "src/fuzz/relation_table.h"

#include <algorithm>
#include <cstdio>
#include <mutex>

namespace healer {

bool RelationTable::Set(int from, int to, RelationSource source,
                        SimClock::Nanos learned_at) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  uint8_t& cell = cells_[Index(from, to)];
  if (cell != 0) {
    return false;
  }
  cell = 1;
  edges_.push_back(RelationEdge{from, to, source, learned_at});
  return true;
}

size_t RelationTable::CountBySource(RelationSource source) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return static_cast<size_t>(
      std::count_if(edges_.begin(), edges_.end(),
                    [&](const RelationEdge& e) { return e.source == source; }));
}

std::vector<RelationEdge> RelationTable::EdgesBefore(
    SimClock::Nanos cutoff) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::vector<RelationEdge> out;
  for (const RelationEdge& edge : edges_) {
    if (edge.learned_at <= cutoff) {
      out.push_back(edge);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const RelationEdge& a, const RelationEdge& b) {
              return a.learned_at < b.learned_at;
            });
  return out;
}

std::vector<int> RelationTable::InfluencedBy(int from) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::vector<int> out;
  const size_t base = static_cast<size_t>(from) * n_;
  for (size_t to = 0; to < n_; ++to) {
    if (cells_[base + to] != 0) {
      out.push_back(static_cast<int>(to));
    }
  }
  return out;
}

namespace {

// True when producing `produced` is a *specific* way to satisfy `wanted`:
// either the exact kind, or `wanted` is itself a specific (non-root) kind
// that `produced` inherits from. Pairs related only through a root kind
// (e.g. any-fd-producer -> close(fd)) convey no influence information —
// every call would be related to every other — and are left to dynamic
// learning, which only records influences it has actually observed.
bool SpecificMatch(const ResourceDesc* produced, const ResourceDesc* wanted) {
  if (produced == wanted) {
    return wanted->parent != nullptr || produced == wanted;
  }
  return wanted->parent != nullptr && produced->IsCompatibleWith(wanted);
}

}  // namespace

Status RelationTable::SaveToFile(const std::string& path,
                                 const Target& target) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Internal("cannot open relation file for writing");
  }
  for (const RelationEdge& edge : EdgesBefore()) {
    std::fprintf(f, "%s %s\n", target.syscall(edge.from).name.c_str(),
                 target.syscall(edge.to).name.c_str());
  }
  std::fclose(f);
  return OkStatus();
}

Result<size_t> RelationTable::LoadFromFile(const std::string& path,
                                           const Target& target) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) {
    return NotFound("cannot open relation file");
  }
  size_t loaded = 0;
  char from_name[256];
  char to_name[256];
  while (std::fscanf(f, "%255s %255s", from_name, to_name) == 2) {
    const Syscall* from = target.FindSyscall(from_name);
    const Syscall* to = target.FindSyscall(to_name);
    if (from == nullptr || to == nullptr) {
      continue;  // Description changed since the table was saved.
    }
    if (Set(from->id, to->id, RelationSource::kDynamic, 0)) {
      ++loaded;
    }
  }
  std::fclose(f);
  return loaded;
}

size_t StaticRelationLearn(const Target& target, RelationTable* table) {
  size_t added = 0;
  const size_t n = target.NumSyscalls();
  for (size_t i = 0; i < n; ++i) {
    const Syscall& producer = target.syscall(static_cast<int>(i));
    if (producer.produced_resources.empty()) {
      continue;
    }
    for (size_t j = 0; j < n; ++j) {
      if (i == j) {
        continue;
      }
      const Syscall& consumer = target.syscall(static_cast<int>(j));
      bool influences = false;
      for (const ResourceDesc* produced : producer.produced_resources) {
        for (const ResourceDesc* wanted : consumer.consumed_resources) {
          if (SpecificMatch(produced, wanted)) {
            influences = true;
            break;
          }
        }
        if (influences) {
          break;
        }
      }
      if (influences &&
          table->Set(static_cast<int>(i), static_cast<int>(j),
                     RelationSource::kStatic, 0)) {
        ++added;
      }
    }
  }
  return added;
}

}  // namespace healer
