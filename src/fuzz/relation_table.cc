#include "src/fuzz/relation_table.h"

#include <algorithm>
#include <cstdio>

namespace healer {

bool RelationSnapshot::Contains(int from, int to) const {
  const int32_t* row = Row(from);
  const uint32_t deg = OutDegree(from);
  return std::binary_search(row, row + deg, static_cast<int32_t>(to));
}

bool RelationDelta::Add(int from, int to, RelationSource source,
                        SimClock::Nanos learned_at) {
  if (!seen_.insert(Key(from, to)).second) {
    return false;
  }
  edges_.push_back(RelationEdge{from, to, source, learned_at});
  return true;
}

void RelationDelta::clear() {
  edges_.clear();
  seen_.clear();
}

RelationTable::RelationTable(size_t num_syscalls)
    : n_(num_syscalls), cells_(num_syscalls * num_syscalls, 0) {
  // Publish the empty snapshot so readers never see a null pointer.
  auto snap = std::make_shared<RelationSnapshot>();
  snap->epoch_ = 0;
  snap->n_ = n_;
  snap->row_offset_.assign(n_ + 1, 0);
  snap->degree_.assign(n_, 0);
  snapshot_ = std::move(snap);
}

void RelationTable::PublishLocked() {
  auto snap = std::make_shared<RelationSnapshot>();
  snap->n_ = n_;
  snap->row_offset_.resize(n_ + 1);
  snap->degree_.resize(n_);
  snap->cols_.reserve(edges_.size());
  // The dense matrix scan yields each row already sorted ascending, which
  // keeps Contains() binary-searchable and the selector's candidate order
  // identical to the old per-row scan.
  for (size_t from = 0; from < n_; ++from) {
    snap->row_offset_[from] = static_cast<uint32_t>(snap->cols_.size());
    const size_t base = from * n_;
    for (size_t to = 0; to < n_; ++to) {
      if (cells_[base + to] != 0) {
        snap->cols_.push_back(static_cast<int32_t>(to));
      }
    }
    snap->degree_[from] =
        static_cast<uint32_t>(snap->cols_.size()) - snap->row_offset_[from];
  }
  snap->row_offset_[n_] = static_cast<uint32_t>(snap->cols_.size());
  const uint64_t epoch = epoch_.load(std::memory_order_relaxed) + 1;
  snap->epoch_ = epoch;
  {
    std::lock_guard<std::mutex> lock(snapshot_mu_);
    snapshot_ = std::move(snap);
  }
  // Publish the epoch after the pointer swap: a reader that sees the new
  // epoch and refreshes is guaranteed to copy the new (or a newer) pointer.
  epoch_.store(epoch, std::memory_order_release);
}

std::shared_ptr<const RelationSnapshot> RelationTable::snapshot() const {
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  return snapshot_;
}

bool RelationTable::Get(int from, int to) const {
  std::lock_guard<std::mutex> lock(write_mu_);
  return cells_[Index(from, to)] != 0;
}

bool RelationTable::Set(int from, int to, RelationSource source,
                        SimClock::Nanos learned_at) {
  std::lock_guard<std::mutex> lock(write_mu_);
  uint8_t& cell = cells_[Index(from, to)];
  if (cell != 0) {
    return false;
  }
  cell = 1;
  edges_.push_back(RelationEdge{from, to, source, learned_at});
  num_edges_.store(edges_.size(), std::memory_order_relaxed);
  PublishLocked();
  return true;
}

size_t RelationTable::Apply(const RelationDelta& delta) {
  if (delta.empty()) {
    return 0;
  }
  std::lock_guard<std::mutex> lock(write_mu_);
  size_t added = 0;
  for (const RelationEdge& edge : delta.edges()) {
    uint8_t& cell = cells_[Index(edge.from, edge.to)];
    if (cell != 0) {
      continue;  // Another batch already published this edge: zero credit.
    }
    cell = 1;
    edges_.push_back(edge);
    ++added;
  }
  if (added == 0) {
    return 0;  // Nothing new: no republish, no epoch bump.
  }
  num_edges_.store(edges_.size(), std::memory_order_relaxed);
  PublishLocked();
  return added;
}

size_t RelationTable::CountBySource(RelationSource source) const {
  std::lock_guard<std::mutex> lock(write_mu_);
  return static_cast<size_t>(
      std::count_if(edges_.begin(), edges_.end(),
                    [&](const RelationEdge& e) { return e.source == source; }));
}

std::vector<RelationEdge> RelationTable::EdgesBefore(
    SimClock::Nanos cutoff) const {
  std::lock_guard<std::mutex> lock(write_mu_);
  std::vector<RelationEdge> out;
  for (const RelationEdge& edge : edges_) {
    if (edge.learned_at <= cutoff) {
      out.push_back(edge);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const RelationEdge& a, const RelationEdge& b) {
              return a.learned_at < b.learned_at;
            });
  return out;
}

std::vector<RelationEdge> RelationTable::EdgesFrom(size_t start) const {
  std::lock_guard<std::mutex> lock(write_mu_);
  if (start >= edges_.size()) {
    return {};
  }
  return std::vector<RelationEdge>(
      edges_.begin() + static_cast<ptrdiff_t>(start), edges_.end());
}

std::vector<int> RelationTable::InfluencedBy(int from) const {
  const std::shared_ptr<const RelationSnapshot> snap = snapshot();
  const int32_t* row = snap->Row(from);
  return std::vector<int>(row, row + snap->OutDegree(from));
}

namespace {

// True when producing `produced` is a *specific* way to satisfy `wanted`:
// either the exact kind, or `wanted` is itself a specific (non-root) kind
// that `produced` inherits from. Pairs related only through a root kind
// (e.g. any-fd-producer -> close(fd)) convey no influence information —
// every call would be related to every other — and are left to dynamic
// learning, which only records influences it has actually observed.
bool SpecificMatch(const ResourceDesc* produced, const ResourceDesc* wanted) {
  if (produced == wanted) {
    return wanted->parent != nullptr || produced == wanted;
  }
  return wanted->parent != nullptr && produced->IsCompatibleWith(wanted);
}

}  // namespace

Status RelationTable::SaveToFile(const std::string& path,
                                 const Target& target) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Internal("cannot open relation file for writing");
  }
  for (const RelationEdge& edge : EdgesBefore()) {
    std::fprintf(f, "%s %s\n", target.syscall(edge.from).name.c_str(),
                 target.syscall(edge.to).name.c_str());
  }
  std::fclose(f);
  return OkStatus();
}

Result<size_t> RelationTable::LoadFromFile(const std::string& path,
                                           const Target& target) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) {
    return NotFound("cannot open relation file");
  }
  RelationDelta delta;
  char from_name[256];
  char to_name[256];
  while (std::fscanf(f, "%255s %255s", from_name, to_name) == 2) {
    const Syscall* from = target.FindSyscall(from_name);
    const Syscall* to = target.FindSyscall(to_name);
    if (from == nullptr || to == nullptr) {
      continue;  // Description changed since the table was saved.
    }
    delta.Add(from->id, to->id, RelationSource::kDynamic, 0);
  }
  std::fclose(f);
  return Apply(delta);
}

size_t StaticRelationLearn(const Target& target, RelationTable* table) {
  RelationDelta delta;
  const size_t n = target.NumSyscalls();
  for (size_t i = 0; i < n; ++i) {
    const Syscall& producer = target.syscall(static_cast<int>(i));
    if (producer.produced_resources.empty()) {
      continue;
    }
    for (size_t j = 0; j < n; ++j) {
      if (i == j) {
        continue;
      }
      const Syscall& consumer = target.syscall(static_cast<int>(j));
      bool influences = false;
      for (const ResourceDesc* produced : producer.produced_resources) {
        for (const ResourceDesc* wanted : consumer.consumed_resources) {
          if (SpecificMatch(produced, wanted)) {
            influences = true;
            break;
          }
        }
        if (influences) {
          break;
        }
      }
      if (influences) {
        delta.Add(static_cast<int>(i), static_cast<int>(j),
                  RelationSource::kStatic, 0);
      }
    }
  }
  return table->Apply(delta);
}

}  // namespace healer
