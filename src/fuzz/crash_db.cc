#include "src/fuzz/crash_db.h"

#include <algorithm>

namespace healer {

bool CrashDb::Record(BugId bug, const std::string& title,
                     SimClock::Nanos when, uint64_t exec_index,
                     size_t repro_len) {
  auto it = records_.find(bug);
  if (it != records_.end()) {
    ++it->second.hits;
    it->second.shortest_repro =
        std::min(it->second.shortest_repro, repro_len);
    return false;
  }
  CrashRecord record;
  record.bug = bug;
  record.title = title;
  record.first_seen = when;
  record.first_exec = exec_index;
  record.shortest_repro = repro_len;
  record.hits = 1;
  auto [inserted, ok] = records_.emplace(bug, std::move(record));
  (void)ok;
  if (on_new_crash_) {
    on_new_crash_(inserted->second);
  }
  return true;
}

const CrashRecord* CrashDb::Find(BugId bug) const {
  auto it = records_.find(bug);
  return it == records_.end() ? nullptr : &it->second;
}

std::vector<CrashRecord> CrashDb::All() const {
  std::vector<CrashRecord> out;
  out.reserve(records_.size());
  for (const auto& [bug, record] : records_) {
    out.push_back(record);
  }
  std::sort(out.begin(), out.end(),
            [](const CrashRecord& a, const CrashRecord& b) {
              return a.first_seen < b.first_seen;
            });
  return out;
}

}  // namespace healer
