#include "src/fuzz/choice_table.h"

#include <algorithm>
#include <functional>
#include <set>

namespace healer {

namespace {

// Collects the "argument type facts" syzkaller's static analysis compares:
// resource kinds used anywhere in the call, plus coarse type categories.
struct TypeFacts {
  std::set<const ResourceDesc*> resources;
  bool uses_vma = false;
  bool uses_buffer = false;
  bool uses_string = false;
};

TypeFacts FactsOf(const Syscall& call) {
  TypeFacts facts;
  std::function<void(const Type*)> walk = [&](const Type* type) {
    switch (type->kind) {
      case TypeKind::kResource:
        facts.resources.insert(type->resource);
        break;
      case TypeKind::kVma:
        facts.uses_vma = true;
        break;
      case TypeKind::kBuffer:
        facts.uses_buffer = true;
        break;
      case TypeKind::kString:
      case TypeKind::kFilename:
        facts.uses_string = true;
        break;
      case TypeKind::kPtr:
        walk(type->elem);
        break;
      case TypeKind::kArray:
        walk(type->array_elem);
        break;
      case TypeKind::kStruct:
      case TypeKind::kUnion:
        for (const auto& field : type->fields) {
          walk(field.type);
        }
        break;
      default:
        break;
    }
  };
  for (const auto& arg : call.args) {
    walk(arg.type);
  }
  if (call.ret != nullptr) {
    facts.resources.insert(call.ret);
  }
  return facts;
}

uint32_t Normalize(uint32_t value, uint32_t max_value) {
  // Scale to [10, 1000] with a factor of 1000, as the paper describes.
  if (max_value == 0) {
    return 10;
  }
  return 10 + static_cast<uint32_t>(
                  990ull * std::min(value, max_value) / max_value);
}

}  // namespace

ChoiceTable::ChoiceTable(const Target& target, std::vector<int> enabled)
    : target_(target),
      n_(target.NumSyscalls()),
      enabled_(std::move(enabled)),
      p0_(n_ * n_, 0),
      adjacency_(n_ * n_, 0),
      p_(n_ * n_, 0) {
  BuildStatic();
  Rebuild();  // Publishes the first snapshot, so Choose() never sees null.
  weights_.reserve(enabled_.size());
}

void ChoiceTable::BuildStatic() {
  std::vector<TypeFacts> facts;
  facts.reserve(n_);
  for (size_t i = 0; i < n_; ++i) {
    facts.push_back(FactsOf(target_.syscall(static_cast<int>(i))));
  }
  uint32_t max_raw = 0;
  std::vector<uint32_t> raw(n_ * n_, 0);
  for (size_t i = 0; i < n_; ++i) {
    for (size_t j = 0; j < n_; ++j) {
      if (i == j) {
        continue;
      }
      uint32_t weight = 0;
      // Hard-coded weights per common type, as in syzkaller: 10 per shared
      // resource kind (inheritance-blind on purpose), 5 for vma, 1 each for
      // buffer/string.
      for (const ResourceDesc* res : facts[i].resources) {
        if (facts[j].resources.count(res) != 0) {
          weight += 10;
        }
      }
      if (facts[i].uses_vma && facts[j].uses_vma) {
        weight += 5;
      }
      if (facts[i].uses_buffer && facts[j].uses_buffer) {
        weight += 1;
      }
      if (facts[i].uses_string && facts[j].uses_string) {
        weight += 1;
      }
      raw[i * n_ + j] = weight;
      max_raw = std::max(max_raw, weight);
    }
  }
  for (size_t idx = 0; idx < raw.size(); ++idx) {
    p0_[idx] = Normalize(raw[idx], max_raw);
  }
}

void ChoiceTable::Rebuild() {
  uint32_t max_adj = 0;
  for (uint32_t count : adjacency_) {
    max_adj = std::max(max_adj, count);
  }
  for (size_t idx = 0; idx < p_.size(); ++idx) {
    const uint32_t p1 = Normalize(adjacency_[idx], max_adj);
    p_[idx] = p0_[idx] * p1 / 1000;
  }
  // Publish the recomputed matrix as an immutable snapshot (same protocol
  // as RelationTable: pointer swap first, epoch release-store after).
  auto snap = std::make_shared<ChoiceSnapshot>();
  snap->n_ = n_;
  snap->p_ = p_;
  const uint64_t epoch = epoch_.load(std::memory_order_relaxed) + 1;
  snap->epoch_ = epoch;
  {
    std::lock_guard<std::mutex> lock(snapshot_mu_);
    snapshot_ = std::move(snap);
  }
  epoch_.store(epoch, std::memory_order_release);
}

std::shared_ptr<const ChoiceSnapshot> ChoiceTable::snapshot() const {
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  return snapshot_;
}

int ChoiceTable::Choose(Rng* rng, int prev) {
  if (prev < 0) {
    return enabled_[rng->Below(enabled_.size())];
  }
  const uint64_t epoch = epoch_.load(std::memory_order_relaxed);
  if (epoch != cached_epoch_ || cached_ == nullptr) {
    cached_ = snapshot();
    cached_epoch_ = cached_->epoch();
  }
  weights_.clear();
  for (int candidate : enabled_) {
    weights_.push_back(1 + cached_->P(prev, candidate));
  }
  return enabled_[rng->WeightedPick(weights_)];
}

}  // namespace healer
