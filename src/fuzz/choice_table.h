// Syzkaller's choice table, implemented as Section 3 describes it:
// P_ij = (P0_ij * P1_ij) / 1000, where P0 comes from a static analysis that
// weights argument types two calls have in common (resource kinds weigh 10,
// vma 5, ...) and P1 counts adjacent call pairs in the corpus. Both factors
// are normalized to [10, 1000]. The paper argues this misleads selection —
// implementing it verbatim lets the benches reproduce that effect.

#ifndef SRC_FUZZ_CHOICE_TABLE_H_
#define SRC_FUZZ_CHOICE_TABLE_H_

#include <cstdint>
#include <vector>

#include "src/base/rng.h"
#include "src/syzlang/target.h"

namespace healer {

class ChoiceTable {
 public:
  ChoiceTable(const Target& target, std::vector<int> enabled);

  // Static prior P0 over common argument types.
  void BuildStatic();

  // Records one adjacency observation (c_i immediately before c_j in a
  // minimized corpus program); callers invoke Rebuild() periodically.
  void NoteAdjacent(int before, int after) {
    ++adjacency_[Index(before, after)];
  }

  // Recomputes P from P0 and the adjacency counts.
  void Rebuild();

  // Selects the next call biased by P[prev][*]; uniform among enabled calls
  // when prev < 0.
  int Choose(Rng* rng, int prev) const;

  uint32_t P(int before, int after) const { return p_[Index(before, after)]; }

 private:
  size_t Index(int before, int after) const {
    return static_cast<size_t>(before) * n_ + static_cast<size_t>(after);
  }

  const Target& target_;
  size_t n_;
  std::vector<int> enabled_;
  std::vector<uint32_t> p0_;
  std::vector<uint32_t> adjacency_;
  std::vector<uint32_t> p_;
};

}  // namespace healer

#endif  // SRC_FUZZ_CHOICE_TABLE_H_
