// Syzkaller's choice table, implemented as Section 3 describes it:
// P_ij = (P0_ij * P1_ij) / 1000, where P0 comes from a static analysis that
// weights argument types two calls have in common (resource kinds weigh 10,
// vma 5, ...) and P1 counts adjacent call pairs in the corpus. Both factors
// are normalized to [10, 1000]. The paper argues this misleads selection —
// implementing it verbatim lets the benches reproduce that effect.
//
// Like RelationTable (DESIGN.md §8), the table separates the builder state
// (P0, adjacency counts) from an immutable, epoch-versioned ChoiceSnapshot
// of the P matrix that Rebuild() publishes by shared_ptr swap. Choose()
// reads the cached snapshot (one relaxed epoch probe) and reuses a member
// weights buffer — no mutex, no allocation per pick — so the Section-3
// ablation benches compare the baseline against HEALER like with like.

#ifndef SRC_FUZZ_CHOICE_TABLE_H_
#define SRC_FUZZ_CHOICE_TABLE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "src/base/rng.h"
#include "src/syzlang/target.h"

namespace healer {

// Immutable point-in-time view of the P matrix.
class ChoiceSnapshot {
 public:
  uint64_t epoch() const { return epoch_; }
  size_t n() const { return n_; }

  uint32_t P(int before, int after) const {
    return p_[static_cast<size_t>(before) * n_ + static_cast<size_t>(after)];
  }

 private:
  friend class ChoiceTable;
  uint64_t epoch_ = 0;
  size_t n_ = 0;
  std::vector<uint32_t> p_;
};

class ChoiceTable {
 public:
  ChoiceTable(const Target& target, std::vector<int> enabled);

  // Static prior P0 over common argument types.
  void BuildStatic();

  // Records one adjacency observation (c_i immediately before c_j in a
  // minimized corpus program); callers invoke Rebuild() periodically.
  void NoteAdjacent(int before, int after) {
    ++adjacency_[Index(before, after)];
  }

  // Recomputes P from P0 and the adjacency counts, and publishes it as a
  // new snapshot.
  void Rebuild();

  // Selects the next call biased by P[prev][*]; uniform among enabled calls
  // when prev < 0. Reads the published snapshot, refreshed only when the
  // epoch moved; reuses the member weights buffer (no per-pick allocation).
  int Choose(Rng* rng, int prev);

  uint32_t P(int before, int after) const { return p_[Index(before, after)]; }

  // Snapshot epoch; bumped by every Rebuild().
  uint64_t epoch() const { return epoch_.load(std::memory_order_relaxed); }

  // Current immutable view of the P matrix.
  std::shared_ptr<const ChoiceSnapshot> snapshot() const;

 private:
  size_t Index(int before, int after) const {
    return static_cast<size_t>(before) * n_ + static_cast<size_t>(after);
  }

  const Target& target_;
  size_t n_;
  std::vector<int> enabled_;
  std::vector<uint32_t> p0_;
  std::vector<uint32_t> adjacency_;
  std::vector<uint32_t> p_;

  std::atomic<uint64_t> epoch_{0};
  mutable std::mutex snapshot_mu_;
  std::shared_ptr<const ChoiceSnapshot> snapshot_;

  // Choose() scratch: cached snapshot + reusable weights buffer.
  std::shared_ptr<const ChoiceSnapshot> cached_;
  uint64_t cached_epoch_ = ~0ULL;
  std::vector<uint64_t> weights_;
};

}  // namespace healer

#endif  // SRC_FUZZ_CHOICE_TABLE_H_
