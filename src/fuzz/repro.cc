#include "src/fuzz/repro.h"

namespace healer {

std::optional<CrashRepro> CrashReproducer::Minimize(const Prog& prog,
                                                    BugId bug) {
  CrashRepro repro{prog.Clone(), bug, 0};

  auto crashes_same = [&](const Prog& candidate) {
    ++repro.execs;
    const ExecResult result = exec_(candidate);
    return result.Crashed() && result.crash->bug == bug;
  };

  if (!crashes_same(repro.prog)) {
    return std::nullopt;
  }

  // Drop the tail after the crashing call: re-execute to find the crash
  // index, then truncate.
  {
    ++repro.execs;
    const ExecResult result = exec_(repro.prog);
    if (result.Crashed()) {
      repro.prog.Truncate(result.crash->call_index + 1);
    }
  }

  // Greedy removal passes until a fixpoint: try each call from the back
  // (keeping the final, crashing call).
  bool changed = true;
  while (changed && repro.prog.size() > 1) {
    changed = false;
    for (size_t i = repro.prog.size() - 1; i-- > 0;) {
      Prog candidate = repro.prog.Clone();
      candidate.RemoveCall(i);
      if (crashes_same(candidate)) {
        repro.prog = std::move(candidate);
        changed = true;
      }
    }
  }
  return repro;
}

}  // namespace healer
