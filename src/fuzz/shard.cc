#include "src/fuzz/shard.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "src/base/hash.h"
#include "src/base/rng.h"
#include "src/prog/serialize.h"

namespace healer {

namespace {

// Priority for gossip-imported corpus programs. Local archives weight by
// the fresh relation edges they produced; the origin's measurement does not
// travel with the seed, so imports get a modest flat weight.
constexpr uint32_t kImportedSeedPriority = 4;

uint64_t NowNsSince(std::chrono::steady_clock::time_point start) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
}

}  // namespace

FuzzShard::FuzzShard(const Target& target, const FuzzerOptions& base,
                     uint32_t shard_id)
    : target_(target), shard_id_(shard_id) {
  fuzzer_ = std::make_unique<Fuzzer>(target, base);
  coverage_shadow_.assign(fuzzer_->coverage().WordCount(), 0);
}

void FuzzShard::RunExecs(size_t n) {
  for (size_t i = 0; i < n; ++i) {
    fuzzer_->Step();
  }
}

std::vector<uint8_t> FuzzShard::EmitGossip() {
  std::vector<uint8_t> out;

  // Relation-log tail since the last emit. Static edges are seeded
  // identically on every shard at construction; only dynamic edges (local
  // learning and relayed imports) travel.
  const std::vector<RelationEdge> tail =
      fuzzer_->relations().EdgesFrom(relation_cursor_);
  relation_cursor_ += tail.size();
  std::vector<RelationEdge> dynamic_edges;
  for (const RelationEdge& e : tail) {
    if (e.source == RelationSource::kDynamic) {
      dynamic_edges.push_back(e);
    }
  }
  if (!dynamic_edges.empty()) {
    GossipFrame frame;
    frame.type = GossipFrameType::kRelations;
    frame.origin = shard_id_;
    frame.seq = next_seq_++;
    frame.payload = EncodeRelationsPayload(dynamic_edges);
    AppendGossipFrame(frame, &out);
    ++stats_.frames_emitted;
  }

  // Coverage words whose value changed since the last emit (shadow diff).
  // The full word travels, not just the delta bits — OrWord on the receiver
  // is idempotent, so re-sending known bits is harmless and keeps the diff
  // cheap. Imported words change the live map but not the shadow, so they
  // relay exactly once on the next emit.
  std::vector<WireCoverageWord> changed;
  fuzzer_->coverage().ForEachOccupiedWord([&](size_t idx, uint64_t value) {
    if (coverage_shadow_[idx] != value) {
      coverage_shadow_[idx] = value;
      changed.push_back({static_cast<uint32_t>(idx), value});
    }
  });
  if (!changed.empty()) {
    GossipFrame frame;
    frame.type = GossipFrameType::kCoverage;
    frame.origin = shard_id_;
    frame.seq = next_seq_++;
    frame.payload = EncodeCoveragePayload(changed);
    AppendGossipFrame(frame, &out);
    ++stats_.frames_emitted;
  }

  // Programs archived since the last emit (including imports — the relay).
  const Corpus& corpus = fuzzer_->corpus();
  std::vector<std::vector<uint8_t>> blobs;
  for (size_t i = corpus_cursor_; i < corpus.size(); ++i) {
    blobs.push_back(SerializeProg(corpus.at(i)));
  }
  corpus_cursor_ = corpus.size();
  if (!blobs.empty()) {
    GossipFrame frame;
    frame.type = GossipFrameType::kSeeds;
    frame.origin = shard_id_;
    frame.seq = next_seq_++;
    frame.payload = EncodeSeedsPayload(blobs);
    AppendGossipFrame(frame, &out);
    ++stats_.frames_emitted;
  }

  stats_.gossip_bytes_out += out.size();
  return out;
}

Status FuzzShard::Ingest(const uint8_t* data, size_t size) {
  Result<std::vector<GossipFrame>> frames = DecodeGossipStream(data, size);
  if (!frames.ok()) {
    return frames.status();
  }
  for (GossipFrame& frame : *frames) {
    if (frame.origin == shard_id_) {
      continue;  // A batch reflected back at its origin carries nothing new.
    }
    if (!dedup_.Accept(frame.origin, frame.seq)) {
      dedup_.CountDrop();
      ++stats_.frames_replayed;
      continue;
    }
    inbox_.push_back(std::move(frame));
  }
  return OkStatus();
}

size_t FuzzShard::ApplyInbox() {
  // Canonical apply order: (origin, seq). Frames arrive in whatever order
  // the network delivered the batches; sorting here makes the post-apply
  // shard state a pure function of the frame *set*, which is what the
  // byte-identical-reconciliation guarantee rests on.
  std::sort(inbox_.begin(), inbox_.end(),
            [](const GossipFrame& a, const GossipFrame& b) {
              if (a.origin != b.origin) {
                return a.origin < b.origin;
              }
              return a.seq < b.seq;
            });
  for (const GossipFrame& frame : inbox_) {
    ApplyFrame(frame);
  }
  const size_t applied = inbox_.size();
  stats_.frames_applied += applied;
  inbox_.clear();
  return applied;
}

void FuzzShard::ApplyFrame(const GossipFrame& frame) {
  switch (frame.type) {
    case GossipFrameType::kRelations: {
      Result<std::vector<WireRelationEdge>> edges = DecodeRelationsPayload(
          frame.payload, fuzzer_->relations().n());
      if (!edges.ok()) {
        return;  // Malformed inner payload: drop the frame whole.
      }
      RelationDelta delta;
      const SimClock::Nanos now = fuzzer_->clock().now();
      for (const WireRelationEdge& e : *edges) {
        delta.Add(static_cast<int>(e.from), static_cast<int>(e.to),
                  RelationSource::kDynamic, now);
      }
      // Apply() credits only edges new to this shard's table — the
      // exactly-once half of the reconciliation identity.
      stats_.relations_imported +=
          fuzzer_->mutable_relations()->Apply(delta);
      break;
    }
    case GossipFrameType::kCoverage: {
      Result<std::vector<WireCoverageWord>> words = DecodeCoveragePayload(
          frame.payload, coverage_shadow_.size());
      if (!words.ok()) {
        return;
      }
      for (const WireCoverageWord& w : *words) {
        stats_.coverage_bits_imported +=
            fuzzer_->mutable_coverage()->OrWord(w.index, w.value);
        ++stats_.coverage_words_imported;
      }
      break;
    }
    case GossipFrameType::kSeeds: {
      Result<std::vector<std::vector<uint8_t>>> blobs =
          DecodeSeedsPayload(frame.payload);
      if (!blobs.ok()) {
        return;
      }
      // Deserialize everything before mutating the corpus: a frame either
      // applies whole or not at all (partial application would make shard
      // state depend on *where* a bad blob sits, not just the frame set).
      std::vector<Prog> progs;
      std::vector<uint64_t> hashes;
      for (const std::vector<uint8_t>& blob : *blobs) {
        Result<Prog> prog =
            DeserializeProg(target_, blob.data(), blob.size());
        if (!prog.ok()) {
          return;
        }
        progs.push_back(std::move(*prog));
        hashes.push_back(Corpus::ContentHash(blob));
      }
      for (size_t i = 0; i < progs.size(); ++i) {
        if (fuzzer_->mutable_corpus()->Add(std::move(progs[i]),
                                           kImportedSeedPriority,
                                           hashes[i])) {
          ++stats_.seeds_imported;
        } else {
          ++stats_.seeds_duplicate;
        }
      }
      break;
    }
  }
}

bool FuzzShard::CheckRelationIdentity() const {
  const RelationTable& table = fuzzer_->relations();
  const size_t static_edges =
      table.CountBySource(RelationSource::kStatic);
  const uint64_t learned = fuzzer_->metrics().Snapshot().counter(
      "healer_relations_learned_total");
  return table.Count() ==
         static_edges + learned + stats_.relations_imported;
}

std::vector<uint8_t> FuzzShard::CanonicalRelationBytes() const {
  std::vector<RelationEdge> edges = fuzzer_->relations().EdgesBefore();
  std::sort(edges.begin(), edges.end(),
            [](const RelationEdge& a, const RelationEdge& b) {
              if (a.from != b.from) {
                return a.from < b.from;
              }
              return a.to < b.to;
            });
  edges.erase(std::unique(edges.begin(), edges.end(),
                          [](const RelationEdge& a, const RelationEdge& b) {
                            return a.from == b.from && a.to == b.to;
                          }),
              edges.end());
  return EncodeRelationsPayload(edges);
}

uint64_t FuzzShard::CorpusFingerprint() const {
  const Corpus& corpus = fuzzer_->corpus();
  std::vector<uint64_t> hashes;
  hashes.reserve(corpus.size());
  for (size_t i = 0; i < corpus.size(); ++i) {
    hashes.push_back(Corpus::ContentHash(corpus.at(i)));
  }
  std::sort(hashes.begin(), hashes.end());
  uint64_t h = 0x9e3779b97f4a7c15ULL;
  for (uint64_t x : hashes) {
    h = HashCombine(h, Mix64(x));
  }
  return h;
}

std::vector<uint8_t> ReconcileRelations(
    const std::vector<const FuzzShard*>& shards) {
  std::vector<RelationEdge> all;
  for (const FuzzShard* shard : shards) {
    const std::vector<RelationEdge> edges =
        shard->fuzzer().relations().EdgesBefore();
    all.insert(all.end(), edges.begin(), edges.end());
  }
  std::sort(all.begin(), all.end(),
            [](const RelationEdge& a, const RelationEdge& b) {
              if (a.from != b.from) {
                return a.from < b.from;
              }
              return a.to < b.to;
            });
  all.erase(std::unique(all.begin(), all.end(),
                        [](const RelationEdge& a, const RelationEdge& b) {
                          return a.from == b.from && a.to == b.to;
                        }),
            all.end());
  return EncodeRelationsPayload(all);
}

ShardedCampaignResult RunShardedCampaign(
    const Target& target, const ShardedCampaignOptions& options) {
  const auto start = std::chrono::steady_clock::now();
  const size_t n = options.shards == 0 ? 1 : options.shards;

  std::vector<std::unique_ptr<FuzzShard>> shards;
  shards.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    FuzzerOptions shard_options = options.base;
    shard_options.seed = options.seed + i;
    shards.push_back(std::make_unique<FuzzShard>(
        target, shard_options, static_cast<uint32_t>(i)));
  }

  ShardedCampaignResult result;
  result.shards = n;
  Rng net_rng(options.net_seed);

  for (size_t round = 0; round < options.rounds; ++round) {
    // Fuzz phase. Shards share nothing, so thread-parallel and sequential
    // execution produce identical per-shard state; threads buy wall-clock.
    if (options.use_threads && n > 1) {
      std::vector<std::thread> workers;
      workers.reserve(n);
      for (size_t i = 0; i < n; ++i) {
        workers.emplace_back(
            [&, i] { shards[i]->RunExecs(options.execs_per_round); });
      }
      for (std::thread& t : workers) {
        t.join();
      }
    } else {
      for (size_t i = 0; i < n; ++i) {
        shards[i]->RunExecs(options.execs_per_round);
      }
    }

    // Emit phase (single-threaded from here to the end of the round).
    std::vector<std::vector<uint8_t>> batches(n);
    for (size_t i = 0; i < n; ++i) {
      batches[i] = shards[i]->EmitGossip();
    }

    // Deliver phase: the schedule is deterministic; the *delivery order*
    // and duplication are adversarial when net_seed != 0 (shuffle plus a
    // replay of every third delivery). The dedup/canonical-apply machinery
    // must erase any trace of this — check.sh compares two net seeds.
    struct Delivery {
      size_t to;
      const std::vector<uint8_t>* bytes;
    };
    std::vector<Delivery> deliveries;
    for (size_t i = 0; i < n; ++i) {
      if (batches[i].empty()) {
        continue;
      }
      for (size_t peer : GossipPeers(i, n, options.fanout, round)) {
        deliveries.push_back({peer, &batches[i]});
      }
    }
    if (options.net_seed != 0) {
      for (size_t i = deliveries.size(); i > 1; --i) {
        std::swap(deliveries[i - 1], deliveries[net_rng.Below(i)]);
      }
      const size_t original = deliveries.size();
      for (size_t i = 0; i < original; i += 3) {
        deliveries.push_back(deliveries[i]);
      }
    }
    for (const Delivery& d : deliveries) {
      const Status status =
          shards[d.to]->Ingest(d.bytes->data(), d.bytes->size());
      if (!status.ok()) {
        result.identities_ok = false;  // Own frames must always decode.
      }
      result.gossip_bytes += d.bytes->size();
    }

    // Apply phase, shard index order (any fixed order works — each inbox
    // is applied canonically regardless).
    for (size_t i = 0; i < n; ++i) {
      result.frames_exchanged += shards[i]->ApplyInbox();
    }

    // Sample for the time-to-coverage curve.
    Bitmap round_union(shards[0]->fuzzer().coverage().size_bits());
    for (size_t i = 0; i < n; ++i) {
      round_union.MergeNew(shards[i]->fuzzer().coverage());
    }
    RoundSample sample;
    sample.round = round;
    sample.wall_ns = NowNsSince(start);
    sample.union_coverage = round_union.Count();
    result.samples.push_back(sample);

    if (options.reconcile_every != 0 &&
        (round + 1) % options.reconcile_every == 0) {
      for (size_t i = 0; i < n; ++i) {
        if (!shards[i]->CheckRelationIdentity()) {
          result.identities_ok = false;
        }
      }
    }
  }

  // Final reconciliation.
  std::vector<const FuzzShard*> views;
  views.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    views.push_back(shards[i].get());
    if (!shards[i]->CheckRelationIdentity()) {
      result.identities_ok = false;
    }
    result.total_execs += shards[i]->fuzzer().FuzzExecs();
    result.shard_coverage.push_back(shards[i]->fuzzer().CoverageCount());
    result.corpus_fingerprints.push_back(shards[i]->CorpusFingerprint());
    result.frames_replayed += shards[i]->stats().frames_replayed;
  }
  Bitmap union_map(shards[0]->fuzzer().coverage().size_bits());
  for (size_t i = 0; i < n; ++i) {
    union_map.MergeNew(shards[i]->fuzzer().coverage());
  }
  result.union_coverage = union_map.Count();
  result.reconciled_relations = ReconcileRelations(views);
  result.reconciled_relations_hash = FastBytesHash(std::string_view(
      reinterpret_cast<const char*>(result.reconciled_relations.data()),
      result.reconciled_relations.size()));
  result.union_relations =
      result.reconciled_relations.size() >= 4
          ? (result.reconciled_relations.size() - 4) / 8
          : 0;
  result.wall_ns = NowNsSince(start);
  return result;
}

}  // namespace healer
