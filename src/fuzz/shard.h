// Sharded campaign topology (DESIGN.md §13, ROADMAP item 5).
//
// A FuzzShard is one self-contained fuzzer — its own corpus, coverage
// bitmap, relation table, VM pool, rng — plus gossip cursors. Shards share
// no mutable state; everything they exchange travels through HGSP1 frames
// (gossip.h). That makes the topology trivially thread-safe (N shards on N
// threads touch disjoint state between barriers) and process-portable (the
// same frames go over files or pipes in `healer_cli shard` mode).
//
// A sharded campaign runs lockstep rounds:
//
//   1. Fuzz phase: every shard runs `execs_per_round` Step()s, in parallel
//      threads (throughput) or sequentially (debugging) — identical results
//      either way, since shards are deterministic and independent.
//   2. Emit phase: each shard emits the tail of its state since its last
//      emit — new dynamic relation edges (edge-log cursor), changed
//      coverage words (shadow-bitmap diff), newly archived programs
//      (corpus cursor) — as one frame batch, sequence-numbered per origin.
//   3. Deliver phase: batches travel to each shard's fanout peers on the
//      deterministic GossipPeers schedule. Delivery order and duplication
//      are deliberately adversarial: `net_seed` shuffles deliveries and can
//      replay them. Receivers buffer frames in an inbox.
//   4. Apply phase: each shard sorts its inbox into the canonical
//      (origin, seq) order, drops replayed (origin, seq) pairs, and applies
//      the rest. Canonical ordering is what makes the end state a pure
//      function of the schedule — byte-identical reconciliation across any
//      two net_seeds is asserted by check.sh's `distributed` stage.
//
// Exactly-once identity (reconciliation invariant): for every shard,
//
//   relations.Count() == static edges
//                      + healer_relations_learned_total (local learning)
//                      + gossip import credits (Apply() return values)
//
// i.e. every edge in the table is credited exactly once fleet-wide, no
// matter how many shards re-learn or re-gossip it. Imports that lose the
// race credit zero. The same discipline covers coverage bits (OrWord's
// fetch_or winner) and corpus entries (content-hash dedup in Corpus::Add).

#ifndef SRC_FUZZ_SHARD_H_
#define SRC_FUZZ_SHARD_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/fuzz/fuzzer.h"
#include "src/fuzz/gossip.h"

namespace healer {

struct ShardStats {
  uint64_t frames_emitted = 0;
  uint64_t frames_applied = 0;
  uint64_t frames_replayed = 0;   // Dropped by (origin, seq) dedup.
  uint64_t gossip_bytes_out = 0;
  uint64_t relations_imported = 0;  // Apply() credits from gossip.
  uint64_t coverage_words_imported = 0;
  uint64_t coverage_bits_imported = 0;  // OrWord fresh-bit credits.
  uint64_t seeds_imported = 0;          // Corpus::Add accepted.
  uint64_t seeds_duplicate = 0;         // Content-hash rejected.
};

class FuzzShard {
 public:
  // `base` is the per-shard fuzzer configuration; the caller varies the rng
  // seed per shard (shards exploring identical trajectories would gossip
  // nothing useful).
  FuzzShard(const Target& target, const FuzzerOptions& base,
            uint32_t shard_id);

  uint32_t shard_id() const { return shard_id_; }
  Fuzzer& fuzzer() { return *fuzzer_; }
  const Fuzzer& fuzzer() const { return *fuzzer_; }
  const ShardStats& stats() const { return stats_; }

  // Fuzz phase: `n` Fuzzer::Step() iterations.
  void RunExecs(size_t n);

  // Emit phase: encodes everything new since the previous EmitGossip call
  // (relation-log tail, changed coverage words, new corpus programs) as
  // HGSP1 frames. Imported state is re-emitted exactly once too — that is
  // the relay that lets deltas reach shards beyond the direct fanout.
  std::vector<uint8_t> EmitGossip();

  // Deliver phase: decode a peer's batch, drop replayed (origin, seq)
  // frames, buffer the rest. A hostile batch (any undecodable frame) is
  // rejected whole and counted; shard state is untouched.
  Status Ingest(const uint8_t* data, size_t size);

  // Apply phase: applies the buffered inbox in canonical (origin, seq)
  // order and clears it. Returns the number of frames applied.
  size_t ApplyInbox();

  // Reconciliation invariant: table count == static + locally learned +
  // gossip-imported (each credited exactly once).
  bool CheckRelationIdentity() const;

  // Canonical byte encoding of this shard's relation table: all (from, to)
  // pairs, sorted, deduplicated — independent of learn order, learn time,
  // and source. Two shards with the same edge set produce identical bytes.
  std::vector<uint8_t> CanonicalRelationBytes() const;

  // Content fingerprint of the corpus: hash over the sorted content hashes
  // of every program — independent of archive order.
  uint64_t CorpusFingerprint() const;

 private:
  void ApplyFrame(const GossipFrame& frame);

  const Target& target_;
  uint32_t shard_id_;
  std::unique_ptr<Fuzzer> fuzzer_;
  ShardStats stats_;

  uint64_t next_seq_ = 0;
  size_t relation_cursor_ = 0;  // Edge-log position already emitted.
  size_t corpus_cursor_ = 0;    // Corpus index already emitted.
  std::vector<uint64_t> coverage_shadow_;  // Word values already emitted.
  GossipDedup dedup_;
  std::vector<GossipFrame> inbox_;
};

// Canonical union of several shards' relation tables, in the same byte
// encoding as FuzzShard::CanonicalRelationBytes. This is the global
// reconciled table the distributed check compares across gossip orderings.
std::vector<uint8_t> ReconcileRelations(
    const std::vector<const FuzzShard*>& shards);

struct ShardedCampaignOptions {
  size_t shards = 4;
  size_t rounds = 8;
  size_t execs_per_round = 128;
  size_t fanout = 1;
  uint64_t seed = 1;          // Base rng seed; shard i fuzzes with seed+i.
  uint64_t net_seed = 0;      // Delivery shuffle/replay seed. MUST NOT
                              // affect any campaign outcome.
  bool use_threads = true;    // Fuzz phase on N threads vs sequential.
  size_t reconcile_every = 4; // Assert identities every K rounds (0 = only
                              // at the end).
  FuzzerOptions base;         // Template for every shard's fuzzer.
};

struct RoundSample {
  size_t round = 0;
  uint64_t wall_ns = 0;       // Since campaign start.
  size_t union_coverage = 0;  // Distinct bits across all shards.
};

struct ShardedCampaignResult {
  size_t shards = 0;
  uint64_t total_execs = 0;
  uint64_t wall_ns = 0;
  size_t union_coverage = 0;
  size_t union_relations = 0;  // Distinct (from, to) pairs fleet-wide.
  bool identities_ok = true;
  uint64_t gossip_bytes = 0;
  uint64_t frames_exchanged = 0;
  uint64_t frames_replayed = 0;
  std::vector<size_t> shard_coverage;
  std::vector<uint64_t> corpus_fingerprints;  // Per shard.
  std::vector<uint8_t> reconciled_relations;  // Canonical union bytes.
  uint64_t reconciled_relations_hash = 0;
  std::vector<RoundSample> samples;  // One per round (time-to-coverage).
};

// Runs the lockstep sharded campaign described above. Deterministic given
// (options minus net_seed): any two net_seeds yield identical
// reconciled_relations, corpus_fingerprints, and per-shard coverage.
ShardedCampaignResult RunShardedCampaign(const Target& target,
                                         const ShardedCampaignOptions& options);

}  // namespace healer

#endif  // SRC_FUZZ_SHARD_H_
