// Corpus persistence: save/load program sets in the wire format, so a
// campaign can start from "an initial corpus provided by the user"
// (Section 4) and corpora can be carried across runs.
//
// Two container formats (see DESIGN.md §11 for the layout diagram):
//
//   kLegacy ("HCOR"): magic, u32 count, then per program u32 length +
//     SerializeProg bytes. Loading re-reads the stream program by program.
//
//   kHcorp1 ("HCORP1\n\0"): a checksummed, page-aligned container built for
//     instant warm restart — a 64-byte header, a flat index of
//     {offset, length, checksum} entries, zero padding to a page boundary,
//     then the packed program payloads. Loading is a single mmap plus an
//     index scan; no per-program reads, and the page cache keeps repeat
//     restarts effectively free.
//
// LoadProgs auto-detects the format from the magic, so --corpus-in accepts
// either; --corpus-format picks what SaveProgs writes.

#ifndef SRC_FUZZ_CORPUS_IO_H_
#define SRC_FUZZ_CORPUS_IO_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/base/status.h"
#include "src/prog/prog.h"

namespace healer {

enum class CorpusFormat : uint8_t {
  kLegacy = 0,
  kHcorp1 = 1,
};

const char* CorpusFormatName(CorpusFormat format);
// Parses "legacy" / "hcorp1" (the CLI flag values).
Result<CorpusFormat> ParseCorpusFormat(const std::string& name);

Status SaveProgs(const std::string& path, const std::vector<Prog>& progs,
                 CorpusFormat format = CorpusFormat::kLegacy);

// Loads and validates programs against `target`; the container format is
// auto-detected from the file magic. Programs that fail to decode or
// validate are skipped (counted in *skipped when non-null); structural
// container damage (bad magic/checksums, truncation, overlapping or
// out-of-bounds extents) is a typed ParseError.
Result<std::vector<Prog>> LoadProgs(const std::string& path,
                                    const Target& target,
                                    size_t* skipped = nullptr);

}  // namespace healer

#endif  // SRC_FUZZ_CORPUS_IO_H_
