// Corpus persistence: save/load program sets in the wire format, so a
// campaign can start from "an initial corpus provided by the user"
// (Section 4) and corpora can be carried across runs.
//
// File format: "HCOR" magic, u32 count, then per program u32 length +
// SerializeProg bytes.

#ifndef SRC_FUZZ_CORPUS_IO_H_
#define SRC_FUZZ_CORPUS_IO_H_

#include <string>
#include <vector>

#include "src/base/status.h"
#include "src/prog/prog.h"

namespace healer {

Status SaveProgs(const std::string& path, const std::vector<Prog>& progs);

// Loads and validates programs against `target`; programs that fail to
// decode or validate are skipped (counted in *skipped when non-null).
Result<std::vector<Prog>> LoadProgs(const std::string& path,
                                    const Target& target,
                                    size_t* skipped = nullptr);

}  // namespace healer

#endif  // SRC_FUZZ_CORPUS_IO_H_
