#include "src/fuzz/arg_gen.h"

#include <algorithm>

#include "src/kernel/guest_mem.h"

namespace healer {

namespace {

// Default path candidates for filename args with no explicit candidates.
const std::vector<std::string>& DefaultPaths() {
  static const auto* paths = new std::vector<std::string>{
      "/tmp/file0", "/tmp/file1", "/tmp/file2", "/tmp/dir0",
      "/dev/custom0", "/tmp/nfsdata",
  };
  return *paths;
}

std::vector<uint8_t> StringBytes(const std::string& s) {
  std::vector<uint8_t> bytes(s.begin(), s.end());
  bytes.push_back(0);
  return bytes;
}

}  // namespace

const std::vector<uint64_t>& MagicNumbers() {
  static const auto* magics = new std::vector<uint64_t>{
      0,    1,     2,        3,         4,          7,          8,
      15,   16,    31,       32,        63,         64,         100,
      127,  128,   255,      256,       511,        512,        1000,
      1023, 1024,  4095,     4096,      8191,       8192,       65535,
      65536, 1u << 20, (1u << 20) + 1, 0x7fffffff, 0xffffffff,
      0x8000000000000000ull, 0xffffffffffffffffull,
  };
  return *magics;
}

void ResourcePool::AddCall(const Syscall& call, int call_index) {
  AddSlots(ResultSlotsOf(call), call_index);
}

void ResourcePool::AddSlots(const std::vector<ResultSlot>& slots,
                            int call_index) {
  for (const ResultSlot& slot : slots) {
    entries_.push_back(
        Entry{slot.resource, Producer{call_index, slot.slot}});
  }
}

std::vector<ResourcePool::Producer> ResourcePool::FindProducers(
    const ResourceDesc* wanted) const {
  std::vector<Producer> out;
  FindProducersInto(wanted, &out);
  return out;
}

void ResourcePool::FindProducersInto(const ResourceDesc* wanted,
                                     std::vector<Producer>* out) const {
  out->clear();
  for (const Entry& entry : entries_) {
    if (entry.resource->IsCompatibleWith(wanted)) {
      out->push_back(entry.producer);
    }
  }
}

uint64_t ArgGenerator::GenScalarValue(const Type* type) {
  switch (type->kind) {
    case TypeKind::kConst:
      return type->const_val;
    case TypeKind::kFlags: {
      if (type->flag_values.empty()) {
        return 0;
      }
      if (!type->flags_bitmask || rng_->OneIn(2)) {
        return rng_->PickOne(type->flag_values);
      }
      // OR a random subset.
      uint64_t value = 0;
      for (uint64_t flag : type->flag_values) {
        if (rng_->OneIn(3)) {
          value |= flag;
        }
      }
      return value;
    }
    case TypeKind::kInt: {
      const bool has_range = type->range_min != 0 || type->range_max != 0;
      if (has_range) {
        // Bias toward the boundaries, which is where validation bugs live.
        if (rng_->OneIn(4)) {
          return rng_->OneIn(2) ? type->range_min : type->range_max;
        }
        return rng_->InRange(type->range_min, type->range_max);
      }
      if (rng_->OneIn(2)) {
        return rng_->PickOne(MagicNumbers());
      }
      return rng_->Next() >> (rng_->Below(64));
    }
    case TypeKind::kLen:
      return 0;  // Patched by Prog::FixupLens.
    default:
      return 0;
  }
}

ArgPtr ArgGenerator::Gen(const Type* type, const ResourcePool& pool) {
  switch (type->kind) {
    case TypeKind::kInt:
    case TypeKind::kConst:
    case TypeKind::kFlags:
    case TypeKind::kLen:
      return MakeConstant(type, GenScalarValue(type), arena_);
    case TypeKind::kResource: {
      auto& producers = producers_scratch_;
      pool.FindProducersInto(type->resource, &producers);
      if (!producers.empty() && !rng_->OneIn(20)) {
        const auto& pick = producers[rng_->Below(producers.size())];
        return MakeResourceRef(type, pick.call_index, pick.slot, arena_);
      }
      // No producer (or deliberate negative test): use a special value or
      // a small arbitrary number that might collide with a live fd.
      uint64_t special = static_cast<uint64_t>(-1);
      if (type->resource != nullptr &&
          !type->resource->special_values.empty()) {
        special = rng_->PickOne(type->resource->special_values);
      }
      if (rng_->OneIn(4)) {
        special = rng_->Below(16);
      }
      return MakeResourceSpecial(type, special, arena_);
    }
    case TypeKind::kPtr: {
      if (rng_->Bernoulli(kNullPtrChance)) {
        return MakeNullPointer(type, arena_);
      }
      return MakePointer(type, Gen(type->elem, pool), arena_);
    }
    case TypeKind::kBuffer: {
      const uint64_t lo = type->buf_min;
      const uint64_t hi = std::max(type->buf_max, lo);
      uint64_t size = rng_->InRange(lo, hi);
      // Skew toward small buffers but keep the tail reachable.
      if (size > 64 && rng_->Chance(2, 3)) {
        size = rng_->InRange(lo, std::min<uint64_t>(hi, 64));
      }
      std::vector<uint8_t> data(size);
      for (auto& byte : data) {
        byte = static_cast<uint8_t>(rng_->Next());
      }
      return MakeData(type, std::move(data), arena_);
    }
    case TypeKind::kString: {
      if (!type->str_values.empty()) {
        return MakeData(type, StringBytes(rng_->PickOne(type->str_values)),
                        arena_);
      }
      std::string s;
      const uint64_t len = rng_->Below(12);
      for (uint64_t i = 0; i < len; ++i) {
        s.push_back(static_cast<char>('a' + rng_->Below(26)));
      }
      return MakeData(type, StringBytes(s), arena_);
    }
    case TypeKind::kFilename: {
      const auto& candidates =
          type->str_values.empty() ? DefaultPaths() : type->str_values;
      return MakeData(type, StringBytes(rng_->PickOne(candidates)), arena_);
    }
    case TypeKind::kVma: {
      const uint64_t pages = 1 + rng_->Below(16);
      uint64_t page = next_vma_page_;
      next_vma_page_ = (next_vma_page_ + pages + 1) % (GuestMem::kVmaPages - 64);
      if (next_vma_page_ == 0) {
        next_vma_page_ = 1;
      }
      const uint64_t addr = GuestMem::kVmaBase + page * GuestMem::kPageSize;
      return MakeVma(type, addr, pages, arena_);
    }
    case TypeKind::kArray: {
      const uint64_t count = rng_->InRange(
          type->array_min, std::max(type->array_min, type->array_max));
      std::vector<ArgPtr> inner;
      inner.reserve(count);
      for (uint64_t i = 0; i < count; ++i) {
        inner.push_back(Gen(type->array_elem, pool));
      }
      return MakeGroup(type, std::move(inner), arena_);
    }
    case TypeKind::kStruct: {
      std::vector<ArgPtr> inner;
      inner.reserve(type->fields.size());
      for (const Field& field : type->fields) {
        inner.push_back(Gen(field.type, pool));
      }
      return MakeGroup(type, std::move(inner), arena_);
    }
    case TypeKind::kUnion: {
      const int index = static_cast<int>(rng_->Below(type->fields.size()));
      return MakeUnion(
          type, index,
          Gen(type->fields[static_cast<size_t>(index)].type, pool), arena_);
    }
  }
  return MakeConstant(type, 0, arena_);
}

bool ArgMutator::Mutate(Call* call, const ResourcePool& pool) {
  // Collect mutable nodes (scratch reused across calls).
  std::vector<Arg*>& nodes = nodes_scratch_;
  nodes.clear();
  ForEachArg(*call, [&](Arg& arg) {
    if (arg.type == nullptr) {
      return;
    }
    switch (arg.type->kind) {
      case TypeKind::kConst:
      case TypeKind::kLen:
        break;  // Fixed / derived.
      default:
        nodes.push_back(&arg);
    }
  });
  if (nodes.empty()) {
    return false;
  }
  Arg* node = nodes[rng_->Below(nodes.size())];
  return MutateNode(node, pool);
}

bool ArgMutator::MutateNode(Arg* arg, const ResourcePool& pool) {
  switch (arg->kind) {
    case ArgKind::kConstant: {
      switch (rng_->Below(4)) {
        case 0:  // Bit flip.
          arg->val ^= 1ull << rng_->Below(64);
          break;
        case 1:  // Nudge.
          arg->val += rng_->OneIn(2) ? 1 : static_cast<uint64_t>(-1);
          break;
        case 2:  // Magic.
          arg->val = rng_->PickOne(MagicNumbers());
          break;
        default:  // Regenerate.
          arg->val = gen_.Gen(arg->type, pool)->val;
          break;
      }
      return true;
    }
    case ArgKind::kData: {
      if (arg->type->kind == TypeKind::kString ||
          arg->type->kind == TypeKind::kFilename) {
        ArgPtr fresh = gen_.Gen(arg->type, pool);
        arg->data = std::move(fresh->data);
        return true;
      }
      switch (rng_->Below(3)) {
        case 0: {  // Resize.
          const uint64_t hi = std::max<uint64_t>(arg->type->buf_max, 1);
          arg->data.resize(rng_->InRange(arg->type->buf_min, hi));
          break;
        }
        case 1:  // Corrupt bytes.
          if (!arg->data.empty()) {
            for (int i = 0; i < 4; ++i) {
              arg->data[rng_->Below(arg->data.size())] =
                  static_cast<uint8_t>(rng_->Next());
            }
          }
          break;
        default:  // Regenerate.
          arg->data = gen_.Gen(arg->type, pool)->data;
          break;
      }
      return true;
    }
    case ArgKind::kPointer: {
      if (arg->pointee == nullptr || rng_->OneIn(10)) {
        // Toggle nullness.
        if (arg->pointee == nullptr) {
          arg->pointee = gen_.Gen(arg->type->elem, pool);
        } else {
          arg->pointee.reset();
        }
        return true;
      }
      return MutateNode(arg->pointee.get(), pool);
    }
    case ArgKind::kResource: {
      auto& producers = producers_scratch_;
      pool.FindProducersInto(arg->type->resource, &producers);
      if (!producers.empty() && rng_->Chance(3, 4)) {
        const auto& pick = producers[rng_->Below(producers.size())];
        arg->res_ref = pick.call_index;
        arg->res_slot = pick.slot;
        arg->val = 0;
      } else {
        arg->res_ref = -1;
        arg->res_slot = 0;
        arg->val = rng_->OneIn(2) ? static_cast<uint64_t>(-1)
                                  : rng_->Below(16);
      }
      return true;
    }
    case ArgKind::kVma: {
      if (rng_->OneIn(2)) {
        arg->vma_pages = 1 + rng_->Below(16);
      } else {
        const uint64_t page = 1 + rng_->Below(GuestMem::kVmaPages - 64);
        arg->val = GuestMem::kVmaBase + page * GuestMem::kPageSize;
      }
      return true;
    }
    case ArgKind::kGroup: {
      if (arg->type->kind == TypeKind::kArray && rng_->OneIn(3)) {
        // Resize the array within bounds.
        const uint64_t count = rng_->InRange(
            arg->type->array_min,
            std::max(arg->type->array_min, arg->type->array_max));
        while (arg->inner.size() > count) {
          arg->inner.pop_back();
        }
        while (arg->inner.size() < count) {
          arg->inner.push_back(gen_.Gen(arg->type->array_elem, pool));
        }
        return true;
      }
      if (arg->inner.empty()) {
        return false;
      }
      return MutateNode(arg->inner[rng_->Below(arg->inner.size())].get(),
                        pool);
    }
    case ArgKind::kUnion: {
      const int index = static_cast<int>(rng_->Below(arg->type->fields.size()));
      arg->union_index = index;
      arg->inner.clear();
      arg->inner.push_back(
          gen_.Gen(arg->type->fields[static_cast<size_t>(index)].type, pool));
      return true;
    }
  }
  return false;
}

}  // namespace healer
