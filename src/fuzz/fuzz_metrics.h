// The fuzzing pipeline's metric handles, registered once per registry and
// shared by Fuzzer and the ParallelFuzzer workers (handles are lock-free;
// counters shard per thread, so workers never contend).
//
// Naming scheme (DESIGN.md §6): healer_<area>_<metric>[_total|_ns], areas
// fuzz / exec / vm / fault / minimize / learn / alpha / coverage / corpus /
// crash / relations. Counters end in _total, simulated-time histograms in
// _ns. The per-kind fault counters healer_fault_injected_<kind>_total are
// registered by GuestVm (src/vm/guest_vm.cc) against the same registry.

#ifndef SRC_FUZZ_FUZZ_METRICS_H_
#define SRC_FUZZ_FUZZ_METRICS_H_

#include "src/base/metrics.h"
#include "src/vm/fault_plan.h"

namespace healer {

struct FuzzMetrics {
  // Generation-vs-mutation choice; counted only when the program executed.
  Counter* generated;  // healer_fuzz_generated_total
  Counter* mutated;    // healer_fuzz_mutated_total
  Counter* seeded;     // healer_fuzz_seeded_total (initial-corpus execs)
  Counter* fuzz_execs; // healer_fuzz_execs_total = generated+mutated+seeded
  Counter* analysis_execs;  // healer_exec_analysis_total (Alg. 1/2 + repro)

  // Executor round trips under the recovery policy.
  Counter* exec_attempts;   // healer_exec_attempts_total = ok + failed
  Counter* exec_ok;         // healer_exec_ok_total
  Counter* exec_failed;     // healer_exec_failed_total
  Counter* exec_retries;    // healer_exec_retries_total
  Counter* exec_recovered;  // healer_exec_recovered_total
  Counter* exec_discarded;  // healer_exec_discarded_total
  Counter* quarantines;     // healer_vm_quarantines_total

  // Feedback processing.
  Counter* coverage_edges;    // healer_coverage_edges_total (== bitmap count)
  Counter* corpus_adds;       // healer_corpus_adds_total
  Counter* crash_reports;     // healer_crash_reports_total
  Counter* crash_new;         // healer_crash_new_total
  Counter* minimize_rounds;   // healer_minimize_rounds_total
  Counter* minimize_probes;   // healer_minimize_probes_total
  Counter* learn_rounds;      // healer_learn_rounds_total
  Counter* learn_probes;      // healer_learn_probes_total
  Counter* relations_learned; // healer_relations_learned_total
  Counter* alpha_updates;     // healer_alpha_updates_total

  // Campaign state gauges, refreshed on change / sample / snapshot.
  Gauge* coverage_branches;  // healer_coverage_branches
  Gauge* corpus_programs;    // healer_corpus_programs
  Gauge* relations_total;    // healer_relations_total
  Gauge* relations_static;   // healer_relations_static
  Gauge* relations_dynamic;  // healer_relations_dynamic
  Gauge* crashes_unique;     // healer_crashes_unique
  Gauge* alpha;              // healer_alpha
  Gauge* sim_hours;          // healer_sim_hours

  // Distributions.
  Histogram* prog_len;        // healer_prog_len
  Histogram* exec_new_edges;  // healer_exec_new_edges (gaining execs only)
  Histogram* minimize_execs;  // healer_minimize_execs (probes per round)
  Histogram* learn_execs;     // healer_learn_execs (probes per round)

  explicit FuzzMetrics(MetricRegistry* registry);

  // Recovery-side counters as a FaultStats (injected[] stays zero; callers
  // merge the VM injectors' stats on top). Keeps the legacy FaultStats
  // surface in CampaignResult/ParallelResult backed by the registry.
  FaultStats RecoveryStats() const;
};

// Contention instrumentation for the parallel mode's shared-state lock and
// batch-publish protocol. Registered only by parallel campaigns, so
// single-threaded snapshots are unchanged. The _ns histograms are host
// wall-clock (steady_clock) — parallel mode is already scheduling-dependent,
// and wall time is the quantity the lock-held-share acceptance gate needs.
struct ParallelMetrics {
  Histogram* lock_wait_ns;  // healer_parallel_lock_wait_ns
  Histogram* lock_held_ns;  // healer_parallel_lock_held_ns

  Counter* batch_publish;      // healer_parallel_batch_publish_total
  Counter* batched_execs;      // healer_parallel_batched_execs_total
  Counter* snapshot_refresh;   // healer_parallel_snapshot_refresh_total

  Gauge* wall_ns;          // healer_parallel_wall_ns (whole campaign)
  Gauge* lock_held_share;  // healer_parallel_lock_held_share
                           //   = sum(lock_held_ns) / (wall_ns * workers)

  explicit ParallelMetrics(MetricRegistry* registry);
};

}  // namespace healer

#endif  // SRC_FUZZ_FUZZ_METRICS_H_
