// Human-readable campaign reports, syz-manager-status style: coverage,
// throughput, corpus composition, learned-relation summary, and a crash
// list with reproducer lengths. When the result carries a telemetry
// snapshot (CampaignResult::telemetry), the report reads its numbers from
// the snapshot so the two can never disagree.
//
// FormatStatusLine renders the one-line live status the campaign loop
// emits every --status-period simulated seconds.

#ifndef SRC_FUZZ_REPORT_H_
#define SRC_FUZZ_REPORT_H_

#include <string>
#include <vector>

#include "src/fuzz/campaign.h"
#include "src/vm/vm_pool.h"

namespace healer {

struct ReportOptions {
  bool include_samples = false;   // Appends the full coverage curve.
  bool include_relations = false; // Appends every learned relation edge.
  // Crash-list cap: 0 suppresses the per-crash lines entirely (the unique
  // count is always printed).
  size_t max_crashes = 64;
  // Coverage-curve cap: longer curves are evenly thinned to this many
  // sample lines (endpoints kept). 0 means unlimited.
  size_t max_samples = 96;
};

// Formats `result` as a multi-line text report.
std::string FormatCampaignReport(const CampaignResult& result,
                                 const ReportOptions& options = {});

// One sampled moment of a running campaign, for the live status line.
struct StatusLineInfo {
  double hours = 0.0;        // Simulated hours elapsed.
  uint64_t execs = 0;        // Fuzzing executions so far.
  double execs_per_sec = 0;  // Simulated throughput since the last line.
  size_t coverage = 0;
  size_t corpus = 0;
  size_t relations = 0;
  size_t crashes = 0;
  size_t vms = 0;
  uint64_t failed_execs = 0;  // Infra faults surfaced so far.
  uint64_t quarantines = 0;
  // Ring-transport occupancy (healer_ring_*): drains so far, mean programs
  // per drain, stalls. All zero on the legacy shm transport.
  uint64_t ring_drains = 0;
  double ring_depth_mean = 0.0;
  uint64_t ring_stalls = 0;
  // Share of wall time SharedFuzzState::mu was held (parallel fuzzer only;
  // 0 for the single-threaded loop, where there is no shared lock).
  double lock_held_share = 0.0;
  // Per-shard fleet census (empty in the legacy pinned-pool topology).
  std::vector<FleetShardSummary> fleet;
};

// syz-manager style: "12.5h: execs 48123 (22/sec sim), cover 1234, ...".
// Ring occupancy is appended when the campaign drained at least one ring
// batch; the lock share when it is non-zero.
std::string FormatStatusLine(const StatusLineInfo& info);

// The same sample as a single-line JSON object (the /status endpoint body).
std::string FormatStatusJson(const StatusLineInfo& info);

}  // namespace healer

#endif  // SRC_FUZZ_REPORT_H_
