// Human-readable campaign reports, syz-manager-status style: coverage,
// throughput, corpus composition, learned-relation summary, and a crash
// list with reproducer lengths.

#ifndef SRC_FUZZ_REPORT_H_
#define SRC_FUZZ_REPORT_H_

#include <string>

#include "src/fuzz/campaign.h"

namespace healer {

struct ReportOptions {
  bool include_samples = false;   // Appends the full coverage curve.
  bool include_relations = false; // Appends every learned relation edge.
  size_t max_crashes = 64;
};

// Formats `result` as a multi-line text report.
std::string FormatCampaignReport(const CampaignResult& result,
                                 const ReportOptions& options = {});

}  // namespace healer

#endif  // SRC_FUZZ_REPORT_H_
