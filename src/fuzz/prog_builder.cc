#include "src/fuzz/prog_builder.h"

#include <algorithm>

namespace healer {

ProgBuilder::ProgBuilder(const Target& target, std::vector<int> enabled,
                         Rng* rng)
    : target_(target),
      enabled_(std::move(enabled)),
      enabled_mask_(target.NumSyscalls(), 0),
      rng_(rng),
      gen_(rng),
      mutator_(rng),
      slot_table_(target) {
  for (int id : enabled_) {
    enabled_mask_[static_cast<size_t>(id)] = 1;
  }
}

void ProgBuilder::set_arena(ProgArena* arena) {
  arena_ = arena;
  gen_.set_arena(arena);
  mutator_.set_arena(arena);
}

ResourcePool ProgBuilder::PoolFor(const Prog& prog, size_t upto) const {
  ResourcePool pool;
  PoolInto(prog, upto, &pool);
  return pool;
}

void ProgBuilder::PoolInto(const Prog& prog, size_t upto,
                           ResourcePool* pool) const {
  pool->Clear();
  for (size_t i = 0; i < upto && i < prog.size(); ++i) {
    pool->AddSlots(slot_table_.of(prog.calls()[i].meta->id),
                   static_cast<int>(i));
  }
}

size_t ProgBuilder::AppendCall(Prog* prog, int syscall_id, int depth) {
  if (prog->size() >= kMaxProgLen) {
    return 0;
  }
  const Syscall& meta = target_.syscall(syscall_id);
  size_t appended = 0;

  // One scratch frame per recursion depth, clear-and-refilled so storage is
  // reused across calls (recursion gives inner frames their own slot).
  FrameScratch& frame =
      frames_[depth <= kMaxProducerDepth ? depth : kMaxProducerDepth];
  ResourcePool& pool = frame.pool;

  // Satisfy unmet resource needs by prepending producers (recursively).
  if (depth < kMaxProducerDepth) {
    PoolInto(*prog, prog->size(), &pool);
    for (const ResourceDesc* wanted : meta.consumed_resources) {
      pool.FindProducersInto(wanted, &frame.found);
      if (!frame.found.empty() || rng_->OneIn(16)) {
        continue;  // Satisfied (or deliberately left dangling).
      }
      std::vector<int>& producers = frame.producers;
      producers.clear();
      for (int producer : target_.ProducersOf(wanted)) {
        if (enabled_mask_[static_cast<size_t>(producer)] != 0 &&
            producer != syscall_id) {
          producers.push_back(producer);
        }
      }
      if (producers.empty()) {
        continue;
      }
      appended += AppendCall(prog, producers[rng_->Below(producers.size())],
                             depth + 1);
      PoolInto(*prog, prog->size(), &pool);
    }
  }

  if (prog->size() >= kMaxProgLen) {
    return appended;
  }
  PoolInto(*prog, prog->size(), &pool);
  Call call;
  call.meta = &meta;
  call.args.reserve(meta.args.size());
  for (const Field& arg : meta.args) {
    call.args.push_back(gen_.Gen(arg.type, pool));
  }
  prog->calls().push_back(std::move(call));
  return appended + 1;
}

Prog ProgBuilder::Generate(const CallChooser& choose, size_t target_len) {
  Prog prog(&target_);
  // Producer insertion can push past target_len, so size for the hard cap
  // once instead of doubling through push_back.
  prog.calls().reserve(kMaxProgLen);
  target_len = std::min(target_len, kMaxProgLen);

  // Seed with a producer/consumer pair over a random resource kind.
  if (!target_.resources().empty()) {
    for (int attempt = 0; attempt < 4 && prog.empty(); ++attempt) {
      const auto& res =
          target_.resources()[rng_->Below(target_.resources().size())];
      std::vector<int>& producers = seed_producers_;
      producers.clear();
      for (int id : target_.ProducersOf(res.get())) {
        if (enabled_mask_[static_cast<size_t>(id)] != 0) {
          producers.push_back(id);
        }
      }
      std::vector<int>& consumers = seed_consumers_;
      consumers.clear();
      for (int id : enabled_) {
        if (Target::Consumes(target_.syscall(id), res.get())) {
          consumers.push_back(id);
        }
      }
      if (producers.empty() || consumers.empty()) {
        continue;
      }
      AppendCall(&prog, producers[rng_->Below(producers.size())]);
      AppendCall(&prog, consumers[rng_->Below(consumers.size())]);
    }
  }

  // Extend with guided selection.
  while (prog.size() < target_len) {
    std::vector<int>& prefix = prefix_scratch_;
    prefix.clear();
    prefix.reserve(prog.size());
    for (const Call& call : prog.calls()) {
      prefix.push_back(call.meta->id);
    }
    const int next = choose(prefix);
    if (AppendCall(&prog, next) == 0) {
      break;
    }
  }
  prog.FixupLens();
  return prog;
}

bool ProgBuilder::MutateInsert(Prog* prog, const CallChooser& choose) {
  if (prog->size() >= kMaxProgLen) {
    return false;
  }
  const size_t pos = rng_->Below(prog->size() + 1);
  std::vector<int>& prefix = prefix_scratch_;
  prefix.clear();
  prefix.reserve(pos);
  for (size_t i = 0; i < pos; ++i) {
    prefix.push_back(prog->calls()[i].meta->id);
  }
  const int chosen = choose(prefix);

  // Build the insertion (with producer chains) against the prefix only.
  Prog head(prog->target());
  head.calls().reserve(prog->size() + 4);
  for (size_t i = 0; i < pos; ++i) {
    head.calls().push_back(prog->calls()[i].CloneInto(arena_));
  }
  const size_t before = head.size();
  AppendCall(&head, chosen);
  const size_t inserted = head.size() - before;
  if (inserted == 0) {
    return false;
  }

  // Re-attach the tail, shifting resource references past the insertion.
  for (size_t i = pos; i < prog->size(); ++i) {
    Call tail_call = prog->calls()[i].CloneInto(arena_);
    ForEachArg(tail_call, [&](Arg& arg) {
      if (arg.kind == ArgKind::kResource && arg.res_ref >= 0 &&
          static_cast<size_t>(arg.res_ref) >= pos) {
        arg.res_ref += static_cast<int>(inserted);
      }
    });
    head.calls().push_back(std::move(tail_call));
  }
  head.Truncate(kMaxProgLen);
  head.FixupLens();
  *prog = std::move(head);
  return true;
}

bool ProgBuilder::MutateArgs(Prog* prog) {
  if (prog->empty()) {
    return false;
  }
  bool any = false;
  const size_t rounds = 1 + rng_->Below(3);
  for (size_t i = 0; i < rounds; ++i) {
    const size_t idx = rng_->Below(prog->size());
    PoolInto(*prog, idx, &mutate_pool_scratch_);
    any |= mutator_.Mutate(&prog->calls()[idx], mutate_pool_scratch_);
  }
  prog->FixupLens();
  return any;
}

}  // namespace healer
