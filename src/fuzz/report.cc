#include "src/fuzz/report.h"

#include "src/base/string_util.h"
#include "src/syzlang/builtin_descs.h"

namespace healer {

std::string FormatCampaignReport(const CampaignResult& result,
                                 const ReportOptions& options) {
  std::string out;
  const CampaignOptions& opts = result.options;
  out += StrFormat("=== %s on sim-linux %s, %.1f simulated hours (seed %llu) "
                   "===\n",
                   ToolKindName(opts.tool), KernelVersionName(opts.version),
                   opts.hours, (unsigned long long)opts.seed);
  out += StrFormat("coverage   : %zu branches\n", result.final_coverage);
  out += StrFormat("executions : %llu fuzzing + %llu analysis\n",
                   (unsigned long long)result.fuzz_execs,
                   (unsigned long long)(result.total_execs -
                                        result.fuzz_execs));
  out += StrFormat("corpus     : %zu programs, mean length %.2f\n",
                   result.corpus_size, result.corpus_mean_len);
  if (result.corpus_length_hist.size() == 5) {
    out += StrFormat("  lengths  : 1:%zu 2:%zu 3:%zu 4:%zu 5+:%zu\n",
                     result.corpus_length_hist[0],
                     result.corpus_length_hist[1],
                     result.corpus_length_hist[2],
                     result.corpus_length_hist[3],
                     result.corpus_length_hist[4]);
  }
  out += StrFormat("relations  : %zu total (%zu static, %zu dynamic), "
                   "alpha %.2f\n",
                   result.relations_total, result.relations_static,
                   result.relations_dynamic, result.final_alpha);

  const FaultStats& faults = result.faults;
  if (faults.TotalInjected() > 0 || faults.failed_execs > 0) {
    out += StrFormat("faults     : %llu injected (",
                     (unsigned long long)faults.TotalInjected());
    for (size_t i = 0; i < kNumFaultKinds; ++i) {
      out += StrFormat("%s%s=%llu", i == 0 ? "" : " ",
                       FaultKindName(static_cast<FaultKind>(i)),
                       (unsigned long long)faults.injected[i]);
    }
    out += ")\n";
    out += StrFormat("recovery   : %llu failed execs, %llu retries, "
                     "%llu recovered, %llu discarded, %llu quarantines\n",
                     (unsigned long long)faults.failed_execs,
                     (unsigned long long)faults.retries,
                     (unsigned long long)faults.recovered,
                     (unsigned long long)faults.discarded,
                     (unsigned long long)faults.quarantines);
  }

  out += StrFormat("crashes    : %zu unique\n", result.crashes.size());
  size_t shown = 0;
  for (const CrashRecord& crash : result.crashes) {
    if (shown++ >= options.max_crashes) {
      out += StrFormat("  ... and %zu more\n",
                       result.crashes.size() - options.max_crashes);
      break;
    }
    out += StrFormat("  [%6.2fh] %-55s repro=%zu hits=%llu\n",
                     static_cast<double>(crash.first_seen) / SimClock::kHour,
                     crash.title.c_str(), crash.shortest_repro,
                     (unsigned long long)crash.hits);
  }

  if (options.include_samples) {
    out += "coverage curve (hours, branches, execs):\n";
    for (const CoverageSample& sample : result.samples) {
      out += StrFormat("  %6.2f %8zu %10llu\n", sample.hours,
                       sample.branches, (unsigned long long)sample.execs);
    }
  }
  if (options.include_relations) {
    const Target& target = BuiltinTarget();
    out += "learned relations (from -> to, hour):\n";
    for (const RelationEdge& edge : result.relation_edges) {
      if (edge.source != RelationSource::kDynamic) {
        continue;
      }
      out += StrFormat("  %-36s -> %-36s %6.2f\n",
                       target.syscall(edge.from).name.c_str(),
                       target.syscall(edge.to).name.c_str(),
                       static_cast<double>(edge.learned_at) /
                           SimClock::kHour);
    }
  }
  return out;
}

}  // namespace healer
