#include "src/fuzz/report.h"

#include <vector>

#include "src/base/string_util.h"
#include "src/syzlang/builtin_descs.h"

namespace healer {

std::string FormatCampaignReport(const CampaignResult& result,
                                 const ReportOptions& options) {
  std::string out;
  const CampaignOptions& opts = result.options;
  // Prefer the telemetry snapshot when the campaign captured one: the report
  // then quotes the same registry the Prometheus/JSON exports come from.
  const MetricsSnapshot& t = result.telemetry;
  const bool has_telemetry = !t.empty();

  out += StrFormat("=== %s on sim-linux %s, %.1f simulated hours (seed %llu) "
                   "===\n",
                   ToolKindName(opts.tool), KernelVersionName(opts.version),
                   opts.hours, (unsigned long long)opts.seed);
  const size_t coverage = has_telemetry
                              ? static_cast<size_t>(
                                    t.gauge("healer_coverage_branches"))
                              : result.final_coverage;
  out += StrFormat("coverage   : %zu branches\n", coverage);
  const uint64_t fuzz_execs =
      has_telemetry ? t.counter("healer_fuzz_execs_total") : result.fuzz_execs;
  const uint64_t analysis_execs =
      has_telemetry ? t.counter("healer_exec_analysis_total")
                    : result.total_execs - result.fuzz_execs;
  out += StrFormat("executions : %llu fuzzing + %llu analysis\n",
                   (unsigned long long)fuzz_execs,
                   (unsigned long long)analysis_execs);
  out += StrFormat("corpus     : %zu programs, mean length %.2f\n",
                   result.corpus_size, result.corpus_mean_len);
  if (result.corpus_length_hist.size() == 5) {
    out += StrFormat("  lengths  : 1:%zu 2:%zu 3:%zu 4:%zu 5+:%zu\n",
                     result.corpus_length_hist[0],
                     result.corpus_length_hist[1],
                     result.corpus_length_hist[2],
                     result.corpus_length_hist[3],
                     result.corpus_length_hist[4]);
  }
  out += StrFormat("relations  : %zu total (%zu static, %zu dynamic), "
                   "alpha %.2f\n",
                   result.relations_total, result.relations_static,
                   result.relations_dynamic, result.final_alpha);
  if (result.relations_loaded > 0) {
    out += StrFormat("  warm-up  : %zu edges loaded from a previous "
                     "campaign\n",
                     result.relations_loaded);
  }

  const FaultStats& faults = result.faults;
  if (faults.TotalInjected() > 0 || faults.failed_execs > 0) {
    out += StrFormat("faults     : %llu injected (",
                     (unsigned long long)faults.TotalInjected());
    for (size_t i = 0; i < kNumFaultKinds; ++i) {
      out += StrFormat("%s%s=%llu", i == 0 ? "" : " ",
                       FaultKindName(static_cast<FaultKind>(i)),
                       (unsigned long long)faults.injected[i]);
    }
    out += ")\n";
    const uint64_t failed = has_telemetry
                                ? t.counter("healer_exec_failed_total")
                                : faults.failed_execs;
    const uint64_t retries = has_telemetry
                                 ? t.counter("healer_exec_retries_total")
                                 : faults.retries;
    const uint64_t recovered = has_telemetry
                                   ? t.counter("healer_exec_recovered_total")
                                   : faults.recovered;
    const uint64_t discarded = has_telemetry
                                   ? t.counter("healer_exec_discarded_total")
                                   : faults.discarded;
    const uint64_t quarantines = has_telemetry
                                     ? t.counter("healer_vm_quarantines_total")
                                     : faults.quarantines;
    out += StrFormat("recovery   : %llu failed execs, %llu retries, "
                     "%llu recovered, %llu discarded, %llu quarantines\n",
                     (unsigned long long)failed, (unsigned long long)retries,
                     (unsigned long long)recovered,
                     (unsigned long long)discarded,
                     (unsigned long long)quarantines);
  }

  out += StrFormat("crashes    : %zu unique\n", result.crashes.size());
  if (options.max_crashes > 0) {
    size_t shown = 0;
    for (const CrashRecord& crash : result.crashes) {
      if (shown >= options.max_crashes) {
        out += StrFormat("  ... and %zu more\n",
                         result.crashes.size() - shown);
        break;
      }
      ++shown;
      out += StrFormat("  [%6.2fh] %-55s repro=%zu hits=%llu\n",
                       static_cast<double>(crash.first_seen) / SimClock::kHour,
                       crash.title.c_str(), crash.shortest_repro,
                       (unsigned long long)crash.hits);
    }
  } else if (!result.crashes.empty()) {
    out += StrFormat("  (crash list suppressed, %zu records)\n",
                     result.crashes.size());
  }

  if (options.include_samples) {
    out += "coverage curve (hours, branches, execs):\n";
    const std::vector<CoverageSample>& samples = result.samples;
    const size_t cap = options.max_samples;
    if (cap == 0 || samples.size() <= cap) {
      for (const CoverageSample& sample : samples) {
        out += StrFormat("  %6.2f %8zu %10llu\n", sample.hours,
                         sample.branches, (unsigned long long)sample.execs);
      }
    } else {
      // Evenly thin the curve, always keeping the first and last samples.
      for (size_t i = 0; i < cap; ++i) {
        const size_t idx = i * (samples.size() - 1) / (cap - 1);
        const CoverageSample& sample = samples[idx];
        out += StrFormat("  %6.2f %8zu %10llu\n", sample.hours,
                         sample.branches, (unsigned long long)sample.execs);
      }
      out += StrFormat("  (%zu of %zu samples shown)\n", cap, samples.size());
    }
  }
  if (options.include_relations) {
    const Target& target = BuiltinTarget();
    out += "learned relations (from -> to, hour):\n";
    for (const RelationEdge& edge : result.relation_edges) {
      if (edge.source != RelationSource::kDynamic) {
        continue;
      }
      out += StrFormat("  %-36s -> %-36s %6.2f\n",
                       target.syscall(edge.from).name.c_str(),
                       target.syscall(edge.to).name.c_str(),
                       static_cast<double>(edge.learned_at) /
                           SimClock::kHour);
    }
  }
  return out;
}

std::string FormatStatusLine(const StatusLineInfo& info) {
  std::string out = StrFormat(
      "%6.2fh: execs %llu (%.2f/sec sim), cover %zu, corpus %zu, "
      "relations %zu, crashes %zu, vms %zu",
      info.hours, (unsigned long long)info.execs, info.execs_per_sec,
      info.coverage, info.corpus, info.relations, info.crashes, info.vms);
  if (info.failed_execs > 0 || info.quarantines > 0) {
    out += StrFormat(", faults %llu (%llu quarantined)",
                     (unsigned long long)info.failed_execs,
                     (unsigned long long)info.quarantines);
  }
  if (info.ring_drains > 0) {
    out += StrFormat(", ring %.1f/drain (%llu stalls)", info.ring_depth_mean,
                     (unsigned long long)info.ring_stalls);
  }
  if (info.lock_held_share > 0) {
    out += StrFormat(", lock %.3f", info.lock_held_share);
  }
  if (!info.fleet.empty()) {
    out += ", fleet [";
    for (size_t i = 0; i < info.fleet.size(); ++i) {
      const FleetShardSummary& s = info.fleet[i];
      if (i > 0) {
        out += " ";
      }
      out += StrFormat("s%zu r%zu/b%zu/c%zu/q%zu", s.shard, s.ready,
                       s.booting + s.cold + s.rebooting,
                       s.crashed, s.quarantined);
    }
    out += "]";
  }
  return out;
}

std::string FormatStatusJson(const StatusLineInfo& info) {
  std::string out = StrFormat(
      "{\"hours\": %.4f, \"execs\": %llu, \"execs_per_sec\": %.2f, "
      "\"coverage\": %zu, \"corpus\": %zu, \"relations\": %zu, "
      "\"crashes\": %zu, \"vms\": %zu, \"failed_execs\": %llu, "
      "\"quarantines\": %llu, \"ring_drains\": %llu, "
      "\"ring_depth_mean\": %.2f, \"ring_stalls\": %llu, "
      "\"lock_held_share\": %.4f",
      info.hours, (unsigned long long)info.execs, info.execs_per_sec,
      info.coverage, info.corpus, info.relations, info.crashes, info.vms,
      (unsigned long long)info.failed_execs,
      (unsigned long long)info.quarantines,
      (unsigned long long)info.ring_drains, info.ring_depth_mean,
      (unsigned long long)info.ring_stalls, info.lock_held_share);
  if (!info.fleet.empty()) {
    out += ", \"fleet\": [";
    for (size_t i = 0; i < info.fleet.size(); ++i) {
      const FleetShardSummary& s = info.fleet[i];
      if (i > 0) {
        out += ", ";
      }
      out += StrFormat(
          "{\"shard\": %zu, \"vms\": %zu, \"ready\": %zu, \"booting\": %zu, "
          "\"executing\": %zu, \"crashed\": %zu, \"rebooting\": %zu, "
          "\"quarantined\": %zu, \"timers_pending\": %zu, "
          "\"events_dispatched\": %llu}",
          s.shard, s.vms, s.ready, s.booting + s.cold, s.executing, s.crashed,
          s.rebooting, s.quarantined, s.timers_pending,
          (unsigned long long)s.events_dispatched);
    }
    out += "]";
  }
  out += "}";
  return out;
}

}  // namespace healer
