#include "src/fuzz/fuzzer.h"

#include <algorithm>

#include "src/base/logging.h"
#include "src/base/string_util.h"
#include "src/fuzz/moonshine.h"
#include "src/fuzz/postmortem.h"
#include "src/kernel/coverage.h"

namespace healer {

const char* ToolKindName(ToolKind tool) {
  switch (tool) {
    case ToolKind::kHealer:
      return "healer";
    case ToolKind::kHealerMinus:
      return "healer-";
    case ToolKind::kSyzkaller:
      return "syzkaller";
    case ToolKind::kMoonshine:
      return "moonshine";
  }
  return "?";
}

const char* GuidanceModeName(GuidanceMode mode) {
  switch (mode) {
    case GuidanceMode::kDefault:
      return "default";
    case GuidanceMode::kStaticOnly:
      return "static-only";
    case GuidanceMode::kFixedAlpha:
      return "fixed-alpha";
  }
  return "?";
}

const char* ExecTransportName(ExecTransport transport) {
  switch (transport) {
    case ExecTransport::kShmChannel:
      return "shm-channel";
    case ExecTransport::kRing:
      return "ring";
  }
  return "?";
}

namespace {

std::vector<int> EnabledSyscalls(const Target& target,
                                 const KernelConfig& config) {
  std::vector<int> enabled;
  for (const auto& call : target.syscalls()) {
    const SyscallDef* def = FindSyscallDef(call->name);
    if (def != nullptr && SyscallAvailable(*def, config)) {
      enabled.push_back(call->id);
    }
  }
  return enabled;
}

size_t PoolCount(const FuzzerOptions& options) {
  return options.fleet_size == 0
             ? options.num_vms
             : std::max(options.fleet_size, options.num_vms);
}

FleetOptions PoolFleet(const FuzzerOptions& options) {
  FleetOptions fleet;
  fleet.lanes = options.num_vms;
  fleet.shards = options.fleet_shards != 0
                     ? options.fleet_shards
                     : std::clamp<size_t>(PoolCount(options) / 256, 1,
                                          std::max<size_t>(options.num_vms, 1));
  return fleet;
}

}  // namespace

Fuzzer::Fuzzer(const Target& target, FuzzerOptions options)
    : target_(target),
      options_(options),
      rng_(options.seed),
      pool_(target, KernelConfig::ForVersion(options.version), &clock_,
            PoolCount(options), options.latency, options.fault_plan,
            options.seed, &metrics_, PoolFleet(options)),
      coverage_(CallCoverage::kMapBits),
      builder_(target,
               EnabledSyscalls(target,
                               KernelConfig::ForVersion(options.version)),
               &rng_),
      minimizer_(AnalysisExec()),
      learner_(nullptr, AnalysisExec(), &clock_),
      reproducer_(AnalysisExec()) {
  builder_.set_arena(&arena_);
  for (size_t i = 0; i < pool_.size(); ++i) {
    pool_.vm(i).set_journal(&journal_writer_);
  }
  if (pool_.fleet()) {
    // Single-threaded fuzzer: one producer, so the shards flush through the
    // same writer the VMs record into.
    for (size_t s = 0; s < pool_.num_shards(); ++s) {
      pool_.set_shard_journal(s, &journal_writer_);
    }
  }
  if (!options_.postmortem_dir.empty()) {
    crash_db_.set_on_new_crash(
        [this](const CrashRecord& crash) { WritePostmortem(crash); });
  }
  relations_ = std::make_unique<RelationTable>(target.NumSyscalls());
  const bool uses_relations = options_.tool == ToolKind::kHealer;
  if (uses_relations) {
    // Static learning runs once at initialization (Section 6.2).
    StaticRelationLearn(target_, relations_.get());
    // One summary record stands in for the per-edge stream: static edges
    // are description-derived, not observed, so per-pair provenance is
    // the descriptions themselves.
    journal_writer_.Record(JournalKind::kRelationLearned, clock_.now(),
                           relations_->Count(), 0, relations_->epoch(),
                           "static");
  }
  selector_ = std::make_unique<CallSelector>(relations_.get(),
                                             builder_.enabled(), &rng_);
  if (options_.tool == ToolKind::kSyzkaller ||
      options_.tool == ToolKind::kMoonshine) {
    choice_table_ = std::make_unique<ChoiceTable>(target_, builder_.enabled());
  }
  learner_ = DynamicLearner(relations_.get(), AnalysisExec(), &clock_);
  if (options_.tool == ToolKind::kMoonshine) {
    LoadMoonshineSeeds();
  }
  journal_writer_.Flush();
}

ExecFn Fuzzer::AnalysisExec() {
  // Analysis runs (minimization / dynamic learning) execute on the VM fleet
  // and consume simulated time, but do not merge into campaign coverage.
  // They go through the same recovery policy as fuzzing executions; a
  // still-failed result reaches the minimizer/learner as a typed failure,
  // which both treat as "no information".
  return [this](const Prog& prog) {
    m_.analysis_execs->Add();
    return ExecWithRecovery(prog, nullptr);
  };
}

GuestVm* Fuzzer::AcquireFuzzVm(size_t* lane) {
  if (!pool_.fleet()) {
    *lane = 0;
    return &pool_.Next();
  }
  *lane = next_lane_;
  next_lane_ = (next_lane_ + 1) % pool_.num_lanes();
  GuestVm* vm = pool_.AcquireReady(*lane);
  // All fleet guests share the fuzzer's single-producer writer (the
  // fuzzing loop is one thread, and it is the only pumper too).
  vm->set_journal(&journal_writer_);
  return vm;
}

void Fuzzer::ReleaseFuzzVm(size_t lane, GuestVm* vm) {
  if (pool_.fleet()) {
    pool_.Release(lane, vm);
  }
}

ExecResult Fuzzer::ExecWithRecovery(const Prog& prog, Bitmap* coverage) {
  HEALER_TRACE_SPAN(&trace_, &clock_, "exec", "vm");
  SimClock::Nanos backoff = options_.recovery.backoff;
  int attempt = 0;
  while (true) {
    size_t lane = 0;
    GuestVm* vm_ptr = AcquireFuzzVm(&lane);
    GuestVm& vm = *vm_ptr;
    m_.exec_attempts->Add();
    ExecResult result = options_.transport == ExecTransport::kRing
                            ? vm.ExecRingOne(prog, coverage)
                            : vm.Exec(prog, coverage);
    if (!result.Failed()) {
      ReleaseFuzzVm(lane, vm_ptr);
      m_.exec_ok->Add();
      if (attempt > 0) {
        m_.exec_recovered->Add();
        // Payload: a = retries it took, b = program length.
        journal_writer_.Record(JournalKind::kRecovery, clock_.now(),
                               static_cast<uint64_t>(attempt), prog.size());
      }
      return result;
    }
    m_.exec_failed->Add();
    // Payload: a = attempt index, b = program length.
    journal_writer_.Record(JournalKind::kFault, clock_.now(),
                           static_cast<uint64_t>(attempt), prog.size(), 0,
                           ExecFailureName(result.failure));
    if (vm.consecutive_failures() >= options_.recovery.quarantine_threshold) {
      vm.QuarantineReboot();
      m_.quarantines->Add();
      HEALER_TRACE_INSTANT(&trace_, &clock_, "quarantine", "fault");
    }
    ReleaseFuzzVm(lane, vm_ptr);
    if (attempt >= options_.recovery.max_retries) {
      m_.exec_discarded->Add();
      return result;
    }
    ++attempt;
    m_.exec_retries->Add();
    clock_.Advance(backoff);
    backoff *= 2;
  }
}

FaultStats Fuzzer::fault_stats() const {
  FaultStats stats = pool_.InjectedStats();
  stats.Merge(m_.RecoveryStats());
  return stats;
}

void Fuzzer::RefreshGauges() {
  m_.coverage_branches->Set(static_cast<double>(coverage_.Count()));
  m_.corpus_programs->Set(static_cast<double>(corpus_.size()));
  m_.relations_total->Set(static_cast<double>(relations_->Count()));
  m_.relations_static->Set(static_cast<double>(
      relations_->CountBySource(RelationSource::kStatic)));
  m_.relations_dynamic->Set(static_cast<double>(
      relations_->CountBySource(RelationSource::kDynamic)));
  m_.crashes_unique->Set(static_cast<double>(crash_db_.UniqueBugs()));
  m_.alpha->Set(options_.guidance == GuidanceMode::kFixedAlpha
                    ? options_.fixed_alpha
                    : alpha_.alpha());
  m_.sim_hours->Set(static_cast<double>(clock_.now()) /
                    static_cast<double>(SimClock::kHour));
}

CallChooser Fuzzer::MakeChooser(bool* used_table) {
  switch (options_.tool) {
    case ToolKind::kHealer:
      return [this, used_table](const std::vector<int>& prefix) {
        const double alpha = options_.guidance == GuidanceMode::kFixedAlpha
                                 ? options_.fixed_alpha
                                 : alpha_.alpha();
        bool used = false;
        const int pick = selector_->Select(prefix, alpha, &used);
        *used_table |= used;
        return pick;
      };
    case ToolKind::kHealerMinus:
      return [this](const std::vector<int>&) {
        return selector_->RandomCall();
      };
    case ToolKind::kSyzkaller:
    case ToolKind::kMoonshine:
      return [this](const std::vector<int>& prefix) {
        return choice_table_->Choose(&rng_,
                                     prefix.empty() ? -1 : prefix.back());
      };
  }
  return [this](const std::vector<int>&) { return selector_->RandomCall(); };
}

void Fuzzer::LoadMoonshineSeeds() {
  Rng seed_rng(options_.seed ^ 0x5eedULL);
  SeedWith(MoonshineSeeds(target_, builder_.enabled(),
                          options_.moonshine_traces, &seed_rng));
}

void Fuzzer::SeedWith(const std::vector<Prog>& seeds) {
  for (const Prog& seed : seeds) {
    if (seed.empty() || !seed.Validate().ok()) {
      continue;
    }
    const ExecResult result = ExecWithRecovery(seed, &coverage_);
    ++fuzz_execs_;
    m_.fuzz_execs->Add();
    m_.seeded->Add();
    m_.prog_len->Observe(seed.size());
    journal_writer_.Record(JournalKind::kExec, clock_.now(), fuzz_execs_,
                           result.TotalNewEdges(), seed.size(),
                           result.Failed() ? ExecFailureName(result.failure)
                                           : "");
    if (result.Failed()) {
      journal_writer_.Flush();
      continue;  // Retry budget exhausted: the seed's feedback is discarded.
    }
    m_.coverage_edges->Add(result.TotalNewEdges());
    if (result.TotalNewEdges() > 0) {
      m_.exec_new_edges->Observe(result.TotalNewEdges());
    }
    ProcessFeedback(seed, result);
    journal_writer_.Flush();
  }
}

Result<size_t> Fuzzer::LoadRelations(const std::string& path) {
  return relations_->LoadFromFile(path, target_);
}

Status Fuzzer::SaveRelations(const std::string& path) const {
  return relations_->SaveToFile(path, target_);
}

void Fuzzer::Step() {
  // Everything from the previous iteration is dead: reclaim all candidate
  // nodes at once. `prog` below (and anything the builder creates) lives in
  // the arena until the next Step.
  arena_.Reset();
  bool used_table = false;
  CallChooser chooser = MakeChooser(&used_table);

  Prog prog(&target_);
  const bool generate = corpus_.empty() || rng_.Chance(2, 5);
  if (generate) {
    const size_t len =
        rng_.InRange(options_.gen_len_min, options_.gen_len_max);
    prog = builder_.Generate(chooser, len);
  } else {
    prog = corpus_.Choose(&rng_).CloneInto(&arena_);
    // Insertion first (call selection is where guidance acts), then
    // parameter mutation.
    if (rng_.Chance(7, 10)) {
      builder_.MutateInsert(&prog, chooser);
    }
    if (rng_.Chance(6, 10)) {
      builder_.MutateArgs(&prog);
    }
  }
  if (prog.empty()) {
    return;
  }

  const ExecResult result = ExecWithRecovery(prog, &coverage_);
  ++fuzz_execs_;
  m_.fuzz_execs->Add();
  (generate ? m_.generated : m_.mutated)->Add();
  m_.prog_len->Observe(prog.size());
  // Payload: a = fuzz-exec index, b = new edges, c = program length; a
  // still-failed execution carries its failure kind in `detail`.
  journal_writer_.Record(JournalKind::kExec, clock_.now(), fuzz_execs_,
                         result.TotalNewEdges(), prog.size(),
                         result.Failed() ? ExecFailureName(result.failure)
                                         : "");
  if (result.Failed()) {
    // Never merge partial feedback from a faulted execution: no coverage
    // was recorded (the VM guarantees that), no alpha update, no corpus or
    // relation learning.
    journal_writer_.Flush();
    return;
  }

  const bool gained = result.TotalNewEdges() > 0;
  m_.coverage_edges->Add(result.TotalNewEdges());
  if (gained) {
    m_.exec_new_edges->Observe(result.TotalNewEdges());
  }
  if (options_.tool == ToolKind::kHealer) {
    alpha_.Record(used_table, gained);
    if (alpha_.updates() != last_alpha_updates_) {
      last_alpha_updates_ = alpha_.updates();
      m_.alpha_updates->Add();
      m_.alpha->Set(alpha_.alpha());
      HEALER_TRACE_INSTANT(&trace_, &clock_, "alpha-update", "alpha");
    }
  }
  ProcessFeedback(prog, result);
  journal_writer_.Flush();
}

void Fuzzer::ProcessFeedback(const Prog& prog, const ExecResult& result) {
  current_prog_ = &prog;
  if (result.Crashed()) {
    m_.crash_reports->Add();
    // Payload: a = bug id, b = fuzz-exec index, c = crashing call index.
    journal_writer_.Record(JournalKind::kCrash, clock_.now(),
                           static_cast<uint64_t>(result.crash->bug),
                           fuzz_execs_, result.crash->call_index,
                           result.crash->title);
    // Publish the staged records so a postmortem bundle written by the
    // on_new_crash hook sees this crash (and everything before it).
    journal_writer_.Flush();
    const bool is_new =
        crash_db_.Record(result.crash->bug, result.crash->title, clock_.now(),
                         fuzz_execs_, result.crash->call_index + 1);
    // For newly found bugs, extract the smallest reproducer (Section 4's
    // crash reproduction component). The extra executions run on the VM
    // fleet and consume simulated time like any other analysis.
    if (is_new) {
      m_.crash_new->Add();
      HEALER_TRACE_INSTANT(&trace_, &clock_, "new-crash", "crash");
      std::optional<CrashRepro> repro =
          reproducer_.Minimize(prog, result.crash->bug);
      if (repro.has_value()) {
        crash_db_.Record(result.crash->bug, result.crash->title, clock_.now(),
                         fuzz_execs_, repro->prog.size());
        auto bundle_it = bundle_dirs_.find(result.crash->bug);
        if (bundle_it != bundle_dirs_.end()) {
          WritePostmortemRepro(bundle_it->second,
                               repro->prog.ToString() + "\n");
        }
        repros_.emplace(result.crash->bug, std::move(repro->prog));
      }
    }
  }
  if (result.TotalNewEdges() == 0) {
    current_prog_ = nullptr;
    return;
  }
  // Minimize, then learn relations from / archive each minimal sequence.
  const uint64_t min_before = minimizer_.execs_used();
  std::vector<MinimizedSeq> minimized;
  {
    HEALER_TRACE_SPAN(&trace_, &clock_, "minimize", "analysis");
    minimized = minimizer_.Minimize(prog, result);
  }
  m_.minimize_rounds->Add();
  const uint64_t min_probes = minimizer_.execs_used() - min_before;
  m_.minimize_probes->Add(min_probes);
  m_.minimize_execs->Observe(min_probes);
  for (MinimizedSeq& seq : minimized) {
    if (options_.tool == ToolKind::kHealer &&
        options_.guidance != GuidanceMode::kStaticOnly) {
      const uint64_t learn_before = learner_.execs_used();
      // LearnInto + Apply instead of Learn: the staged delta is the only
      // point where per-edge provenance (the observed pair, its epoch) is
      // still visible, so the journal records are cut from it. The probe
      // stream and the applied edges are identical to Learn().
      RelationDelta delta;
      size_t staged = 0;
      {
        HEALER_TRACE_SPAN(&trace_, &clock_, "learn", "analysis");
        staged = learner_.LearnInto(seq.prog, &delta);
      }
      m_.learn_rounds->Add();
      const uint64_t learn_probes = learner_.execs_used() - learn_before;
      m_.learn_probes->Add(learn_probes);
      m_.learn_execs->Observe(learn_probes);
      if (staged > 0) {
        const size_t learned = relations_->Apply(delta);
        for (const RelationEdge& edge : delta.edges()) {
          // Payload: a = influencing call, b = influenced call, c = the
          // epoch that published the edge; detail names the pair.
          journal_writer_.Record(
              JournalKind::kRelationLearned, edge.learned_at,
              static_cast<uint64_t>(edge.from),
              static_cast<uint64_t>(edge.to), relations_->epoch(),
              StrFormat("%s->%s", target_.syscall(edge.from).name.c_str(),
                        target_.syscall(edge.to).name.c_str()));
        }
        if (learned > 0) {
          m_.relations_learned->Add(learned);
          HEALER_TRACE_INSTANT(&trace_, &clock_, "relation-learned", "learn");
        }
      }
    }
    if (choice_table_ != nullptr && seq.prog.size() >= 2) {
      for (size_t i = 1; i < seq.prog.size(); ++i) {
        choice_table_->NoteAdjacent(seq.prog.calls()[i - 1].meta->id,
                                    seq.prog.calls()[i].meta->id);
      }
      if (++adjacency_notes_ % 32 == 0) {
        choice_table_->Rebuild();
      }
    }
    const uint32_t prio =
        std::max<uint32_t>(1, result.TotalNewEdges());
    // Payload: a = admitted length, b = priority, c = corpus size after.
    const uint64_t admitted_len = seq.prog.size();
    corpus_.Add(std::move(seq.prog), prio);
    m_.corpus_adds->Add();
    journal_writer_.Record(JournalKind::kCorpusAdd, clock_.now(),
                           admitted_len, prio, corpus_.size());
  }
  current_prog_ = nullptr;
}

void Fuzzer::WritePostmortem(const CrashRecord& crash) {
  PostmortemBundle bundle;
  bundle.crash = crash;
  bundle.seed = options_.seed;
  bundle.tool = ToolKindName(options_.tool);
  bundle.transport = ExecTransportName(options_.transport);
  if (current_prog_ != nullptr) {
    bundle.program_text = current_prog_->ToString() + "\n";
  }
  bundle.journal_window = journal_.Tail(kPostmortemJournalWindow);
  RefreshGauges();
  bundle.metrics = metrics_.Snapshot();
  for (size_t i = 0; i < pool_.size(); ++i) {
    bundle.rings.push_back(pool_.vm(i).ring_occupancy());
  }
  bundle.relation_epoch = relations_->epoch();
  bundle.relation_edges = relations_->Count();
  bundle.relation_static =
      relations_->CountBySource(RelationSource::kStatic);
  bundle.relation_dynamic =
      relations_->CountBySource(RelationSource::kDynamic);
  bundle.relation_backlog = 0;  // Single-threaded: deltas apply in place.
  Result<std::string> written =
      WritePostmortemBundle(options_.postmortem_dir, bundle);
  if (written.ok()) {
    bundle_dirs_[crash.bug] = *written;
  } else {
    LOG_WARNING << "postmortem bundle for bug "
                << static_cast<int>(crash.bug)
                << " not written: " << written.status().ToString();
  }
}

const Prog* Fuzzer::ReproFor(BugId bug) const {
  auto it = repros_.find(bug);
  return it == repros_.end() ? nullptr : &it->second;
}

}  // namespace healer
