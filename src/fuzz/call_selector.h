// Guided call selection (Algorithm 3) with the adaptive exploitation
// parameter α: with probability 1-α a call is picked uniformly at random;
// otherwise candidates are weighted by how many calls of the preceding
// sub-sequence influence them according to the relation table. α is
// re-estimated every 1024 executed test cases from the relative
// new-coverage return of table-guided vs random selections.
//
// Select runs against the table's immutable RelationSnapshot (CSR rows):
// the steady-state hot path performs no mutex acquisition (one relaxed
// epoch probe per pick) and no heap allocation (the candidate accumulator
// is a flat epoch-stamped count array — the CallCoverage::Reset trick — and
// the pick buffers are reserved once in the constructor). Candidates are
// ranked in ascending syscall-id order, so picks are draw-for-draw
// identical to the original std::map-based implementation.

#ifndef SRC_FUZZ_CALL_SELECTOR_H_
#define SRC_FUZZ_CALL_SELECTOR_H_

#include <memory>
#include <vector>

#include "src/base/rng.h"
#include "src/fuzz/relation_table.h"

namespace healer {

class AlphaSchedule {
 public:
  static constexpr uint64_t kWindow = 1024;
  static constexpr double kInitial = 0.5;
  static constexpr double kMin = 0.2;
  static constexpr double kMax = 0.95;

  double alpha() const { return alpha_; }

  // Records the outcome of one executed test case: whether its call
  // selection used the relation table, and whether it yielded new coverage.
  void Record(bool used_table, bool gained_coverage);

  uint64_t updates() const { return updates_; }

 private:
  double alpha_ = kInitial;
  uint64_t execs_in_window_ = 0;
  uint64_t table_execs_ = 0;
  uint64_t table_gains_ = 0;
  uint64_t random_execs_ = 0;
  uint64_t random_gains_ = 0;
  uint64_t updates_ = 0;
};

class CallSelector {
 public:
  // `enabled` lists the syscall ids available in the kernel under test.
  CallSelector(const RelationTable* table, std::vector<int> enabled,
               Rng* rng);

  // Algorithm 3: selects the call to place after sub-sequence `prefix`
  // (syscall ids). Sets *used_table to whether the relation table drove the
  // pick (feeds the α schedule). When `alpha` < rand or no candidate has a
  // relation, falls back to a uniformly random enabled call.
  int Select(const std::vector<int>& prefix, double alpha, bool* used_table);

  // Uniformly random enabled call.
  int RandomCall();

 private:
  // Cached snapshot, refreshed only when the table's epoch moved.
  const RelationSnapshot& Snap();

  const RelationTable* table_;
  std::vector<int> enabled_;
  std::vector<uint8_t> enabled_mask_;
  Rng* rng_;

  std::shared_ptr<const RelationSnapshot> snapshot_;
  uint64_t snapshot_epoch_ = ~0ULL;

  // Flat epoch-stamped candidate accumulator: cand_count_[j] is valid iff
  // cand_stamp_[j] == pick_epoch_, so arming a new pick is one increment
  // instead of a map rebuild.
  std::vector<uint32_t> cand_count_;
  std::vector<uint64_t> cand_stamp_;
  uint64_t pick_epoch_ = 0;
  std::vector<int> cand_calls_;
  std::vector<uint64_t> cand_weights_;
};

}  // namespace healer

#endif  // SRC_FUZZ_CALL_SELECTOR_H_
