// Crash reproduction (Section 4): "HEALER's crash reproduction component
// will try to extract the smallest test case that can trigger the crash".
//
// Greedy delta-debugging over the crashing program: repeatedly remove calls
// whose removal preserves the *same* bug id, then canonicalize. The result
// is the shortest reproducer the fuzzer reports (Table 4's "Length to
// Reproduce" column).

#ifndef SRC_FUZZ_REPRO_H_
#define SRC_FUZZ_REPRO_H_

#include <optional>

#include "src/fuzz/minimizer.h"

namespace healer {

struct CrashRepro {
  Prog prog;
  BugId bug;
  // Executions spent minimizing.
  uint64_t execs = 0;
};

class CrashReproducer {
 public:
  explicit CrashReproducer(ExecFn exec) : exec_(std::move(exec)) {}

  // Minimizes `prog` (which crashed with `bug`) to a smallest program that
  // still triggers the same bug. Returns nullopt if the crash does not
  // reproduce at all (flaky in a real kernel; impossible in SimKernel
  // unless the program was already altered).
  std::optional<CrashRepro> Minimize(const Prog& prog, BugId bug);

 private:
  ExecFn exec_;
};

}  // namespace healer

#endif  // SRC_FUZZ_REPRO_H_
