// The fuzzing loop, parameterized by tool:
//
//   kHealer      — relation learning + guided selection (the paper's system)
//   kHealerMinus — HEALER with relation learning disabled (ablation)
//   kSyzkaller   — choice-table guided baseline
//   kMoonshine   — Syzkaller + distilled initial seeds
//
// All tools share the executor substrate, parameter synthesis, corpus
// policy and minimization, so measured differences isolate call-selection
// strategy — the experimental design of Section 6.

#ifndef SRC_FUZZ_FUZZER_H_
#define SRC_FUZZ_FUZZER_H_

#include <map>
#include <memory>

#include "src/base/bitmap.h"
#include "src/base/journal.h"
#include "src/base/metrics.h"
#include "src/base/trace.h"
#include "src/fuzz/call_selector.h"
#include "src/fuzz/choice_table.h"
#include "src/fuzz/corpus.h"
#include "src/fuzz/crash_db.h"
#include "src/fuzz/fuzz_metrics.h"
#include "src/fuzz/learner.h"
#include "src/fuzz/minimizer.h"
#include "src/fuzz/prog_builder.h"
#include "src/fuzz/relation_table.h"
#include "src/fuzz/repro.h"
#include "src/prog/arena.h"
#include "src/vm/vm_pool.h"

namespace healer {

enum class ToolKind {
  kHealer,
  kHealerMinus,
  kSyzkaller,
  kMoonshine,
};

const char* ToolKindName(ToolKind tool);

// Ablation hooks for HEALER's guidance (bench_ablation_guidance):
//   kDefault    — static + dynamic learning, adaptive alpha (the paper)
//   kStaticOnly — dynamic learning disabled; only description-derived edges
//   kFixedAlpha — full learning but alpha pinned to `fixed_alpha`
enum class GuidanceMode {
  kDefault,
  kStaticOnly,
  kFixedAlpha,
};

const char* GuidanceModeName(GuidanceMode mode);

// Which fuzzer <-> executor transport executions travel through. For a
// fixed seed the ring transport is draw-identical to the legacy channel
// (same per-program fault stream, same feedback, same archive decisions);
// the differential tests pin that equivalence.
enum class ExecTransport : uint8_t {
  kShmChannel = 0,  // Legacy one-program-at-a-time handshake.
  kRing,            // Paired SQ/CQ rings (exec_ring.h), batched submit.
};

const char* ExecTransportName(ExecTransport transport);

struct FuzzerOptions {
  ToolKind tool = ToolKind::kHealer;
  KernelVersion version = KernelVersion::kV5_11;
  uint64_t seed = 1;
  size_t num_vms = 2;
  VmLatencyModel latency;
  // Number of synthesized traces for Moonshine's distillation.
  size_t moonshine_traces = 64;
  // Generated program length is drawn from [min, max].
  size_t gen_len_min = 4;
  size_t gen_len_max = 14;
  // HEALER guidance ablation (ignored by the other tools).
  GuidanceMode guidance = GuidanceMode::kDefault;
  double fixed_alpha = 0.8;
  // Deterministic fault injection (empty = no faults) and the policy for
  // surviving it; see fault_plan.h.
  FaultPlan fault_plan;
  RecoveryPolicy recovery;
  // Transport executions travel through (see ExecTransport).
  ExecTransport transport = ExecTransport::kShmChannel;
  // Span-trace ring capacity (0 disables tracing entirely; recording then
  // costs one predicted branch per span, no lock).
  size_t trace_capacity = 0;
  // Flight-recorder ring capacity (0 disables journaling). On by default:
  // recording is a vector push into a private buffer, drained in batches,
  // and the check.sh overhead guard covers it.
  size_t journal_capacity = 4096;
  // When non-empty, each unique crash writes a postmortem bundle directory
  // here (see postmortem.h for the layout).
  std::string postmortem_dir;
  // Total simulated guests. 0 (or == num_vms) keeps the legacy pinned pool
  // — draw-identical to the historical fuzzer. A larger value builds a
  // reactor fleet with num_vms lanes: executions rotate over the lanes and
  // crashed guests reboot on EventLoop timers instead of charging the next
  // execution (see vm_pool.h).
  size_t fleet_size = 0;
  // Reactor shards for fleet mode. 0 = auto (fleet_size / 256, clamped to
  // [1, num_vms]).
  size_t fleet_shards = 0;
};

class Fuzzer {
 public:
  Fuzzer(const Target& target, FuzzerOptions options);

  // One fuzzing iteration: pick generate-or-mutate, execute, process
  // feedback (crash triage, minimization, relation learning, corpus).
  void Step();

  // Executes user-provided seed programs and archives the interesting ones
  // ("the user can optionally provide an initial corpus", Section 4).
  void SeedWith(const std::vector<Prog>& seeds);

  // Relation persistence: warm-starts the table from a previous campaign's
  // saved edges (loaded as dynamic edges at time 0; returns how many were
  // new), and saves the current table for the next campaign.
  Result<size_t> LoadRelations(const std::string& path);
  Status SaveRelations(const std::string& path) const;

  // ---- state accessors ----
  SimClock& clock() { return clock_; }
  size_t CoverageCount() const { return coverage_.Count(); }
  const Bitmap& coverage() const { return coverage_; }
  uint64_t FuzzExecs() const { return fuzz_execs_; }
  uint64_t TotalExecs() const { return pool_.TotalExecs(); }
  const RelationTable& relations() const { return *relations_; }
  const Corpus& corpus() const { return corpus_; }
  const CrashDb& crashes() const { return crash_db_; }
  double alpha() const { return alpha_.alpha(); }
  VmPool& pool() { return pool_; }
  const FuzzerOptions& options() const { return options_; }
  // Mutable state access for the sharded-campaign gossip layer (shard.h):
  // a FuzzShard imports peer deltas — relation edges via Apply(), coverage
  // words via OrWord(), seed programs via Corpus::Add — between Step()
  // batches. Single-threaded like everything else here: callers must not
  // mutate while Step() is running.
  RelationTable* mutable_relations() { return relations_.get(); }
  Bitmap* mutable_coverage() { return &coverage_; }
  Corpus* mutable_corpus() { return &corpus_; }

  // Minimized reproducer for a found bug, nullptr when unknown.
  const Prog* ReproFor(BugId bug) const;
  // Injected-fault counters (from the VM injectors) merged with the
  // recovery-side counters (retries, recoveries, quarantines, discards).
  FaultStats fault_stats() const;

  // ---- telemetry ----
  MetricRegistry& metrics() { return metrics_; }
  const MetricRegistry& metrics() const { return metrics_; }
  TraceBuffer& trace() { return trace_; }
  Journal& journal() { return journal_; }
  const Journal& journal() const { return journal_; }
  // Pushes the derived campaign-state gauges (coverage, corpus size,
  // relation counts, alpha, simulated hours) into the registry. Call before
  // snapshotting; counters and histograms are always current.
  void RefreshGauges();

 private:
  CallChooser MakeChooser(bool* used_table);
  ExecFn AnalysisExec();
  // Executes `prog` under the recovery policy: bounded retry with
  // exponential backoff across the pool, quarantine-rebooting VMs whose
  // consecutive-failure streak crosses the threshold. Returns the last
  // attempt's result; a still-failed result means the program's feedback
  // must be discarded.
  ExecResult ExecWithRecovery(const Prog& prog, Bitmap* coverage);
  void ProcessFeedback(const Prog& prog, const ExecResult& result);
  void LoadMoonshineSeeds();
  // CrashDb on_new_crash hook target: assembles and writes one postmortem
  // bundle for a previously-unseen bug (see postmortem.h).
  void WritePostmortem(const CrashRecord& crash);

  // VM checkout for one execution attempt. Legacy topology: the historical
  // health-skipping round robin (pool_.Next()) and a no-op release. Fleet
  // topology: pops a ready guest from the next lane (pumping the lane's
  // reactor shard when dry) and returns it to the freelist — or parks it
  // for an async reboot — afterwards.
  GuestVm* AcquireFuzzVm(size_t* lane);
  void ReleaseFuzzVm(size_t lane, GuestVm* vm);

  const Target& target_;
  FuzzerOptions options_;
  Rng rng_;
  SimClock clock_;
  // Declared before pool_: the VMs register their handles in metrics_.
  MetricRegistry metrics_;
  TraceBuffer trace_{options_.trace_capacity};
  Journal journal_{options_.journal_capacity};
  // The single fuzzing thread is the journal's one producer; the VMs share
  // this writer (set_journal) and it is flushed at the end of each Step.
  JournalWriter journal_writer_{&journal_, 0};
  FuzzMetrics m_{&metrics_};
  VmPool pool_;
  Bitmap coverage_;
  Corpus corpus_;
  CrashDb crash_db_;
  std::unique_ptr<RelationTable> relations_;
  std::unique_ptr<CallSelector> selector_;
  std::unique_ptr<ChoiceTable> choice_table_;
  // Region allocator for Step-scoped candidate programs; reset at the top
  // of every Step. Declared before builder_ (which borrows it) so the
  // builder is torn down first. Programs that survive into the corpus are
  // heap clones produced by the minimizer.
  ProgArena arena_;
  ProgBuilder builder_;
  Minimizer minimizer_;
  DynamicLearner learner_;
  CrashReproducer reproducer_;
  AlphaSchedule alpha_;
  std::map<BugId, Prog> repros_;
  // Bundle directories written per bug, so minimized reproducers can be
  // appended once minimization finishes.
  std::map<BugId, std::string> bundle_dirs_;
  // The program whose feedback is being processed; postmortem context for
  // the CrashDb hook (valid only inside ProcessFeedback).
  const Prog* current_prog_ = nullptr;
  uint64_t fuzz_execs_ = 0;
  uint64_t adjacency_notes_ = 0;
  uint64_t last_alpha_updates_ = 0;
  size_t next_lane_ = 0;  // Fleet-mode lane rotation.
};

}  // namespace healer

#endif  // SRC_FUZZ_FUZZER_H_
