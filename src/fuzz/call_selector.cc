#include "src/fuzz/call_selector.h"

#include <algorithm>
#include <map>

namespace healer {

void AlphaSchedule::Record(bool used_table, bool gained_coverage) {
  if (used_table) {
    ++table_execs_;
    table_gains_ += gained_coverage ? 1 : 0;
  } else {
    ++random_execs_;
    random_gains_ += gained_coverage ? 1 : 0;
  }
  if (++execs_in_window_ < kWindow) {
    return;
  }
  // Rate of return of table-guided selection relative to random selection.
  const double table_rate =
      table_execs_ == 0 ? 0.0
                        : static_cast<double>(table_gains_) /
                              static_cast<double>(table_execs_);
  const double random_rate =
      random_execs_ == 0 ? 0.0
                         : static_cast<double>(random_gains_) /
                               static_cast<double>(random_execs_);
  if (table_rate + random_rate > 0.0) {
    alpha_ = table_rate / (table_rate + random_rate);
    alpha_ = std::clamp(alpha_, kMin, kMax);
  }
  ++updates_;
  execs_in_window_ = 0;
  table_execs_ = table_gains_ = 0;
  random_execs_ = random_gains_ = 0;
}

int CallSelector::RandomCall() {
  return enabled_[rng_->Below(enabled_.size())];
}

int CallSelector::Select(const std::vector<int>& prefix, double alpha,
                         bool* used_table) {
  *used_table = false;
  // Line 1-2: random selection with probability 1-α.
  if (prefix.empty() || !rng_->Bernoulli(alpha)) {
    return RandomCall();
  }
  if (enabled_mask_.empty()) {
    enabled_mask_.resize(table_->n(), 0);
    for (int id : enabled_) {
      enabled_mask_[static_cast<size_t>(id)] = 1;
    }
  }
  // Lines 3-7: candidate map M[c_j] = |{c_i in S : R[i][j] = 1}|.
  std::map<int, uint64_t> candidates;
  for (int ci : prefix) {
    for (int cj : table_->InfluencedBy(ci)) {
      if (enabled_mask_[static_cast<size_t>(cj)] != 0) {
        ++candidates[cj];
      }
    }
  }
  // Lines 8-9: no information -> random.
  if (candidates.empty()) {
    return RandomCall();
  }
  // Lines 10-11: weighted random pick.
  *used_table = true;
  std::vector<int> calls;
  std::vector<uint64_t> weights;
  calls.reserve(candidates.size());
  weights.reserve(candidates.size());
  for (const auto& [call, weight] : candidates) {
    calls.push_back(call);
    weights.push_back(weight);
  }
  return calls[rng_->WeightedPick(weights)];
}

}  // namespace healer
