#include "src/fuzz/call_selector.h"

#include <algorithm>

namespace healer {

void AlphaSchedule::Record(bool used_table, bool gained_coverage) {
  if (used_table) {
    ++table_execs_;
    table_gains_ += gained_coverage ? 1 : 0;
  } else {
    ++random_execs_;
    random_gains_ += gained_coverage ? 1 : 0;
  }
  if (++execs_in_window_ < kWindow) {
    return;
  }
  // Rate of return of table-guided selection relative to random selection.
  const double table_rate =
      table_execs_ == 0 ? 0.0
                        : static_cast<double>(table_gains_) /
                              static_cast<double>(table_execs_);
  const double random_rate =
      random_execs_ == 0 ? 0.0
                         : static_cast<double>(random_gains_) /
                               static_cast<double>(random_execs_);
  if (table_rate + random_rate > 0.0) {
    alpha_ = table_rate / (table_rate + random_rate);
    alpha_ = std::clamp(alpha_, kMin, kMax);
  }
  ++updates_;
  execs_in_window_ = 0;
  table_execs_ = table_gains_ = 0;
  random_execs_ = random_gains_ = 0;
}

CallSelector::CallSelector(const RelationTable* table,
                           std::vector<int> enabled, Rng* rng)
    : table_(table), enabled_(std::move(enabled)), rng_(rng) {
  const size_t n = table_->n();
  enabled_mask_.assign(n, 0);
  for (int id : enabled_) {
    enabled_mask_[static_cast<size_t>(id)] = 1;
  }
  cand_count_.assign(n, 0);
  cand_stamp_.assign(n, 0);
  cand_calls_.reserve(n);
  cand_weights_.reserve(n);
}

const RelationSnapshot& CallSelector::Snap() {
  const uint64_t epoch = table_->epoch();
  if (epoch != snapshot_epoch_ || snapshot_ == nullptr) {
    snapshot_ = table_->snapshot();
    snapshot_epoch_ = snapshot_->epoch();
  }
  return *snapshot_;
}

int CallSelector::RandomCall() {
  return enabled_[rng_->Below(enabled_.size())];
}

int CallSelector::Select(const std::vector<int>& prefix, double alpha,
                         bool* used_table) {
  *used_table = false;
  // Line 1-2: random selection with probability 1-α.
  if (prefix.empty() || !rng_->Bernoulli(alpha)) {
    return RandomCall();
  }
  const RelationSnapshot& snap = Snap();
  // Lines 3-7: candidate counts M[c_j] = |{c_i in S : R[i][j] = 1}|,
  // accumulated into the epoch-stamped flat array.
  if (++pick_epoch_ == 0) {
    std::fill(cand_stamp_.begin(), cand_stamp_.end(), 0);
    pick_epoch_ = 1;
  }
  cand_calls_.clear();
  for (int ci : prefix) {
    const int32_t* row = snap.Row(ci);
    const uint32_t degree = snap.OutDegree(ci);
    for (uint32_t k = 0; k < degree; ++k) {
      const int cj = row[k];
      if (enabled_mask_[static_cast<size_t>(cj)] == 0) {
        continue;
      }
      if (cand_stamp_[static_cast<size_t>(cj)] != pick_epoch_) {
        cand_stamp_[static_cast<size_t>(cj)] = pick_epoch_;
        cand_count_[static_cast<size_t>(cj)] = 0;
        cand_calls_.push_back(cj);
      }
      ++cand_count_[static_cast<size_t>(cj)];
    }
  }
  // Lines 8-9: no information -> random.
  if (cand_calls_.empty()) {
    return RandomCall();
  }
  // Lines 10-11: weighted random pick, candidates in ascending id order
  // (the std::map order of the original implementation — keeps fixed-seed
  // campaigns draw-identical).
  *used_table = true;
  std::sort(cand_calls_.begin(), cand_calls_.end());
  cand_weights_.clear();
  for (int cj : cand_calls_) {
    cand_weights_.push_back(cand_count_[static_cast<size_t>(cj)]);
  }
  return cand_calls_[rng_->WeightedPick(cand_weights_)];
}

}  // namespace healer
