#include "src/fuzz/moonshine.h"

#include <algorithm>
#include <set>

#include "src/fuzz/prog_builder.h"
#include "src/fuzz/templates.h"

namespace healer {

std::vector<Prog> SynthesizeTraces(const Target& target,
                                   const std::vector<int>& enabled,
                                   size_t count, Rng* rng) {
  const auto chains = TemplateChains();
  std::vector<Prog> traces;
  traces.reserve(count);
  ProgBuilder builder(target, enabled, rng);
  for (size_t i = 0; i < count; ++i) {
    const auto& chain = chains[rng->Below(chains.size())];
    Prog prog = BuildChain(target, enabled, chain, rng);
    if (prog.empty()) {
      continue;
    }
    // Interleave unrelated noise calls, as a real strace of a test program
    // would contain (mmap of the loader, clock reads, ...).
    const size_t noise = rng->Below(4);
    for (size_t ni = 0; ni < noise; ++ni) {
      builder.MutateInsert(&prog, [&](const std::vector<int>&) {
        return enabled[rng->Below(enabled.size())];
      });
    }
    traces.push_back(std::move(prog));
  }
  return traces;
}

Prog DistillTrace(const Prog& trace) {
  const size_t len = trace.size();
  // Dependency edges: call -> the calls its resource args reference.
  std::vector<std::vector<size_t>> deps(len);
  std::vector<bool> referenced(len, false);
  for (size_t ci = 0; ci < len; ++ci) {
    ForEachArg(trace.calls()[ci], [&](const Arg& arg) {
      if (arg.kind == ArgKind::kResource && arg.res_ref >= 0) {
        deps[ci].push_back(static_cast<size_t>(arg.res_ref));
        referenced[static_cast<size_t>(arg.res_ref)] = true;
      }
    });
  }
  // Anchors: calls that consume resources (they exercise kernel state set
  // up by others). Keep the closure of their dependencies.
  std::vector<bool> keep(len, false);
  for (size_t ci = 0; ci < len; ++ci) {
    if (deps[ci].empty()) {
      continue;
    }
    // Closure walk.
    std::vector<size_t> stack{ci};
    while (!stack.empty()) {
      const size_t cur = stack.back();
      stack.pop_back();
      if (keep[cur]) {
        continue;
      }
      keep[cur] = true;
      for (size_t dep : deps[cur]) {
        stack.push_back(dep);
      }
    }
  }
  // Rebuild the program from kept calls, remapping resource references.
  Prog out(trace.target());
  out.calls().reserve(
      static_cast<size_t>(std::count(keep.begin(), keep.end(), true)));
  std::vector<int> remap(len, -1);
  for (size_t ci = 0; ci < len; ++ci) {
    if (!keep[ci]) {
      continue;
    }
    remap[ci] = static_cast<int>(out.size());
    Call call = trace.calls()[ci].Clone();
    ForEachArg(call, [&](Arg& arg) {
      if (arg.kind == ArgKind::kResource && arg.res_ref >= 0) {
        arg.res_ref = remap[static_cast<size_t>(arg.res_ref)];
        if (arg.res_ref < 0) {
          arg.val = static_cast<uint64_t>(-1);
        }
      }
    });
    out.calls().push_back(std::move(call));
  }
  return out;
}

std::vector<Prog> MoonshineSeeds(const Target& target,
                                 const std::vector<int>& enabled,
                                 size_t count, Rng* rng) {
  std::vector<Prog> seeds;
  seeds.reserve(count);
  for (Prog& trace : SynthesizeTraces(target, enabled, count, rng)) {
    Prog distilled = DistillTrace(trace);
    if (!distilled.empty()) {
      seeds.push_back(std::move(distilled));
    }
  }
  return seeds;
}

}  // namespace healer
