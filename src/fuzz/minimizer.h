// Sequence minimization (Algorithm 1).
//
// For each call that triggered new coverage (in reverse order, skipping
// calls already reserved by another minimal sequence), the minimizer takes
// the prefix ending at that call and greedily removes earlier calls,
// keeping a removal only when the target call's per-call coverage signal is
// preserved. The result is a set of independent, non-repetitive minimal
// sequences — the inputs to dynamic relation learning and the corpus.

#ifndef SRC_FUZZ_MINIMIZER_H_
#define SRC_FUZZ_MINIMIZER_H_

#include <functional>
#include <vector>

#include "src/exec/exec_result.h"
#include "src/prog/prog.h"

namespace healer {

// Executes a program and returns per-call results. Implementations must not
// merge coverage into the campaign-global bitmap (minimization re-runs are
// analysis, not exploration).
using ExecFn = std::function<ExecResult(const Prog&)>;

struct MinimizedSeq {
  Prog prog;
  // Index of the new-coverage call within `prog`.
  size_t target_index = 0;
  // That call's coverage signal in the original execution.
  uint64_t target_signal = 0;
};

class Minimizer {
 public:
  explicit Minimizer(ExecFn exec) : exec_(std::move(exec)) {}

  // `baseline` must be the ExecResult of `prog` with per-call new_edges
  // filled in (i.e. executed against the campaign-global bitmap).
  std::vector<MinimizedSeq> Minimize(const Prog& prog,
                                     const ExecResult& baseline);

  // Total executions spent in minimization since construction.
  uint64_t execs_used() const { return execs_used_; }

 private:
  ExecFn exec_;
  uint64_t execs_used_ = 0;
};

}  // namespace healer

#endif  // SRC_FUZZ_MINIMIZER_H_
