// Argument synthesis and mutation (Section 4.2 "parameter synthesis"):
// per-type generation strategies (magic numbers, flag subsets, candidate
// strings) and mutation operators (bit flips, value nudges, buffer edits),
// as in existing work — the relation table only drives *call selection*.

#ifndef SRC_FUZZ_ARG_GEN_H_
#define SRC_FUZZ_ARG_GEN_H_

#include <map>
#include <vector>

#include "src/base/rng.h"
#include "src/prog/prog.h"
#include "src/prog/slots.h"

namespace healer {

// Tracks which result slots of already-placed calls can satisfy a resource
// kind (inheritance-aware).
class ResourcePool {
 public:
  struct Producer {
    int call_index;
    int slot;
  };

  // Registers the result slots of the call at `call_index`.
  void AddCall(const Syscall& call, int call_index);

  // Same, with precomputed slots (ResultSlotTable) — avoids the per-call
  // argument-tree walk and its allocations on pool refills.
  void AddSlots(const std::vector<ResultSlot>& slots, int call_index);

  // Forgets all registered producers, retaining capacity for reuse.
  void Clear() { entries_.clear(); }

  // Producers whose resource kind is compatible with `wanted`.
  std::vector<Producer> FindProducers(const ResourceDesc* wanted) const;

  // Allocation-free variant for hot paths: clears `out` and fills it with
  // the same producers FindProducers would return.
  void FindProducersInto(const ResourceDesc* wanted,
                         std::vector<Producer>* out) const;

 private:
  struct Entry {
    const ResourceDesc* resource;
    Producer producer;
  };
  std::vector<Entry> entries_;
};

class ArgGenerator {
 public:
  explicit ArgGenerator(Rng* rng) : rng_(rng) {}

  // Generates an argument tree for `type`. `pool` supplies resource
  // producers from the prefix of the program under construction.
  ArgPtr Gen(const Type* type, const ResourcePool& pool);

  // Nodes generated after this call are placed in `arena` (nullptr → heap).
  // The caller owns the arena's Reset() cadence; see DESIGN.md §11.
  void set_arena(ProgArena* arena) { arena_ = arena; }

  // Fraction of pointer args generated as null (exercises EFAULT and
  // missing-optional-argument kernel paths).
  static constexpr double kNullPtrChance = 0.08;

 private:
  uint64_t GenScalarValue(const Type* type);

  Rng* rng_;
  ProgArena* arena_ = nullptr;
  uint64_t next_vma_page_ = 1;
  // Reused across Gen calls; kResource synthesis never recurses while the
  // scratch is live.
  std::vector<ResourcePool::Producer> producers_scratch_;
};

class ArgMutator {
 public:
  explicit ArgMutator(Rng* rng) : rng_(rng), gen_(rng) {}

  // Mutates one randomly chosen argument node of `call` in place. `pool`
  // provides resource producers preceding the call. Returns false when the
  // call has no mutable node.
  bool Mutate(Call* call, const ResourcePool& pool);

  // Fresh subtrees created by mutations go into `arena` (nullptr → heap).
  void set_arena(ProgArena* arena) { gen_.set_arena(arena); }

 private:
  bool MutateNode(Arg* arg, const ResourcePool& pool);

  Rng* rng_;
  ArgGenerator gen_;
  // Reused across Mutate calls to avoid a per-call vector allocation.
  std::vector<Arg*> nodes_scratch_;
  std::vector<ResourcePool::Producer> producers_scratch_;
};

// Magic values favoured by numeric generation and mutation.
const std::vector<uint64_t>& MagicNumbers();

}  // namespace healer

#endif  // SRC_FUZZ_ARG_GEN_H_
