// The relation table R^{n×n} (Section 4.1): R[i][j] = 1 iff syscall C_i
// influences C_j's execution path. Seeded by static learning over resource
// flows in the descriptions, refined by dynamic learning during fuzzing.
//
// Implemented as a flat byte matrix behind a reader-writer lock (the paper's
// "high performance hash-table ... optimized for access speed through
// read-write lock" — a dense matrix is the faster equivalent for our dense
// integer ids). Every learned edge is timestamped with the simulated clock
// so relation-evolution snapshots (Figure 5) can be reconstructed.

#ifndef SRC_FUZZ_RELATION_TABLE_H_
#define SRC_FUZZ_RELATION_TABLE_H_

#include <cstdint>
#include <shared_mutex>
#include <string>
#include <vector>

#include "src/base/sim_clock.h"
#include "src/base/status.h"
#include "src/syzlang/target.h"

namespace healer {

enum class RelationSource { kStatic, kDynamic };

struct RelationEdge {
  int from = 0;
  int to = 0;
  RelationSource source = RelationSource::kStatic;
  SimClock::Nanos learned_at = 0;
};

class RelationTable {
 public:
  explicit RelationTable(size_t num_syscalls)
      : n_(num_syscalls), cells_(num_syscalls * num_syscalls, 0) {}

  size_t n() const { return n_; }

  bool Get(int from, int to) const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    return cells_[Index(from, to)] != 0;
  }

  // Sets R[from][to] = 1. Returns true iff the edge was new.
  bool Set(int from, int to, RelationSource source,
           SimClock::Nanos learned_at);

  size_t Count() const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    return edges_.size();
  }

  size_t CountBySource(RelationSource source) const;

  // All edges learned at or before `cutoff` (everything when cutoff is the
  // max value). Sorted by learn time.
  std::vector<RelationEdge> EdgesBefore(
      SimClock::Nanos cutoff = ~SimClock::Nanos{0}) const;

  // Influence candidates of call `from` (all `to` with R[from][to] = 1).
  std::vector<int> InfluencedBy(int from) const;

  // Persistence: relations learned in one campaign can warm-start another
  // (edges are stored as syscall-name pairs so they survive description
  // changes; unknown names are skipped).
  Status SaveToFile(const std::string& path, const Target& target) const;
  // Returns the number of edges loaded (as dynamic edges at time 0).
  Result<size_t> LoadFromFile(const std::string& path, const Target& target);

 private:
  size_t Index(int from, int to) const {
    return static_cast<size_t>(from) * n_ + static_cast<size_t>(to);
  }

  size_t n_;
  mutable std::shared_mutex mu_;
  std::vector<uint8_t> cells_;
  std::vector<RelationEdge> edges_;
};

// Static learning (Section 4.1): R[i][j] = 1 when C_i produces a resource
// (return value or out-pointer) that C_j consumes, honoring resource
// inheritance. Returns the number of edges added.
size_t StaticRelationLearn(const Target& target, RelationTable* table);

}  // namespace healer

#endif  // SRC_FUZZ_RELATION_TABLE_H_
