// The relation table R^{n×n} (Section 4.1): R[i][j] = 1 iff syscall C_i
// influences C_j's execution path. Seeded by static learning over resource
// flows in the descriptions, refined by dynamic learning during fuzzing.
//
// The table is split into a write side and a read side (DESIGN.md §8):
//
//   * The authoritative state — dense byte matrix `cells_` plus the
//     timestamped edge log — lives behind a plain mutex that only writers
//     (Apply/Set) and the cold reporting accessors take.
//   * The fuzzing hot path reads an immutable, epoch-versioned
//     RelationSnapshot: a CSR out-adjacency (row-offset + sorted column
//     arrays, plus per-row degree) published by shared_ptr swap. Readers
//     probe the epoch with one relaxed atomic load and re-copy the pointer
//     (briefly under the tiny snapshot mutex) only when the table actually
//     grew — the same protocol the corpus snapshot uses.
//   * Learners never write edges one at a time on the hot path: they
//     accumulate a RelationDelta (typed, locally deduplicated) and flush it
//     through Apply(), which credits each edge exactly once fleet-wide and
//     republishes the snapshot in one swap.

#ifndef SRC_FUZZ_RELATION_TABLE_H_
#define SRC_FUZZ_RELATION_TABLE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_set>
#include <vector>

#include "src/base/sim_clock.h"
#include "src/base/status.h"
#include "src/syzlang/target.h"

namespace healer {

enum class RelationSource { kStatic, kDynamic };

struct RelationEdge {
  int from = 0;
  int to = 0;
  RelationSource source = RelationSource::kStatic;
  SimClock::Nanos learned_at = 0;
};

// Immutable point-in-time view of the relation table in compressed sparse
// row form. Rows are sorted ascending, so iteration order matches the old
// dense-row scan and Contains() can binary-search.
class RelationSnapshot {
 public:
  uint64_t epoch() const { return epoch_; }
  size_t n() const { return n_; }
  size_t num_edges() const { return cols_.size(); }

  // Out-degree of `from` (|{j : R[from][j] = 1}|).
  uint32_t OutDegree(int from) const {
    return degree_[static_cast<size_t>(from)];
  }

  // Pointer to the first out-neighbor of `from`; OutDegree(from) entries,
  // sorted ascending. Valid for the snapshot's lifetime.
  const int32_t* Row(int from) const {
    return cols_.data() + row_offset_[static_cast<size_t>(from)];
  }

  bool Contains(int from, int to) const;

 private:
  friend class RelationTable;
  uint64_t epoch_ = 0;
  size_t n_ = 0;
  std::vector<uint32_t> row_offset_;  // n_ + 1 entries.
  std::vector<uint32_t> degree_;      // row_offset_[i+1] - row_offset_[i].
  std::vector<int32_t> cols_;         // Sorted within each row.
};

// A batch of candidate edges accumulated by a learner between publishes.
// Locally deduplicated: Add() ignores (from, to) pairs already in the
// delta, so Contains() lets Algorithm 2 skip re-probing a pair it just
// learned even before the delta reaches the table.
class RelationDelta {
 public:
  // Returns true iff the pair was new to this delta.
  bool Add(int from, int to, RelationSource source,
           SimClock::Nanos learned_at);

  bool Contains(int from, int to) const {
    return seen_.count(Key(from, to)) != 0;
  }

  bool empty() const { return edges_.empty(); }
  size_t size() const { return edges_.size(); }
  void clear();

  // Edges in insertion order (deterministic given a deterministic learner).
  const std::vector<RelationEdge>& edges() const { return edges_; }

 private:
  static uint64_t Key(int from, int to) {
    return (static_cast<uint64_t>(static_cast<uint32_t>(from)) << 32) |
           static_cast<uint32_t>(to);
  }

  std::vector<RelationEdge> edges_;
  std::unordered_set<uint64_t> seen_;
};

class RelationTable {
 public:
  explicit RelationTable(size_t num_syscalls);

  size_t n() const { return n_; }

  // Authoritative point lookup (takes the write mutex; reporting/tests
  // only — the hot path reads the snapshot).
  bool Get(int from, int to) const;

  // Sets R[from][to] = 1 and republishes the snapshot. Returns true iff the
  // edge was new. Single-edge writes are for seeding and tests; bulk
  // learning goes through Apply().
  bool Set(int from, int to, RelationSource source,
           SimClock::Nanos learned_at);

  // Merges a delta into the table: every edge not already present is added
  // and credited exactly once (the return value is the number of edges that
  // were actually new, no matter how many workers re-learned them). The
  // snapshot is republished — and the epoch bumped — only when at least one
  // edge landed.
  size_t Apply(const RelationDelta& delta);

  // Total edge count. Lock-free (relaxed atomic mirror of the edge log).
  size_t Count() const { return num_edges_.load(std::memory_order_relaxed); }

  size_t CountBySource(RelationSource source) const;

  // All edges learned at or before `cutoff` (everything when cutoff is the
  // max value). Sorted by learn time.
  std::vector<RelationEdge> EdgesBefore(
      SimClock::Nanos cutoff = ~SimClock::Nanos{0}) const;

  // Tail of the append-only edge log from position `start` (the gossip
  // cursor read: a shard emits EdgesFrom(cursor) and advances the cursor by
  // the returned size). Positions are stable — the log never reorders.
  std::vector<RelationEdge> EdgesFrom(size_t start) const;

  // Influence candidates of call `from` (all `to` with R[from][to] = 1).
  // Convenience wrapper over the snapshot row; allocates, so hot paths
  // should walk snapshot()->Row() directly.
  std::vector<int> InfluencedBy(int from) const;

  // Snapshot epoch; bumped on every publish that added edges. One relaxed
  // load — the hot-path freshness probe.
  uint64_t epoch() const { return epoch_.load(std::memory_order_relaxed); }

  // Current immutable CSR view (a shared_ptr copy under the tiny snapshot
  // mutex; cache it and re-fetch only when epoch() moved).
  std::shared_ptr<const RelationSnapshot> snapshot() const;

  // Persistence: relations learned in one campaign can warm-start another
  // (edges are stored as syscall-name pairs so they survive description
  // changes; unknown names are skipped).
  Status SaveToFile(const std::string& path, const Target& target) const;
  // Returns the number of edges loaded (as dynamic edges at time 0).
  Result<size_t> LoadFromFile(const std::string& path, const Target& target);

 private:
  size_t Index(int from, int to) const {
    return static_cast<size_t>(from) * n_ + static_cast<size_t>(to);
  }

  // Rebuilds the CSR from cells_ and swaps it in. Requires write_mu_ held.
  void PublishLocked();

  size_t n_;
  mutable std::mutex write_mu_;
  std::vector<uint8_t> cells_;
  std::vector<RelationEdge> edges_;
  std::atomic<size_t> num_edges_{0};

  std::atomic<uint64_t> epoch_{0};
  mutable std::mutex snapshot_mu_;
  std::shared_ptr<const RelationSnapshot> snapshot_;
};

// Static learning (Section 4.1): R[i][j] = 1 when C_i produces a resource
// (return value or out-pointer) that C_j consumes, honoring resource
// inheritance. Accumulated as one delta and applied in a single publish.
// Returns the number of edges added.
size_t StaticRelationLearn(const Target& target, RelationTable* table);

}  // namespace healer

#endif  // SRC_FUZZ_RELATION_TABLE_H_
