// Campaign driver: runs a fuzzer for a simulated wall-clock duration,
// sampling the coverage curve the way the paper samples each fuzzer's
// statistics every minute over 24 hours. Campaigns are pure functions of
// (tool, kernel version, seed, duration), which the benches exploit to run
// repeated rounds.

#ifndef SRC_FUZZ_CAMPAIGN_H_
#define SRC_FUZZ_CAMPAIGN_H_

#include <string>
#include <vector>

#include "src/fuzz/corpus_io.h"
#include "src/fuzz/fuzzer.h"

namespace healer {

class IntrospectionHub;  // src/base/introspect_server.h

struct CampaignOptions {
  ToolKind tool = ToolKind::kHealer;
  KernelVersion version = KernelVersion::kV5_11;
  uint64_t seed = 1;
  double hours = 24.0;
  uint64_t max_execs = ~0ull;
  size_t num_vms = 2;
  // Total simulated guests / reactor shards; see FuzzerOptions::fleet_size.
  // 0 keeps the legacy pinned pool.
  size_t fleet_size = 0;
  size_t fleet_shards = 0;
  size_t moonshine_traces = 64;
  SimClock::Nanos sample_period = 5 * SimClock::kMinute;
  VmLatencyModel latency;
  // HEALER guidance ablation knobs (see GuidanceMode).
  GuidanceMode guidance = GuidanceMode::kDefault;
  double fixed_alpha = 0.8;
  // Deterministic fault injection (empty = fault-free) and recovery policy;
  // campaigns stay pure functions of (options, seed, plan).
  FaultPlan fault_plan;
  RecoveryPolicy recovery;
  // Fuzzer <-> executor transport (legacy shm channel or SQ/CQ rings); see
  // ExecTransport in fuzzer.h. Fixed-seed campaigns are draw-identical
  // across transports.
  ExecTransport transport = ExecTransport::kShmChannel;
  // Optional corpus persistence: seed programs loaded before fuzzing, and
  // the final corpus written after it. Loading auto-detects the container
  // format; `corpus_format` selects what save_corpus_path is written as
  // (hcorp1 = mmap-able page-aligned container for instant warm restart).
  std::string initial_corpus_path;
  std::string save_corpus_path;
  CorpusFormat corpus_format = CorpusFormat::kLegacy;
  // Optional relation persistence: edges from a previous campaign loaded
  // into the table before fuzzing (warm start), and the final table written
  // after it (RelationTable::SaveToFile name-pair format).
  std::string initial_relations_path;
  std::string save_relations_path;
  // Live status: a one-line summary through the log sink every
  // `status_period` of simulated time (0 disables).
  SimClock::Nanos status_period = 0;
  // Span tracing: when enabled the fuzzer records into a bounded ring of
  // `trace_capacity` events, copied into CampaignResult::trace_events.
  bool capture_trace = false;
  size_t trace_capacity = 1 << 15;
  // Flight-recorder ring capacity (0 disables journaling); the buffered
  // window is copied into CampaignResult::journal.
  size_t journal_capacity = 4096;
  // When non-empty, every unique crash writes a self-contained postmortem
  // bundle directory here (see postmortem.h).
  std::string postmortem_dir;
  // When non-null, the campaign publishes metrics / status / journal
  // snapshots into the hub at every sample point, for the introspection
  // server to answer from. Not owned.
  IntrospectionHub* introspect = nullptr;
};

struct CoverageSample {
  double hours = 0.0;
  size_t branches = 0;
  uint64_t execs = 0;
  size_t relations = 0;
};

struct CampaignResult {
  CampaignOptions options;
  std::vector<CoverageSample> samples;
  size_t final_coverage = 0;
  uint64_t fuzz_execs = 0;
  uint64_t total_execs = 0;  // Including minimization / learning runs.
  size_t corpus_size = 0;
  double corpus_mean_len = 0.0;
  std::vector<size_t> corpus_length_hist;  // Buckets 1,2,3,4,5+.
  std::vector<CrashRecord> crashes;
  size_t relations_total = 0;
  size_t relations_static = 0;
  size_t relations_dynamic = 0;
  // Edges warm-started from initial_relations_path (0 when not used).
  size_t relations_loaded = 0;
  std::vector<RelationEdge> relation_edges;  // Timestamped learn log.
  double final_alpha = 0.0;
  // Injected faults and recovery outcomes (all zero for fault-free runs).
  FaultStats faults;
  // Full metric-registry snapshot at campaign end (counters, gauges,
  // histograms). Use ToPrometheusText()/ToJson() to export.
  MetricsSnapshot telemetry;
  // Buffered span trace, oldest first (empty unless capture_trace).
  std::vector<TraceEvent> trace_events;
  // Flight-recorder window at campaign end, oldest first (empty when
  // journal_capacity is 0). Seed-deterministic like every other field.
  std::vector<JournalRecord> journal;

  bool FoundBug(BugId bug) const;
};

CampaignResult RunCampaign(const CampaignOptions& options);

// Simulated hours at which `result` first reached `coverage` branches, or a
// negative value if it never did. Linear interpolation between samples.
double HoursToReach(const CampaignResult& result, size_t coverage);

}  // namespace healer

#endif  // SRC_FUZZ_CAMPAIGN_H_
