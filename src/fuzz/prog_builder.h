// Program construction: sequence synthesis and mutation (Section 4.2).
//
// Call selection is pluggable (relation-guided for HEALER, choice-table for
// the Syzkaller baseline, uniform for HEALER-), while resource-producer
// insertion and parameter synthesis are shared across tools — exactly the
// experimental control the paper's ablation needs.

#ifndef SRC_FUZZ_PROG_BUILDER_H_
#define SRC_FUZZ_PROG_BUILDER_H_

#include <functional>
#include <vector>

#include "src/fuzz/arg_gen.h"
#include "src/prog/prog.h"

namespace healer {

// Chooses the syscall to place after `prefix` (syscall ids of the calls
// before the insertion point).
using CallChooser = std::function<int(const std::vector<int>& prefix)>;

class ProgBuilder {
 public:
  static constexpr size_t kMaxProgLen = 24;
  static constexpr int kMaxProducerDepth = 4;

  ProgBuilder(const Target& target, std::vector<int> enabled, Rng* rng);

  // Appends the call (and, recursively, producers for its unmet resource
  // needs) to `prog`. Returns the number of calls appended.
  size_t AppendCall(Prog* prog, int syscall_id, int depth = 0);

  // Generates a program of roughly `target_len` calls: seeds with a random
  // producer/consumer pair, then extends via `choose`.
  Prog Generate(const CallChooser& choose, size_t target_len);

  // Inserts a new call (chosen by `choose` from the preceding sub-sequence)
  // at a random position of `prog`. Returns false if the program is full.
  bool MutateInsert(Prog* prog, const CallChooser& choose);

  // Mutates the arguments of 1-3 random calls in place.
  bool MutateArgs(Prog* prog);

  // Arg nodes built by Generate/MutateInsert/MutateArgs go into `arena`
  // (nullptr → heap). The owner resets the arena between fuzzing
  // iterations; programs handed out must not outlive that reset unless
  // re-cloned to heap (Prog::Clone()).
  void set_arena(ProgArena* arena);
  ProgArena* arena() const { return arena_; }

  const std::vector<int>& enabled() const { return enabled_; }

 private:
  ResourcePool PoolFor(const Prog& prog, size_t upto) const;
  // Clear-and-refill variant reusing `pool`'s storage (recursion-safe:
  // every AppendCall frame owns its own pool).
  void PoolInto(const Prog& prog, size_t upto, ResourcePool* pool) const;

  const Target& target_;
  std::vector<int> enabled_;
  std::vector<uint8_t> enabled_mask_;
  Rng* rng_;
  ProgArena* arena_ = nullptr;
  ArgGenerator gen_;
  ArgMutator mutator_;
  // Precomputed result slots per syscall id; PoolInto borrows these instead
  // of re-walking argument trees on every refill.
  ResultSlotTable slot_table_;
  // Reused prefix buffer for CallChooser invocations (Generate/MutateInsert
  // never nest).
  std::vector<int> prefix_scratch_;
  // Per-recursion-depth scratch for AppendCall (depth is bounded by
  // kMaxProducerDepth, so each frame owns a fixed slot and storage is
  // reused across calls instead of reallocated per frame).
  struct FrameScratch {
    ResourcePool pool;
    std::vector<ResourcePool::Producer> found;
    std::vector<int> producers;
  };
  FrameScratch frames_[kMaxProducerDepth + 1];
  // Seed-phase candidate buffers for Generate (never live across a nested
  // builder call).
  std::vector<int> seed_producers_;
  std::vector<int> seed_consumers_;
  // MutateArgs pool storage, refilled per round.
  ResourcePool mutate_pool_scratch_;
};

}  // namespace healer

#endif  // SRC_FUZZ_PROG_BUILDER_H_
