#include "src/fuzz/gossip.h"

#include <cstring>

#include "src/base/hash.h"
#include "src/base/string_util.h"

namespace healer {

namespace {

constexpr char kMagic[4] = {'H', 'G', 'S', 'P'};

void PutU32(std::vector<uint8_t>* out, uint32_t v) {
  const size_t at = out->size();
  out->resize(at + 4);
  std::memcpy(out->data() + at, &v, 4);
}

void PutU64(std::vector<uint8_t>* out, uint64_t v) {
  const size_t at = out->size();
  out->resize(at + 8);
  std::memcpy(out->data() + at, &v, 8);
}

uint32_t GetU32(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

uint64_t GetU64(const uint8_t* p) {
  uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

uint64_t PayloadChecksum(const uint8_t* data, size_t len) {
  return FastBytesHash(
      std::string_view(reinterpret_cast<const char*>(data), len));
}

}  // namespace

void AppendGossipFrame(const GossipFrame& frame, std::vector<uint8_t>* out) {
  out->reserve(out->size() + kGossipHeaderBytes + frame.payload.size());
  out->insert(out->end(), kMagic, kMagic + 4);
  out->push_back(kGossipVersion);
  out->push_back(static_cast<uint8_t>(frame.type));
  out->push_back(0);
  out->push_back(0);
  PutU32(out, frame.origin);
  PutU32(out, static_cast<uint32_t>(frame.payload.size()));
  PutU64(out, frame.seq);
  PutU64(out, PayloadChecksum(frame.payload.data(), frame.payload.size()));
  out->insert(out->end(), frame.payload.begin(), frame.payload.end());
}

Result<GossipFrame> DecodeGossipFrame(const uint8_t* data, size_t size,
                                      size_t* consumed) {
  if (size < kGossipHeaderBytes) {
    return ParseError("gossip: truncated frame header");
  }
  if (std::memcmp(data, kMagic, 4) != 0) {
    return ParseError("gossip: bad frame magic");
  }
  if (data[4] != kGossipVersion) {
    return ParseError(
        StrFormat("gossip: unsupported version %u", data[4]));
  }
  const uint8_t type = data[5];
  if (type != static_cast<uint8_t>(GossipFrameType::kRelations) &&
      type != static_cast<uint8_t>(GossipFrameType::kCoverage) &&
      type != static_cast<uint8_t>(GossipFrameType::kSeeds)) {
    return ParseError(StrFormat("gossip: unknown frame type %u", type));
  }
  if (data[6] != 0 || data[7] != 0) {
    return ParseError("gossip: nonzero reserved header bytes");
  }
  const uint32_t payload_len = GetU32(data + 12);
  if (payload_len > kGossipMaxPayload) {
    return ParseError(
        StrFormat("gossip: payload length %u exceeds limit", payload_len));
  }
  if (size - kGossipHeaderBytes < payload_len) {
    return ParseError("gossip: truncated frame payload");
  }
  const uint64_t checksum = GetU64(data + 24);
  if (PayloadChecksum(data + kGossipHeaderBytes, payload_len) != checksum) {
    return ParseError("gossip: payload checksum mismatch");
  }
  GossipFrame frame;
  frame.type = static_cast<GossipFrameType>(type);
  frame.origin = GetU32(data + 8);
  frame.seq = GetU64(data + 16);
  frame.payload.assign(data + kGossipHeaderBytes,
                       data + kGossipHeaderBytes + payload_len);
  *consumed = kGossipHeaderBytes + payload_len;
  return frame;
}

Result<std::vector<GossipFrame>> DecodeGossipStream(const uint8_t* data,
                                                    size_t size) {
  std::vector<GossipFrame> frames;
  size_t at = 0;
  while (at < size) {
    size_t consumed = 0;
    Result<GossipFrame> frame = DecodeGossipFrame(data + at, size - at,
                                                  &consumed);
    if (!frame.ok()) {
      return frame.status();
    }
    frames.push_back(std::move(*frame));
    at += consumed;
  }
  return frames;
}

std::vector<uint8_t> EncodeRelationsPayload(
    const std::vector<RelationEdge>& edges) {
  std::vector<uint8_t> out;
  out.reserve(4 + edges.size() * 8);
  PutU32(&out, static_cast<uint32_t>(edges.size()));
  for (const RelationEdge& e : edges) {
    PutU32(&out, static_cast<uint32_t>(e.from));
    PutU32(&out, static_cast<uint32_t>(e.to));
  }
  return out;
}

Result<std::vector<WireRelationEdge>> DecodeRelationsPayload(
    const std::vector<uint8_t>& payload, size_t num_syscalls) {
  if (payload.size() < 4) {
    return ParseError("gossip: truncated relations payload");
  }
  const uint32_t count = GetU32(payload.data());
  if (count > kGossipMaxEdges) {
    return ParseError(
        StrFormat("gossip: relations count %u exceeds limit", count));
  }
  if (payload.size() != 4 + static_cast<size_t>(count) * 8) {
    return ParseError("gossip: relations payload length mismatch");
  }
  std::vector<WireRelationEdge> edges;
  edges.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    WireRelationEdge e;
    e.from = GetU32(payload.data() + 4 + i * 8);
    e.to = GetU32(payload.data() + 8 + i * 8);
    if (e.from >= num_syscalls || e.to >= num_syscalls) {
      return ParseError(StrFormat("gossip: relation edge (%u, %u) out of "
                                  "range for %zu syscalls",
                                  e.from, e.to, num_syscalls));
    }
    edges.push_back(e);
  }
  return edges;
}

std::vector<uint8_t> EncodeCoveragePayload(
    const std::vector<WireCoverageWord>& words) {
  std::vector<uint8_t> out;
  out.reserve(4 + words.size() * 12);
  PutU32(&out, static_cast<uint32_t>(words.size()));
  for (const WireCoverageWord& w : words) {
    PutU32(&out, w.index);
    PutU64(&out, w.value);
  }
  return out;
}

Result<std::vector<WireCoverageWord>> DecodeCoveragePayload(
    const std::vector<uint8_t>& payload, size_t word_count) {
  if (payload.size() < 4) {
    return ParseError("gossip: truncated coverage payload");
  }
  const uint32_t count = GetU32(payload.data());
  if (count > kGossipMaxWords) {
    return ParseError(
        StrFormat("gossip: coverage count %u exceeds limit", count));
  }
  if (payload.size() != 4 + static_cast<size_t>(count) * 12) {
    return ParseError("gossip: coverage payload length mismatch");
  }
  std::vector<WireCoverageWord> words;
  words.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    WireCoverageWord w;
    w.index = GetU32(payload.data() + 4 + i * 12);
    w.value = GetU64(payload.data() + 8 + i * 12);
    if (w.index >= word_count) {
      return ParseError(StrFormat("gossip: coverage word index %u out of "
                                  "range for %zu words",
                                  w.index, word_count));
    }
    words.push_back(w);
  }
  return words;
}

std::vector<uint8_t> EncodeSeedsPayload(
    const std::vector<std::vector<uint8_t>>& progs) {
  std::vector<uint8_t> out;
  PutU32(&out, static_cast<uint32_t>(progs.size()));
  for (const std::vector<uint8_t>& blob : progs) {
    PutU32(&out, static_cast<uint32_t>(blob.size()));
    out.insert(out.end(), blob.begin(), blob.end());
  }
  return out;
}

Result<std::vector<std::vector<uint8_t>>> DecodeSeedsPayload(
    const std::vector<uint8_t>& payload) {
  if (payload.size() < 4) {
    return ParseError("gossip: truncated seeds payload");
  }
  const uint32_t count = GetU32(payload.data());
  if (count > kGossipMaxSeeds) {
    return ParseError(
        StrFormat("gossip: seeds count %u exceeds limit", count));
  }
  std::vector<std::vector<uint8_t>> progs;
  progs.reserve(count);
  size_t at = 4;
  for (uint32_t i = 0; i < count; ++i) {
    if (payload.size() - at < 4) {
      return ParseError("gossip: truncated seed length");
    }
    const uint32_t len = GetU32(payload.data() + at);
    at += 4;
    if (len > kGossipMaxSeedBytes) {
      return ParseError(
          StrFormat("gossip: seed length %u exceeds limit", len));
    }
    if (payload.size() - at < len) {
      return ParseError("gossip: truncated seed bytes");
    }
    progs.emplace_back(payload.begin() + static_cast<ptrdiff_t>(at),
                       payload.begin() + static_cast<ptrdiff_t>(at + len));
    at += len;
  }
  if (at != payload.size()) {
    return ParseError("gossip: trailing bytes after seeds payload");
  }
  return progs;
}

std::vector<size_t> GossipPeers(size_t shard, size_t shard_count,
                                size_t fanout, size_t round) {
  std::vector<size_t> peers;
  if (shard_count < 2 || fanout == 0) {
    return peers;
  }
  const size_t others = shard_count - 1;
  const size_t k = fanout < others ? fanout : others;
  peers.reserve(k);
  for (size_t i = 0; i < k; ++i) {
    const size_t step = 1 + (round * k + i) % others;
    peers.push_back((shard + step) % shard_count);
  }
  return peers;
}

}  // namespace healer
