// Corpus of interesting (minimized) programs, weighted by the amount of new
// coverage they contributed when first seen.

#ifndef SRC_FUZZ_CORPUS_H_
#define SRC_FUZZ_CORPUS_H_

#include <map>
#include <set>
#include <vector>

#include "src/base/hash.h"
#include "src/base/rng.h"
#include "src/prog/prog.h"
#include "src/prog/serialize.h"

namespace healer {

class Corpus {
 public:
  static constexpr size_t kMaxEntries = 16384;

  // Adds a program (deduplicated by serialized content). Returns true if it
  // was new.
  bool Add(Prog prog, uint32_t priority);

  bool empty() const { return entries_.empty(); }
  size_t size() const { return entries_.size(); }

  // Priority-weighted random pick.
  const Prog& Choose(Rng* rng) const;

  const Prog& at(size_t index) const { return entries_[index].prog; }

  // Histogram of program lengths: [1, 2, 3, 4, 5+] buckets (Figure 6).
  std::vector<size_t> LengthHistogram() const;

  // Mean program length.
  double MeanLength() const;

  // Deep copies of every program (for persistence via corpus_io).
  std::vector<Prog> ExportAll() const;

 private:
  struct Entry {
    Prog prog;
    uint32_t priority;
  };
  std::vector<Entry> entries_;
  std::set<uint64_t> hashes_;
  uint64_t total_priority_ = 0;
};

}  // namespace healer

#endif  // SRC_FUZZ_CORPUS_H_
