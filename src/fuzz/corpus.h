// Corpus of interesting (minimized) programs, weighted by the amount of new
// coverage they contributed when first seen.
//
// Weighted sampling uses a Fenwick (binary-indexed) tree over entry
// priorities: Choose() descends the tree in O(log n) instead of the old
// O(n) prefix scan, Add() extends it in O(log n), and UpdatePriority()
// re-weights an entry in O(log n). The sampling is draw-for-draw identical
// to the linear scan (same single rng->Below(total) roll, same chosen
// index), so fixed-seed campaigns are unchanged.
//
// Programs are held by shared_ptr so Snapshot() can hand parallel workers an
// immutable, cheaply-copied view (see CorpusSnapshot): workers sample from a
// snapshot lock-free while the authoritative Corpus keeps growing.

#ifndef SRC_FUZZ_CORPUS_H_
#define SRC_FUZZ_CORPUS_H_

#include <memory>
#include <set>
#include <vector>

#include "src/base/hash.h"
#include "src/base/rng.h"
#include "src/prog/prog.h"
#include "src/prog/serialize.h"

namespace healer {

// Immutable point-in-time view of a corpus: the programs (shared with the
// live corpus) plus a copy of the Fenwick tree, so Choose() works without
// touching — or locking — the authoritative state. Publish-side cost is one
// O(n) vector copy, paid only when new programs actually landed.
struct CorpusSnapshot {
  std::vector<std::shared_ptr<const Prog>> progs;
  std::vector<uint64_t> fenwick;  // 1-based; fenwick[0] unused.
  uint64_t total_priority = 0;

  bool empty() const { return progs.empty(); }
  size_t size() const { return progs.size(); }
  // Priority-weighted random pick; same distribution and same draw
  // consumption as Corpus::Choose.
  const Prog& Choose(Rng* rng) const;
};

class Corpus {
 public:
  static constexpr size_t kMaxEntries = 16384;

  // Content identity used for deduplication. Callers that already hold the
  // serialized bytes (the new-coverage path just executed them) should hash
  // those and use the precomputed-hash Add overload below instead of paying
  // for a second SerializeProg.
  static uint64_t ContentHash(const std::vector<uint8_t>& bytes) {
    return Fnv1a(std::string_view(reinterpret_cast<const char*>(bytes.data()),
                                  bytes.size()));
  }
  static uint64_t ContentHash(const Prog& prog) {
    return ContentHash(SerializeProg(prog));
  }

  // Adds a program (deduplicated by serialized content). Returns true if it
  // was new. Serializes the program to hash it.
  bool Add(Prog prog, uint32_t priority);
  // Same, with the content hash precomputed by the caller.
  bool Add(Prog prog, uint32_t priority, uint64_t content_hash);

  bool empty() const { return entries_.empty(); }
  size_t size() const { return entries_.size(); }

  // Priority-weighted random pick. O(log n).
  const Prog& Choose(Rng* rng) const;

  // Re-weights an existing entry. O(log n).
  void UpdatePriority(size_t index, uint32_t priority);

  const Prog& at(size_t index) const { return *entries_[index].prog; }
  uint32_t priority_at(size_t index) const {
    return entries_[index].priority;
  }

  // Immutable view for lock-free sampling by parallel workers.
  std::shared_ptr<const CorpusSnapshot> Snapshot() const;

  // Histogram of program lengths: [1, 2, 3, 4, 5+] buckets (Figure 6).
  std::vector<size_t> LengthHistogram() const;

  // Mean program length.
  double MeanLength() const;

  // Deep copies of every program (for persistence via corpus_io).
  std::vector<Prog> ExportAll() const;

 private:
  struct Entry {
    std::shared_ptr<const Prog> prog;
    uint32_t priority;
  };
  std::vector<Entry> entries_;
  std::vector<uint64_t> fenwick_{0};  // 1-based; fenwick_[0] unused.
  std::set<uint64_t> hashes_;
  uint64_t total_priority_ = 0;
};

}  // namespace healer

#endif  // SRC_FUZZ_CORPUS_H_
