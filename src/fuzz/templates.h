// Ground-truth multi-call program templates: the well-formed chains a
// hand-written test suite (LTP-style) would contain. Used to synthesize
// Moonshine's input traces and as known-good programs in tests.

#ifndef SRC_FUZZ_TEMPLATES_H_
#define SRC_FUZZ_TEMPLATES_H_

#include <string>
#include <vector>

#include "src/base/rng.h"
#include "src/prog/prog.h"

namespace healer {

// Name sequences of the built-in chains (only chains whose calls all exist
// in `enabled_names` are returned).
std::vector<std::vector<std::string>> TemplateChains();

// Builds a program from a chain of syscall names, wiring resources through
// ProgBuilder. Returns an empty prog when a name is unknown or disabled.
Prog BuildChain(const Target& target, const std::vector<int>& enabled,
                const std::vector<std::string>& chain, Rng* rng);

}  // namespace healer

#endif  // SRC_FUZZ_TEMPLATES_H_
