#include "src/vm/guest_vm.h"

#include "src/base/logging.h"
#include "src/base/string_util.h"
#include "src/prog/serialize.h"

namespace healer {

GuestVm::GuestVm(const Target& target, const KernelConfig& config,
                 SimClock* clock, VmLatencyModel latency,
                 const FaultPlan& fault_plan, uint64_t fault_seed,
                 MetricRegistry* metrics)
    : executor_(target, config),
      clock_(clock),
      latency_(latency),
      injector_(fault_plan, fault_seed) {
  if (metrics != nullptr) {
    m_execs_ = metrics->GetCounter("healer_vm_execs_total");
    m_reboots_ = metrics->GetCounter("healer_vm_reboots_total");
    m_rtt_ = metrics->GetHistogram("healer_vm_rtt_ns");
    for (size_t i = 0; i < kNumFaultKinds; ++i) {
      m_fault_injected_[i] = metrics->GetCounter(
          StrFormat("healer_fault_injected_%s_total",
                    FaultKindName(static_cast<FaultKind>(i))));
    }
  }
}

void GuestVm::Boot() {
  clock_->Advance(latency_.boot);
  // Handshake over the control socket, as the in-guest agent does on start.
  ctrl_.Send(CtrlFrame{CtrlKind::kHandshake, 0xcafe});
  CtrlFrame frame;
  if (ctrl_.Recv(&frame) && frame.kind == CtrlKind::kHandshake) {
    ctrl_.Send(CtrlFrame{CtrlKind::kHandshakeAck, frame.payload});
    ctrl_.Recv(&frame);  // Consume the ack.
  }
  booted_ = true;
  down_ = false;
  AppendLog(StrFormat("[    0.000000] sim-linux %s booted",
                      KernelVersionName(executor_.config().version)));
}

ExecResult GuestVm::FailWith(ExecFailure failure) {
  infra_faults_.fetch_add(1, std::memory_order_relaxed);
  consecutive_failures_.fetch_add(1, std::memory_order_relaxed);
  AppendLog(StrFormat("[ fault  ] exec failed: %s", ExecFailureName(failure)));
  ExecResult result;
  result.failure = failure;
  return result;
}

ExecResult GuestVm::Exec(const Prog& prog, Bitmap* global_coverage) {
  const SimClock::Nanos start = clock_->now();
  const std::optional<FaultKind> fault = injector_.Draw();
  if (fault.has_value() && m_fault_injected_[0] != nullptr) {
    m_fault_injected_[static_cast<size_t>(*fault)]->Add();
  }

  if (fault == FaultKind::kBootFailure) {
    // The guest dies (or was down) and the automatic restart fails: the VM
    // burns the boot budget and stays down until the recovery policy or a
    // later, fault-free Exec brings it back.
    clock_->Advance(booted_ && !down_ ? latency_.reboot : latency_.boot);
    booted_ = true;
    down_ = true;
    return FailWith(ExecFailure::kBootFailure);
  }
  if (!booted_) {
    Boot();
  }
  if (down_) {
    clock_->Advance(latency_.reboot);
    AppendLog("[ reboot ] restarting crashed guest");
    down_ = false;
    if (m_reboots_ != nullptr) {
      m_reboots_->Add();
    }
  }

  if (fault == FaultKind::kVmCrash) {
    // The QEMU instance is lost mid-program: partial wall-clock cost, no
    // reply, and the next execution pays a reboot.
    clock_->Advance(latency_.exec_overhead / 2);
    down_ = true;
    return FailWith(ExecFailure::kVmLost);
  }
  if (fault == FaultKind::kExecTimeout) {
    // The in-guest agent hangs; the watchdog waits out its budget and the
    // guest must be reset to get a fresh executor.
    clock_->Advance(latency_.exec_timeout);
    down_ = true;
    return FailWith(ExecFailure::kTimeout);
  }

  std::vector<uint8_t> bytes = SerializeProg(prog);
  if (fault == FaultKind::kTruncatedResult ||
      fault == FaultKind::kBitFlipResult) {
    // Transport corruption: the executor sees damaged wire bytes. The decode
    // attempt runs (exercising the hardened deserializer) but whatever comes
    // out is discarded — a corrupted reply must never contribute feedback,
    // so no coverage bitmap is offered and no calls are returned.
    if (!bytes.empty()) {
      if (fault == FaultKind::kTruncatedResult) {
        bytes.resize(injector_.Rand() % bytes.size());
      } else {
        bytes[injector_.Rand() % bytes.size()] ^=
            static_cast<uint8_t>(1u << (injector_.Rand() % 8));
      }
    }
    if (shm_.WriteProg(bytes)) {
      executor_.RunSerialized(shm_.prog_data(), shm_.prog_size(), nullptr);
    }
    clock_->Advance(latency_.exec_overhead);
    return FailWith(ExecFailure::kCorruptedReply);
  }

  if (!shm_.WriteProg(bytes)) {
    LOG_WARNING << "program too large for shm region (" << bytes.size()
                << " bytes)";
    return ExecResult{};
  }
  ctrl_.Send(CtrlFrame{CtrlKind::kExecRequest, bytes.size()});
  ExecResult result =
      executor_.RunSerialized(shm_.prog_data(), shm_.prog_size(),
                              global_coverage);
  CtrlFrame frame;
  ctrl_.Recv(&frame);  // The request we queued; the reply follows.
  ctrl_.Send(CtrlFrame{CtrlKind::kExecReply, result.calls.size()});
  ctrl_.Recv(&frame);

  execs_.fetch_add(1, std::memory_order_relaxed);
  consecutive_failures_.store(0, std::memory_order_relaxed);
  clock_->Advance(latency_.exec_overhead +
                  latency_.per_call * prog.size());
  if (fault == FaultKind::kSlowVm) {
    clock_->Advance(latency_.slow_penalty);
    AppendLog("[ fault  ] slow round trip (host contention)");
  }
  if (m_execs_ != nullptr) {
    m_execs_->Add();
    m_rtt_->Observe(clock_->now() - start);
  }
  if (result.Crashed()) {
    crashes_.fetch_add(1, std::memory_order_relaxed);
    down_ = true;
    ctrl_.Send(CtrlFrame{CtrlKind::kCrashNotice,
                         static_cast<uint64_t>(result.crash->bug)});
    ctrl_.Recv(&frame);
    AppendLog(StrFormat("BUG: %s", result.crash->title.c_str()));
  }
  return result;
}

void GuestVm::QuarantineReboot() {
  quarantines_.fetch_add(1, std::memory_order_relaxed);
  if (m_reboots_ != nullptr) {
    m_reboots_->Add();
  }
  consecutive_failures_.store(0, std::memory_order_relaxed);
  clock_->Advance(latency_.reboot);
  booted_ = true;
  down_ = false;
  AppendLog("[ monitor] quarantined guest force-rebooted");
}

std::vector<std::string> GuestVm::DrainLog() {
  std::lock_guard<std::mutex> lock(log_mu_);
  std::vector<std::string> out;
  out.swap(log_);
  return out;
}

void GuestVm::AppendLog(std::string line) {
  std::lock_guard<std::mutex> lock(log_mu_);
  if (log_.size() < 4096) {
    log_.push_back(std::move(line));
  }
}

}  // namespace healer
