#include "src/vm/guest_vm.h"

#include "src/base/logging.h"
#include "src/base/string_util.h"
#include "src/prog/serialize.h"

namespace healer {

const char* VmStateName(VmState state) {
  switch (state) {
    case VmState::kCold:
      return "cold";
    case VmState::kBooting:
      return "booting";
    case VmState::kReady:
      return "ready";
    case VmState::kExecuting:
      return "executing";
    case VmState::kCrashed:
      return "crashed";
    case VmState::kRebooting:
      return "rebooting";
    case VmState::kQuarantined:
      return "quarantined";
  }
  return "?";
}

GuestVm::GuestVm(const Target& target, const KernelConfig& config,
                 SimClock* clock, VmLatencyModel latency,
                 const FaultPlan& fault_plan, uint64_t fault_seed,
                 MetricRegistry* metrics, RingConfig ring_config)
    : target_(&target),
      config_(config),
      ring_config_(ring_config),
      clock_(clock),
      latency_(latency),
      injector_(fault_plan, fault_seed) {
  if (metrics != nullptr) {
    metrics->SetHelp("healer_vm_execs_total",
                     "Programs executed by the VM fleet.");
    m_execs_ = metrics->GetCounter("healer_vm_execs_total");
    metrics->SetHelp("healer_vm_reboots_total",
                     "Guest reboots after crashes and boot failures.");
    m_reboots_ = metrics->GetCounter("healer_vm_reboots_total");
    metrics->SetHelp("healer_vm_rtt_ns",
                     "Simulated nanoseconds per executor round trip.");
    m_rtt_ = metrics->GetHistogram("healer_vm_rtt_ns");
    for (size_t i = 0; i < kNumFaultKinds; ++i) {
      const std::string name =
          StrFormat("healer_fault_injected_%s_total",
                    FaultKindName(static_cast<FaultKind>(i)));
      metrics->SetHelp(name,
                       StrFormat("Injected %s faults drawn by the fleet.",
                                 FaultKindName(static_cast<FaultKind>(i))));
      m_fault_injected_[i] = metrics->GetCounter(name);
    }
    metrics->SetHelp("healer_ring_drains_total",
                     "Ring-transport drain round trips.");
    m_ring_drains_ = metrics->GetCounter("healer_ring_drains_total");
    metrics->SetHelp("healer_ring_submitted_total",
                     "Programs pushed into SQ rings.");
    m_ring_submitted_ = metrics->GetCounter("healer_ring_submitted_total");
    metrics->SetHelp("healer_ring_completions_total",
                     "Completions posted into CQ rings.");
    m_ring_completions_ =
        metrics->GetCounter("healer_ring_completions_total");
    metrics->SetHelp("healer_ring_spills_total",
                     "Oversized programs spilled to the legacy channel.");
    m_ring_spills_ = metrics->GetCounter("healer_ring_spills_total");
    metrics->SetHelp("healer_ring_stalls_total",
                     "Submissions timed out waiting for a completion.");
    m_ring_stalls_ = metrics->GetCounter("healer_ring_stalls_total");
    metrics->SetHelp("healer_ring_drain_programs",
                     "Programs reaped per ring drain.");
    m_ring_drain_programs_ =
        metrics->GetHistogram("healer_ring_drain_programs");
    metrics->SetHelp("healer_ctrl_overflow_total",
                     "Control-socket frames dropped to a full buffer.");
    ctrl_.set_overflow_counter(
        metrics->GetCounter("healer_ctrl_overflow_total"));
  }
}

Executor& GuestVm::EnsureExecutor() const {
  if (executor_ == nullptr) {
    executor_ = std::make_unique<Executor>(*target_, config_);
  }
  return *executor_;
}

ShmChannel& GuestVm::EnsureShm() const {
  if (shm_ == nullptr) {
    shm_ = std::make_unique<ShmChannel>();
  }
  return *shm_;
}

ExecRing& GuestVm::EnsureRing() const {
  if (ring_ == nullptr) {
    ring_ = std::make_unique<ExecRing>(ring_config_);
  }
  return *ring_;
}

void GuestVm::Boot() {
  set_state(VmState::kBooting);
  clock_->Advance(latency_.boot);
  // Handshake over the control socket, as the in-guest agent does on start.
  ctrl_.Send(CtrlFrame{CtrlKind::kHandshake, 0xcafe});
  CtrlFrame frame;
  if (ctrl_.Recv(&frame) && frame.kind == CtrlKind::kHandshake) {
    ctrl_.Send(CtrlFrame{CtrlKind::kHandshakeAck, frame.payload});
    ctrl_.Recv(&frame);  // Consume the ack.
  }
  set_state(VmState::kReady);
  AppendLog(StrFormat("[    0.000000] sim-linux %s booted",
                      KernelVersionName(config_.version)));
  JournalLifecycle("boot");
}

bool GuestVm::StartBootAsync(EventLoop* loop,
                             std::function<void(GuestVm&)> done) {
  VmState expected = VmState::kCold;
  if (!state_.compare_exchange_strong(expected, VmState::kBooting,
                                      std::memory_order_acq_rel)) {
    return false;
  }
  // One injector draw per start attempt, mirroring the synchronous path's
  // one-draw-per-execution budget. Only a boot-failure outcome applies to a
  // cold start; other kinds leave the boot on track.
  const std::optional<FaultKind> fault = injector_.Draw();
  if (fault.has_value() && m_fault_injected_[0] != nullptr) {
    m_fault_injected_[static_cast<size_t>(*fault)]->Add();
  }
  const bool failed = fault == FaultKind::kBootFailure;
  loop->ScheduleAfter(
      latency_.boot, [this, loop, failed, done = std::move(done)]() mutable {
        FinishBootTimer(loop, failed, std::move(done));
      });
  return true;
}

void GuestVm::FinishBootTimer(EventLoop* loop, bool boot_failed,
                              std::function<void(GuestVm&)> done) {
  if (boot_failed) {
    infra_faults_.fetch_add(1, std::memory_order_relaxed);
    consecutive_failures_.fetch_add(1, std::memory_order_relaxed);
    AppendLog(StrFormat("[ fault  ] boot failed: %s",
                        ExecFailureName(ExecFailure::kBootFailure)));
    set_state(VmState::kCrashed);
    JournalLifecycleAt(loop->now(), "boot-failure");
  } else {
    ctrl_.Send(CtrlFrame{CtrlKind::kHandshake, 0xcafe});
    CtrlFrame frame;
    if (ctrl_.Recv(&frame) && frame.kind == CtrlKind::kHandshake) {
      ctrl_.Send(CtrlFrame{CtrlKind::kHandshakeAck, frame.payload});
      ctrl_.Recv(&frame);
    }
    set_state(VmState::kReady);
    AppendLog(StrFormat("[    0.000000] sim-linux %s booted",
                        KernelVersionName(config_.version)));
    JournalLifecycleAt(loop->now(), "boot");
  }
  if (done) {
    done(*this);
  }
}

bool GuestVm::StartRebootAsync(EventLoop* loop,
                               std::function<void(GuestVm&)> done) {
  VmState expected = VmState::kCrashed;
  if (!state_.compare_exchange_strong(expected, VmState::kRebooting,
                                      std::memory_order_acq_rel)) {
    expected = VmState::kQuarantined;
    if (!state_.compare_exchange_strong(expected, VmState::kRebooting,
                                        std::memory_order_acq_rel)) {
      return false;
    }
  }
  loop->ScheduleAfter(latency_.reboot,
                      [this, loop, done = std::move(done)]() mutable {
                        FinishRebootTimer(loop, std::move(done));
                      });
  return true;
}

void GuestVm::FinishRebootTimer(EventLoop* loop,
                                std::function<void(GuestVm&)> done) {
  AppendLog("[ reboot ] restarting crashed guest");
  JournalLifecycleAt(loop->now(), "reboot");
  set_state(VmState::kReady);
  if (m_reboots_ != nullptr) {
    m_reboots_->Add();
  }
  if (done) {
    done(*this);
  }
}

void GuestVm::JournalLifecycle(const char* what) {
  JournalLifecycleAt(clock_->now(), what);
}

void GuestVm::JournalLifecycleAt(SimClock::Nanos at, const char* what) {
  if (journal_ != nullptr) {
    journal_->Record(JournalKind::kVmLifecycle, at,
                     execs_.load(std::memory_order_relaxed),
                     consecutive_failures_.load(std::memory_order_relaxed), 0,
                     what);
  }
}

ExecResult GuestVm::FailWith(ExecFailure failure) {
  infra_faults_.fetch_add(1, std::memory_order_relaxed);
  consecutive_failures_.fetch_add(1, std::memory_order_relaxed);
  AppendLog(StrFormat("[ fault  ] exec failed: %s", ExecFailureName(failure)));
  ExecResult result;
  result.failure = failure;
  return result;
}

ExecResult GuestVm::Exec(const Prog& prog, Bitmap* global_coverage) {
  const SimClock::Nanos start = clock_->now();
  const std::optional<FaultKind> fault = injector_.Draw();
  if (fault.has_value() && m_fault_injected_[0] != nullptr) {
    m_fault_injected_[static_cast<size_t>(*fault)]->Add();
  }

  if (fault == FaultKind::kBootFailure) {
    // The guest dies (or was down) and the automatic restart fails: the VM
    // burns the boot budget and stays down until the recovery policy or a
    // later, fault-free Exec brings it back.
    const VmState s = state();
    clock_->Advance(s == VmState::kReady || s == VmState::kExecuting
                        ? latency_.reboot
                        : latency_.boot);
    set_state(VmState::kCrashed);
    JournalLifecycle("boot-failure");
    return FailWith(ExecFailure::kBootFailure);
  }
  if (state() == VmState::kCold || state() == VmState::kBooting) {
    Boot();
  }
  if (down()) {
    set_state(VmState::kRebooting);
    clock_->Advance(latency_.reboot);
    AppendLog("[ reboot ] restarting crashed guest");
    JournalLifecycle("reboot");
    set_state(VmState::kReady);
    if (m_reboots_ != nullptr) {
      m_reboots_->Add();
    }
  }

  if (fault == FaultKind::kVmCrash) {
    // The QEMU instance is lost mid-program: partial wall-clock cost, no
    // reply, and the next execution pays a reboot.
    clock_->Advance(latency_.exec_overhead / 2);
    set_state(VmState::kCrashed);
    return FailWith(ExecFailure::kVmLost);
  }
  if (fault == FaultKind::kExecTimeout) {
    // The in-guest agent hangs; the watchdog waits out its budget and the
    // guest must be reset to get a fresh executor.
    clock_->Advance(latency_.exec_timeout);
    set_state(VmState::kCrashed);
    return FailWith(ExecFailure::kTimeout);
  }
  // Ring lifecycle faults on the legacy transport degrade to their closest
  // shm-channel equivalent, so one fault plan stays valid on both paths and
  // the per-program failure kinds match the ring path exactly.
  if (fault == FaultKind::kRingSetup || fault == FaultKind::kRingTorn) {
    // Setup/register/mmap failure or a torn submission: a wasted round trip
    // that never became a usable execution.
    clock_->Advance(latency_.exec_overhead);
    return FailWith(fault == FaultKind::kRingSetup ? ExecFailure::kRingSetup
                                                   : ExecFailure::kRingTorn);
  }
  if (fault == FaultKind::kRingStall) {
    // A lost completion looks like a hung executor from the host: the
    // watchdog budget burns and the guest is reset to resynchronize.
    clock_->Advance(latency_.exec_timeout);
    set_state(VmState::kCrashed);
    return FailWith(ExecFailure::kRingStall);
  }

  std::vector<uint8_t> bytes = SerializeProg(prog);
  if (fault == FaultKind::kTruncatedResult ||
      fault == FaultKind::kBitFlipResult) {
    // Transport corruption: the executor sees damaged wire bytes. The decode
    // attempt runs (exercising the hardened deserializer) but whatever comes
    // out is discarded — a corrupted reply must never contribute feedback,
    // so no coverage bitmap is offered and no calls are returned.
    if (!bytes.empty()) {
      if (fault == FaultKind::kTruncatedResult) {
        bytes.resize(injector_.Rand() % bytes.size());
      } else {
        bytes[injector_.Rand() % bytes.size()] ^=
            static_cast<uint8_t>(1u << (injector_.Rand() % 8));
      }
    }
    ShmChannel& shm = EnsureShm();
    if (shm.WriteProg(bytes)) {
      EnsureExecutor().RunSerialized(shm.prog_data(), shm.prog_size(),
                                     nullptr);
    }
    clock_->Advance(latency_.exec_overhead);
    return FailWith(ExecFailure::kCorruptedReply);
  }

  ShmChannel& shm = EnsureShm();
  if (!shm.WriteProg(bytes)) {
    LOG_WARNING << "program too large for shm region (" << bytes.size()
                << " bytes)";
    return ExecResult{};
  }
  ctrl_.Send(CtrlFrame{CtrlKind::kExecRequest, bytes.size()});
  set_state(VmState::kExecuting);
  ExecResult result = EnsureExecutor().RunSerialized(shm.prog_data(),
                                                     shm.prog_size(),
                                                     global_coverage);
  CtrlFrame frame;
  ctrl_.Recv(&frame);  // The request we queued; the reply follows.
  ctrl_.Send(CtrlFrame{CtrlKind::kExecReply, result.calls.size()});
  ctrl_.Recv(&frame);

  execs_.fetch_add(1, std::memory_order_relaxed);
  consecutive_failures_.store(0, std::memory_order_relaxed);
  clock_->Advance(latency_.exec_overhead +
                  latency_.per_call * prog.size());
  if (fault == FaultKind::kSlowVm) {
    clock_->Advance(latency_.slow_penalty);
    AppendLog("[ fault  ] slow round trip (host contention)");
  }
  if (m_execs_ != nullptr) {
    m_execs_->Add();
    m_rtt_->Observe(clock_->now() - start);
  }
  if (result.Crashed()) {
    crashes_.fetch_add(1, std::memory_order_relaxed);
    set_state(VmState::kCrashed);
    ctrl_.Send(CtrlFrame{CtrlKind::kCrashNotice,
                         static_cast<uint64_t>(result.crash->bug)});
    ctrl_.Recv(&frame);
    AppendLog(StrFormat("BUG: %s", result.crash->title.c_str()));
  } else {
    set_state(VmState::kReady);
  }
  return result;
}

std::vector<RingCompletion> GuestVm::ExecBatch(
    const std::vector<const Prog*>& progs, Bitmap* global_coverage) {
  ExecRing& ring = EnsureRing();
  std::vector<RingCompletion> out;
  out.reserve(progs.size());
  size_t next = 0;
  while (out.size() < progs.size()) {
    // Submission phase: fill the SQ until it is full or the next program
    // exceeds the slot budget. Tags are batch indices, so completion order
    // can be checked against submission order.
    bool oversized = false;
    const uint64_t first_tag = next;
    size_t submitted = 0;
    while (next < progs.size()) {
      const std::vector<uint8_t> bytes = SerializeProg(*progs[next]);
      if (bytes.size() > ring.sq().payload_capacity()) {
        oversized = true;
        break;
      }
      if (!ring.sq().Push(bytes.data(), bytes.size(), next)) {
        break;  // SQ full: drain what is queued, then keep submitting.
      }
      if (m_ring_submitted_ != nullptr) {
        m_ring_submitted_->Add();
      }
      ++submitted;
      ++next;
    }
    if (submitted > 0) {
      DrainRing(progs, first_tag, submitted, global_coverage, &out);
      continue;  // Re-enter submission with an empty SQ.
    }
    if (oversized) {
      // Spill: the program cannot travel through a fixed slot, so it takes
      // the one-at-a-time channel. Its fault draw happens inside Exec,
      // which keeps the per-program decision stream aligned with a pure
      // legacy sequence.
      ExecResult result = Exec(*progs[next], global_coverage);
      if (m_ring_spills_ != nullptr) {
        m_ring_spills_->Add();
      }
      out.push_back(
          RingCompletion{next, std::move(result), clock_->now()});
      ++next;
      continue;
    }
    break;  // Defensive: nothing submitted and nothing to spill.
  }
  return out;
}

void GuestVm::DrainRing(const std::vector<const Prog*>& progs,
                        uint64_t first_tag, size_t count,
                        Bitmap* global_coverage,
                        std::vector<RingCompletion>* out) {
  ExecRing& ring = EnsureRing();
  if (state() == VmState::kCold || state() == VmState::kBooting) {
    Boot();
  }
  if (down()) {
    set_state(VmState::kRebooting);
    clock_->Advance(latency_.reboot);
    AppendLog("[ reboot ] restarting crashed guest");
    JournalLifecycle("reboot");
    set_state(VmState::kReady);
    if (m_reboots_ != nullptr) {
      m_reboots_->Add();
    }
  }
  // One ring "enter": the host pays the round-trip overhead once per drain,
  // not once per program — the batched transport's throughput win.
  const SimClock::Nanos drain_start = clock_->now();
  clock_->Advance(latency_.exec_overhead);
  if (m_ring_drains_ != nullptr) {
    m_ring_drains_->Add();
    m_ring_drain_programs_->Observe(count);
  }

  // Executor side: multi-shot drain. Every pending submission is popped,
  // executed under the per-program fault model, and answered with one CQ
  // completion stamped at post time. No control-socket chatter: the rings
  // are the only host/guest channel on this path.
  std::vector<std::pair<uint64_t, SimClock::Nanos>> stamps;
  stamps.reserve(count);
  std::vector<uint8_t> bytes;
  uint64_t tag = 0;
  for (;;) {
    const SlotRing::Pop popped = ring.sq().TryPop(&bytes, &tag);
    if (popped == SlotRing::Pop::kEmpty) {
      break;
    }
    if (popped != SlotRing::Pop::kOk) {
      // A torn or replayed SQ entry was consumed and dropped; the reap
      // phase below surfaces the missing completion as a stall.
      continue;
    }
    const std::optional<FaultKind> fault = injector_.Draw();
    if (fault.has_value() && m_fault_injected_[0] != nullptr) {
      m_fault_injected_[static_cast<size_t>(*fault)]->Add();
    }
    ExecResult result;
    bool post = true;
    if (fault == FaultKind::kBootFailure) {
      const VmState s = state();
      clock_->Advance(s == VmState::kReady || s == VmState::kExecuting
                          ? latency_.reboot
                          : latency_.boot);
      set_state(VmState::kCrashed);
      JournalLifecycle("boot-failure");
      result = FailWith(ExecFailure::kBootFailure);
    } else {
      if (down()) {
        // A crash or loss earlier in the drain: the guest restarted and the
        // executor re-attached to the rings before taking the next entry.
        set_state(VmState::kRebooting);
        clock_->Advance(latency_.reboot);
        AppendLog("[ reboot ] restarting crashed guest");
        JournalLifecycle("reboot");
        set_state(VmState::kReady);
        if (m_reboots_ != nullptr) {
          m_reboots_->Add();
        }
      }
      if (fault == FaultKind::kVmCrash) {
        clock_->Advance(latency_.exec_overhead / 2);
        set_state(VmState::kCrashed);
        result = FailWith(ExecFailure::kVmLost);
      } else if (fault == FaultKind::kExecTimeout) {
        clock_->Advance(latency_.exec_timeout);
        set_state(VmState::kCrashed);
        result = FailWith(ExecFailure::kTimeout);
      } else if (fault == FaultKind::kRingSetup ||
                 fault == FaultKind::kRingTorn) {
        result = FailWith(fault == FaultKind::kRingSetup
                              ? ExecFailure::kRingSetup
                              : ExecFailure::kRingTorn);
      } else if (fault == FaultKind::kRingStall) {
        // The completion never lands: nothing is posted, no feedback leaks,
        // and the reaper times the tag out below.
        post = false;
      } else if (fault == FaultKind::kTruncatedResult ||
                 fault == FaultKind::kBitFlipResult) {
        // Same corruption model (and Rand stream) as the legacy transport.
        std::vector<uint8_t> corrupted = bytes;
        if (!corrupted.empty()) {
          if (fault == FaultKind::kTruncatedResult) {
            corrupted.resize(injector_.Rand() % corrupted.size());
          } else {
            corrupted[injector_.Rand() % corrupted.size()] ^=
                static_cast<uint8_t>(1u << (injector_.Rand() % 8));
          }
        }
        EnsureExecutor().RunSerialized(corrupted.data(), corrupted.size(),
                                       nullptr);
        result = FailWith(ExecFailure::kCorruptedReply);
      } else {
        const size_t prog_len =
            tag < progs.size() ? progs[static_cast<size_t>(tag)]->size() : 0;
        set_state(VmState::kExecuting);
        result =
            EnsureExecutor().RunSerialized(bytes.data(), bytes.size(),
                                           global_coverage);
        execs_.fetch_add(1, std::memory_order_relaxed);
        consecutive_failures_.store(0, std::memory_order_relaxed);
        clock_->Advance(latency_.per_call * prog_len);
        if (fault == FaultKind::kSlowVm) {
          clock_->Advance(latency_.slow_penalty);
          AppendLog("[ fault  ] slow round trip (host contention)");
        }
        if (m_execs_ != nullptr) {
          m_execs_->Add();
          m_rtt_->Observe(clock_->now() - drain_start);
        }
        if (result.Crashed()) {
          crashes_.fetch_add(1, std::memory_order_relaxed);
          set_state(VmState::kCrashed);
          AppendLog(StrFormat("BUG: %s", result.crash->title.c_str()));
        } else {
          set_state(VmState::kReady);
        }
      }
    }
    if (post) {
      const std::vector<uint8_t> cqe = EncodeCompletion(result);
      // A completion too large for a CQ slot (or a full CQ) is lost and
      // surfaces as a stall; the CQ is sized >= the SQ so a full CQ cannot
      // happen on the production path.
      if (ring.cq().Push(cqe.data(), cqe.size(), tag)) {
        stamps.emplace_back(tag, clock_->now());
        if (m_ring_completions_ != nullptr) {
          m_ring_completions_->Add();
        }
      }
    }
  }

  // Reap phase: pop completions (they arrive in post order), decode, and
  // stitch the post-time stamps back on. Any submitted tag without a
  // completion is timed out by the reaper — the wakeup-fallback watchdog —
  // as a ring stall, and the guest is reset to resynchronize the rings.
  std::vector<std::pair<uint64_t, ExecResult>> reaped;
  reaped.reserve(count);
  for (;;) {
    const SlotRing::Pop popped = ring.cq().TryPop(&bytes, &tag);
    if (popped == SlotRing::Pop::kEmpty) {
      break;
    }
    if (popped != SlotRing::Pop::kOk) {
      continue;  // Torn CQ entry: lost; surfaces as a stall below.
    }
    Result<ExecResult> decoded = DecodeCompletion(bytes.data(), bytes.size());
    if (!decoded.ok()) {
      AppendLog(StrFormat("[ ring   ] dropped completion: %s",
                          decoded.status().message().c_str()));
      continue;
    }
    reaped.emplace_back(tag, std::move(*decoded));
  }
  size_t ri = 0;
  for (size_t i = 0; i < count; ++i) {
    const uint64_t want = first_tag + i;
    if (ri < reaped.size() && reaped[ri].first == want) {
      SimClock::Nanos stamp = clock_->now();
      for (const auto& [stamp_tag, at] : stamps) {
        if (stamp_tag == want) {
          stamp = at;
          break;
        }
      }
      out->push_back(
          RingCompletion{want, std::move(reaped[ri].second), stamp});
      ++ri;
    } else {
      clock_->Advance(latency_.exec_timeout);
      set_state(VmState::kCrashed);
      out->push_back(
          RingCompletion{want, FailWith(ExecFailure::kRingStall),
                         clock_->now()});
      if (m_ring_stalls_ != nullptr) {
        m_ring_stalls_->Add();
      }
      if (journal_ != nullptr) {
        // Payload: a = lost tag, b = SQ depth, c = CQ depth at timeout.
        journal_->Record(JournalKind::kRingStall, clock_->now(), want,
                         ring.sq().size(), ring.cq().size());
      }
    }
  }
}

ExecResult GuestVm::ExecRingOne(const Prog& prog, Bitmap* global_coverage) {
  const std::vector<const Prog*> one = {&prog};
  std::vector<RingCompletion> completions = ExecBatch(one, global_coverage);
  if (completions.empty()) {
    return ExecResult{};
  }
  return std::move(completions.front().result);
}

void GuestVm::QuarantineReboot() {
  quarantines_.fetch_add(1, std::memory_order_relaxed);
  if (m_reboots_ != nullptr) {
    m_reboots_->Add();
  }
  consecutive_failures_.store(0, std::memory_order_relaxed);
  set_state(VmState::kRebooting);
  clock_->Advance(latency_.reboot);
  set_state(VmState::kReady);
  AppendLog("[ monitor] quarantined guest force-rebooted");
  JournalLifecycle("quarantine-reboot");
}

std::vector<std::string> GuestVm::DrainLog() {
  std::lock_guard<std::mutex> lock(log_mu_);
  std::vector<std::string> out;
  out.swap(log_);
  return out;
}

void GuestVm::AppendLog(std::string line) {
  std::lock_guard<std::mutex> lock(log_mu_);
  if (log_.size() < 4096) {
    log_.push_back(std::move(line));
  }
}

}  // namespace healer
