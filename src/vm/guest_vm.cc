#include "src/vm/guest_vm.h"

#include "src/base/logging.h"
#include "src/base/string_util.h"
#include "src/prog/serialize.h"

namespace healer {

GuestVm::GuestVm(const Target& target, const KernelConfig& config,
                 SimClock* clock, VmLatencyModel latency)
    : executor_(target, config), clock_(clock), latency_(latency) {}

void GuestVm::Boot() {
  clock_->Advance(latency_.boot);
  // Handshake over the control socket, as the in-guest agent does on start.
  ctrl_.Send(CtrlFrame{CtrlKind::kHandshake, 0xcafe});
  CtrlFrame frame;
  if (ctrl_.Recv(&frame) && frame.kind == CtrlKind::kHandshake) {
    ctrl_.Send(CtrlFrame{CtrlKind::kHandshakeAck, frame.payload});
    ctrl_.Recv(&frame);  // Consume the ack.
  }
  booted_ = true;
  down_ = false;
  AppendLog(StrFormat("[    0.000000] sim-linux %s booted",
                      KernelVersionName(executor_.config().version)));
}

ExecResult GuestVm::Exec(const Prog& prog, Bitmap* global_coverage) {
  if (!booted_) {
    Boot();
  }
  if (down_) {
    clock_->Advance(latency_.reboot);
    AppendLog("[ reboot ] restarting crashed guest");
    down_ = false;
  }
  const std::vector<uint8_t> bytes = SerializeProg(prog);
  if (!shm_.WriteProg(bytes)) {
    LOG_WARNING << "program too large for shm region (" << bytes.size()
                << " bytes)";
    return ExecResult{};
  }
  ctrl_.Send(CtrlFrame{CtrlKind::kExecRequest, bytes.size()});
  ExecResult result =
      executor_.RunSerialized(shm_.prog_data(), shm_.prog_size(),
                              global_coverage);
  CtrlFrame frame;
  ctrl_.Recv(&frame);  // The request we queued; the reply follows.
  ctrl_.Send(CtrlFrame{CtrlKind::kExecReply, result.calls.size()});
  ctrl_.Recv(&frame);

  ++execs_;
  clock_->Advance(latency_.exec_overhead +
                  latency_.per_call * prog.size());
  if (result.Crashed()) {
    ++crashes_;
    down_ = true;
    ctrl_.Send(CtrlFrame{CtrlKind::kCrashNotice,
                         static_cast<uint64_t>(result.crash->bug)});
    ctrl_.Recv(&frame);
    AppendLog(StrFormat("BUG: %s", result.crash->title.c_str()));
  }
  return result;
}

std::vector<std::string> GuestVm::DrainLog() {
  std::lock_guard<std::mutex> lock(log_mu_);
  std::vector<std::string> out;
  out.swap(log_);
  return out;
}

void GuestVm::AppendLog(std::string line) {
  std::lock_guard<std::mutex> lock(log_mu_);
  if (log_.size() < 4096) {
    log_.push_back(std::move(line));
  }
}

}  // namespace healer
