// Deterministic fault injection for the VM/exec substrate.
//
// The paper's real substrate loses QEMU instances, hangs executors and
// corrupts transports; a production fuzzer must survive all of it without
// polluting its feedback state. A FaultPlan configures, per campaign, the
// probability of injecting each fault kind into an execution; a per-VM
// FaultInjector (seeded from the campaign seed) turns the plan into a
// deterministic decision stream, so a campaign with faults is still a pure
// function of (options, seed, plan). RecoveryPolicy describes how the
// fuzzing loop reacts: bounded retry with exponential backoff and
// quarantine-reboot of repeatedly failing VMs. FaultStats aggregates both
// sides for CampaignResult and the CLI report.

#ifndef SRC_VM_FAULT_PLAN_H_
#define SRC_VM_FAULT_PLAN_H_

#include <array>
#include <cstdint>
#include <optional>
#include <string>

#include "src/base/rng.h"
#include "src/base/sim_clock.h"
#include "src/base/status.h"

namespace healer {

enum class FaultKind : uint8_t {
  kVmCrash = 0,      // The guest dies mid-program (QEMU instance lost).
  kExecTimeout,      // The in-guest executor hangs until the watchdog fires.
  kTruncatedResult,  // The shm wire bytes are cut short in transit.
  kBitFlipResult,    // One bit of the shm wire bytes is corrupted.
  kSlowVm,           // Latency spike: the exec completes but takes longer.
  kBootFailure,      // The guest fails to (re)boot and stays down.
  // Ring-transport lifecycle faults (exec_ring.h), modelled on the
  // setup/register/mmap/enter failure points a real io_uring transport
  // probes. On the legacy one-at-a-time path they degrade to the closest
  // shm-channel equivalent so any plan is valid on either transport.
  kRingSetup,        // Ring setup/register/mmap equivalent fails.
  kRingTorn,         // A submission entry is torn mid-flight in the SQ.
  kRingStall,        // A completion stalls; the reaper waits out the watchdog.
};
inline constexpr size_t kNumFaultKinds = 9;

const char* FaultKindName(FaultKind kind);

// Per-campaign fault configuration: the probability of injecting each fault
// kind into one execution (evaluated in declaration order, first hit wins).
struct FaultPlan {
  std::array<double, kNumFaultKinds> rates = {};

  double rate(FaultKind kind) const {
    return rates[static_cast<size_t>(kind)];
  }
  void set_rate(FaultKind kind, double rate) {
    rates[static_cast<size_t>(kind)] = rate;
  }
  bool empty() const {
    for (double r : rates) {
      if (r > 0.0) {
        return false;
      }
    }
    return true;
  }

  // The same rate for every fault kind.
  static FaultPlan Uniform(double rate);
};

// Parses a plan spec of the form "crash=0.01,timeout=0.005,boot=0.001".
// Keys: crash, timeout, trunc, bitflip, slow, boot, ringsetup, torn, stall.
// Unlisted kinds stay 0.
Result<FaultPlan> ParseFaultPlan(const std::string& spec);

// How the fuzzing loop reacts to failed executions.
struct RecoveryPolicy {
  // Retries per program before the execution (and its feedback) is dropped.
  int max_retries = 3;
  // Simulated pause before the first retry; doubles on each further retry.
  SimClock::Nanos backoff = 200 * SimClock::kMillisecond;
  // Consecutive failures on one VM before it is quarantine-rebooted.
  uint64_t quarantine_threshold = 3;
};

// Fault / recovery accounting, surfaced through CampaignResult.
struct FaultStats {
  std::array<uint64_t, kNumFaultKinds> injected = {};
  uint64_t failed_execs = 0;  // Executions that surfaced a typed failure.
  uint64_t retries = 0;       // Re-executions the recovery policy issued.
  uint64_t recovered = 0;     // Programs that succeeded after >= 1 retry.
  uint64_t discarded = 0;     // Programs dropped after the retry budget.
  uint64_t quarantines = 0;   // Quarantine-reboots of unhealthy VMs.

  uint64_t TotalInjected() const;
  void Merge(const FaultStats& other);
  bool operator==(const FaultStats& other) const = default;
};

// Per-VM deterministic fault source. Decisions depend only on (plan, seed)
// and the number of draws so far — never on program content — so the
// campaign-level execution schedule stays reproducible.
class FaultInjector {
 public:
  FaultInjector() = default;
  FaultInjector(const FaultPlan& plan, uint64_t seed);

  bool enabled() const { return enabled_; }

  // Decides the fault (if any) injected into the next execution.
  std::optional<FaultKind> Draw();

  // Deterministic corruption source for truncation/bit-flip faults.
  uint64_t Rand();

  const std::array<uint64_t, kNumFaultKinds>& injected() const {
    return injected_;
  }

 private:
  FaultPlan plan_;
  Rng rng_{0};
  bool enabled_ = false;
  std::array<uint64_t, kNumFaultKinds> injected_ = {};
};

}  // namespace healer

#endif  // SRC_VM_FAULT_PLAN_H_
