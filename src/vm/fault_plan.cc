#include "src/vm/fault_plan.h"

#include <cstdlib>

#include "src/base/string_util.h"

namespace healer {

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kVmCrash:
      return "crash";
    case FaultKind::kExecTimeout:
      return "timeout";
    case FaultKind::kTruncatedResult:
      return "trunc";
    case FaultKind::kBitFlipResult:
      return "bitflip";
    case FaultKind::kSlowVm:
      return "slow";
    case FaultKind::kBootFailure:
      return "boot";
    case FaultKind::kRingSetup:
      return "ringsetup";
    case FaultKind::kRingTorn:
      return "torn";
    case FaultKind::kRingStall:
      return "stall";
  }
  return "?";
}

FaultPlan FaultPlan::Uniform(double rate) {
  FaultPlan plan;
  plan.rates.fill(rate);
  return plan;
}

Result<FaultPlan> ParseFaultPlan(const std::string& spec) {
  FaultPlan plan;
  for (const std::string& entry : StrSplit(spec, ',')) {
    if (entry.empty()) {
      continue;
    }
    const size_t eq = entry.find('=');
    if (eq == std::string::npos) {
      return ParseError(
          StrFormat("fault spec entry '%s' is not key=rate", entry.c_str()));
    }
    const std::string key = entry.substr(0, eq);
    char* end = nullptr;
    const double rate = std::strtod(entry.c_str() + eq + 1, &end);
    if (end == entry.c_str() + eq + 1 || rate < 0.0 || rate > 1.0) {
      return ParseError(
          StrFormat("bad fault rate in entry '%s'", entry.c_str()));
    }
    bool known = false;
    for (size_t i = 0; i < kNumFaultKinds; ++i) {
      if (key == FaultKindName(static_cast<FaultKind>(i))) {
        plan.rates[i] = rate;
        known = true;
        break;
      }
    }
    if (!known) {
      return ParseError(StrFormat("unknown fault kind '%s'", key.c_str()));
    }
  }
  return plan;
}

uint64_t FaultStats::TotalInjected() const {
  uint64_t total = 0;
  for (uint64_t n : injected) {
    total += n;
  }
  return total;
}

void FaultStats::Merge(const FaultStats& other) {
  for (size_t i = 0; i < kNumFaultKinds; ++i) {
    injected[i] += other.injected[i];
  }
  failed_execs += other.failed_execs;
  retries += other.retries;
  recovered += other.recovered;
  discarded += other.discarded;
  quarantines += other.quarantines;
}

FaultInjector::FaultInjector(const FaultPlan& plan, uint64_t seed)
    : plan_(plan), rng_(seed), enabled_(!plan.empty()) {}

std::optional<FaultKind> FaultInjector::Draw() {
  if (!enabled_) {
    return std::nullopt;
  }
  for (size_t i = 0; i < kNumFaultKinds; ++i) {
    const double rate = plan_.rates[i];
    if (rate > 0.0 && rng_.Bernoulli(rate)) {
      ++injected_[i];
      return static_cast<FaultKind>(i);
    }
  }
  return std::nullopt;
}

uint64_t FaultInjector::Rand() { return rng_.Next(); }

}  // namespace healer
