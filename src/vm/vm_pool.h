// VmPool + Monitor: manage a fleet of guest VMs and collect their console
// logs on a background IO thread, mirroring HEALER's "background
// asynchronous IO" worker (Fig. 3).

#ifndef SRC_VM_VM_POOL_H_
#define SRC_VM_VM_POOL_H_

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/vm/guest_vm.h"

namespace healer {

class VmPool {
 public:
  VmPool(const Target& target, const KernelConfig& config, SimClock* clock,
         size_t count, VmLatencyModel latency = VmLatencyModel());

  size_t size() const { return vms_.size(); }
  GuestVm& vm(size_t index) { return *vms_[index]; }

  // Round-robin pick for the next execution.
  GuestVm& Next() {
    GuestVm& vm = *vms_[next_];
    next_ = (next_ + 1) % vms_.size();
    return vm;
  }

  uint64_t TotalExecs() const;
  uint64_t TotalCrashes() const;

 private:
  std::vector<std::unique_ptr<GuestVm>> vms_;
  size_t next_ = 0;
};

// Background log collector. Call Start() with the pool; it periodically
// drains every VM's console buffer into a bounded in-memory journal that
// the caller can snapshot. Stop() joins the thread.
class Monitor {
 public:
  explicit Monitor(VmPool* pool) : pool_(pool) {}
  ~Monitor() { Stop(); }

  void Start();
  void Stop();

  // Drains VM logs synchronously (also used internally by the thread).
  void Poll();

  std::vector<std::string> Snapshot() const;
  size_t lines_collected() const { return lines_collected_; }

 private:
  VmPool* pool_;
  std::thread thread_;
  std::atomic<bool> running_{false};
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<std::string> journal_;
  std::atomic<size_t> lines_collected_{0};
};

}  // namespace healer

#endif  // SRC_VM_VM_POOL_H_
