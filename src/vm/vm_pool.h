// VmPool + Monitor: manage a fleet of guest VMs and collect their console
// logs on a background IO thread, mirroring HEALER's "background
// asynchronous IO" worker (Fig. 3). The Monitor also keeps per-VM health
// accounting (execs, kernel crashes, infra faults, quarantines) so the
// recovery policy and reports can see which guests are struggling.

#ifndef SRC_VM_VM_POOL_H_
#define SRC_VM_VM_POOL_H_

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/vm/guest_vm.h"

namespace healer {

class VmPool {
 public:
  // A non-empty `fault_plan` arms every VM's injector; each VM draws from
  // its own stream derived from `fault_seed` and its index. A non-null
  // `metrics` registry is shared by every VM for fleet-wide telemetry.
  VmPool(const Target& target, const KernelConfig& config, SimClock* clock,
         size_t count, VmLatencyModel latency = VmLatencyModel(),
         const FaultPlan& fault_plan = FaultPlan(), uint64_t fault_seed = 0,
         MetricRegistry* metrics = nullptr);

  size_t size() const { return vms_.size(); }
  GuestVm& vm(size_t index) { return *vms_[index]; }

  // Round-robin pick for the next execution.
  GuestVm& Next() {
    GuestVm& vm = *vms_[next_];
    next_ = (next_ + 1) % vms_.size();
    return vm;
  }

  uint64_t TotalExecs() const;
  uint64_t TotalCrashes() const;
  uint64_t TotalInfraFaults() const;

  // Sums every VM injector's per-kind injected counters; the recovery-side
  // fields (retries, quarantines, ...) are zero — the fuzzer merges its own.
  FaultStats InjectedStats() const;

 private:
  std::vector<std::unique_ptr<GuestVm>> vms_;
  size_t next_ = 0;
};

// Point-in-time health of one guest, snapshotted by the Monitor.
struct VmHealth {
  size_t index = 0;
  uint64_t execs = 0;
  uint64_t kernel_crashes = 0;
  uint64_t infra_faults = 0;
  uint64_t consecutive_failures = 0;
  uint64_t quarantines = 0;
};

// Background log collector. Call Start() with the pool; it periodically
// drains every VM's console buffer into a bounded in-memory journal that
// the caller can snapshot. Stop() joins the thread.
class Monitor {
 public:
  explicit Monitor(VmPool* pool) : pool_(pool) {}
  ~Monitor() { Stop(); }

  void Start();
  void Stop();

  // Drains VM logs synchronously (also used internally by the thread).
  void Poll();

  std::vector<std::string> Snapshot() const;
  size_t lines_collected() const { return lines_collected_; }

  // Per-VM health accounting, safe to call while workers are executing.
  std::vector<VmHealth> HealthReport() const;

 private:
  VmPool* pool_;
  std::thread thread_;
  std::atomic<bool> running_{false};
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<std::string> journal_;
  std::atomic<size_t> lines_collected_{0};
};

}  // namespace healer

#endif  // SRC_VM_VM_POOL_H_
