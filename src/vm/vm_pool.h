// VmPool + Monitor: manage a fleet of guest VMs, mirroring HEALER's
// "background asynchronous IO" worker (Fig. 3).
//
// Two topologies share one class (DESIGN.md §12):
//
//   * Legacy (default): `count` VMs, one lane per VM. AcquireReady(lane)
//     returns the pinned VM and Release is a no-op, so a worker that always
//     uses its own lane observes byte-identical behavior to the historical
//     one-VM-per-worker pool — this is what keeps the 8-VM golden
//     fingerprint stable.
//   * Fleet (FleetOptions with lanes > 0 and lanes < count): thousands of
//     VM state machines multiplexed over `shards` EventLoop reactors and
//     `lanes` ready freelists. VM i belongs to lane i % lanes; lane l is
//     pumped by shard l % shards. Cold VMs are armed with StartBootAsync at
//     construction; crashed VMs released by a worker are parked on their
//     shard and rebooted by a reactor timer, so a 512-guest crash storm
//     costs one reboot latency of virtual time and zero extra OS threads.
//
// Workers pump shards cooperatively (PumpShard try-locks, so concurrent
// pumpers never block each other); no shard owns a thread. The shared
// campaign SimClock only moves forward: a starved AcquireReady advances it
// to the shard's next armed deadline, bridging worker time and reactor time.
//
// The Monitor keeps per-VM health accounting (execs, kernel crashes, infra
// faults, quarantines) and drains guest console logs — not on a dedicated
// thread any more, but via self-rescheduling reactor timers with a
// SimClock-derived cadence, so log-drain ordering is a function of
// simulated time, not host scheduling.

#ifndef SRC_VM_VM_POOL_H_
#define SRC_VM_VM_POOL_H_

#include <atomic>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/base/event_loop.h"
#include "src/vm/guest_vm.h"

namespace healer {

// Fleet topology. Defaults preserve the legacy one-lane-per-VM pool.
struct FleetOptions {
  // Ready freelists (one per worker in the parallel fuzzer). 0 means one
  // lane per VM — the legacy pinned topology.
  size_t lanes = 0;
  // Reactor shards. Clamped to [1, lanes].
  size_t shards = 1;
};

// Point-in-time census of one reactor shard, for the status line and the
// /status introspection endpoint.
struct FleetShardSummary {
  size_t shard = 0;
  size_t vms = 0;
  size_t cold = 0;
  size_t booting = 0;
  size_t ready = 0;
  size_t executing = 0;
  size_t crashed = 0;
  size_t rebooting = 0;
  size_t quarantined = 0;
  size_t timers_pending = 0;
  uint64_t events_dispatched = 0;
};

class VmPool {
 public:
  // A non-empty `fault_plan` arms every VM's injector; each VM draws from
  // its own stream derived from `fault_seed` and its index. A non-null
  // `metrics` registry is shared by every VM for fleet-wide telemetry.
  VmPool(const Target& target, const KernelConfig& config, SimClock* clock,
         size_t count, VmLatencyModel latency = VmLatencyModel(),
         const FaultPlan& fault_plan = FaultPlan(), uint64_t fault_seed = 0,
         MetricRegistry* metrics = nullptr,
         FleetOptions fleet = FleetOptions());

  size_t size() const { return vms_.size(); }
  GuestVm& vm(size_t index) { return *vms_[index]; }
  const GuestVm& vm(size_t index) const { return *vms_[index]; }

  // Round-robin pick for the next execution, skipping guests that are down
  // or quarantined so fresh work never lands on a dead VM while a healthy
  // one is available. When every guest is down the plain round-robin pick
  // returns (the recovery policy reboots it inline), guaranteeing progress.
  GuestVm& Next();

  // ---- fleet topology ----
  bool fleet() const { return !legacy_; }
  size_t num_lanes() const { return num_lanes_; }
  size_t num_shards() const { return loops_.size(); }
  size_t shard_of_lane(size_t lane) const { return lane % loops_.size(); }
  EventLoop& shard(size_t s) { return *loops_[s]; }

  // Pops a ready VM from `lane`'s freelist. In legacy mode this returns the
  // lane's pinned VM unconditionally (no state inspection, no pumping — the
  // historical path). In fleet mode a dry freelist pumps the owning shard,
  // and if the shard is merely waiting on virtual time (every VM mid-boot
  // or mid-reboot), advances the shared clock to its next armed deadline —
  // the bridge that makes overlapping lifecycle latencies cost their max,
  // not their sum. Falls back to the lane's first VM if the shard has
  // nothing armed, so callers always get a guest.
  GuestVm* AcquireReady(size_t lane);

  // Returns a VM acquired from `lane`. Healthy guests rejoin the lane's
  // freelist; down guests are parked on their shard, whose completion
  // handler arms StartRebootAsync — the VM re-enters the freelist when the
  // reboot timer fires. No-op in legacy mode.
  void Release(size_t lane, GuestVm* vm);

  // Runs the shard's due timers and completion handlers up to the shared
  // clock's current time. Try-locks: a shard already being pumped by
  // another worker is skipped (it is making progress). Safe to call from
  // any worker; cheap when nothing is due.
  void PumpShard(size_t s);

  // Attaches the journal that reactor-side lifecycle records (async boots,
  // reboots) of shard `s` are written into while no worker owns the VM.
  // Flushed by whichever worker pumps the shard.
  void set_shard_journal(size_t s, JournalWriter* journal) {
    shards_[s]->journal = journal;
  }

  // Per-shard state census (lock-free reads of each VM's state atomic).
  std::vector<FleetShardSummary> ShardSummaries() const;

  uint64_t TotalExecs() const;
  uint64_t TotalCrashes() const;
  uint64_t TotalInfraFaults() const;

  // Sums every VM injector's per-kind injected counters; the recovery-side
  // fields (retries, quarantines, ...) are zero — the fuzzer merges its own.
  FaultStats InjectedStats() const;

 private:
  struct Lane {
    std::mutex mu;
    std::deque<GuestVm*> ready;
  };
  struct Shard {
    std::unique_ptr<EventLoop> loop;
    std::mutex pump_mu;     // Serializes pumpers; try-locked.
    std::mutex parked_mu;   // Guards `parked`.
    std::vector<std::pair<GuestVm*, size_t>> parked;  // (vm, lane)
    size_t reboot_source = 0;  // Completion-source doorbell index.
    JournalWriter* journal = nullptr;
  };

  size_t lane_of(size_t vm_index) const { return vm_index % num_lanes_; }
  // Routes a VM whose lifecycle transition just settled: healthy guests go
  // to their lane's freelist, down guests to their shard's parked list
  // (ringing the reboot doorbell).
  void OnLifecycleSettled(size_t lane, GuestVm* vm);

  SimClock* clock_;
  std::vector<std::unique_ptr<GuestVm>> vms_;
  size_t next_ = 0;
  bool legacy_ = true;
  size_t num_lanes_ = 0;
  std::vector<std::unique_ptr<Lane>> lanes_;
  std::vector<std::unique_ptr<Shard>> shards_;
  // Shard loops, aliasing shards_[s]->loop for terse access.
  std::vector<EventLoop*> loops_;
};

// Point-in-time health of one guest, snapshotted by the Monitor.
struct VmHealth {
  size_t index = 0;
  uint64_t execs = 0;
  uint64_t kernel_crashes = 0;
  uint64_t infra_faults = 0;
  uint64_t consecutive_failures = 0;
  uint64_t quarantines = 0;
};

// Console-log collector. Start() arms one self-rescheduling timer per
// reactor shard (no dedicated thread): each firing drains that shard's VM
// console buffers into a bounded in-memory journal that the caller can
// snapshot. The cadence is simulated time — kPollPeriod on the shard's
// EventLoop — so drain ordering is deterministic across hosts. Stop()
// cancels the timers and performs a final synchronous drain, so a pool
// whose shards were never pumped (the legacy path) still collects every
// line by the time Stop() returns.
class Monitor {
 public:
  // Log-drain cadence in simulated time (DESIGN.md §12: the historical 10ms
  // wall-clock wait_for, re-anchored onto SimClock). One simulated second
  // keeps the relative rate of the old thread — a handful of executions
  // (~300 sim-ms each) per drain — without scanning the fleet dozens of
  // times per program.
  static constexpr SimClock::Nanos kPollPeriod = SimClock::kSecond;

  explicit Monitor(VmPool* pool) : pool_(pool) {}
  ~Monitor() { Stop(); }

  void Start();
  void Stop();

  // Drains every VM's console buffer synchronously (also what the per-shard
  // timers do, one shard at a time).
  void Poll();

  std::vector<std::string> Snapshot() const;
  size_t lines_collected() const { return lines_collected_; }

  // Per-VM health accounting, safe to call while workers are executing.
  std::vector<VmHealth> HealthReport() const;

 private:
  void ArmShardTimer(size_t s);
  // Drains the console buffers of every VM owned by shard `s`.
  void PollShard(size_t s);
  void DrainVm(size_t index);

  VmPool* pool_;
  std::atomic<bool> running_{false};
  mutable std::mutex mu_;
  std::vector<EventLoop::TimerId> timers_;  // One per shard; 0 = disarmed.
  std::vector<std::string> journal_;
  std::atomic<size_t> lines_collected_{0};
};

}  // namespace healer

#endif  // SRC_VM_VM_POOL_H_
