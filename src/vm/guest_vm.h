// GuestVm: one QEMU-instance equivalent. Owns the executor (the in-guest
// agent), the shared-memory channel and the control socket, performs the
// boot handshake, and advances the campaign's simulated clock with modelled
// latencies: booting, per-program round trips, and crash reboots.
//
// The latency model maps the paper's wall-clock axis onto the simulator:
// one program round trip costs ~overhead + per-call time, so a 24-hour
// campaign corresponds to a few hundred thousand executions.

#ifndef SRC_VM_GUEST_VM_H_
#define SRC_VM_GUEST_VM_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "src/base/sim_clock.h"
#include "src/exec/executor.h"
#include "src/exec/shm_channel.h"

namespace healer {

struct VmLatencyModel {
  SimClock::Nanos boot = 10 * SimClock::kSecond;
  SimClock::Nanos reboot = 20 * SimClock::kSecond;
  SimClock::Nanos exec_overhead = 300 * SimClock::kMillisecond;
  SimClock::Nanos per_call = 10 * SimClock::kMillisecond;
};

class GuestVm {
 public:
  // `clock` is shared with the campaign and must outlive the VM.
  GuestVm(const Target& target, const KernelConfig& config, SimClock* clock,
          VmLatencyModel latency = VmLatencyModel());

  // Boots the guest and performs the executor handshake.
  void Boot();
  bool booted() const { return booted_; }

  // Serializes `prog` into shared memory, round-trips through the executor,
  // and advances the simulated clock. A crashing program marks the VM as
  // down; the next Exec reboots it first (modelling crash-and-restart).
  ExecResult Exec(const Prog& prog, Bitmap* global_coverage);

  // Guest console log lines accumulated since the last Drain (consumed by
  // the Monitor's background IO thread).
  std::vector<std::string> DrainLog();

  const Executor& executor() const { return executor_; }
  uint64_t execs() const { return execs_; }
  uint64_t crashes() const { return crashes_; }

 private:
  void AppendLog(std::string line);

  Executor executor_;
  ShmChannel shm_;
  ControlSocket ctrl_;
  SimClock* clock_;
  VmLatencyModel latency_;
  bool booted_ = false;
  bool down_ = false;
  uint64_t execs_ = 0;
  uint64_t crashes_ = 0;
  std::mutex log_mu_;  // The Monitor drains the log from its own thread.
  std::vector<std::string> log_;
};

}  // namespace healer

#endif  // SRC_VM_GUEST_VM_H_
