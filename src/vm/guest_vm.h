// GuestVm: one QEMU-instance equivalent. Owns the executor (the in-guest
// agent), the shared-memory channel and the control socket, performs the
// boot handshake, and advances the campaign's simulated clock with modelled
// latencies: booting, per-program round trips, and crash reboots.
//
// The latency model maps the paper's wall-clock axis onto the simulator:
// one program round trip costs ~overhead + per-call time, so a 24-hour
// campaign corresponds to a few hundred thousand executions.
//
// Lifecycle is an explicit state machine (DESIGN.md §12):
//
//   kCold ──boot──▶ kBooting ──handshake──▶ kReady ⇄ kExecuting
//                                             │  ▲
//                                crash/fault  ▼  │ reboot done
//                                          kCrashed ──▶ kRebooting
//                                             │              ▲
//                                  recovery   ▼              │
//                                        kQuarantined ───────┘
//
// Two drivers advance it. The synchronous path (Exec/ExecBatch) charges the
// shared campaign clock inline, exactly as it always has — a crashed guest
// reboots at the top of its next execution. The reactor path
// (StartBootAsync/StartRebootAsync) instead arms a timer on an EventLoop
// shard and transitions when it fires, so hundreds of overlapping
// boots/reboots cost one latency of virtual time, not their sum. Both paths
// share the same state variable, counters, log lines and journal records.
//
// A GuestVm may carry a FaultInjector (see fault_plan.h). Injected faults
// surface as typed ExecFailure results that never carry feedback: a faulted
// execution leaves the global coverage bitmap untouched and returns no
// per-call results, so callers can discard it safely. Health counters
// (consecutive failures, infra faults, quarantines) feed the recovery
// policy and the Monitor's per-VM health report.
//
// Transports (executor, shm channel, rings — ~5 MiB together) allocate
// lazily on first execution: a fleet of thousands of cold or boot-looping
// guests costs kilobytes each, which is what makes 2048-VM storm scenarios
// runnable (the boot handshake itself only touches the control socket).

#ifndef SRC_VM_GUEST_VM_H_
#define SRC_VM_GUEST_VM_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/base/event_loop.h"
#include "src/base/journal.h"
#include "src/base/metrics.h"
#include "src/base/sim_clock.h"
#include "src/exec/exec_ring.h"
#include "src/exec/executor.h"
#include "src/exec/shm_channel.h"
#include "src/vm/fault_plan.h"

namespace healer {

// One reaped ring completion: the program's submission tag (its index in the
// batch handed to ExecBatch), the decoded result, and the simulated time at
// which the completion became visible to the host (used by the replay bench
// to measure inter-completion spans).
struct RingCompletion {
  uint64_t tag = 0;
  ExecResult result;
  SimClock::Nanos completed_at = 0;
};

struct VmLatencyModel {
  SimClock::Nanos boot = 10 * SimClock::kSecond;
  SimClock::Nanos reboot = 20 * SimClock::kSecond;
  SimClock::Nanos exec_overhead = 300 * SimClock::kMillisecond;
  SimClock::Nanos per_call = 10 * SimClock::kMillisecond;
  // Watchdog budget burned by a hung executor before it is declared dead.
  SimClock::Nanos exec_timeout = 5 * SimClock::kSecond;
  // Extra latency of a "slow VM" fault (host contention spike).
  SimClock::Nanos slow_penalty = 2 * SimClock::kSecond;
};

// Lifecycle states. Stored in one atomic so the Monitor, the status line
// and the fleet freelists can classify a guest while a worker drives it.
enum class VmState : uint8_t {
  kCold = 0,     // Never booted; transports unallocated.
  kBooting,      // Boot latency in flight (async) or handshake running.
  kReady,        // Healthy, waiting for work.
  kExecuting,    // A program round trip is in flight.
  kCrashed,      // Guest down (kernel crash, lost VM, watchdog, ring stall).
  kRebooting,    // Reboot latency in flight.
  kQuarantined,  // Parked by the recovery policy pending a forced reboot.
};

const char* VmStateName(VmState state);

class GuestVm {
 public:
  // `clock` is shared with the campaign and must outlive the VM. A
  // non-empty `fault_plan` arms the injector; `fault_seed` makes its
  // decision stream deterministic per VM. A non-null `metrics` registry
  // receives the VM-side telemetry (round-trip latency histogram, per-kind
  // injected-fault counters, reboots).
  GuestVm(const Target& target, const KernelConfig& config, SimClock* clock,
          VmLatencyModel latency = VmLatencyModel(),
          const FaultPlan& fault_plan = FaultPlan(), uint64_t fault_seed = 0,
          MetricRegistry* metrics = nullptr,
          RingConfig ring_config = RingConfig());

  // Boots the guest and performs the executor handshake (blocking: charges
  // the campaign clock inline).
  void Boot();

  VmState state() const { return state_.load(std::memory_order_acquire); }
  bool booted() const {
    const VmState s = state();
    return s != VmState::kCold && s != VmState::kBooting;
  }
  // Down guests must reboot before executing again.
  bool down() const {
    const VmState s = state();
    return s == VmState::kCrashed || s == VmState::kQuarantined;
  }

  // ---- reactor-driven lifecycle (fleet mode) ----
  // Arms the boot (kCold -> kBooting) on `loop`: the state flips to kReady
  // (or kCrashed, if the injector draws a boot failure) when the timer
  // fires, `done` running after the transition settles. Returns false — and
  // arms nothing — unless the VM was kCold, which makes the charge
  // exactly-once under concurrent callers. Charges the loop's virtual time,
  // not the shared campaign clock.
  bool StartBootAsync(EventLoop* loop,
                      std::function<void(GuestVm&)> done = nullptr);
  // Arms the reboot (kCrashed/kQuarantined -> kRebooting) the same way.
  bool StartRebootAsync(EventLoop* loop,
                        std::function<void(GuestVm&)> done = nullptr);

  // Serializes `prog` into shared memory, round-trips through the executor,
  // and advances the simulated clock. A crashing program marks the VM as
  // down; the next Exec reboots it first (modelling crash-and-restart).
  // Injected faults return a result with `failure` set and no calls.
  ExecResult Exec(const Prog& prog, Bitmap* global_coverage);

  // Batched transport: submits the programs into the SQ ring, drains the
  // executor multi-shot, and reaps one completion per program from the CQ,
  // in submission order. The per-drain round-trip overhead is charged once
  // per drain (not once per program) — the ring's throughput win. Fault
  // semantics per program mirror Exec: each program consumes exactly one
  // injector draw in submission order, so for a fixed program sequence and
  // fault seed the per-program results are bit-identical to a sequence of
  // legacy Exec calls. Programs too large for an SQ slot spill to the
  // legacy one-at-a-time channel transparently.
  std::vector<RingCompletion> ExecBatch(const std::vector<const Prog*>& progs,
                                        Bitmap* global_coverage);

  // Single-program convenience over ExecBatch (batch of one). On the
  // fault-free path its clock charges equal Exec's, which keeps fixed-seed
  // campaigns over the ring transport draw-identical to legacy ones.
  ExecResult ExecRingOne(const Prog& prog, Bitmap* global_coverage);

  // Recovery hook: reboots a repeatedly failing guest out-of-band and
  // clears its consecutive-failure streak.
  void QuarantineReboot();

  // Attaches a flight-recorder writer; the VM records lifecycle transitions
  // (boot, reboot, quarantine) and ring stalls into it. The writer is owned
  // by the VM's driving worker (which also flushes it), so recording stays
  // single-producer even in the parallel fuzzer.
  void set_journal(JournalWriter* journal) { journal_ = journal; }

  // Guest console log lines accumulated since the last Drain (consumed by
  // the Monitor's reactor timers).
  std::vector<std::string> DrainLog();

  const Executor& executor() const { return EnsureExecutor(); }
  const FaultInjector& injector() const { return injector_; }
  // Ring transport internals, exposed for the property/hostile test
  // harnesses; production callers go through ExecBatch/ExecRingOne.
  ExecRing& ring() { return EnsureRing(); }
  ControlSocket& ctrl() { return ctrl_; }
  // Non-allocating occupancy probe: all-zero until the ring transport has
  // been exercised (introspection must not inflate a lazy fleet).
  RingOccupancy ring_occupancy() const {
    return ring_ != nullptr ? ring_->Occupancy() : RingOccupancy{};
  }
  uint64_t execs() const { return execs_.load(std::memory_order_relaxed); }
  uint64_t crashes() const {
    return crashes_.load(std::memory_order_relaxed);
  }
  // Infrastructure faults surfaced (injected faults, not kernel bugs).
  uint64_t infra_faults() const {
    return infra_faults_.load(std::memory_order_relaxed);
  }
  uint64_t consecutive_failures() const {
    return consecutive_failures_.load(std::memory_order_relaxed);
  }
  uint64_t quarantines() const {
    return quarantines_.load(std::memory_order_relaxed);
  }

 private:
  void AppendLog(std::string line);
  // Journals one lifecycle transition (no-op without an attached writer).
  // Payload: a = lifetime execs, b = consecutive failures at the transition.
  // The At variant lets reactor transitions stamp the loop's virtual time
  // instead of the shared campaign clock.
  void JournalLifecycle(const char* what);
  void JournalLifecycleAt(SimClock::Nanos at, const char* what);
  // Records an infra failure and builds the typed failure result.
  ExecResult FailWith(ExecFailure failure);
  // Executor side of one ring round trip: pops every pending SQ entry,
  // executes it (applying per-program faults), posts completions, then reaps
  // the CQ into `out`. `first_tag`/`count` identify the tags submitted this
  // drain so lost completions can be timed out as ring stalls.
  void DrainRing(const std::vector<const Prog*>& progs, uint64_t first_tag,
                 size_t count, Bitmap* global_coverage,
                 std::vector<RingCompletion>* out);
  // Shared tail of both async transitions; fires when the armed timer does.
  // `loop` supplies the virtual timestamp for the journal record.
  void FinishBootTimer(EventLoop* loop, bool boot_failed,
                       std::function<void(GuestVm&)> done);
  void FinishRebootTimer(EventLoop* loop, std::function<void(GuestVm&)> done);
  // Lazy transport construction (first execution; idempotent).
  Executor& EnsureExecutor() const;
  ShmChannel& EnsureShm() const;
  ExecRing& EnsureRing() const;
  void set_state(VmState s) { state_.store(s, std::memory_order_release); }

  const Target* target_;
  KernelConfig config_;
  RingConfig ring_config_;
  // Allocated on first use; mutable so const probes (executor()) can
  // materialize them. A cold VM carries none of the three.
  mutable std::unique_ptr<Executor> executor_;
  mutable std::unique_ptr<ShmChannel> shm_;
  mutable std::unique_ptr<ExecRing> ring_;
  ControlSocket ctrl_;
  SimClock* clock_;
  VmLatencyModel latency_;
  FaultInjector injector_;
  std::atomic<VmState> state_{VmState::kCold};
  // Counters are atomics so the Monitor's health poll can read them while a
  // parallel worker executes on the VM.
  std::atomic<uint64_t> execs_{0};
  std::atomic<uint64_t> crashes_{0};
  std::atomic<uint64_t> infra_faults_{0};
  std::atomic<uint64_t> consecutive_failures_{0};
  std::atomic<uint64_t> quarantines_{0};
  std::mutex log_mu_;  // Drained from whichever thread pumps the Monitor.
  std::vector<std::string> log_;
  JournalWriter* journal_ = nullptr;  // Owned and flushed by the driver.
  // Telemetry handles (null when no registry was supplied). All VMs of a
  // pool share the same counters; shards keep parallel workers uncontended.
  Counter* m_execs_ = nullptr;                               // healer_vm_execs_total
  Counter* m_reboots_ = nullptr;                             // healer_vm_reboots_total
  Histogram* m_rtt_ = nullptr;                               // healer_vm_rtt_ns
  std::array<Counter*, kNumFaultKinds> m_fault_injected_{};  // healer_fault_injected_<kind>_total
  Counter* m_ring_drains_ = nullptr;       // healer_ring_drains_total
  Counter* m_ring_submitted_ = nullptr;    // healer_ring_submitted_total
  Counter* m_ring_completions_ = nullptr;  // healer_ring_completions_total
  Counter* m_ring_spills_ = nullptr;       // healer_ring_spills_total
  Counter* m_ring_stalls_ = nullptr;       // healer_ring_stalls_total
  Histogram* m_ring_drain_programs_ = nullptr;  // healer_ring_drain_programs
};

}  // namespace healer

#endif  // SRC_VM_GUEST_VM_H_
