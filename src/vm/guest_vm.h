// GuestVm: one QEMU-instance equivalent. Owns the executor (the in-guest
// agent), the shared-memory channel and the control socket, performs the
// boot handshake, and advances the campaign's simulated clock with modelled
// latencies: booting, per-program round trips, and crash reboots.
//
// The latency model maps the paper's wall-clock axis onto the simulator:
// one program round trip costs ~overhead + per-call time, so a 24-hour
// campaign corresponds to a few hundred thousand executions.
//
// A GuestVm may carry a FaultInjector (see fault_plan.h). Injected faults
// surface as typed ExecFailure results that never carry feedback: a faulted
// execution leaves the global coverage bitmap untouched and returns no
// per-call results, so callers can discard it safely. Health counters
// (consecutive failures, infra faults, quarantines) feed the recovery
// policy and the Monitor's per-VM health report.

#ifndef SRC_VM_GUEST_VM_H_
#define SRC_VM_GUEST_VM_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "src/base/journal.h"
#include "src/base/metrics.h"
#include "src/base/sim_clock.h"
#include "src/exec/exec_ring.h"
#include "src/exec/executor.h"
#include "src/exec/shm_channel.h"
#include "src/vm/fault_plan.h"

namespace healer {

// One reaped ring completion: the program's submission tag (its index in the
// batch handed to ExecBatch), the decoded result, and the simulated time at
// which the completion became visible to the host (used by the replay bench
// to measure inter-completion spans).
struct RingCompletion {
  uint64_t tag = 0;
  ExecResult result;
  SimClock::Nanos completed_at = 0;
};

struct VmLatencyModel {
  SimClock::Nanos boot = 10 * SimClock::kSecond;
  SimClock::Nanos reboot = 20 * SimClock::kSecond;
  SimClock::Nanos exec_overhead = 300 * SimClock::kMillisecond;
  SimClock::Nanos per_call = 10 * SimClock::kMillisecond;
  // Watchdog budget burned by a hung executor before it is declared dead.
  SimClock::Nanos exec_timeout = 5 * SimClock::kSecond;
  // Extra latency of a "slow VM" fault (host contention spike).
  SimClock::Nanos slow_penalty = 2 * SimClock::kSecond;
};

class GuestVm {
 public:
  // `clock` is shared with the campaign and must outlive the VM. A
  // non-empty `fault_plan` arms the injector; `fault_seed` makes its
  // decision stream deterministic per VM. A non-null `metrics` registry
  // receives the VM-side telemetry (round-trip latency histogram, per-kind
  // injected-fault counters, reboots).
  GuestVm(const Target& target, const KernelConfig& config, SimClock* clock,
          VmLatencyModel latency = VmLatencyModel(),
          const FaultPlan& fault_plan = FaultPlan(), uint64_t fault_seed = 0,
          MetricRegistry* metrics = nullptr,
          RingConfig ring_config = RingConfig());

  // Boots the guest and performs the executor handshake.
  void Boot();
  bool booted() const { return booted_; }

  // Serializes `prog` into shared memory, round-trips through the executor,
  // and advances the simulated clock. A crashing program marks the VM as
  // down; the next Exec reboots it first (modelling crash-and-restart).
  // Injected faults return a result with `failure` set and no calls.
  ExecResult Exec(const Prog& prog, Bitmap* global_coverage);

  // Batched transport: submits the programs into the SQ ring, drains the
  // executor multi-shot, and reaps one completion per program from the CQ,
  // in submission order. The per-drain round-trip overhead is charged once
  // per drain (not once per program) — the ring's throughput win. Fault
  // semantics per program mirror Exec: each program consumes exactly one
  // injector draw in submission order, so for a fixed program sequence and
  // fault seed the per-program results are bit-identical to a sequence of
  // legacy Exec calls. Programs too large for an SQ slot spill to the
  // legacy one-at-a-time channel transparently.
  std::vector<RingCompletion> ExecBatch(const std::vector<const Prog*>& progs,
                                        Bitmap* global_coverage);

  // Single-program convenience over ExecBatch (batch of one). On the
  // fault-free path its clock charges equal Exec's, which keeps fixed-seed
  // campaigns over the ring transport draw-identical to legacy ones.
  ExecResult ExecRingOne(const Prog& prog, Bitmap* global_coverage);

  // Recovery hook: reboots a repeatedly failing guest out-of-band and
  // clears its consecutive-failure streak.
  void QuarantineReboot();

  // Attaches a flight-recorder writer; the VM records lifecycle transitions
  // (boot, reboot, quarantine) and ring stalls into it. The writer is owned
  // by the VM's driving worker (which also flushes it), so recording stays
  // single-producer even in the parallel fuzzer.
  void set_journal(JournalWriter* journal) { journal_ = journal; }

  // Guest console log lines accumulated since the last Drain (consumed by
  // the Monitor's background IO thread).
  std::vector<std::string> DrainLog();

  const Executor& executor() const { return executor_; }
  const FaultInjector& injector() const { return injector_; }
  // Ring transport internals, exposed for the property/hostile test
  // harnesses; production callers go through ExecBatch/ExecRingOne.
  ExecRing& ring() { return ring_; }
  ControlSocket& ctrl() { return ctrl_; }
  uint64_t execs() const { return execs_.load(std::memory_order_relaxed); }
  uint64_t crashes() const {
    return crashes_.load(std::memory_order_relaxed);
  }
  // Infrastructure faults surfaced (injected faults, not kernel bugs).
  uint64_t infra_faults() const {
    return infra_faults_.load(std::memory_order_relaxed);
  }
  uint64_t consecutive_failures() const {
    return consecutive_failures_.load(std::memory_order_relaxed);
  }
  uint64_t quarantines() const {
    return quarantines_.load(std::memory_order_relaxed);
  }

 private:
  void AppendLog(std::string line);
  // Journals one lifecycle transition (no-op without an attached writer).
  // Payload: a = lifetime execs, b = consecutive failures at the transition.
  void JournalLifecycle(const char* what);
  // Records an infra failure and builds the typed failure result.
  ExecResult FailWith(ExecFailure failure);
  // Executor side of one ring round trip: pops every pending SQ entry,
  // executes it (applying per-program faults), posts completions, then reaps
  // the CQ into `out`. `first_tag`/`count` identify the tags submitted this
  // drain so lost completions can be timed out as ring stalls.
  void DrainRing(const std::vector<const Prog*>& progs, uint64_t first_tag,
                 size_t count, Bitmap* global_coverage,
                 std::vector<RingCompletion>* out);

  Executor executor_;
  ShmChannel shm_;
  ControlSocket ctrl_;
  ExecRing ring_;
  SimClock* clock_;
  VmLatencyModel latency_;
  FaultInjector injector_;
  bool booted_ = false;
  bool down_ = false;
  // Counters are atomics so the Monitor's health poll can read them while a
  // parallel worker executes on the VM.
  std::atomic<uint64_t> execs_{0};
  std::atomic<uint64_t> crashes_{0};
  std::atomic<uint64_t> infra_faults_{0};
  std::atomic<uint64_t> consecutive_failures_{0};
  std::atomic<uint64_t> quarantines_{0};
  std::mutex log_mu_;  // The Monitor drains the log from its own thread.
  std::vector<std::string> log_;
  JournalWriter* journal_ = nullptr;  // Owned and flushed by the driver.
  // Telemetry handles (null when no registry was supplied). All VMs of a
  // pool share the same counters; shards keep parallel workers uncontended.
  Counter* m_execs_ = nullptr;                               // healer_vm_execs_total
  Counter* m_reboots_ = nullptr;                             // healer_vm_reboots_total
  Histogram* m_rtt_ = nullptr;                               // healer_vm_rtt_ns
  std::array<Counter*, kNumFaultKinds> m_fault_injected_{};  // healer_fault_injected_<kind>_total
  Counter* m_ring_drains_ = nullptr;       // healer_ring_drains_total
  Counter* m_ring_submitted_ = nullptr;    // healer_ring_submitted_total
  Counter* m_ring_completions_ = nullptr;  // healer_ring_completions_total
  Counter* m_ring_spills_ = nullptr;       // healer_ring_spills_total
  Counter* m_ring_stalls_ = nullptr;       // healer_ring_stalls_total
  Histogram* m_ring_drain_programs_ = nullptr;  // healer_ring_drain_programs
};

}  // namespace healer

#endif  // SRC_VM_GUEST_VM_H_
