#include "src/vm/vm_pool.h"

#include <algorithm>

#include "src/base/hash.h"

namespace healer {

VmPool::VmPool(const Target& target, const KernelConfig& config,
               SimClock* clock, size_t count, VmLatencyModel latency,
               const FaultPlan& fault_plan, uint64_t fault_seed,
               MetricRegistry* metrics, FleetOptions fleet)
    : clock_(clock) {
  vms_.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    // Each VM gets an independent, reproducible fault stream. Seeds are
    // derived from the VM index (not the lane), so retopologizing the fleet
    // never reshuffles per-VM decision streams.
    const uint64_t vm_seed =
        Mix64(fault_seed ^ (0x9e3779b97f4a7c15ULL * (i + 1)));
    vms_.push_back(std::make_unique<GuestVm>(target, config, clock, latency,
                                             fault_plan, vm_seed, metrics));
  }

  num_lanes_ = fleet.lanes == 0 ? count : std::min(fleet.lanes, count);
  num_lanes_ = std::max<size_t>(num_lanes_, 1);
  // One VM per lane is exactly the historical pinned pool; the fleet
  // machinery (freelists, async boots) must stay out of that path so the
  // legacy configuration remains draw- and charge-identical.
  legacy_ = num_lanes_ == count;
  const size_t shard_count =
      std::max<size_t>(1, std::min(fleet.shards, num_lanes_));

  lanes_.reserve(num_lanes_);
  for (size_t l = 0; l < num_lanes_; ++l) {
    lanes_.push_back(std::make_unique<Lane>());
  }
  shards_.reserve(shard_count);
  loops_.reserve(shard_count);
  for (size_t s = 0; s < shard_count; ++s) {
    shards_.push_back(std::make_unique<Shard>());
    shards_[s]->loop = std::make_unique<EventLoop>(clock->now());
    loops_.push_back(shards_[s]->loop.get());
    // Reboot doorbell: rung by Release() when a down guest is parked; the
    // handler arms one StartRebootAsync per parked guest at the next pump.
    const size_t shard_index = s;
    shards_[s]->reboot_source =
        loops_[s]->AddCompletionSource([this, shard_index] {
          Shard& shard = *shards_[shard_index];
          std::vector<std::pair<GuestVm*, size_t>> batch;
          {
            std::lock_guard<std::mutex> lock(shard.parked_mu);
            batch.swap(shard.parked);
          }
          for (auto& [vm, lane] : batch) {
            GuestVm* guest = vm;
            const size_t home = lane;
            const bool armed = guest->StartRebootAsync(
                loops_[shard_index], [this, home](GuestVm& g) {
                  OnLifecycleSettled(home, &g);
                });
            if (!armed) {
              // Raced with an inline recovery (quarantine reboot) that
              // already brought the guest back: requeue it directly.
              OnLifecycleSettled(home, guest);
            }
          }
        });
  }

  if (!legacy_) {
    // Arm every cold guest's boot on its shard. Nothing fires until a
    // worker pumps; all boots within one shard then complete at the same
    // virtual instant — a 2048-guest boot storm costs one boot latency.
    for (size_t i = 0; i < vms_.size(); ++i) {
      const size_t lane = lane_of(i);
      vms_[i]->StartBootAsync(loops_[shard_of_lane(lane)],
                              [this, lane](GuestVm& g) {
                                OnLifecycleSettled(lane, &g);
                              });
    }
  }
}

GuestVm& VmPool::Next() {
  const size_t n = vms_.size();
  for (size_t k = 0; k < n; ++k) {
    GuestVm& candidate = *vms_[(next_ + k) % n];
    if (!candidate.down()) {
      next_ = (next_ + k + 1) % n;
      return candidate;
    }
  }
  // Every guest is down: hand out the round-robin pick and let the caller's
  // recovery path (inline reboot at the top of Exec) revive it.
  GuestVm& fallback = *vms_[next_];
  next_ = (next_ + 1) % n;
  return fallback;
}

void VmPool::OnLifecycleSettled(size_t lane, GuestVm* vm) {
  if (vm->down()) {
    Shard& shard = *shards_[shard_of_lane(lane)];
    {
      std::lock_guard<std::mutex> lock(shard.parked_mu);
      shard.parked.emplace_back(vm, lane);
    }
    shard.loop->SignalCompletion(shard.reboot_source);
    return;
  }
  Lane& home = *lanes_[lane];
  std::lock_guard<std::mutex> lock(home.mu);
  home.ready.push_back(vm);
}

GuestVm* VmPool::AcquireReady(size_t lane) {
  if (legacy_) {
    return vms_[lane].get();  // Pinned: one VM per lane.
  }
  Lane& home = *lanes_[lane];
  const size_t s = shard_of_lane(lane);
  for (int attempt = 0; attempt < 2; ++attempt) {
    {
      std::lock_guard<std::mutex> lock(home.mu);
      if (!home.ready.empty()) {
        GuestVm* vm = home.ready.front();
        home.ready.pop_front();
        return vm;
      }
    }
    // Dry freelist: run whatever is already due at the shared clock.
    PumpShard(s);
    {
      std::lock_guard<std::mutex> lock(home.mu);
      if (!home.ready.empty()) {
        GuestVm* vm = home.ready.front();
        home.ready.pop_front();
        return vm;
      }
    }
    // Still dry — every lane-mate is mid-boot or mid-reboot. Advance the
    // shared clock to the shard's next armed deadline (the fleet waits for
    // the *earliest* timer, which is what makes overlapped latencies cost
    // their max) and pump again.
    const SimClock::Nanos next = loops_[s]->NextDeadline();
    if (next == EventLoop::kNoDeadline) {
      break;  // Nothing armed: the shard cannot produce a ready VM.
    }
    const SimClock::Nanos now = clock_->now();
    if (next > now) {
      clock_->Advance(next - now);
    }
    PumpShard(s);
  }
  {
    std::lock_guard<std::mutex> lock(home.mu);
    if (!home.ready.empty()) {
      GuestVm* vm = home.ready.front();
      home.ready.pop_front();
      return vm;
    }
  }
  // Last resort (e.g. another worker's pump consumed the deadline we were
  // waiting on, or the lane's guests are all checked out): hand back the
  // lane's first VM. Exec's inline boot/reboot keeps it usable.
  return vms_[lane].get();
}

void VmPool::Release(size_t lane, GuestVm* vm) {
  if (legacy_) {
    return;
  }
  OnLifecycleSettled(lane, vm);
}

void VmPool::PumpShard(size_t s) {
  Shard& shard = *shards_[s];
  EventLoop& loop = *shard.loop;
  const SimClock::Nanos horizon = std::max(loop.now(), clock_->now());
  std::unique_lock<std::mutex> pump(shard.pump_mu, std::try_to_lock);
  if (!pump.owns_lock()) {
    return;  // Another worker is pumping this shard; it will make progress.
  }
  loop.RunUntil(horizon);
  if (shard.journal != nullptr) {
    shard.journal->Flush();
  }
}

std::vector<FleetShardSummary> VmPool::ShardSummaries() const {
  std::vector<FleetShardSummary> out(loops_.size());
  for (size_t s = 0; s < loops_.size(); ++s) {
    out[s].shard = s;
    out[s].timers_pending = loops_[s]->pending_timers();
    out[s].events_dispatched = loops_[s]->dispatched();
  }
  for (size_t i = 0; i < vms_.size(); ++i) {
    FleetShardSummary& sum = out[shard_of_lane(lane_of(i))];
    ++sum.vms;
    switch (vms_[i]->state()) {
      case VmState::kCold:
        ++sum.cold;
        break;
      case VmState::kBooting:
        ++sum.booting;
        break;
      case VmState::kReady:
        ++sum.ready;
        break;
      case VmState::kExecuting:
        ++sum.executing;
        break;
      case VmState::kCrashed:
        ++sum.crashed;
        break;
      case VmState::kRebooting:
        ++sum.rebooting;
        break;
      case VmState::kQuarantined:
        ++sum.quarantined;
        break;
    }
  }
  return out;
}

uint64_t VmPool::TotalExecs() const {
  uint64_t total = 0;
  for (const auto& vm : vms_) {
    total += vm->execs();
  }
  return total;
}

uint64_t VmPool::TotalCrashes() const {
  uint64_t total = 0;
  for (const auto& vm : vms_) {
    total += vm->crashes();
  }
  return total;
}

uint64_t VmPool::TotalInfraFaults() const {
  uint64_t total = 0;
  for (const auto& vm : vms_) {
    total += vm->infra_faults();
  }
  return total;
}

FaultStats VmPool::InjectedStats() const {
  FaultStats stats;
  for (const auto& vm : vms_) {
    const auto& injected = vm->injector().injected();
    for (size_t i = 0; i < kNumFaultKinds; ++i) {
      stats.injected[i] += injected[i];
    }
  }
  return stats;
}

void Monitor::Start() {
  if (running_.exchange(true)) {
    return;
  }
  timers_.assign(pool_->num_shards(), EventLoop::kInvalidTimer);
  for (size_t s = 0; s < pool_->num_shards(); ++s) {
    ArmShardTimer(s);
  }
}

void Monitor::ArmShardTimer(size_t s) {
  // Self-rescheduling drain on simulated time. It fires from whichever
  // worker pumps the shard; a pool whose shards are never pumped (the
  // legacy path) relies on Stop()'s final synchronous drain instead. The
  // running_ re-check and the id store happen under mu_ so Stop() either
  // observes the fresh id (and cancels it) or wins the race and suppresses
  // the re-arm entirely.
  std::lock_guard<std::mutex> lock(mu_);
  if (!running_.load()) {
    return;
  }
  timers_[s] = pool_->shard(s).ScheduleAfter(kPollPeriod, [this, s] {
    PollShard(s);
    ArmShardTimer(s);
  });
}

void Monitor::Stop() {
  if (!running_.exchange(false)) {
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (size_t s = 0; s < timers_.size(); ++s) {
      if (timers_[s] != EventLoop::kInvalidTimer) {
        pool_->shard(s).Cancel(timers_[s]);
        timers_[s] = EventLoop::kInvalidTimer;
      }
    }
  }
  Poll();  // Final drain.
}

void Monitor::Poll() {
  for (size_t i = 0; i < pool_->size(); ++i) {
    DrainVm(i);
  }
}

void Monitor::PollShard(size_t s) {
  for (size_t i = 0; i < pool_->size(); ++i) {
    if (pool_->shard_of_lane(i % pool_->num_lanes()) == s) {
      DrainVm(i);
    }
  }
}

void Monitor::DrainVm(size_t index) {
  std::vector<std::string> lines = pool_->vm(index).DrainLog();
  if (lines.empty()) {
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& line : lines) {
    ++lines_collected_;
    if (journal_.size() < 65536) {
      journal_.push_back(std::move(line));
    }
  }
}

std::vector<std::string> Monitor::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return journal_;
}

std::vector<VmHealth> Monitor::HealthReport() const {
  std::vector<VmHealth> report;
  report.reserve(pool_->size());
  for (size_t i = 0; i < pool_->size(); ++i) {
    const GuestVm& vm = pool_->vm(i);
    VmHealth health;
    health.index = i;
    health.execs = vm.execs();
    health.kernel_crashes = vm.crashes();
    health.infra_faults = vm.infra_faults();
    health.consecutive_failures = vm.consecutive_failures();
    health.quarantines = vm.quarantines();
    report.push_back(health);
  }
  return report;
}

}  // namespace healer
