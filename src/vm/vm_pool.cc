#include "src/vm/vm_pool.h"

#include <chrono>

#include "src/base/hash.h"

namespace healer {

VmPool::VmPool(const Target& target, const KernelConfig& config,
               SimClock* clock, size_t count, VmLatencyModel latency,
               const FaultPlan& fault_plan, uint64_t fault_seed,
               MetricRegistry* metrics) {
  vms_.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    // Each VM gets an independent, reproducible fault stream.
    const uint64_t vm_seed = Mix64(fault_seed ^ (0x9e3779b97f4a7c15ULL * (i + 1)));
    vms_.push_back(std::make_unique<GuestVm>(target, config, clock, latency,
                                             fault_plan, vm_seed, metrics));
  }
}

uint64_t VmPool::TotalExecs() const {
  uint64_t total = 0;
  for (const auto& vm : vms_) {
    total += vm->execs();
  }
  return total;
}

uint64_t VmPool::TotalCrashes() const {
  uint64_t total = 0;
  for (const auto& vm : vms_) {
    total += vm->crashes();
  }
  return total;
}

uint64_t VmPool::TotalInfraFaults() const {
  uint64_t total = 0;
  for (const auto& vm : vms_) {
    total += vm->infra_faults();
  }
  return total;
}

FaultStats VmPool::InjectedStats() const {
  FaultStats stats;
  for (const auto& vm : vms_) {
    const auto& injected = vm->injector().injected();
    for (size_t i = 0; i < kNumFaultKinds; ++i) {
      stats.injected[i] += injected[i];
    }
  }
  return stats;
}

void Monitor::Start() {
  if (running_.exchange(true)) {
    return;
  }
  thread_ = std::thread([this] {
    std::unique_lock<std::mutex> lock(mu_);
    while (running_.load()) {
      lock.unlock();
      Poll();
      lock.lock();
      cv_.wait_for(lock, std::chrono::milliseconds(10),
                   [this] { return !running_.load(); });
    }
  });
}

void Monitor::Stop() {
  if (!running_.exchange(false)) {
    return;
  }
  cv_.notify_all();
  if (thread_.joinable()) {
    thread_.join();
  }
  Poll();  // Final drain.
}

void Monitor::Poll() {
  for (size_t i = 0; i < pool_->size(); ++i) {
    std::vector<std::string> lines = pool_->vm(i).DrainLog();
    if (lines.empty()) {
      continue;
    }
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& line : lines) {
      ++lines_collected_;
      if (journal_.size() < 65536) {
        journal_.push_back(std::move(line));
      }
    }
  }
}

std::vector<std::string> Monitor::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return journal_;
}

std::vector<VmHealth> Monitor::HealthReport() const {
  std::vector<VmHealth> report;
  report.reserve(pool_->size());
  for (size_t i = 0; i < pool_->size(); ++i) {
    GuestVm& vm = pool_->vm(i);
    VmHealth health;
    health.index = i;
    health.execs = vm.execs();
    health.kernel_crashes = vm.crashes();
    health.infra_faults = vm.infra_faults();
    health.consecutive_failures = vm.consecutive_failures();
    health.quarantines = vm.quarantines();
    report.push_back(health);
  }
  return report;
}

}  // namespace healer
