#include "src/vm/vm_pool.h"

#include <chrono>

namespace healer {

VmPool::VmPool(const Target& target, const KernelConfig& config,
               SimClock* clock, size_t count, VmLatencyModel latency) {
  vms_.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    vms_.push_back(std::make_unique<GuestVm>(target, config, clock, latency));
  }
}

uint64_t VmPool::TotalExecs() const {
  uint64_t total = 0;
  for (const auto& vm : vms_) {
    total += vm->execs();
  }
  return total;
}

uint64_t VmPool::TotalCrashes() const {
  uint64_t total = 0;
  for (const auto& vm : vms_) {
    total += vm->crashes();
  }
  return total;
}

void Monitor::Start() {
  if (running_.exchange(true)) {
    return;
  }
  thread_ = std::thread([this] {
    std::unique_lock<std::mutex> lock(mu_);
    while (running_.load()) {
      lock.unlock();
      Poll();
      lock.lock();
      cv_.wait_for(lock, std::chrono::milliseconds(10),
                   [this] { return !running_.load(); });
    }
  });
}

void Monitor::Stop() {
  if (!running_.exchange(false)) {
    return;
  }
  cv_.notify_all();
  if (thread_.joinable()) {
    thread_.join();
  }
  Poll();  // Final drain.
}

void Monitor::Poll() {
  for (size_t i = 0; i < pool_->size(); ++i) {
    std::vector<std::string> lines = pool_->vm(i).DrainLog();
    if (lines.empty()) {
      continue;
    }
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& line : lines) {
      ++lines_collected_;
      if (journal_.size() < 65536) {
        journal_.push_back(std::move(line));
      }
    }
  }
}

std::vector<std::string> Monitor::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return journal_;
}

}  // namespace healer
