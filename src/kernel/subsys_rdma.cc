// RDMA CM subsystem (ucma-style write commands on /dev/infiniband/rdma_cm).
// Hosts the cma_cancel_operation and rdma_listen use-after-free bugs that
// syzbot believed fixed until HEALER re-triggered them with deeper chains.

#include "src/kernel/coverage.h"
#include "src/kernel/subsys_common.h"

namespace healer {

namespace {

int64_t OpenatRdmaCm(Kernel& k, const uint64_t a[6]) {
  std::string path;
  if (!k.mem().ReadString(a[0], 64, &path)) {
    KCOV_BLOCK(k);
    return -kEFAULT;
  }
  if (path != "/dev/infiniband/rdma_cm") {
    KCOV_BLOCK(k);
    return -kENOENT;
  }
  KCOV_BLOCK(k);
  auto obj = std::make_shared<KObject>();
  obj->state = RdmaCmObj{};
  return k.AllocFd(std::move(obj));
}

RdmaCmObj* GetCm(Kernel& k, const uint64_t a[6]) {
  return k.GetFdAs<RdmaCmObj>(AsFd(a[0]));
}

int64_t RdmaCreateId(Kernel& k, const uint64_t a[6]) {
  auto* cm = GetCm(k, a);
  if (cm == nullptr) {
    KCOV_BLOCK(k);
    return -kEBADF;
  }
  if (cm->id_created && cm->state != RdmaState::kDestroyed) {
    KCOV_BLOCK(k);
    return -kEEXIST;
  }
  KCOV_BLOCK(k);
  cm->id_created = true;
  cm->state = RdmaState::kIdle;
  cm->events_pending = 0;
  return 0;
}

int64_t RdmaBindAddr(Kernel& k, const uint64_t a[6]) {
  auto* cm = GetCm(k, a);
  if (cm == nullptr) {
    KCOV_BLOCK(k);
    return -kEBADF;
  }
  if (!cm->id_created || cm->state == RdmaState::kDestroyed) {
    KCOV_BLOCK(k);
    return -kEINVAL;
  }
  KCOV_BLOCK(k);
  cm->state = RdmaState::kBound;
  return 0;
}

int64_t RdmaResolveAddr(Kernel& k, const uint64_t a[6]) {
  auto* cm = GetCm(k, a);
  if (cm == nullptr) {
    KCOV_BLOCK(k);
    return -kEBADF;
  }
  if (!cm->id_created || cm->state == RdmaState::kDestroyed) {
    KCOV_BLOCK(k);
    return -kEINVAL;
  }
  KCOV_BLOCK(k);
  cm->state = RdmaState::kResolving;
  ++cm->events_pending;
  return 0;
}

int64_t RdmaListen(Kernel& k, const uint64_t a[6]) {
  auto* cm = GetCm(k, a);
  if (cm == nullptr) {
    KCOV_BLOCK(k);
    return -kEBADF;
  }
  KCOV_STATE(k, static_cast<int>(cm->state) | (cm->id_created ? 0x08 : 0) |
                    ((cm->events_pending & 3) << 4));
  if (cm->state == RdmaState::kDestroyed) {
    KCOV_BLOCK(k);
    // Listening on an id whose context was already destroyed.
    if (k.TriggerBug(BugId::kRdmaListenUaf)) {
      return -kEIO;
    }
    return -kEINVAL;
  }
  if (cm->state != RdmaState::kBound) {
    KCOV_BLOCK(k);
    return -kEINVAL;
  }
  KCOV_BLOCK(k);
  cm->state = RdmaState::kListening;
  return 0;
}

int64_t RdmaDestroyId(Kernel& k, const uint64_t a[6]) {
  auto* cm = GetCm(k, a);
  if (cm == nullptr) {
    KCOV_BLOCK(k);
    return -kEBADF;
  }
  if (!cm->id_created) {
    KCOV_BLOCK(k);
    return -kEINVAL;
  }
  if (cm->state == RdmaState::kResolving && cm->events_pending > 0) {
    KCOV_BLOCK(k);
    // Destroy during address resolution cancels work that already freed
    // its context.
    if (k.TriggerBug(BugId::kCmaCancelOperationUaf)) {
      return -kEIO;
    }
  }
  KCOV_BLOCK(k);
  cm->state = RdmaState::kDestroyed;
  return 0;
}

}  // namespace

void RegisterRdmaSyscalls(std::vector<SyscallDef>& defs) {
  defs.insert(defs.end(), {
    {"openat$rdma_cm", OpenatRdmaCm, "rdma"},
    {"write$rdma_create_id", RdmaCreateId, "rdma"},
    {"write$rdma_bind_addr", RdmaBindAddr, "rdma"},
    {"write$rdma_resolve_addr", RdmaResolveAddr, "rdma"},
    {"write$rdma_listen", RdmaListen, "rdma"},
    {"write$rdma_destroy_id", RdmaDestroyId, "rdma"},
  });
}

}  // namespace healer
