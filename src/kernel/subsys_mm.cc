// mm subsystem: guest mmap/munmap/mprotect over the GuestMem VMA window.
// mmap of a sealed memfd and the mprotect-then-remap dance drive the
// relation-sensitive branches the paper's Figure 2 example describes.

#include <algorithm>

#include "src/kernel/coverage.h"
#include "src/kernel/subsys_common.h"

namespace healer {

namespace {

constexpr uint32_t kProtRead = 1;
constexpr uint32_t kProtWrite = 2;
constexpr uint32_t kProtExec = 4;
constexpr uint32_t kMapShared = 1;
constexpr uint32_t kMapPrivate = 2;
constexpr uint32_t kMapAnon = 0x20;
constexpr uint32_t kMapFixed = 0x10;

bool PageRangeValid(uint64_t addr, uint64_t len) {
  if (addr < GuestMem::kVmaBase || len == 0) {
    return false;
  }
  const uint64_t end = addr + len;
  return end > addr && end <= GuestMem::kVmaBase + GuestMem::kVmaSize;
}

MmState::Mapping* FindMapping(Kernel& k, uint64_t page) {
  for (auto& m : k.mm.maps) {
    if (page >= m.page && page < m.page + m.npages) {
      return &m;
    }
  }
  return nullptr;
}

int64_t Mmap(Kernel& k, const uint64_t a[6]) {
  const uint64_t addr = a[0];
  const uint64_t len = a[1];
  const uint32_t prot = AsU32(a[2]);
  const uint32_t flags = AsU32(a[3]);
  const int fd = AsFd(a[4]);

  if (len == 0) {
    KCOV_BLOCK(k);
    // Zero-length anonymous fixed mapping hits an unchecked path.
    if ((flags & kMapFixed) != 0 && k.TriggerBug(BugId::kMmapZeroLenBug)) {
      return -kEIO;
    }
    return -kEINVAL;
  }
  if (!PageRangeValid(addr, len)) {
    KCOV_BLOCK(k);
    return -kEINVAL;
  }
  if ((flags & (kMapShared | kMapPrivate)) == 0) {
    KCOV_BLOCK(k);
    return -kEINVAL;
  }

  std::shared_ptr<KObject> backing;
  bool memfd_backed = false;
  if ((flags & kMapAnon) == 0) {
    backing = k.GetFd(fd);
    if (backing == nullptr) {
      KCOV_BLOCK(k);
      return -kEBADF;
    }
    if (auto* memfd = backing->As<MemfdObj>()) {
      KCOV_BLOCK(k);
      KCOV_STATE(k, memfd->seals | ((prot & 7) << 4) |
                        ((flags & kMapShared) != 0 ? 0x80 : 0));
      memfd_backed = true;
      // Sealed-for-write memfds refuse shared writable mappings: this branch
      // is only reachable after fcntl$ADD_SEALS, i.e. exactly the influence
      // relation HEALER's dynamic learning discovers in Figure 2.
      if ((memfd->seals & kSealWrite) != 0) {
        KCOV_BLOCK(k);
        if ((flags & kMapShared) != 0 && (prot & kProtWrite) != 0) {
          KCOV_BLOCK(k);
          return -kEPERM;
        }
      }
      if ((flags & kMapShared) != 0) {
        KCOV_BLOCK(k);
        memfd->mapped_shared = true;
      }
      if ((memfd->seals & kSealGrow) != 0 &&
          len > ((memfd->data.size() + GuestMem::kPageSize - 1) &
                 ~(GuestMem::kPageSize - 1)) &&
          !memfd->data.empty()) {
        KCOV_BLOCK(k);
        return -kEPERM;
      }
    } else if (auto* file = backing->As<FileObj>()) {
      KCOV_BLOCK(k);
      if (file->is_device) {
        KCOV_BLOCK(k);
        return -kENODEV;
      }
    } else {
      KCOV_BLOCK(k);
      return -kEACCES;  // Sockets etc. are not mappable in the model.
    }
  }

  const uint64_t page = addr / GuestMem::kPageSize;
  const uint64_t npages =
      (len + GuestMem::kPageSize - 1) / GuestMem::kPageSize;

  if ((flags & kMapFixed) != 0 && FindMapping(k, page) != nullptr) {
    KCOV_BLOCK(k);
    // Remapping over an existing region after repeated mprotect splits
    // corrupts the ioremap bookkeeping.
    if (k.mm.mprotect_calls >= 2 && (prot & kProtExec) != 0) {
      KCOV_BLOCK(k);
      if (k.TriggerBug(BugId::kIoremapPageRangeBug)) {
        return -kEIO;
      }
    }
  }

  KCOV_BLOCK(k);
  KCOV_STATE(k, (k.mm.maps.size() & 7) | ((prot & 7) << 3) |
                    (memfd_backed ? 0x40 : 0) |
                    ((flags & kMapFixed) != 0 ? 0x80 : 0));
  MmState::Mapping mapping;
  mapping.page = page;
  mapping.npages = npages;
  mapping.prot = prot;
  mapping.shared = (flags & kMapShared) != 0;
  mapping.memfd_backed = memfd_backed;
  mapping.backing = backing;
  k.mm.maps.push_back(std::move(mapping));
  return static_cast<int64_t>(addr);
}

int64_t Munmap(Kernel& k, const uint64_t a[6]) {
  const uint64_t addr = a[0];
  const uint64_t len = a[1];
  if (!PageRangeValid(addr, len)) {
    KCOV_BLOCK(k);
    return -kEINVAL;
  }
  const uint64_t page = addr / GuestMem::kPageSize;
  for (size_t i = 0; i < k.mm.maps.size(); ++i) {
    if (k.mm.maps[i].page == page) {
      KCOV_BLOCK(k);
      k.mm.maps.erase(k.mm.maps.begin() + static_cast<long>(i));
      return 0;
    }
  }
  KCOV_BLOCK(k);
  return -kEINVAL;
}

int64_t Mprotect(Kernel& k, const uint64_t a[6]) {
  const uint64_t addr = a[0];
  const uint64_t len = a[1];
  const uint32_t prot = AsU32(a[2]);
  if (!PageRangeValid(addr, len)) {
    KCOV_BLOCK(k);
    return -kEINVAL;
  }
  MmState::Mapping* m = FindMapping(k, addr / GuestMem::kPageSize);
  if (m == nullptr) {
    KCOV_BLOCK(k);
    return -kENOMEM;
  }
  if (m->memfd_backed && (prot & kProtWrite) != 0 && m->shared) {
    auto backing = m->backing.lock();
    if (backing != nullptr) {
      if (auto* memfd = backing->As<MemfdObj>()) {
        if ((memfd->seals & kSealWrite) != 0) {
          KCOV_BLOCK(k);
          return -kEACCES;
        }
      }
    }
  }
  KCOV_BLOCK(k);
  m->prot = prot;
  ++k.mm.mprotect_calls;
  return 0;
}

int64_t Msync(Kernel& k, const uint64_t a[6]) {
  const uint64_t addr = a[0];
  const uint64_t len = a[1];
  if (!PageRangeValid(addr, len)) {
    KCOV_BLOCK(k);
    return -kEINVAL;
  }
  if (FindMapping(k, addr / GuestMem::kPageSize) == nullptr) {
    KCOV_BLOCK(k);
    return -kENOMEM;
  }
  KCOV_BLOCK(k);
  return 0;
}

int64_t Madvise(Kernel& k, const uint64_t a[6]) {
  const uint64_t addr = a[0];
  const uint64_t len = a[1];
  const uint32_t advice = AsU32(a[2]);
  if (!PageRangeValid(addr, len)) {
    KCOV_BLOCK(k);
    return -kEINVAL;
  }
  switch (advice) {
    case 4:  // MADV_DONTNEED
      KCOV_BLOCK(k);
      return 0;
    case 8:  // MADV_SEQUENTIAL
    case 9:  // MADV_WILLNEED
      KCOV_BLOCK(k);
      return 0;
    case 14:  // MADV_HWPOISON-like: privileged.
      KCOV_BLOCK(k);
      return -kEPERM;
    default:
      KCOV_BLOCK(k);
      return -kEINVAL;
  }
}

}  // namespace

void RegisterMmSyscalls(std::vector<SyscallDef>& defs) {
  defs.insert(defs.end(), {
    {"mmap", Mmap, "mm"},
    {"munmap", Munmap, "mm"},
    {"mprotect", Mprotect, "mm"},
    {"msync", Msync, "mm"},
    {"madvise", Madvise, "mm"},
  });
}

}  // namespace healer
