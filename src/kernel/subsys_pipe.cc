// Pipe subsystem. pipe2 writes both end fds through an out-pointer, which
// exercises the executor's out-parameter resource extraction.

#include <algorithm>

#include "src/kernel/coverage.h"
#include "src/kernel/subsys_common.h"

namespace healer {

namespace {

constexpr uint32_t kONonblock = 0x800;
constexpr uint32_t kODirectPacket = 0x4000;

int64_t Pipe2(Kernel& k, const uint64_t a[6]) {
  const uint64_t fds_addr = a[0];
  const uint32_t flags = AsU32(a[1]);
  if ((flags & ~(kONonblock | kODirectPacket)) != 0) {
    KCOV_BLOCK(k);
    return -kEINVAL;
  }
  auto pipe = std::make_shared<PipeState>();
  pipe->packet_mode = (flags & kODirectPacket) != 0;

  auto read_obj = std::make_shared<KObject>();
  read_obj->state = PipeEndObj{pipe, /*read_end=*/true};
  auto write_obj = std::make_shared<KObject>();
  write_obj->state = PipeEndObj{pipe, /*read_end=*/false};

  const int rfd = k.AllocFd(std::move(read_obj));
  if (rfd < 0) {
    KCOV_BLOCK(k);
    return rfd;
  }
  const int wfd = k.AllocFd(std::move(write_obj));
  if (wfd < 0) {
    KCOV_BLOCK(k);
    k.CloseFd(rfd);
    return wfd;
  }
  // struct pipe_fds { int64 rfd; int64 wfd; } in guest memory.
  if (!k.mem().Write64(fds_addr, static_cast<uint64_t>(rfd)) ||
      !k.mem().Write64(fds_addr + 8, static_cast<uint64_t>(wfd))) {
    KCOV_BLOCK(k);
    k.CloseFd(rfd);
    k.CloseFd(wfd);
    return -kEFAULT;
  }
  KCOV_BLOCK(k);
  return 0;
}

int64_t WritePipe(Kernel& k, const uint64_t a[6]) {
  auto* end = k.GetFdAs<PipeEndObj>(AsFd(a[0]));
  if (end == nullptr) {
    KCOV_BLOCK(k);
    return -kEBADF;
  }
  if (end->read_end) {
    KCOV_BLOCK(k);
    return -kEBADF;
  }
  PipeState& pipe = *end->pipe;
  KCOV_STATE(k, std::min<uint64_t>(pipe.buf.size() >> 10, 7) |
                    (pipe.packet_mode ? 0x08 : 0) |
                    ((pipe.capacity != 65536) ? 0x10 : 0));
  if (!pipe.read_open) {
    KCOV_BLOCK(k);
    return -kEPIPE;
  }
  const uint64_t count = a[2];
  const uint64_t room =
      pipe.buf.size() >= pipe.capacity ? 0 : pipe.capacity - pipe.buf.size();
  const uint64_t n = std::min(count, room);
  if (n == 0) {
    KCOV_BLOCK(k);
    return -kEAGAIN;
  }
  std::vector<uint8_t> tmp(n);
  if (!k.mem().Read(a[1], tmp.data(), n)) {
    KCOV_BLOCK(k);
    return -kEFAULT;
  }
  if (pipe.packet_mode && n > 4096) {
    KCOV_BLOCK(k);
    return -kEINVAL;  // Packet writes are page-bounded.
  }
  KCOV_BLOCK(k);
  pipe.buf.insert(pipe.buf.end(), tmp.begin(), tmp.end());
  return static_cast<int64_t>(n);
}

int64_t ReadPipe(Kernel& k, const uint64_t a[6]) {
  auto* end = k.GetFdAs<PipeEndObj>(AsFd(a[0]));
  if (end == nullptr) {
    KCOV_BLOCK(k);
    return -kEBADF;
  }
  if (!end->read_end) {
    KCOV_BLOCK(k);
    return -kEBADF;
  }
  PipeState& pipe = *end->pipe;
  const uint64_t count = a[2];
  const uint64_t n = std::min<uint64_t>(count, pipe.buf.size());
  if (n == 0) {
    KCOV_BLOCK(k);
    return pipe.write_open ? -kEAGAIN : 0;
  }
  if (!k.mem().Write(a[1], pipe.buf.data(), n)) {
    KCOV_BLOCK(k);
    return -kEFAULT;
  }
  KCOV_BLOCK(k);
  pipe.buf.erase(pipe.buf.begin(), pipe.buf.begin() + static_cast<long>(n));
  return static_cast<int64_t>(n);
}

int64_t FcntlSetPipeSz(Kernel& k, const uint64_t a[6]) {
  auto* end = k.GetFdAs<PipeEndObj>(AsFd(a[0]));
  if (end == nullptr) {
    KCOV_BLOCK(k);
    return -kEBADF;
  }
  const uint64_t size = a[2];
  if (size == 0) {
    KCOV_BLOCK(k);
    return -kEINVAL;
  }
  if (size > (1 << 20)) {
    KCOV_BLOCK(k);
    return -kEPERM;
  }
  PipeState& pipe = *end->pipe;
  if (size < pipe.buf.size()) {
    KCOV_BLOCK(k);
    // Shrinking below the buffered length reallocates the ring one slot
    // short (classic pipe_set_size off-by-one).
    if (k.TriggerBug(BugId::kPipeSetSizeOob)) {
      return -kEIO;
    }
    return -kEBUSY;
  }
  KCOV_BLOCK(k);
  pipe.capacity = size;
  return static_cast<int64_t>(size);
}

int64_t Splice(Kernel& k, const uint64_t a[6]) {
  auto* in = k.GetFdAs<PipeEndObj>(AsFd(a[0]));
  auto* out = k.GetFdAs<PipeEndObj>(AsFd(a[1]));
  if (in == nullptr || out == nullptr) {
    KCOV_BLOCK(k);
    return -kEBADF;
  }
  if (!in->read_end || out->read_end) {
    KCOV_BLOCK(k);
    return -kEBADF;
  }
  if (in->pipe == out->pipe) {
    KCOV_BLOCK(k);
    return -kEINVAL;
  }
  const uint64_t want = std::min<uint64_t>(a[2], in->pipe->buf.size());
  const uint64_t room = out->pipe->capacity > out->pipe->buf.size()
                            ? out->pipe->capacity - out->pipe->buf.size()
                            : 0;
  const uint64_t n = std::min(want, room);
  KCOV_BLOCK(k);
  out->pipe->buf.insert(out->pipe->buf.end(), in->pipe->buf.begin(),
                        in->pipe->buf.begin() + static_cast<long>(n));
  in->pipe->buf.erase(in->pipe->buf.begin(),
                      in->pipe->buf.begin() + static_cast<long>(n));
  return static_cast<int64_t>(n);
}

}  // namespace

void RegisterPipeSyscalls(std::vector<SyscallDef>& defs) {
  defs.insert(defs.end(), {
    {"pipe2", Pipe2, "pipe"},
    {"write$pipe", WritePipe, "pipe"},
    {"read$pipe", ReadPipe, "pipe"},
    {"fcntl$SETPIPE_SZ", FcntlSetPipeSz, "pipe"},
    {"splice", Splice, "pipe"},
  });
}

}  // namespace healer
