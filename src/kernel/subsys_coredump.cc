// Core-dump subsystem: prctl / ptrace regset state / tgkill. Reproduces the
// paper's case-study bug (Listing 2): fill_thread_core_info kmallocs the
// regset buffer without initialization; a partially-filled regset leaks
// kernel memory into the dump, caught by the KMSAN-style uninit guard.

#include "src/kernel/coverage.h"
#include "src/kernel/subsys_common.h"

namespace healer {

namespace {

constexpr uint32_t kPrSetDumpable = 4;
constexpr uint32_t kSigsegv = 11;

int64_t Prctl(Kernel& k, const uint64_t a[6]) {
  const uint32_t option = AsU32(a[0]);
  if (option != kPrSetDumpable) {
    KCOV_BLOCK(k);
    return -kEINVAL;
  }
  const uint32_t value = AsU32(a[1]);
  if (value > 1) {
    KCOV_BLOCK(k);
    return -kEINVAL;
  }
  KCOV_BLOCK(k);
  k.coredump.dumpable = value == 1;
  return 0;
}

// ptrace$SETREGSET(type, data ptr[in, buffer], size): a size that is not a
// multiple of the regset slot width leaves the tail slots unwritten.
int64_t PtraceSetregset(Kernel& k, const uint64_t a[6]) {
  const uint32_t type = AsU32(a[0]);
  if (type > 2) {
    KCOV_BLOCK(k);
    return -kEINVAL;
  }
  const uint64_t size = a[2];
  if (size == 0 || size > 512) {
    KCOV_BLOCK(k);
    return -kEINVAL;
  }
  std::vector<uint8_t> data(size);
  if (!k.mem().Read(a[1], data.data(), size)) {
    KCOV_BLOCK(k);
    return -kEFAULT;
  }
  KCOV_BLOCK(k);
  k.coredump.regset_bytes = static_cast<uint32_t>(size);
  k.coredump.regset_partial = size % 16 != 0;
  return 0;
}

int64_t PtraceGetregset(Kernel& k, const uint64_t a[6]) {
  const uint32_t type = AsU32(a[0]);
  if (type > 2) {
    KCOV_BLOCK(k);
    return -kEINVAL;
  }
  const uint64_t size =
      k.coredump.regset_bytes == 0 ? 16 : k.coredump.regset_bytes;
  std::vector<uint8_t> out(size, 0);
  if (!k.mem().Write(a[1], out.data(), size)) {
    KCOV_BLOCK(k);
    return -kEFAULT;
  }
  KCOV_BLOCK(k);
  return static_cast<int64_t>(size);
}

int64_t TgkillSelf(Kernel& k, const uint64_t a[6]) {
  const uint32_t sig = AsU32(a[0]);
  if (sig == 0 || sig > 31) {
    KCOV_BLOCK(k);
    return -kEINVAL;
  }
  if (sig != kSigsegv) {
    KCOV_BLOCK(k);
    return 0;  // Signal delivered; no dump in the model.
  }
  if (!k.coredump.dumpable) {
    KCOV_BLOCK(k);
    return 0;
  }
  KCOV_BLOCK(k);
  KCOV_STATE(k, (k.coredump.regset_partial ? 1 : 0) |
                    ((k.coredump.regset_bytes & 0x3f) << 1));
  // do_coredump -> fill_thread_core_info: kmalloc(size) without init; a
  // partial regset leaves kilobytes of kernel heap in the dump file.
  if (k.coredump.regset_partial) {
    KCOV_BLOCK(k);
    if (k.TriggerBug(BugId::kFillThreadCoreUninit)) {
      return -kEIO;
    }
  }
  return 0;
}

}  // namespace

void RegisterCoredumpSyscalls(std::vector<SyscallDef>& defs) {
  defs.insert(defs.end(), {
    {"prctl$PR_SET_DUMPABLE", Prctl, "coredump"},
    {"ptrace$SETREGSET", PtraceSetregset, "coredump"},
    {"ptrace$GETREGSET", PtraceGetregset, "coredump"},
    {"tgkill$self", TgkillSelf, "coredump"},
  });
}

}  // namespace healer
