// Registry of bugs injected into SimKernel.
//
// Each entry mirrors a vulnerability from the paper's evaluation (Tables 4
// and 5) plus a pool of shallower previously-known bugs that populate the
// 24-hour experiments. A bug is *live* only within its [lo, hi] version
// range; handlers call Kernel::TriggerBug at the guarded site and abort the
// call if the bug is live, which the executor surfaces as a crash. The
// `repro_len` field documents the minimum syscall-sequence length that can
// reach the guard (the "Length to Reproduce" column of Table 4).

#ifndef SRC_KERNEL_BUGS_H_
#define SRC_KERNEL_BUGS_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "src/kernel/config.h"

namespace healer {

enum class BugClass {
  kDataRace,
  kUseAfterFree,
  kOutOfBounds,
  kNullPtrDeref,
  kUninitValue,
  kMemoryLeak,
  kDeadlock,
  kRefcountBug,
  kGeneralProtectionFault,
  kPagingFault,
  kDivideError,
  kKernelBug,  // Logic assertion.
  kInconsistentLockState,
};

const char* BugClassName(BugClass cls);

enum class BugId : int {
  // ---- Table 4: deep bugs found only by HEALER in the 24h runs ----
  kConsoleUnlockDeadlock = 0,   // deadlock in console_unlock, 5.11, len 18
  kPutDeviceNullDeref,          // null-ptr-deref in put_device, 5.11, len 8
  kL2capChanPutRefcount,        // refcount bug in l2cap_chan_put, 5.11, len 7
  kNbdDisconnectNullDeref,      // null-ptr-deref nbd_disconnect_and_put, 5.11, len 6
  kIoremapPageRangeBug,         // kernel bug in ioremap_page_range, 5.11, len 6
  kKvmHvIrqRoutingNullDeref,    // null-ptr-deref kvm_hv_irq_routing_update, 5.11, len 6
  kIeee802154LlsecParseKeyId,   // null-ptr-deref ieee802154_llsec_parse_key_id, 5.11, len 5
  kBitPutcsOob,                 // out-of-bounds read in bit_putcs, 5.4, len 8
  kTpkWriteBug,                 // kernel bug in tpk_write, 5.4, len 6
  kNl802154DelLlsecKey,         // null-ptr-deref nl802154_del_llsec_key, 5.4, len 5
  kLlcpSockGetname,             // null-ptr-deref llcp_sock_getname, 5.4, len 5
  kVividStopGenerating,         // null-ptr-deref vivid_stop_generating_vid_cap, 4.19, len 10
  kBitfillAlignedBug,           // kernel bug in bitfill_aligned, 4.19, len 9
  kFbconGetFontOob,             // out-of-bounds in fbcon_get_font, 4.19, len 6
  kVcsWriteOob,                 // out-of-bounds in vcs_write, 4.19, len 5

  // ---- Table 5: previously-unknown bug survey ----
  kExt4MarkIlocDirtyRace,       // data race, 5.11
  kJbd2FileBufferRace,          // data race, 5.11
  kExt4DirtyMetadataRace,       // data race, 5.11
  kExt4FcCommitRace,            // data race, 5.11
  kFputEpRemoveRace,            // data race, 5.11
  kE1000CleanXmitRace,          // data race, 5.11
  kCdevDelRefcount,             // refcount bug, 5.11
  kCmaCancelOperationUaf,       // use after free, 5.11
  kMacvlanBroadcastUaf,         // use after free, 5.11
  kRdmaListenUaf,               // use after free, 5.11
  kIeee802154TxUaf,             // use after free, 5.11
  kQdiscCalculatePktLenOob,     // out of bounds, 5.11
  kNttyOpenPagingFault,         // paging fault, 5.11
  kBuildSkbPagingFault,         // paging fault, 5.11
  kKvmUnregisterCoalescedMmioGpf,  // general protection fault, 5.11
  kBlkAddPartitionsPagingFault, // paging fault, 5.11
  kKvmIoBusUnregisterLeak,      // memory leak, 5.11
  kIoUringCancelNullDeref,      // null-ptr-deref, 5.11
  kGsmldAttachNullDeref,        // null-ptr-deref, 5.11
  kDropNlinkFillattrRace,       // data race, 5.6
  kKvmGfnToHvaCacheOob,         // out of bounds, 5.6
  kNfsParseMonolithicLeak,      // memory leak, 5.6
  kRxrpcLookupLocalLeak,        // memory leak, 5.6
  kFillThreadCoreUninit,        // uninit value, 5.6 (the case-study bug)
  kRdsIbAddConnNullDeref,       // null-ptr-deref, 5.6
  kVcsScrReadwOob,              // out of bounds, 5.0
  kNttyReceiveBufUaf,           // use after free, 5.0
  kSoftCursorOob,               // out of bounds, 5.0
  kIoSubmitOneDeadlock,         // deadlock, 5.0
  kFreeIoctxUsersDeadlock,      // deadlock, 5.0
  kFbVarToVideomodeDivide,      // divide error, 4.19
  kFsReclaimLockState,          // inconsistent lock state, 4.19
  kReiserfsFillSuperBug,        // kernel bug, 4.19

  // ---- Shallow previously-known pool (low-hanging fruit every tool finds)
  kTimerfdSettimeBug,
  kEventfdCounterOverflow,
  kPipeSetSizeOob,
  kSockoptHugeOptlenOob,
  kMmapZeroLenBug,
  kSeekNegativeBug,
  kFcntlBadCmdBug,
  kEpollSelfAddDeadlock,
  kFallocateHugeBug,
  kDupLimitLeak,
  kNanosleepOverflowBug,
  kSendtoNoDestBug,

  kNumBugs,
};

struct BugInfo {
  BugId id;
  // Title as a crash report would render it, e.g.
  // "KASAN: use-after-free in macvlan_broadcast".
  const char* title;
  const char* subsystem;
  BugClass bug_class;
  KernelVersion lo;  // First version where the bug is live.
  KernelVersion hi;  // Last version where the bug is live.
  int repro_len;     // Minimum syscalls to reach the guard.
  bool deep;         // True for Table-4-style deep bugs.
};

// Full registry, indexed by BugId.
const std::vector<BugInfo>& AllBugs();
const BugInfo& GetBugInfo(BugId id);

// True iff `id` is live in `version`.
bool BugLiveIn(BugId id, KernelVersion version);

}  // namespace healer

#endif  // SRC_KERNEL_BUGS_H_
