// timerfd + clock subsystem.

#include <algorithm>

#include "src/kernel/coverage.h"
#include "src/kernel/subsys_common.h"

namespace healer {

namespace {

constexpr uint64_t kNsecPerSec = 1000000000ull;

int64_t TimerfdCreate(Kernel& k, const uint64_t a[6]) {
  const uint32_t clockid = AsU32(a[0]);
  if (clockid > 11) {
    KCOV_BLOCK(k);
    return -kEINVAL;
  }
  KCOV_BLOCK(k);
  auto obj = std::make_shared<KObject>();
  TimerfdObj timer;
  timer.clockid = static_cast<int>(clockid);
  obj->state = timer;
  return k.AllocFd(std::move(obj));
}

// struct itimerspec (model): { u64 interval_sec; u64 interval_nsec;
//                              u64 value_sec; u64 value_nsec; }
int64_t TimerfdSettime(Kernel& k, const uint64_t a[6]) {
  auto* timer = k.GetFdAs<TimerfdObj>(AsFd(a[0]));
  if (timer == nullptr) {
    KCOV_BLOCK(k);
    return -kEBADF;
  }
  uint64_t spec[4];
  if (!k.mem().Read(a[2], spec, sizeof(spec))) {
    KCOV_BLOCK(k);
    return -kEFAULT;
  }
  if (spec[1] >= kNsecPerSec || spec[3] >= kNsecPerSec) {
    KCOV_BLOCK(k);
    // Unnormalized nsec with a zero value slips past the validation.
    if (spec[2] == 0 && spec[3] >= kNsecPerSec &&
        k.TriggerBug(BugId::kTimerfdSettimeBug)) {
      return -kEIO;
    }
    return -kEINVAL;
  }
  // Write back the previous value if requested.
  if (a[3] != 0) {
    KCOV_BLOCK(k);
    const uint64_t old_spec[4] = {timer->interval_ns / kNsecPerSec,
                                  timer->interval_ns % kNsecPerSec,
                                  timer->value_ns / kNsecPerSec,
                                  timer->value_ns % kNsecPerSec};
    if (!k.mem().Write(a[3], old_spec, sizeof(old_spec))) {
      return -kEFAULT;
    }
  }
  KCOV_BLOCK(k);
  timer->interval_ns = spec[0] * kNsecPerSec + spec[1];
  timer->value_ns = spec[2] * kNsecPerSec + spec[3];
  timer->armed = timer->value_ns != 0 || timer->interval_ns != 0;
  timer->expirations = timer->armed ? 1 : 0;
  return 0;
}

int64_t TimerfdGettime(Kernel& k, const uint64_t a[6]) {
  auto* timer = k.GetFdAs<TimerfdObj>(AsFd(a[0]));
  if (timer == nullptr) {
    KCOV_BLOCK(k);
    return -kEBADF;
  }
  const uint64_t spec[4] = {timer->interval_ns / kNsecPerSec,
                            timer->interval_ns % kNsecPerSec,
                            timer->value_ns / kNsecPerSec,
                            timer->value_ns % kNsecPerSec};
  if (!k.mem().Write(a[1], spec, sizeof(spec))) {
    KCOV_BLOCK(k);
    return -kEFAULT;
  }
  KCOV_BLOCK(k);
  return 0;
}

int64_t ReadTimerfd(Kernel& k, const uint64_t a[6]) {
  auto* timer = k.GetFdAs<TimerfdObj>(AsFd(a[0]));
  if (timer == nullptr) {
    KCOV_BLOCK(k);
    return -kEBADF;
  }
  if (a[2] < 8) {
    KCOV_BLOCK(k);
    return -kEINVAL;
  }
  KCOV_STATE(k, (timer->armed ? 1 : 0) | ((timer->clockid & 0xf) << 1) |
                    ((timer->interval_ns != 0 ? 1 : 0) << 5));
  if (!timer->armed || timer->expirations == 0) {
    KCOV_BLOCK(k);
    return -kEAGAIN;
  }
  if (!k.mem().Write64(a[1], timer->expirations)) {
    KCOV_BLOCK(k);
    return -kEFAULT;
  }
  KCOV_BLOCK(k);
  timer->expirations = timer->interval_ns != 0 ? 1 : 0;
  return 8;
}

// struct timespec { u64 sec; u64 nsec; }
int64_t Nanosleep(Kernel& k, const uint64_t a[6]) {
  uint64_t ts[2];
  if (!k.mem().Read(a[0], ts, sizeof(ts))) {
    KCOV_BLOCK(k);
    return -kEFAULT;
  }
  if (ts[1] >= kNsecPerSec) {
    KCOV_BLOCK(k);
    return -kEINVAL;
  }
  if (ts[0] > 1000000000ull) {
    KCOV_BLOCK(k);
    // Seconds overflow the ktime conversion.
    if (k.TriggerBug(BugId::kNanosleepOverflowBug)) {
      return -kEIO;
    }
    return -kEINVAL;
  }
  KCOV_BLOCK(k);
  return 0;
}

int64_t ClockGettime(Kernel& k, const uint64_t a[6]) {
  const uint32_t clockid = AsU32(a[0]);
  if (clockid > 11) {
    KCOV_BLOCK(k);
    return -kEINVAL;
  }
  const uint64_t ts[2] = {k.tick() / 1000, (k.tick() % 1000) * 1000000};
  if (!k.mem().Write(a[1], ts, sizeof(ts))) {
    KCOV_BLOCK(k);
    return -kEFAULT;
  }
  KCOV_BLOCK(k);
  return 0;
}

}  // namespace

void RegisterTimerSyscalls(std::vector<SyscallDef>& defs) {
  defs.insert(defs.end(), {
    {"timerfd_create", TimerfdCreate, "timer"},
    {"timerfd_settime", TimerfdSettime, "timer"},
    {"timerfd_gettime", TimerfdGettime, "timer"},
    {"read$timerfd", ReadTimerfd, "timer"},
    {"nanosleep", Nanosleep, "timer"},
    {"clock_gettime", ClockGettime, "timer"},
  });
}

}  // namespace healer
