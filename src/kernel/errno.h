// Errno values used by the simulated kernel. Numerically aligned with Linux
// x86-64 so traces read naturally.

#ifndef SRC_KERNEL_ERRNO_H_
#define SRC_KERNEL_ERRNO_H_

#include <cstdint>

namespace healer {

inline constexpr int kEPERM = 1;
inline constexpr int kENOENT = 2;
inline constexpr int kESRCH = 3;
inline constexpr int kEINTR = 4;
inline constexpr int kEIO = 5;
inline constexpr int kENXIO = 6;
inline constexpr int kEBADF = 9;
inline constexpr int kEAGAIN = 11;
inline constexpr int kENOMEM = 12;
inline constexpr int kEACCES = 13;
inline constexpr int kEFAULT = 14;
inline constexpr int kEBUSY = 16;
inline constexpr int kEEXIST = 17;
inline constexpr int kENODEV = 19;
inline constexpr int kENOTDIR = 20;
inline constexpr int kEISDIR = 21;
inline constexpr int kEINVAL = 22;
inline constexpr int kENFILE = 23;
inline constexpr int kEMFILE = 24;
inline constexpr int kENOTTY = 25;
inline constexpr int kETXTBSY = 26;
inline constexpr int kEFBIG = 27;
inline constexpr int kENOSPC = 28;
inline constexpr int kESPIPE = 29;
inline constexpr int kEROFS = 30;
inline constexpr int kEPIPE = 32;
inline constexpr int kERANGE = 34;
inline constexpr int kENOSYS = 38;
inline constexpr int kENOTEMPTY = 39;
inline constexpr int kEOPNOTSUPP = 95;
inline constexpr int kEADDRINUSE = 98;
inline constexpr int kEADDRNOTAVAIL = 99;
inline constexpr int kENETDOWN = 100;
inline constexpr int kECONNRESET = 104;
inline constexpr int kEISCONN = 106;
inline constexpr int kENOTCONN = 107;
inline constexpr int kETIMEDOUT = 110;
inline constexpr int kECONNREFUSED = 111;
inline constexpr int kEALREADY = 114;
inline constexpr int kEINPROGRESS = 115;
inline constexpr int kEDESTADDRREQ = 89;

// Returns a short name for an errno value ("EINVAL"); "E?" when unknown.
const char* ErrnoName(int err);

}  // namespace healer

#endif  // SRC_KERNEL_ERRNO_H_
