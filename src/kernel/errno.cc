#include "src/kernel/errno.h"

namespace healer {

const char* ErrnoName(int err) {
  switch (err) {
    case kEPERM:
      return "EPERM";
    case kENOENT:
      return "ENOENT";
    case kESRCH:
      return "ESRCH";
    case kEINTR:
      return "EINTR";
    case kEIO:
      return "EIO";
    case kENXIO:
      return "ENXIO";
    case kEBADF:
      return "EBADF";
    case kEAGAIN:
      return "EAGAIN";
    case kENOMEM:
      return "ENOMEM";
    case kEACCES:
      return "EACCES";
    case kEFAULT:
      return "EFAULT";
    case kEBUSY:
      return "EBUSY";
    case kEEXIST:
      return "EEXIST";
    case kENODEV:
      return "ENODEV";
    case kENOTDIR:
      return "ENOTDIR";
    case kEISDIR:
      return "EISDIR";
    case kEINVAL:
      return "EINVAL";
    case kENFILE:
      return "ENFILE";
    case kEMFILE:
      return "EMFILE";
    case kENOTTY:
      return "ENOTTY";
    case kETXTBSY:
      return "ETXTBSY";
    case kEFBIG:
      return "EFBIG";
    case kENOSPC:
      return "ENOSPC";
    case kESPIPE:
      return "ESPIPE";
    case kEROFS:
      return "EROFS";
    case kEPIPE:
      return "EPIPE";
    case kERANGE:
      return "ERANGE";
    case kENOSYS:
      return "ENOSYS";
    case kENOTEMPTY:
      return "ENOTEMPTY";
    case kEOPNOTSUPP:
      return "EOPNOTSUPP";
    case kEADDRINUSE:
      return "EADDRINUSE";
    case kEADDRNOTAVAIL:
      return "EADDRNOTAVAIL";
    case kENETDOWN:
      return "ENETDOWN";
    case kECONNRESET:
      return "ECONNRESET";
    case kEISCONN:
      return "EISCONN";
    case kENOTCONN:
      return "ENOTCONN";
    case kETIMEDOUT:
      return "ETIMEDOUT";
    case kECONNREFUSED:
      return "ECONNREFUSED";
    case kEALREADY:
      return "EALREADY";
    case kEINPROGRESS:
      return "EINPROGRESS";
    case kEDESTADDRREQ:
      return "EDESTADDRREQ";
    default:
      return "E?";
  }
}

}  // namespace healer
