// Netlink subsystem: an 802.15.4 (wpan) configuration channel whose message
// payloads are parsed as nested TLV attributes, giving heavily
// parameter-dependent branches plus the llsec key-management bugs.

#include <algorithm>

#include "src/kernel/coverage.h"
#include "src/kernel/subsys_common.h"

namespace healer {

namespace {

struct NlAttr {
  uint16_t type = 0;
  std::vector<uint8_t> payload;
};

// Parses {u16 len, u16 type, payload[len-4]}* TLVs; returns false on a
// malformed stream.
bool ParseAttrs(Kernel& k, const std::vector<uint8_t>& buf,
                std::vector<NlAttr>* out) {
  size_t off = 0;
  while (off + 4 <= buf.size()) {
    KCOV_BLOCK(k);
    uint16_t len = static_cast<uint16_t>(buf[off] | (buf[off + 1] << 8));
    uint16_t type = static_cast<uint16_t>(buf[off + 2] | (buf[off + 3] << 8));
    if (len < 4 || off + len > buf.size()) {
      KCOV_BLOCK(k);
      return false;
    }
    NlAttr attr;
    attr.type = type;
    attr.payload.assign(buf.begin() + static_cast<long>(off) + 4,
                        buf.begin() + static_cast<long>(off + len));
    out->push_back(std::move(attr));
    off += (len + 3u) & ~3u;  // 4-byte alignment like NLA_ALIGN.
  }
  return off >= buf.size();
}

// Attribute type numbers (model).
constexpr uint16_t kAttrIfIndex = 1;
constexpr uint16_t kAttrKeyId = 2;
constexpr uint16_t kAttrKeyBytes = 3;
constexpr uint16_t kAttrSecLevel = 4;
constexpr uint16_t kAttrFrameCounter = 5;

int64_t SocketNl802154(Kernel& k, const uint64_t a[6]) {
  KCOV_BLOCK(k);
  auto obj = std::make_shared<KObject>();
  SockObj sock;
  sock.proto = SockProto::kNetlink;
  obj->state = std::move(sock);
  return k.AllocFd(std::move(obj));
}

int64_t BindNetlink(Kernel& k, const uint64_t a[6]) {
  auto* sock = k.GetFdAs<SockObj>(AsFd(a[0]));
  if (sock == nullptr || sock->proto != SockProto::kNetlink) {
    KCOV_BLOCK(k);
    return -kEBADF;
  }
  if (sock->state != SockState::kNew) {
    KCOV_BLOCK(k);
    return -kEINVAL;
  }
  KCOV_BLOCK(k);
  sock->state = SockState::kBound;
  return 0;
}

bool ReadMsg(Kernel& k, const uint64_t a[6], std::vector<uint8_t>* buf) {
  const uint64_t len = std::min<uint64_t>(a[2], 256);
  buf->resize(len);
  return len == 0 || k.mem().Read(a[1], buf->data(), len);
}

// NL802154_CMD_NEW_SEC_KEY.
int64_t SendmsgAddKey(Kernel& k, const uint64_t a[6]) {
  auto* sock = k.GetFdAs<SockObj>(AsFd(a[0]));
  if (sock == nullptr || sock->proto != SockProto::kNetlink) {
    KCOV_BLOCK(k);
    return -kEBADF;
  }
  std::vector<uint8_t> buf;
  if (!ReadMsg(k, a, &buf)) {
    KCOV_BLOCK(k);
    return -kEFAULT;
  }
  std::vector<NlAttr> attrs;
  if (!ParseAttrs(k, buf, &attrs)) {
    KCOV_BLOCK(k);
    return -kEINVAL;
  }
  bool has_key_id = false;
  bool has_key_bytes = false;
  for (const NlAttr& attr : attrs) {
    switch (attr.type) {
      case kAttrKeyId:
        KCOV_BLOCK(k);
        has_key_id = attr.payload.size() >= 2;
        break;
      case kAttrKeyBytes:
        KCOV_BLOCK(k);
        has_key_bytes = attr.payload.size() >= 16;
        break;
      case kAttrSecLevel:
      case kAttrFrameCounter:
      case kAttrIfIndex:
        KCOV_BLOCK(k);
        break;
      default:
        KCOV_BLOCK(k);
        break;
    }
  }
  if (!has_key_id || !has_key_bytes) {
    KCOV_BLOCK(k);
    return -kEINVAL;
  }
  KCOV_BLOCK(k);
  sock->llsec_key_added = true;
  k.net.wpan_key_deleted = false;
  return 0;
}

// NL802154_CMD_DEL_SEC_KEY.
int64_t SendmsgDelKey(Kernel& k, const uint64_t a[6]) {
  auto* sock = k.GetFdAs<SockObj>(AsFd(a[0]));
  if (sock == nullptr || sock->proto != SockProto::kNetlink) {
    KCOV_BLOCK(k);
    return -kEBADF;
  }
  std::vector<uint8_t> buf;
  if (!ReadMsg(k, a, &buf)) {
    KCOV_BLOCK(k);
    return -kEFAULT;
  }
  std::vector<NlAttr> attrs;
  if (!ParseAttrs(k, buf, &attrs)) {
    KCOV_BLOCK(k);
    return -kEINVAL;
  }
  const bool has_key_id = std::any_of(
      attrs.begin(), attrs.end(),
      [](const NlAttr& at) { return at.type == kAttrKeyId; });
  if (!sock->llsec_key_added) {
    KCOV_BLOCK(k);
    // Deleting from an empty llsec table dereferences the absent entry.
    if (has_key_id && k.TriggerBug(BugId::kNl802154DelLlsecKey)) {
      return -kEFAULT;
    }
    return -kENOENT;
  }
  if (!has_key_id) {
    KCOV_BLOCK(k);
    return -kEINVAL;
  }
  KCOV_BLOCK(k);
  sock->llsec_key_added = false;
  // A queued wpan frame may still reference this key (ieee802154_tx UAF).
  k.net.wpan_key_deleted = true;
  return 0;
}

// NL802154_CMD_SET_SEC_PARAMS: the key id is a *nested* attribute; a
// sec-level attribute without the nested key id dereferences a null id.
int64_t SendmsgSetParams(Kernel& k, const uint64_t a[6]) {
  auto* sock = k.GetFdAs<SockObj>(AsFd(a[0]));
  if (sock == nullptr || sock->proto != SockProto::kNetlink) {
    KCOV_BLOCK(k);
    return -kEBADF;
  }
  if (sock->state == SockState::kNew) {
    KCOV_BLOCK(k);
    return -kENOTCONN;  // Must bind the genl socket first.
  }
  std::vector<uint8_t> buf;
  if (!ReadMsg(k, a, &buf)) {
    KCOV_BLOCK(k);
    return -kEFAULT;
  }
  std::vector<NlAttr> attrs;
  if (!ParseAttrs(k, buf, &attrs)) {
    KCOV_BLOCK(k);
    return -kEINVAL;
  }
  KCOV_STATE(k, (sock->llsec_key_added ? 1 : 0) |
                    (k.net.wpan_key_deleted ? 2 : 0) |
                    ((attrs.size() & 7) << 2) |
                    ((sock->nl_families_probed & 3) << 5));
  bool has_sec_level = false;
  bool has_nested_key_id = false;
  for (const NlAttr& attr : attrs) {
    if (attr.type == kAttrSecLevel) {
      KCOV_BLOCK(k);
      has_sec_level = true;
      // The key id must be nested inside the sec-level attribute.
      std::vector<NlAttr> nested;
      if (ParseAttrs(k, attr.payload, &nested)) {
        for (const NlAttr& n : nested) {
          if (n.type == kAttrKeyId) {
            KCOV_BLOCK(k);
            has_nested_key_id = true;
          }
        }
      }
    }
  }
  if (has_sec_level && !has_nested_key_id) {
    KCOV_BLOCK(k);
    if (k.TriggerBug(BugId::kIeee802154LlsecParseKeyId)) {
      return -kEFAULT;
    }
    return -kEINVAL;
  }
  KCOV_BLOCK(k);
  ++sock->nl_families_probed;
  return 0;
}

}  // namespace

void RegisterNetlinkSyscalls(std::vector<SyscallDef>& defs) {
  defs.insert(defs.end(), {
    {"socket$nl802154", SocketNl802154, "netlink"},
    {"bind$netlink", BindNetlink, "netlink"},
    {"sendmsg$nl802154_add_key", SendmsgAddKey, "netlink"},
    {"sendmsg$nl802154_del_key", SendmsgDelKey, "netlink"},
    {"sendmsg$nl802154_set_params", SendmsgSetParams, "netlink"},
  });
}

}  // namespace healer
