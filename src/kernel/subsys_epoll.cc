// epoll + eventfd subsystem. The interest list holds weak references, so a
// close() behind epoll's back leaves a dangling item — the state behind the
// __fput/ep_remove race guard.

#include <algorithm>

#include "src/kernel/coverage.h"
#include "src/kernel/subsys_common.h"

namespace healer {

namespace {

int64_t EpollCreate1(Kernel& k, const uint64_t a[6]) {
  const uint32_t flags = AsU32(a[0]);
  if ((flags & ~1u) != 0) {
    KCOV_BLOCK(k);
    return -kEINVAL;
  }
  KCOV_BLOCK(k);
  auto obj = std::make_shared<KObject>();
  obj->state = EpollObj{};
  return k.AllocFd(std::move(obj));
}

int64_t EpollCtlCommon(Kernel& k, const uint64_t a[6], int op) {
  auto ep_obj = k.GetFd(AsFd(a[0]));
  if (ep_obj == nullptr) {
    KCOV_BLOCK(k);
    return -kEBADF;
  }
  auto* ep = ep_obj->As<EpollObj>();
  if (ep == nullptr) {
    KCOV_BLOCK(k);
    return -kEINVAL;
  }
  const int target_fd = AsFd(a[2]);
  auto target = k.GetFd(target_fd);
  if (target == nullptr && op != 2 /* DEL tolerates stale fds */) {
    KCOV_BLOCK(k);
    return -kEBADF;
  }
  if (target == ep_obj) {
    KCOV_BLOCK(k);
    // Adding an epoll to itself forms a wait-loop cycle.
    if (k.TriggerBug(BugId::kEpollSelfAddDeadlock)) {
      return -kEIO;
    }
    return -kEINVAL;
  }
  uint32_t events = 0;
  if (op != 2) {
    uint32_t ev32;
    if (!k.mem().Read32(a[3], &ev32)) {
      KCOV_BLOCK(k);
      return -kEFAULT;
    }
    events = ev32;
  }
  auto it = std::find_if(ep->items.begin(), ep->items.end(),
                         [&](const EpollItem& i) { return i.fd == target_fd; });
  switch (op) {
    case 1:  // ADD
      if (it != ep->items.end()) {
        KCOV_BLOCK(k);
        return -kEEXIST;
      }
      KCOV_BLOCK(k);
      ep->items.push_back(EpollItem{target_fd, target, events});
      return 0;
    case 3:  // MOD
      if (it == ep->items.end()) {
        KCOV_BLOCK(k);
        return -kENOENT;
      }
      KCOV_BLOCK(k);
      it->events = events;
      return 0;
    case 2:  // DEL
      if (it == ep->items.end()) {
        KCOV_BLOCK(k);
        return -kENOENT;
      }
      KCOV_BLOCK(k);
      ep->items.erase(it);
      return 0;
    default:
      KCOV_BLOCK(k);
      return -kEINVAL;
  }
}

int64_t EpollCtlAdd(Kernel& k, const uint64_t a[6]) {
  return EpollCtlCommon(k, a, 1);
}
int64_t EpollCtlMod(Kernel& k, const uint64_t a[6]) {
  return EpollCtlCommon(k, a, 3);
}
int64_t EpollCtlDel(Kernel& k, const uint64_t a[6]) {
  return EpollCtlCommon(k, a, 2);
}

int64_t EpollWait(Kernel& k, const uint64_t a[6]) {
  auto* ep = k.GetFdAs<EpollObj>(AsFd(a[0]));
  if (ep == nullptr) {
    KCOV_BLOCK(k);
    return -kEBADF;
  }
  const uint64_t events_addr = a[1];
  const uint32_t max_events = AsU32(a[2]);
  if (max_events == 0 || max_events > 64) {
    KCOV_BLOCK(k);
    return -kEINVAL;
  }
  KCOV_STATE(k, (ep->items.size() & 0xf));
  uint32_t ready = 0;
  for (const EpollItem& item : ep->items) {
    auto obj = item.obj.lock();
    if (obj == nullptr || obj->freed) {
      KCOV_BLOCK(k);
      // The interest item outlived the final fput of its file.
      if (k.TriggerBug(BugId::kFputEpRemoveRace)) {
        return -kEIO;
      }
      continue;
    }
    bool is_ready = false;
    if (auto* pipe_end = obj->As<PipeEndObj>()) {
      KCOV_BLOCK(k);
      is_ready = pipe_end->read_end ? !pipe_end->pipe->buf.empty()
                                    : pipe_end->pipe->buf.size() <
                                          pipe_end->pipe->capacity;
    } else if (auto* sock = obj->As<SockObj>()) {
      KCOV_BLOCK(k);
      is_ready = !sock->rxbuf.empty() || sock->pending_connections > 0;
    } else if (auto* efd = obj->As<EventfdObj>()) {
      KCOV_BLOCK(k);
      is_ready = efd->counter > 0;
    } else if (auto* tfd = obj->As<TimerfdObj>()) {
      KCOV_BLOCK(k);
      is_ready = tfd->expirations > 0;
    } else {
      KCOV_BLOCK(k);
      is_ready = true;  // Regular files are always ready.
    }
    if (is_ready && ready < max_events) {
      if (!k.mem().Write32(events_addr + 8ull * ready,
                           static_cast<uint32_t>(item.fd))) {
        KCOV_BLOCK(k);
        return -kEFAULT;
      }
      ++ready;
    }
  }
  KCOV_BLOCK(k);
  return ready;
}

int64_t Eventfd2(Kernel& k, const uint64_t a[6]) {
  const uint32_t initval = AsU32(a[0]);
  const uint32_t flags = AsU32(a[1]);
  KCOV_BLOCK(k);
  auto obj = std::make_shared<KObject>();
  EventfdObj efd;
  efd.counter = initval;
  efd.semaphore = (flags & 1) != 0;
  obj->state = efd;
  return k.AllocFd(std::move(obj));
}

int64_t WriteEventfd(Kernel& k, const uint64_t a[6]) {
  auto* efd = k.GetFdAs<EventfdObj>(AsFd(a[0]));
  if (efd == nullptr) {
    KCOV_BLOCK(k);
    return -kEBADF;
  }
  uint64_t add;
  if (!k.mem().Read64(a[1], &add)) {
    KCOV_BLOCK(k);
    return -kEFAULT;
  }
  if (add == UINT64_MAX) {
    KCOV_BLOCK(k);
    return -kEINVAL;
  }
  if (efd->counter + add < efd->counter) {
    KCOV_BLOCK(k);
    // Counter overflow misses the wraparound check.
    if (k.TriggerBug(BugId::kEventfdCounterOverflow)) {
      return -kEIO;
    }
    return -kEAGAIN;
  }
  KCOV_BLOCK(k);
  efd->counter += add;
  return 8;
}

int64_t ReadEventfd(Kernel& k, const uint64_t a[6]) {
  auto* efd = k.GetFdAs<EventfdObj>(AsFd(a[0]));
  if (efd == nullptr) {
    KCOV_BLOCK(k);
    return -kEBADF;
  }
  if (efd->counter == 0) {
    KCOV_BLOCK(k);
    return -kEAGAIN;
  }
  const uint64_t value = efd->semaphore ? 1 : efd->counter;
  if (!k.mem().Write64(a[1], value)) {
    KCOV_BLOCK(k);
    return -kEFAULT;
  }
  KCOV_BLOCK(k);
  efd->counter -= value;
  return 8;
}

}  // namespace

void RegisterEpollSyscalls(std::vector<SyscallDef>& defs) {
  defs.insert(defs.end(), {
    {"epoll_create1", EpollCreate1, "epoll"},
    {"epoll_ctl$ADD", EpollCtlAdd, "epoll"},
    {"epoll_ctl$MOD", EpollCtlMod, "epoll"},
    {"epoll_ctl$DEL", EpollCtlDel, "epoll"},
    {"epoll_wait", EpollWait, "epoll"},
    {"eventfd2", Eventfd2, "epoll"},
    {"write$eventfd", WriteEventfd, "epoll"},
    {"read$eventfd", ReadEventfd, "epoll"},
  });
}

}  // namespace healer
