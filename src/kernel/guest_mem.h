// Simulated guest user memory.
//
// The executor lays out argument data in a flat data window and the kernel's
// copy_{from,to}_user equivalents validate every access against it, so
// handlers have genuine EFAULT paths. A separate window models the guest's
// mmap address space; the mm subsystem only tracks page mappings there, so
// the VMA window has no backing store and accesses to it fault (like
// touching an unmapped page).
//
// GuestMem is pooled by the executor and reset between programs; Reset()
// clears only the high-water-marked region, keeping per-program cost
// proportional to actual usage.

#ifndef SRC_KERNEL_GUEST_MEM_H_
#define SRC_KERNEL_GUEST_MEM_H_

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace healer {

class GuestMem {
 public:
  static constexpr uint64_t kPageSize = 4096;
  // Argument data window: the executor bump-allocates pointees here.
  static constexpr uint64_t kDataBase = 0x10000000;
  static constexpr uint64_t kDataSize = 2 << 20;
  // VMA window: targets of mmap; vma-typed args point here.
  static constexpr uint64_t kVmaBase = 0x20000000;
  static constexpr uint64_t kVmaSize = 16 << 20;
  static constexpr uint64_t kVmaPages = kVmaSize / kPageSize;

  GuestMem() : data_(kDataSize, 0) {}

  // Restores the pristine state between programs (clears only used bytes).
  void Reset() {
    if (brk_ > 0) {
      std::memset(data_.data(), 0, brk_);
    }
    brk_ = 0;
  }

  // Bump-allocates `len` bytes (8-byte aligned) in the data window;
  // returns 0 when exhausted.
  uint64_t AllocData(uint64_t len) {
    const uint64_t aligned = (len + 7) & ~7ULL;
    if (brk_ + aligned > kDataSize) {
      return 0;
    }
    const uint64_t addr = kDataBase + brk_;
    brk_ += aligned;
    return addr;
  }

  bool ValidRange(uint64_t addr, uint64_t len) const {
    return Window(addr, len) != nullptr;
  }

  bool Read(uint64_t addr, void* out, uint64_t len) const {
    const uint8_t* src = Window(addr, len);
    if (src == nullptr) {
      return false;
    }
    std::memcpy(out, src, len);
    return true;
  }

  bool Write(uint64_t addr, const void* in, uint64_t len) {
    uint8_t* dst = const_cast<uint8_t*>(Window(addr, len));
    if (dst == nullptr) {
      return false;
    }
    std::memcpy(dst, in, len);
    return true;
  }

  bool Read64(uint64_t addr, uint64_t* out) const {
    return Read(addr, out, 8);
  }
  bool Read32(uint64_t addr, uint32_t* out) const {
    return Read(addr, out, 4);
  }
  bool Write64(uint64_t addr, uint64_t value) {
    return Write(addr, &value, 8);
  }
  bool Write32(uint64_t addr, uint32_t value) {
    return Write(addr, &value, 4);
  }

  // Reads a NUL-terminated string of at most `max_len` bytes; false on an
  // invalid address or unterminated run.
  bool ReadString(uint64_t addr, uint64_t max_len, std::string* out) const {
    out->clear();
    for (uint64_t i = 0; i < max_len; ++i) {
      uint8_t c;
      if (!Read(addr + i, &c, 1)) {
        return false;
      }
      if (c == 0) {
        return true;
      }
      out->push_back(static_cast<char>(c));
    }
    return false;
  }

 private:
  // Returns a stable pointer into the data window covering [addr, addr+len),
  // or nullptr if out of range (including the unbacked VMA window).
  const uint8_t* Window(uint64_t addr, uint64_t len) const {
    if (addr >= kDataBase && addr + len <= kDataBase + kDataSize &&
        addr + len >= addr) {
      return data_.data() + (addr - kDataBase);
    }
    return nullptr;
  }

  std::vector<uint8_t> data_;
  uint64_t brk_ = 0;
};

}  // namespace healer

#endif  // SRC_KERNEL_GUEST_MEM_H_
